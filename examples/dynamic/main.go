// Dynamic: gossiping while the topology changes underneath the protocol —
// the mobility motivation of §1 ("due to the mobility of the nodes, the
// network topology changes over time"). Algorithm 2 is oblivious and
// time-invariant (transmit w.p. 1/d, join rumors), so it keeps making
// progress when we re-sample G(n,p) every epoch; the radio.GossipSession
// carries each node's rumor knowledge across the re-wirings.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	n := 256
	p := 8 * math.Log(float64(n)) / float64(n)
	d := p * float64(n)
	budget := core.NewAlgorithm2(p).RoundBudget(n)

	fmt.Printf("dynamic gossip: n=%d, d=np=%.0f, round budget %d\n\n", n, d, budget)

	// Scenario A — static network, one run to completion.
	g := graph.GNPDirected(n, p, rng.New(1))
	static := radio.RunGossip(g, core.NewAlgorithm2(p), rng.New(2), radio.GossipOptions{
		MaxRounds: budget, StopWhenComplete: true,
	})
	fmt.Println("scenario A — static network:")
	fmt.Printf("  completed at round %d, tx/node %.1f\n\n", static.CompleteRound, static.TxPerNode())

	// Scenario B — the nodes move: every epoch the hearing relation is a
	// fresh G(n,p), but knowledge persists in the session.
	fmt.Println("scenario B — topology re-sampled every epoch (mobile nodes):")
	epochs := 16
	perEpoch := budget / epochs
	sess := radio.NewGossipSession(n)
	r := rng.New(3)
	var totalTx int64
	for e := 1; e <= epochs && !sess.Complete(); e++ {
		ge := graph.GNPDirected(n, p, r.Split(uint64(e)))
		res := sess.Run(ge, core.NewAlgorithm2(p), r.Split(uint64(e)^0xe9), radio.GossipOptions{
			MaxRounds: perEpoch, StopWhenComplete: true,
		})
		totalTx += res.TotalTx
		frac := 100 * float64(sess.KnownPairs()) / (float64(n) * float64(n))
		status := ""
		if res.Completed() {
			status = fmt.Sprintf("  <- complete at absolute round %d", res.CompleteRound)
		}
		fmt.Printf("  epoch %2d: fresh topology, knowledge %5.1f%%%s\n", e, frac, status)
	}
	fmt.Printf("\n  energy across epochs: %.1f tx/node (static run: %.1f)\n",
		float64(totalTx)/float64(n), static.TxPerNode())

	fmt.Println("\nTakeaway: re-wiring the network between epochs does not break Algorithm 2 —")
	fmt.Println("it is oblivious and time-invariant, so every epoch contributes the same")
	fmt.Println("expected progress; mobility costs rounds, never correctness. (A deployment")
	fmt.Println("would additionally time-stamp and expire rumors, as §3 notes.)")
}
