// Fading: what an imperfect channel does to the energy-latency front. On
// the same CC2420-metered unit-disk deployment as examples/tradeoff, sweep
// the per-receiver deep-fade probability (radio.Fade — in each round a
// receiver independently hears nothing with probability p) against the
// transmit dial q, and watch the N2-style front shift.
//
// Fading only ever removes receptions (a faded receiver misses clean
// signals AND collisions alike), so every broadcast slows down — and under
// a metered receive chain a slower broadcast is not latency-neutral: each
// extra uninformed round bleeds listen energy across the network. The
// whole front shifts up with p, and it steepens asymmetrically: the quiet
// end pays fade roughly linearly (more uninformed rounds at full listen
// cost), while past the optimum the collision-bound schedules compound
// fade with their own interference. The C battery measures the same family
// under the experiment harness (experiments C1, C2, C5).
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	n := 400
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{N: n, Radius: 2 * rc, Torus: true}
	model := energy.CC2420()

	fmt.Printf("UDG sensor field: n=%d, radius 2·r_c=%.3f (torus), CC2420 energy model\n", n, 2*rc)
	fmt.Println("fixed(q) broadcast under per-receiver fading; energy in tx-round units")

	const trials = 5
	qs := []float64{0.01, 0.02, 0.05, 0.1, 0.2}
	for _, fade := range []float64{0, 0.2, 0.4} {
		var reception radio.ReceptionModel
		if fade > 0 {
			reception = radio.Fade(fade)
		}
		fmt.Printf("\n-- fade p = %.1f --\n", fade)
		fmt.Printf("%-7s %-9s %-9s %-13s %-12s\n",
			"q", "rounds", "tx/node", "listenE/node", "totalE/node")

		bestQ, bestE := 0.0, 0.0
		sc := radio.NewScratch()
		gsc := graph.NewScratch()
		for _, q := range qs {
			var rounds, txn, listenE, totalE float64
			done := 0
			for s := uint64(0); s < trials; s++ {
				g, _ := gsc.Geometric(spec, rng.New(s*1315423911+17))
				res := radio.RunBroadcastWith(sc, g, 0, &baseline.FixedProb{Q: q}, rng.New(s*2654435761+1),
					radio.Options{MaxRounds: 60000, StopWhenInformed: true,
						Reception: reception,
						Energy:    &energy.Spec{Model: model}})
				txn += res.TxPerNode()
				listenE += res.Energy.ListenEnergy / float64(n)
				totalE += res.Energy.EnergyPerNode()
				if res.Completed() {
					done++
					rounds += float64(res.InformedRound)
				}
			}
			if done == 0 {
				fmt.Printf("%-7.3f (no completions within the round cap)\n", q)
				continue
			}
			avgE := totalE / trials
			fmt.Printf("%-7.3f %-9.0f %-9.1f %-13.1f %-12.1f\n",
				q, rounds/float64(done), txn/trials, listenE/trials, avgE)
			if bestQ == 0 || avgE < bestE {
				bestQ, bestE = q, avgE
			}
		}
		fmt.Printf("cheapest q at fade %.1f: q=%.3f (%.1f units/node)\n", fade, bestQ, bestE)
	}

	fmt.Println("\nFading shifts the whole energy-latency front up, and not evenly:")
	fmt.Println("the quiet schedules pay for it in stretched listen windows, the")
	fmt.Println("chatty ones in compounded collisions — the interior optimum survives")
	fmt.Println("every fade level the channel throws at it.")
}
