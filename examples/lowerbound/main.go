// Lowerbound: why ~n·log n/2 transmissions are unavoidable (Observation 4.3).
//
// The construction: n destination radios, each hearing exactly two
// intermediate radios. A destination learns the message only in a round
// where EXACTLY ONE of its two intermediates transmits — transmit too
// rarely and nothing happens, too eagerly and the two collide forever. This
// example sweeps the per-round rate q, showing (a) the analytic energy
// curve, (b) Monte-Carlo agreement on the actual simulated network, and
// (c) that no rate escapes the floor.
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	n := 256
	fail := 1.0 / float64(n)
	net := graph.NewObs43Network(n)
	bound := lowerbound.Obs43Bound(n)

	fmt.Printf("Observation 4.3 network: %d destination pairs, %d nodes, bound = n·log n/2 = %.0f tx\n\n",
		n, net.G.N(), bound)
	fmt.Printf("%-6s %-14s %-16s %-14s %-14s %-12s\n",
		"q", "rounds needed", "energy analytic", "energy (sim)", "success(sim)", "vs bound")

	for _, q := range []float64{0.005, 0.02, 0.1, 0.3, 0.5, 0.8} {
		rounds := lowerbound.Obs43RoundsNeeded(n, q, fail)
		analytic := lowerbound.Obs43ExpectedTx(n, q, rounds)

		const trials = 40
		var txSum float64
		success := 0
		for s := uint64(0); s < trials; s++ {
			r := rng.New(s)
			warmup := 1 + r.Geometric(q) // rounds until the source itself fires
			res := radio.RunBroadcast(net.G, net.Source, &baseline.FixedProb{Q: q},
				rng.New(s^0x10), radio.Options{MaxRounds: warmup + rounds, StopWhenInformed: true})
			txSum += float64(res.TotalTx)
			if res.Completed() {
				success++
			}
		}
		fmt.Printf("%-6.3f %-14d %-16.0f %-14.0f %-14.2f %-12.2f\n",
			q, rounds, analytic, txSum/trials, float64(success)/trials, txSum/trials/bound)
	}

	fmt.Println("\nEvery rate pays ≥ the bound: slow rates stretch the campaign, fast rates")
	fmt.Println("collide — the optimum sits at ≈ 2n·ln n ≈ 1.39× the n·log₂n/2 bound, exactly")
	fmt.Println("as the Observation's calculus predicts. An oblivious sender cannot cheat it;")
	fmt.Println("only topology knowledge (which the unknown-network model denies) would help.")
}
