// Tradeoff: the energy-latency dial, measured in what a radio actually
// burns. On a unit-disk sensor deployment, sweep the per-round transmit
// probability q and meter every radio state with the CC2420 model
// (internal/energy): transmitting costs 1 per round, the receive chain
// ~1.08 whether decoding or idle-listening, sleeping ~0.02.
//
// Under the paper's transmission-count measure, the cheapest q is simply
// the smallest one that completes. With idle listening metered, a slow
// broadcast bleeds energy in every uninformed node, so total energy per
// delivered message is U-shaped in q — the Pareto front between latency and
// energy has an interior optimum (experiment N2 sweeps the same front under
// the experiment harness).
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	n := 400
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{N: n, Radius: 2 * rc, Torus: true}
	model := energy.CC2420()

	fmt.Printf("UDG sensor field: n=%d, radius 2·r_c=%.3f (torus), CC2420 energy model\n", n, 2*rc)
	fmt.Printf("(tx %.2f, rx/listen %.2f, sleep %.3f per round; energy in tx-round units)\n\n",
		model.Tx, model.Rx, model.Sleep)
	fmt.Printf("%-7s %-9s %-9s %-10s %-13s %-12s\n",
		"q", "rounds", "tx/node", "txE/node", "listenE/node", "totalE/node")

	const trials = 5
	bestQ, bestE := 0.0, 0.0
	for _, q := range []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		var rounds, txn, txE, listenE, totalE float64
		done := 0
		sc := radio.NewScratch()
		gsc := graph.NewScratch()
		for s := uint64(0); s < trials; s++ {
			g, _ := gsc.Geometric(spec, rng.New(s*1315423911+17))
			res := radio.RunBroadcastWith(sc, g, 0, &baseline.FixedProb{Q: q}, rng.New(s*2654435761+1),
				radio.Options{MaxRounds: 60000, StopWhenInformed: true,
					Energy: &energy.Spec{Model: model}})
			txn += res.TxPerNode()
			txE += res.Energy.TxEnergy / float64(n)
			listenE += res.Energy.ListenEnergy / float64(n)
			totalE += res.Energy.EnergyPerNode()
			if res.Completed() {
				done++
				rounds += float64(res.InformedRound)
			}
		}
		if done == 0 {
			fmt.Printf("%-7.3f (no completions: collisions swamp the channel)\n", q)
			continue
		}
		e := totalE / trials
		if bestQ == 0 || e < bestE {
			bestQ, bestE = q, e
		}
		fmt.Printf("%-7.3f %-9.0f %-9.2f %-10.2f %-13.2f %-12.2f\n",
			q, rounds/float64(done), txn/trials, txE/trials, listenE/trials, e)
	}

	fmt.Printf("\nReading the curve: small q is cheap in transmissions but slow, and every\n")
	fmt.Printf("uninformed node pays ~%.2f units per round just listening for the message;\n", model.Listen)
	fmt.Printf("large q is fast until collisions stall it while every radio keeps paying.\n")
	if bestQ != 0 {
		fmt.Printf("Total energy bottoms out at q = %.2g (%.1f units/node) — an interior optimum\n", bestQ, bestE)
		fmt.Printf("the transmission-count measure cannot see.\n")
	}
}
