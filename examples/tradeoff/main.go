// Tradeoff: the Theorem 4.2 dial. On a city-block grid network, sweep the
// plateau width λ of the α distribution from log(n/D) (fastest) to log n
// (cheapest) and print the resulting latency–energy curve, next to the
// theorem's predictions O(Dλ + log² n) time and O(log² n / λ) energy.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	side := 20
	g := graph.Grid2D(side, side)
	n := g.N()
	D := 2 * (side - 1)
	lamMin := dist.LambdaFor(n, D)
	L := int(math.Log2(float64(n)))
	l2sq := math.Log2(float64(n)) * math.Log2(float64(n))

	fmt.Printf("grid %dx%d: n=%d, D=%d, λ ranges %d..%d (Theorem 4.2)\n\n", side, side, n, D, lamMin, L)
	fmt.Printf("%-4s %-10s %-12s %-12s %-12s %-14s\n",
		"λ", "rounds", "~Dλ+log²n", "tx/node", "~log²n/λ", "energy×latency")

	const trials = 6
	for lam := lamMin; lam <= L; lam++ {
		var rounds, txn float64
		done := 0
		for s := uint64(0); s < trials; s++ {
			a := core.NewTradeoff(n, lam, 2)
			res := radio.RunBroadcast(g, 0, a, rng.New(s*977+uint64(lam)), radio.Options{MaxRounds: 400000})
			txn += res.TxPerNode()
			if res.Completed() {
				done++
				rounds += float64(res.InformedRound)
			}
		}
		if done == 0 {
			fmt.Printf("%-4d (no completions)\n", lam)
			continue
		}
		r := rounds / float64(done)
		e := txn / trials
		fmt.Printf("%-4d %-10.0f %-12.0f %-12.2f %-12.2f %-14.0f\n",
			lam, r, float64(D*lam)+l2sq, e, l2sq/float64(lam), r*e)
	}

	fmt.Println("\nReading the curve: small λ minimises latency (the messages race through")
	fmt.Println("layers), large λ minimises battery drain; the product column shows there is")
	fmt.Println("no free lunch — Theorem 4.2 says the product cannot beat ~D·log² n.")
}
