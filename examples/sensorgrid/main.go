// Sensorgrid: the paper's motivating scenario — battery-powered sensors
// dropped over a field, with heterogeneous transmission ranges (so links are
// asymmetric and acknowledgement protocols are impossible). A base station
// floods a firmware-update announcement; we compare the energy three
// protocols spend to reach every sensor.
//
// The deployment uses the geometric topology subsystem (internal/graph
// geom.go): sensors are air-dropped in clusters (a Matérn point process, the
// realistic placement for aerial deployment), and radio ranges vary by
// hardware batch between r_c and 3·r_c where r_c = sqrt(ln n/(π n)) is the
// RGG connectivity threshold.
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	// 800 sensors dropped in ~28 clusters over the unit square.
	n := 800
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{
		N:         n,
		Radius:    rc,
		RadiusMax: 3 * rc,
		Placement: graph.PlaceCluster, // air-drop: dense blobs, sparse gaps
		Spread:    3 * rc,
	}
	g, _ := graph.Geometric(spec, rng.New(2024))

	asym := graph.AsymmetricEdges(g)
	diam := graph.DiameterSampled(g, 48, rng.New(7))
	reach := graph.ReachableFrom(g, 0)
	fmt.Printf("sensor field: %d nodes in clustered drop zones, %d links (%d one-way)\n",
		g.N(), g.M(), asym)
	fmt.Printf("base station reaches %d/%d sensors, sampled diameter %d\n", reach, n, diam)
	fmt.Printf("ranges: %.3f .. %.3f (connectivity radius %.3f)\n\n", rc, 3*rc, rc)

	// The base station (node 0) announces the update. Compare protocols that
	// only assume knowledge of n and a diameter bound.
	protocols := []struct {
		name string
		make func() radio.Broadcaster
	}{
		{"algorithm3 (known D)", func() radio.Broadcaster { return core.NewAlgorithm3(n, diam, 2) }},
		{"czumaj-rytter (known D)", func() radio.Broadcaster { return baseline.NewCzumajRytter(n, diam, 2) }},
		{"decay (BGI)", func() radio.Broadcaster { return baseline.NewDecay(2*diam + 16) }},
	}

	fmt.Printf("%-26s %-9s %-8s %-10s %-12s\n", "protocol", "informed", "rounds", "tx/node", "battery cost")
	const trials = 5
	for _, pr := range protocols {
		var rounds, txn, informed float64
		done := 0
		for s := uint64(0); s < trials; s++ {
			res := radio.RunBroadcast(g, 0, pr.make(), rng.New(s), radio.Options{MaxRounds: 200000})
			informed += float64(res.Informed) / float64(n)
			txn += res.TxPerNode()
			if res.Completed() {
				done++
				rounds += float64(res.InformedRound)
			}
		}
		roundsCell := "n/a"
		if done > 0 {
			roundsCell = fmt.Sprintf("%.0f", rounds/float64(done))
		}
		// A toy battery model: 1 unit per transmission (reception is free in
		// the paper's energy measure — ranges are fixed, listening is cheap).
		fmt.Printf("%-26s %-9.3f %-8s %-10.2f %-12.1f\n",
			pr.name, informed/trials, roundsCell, txn/trials, txn/trials*float64(n))
	}

	fmt.Println("\nTakeaway: on a clustered heterogeneous-range deployment, Algorithm 3's α")
	fmt.Println("distribution reaches every connected sensor for a fraction of Czumaj–Rytter's")
	fmt.Println("energy (factor ≈ log(n/D)), and both beat Decay's per-wavefront cost —")
	fmt.Println("battery life is the scarce resource here.")
}
