// Sensorgrid: the paper's motivating scenario — battery-powered sensors
// scattered over a field, with heterogeneous transmission ranges (so links
// are asymmetric and acknowledgement protocols are impossible). A base
// station floods a firmware-update announcement; we compare the energy three
// protocols spend to reach every sensor.
//
// This is the §5 "random geometric graphs" setting, implemented by the
// heterogeneous RandomGeometric generator.
package main

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	// 800 sensors in the unit square. Radio ranges vary by hardware batch:
	// between r_c and 3·r_c where r_c is the connectivity radius — some
	// sensors hear neighbours that cannot hear them back.
	n := 800
	rc := math.Sqrt(math.Log(float64(n)) / (math.Pi * float64(n)))
	g, pts := graph.RandomGeometric(n, rc, 3*rc, rng.New(2024))

	asym := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(graph.NodeID(u)) {
			if !g.HasEdge(v, graph.NodeID(u)) {
				asym++
			}
		}
	}
	diam := graph.DiameterSampled(g, 48, rng.New(7))
	fmt.Printf("sensor field: %d nodes, %d links (%d one-way), sampled diameter %d\n",
		g.N(), g.M(), asym, diam)
	fmt.Printf("ranges: %.3f .. %.3f (connectivity radius %.3f)\n\n", rc, 3*rc, rc)
	_ = pts

	// The base station (node 0) announces the update. Compare protocols that
	// only assume knowledge of n and a diameter bound.
	protocols := []struct {
		name string
		make func() radio.Broadcaster
	}{
		{"algorithm3 (known D)", func() radio.Broadcaster { return core.NewAlgorithm3(n, diam, 2) }},
		{"czumaj-rytter (known D)", func() radio.Broadcaster { return baseline.NewCzumajRytter(n, diam, 2) }},
		{"decay (BGI)", func() radio.Broadcaster { return baseline.NewDecay(2*diam + 16) }},
	}

	fmt.Printf("%-26s %-9s %-8s %-10s %-12s\n", "protocol", "informed", "rounds", "tx/node", "battery cost")
	const trials = 5
	for _, pr := range protocols {
		var rounds, txn, informed float64
		done := 0
		for s := uint64(0); s < trials; s++ {
			res := radio.RunBroadcast(g, 0, pr.make(), rng.New(s), radio.Options{MaxRounds: 200000})
			informed += float64(res.Informed) / float64(n)
			txn += res.TxPerNode()
			if res.Completed() {
				done++
				rounds += float64(res.InformedRound)
			}
		}
		roundsCell := "n/a"
		if done > 0 {
			roundsCell = fmt.Sprintf("%.0f", rounds/float64(done))
		}
		// A toy battery model: 1 unit per transmission (reception is free in
		// the paper's energy measure — ranges are fixed, listening is cheap).
		fmt.Printf("%-26s %-9.3f %-8s %-10.2f %-12.1f\n",
			pr.name, informed/trials, roundsCell, txn/trials, txn/trials*float64(n))
	}

	fmt.Println("\nTakeaway: with the diameter known, Algorithm 3's α distribution reaches every")
	fmt.Println("sensor for a fraction of Czumaj–Rytter's energy (factor ≈ log(n/D)), and both")
	fmt.Println("beat Decay's per-wavefront cost — battery life is the scarce resource here.")
}
