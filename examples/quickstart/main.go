// Quickstart: broadcast a message over an unknown random AdHoc network with
// Algorithm 1 — the paper's headline protocol, where every node transmits at
// most once — and inspect time (rounds) and energy (transmissions).
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func main() {
	// An unknown network: n radios whose hearing relation happens to be a
	// directed Erdős–Rényi graph G(n,p). The nodes know n and p (the model's
	// assumption) but nothing about who hears whom.
	n := 4096
	p := 8 * math.Log(float64(n)) / float64(n) // above the δ·log n/n threshold
	g := graph.GNPDirected(n, p, rng.New(7))
	fmt.Printf("network: n=%d, p=%.4f, d=np=%.1f, edges=%d\n", n, p, p*float64(n), g.M())

	// Algorithm 1 (§2 of the paper): three phases, at most one transmission
	// per node, O(log n) rounds w.h.p.
	proto := core.NewAlgorithm1(p)
	res := radio.RunBroadcast(g, 0, proto, rng.New(42), radio.Options{
		MaxRounds:     10000,
		RecordHistory: true,
	})

	fmt.Printf("\nbroadcast from node 0 with %q:\n", proto.Name())
	fmt.Printf("  completed:        %v (informed %d/%d)\n", res.Completed(), res.Informed, n)
	fmt.Printf("  rounds:           %d  (log2 n = %.1f)\n", res.InformedRound, math.Log2(float64(n)))
	fmt.Printf("  total tx:         %d  (O(log n / p) = %.0f)\n", res.TotalTx, math.Log(float64(n))/p)
	fmt.Printf("  max tx per node:  %d  (the paper's invariant: <= 1)\n", res.MaxNodeTx)

	fmt.Println("\nper-round progress (phase boundaries from the protocol):")
	for _, h := range res.History {
		if h.Round == 0 {
			continue
		}
		phase := proto.PhaseOfRound(h.Round)
		fmt.Printf("  round %3d (phase %d): %4d transmitters, %5d newly informed, %5d informed\n",
			h.Round, phase, h.Transmitters, h.NewlyInformed, h.Informed)
		if h.Informed == n {
			break
		}
	}
}
