// Command netgen generates a topology and prints its structural statistics:
// sizes, degrees, connectivity, diameter, and (for the paper's G(n,p)
// workloads) the Lemma 3.1 diameter prediction.
//
// Examples:
//
//	netgen -topo gnp:n=2048,p=0.02
//	netgen -topo fig2:n=128,d=96
//	netgen -topo rgg:n=800,rmin=0.05,rmax=0.15 -edges
//	netgen -topo udg:n=1024,torus=true
//	netgen -topo mobile:n=512,model=waypoint,epoch=5
//
// -edges dumps the graph.WriteEdgeList format (header + "u v" lines) to
// stdout — the stats table moves to stderr, so `netgen -edges > g.txt`
// round-trips through graph.ReadEdgeList.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func main() {
	var (
		topoSpec  = flag.String("topo", "gnp:n=1024,p=0.054", "topology spec (see internal/cliutil)")
		seed      = flag.Uint64("seed", 1, "generation seed")
		edges     = flag.Bool("edges", false, "dump the edge list")
		exact     = flag.Bool("exact", false, "force exact diameter even for large graphs")
		sampleSrc = flag.Int("samples", 64, "BFS sources for sampled diameter")
	)
	flag.Parse()

	topo, err := cliutil.ParseTopology(*topoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
	g := topo.Build(*seed)

	deg := graph.Degrees(g)
	t := sweep.NewTable(fmt.Sprintf("topology %s (seed %d)", *topoSpec, *seed),
		"property", "value")
	t.AddRow("nodes", sweep.FInt(g.N()))
	t.AddRow("edges", sweep.FInt(g.M()))
	t.AddRow("mean degree", sweep.F(deg.MeanOut))
	t.AddRow("out-degree min/max", fmt.Sprintf("%d / %d", deg.MinOut, deg.MaxOut))
	t.AddRow("in-degree min/max", fmt.Sprintf("%d / %d", deg.MinIn, deg.MaxIn))
	t.AddRow("symmetric links", fmt.Sprintf("%v", g.IsSymmetric()))
	t.AddRow("weakly connected", fmt.Sprintf("%v", graph.IsWeaklyConnected(g)))
	t.AddRow("strongly connected", fmt.Sprintf("%v", graph.IsStronglyConnected(g)))
	t.AddRow("reachable from source", sweep.FInt(graph.ReachableFrom(g, topo.Source)))

	if g.N() <= 4096 || *exact {
		d, strong := graph.Diameter(g)
		label := "diameter (exact"
		if !strong {
			label += ", reachable pairs only"
		}
		t.AddRow(label+")", sweep.FInt(d))
	} else {
		d := graph.DiameterSampled(g, *sampleSrc, rng.New(*seed^0x5a))
		t.AddRow(fmt.Sprintf("diameter (sampled, %d sources)", *sampleSrc), sweep.FInt(d))
	}
	ecc, _ := graph.Eccentricity(g, topo.Source)
	t.AddRow("source eccentricity", sweep.FInt(ecc))

	if *edges {
		// Stats go to stderr so stdout is exactly the WriteEdgeList format
		// and `netgen -edges > g.txt` round-trips through ReadEdgeList.
		fmt.Fprint(os.Stderr, t.Markdown())
		if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(t.Markdown())
}
