package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/graph"
)

var update = flag.Bool("update", false, "rewrite the golden edge-list files")

// goldenSpecs lists one small instance per netgen topology mode. The golden
// files pin the exact -edges output (so format or generator drift is caught),
// and every emitted edge list must round-trip through graph.ReadEdgeList.
var goldenSpecs = []struct {
	name string
	spec string
}{
	{"gnp", "gnp:n=24,p=0.15"},
	{"gnp_sym", "gnp:n=24,p=0.15,sym=true"},
	{"grid", "grid:w=4,h=3"},
	{"path", "path:n=6"},
	{"cycle", "cycle:n=7"},
	{"star", "star:k=5"},
	{"tree", "tree:n=11"},
	{"complete", "complete:n=5"},
	{"rgg", "rgg:n=30,rmin=0.2,rmax=0.35"},
	{"rgg_cluster", "rgg:n=30,rmin=0.25,rmax=0.25,torus=true,cluster=3,spread=0.1"},
	{"udg", "udg:n=30,r=0.3"},
	{"udg_torus", "udg:n=30,r=0.3,torus=true"},
	{"mobile", "mobile:n=24,r=0.3,model=waypoint,epoch=2"},
	{"mobile_resample", "mobile:n=24,r=0.3,model=resample,epoch=1"},
	{"obs43", "obs43:n=4"},
	{"fig2", "fig2:n=8,d=12"},
	{"hypercube", "hypercube:dim=3"},
	{"torus", "torus:w=4,h=3"},
	{"regular", "regular:n=16,deg=3"},
	{"barbell", "barbell:k=4,bridge=3"},
	{"caterpillar", "caterpillar:spine=4,legs=2"},
}

func edgeList(t *testing.T, spec string) []byte {
	t.Helper()
	topo, err := cliutil.ParseTopology(spec)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, topo.Build(1)); err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return buf.Bytes()
}

func TestEdgeListGolden(t *testing.T) {
	for _, tc := range goldenSpecs {
		t.Run(tc.name, func(t *testing.T) {
			got := edgeList(t, tc.spec)
			path := filepath.Join("testdata", tc.name+".edges")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./cmd/netgen -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: edge list drifted from golden file %s\ngot:\n%s", tc.spec, path, got)
			}
		})
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for _, tc := range goldenSpecs {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := cliutil.ParseTopology(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			g := topo.Build(1)
			var buf bytes.Buffer
			if err := graph.WriteEdgeList(&buf, g); err != nil {
				t.Fatal(err)
			}
			back, err := graph.ReadEdgeList(&buf)
			if err != nil {
				t.Fatalf("%s: round-trip parse: %v", tc.spec, err)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("%s: round-tripped graph invalid: %v", tc.spec, err)
			}
			if back.N() != g.N() || back.M() != g.M() {
				t.Fatalf("%s: round-trip changed size: %d/%d -> %d/%d",
					tc.spec, g.N(), g.M(), back.N(), back.M())
			}
			for u := 0; u < g.N(); u++ {
				a, b := g.Out(graph.NodeID(u)), back.Out(graph.NodeID(u))
				if len(a) != len(b) {
					t.Fatalf("%s: node %d degree changed", tc.spec, u)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: node %d adjacency changed", tc.spec, u)
					}
				}
			}
		})
	}
}
