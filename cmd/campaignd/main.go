// Command campaignd is the campaign daemon: simulation-as-a-service over
// the experiment registry. It accepts campaign specs over HTTP/JSON,
// expands them into grid points, and dispatches the points to registered
// campaignworker processes through a lease-based work queue that survives
// worker death: missed heartbeats and expired leases requeue points,
// reported failures retry with exponential backoff up to a bounded budget,
// and exhausted points land in a failure manifest so a campaign completes
// with explicit holes instead of hanging.
//
//	campaignd -data /var/lib/campaigns -addr 127.0.0.1:8655
//
// Then, from anywhere that reaches the daemon:
//
//	campaignctl -daemon http://127.0.0.1:8655 submit -experiments F1,F2 -seed 777
//	campaignworker -daemon http://127.0.0.1:8655   # as many as you like
//	campaignctl -daemon http://127.0.0.1:8655 wait job-001
//	campaignctl -daemon http://127.0.0.1:8655 records job-001 > records.jsonl
//
// Each job owns a checkpoint namespace <data>/<jobID>/ holding its
// append-only records.jsonl (the PR 4 sink format — `cmd/experiments
// -checkpoint <file> -resume` renders tables from it) and manifest.json.
// Because point seeds derive purely from (base seed, point key), a
// campaign executed across any fleet, with any amount of worker churn,
// yields records identical to one uninterrupted single-process run.
//
// The daemon itself survives death: queue state (jobs, leases, attempt
// counts, backoff deadlines) is persisted to a write-ahead log plus
// snapshot under -state (default: the -data directory), so a campaignd
// killed at any instant — SIGKILL included — and restarted over the same
// -state and -data directories resumes every campaign exactly where it
// stopped. Workers reconnect unaided; completions that arrive from the
// outage window are accepted or dup-discarded.
//
// Shutdown semantics: on the first SIGTERM/SIGINT the daemon drains —
// it stops granting leases, finishes in-flight HTTP exchanges, folds the
// WAL into a final snapshot, and exits 0. A second signal hard-exits
// immediately (the WAL is fsync'd per append, so even that loses
// nothing).
//
// See README.md ("The campaign daemon") for the API and the fault model.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/jobqueue/exptrun"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8655", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		dataDir    = flag.String("data", "campaignd-data", "root directory for per-job checkpoint namespaces")
		stateDir   = flag.String("state", "", "durable queue state directory: wal.jsonl + snapshot.json (default: the -data directory)")
		compactN   = flag.Int("wal-compact", 1024, "WAL appends between snapshot compactions")
		leaseTTL   = flag.Duration("lease", 30*time.Second, "lease time-to-live without a heartbeat")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "declare a worker lost after this silence (default 3/4 of -lease)")
		maxTries   = flag.Int("max-attempts", 4, "grants per point before it lands in the failure manifest")
		backoff    = flag.Duration("backoff", 250*time.Millisecond, "base retry backoff after a reported point failure")
		backoffMax = flag.Duration("backoff-max", 30*time.Second, "retry backoff ceiling")
		sweepEvery = flag.Duration("sweep", time.Second, "lease-expiry sweep interval")
	)
	flag.Parse()
	if *stateDir == "" {
		*stateDir = *dataDir
	}

	q, err := jobqueue.NewQueue(jobqueue.Options{
		DataDir:          *dataDir,
		Expand:           exptrun.Expand,
		StateDir:         *stateDir,
		CompactEvery:     *compactN,
		LeaseTTL:         *leaseTTL,
		HeartbeatTimeout: *hbTimeout,
		MaxAttempts:      *maxTries,
		BackoffBase:      *backoff,
		BackoffMax:       *backoffMax,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "campaignd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}

	srv := jobqueue.NewServer(q)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "campaignd:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "campaignd: listening on %s (data %s, state %s, lease %v, max attempts %d)\n",
		bound, *dataDir, *stateDir, *leaseTTL, *maxTries)

	stop := make(chan struct{})
	go srv.RunSweeper(*sweepEvery, stop)

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "campaignd: %v — draining (no new leases; state snapshotted; restart with the same -state to resume)\n", s)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		close(stop)
		q.Close()
		return 1
	}
	// Graceful drain: stop granting leases, let in-flight exchanges
	// finish, then snapshot and exit 0. A second signal hard-exits — the
	// per-append fsync'd WAL makes even that recoverable.
	q.Drain()
	close(stop)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx) //nolint:errcheck // best-effort drain
	}()
	select {
	case <-done:
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "campaignd: second %v — hard exit\n", s)
		return 130
	}
	if err := q.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	return 0
}
