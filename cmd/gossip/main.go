// Command gossip runs a gossiping protocol (join model, §3 of the paper) on
// a topology and reports completion time and per-node energy.
//
// Examples:
//
//	gossip -topo gnp:n=512,p=0.06 -proto algorithm2:p=0.06 -trials 10
//	gossip -topo cycle:n=64 -proto tdma
//	gossip -topo gnp:n=256,p=0.1 -proto uniform:q=0.02,rounds=50000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	var (
		topoSpec  = flag.String("topo", "gnp:n=256,p=0.1", "topology spec (see internal/cliutil)")
		protoSpec = flag.String("proto", "algorithm2:p=0.1", "gossip protocol spec")
		trials    = flag.Int("trials", 10, "independent trials")
		seed      = flag.Uint64("seed", 1, "base seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		duplex    = flag.Bool("fullduplex", false, "allow transmitters to receive in the same round")
		csv       = flag.Bool("csv", false, "emit CSV instead of markdown")
	)
	flag.Parse()

	topo, err := cliutil.ParseTopology(*topoSpec)
	if err != nil {
		fatal(err)
	}
	factory, budget, err := cliutil.ParseGossiper(*protoSpec, topo.N)
	if err != nil {
		fatal(err)
	}

	newScratch := func() any { return radio.NewGossipScratch() }
	out := sweep.RunTrialsScratch(*trials, *seed, *workers, newScratch, func(tr sweep.Trial) sweep.Metrics {
		g := topo.Build(tr.Seed)
		sc, _ := tr.Scratch.(*radio.GossipScratch)
		res := radio.RunGossipWith(sc, g, factory(), rng.New(rng.SubSeed(tr.Seed, 1)), radio.GossipOptions{
			MaxRounds: budget, FullDuplex: *duplex, StopWhenComplete: true,
		})
		m := sweep.Metrics{
			"success": 0, "txPerNode": res.TxPerNode(),
			"maxNodeTx": float64(res.MaxNodeTx),
			"knownFrac": float64(res.KnownPairs) / (float64(topo.N) * float64(topo.N)),
		}
		if res.Completed() {
			m["success"] = 1
			m["rounds"] = float64(res.CompleteRound)
		}
		return m
	})

	table := sweep.NewTable(
		fmt.Sprintf("gossip %s on %s (n=%d, budget %d rounds, %d trials)",
			*protoSpec, *topoSpec, topo.N, budget, *trials),
		"success", "rounds (mean±ci95)", "known pairs fraction", "tx/node", "max tx/node")
	roundsCell := "n/a"
	if sweep.RateOf(out, "success") > 0 {
		var xs []float64
		for _, v := range out["rounds"] {
			if v == v {
				xs = append(xs, v)
			}
		}
		mean, hw := stats.MeanCI(xs, 1.96)
		roundsCell = fmt.Sprintf("%.1f±%.1f", mean, hw)
	}
	table.AddRow(
		sweep.F(sweep.RateOf(out, "success")),
		roundsCell,
		sweep.F(sweep.MeanOf(out, "knownFrac")),
		sweep.F(sweep.MeanOf(out, "txPerNode")),
		sweep.F(sweep.MeanOf(out, "maxNodeTx")))

	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.Markdown())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gossip:", err)
	os.Exit(1)
}
