package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
)

// cli runs the command in-process and returns (exit code, stdout, stderr).
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListShowsEveryExperiment(t *testing.T) {
	code, out, _ := cli(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, id := range []string{"F1", "E1", "E12", "X4", "G6", "N5"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, "\n"+id) {
			t.Errorf("-list output missing %s:\n%s", id, out)
		}
	}
}

func TestUnknownIDFails(t *testing.T) {
	code, _, errb := cli(t, "-run", "ZZ9")
	if code != 1 {
		t.Fatalf("unknown id exit %d, want 1", code)
	}
	if !strings.Contains(errb, "unknown id") {
		t.Errorf("stderr missing diagnosis: %s", errb)
	}
}

func TestNoSelectionFails(t *testing.T) {
	if code, _, _ := cli(t); code != 1 {
		t.Fatalf("no selection should exit 1, got %d", code)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-run", "F1", "-resume"},       // resume without checkpoint
		{"-run", "F1", "-shard", "0/2"}, // shard without jsonl
		{"-run", "F1", "-shard", "banana", "-format", "jsonl"},
		{"-run", "F1", "-shard", "4/2", "-format", "jsonl", "-checkpoint", "x"},
		{"-run", "F1", "-format", "yaml"},
	}
	for _, args := range cases {
		if code, _, _ := cli(t, args...); code != 1 {
			t.Errorf("args %v: exit %d, want 1", args, code)
		}
	}
}

func TestRunWritesMarkdownOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.md")
	code, _, errb := cli(t, "-run", "F1", "-seed", "777", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Experiment results (reduced scale, seed 777)",
		"## F1 — Distribution α vs α′ (Fig. 1)",
		"### F1: level distributions",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The stale DESIGN.md reference must be gone (the index moved to README).
	if strings.Contains(string(data), "DESIGN.md") {
		t.Error("output still references the nonexistent DESIGN.md")
	}
}

func TestCSVAndJSONLFormats(t *testing.T) {
	code, csvOut, _ := cli(t, "-run", "F2", "-seed", "777", "-format", "csv")
	if code != 0 {
		t.Fatalf("csv exit %d", code)
	}
	if !strings.Contains(csvOut, "# table: F2: Theorem 4.4 network instances (Fig. 2)") ||
		!strings.Contains(csvOut, "star param n,D,") {
		t.Errorf("csv output malformed:\n%s", csvOut)
	}

	code, jsonlOut, _ := cli(t, "-run", "F2", "-seed", "777", "-format", "jsonl")
	if code != 0 {
		t.Fatalf("jsonl exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(jsonlOut), "\n")
	if len(lines) != 4 { // three instances + the budget point
		t.Fatalf("jsonl lines = %d, want 4:\n%s", len(lines), jsonlOut)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"campaign":"F2","point":"`) {
			t.Errorf("bad record line: %s", l)
		}
	}
}

// TestShardMergeResumeRendersIdenticalMarkdown is the CLI-level acceptance
// path: two half-grids run as separate shard processes, their checkpoints
// concatenated, and a -resume render over the merged stream must produce
// exactly the markdown of one uninterrupted run — without recomputing any
// point (enforced by the stderr "resumed from checkpoint" lines).
func TestShardMergeResumeRendersIdenticalMarkdown(t *testing.T) {
	dir := t.TempDir()
	ids := "F1,F2,E9"

	direct := filepath.Join(dir, "direct.md")
	directCk := filepath.Join(dir, "direct.jsonl")
	if code, _, errb := cli(t, "-run", ids, "-seed", "777", "-out", direct, "-checkpoint", directCk); code != 0 {
		t.Fatalf("direct run exit %d: %s", code, errb)
	}

	var merged bytes.Buffer
	for shard := 0; shard < 2; shard++ {
		ck := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", shard))
		code, _, errb := cli(t, "-run", ids, "-seed", "777",
			"-shard", string(rune('0'+shard))+"/2", "-format", "jsonl", "-checkpoint", ck)
		if code != 0 {
			t.Fatalf("shard %d exit %d: %s", shard, code, errb)
		}
		data, err := os.ReadFile(ck)
		if err != nil {
			t.Fatal(err)
		}
		merged.Write(data)
	}
	mergedPath := filepath.Join(dir, "merged.jsonl")
	if err := os.WriteFile(mergedPath, merged.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rendered := filepath.Join(dir, "rendered.md")
	code, _, errb := cli(t, "-run", ids, "-seed", "777",
		"-checkpoint", mergedPath, "-resume", "-out", rendered)
	if code != 0 {
		t.Fatalf("merged render exit %d: %s", code, errb)
	}
	if strings.Contains(errb, "done in") {
		t.Errorf("merged render recomputed points instead of resuming:\n%s", errb)
	}
	want, _ := os.ReadFile(direct)
	got, _ := os.ReadFile(rendered)
	if string(want) != string(got) {
		t.Errorf("markdown from merged shards differs from direct run")
	}

	// Record-level half of the acceptance criterion: shard 0/2 ∪ shard 1/2
	// must equal the uninterrupted run record for record (order aside — the
	// shards interleave the global grid).
	directLines, _ := os.ReadFile(directCk)
	if lineSet(string(directLines)) == nil {
		t.Fatal("direct checkpoint empty")
	}
	ds, ms := lineSet(string(directLines)), lineSet(merged.String())
	if len(ds) != len(ms) {
		t.Fatalf("record counts differ: direct %d vs merged shards %d", len(ds), len(ms))
	}
	for k := range ds {
		if !ms[k] {
			t.Errorf("record missing from shard union: %s", k)
		}
	}
}

// TestInterruptExitsDistinctlyAndResumes drives the graceful-shutdown path
// in-process: a SIGINT delivered to the run stops the campaign between grid
// points with the distinct interrupted status, the checkpoint keeps only
// whole records, and a -resume run completes it to the byte-identical
// uninterrupted stream.
func TestInterruptExitsDistinctlyAndResumes(t *testing.T) {
	dir := t.TempDir()

	// Truth: the uninterrupted run's checkpoint.
	truthCk := filepath.Join(dir, "truth.jsonl")
	if code, _, errb := cli(t, "-run", "F2,E9", "-seed", "777", "-format", "jsonl",
		"-checkpoint", truthCk, "-out", filepath.Join(dir, "ignore.jsonl")); code != 0 {
		t.Fatalf("uninterrupted run exit %d: %s", code, errb)
	}

	// Interrupted run: the signal is already pending when the watcher
	// installs, so the engine stops before its first point — determinism
	// without mid-run timing games.
	oldNotify := notifySignals
	notifySignals = func(ch chan<- os.Signal) { ch <- os.Interrupt }
	ck := filepath.Join(dir, "run.jsonl")
	code, _, errb := cli(t, "-run", "F2,E9", "-seed", "777", "-format", "jsonl",
		"-checkpoint", ck, "-out", filepath.Join(dir, "ignore2.jsonl"))
	notifySignals = oldNotify
	if code != exitInterrupted {
		t.Fatalf("interrupted run exit %d, want %d; stderr: %s", code, exitInterrupted, errb)
	}
	if !strings.Contains(errb, "interrupted") || !strings.Contains(errb, "rerun with -resume") {
		t.Errorf("stderr missing interrupt diagnosis and resume hint:\n%s", errb)
	}

	// Resume completes the run; the final stream equals the uninterrupted one.
	if code, _, errb := cli(t, "-run", "F2,E9", "-seed", "777", "-format", "jsonl",
		"-checkpoint", ck, "-resume", "-out", filepath.Join(dir, "ignore3.jsonl")); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, errb)
	}
	truth, _ := os.ReadFile(truthCk)
	resumed, _ := os.ReadFile(ck)
	if string(truth) != string(resumed) {
		t.Errorf("interrupted-then-resumed checkpoint differs from uninterrupted run")
	}
}

// TestSecondSignalHardExits checks the escalation contract: one signal is
// graceful, a second one calls the hard-exit hook with status 130.
func TestSecondSignalHardExits(t *testing.T) {
	oldNotify, oldExit := notifySignals, exitNow
	defer func() { notifySignals, exitNow = oldNotify, oldExit }()

	notifySignals = func(ch chan<- os.Signal) {
		ch <- os.Interrupt
		ch <- syscall.SIGTERM
	}
	exited := make(chan int, 1)
	exitNow = func(code int) { exited <- code; runtime.Goexit() }

	var buf bytes.Buffer
	done := make(chan struct{})
	defer close(done)
	interrupt := watchSignals(&buf, done)
	<-interrupt // first signal: graceful stop requested
	if code := <-exited; code != 130 {
		t.Fatalf("second signal exit %d, want 130", code)
	}
	if !strings.Contains(buf.String(), "finishing the in-flight grid point") ||
		!strings.Contains(buf.String(), "aborting") {
		t.Errorf("watcher narration incomplete:\n%s", buf.String())
	}
}

// lineSet splits JSONL content into a set of lines.
func lineSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(s), "\n") {
		if l != "" {
			out[l] = true
		}
	}
	return out
}

// TestKilledRunResumesToIdenticalCheckpoint is the other acceptance half on
// real experiments: truncate a finished checkpoint to a prefix (the state a
// killed process leaves, torn tail included) and -resume; the repaired
// stream must be byte-identical to the uninterrupted one.
func TestKilledRunResumesToIdenticalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "run.jsonl")
	if code, _, errb := cli(t, "-run", "F2,E9", "-seed", "777", "-format", "jsonl",
		"-checkpoint", ck, "-out", filepath.Join(dir, "ignore.jsonl")); code != 0 {
		t.Fatalf("uninterrupted run exit %d: %s", code, errb)
	}
	full, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(full), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few records to simulate a kill: %d", len(lines))
	}
	// Kill mid-append: two complete records plus half of the third.
	partial := strings.Join(lines[:2], "") + lines[2][:len(lines[2])/3]
	if err := os.WriteFile(ck, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := cli(t, "-run", "F2,E9", "-seed", "777", "-format", "jsonl",
		"-checkpoint", ck, "-resume", "-out", filepath.Join(dir, "ignore2.jsonl")); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, errb)
	}
	resumed, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed) != string(full) {
		t.Errorf("killed-then-resumed checkpoint differs from uninterrupted run")
	}
}
