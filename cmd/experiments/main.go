// Command experiments regenerates the paper-reproduction tables: one
// experiment per theorem and figure (the experiment ↔ paper index lives in
// README.md, "Experiment index").
//
// Experiments are declarative grids on the internal/campaign engine, so
// runs stream one JSONL record per completed grid point, can be killed and
// resumed, and can be partitioned across machines:
//
//	experiments -list
//	experiments -run E1,E7
//	experiments -all -full -out EXPERIMENTS.md
//	experiments -all -format csv -out results.csv
//	experiments -all -checkpoint run.jsonl            # stream records
//	experiments -all -checkpoint run.jsonl -resume    # continue a killed run
//	experiments -all -shard 2/8 -format jsonl -checkpoint shard2.jsonl
//
// Sharded runs emit records only (a shard cannot render a table whose other
// points ran elsewhere); concatenate the shard checkpoints and re-run with
// -resume to render every format without recomputing:
//
//	cat shard*.jsonl > all.jsonl
//	experiments -all -checkpoint all.jsonl -resume -out EXPERIMENTS.md
//
// Without -full a reduced grid runs (minutes); -full uses the paper-scale
// grid used to produce the committed EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/expt"
	"repro/internal/radio"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// notifySignals and exitNow are the process-level hooks of the graceful
// shutdown path, as variables so tests can drive "SIGINT mid-campaign"
// in-process instead of killing their own test binary.
var (
	notifySignals = func(ch chan<- os.Signal) { signal.Notify(ch, os.Interrupt, syscall.SIGTERM) }
	exitNow       = os.Exit
)

// exitInterrupted is the distinct status for a run stopped by SIGINT or
// SIGTERM after finishing its in-flight grid point and flushing the
// checkpoint (130 = killed outright by a second signal).
const exitInterrupted = 3

// watchSignals closes the returned channel on the first SIGINT/SIGTERM —
// the campaign engine then stops between grid points, so the checkpoint
// stays a clean prefix of the run — and hard-exits on the second. The
// watcher dies with the surrounding run (close done).
func watchSignals(stderr io.Writer, done <-chan struct{}) <-chan struct{} {
	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 2)
	notifySignals(sig)
	first := func(s os.Signal) {
		fmt.Fprintf(stderr, "experiments: %v — finishing the in-flight grid point and flushing the checkpoint (signal again to abort immediately)\n", s)
		close(interrupt)
	}
	second := func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "experiments: %v again — aborting without flushing\n", s)
			exitNow(130)
		case <-done:
		}
	}
	select {
	case s := <-sig:
		// The signal was already pending when the watcher installed. Honour
		// it synchronously so the run deterministically stops before its
		// first grid point — a goroutine-only watcher may not be scheduled
		// before a short campaign finishes on a loaded single-core machine.
		first(s)
		go second()
	default:
		go func() {
			select {
			case s := <-sig:
				first(s)
			case <-done:
				return
			}
			second()
		}()
	}
	return interrupt
}

// parseShard parses "k/N" into (k, N). An empty spec means unsharded.
func parseShard(spec string) (k, n int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	ks, ns, found := strings.Cut(spec, "/")
	if !found {
		return 0, 0, fmt.Errorf("malformed -shard %q (want k/N, e.g. 0/4)", spec)
	}
	k, errK := strconv.Atoi(ks)
	n, errN := strconv.Atoi(ns)
	if errK != nil || errN != nil {
		return 0, 0, fmt.Errorf("malformed -shard %q (want k/N, e.g. 0/4)", spec)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard %q out of range (want 0 <= k < N)", spec)
	}
	return k, n, nil
}

// run carries the whole command so deferred profile writers always flush
// before the process exits (os.Exit would skip them). It owns its flag set,
// so tests drive the full CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list registered experiments")
		runIDs     = fs.String("run", "", "comma-separated experiment ids to run")
		all        = fs.Bool("all", false, "run every experiment")
		full       = fs.Bool("full", false, "paper-scale grids (slower)")
		implicit   = fs.Bool("implicit", false, "restrict graph-representation axes to implicit (generate-free) points")
		channel    = fs.String("channel", "", "restrict channel-model axes to one leg: binary, fade, or duty")
		seed       = fs.Uint64("seed", 2009, "base seed (default: year of the TCS version)")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		out        = fs.String("out", "", "write output to this file instead of stdout")
		format     = fs.String("format", "md", "output format: md, csv, or jsonl")
		checkpoint = fs.String("checkpoint", "", "stream one JSONL record per completed grid point to this file")
		resume     = fs.Bool("resume", false, "skip points already recorded in -checkpoint (same seed and scale)")
		shard      = fs.String("shard", "", "run only shard k of N grid points, as k/N (requires -format jsonl)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = fs.String("trace", "", "write a runtime/trace execution trace to this file")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		parMode    = fs.String("parallelism", "auto", "core split between trial fan-out and rounds-parallel delivery: auto (measured arbiter), trials, or off")
		calibrate  = fs.Bool("calibrate", false, "run the parallelism calibration probe, print the measurement as JSON, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *calibrate {
		c := radio.Calibrate()
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		return 0
	}
	switch *parMode {
	case "auto", "trials", "off":
	default:
		fmt.Fprintf(stderr, "experiments: unknown -parallelism %q (want auto, trials, or off)\n", *parMode)
		return 1
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(stderr, "experiments: pprof server:", err)
			}
		}()
		fmt.Fprintf(stderr, "pprof server on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
			}
		}()
	}

	if *list {
		fmt.Fprintln(stdout, "ID    paper ref                      title")
		for _, e := range expt.All() {
			fmt.Fprintf(stdout, "%-5s %-30s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return 0
	}

	var selected []expt.Experiment
	switch {
	case *all:
		selected = expt.All()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.ByID(id)
			if !ok {
				fmt.Fprintf(stderr, "experiments: unknown id %q (use -list)\n", id)
				return 1
			}
			selected = append(selected, e)
		}
	default:
		fmt.Fprintln(stderr, "experiments: pass -list, -run ids, or -all")
		return 1
	}

	shardIdx, shardN, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	switch *format {
	case "md", "csv", "jsonl":
	default:
		fmt.Fprintf(stderr, "experiments: unknown -format %q (want md, csv, or jsonl)\n", *format)
		return 1
	}
	if shardN > 1 && *format != "jsonl" {
		fmt.Fprintln(stderr, "experiments: a shard holds only its own grid points, so tables cannot be "+
			"rendered; use -format jsonl (then concatenate shard checkpoints and re-run with -resume to render)")
		return 1
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "experiments: -resume requires -checkpoint")
		return 1
	}
	if shardN > 1 && *checkpoint == "" {
		fmt.Fprintln(stderr, "experiments: -shard requires -checkpoint (the shard's record stream is its output)")
		return 1
	}

	cfg := expt.Config{Full: *full, Seed: *seed, Workers: *workers, Parallelism: *parMode}
	if *implicit {
		cfg.GraphMode = "implicit"
	}
	cfg.Channel = *channel
	watchDone := make(chan struct{})
	defer close(watchDone)
	start := time.Now()
	rs, err := campaign.Run(expt.Units(selected), campaign.RunOptions{
		Config:     cfg,
		ShardIndex: shardIdx,
		ShardCount: shardN,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Trials:     expt.Trials(cfg),
		Progress:   stderr,
		Interrupt:  watchSignals(stderr, watchDone),
	})
	if errors.Is(err, campaign.ErrInterrupted) {
		fmt.Fprintln(stderr, "experiments:", err)
		if *checkpoint != "" {
			fmt.Fprintf(stderr, "experiments: checkpoint %s holds every completed point; rerun with -resume to continue\n", *checkpoint)
		}
		return exitInterrupted
	}
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	fmt.Fprintf(stderr, "campaign finished in %v\n", time.Since(start).Round(time.Millisecond))

	// Rendering tables needs the whole grid; with -resume over a merged (or
	// still-partial) checkpoint some campaigns may be incomplete.
	if *format != "jsonl" {
		for _, e := range selected {
			if !campaign.Complete(campaign.Unit{ID: e.ID, C: e.Campaign}, cfg, rs) {
				fmt.Fprintf(stderr, "experiments: %s is missing grid points (partial checkpoint?); "+
					"run the remaining shards and merge, or use -format jsonl\n", e.ID)
				return 1
			}
		}
	}

	var b strings.Builder
	switch *format {
	case "jsonl":
		if err := rs.WriteJSONL(&b); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
	case "csv":
		for _, e := range selected {
			fmt.Fprintf(&b, "# %s — %s (%s)\n", e.ID, e.Title, e.PaperRef)
			for _, t := range e.Campaign.Render(cfg, campaign.NewView(rs, e.ID)) {
				fmt.Fprintf(&b, "# table: %s\n", t.Title)
				b.WriteString(t.CSV())
				b.WriteString("\n")
			}
		}
	default:
		scale := "reduced"
		if *full {
			scale = "full"
		}
		fmt.Fprintf(&b, "# Experiment results (%s scale, seed %d)\n\n", scale, *seed)
		fmt.Fprintf(&b, "Generated by `cmd/experiments`; the experiment ↔ paper mapping is the "+
			"\"Experiment index\" section of README.md.\n\n")
		for _, e := range selected {
			fmt.Fprintf(&b, "## %s — %s\n\nPaper reference: %s.\n\n", e.ID, e.Title, e.PaperRef)
			for _, t := range e.Campaign.Render(cfg, campaign.NewView(rs, e.ID)) {
				b.WriteString(t.Markdown())
				b.WriteString("\n")
			}
		}
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stderr, "wrote %s\n", *out)
	}
	return 0
}
