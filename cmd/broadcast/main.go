// Command broadcast runs a broadcasting protocol on a topology and reports
// time (rounds) and energy (transmissions) over repeated trials.
//
// Examples:
//
//	broadcast -topo gnp:n=4096,p=0.017 -proto algorithm1:p=0.017 -trials 20
//	broadcast -topo grid:w=24,h=24 -proto algorithm3:beta=2 -proto2 cr:beta=2
//	broadcast -topo fig2:n=128,d=96 -proto algorithm3 -history
//
// Spec syntax is documented in internal/cliutil. With -proto2 set the two
// protocols run on identical topologies and seeds, giving a paired
// comparison (the §4 Algorithm 3 vs Czumaj–Rytter experiment in one line).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var (
		topoSpec  = flag.String("topo", "gnp:n=1024,p=0.054", "topology spec (see internal/cliutil)")
		protoSpec = flag.String("proto", "algorithm1:p=0.054", "protocol spec")
		proto2    = flag.String("proto2", "", "optional second protocol for a paired comparison")
		trials    = flag.Int("trials", 10, "independent trials")
		seed      = flag.Uint64("seed", 1, "base seed")
		maxRounds = flag.Int("maxrounds", 200000, "round cap per run")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		history   = flag.Bool("history", false, "print the per-round history of trial 0")
		traceFile = flag.String("trace", "", "write a JSONL event trace of trial 0 to this file")
		loss      = flag.Float64("loss", 0, "per-edge fading probability in [0,1)")
		csv       = flag.Bool("csv", false, "emit CSV instead of markdown")
	)
	flag.Parse()

	topo, err := cliutil.ParseTopology(*topoSpec)
	if err != nil {
		fatal(err)
	}
	specs := []string{*protoSpec}
	if *proto2 != "" {
		specs = append(specs, *proto2)
	}

	table := sweep.NewTable(
		fmt.Sprintf("broadcast on %s (n=%d, D≈%d, %d trials)", *topoSpec, topo.N, topo.D, *trials),
		"protocol", "success", "rounds (mean±ci95)", "total tx (mean)", "tx/node", "max tx/node")

	for _, spec := range specs {
		factory, err := cliutil.ParseBroadcaster(spec, topo.N, topo.D)
		if err != nil {
			fatal(err)
		}
		name := factory().Name()
		out := sweep.RunTrials(*trials, *seed, *workers, func(tr sweep.Trial) sweep.Metrics {
			g := topo.Build(tr.Seed)
			res := radio.RunBroadcast(g, topo.Source, factory(), rng.New(rng.SubSeed(tr.Seed, 1)),
				radio.Options{MaxRounds: *maxRounds, LossProb: *loss})
			m := sweep.Metrics{
				"success": 0, "totalTx": float64(res.TotalTx),
				"txPerNode": res.TxPerNode(), "maxNodeTx": float64(res.MaxNodeTx),
			}
			if res.Completed() {
				m["success"] = 1
				m["rounds"] = float64(res.InformedRound)
			}
			return m
		})
		roundsCell := "n/a"
		if sweep.RateOf(out, "success") > 0 {
			var xs []float64
			for _, v := range out["rounds"] {
				if v == v { // skip NaN
					xs = append(xs, v)
				}
			}
			mean, hw := stats.MeanCI(xs, 1.96)
			roundsCell = fmt.Sprintf("%.1f±%.1f", mean, hw)
		}
		table.AddRow(name,
			sweep.F(sweep.RateOf(out, "success")),
			roundsCell,
			sweep.F(sweep.MeanOf(out, "totalTx")),
			sweep.F(sweep.MeanOf(out, "txPerNode")),
			sweep.F(sweep.MeanOf(out, "maxNodeTx")))
	}

	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.Markdown())
	}

	if *history || *traceFile != "" {
		factory, err := cliutil.ParseBroadcaster(specs[0], topo.N, topo.D)
		if err != nil {
			fatal(err)
		}
		opts := radio.Options{MaxRounds: *maxRounds, RecordHistory: true, LossProb: *loss}
		var traceOut *os.File
		if *traceFile != "" {
			traceOut, err = os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer traceOut.Close()
			jt := trace.NewJSONL(traceOut)
			opts.Tracer = jt
			defer func() {
				if jt.Err() != nil {
					fmt.Fprintln(os.Stderr, "broadcast: trace:", jt.Err())
				}
			}()
		}
		g := topo.Build(rng.SubSeed(*seed, 0))
		res := radio.RunBroadcast(g, topo.Source, factory(), rng.New(rng.SubSeed(rng.SubSeed(*seed, 0), 1)), opts)
		if *history {
			ht := sweep.NewTable("per-round history (trial 0)",
				"round", "transmitters", "newly informed", "informed", "collisions")
			for _, h := range res.History {
				ht.AddRow(sweep.FInt(h.Round), sweep.FInt(h.Transmitters),
					sweep.FInt(h.NewlyInformed), sweep.FInt(h.Informed), sweep.FInt(h.Collisions))
			}
			fmt.Println()
			fmt.Print(ht.Markdown())
		}
		if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "wrote trace of trial 0 to %s\n", *traceFile)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "broadcast:", err)
	os.Exit(1)
}
