// Command campaignworker is the execution half of the campaign service:
// it registers with a campaignd daemon, pulls point leases, runs each
// point through the compiled-in experiment registry, and reports records
// back. Run as many as you like against one daemon — dispatch is
// pull-based, so workers steal whatever work is runnable.
//
//	campaignworker -daemon http://127.0.0.1:8655
//	campaignworker -daemon http://127.0.0.1:8655 -id lab-2
//
// A worker is stateless: records land in the daemon's checkpoint
// namespace, and a worker that dies mid-point simply loses its lease —
// the daemon requeues the point and another worker reruns it with the
// same derived seed, producing the identical record.
//
// The loop also survives the daemon: registration, acquire and report
// delivery retry transient failures with capped exponential backoff, a
// finished record is re-sent through arbitrary daemon downtime rather
// than abandoned, and after an outage the worker re-registers on its
// next successful heartbeat. A campaignd restarted over the same -state
// directory picks the fleet back up without any worker restarting.
//
// Chaos flags (fault injection for tests and the CI smoke job):
//
//	-chaos.kill-after-points N   complete N points, acquire one more
//	                             lease, then die holding it (exit 3)
//	-chaos.latency D             sleep D before reporting each point
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/jobqueue/exptrun"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		daemon    = flag.String("daemon", "http://127.0.0.1:8655", "campaignd base URL")
		id        = flag.String("id", "", "worker ID (default: worker-<pid>)")
		poll      = flag.Duration("poll", 500*time.Millisecond, "idle wait between lease requests")
		heartbeat = flag.Duration("heartbeat", 0, "heartbeat cadence (default: the daemon's suggestion)")
		chaosKill = flag.Int("chaos.kill-after-points", -1, "CHAOS: die holding an unreported lease after completing this many points (-1 disables)")
		chaosLat  = flag.Duration("chaos.latency", 0, "CHAOS: sleep before reporting each completion")
	)
	flag.Parse()
	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "campaignworker: %v — finishing in-flight point, then exiting\n", s)
		cancel()
		<-sig
		fmt.Fprintln(os.Stderr, "campaignworker: second signal — exiting immediately")
		os.Exit(130)
	}()

	killAt := 0
	if *chaosKill >= 0 {
		killAt = *chaosKill + 1 // complete N points, die holding lease N+1
	}
	err := jobqueue.RunWorker(ctx, jobqueue.NewClient(*daemon), exptrun.Runner{}, jobqueue.WorkerOptions{
		ID:               *id,
		Poll:             *poll,
		Heartbeat:        *heartbeat,
		ChaosKillAtLease: killAt,
		ChaosLatency:     *chaosLat,
		Log:              os.Stderr,
	})
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		return 0
	case errors.Is(err, jobqueue.ErrChaosKill):
		fmt.Fprintln(os.Stderr, "campaignworker:", err)
		return 3
	default:
		fmt.Fprintln(os.Stderr, "campaignworker:", err)
		return 1
	}
}
