// Command campaignctl is the operator CLI for campaignd: submit
// campaigns, watch progress, and pull results — stdlib only, so scripts
// need neither curl nor jq.
//
//	campaignctl [-daemon URL] submit -experiments F1,F2 [-full] [-seed N] [-id job-x] [-resume]
//	campaignctl [-daemon URL] status <job>
//	campaignctl [-daemon URL] wait <job> [-timeout D] [-poll D]
//	campaignctl [-daemon URL] records <job>        # JSONL to stdout
//	campaignctl [-daemon URL] manifest <job>
//	campaignctl [-daemon URL] jobs
//	campaignctl [-daemon URL] health
//
// `wait` blocks until the campaign finishes: exit 0 when every point
// completed, exit 4 when it completed degraded (holes in the failure
// manifest), exit 1 on error or timeout. Transient daemon outages (a
// campaignd restart mid-campaign) do not fail the wait: the poll loop
// keeps waiting through them until the overall timeout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/jobqueue"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: campaignctl [-daemon URL] <submit|status|wait|records|manifest|jobs|health> [args]")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	global := flag.NewFlagSet("campaignctl", flag.ContinueOnError)
	global.SetOutput(stderr)
	daemon := global.String("daemon", "http://127.0.0.1:8655", "campaignd base URL")
	if err := global.Parse(args); err != nil {
		return 2
	}
	rest := global.Args()
	if len(rest) == 0 {
		return usage(stderr)
	}
	c := jobqueue.NewClient(*daemon)
	ctx := context.Background()
	cmd, rest := rest[0], rest[1:]

	fail := func(err error) int {
		fmt.Fprintln(stderr, "campaignctl:", err)
		return 1
	}
	printJSON := func(v any) int {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}

	switch cmd {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ContinueOnError)
		fs.SetOutput(stderr)
		var (
			expts    = fs.String("experiments", "all", "comma-separated experiment IDs, or \"all\"")
			full     = fs.Bool("full", false, "paper-faithful scale (default: reduced)")
			seed     = fs.Uint64("seed", 1, "base seed; every point seed derives from it")
			workers  = fs.Int("workers", 0, "per-point simulation parallelism hint (0 = worker default)")
			id       = fs.String("id", "", "job ID (default: daemon-assigned)")
			resume   = fs.Bool("resume", false, "resume into this job's existing checkpoint namespace")
			implicit = fs.Bool("implicit", false, "restrict graph-representation axes to implicit (generate-free) points")
			channel  = fs.String("channel", "", "restrict channel-model axes to one leg: binary, fade, or duty")
		)
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		mode := ""
		if *implicit {
			mode = "implicit"
		}
		st, err := c.Submit(ctx, jobqueue.JobSpec{
			ID:          *id,
			Experiments: strings.Split(*expts, ","),
			Full:        *full,
			Seed:        *seed,
			Workers:     *workers,
			GraphMode:   mode,
			Channel:     *channel,
			Resume:      *resume,
		})
		if err != nil {
			return fail(err)
		}
		return printJSON(st)

	case "status":
		if len(rest) != 1 {
			return usage(stderr)
		}
		st, err := c.Status(ctx, rest[0])
		if err != nil {
			return fail(err)
		}
		return printJSON(st)

	case "wait":
		fs := flag.NewFlagSet("wait", flag.ContinueOnError)
		fs.SetOutput(stderr)
		timeout := fs.Duration("timeout", 30*time.Minute, "give up after this long")
		poll := fs.Duration("poll", time.Second, "status poll interval")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			return usage(stderr)
		}
		return waitForJob(c, fs.Arg(0), *timeout, *poll, stderr)

	case "records":
		if len(rest) != 1 {
			return usage(stderr)
		}
		if err := c.Records(ctx, rest[0], stdout); err != nil {
			return fail(err)
		}
		return 0

	case "manifest":
		if len(rest) != 1 {
			return usage(stderr)
		}
		m, err := c.ManifestOf(ctx, rest[0])
		if err != nil {
			return fail(err)
		}
		return printJSON(m)

	case "jobs":
		jobs, err := c.Jobs(ctx)
		if err != nil {
			return fail(err)
		}
		return printJSON(map[string]any{"jobs": jobs})

	case "health":
		h, err := c.Healthz(ctx)
		if err != nil {
			return fail(err)
		}
		return printJSON(h)

	default:
		fmt.Fprintf(stderr, "campaignctl: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// waitForJob polls a job to completion. Exit codes: 0 clean, 4 degraded
// (completed with failure-manifest holes), 1 on timeout or a permanent
// error. A transient error — the daemon down for a restart — is reported
// and waited through: wait's contract is about the campaign, not about
// any one daemon process serving it.
func waitForJob(c *jobqueue.Client, job string, timeout, poll time.Duration, stderr io.Writer) int {
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(ctx, job)
		if err != nil {
			if !jobqueue.Retryable(err) {
				fmt.Fprintln(stderr, "campaignctl:", err)
				return 1
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(stderr, "campaignctl: timed out waiting for %s (last error: %v)\n", job, err)
				return 1
			}
			fmt.Fprintf(stderr, "campaignctl: %s: daemon temporarily unreachable (%v); kept waiting\n", job, err)
			time.Sleep(poll)
			continue
		}
		fmt.Fprintf(stderr, "campaignctl: %s: %d/%d done, %d leased, %d failed, eta %.0fs\n",
			job, st.Done, st.Total, st.Leased, st.Failed, st.ETASeconds)
		if st.State == "complete" {
			if st.Failed > 0 {
				fmt.Fprintf(stderr, "campaignctl: %s completed DEGRADED: %d point(s) in the failure manifest\n", job, st.Failed)
				return 4
			}
			fmt.Fprintf(stderr, "campaignctl: %s completed clean (%d point(s))\n", job, st.Done)
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(stderr, "campaignctl: timed out waiting for %s (%d/%d done)\n", job, st.Done, st.Total)
			return 1
		}
		time.Sleep(poll)
	}
}
