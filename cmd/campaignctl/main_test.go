package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobqueue"
)

// scriptedDaemon serves a canned sequence of status answers, one per
// request; the last answer repeats. A nil entry means "be down for this
// poll" (respond 503).
type scriptedDaemon struct {
	mu      sync.Mutex
	answers []*jobqueue.JobStatus
	i       int
}

func (s *scriptedDaemon) handler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.answers[s.i]
	if s.i < len(s.answers)-1 {
		s.i++
	}
	s.mu.Unlock()
	if st == nil {
		http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
		return
	}
	json.NewEncoder(w).Encode(st) //nolint:errcheck
}

func status(state string, done, total, failed int) *jobqueue.JobStatus {
	return &jobqueue.JobStatus{ID: "job-1", State: state, Done: done, Total: total, Failed: failed}
}

// TestWaitForJob drives waitForJob directly against scripted daemon
// behaviour, pinning the exit-code contract: 0 clean, 4 degraded, 1 on
// permanent error or timeout — and the wait-through-downtime path.
func TestWaitForJob(t *testing.T) {
	cases := []struct {
		name    string
		answers []*jobqueue.JobStatus
		status  int // when set (with answers nil), every poll returns this HTTP status
		timeout time.Duration
		want    int
		stderr  string
	}{
		{
			name:    "running then clean",
			answers: []*jobqueue.JobStatus{status("running", 3, 6, 0), status("complete", 6, 6, 0)},
			want:    0,
			stderr:  "completed clean",
		},
		{
			name:    "degraded completion",
			answers: []*jobqueue.JobStatus{status("complete", 5, 6, 1)},
			want:    4,
			stderr:  "completed DEGRADED",
		},
		{
			name:    "daemon outage mid-wait is waited through",
			answers: []*jobqueue.JobStatus{status("running", 2, 6, 0), nil, nil, status("complete", 6, 6, 0)},
			want:    0,
			stderr:  "daemon temporarily unreachable",
		},
		{
			name:   "permanent error fails immediately",
			status: http.StatusNotFound,
			want:   1,
			stderr: "HTTP 404",
		},
		{
			name:    "timeout while daemon down",
			answers: []*jobqueue.JobStatus{nil},
			timeout: 60 * time.Millisecond,
			want:    1,
			stderr:  "timed out waiting",
		},
		{
			name:    "timeout while still running",
			answers: []*jobqueue.JobStatus{status("running", 1, 6, 0)},
			timeout: 60 * time.Millisecond,
			want:    1,
			stderr:  "timed out waiting",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h http.HandlerFunc
			if tc.answers != nil {
				h = (&scriptedDaemon{answers: tc.answers}).handler
			} else {
				h = func(w http.ResponseWriter, r *http.Request) {
					http.Error(w, `{"error":"no such job"}`, tc.status)
				}
			}
			srv := httptest.NewServer(h)
			defer srv.Close()
			c := jobqueue.NewClient(srv.URL)
			// No transparent client retry: the test exercises waitForJob's
			// own poll-through-outage loop, not the client's backoff.
			c.Retry = jobqueue.RetryPolicy{}
			timeout := tc.timeout
			if timeout == 0 {
				timeout = 5 * time.Second
			}
			var stderr strings.Builder
			got := waitForJob(c, "job-1", timeout, 5*time.Millisecond, &stderr)
			if got != tc.want {
				t.Fatalf("exit = %d, want %d\nstderr:\n%s", got, tc.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.stderr, stderr.String())
			}
		})
	}
}
