#!/usr/bin/env bash
# Memory-ceiling gate: prove that a planet-scale implicit-topology session
# fits a pinned heap budget. Runs TestImplicitScaleMemoryCeiling (the
# env-gated test in memgate_test.go), which builds a generate-free
# n = 10^8 G(n, 8·ln n/n), drives several simulated rounds over a warm
# session, and fails if runtime.ReadMemStats reports more than the budget
# after a final GC.
#
#   scripts/mem_gate.sh                 # n=10^8 under the pinned 1024 MiB
#   MEM_GATE_BUDGET_MB=512 scripts/mem_gate.sh   # custom budget
#   MEM_GATE_N=16777216 MEM_GATE_BUDGET_MB=256 scripts/mem_gate.sh
#
# The pinned default (1024 MiB for 10^8 nodes, measured ~890 MiB) is tight
# on purpose: one extra O(n) int32 array costs ~400 MiB and breaks the
# gate, and any O(m) state would need ~100 GiB at this operating point
# (mean degree ≈ 147) — the regression this gate exists to catch.
set -euo pipefail

cd "$(dirname "$0")/.."

export MEM_GATE_BUDGET_MB="${MEM_GATE_BUDGET_MB:-1024}"

echo "mem_gate: n=${MEM_GATE_N:-100000000} budget ${MEM_GATE_BUDGET_MB} MiB" >&2
go test -run '^TestImplicitScaleMemoryCeiling$' -v -timeout 30m .
