#!/usr/bin/env bash
# Allocation gate: parse a benchmark text file (the ${OUT%.json}.txt form
# written by scripts/bench.sh, i.e. `go test -bench -benchmem` result lines)
# and fail if any per-round benchmark — BenchmarkPrimitive*Round* — reports
# more than 0 allocs/op. These benchmarks time individual simulated rounds
# over a warm session, so any steady-state allocation in the round loop
# (decision draw, delivery kernel, energy accounting, skip path) shows up
# here and regresses the engine's allocation-free contract.
#
#   scripts/alloc_gate.sh BENCH_pr.txt
#
# Run it on a full-harness result (default benchtime), not a -benchtime=1x
# smoke: per-run setup allocations only amortise to 0 allocs/op across many
# timed rounds.
set -euo pipefail

if [[ $# -ne 1 ]]; then
  echo "usage: scripts/alloc_gate.sh BENCH.txt" >&2
  exit 2
fi

awk '
/^BenchmarkPrimitive[A-Za-z0-9]*Round/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  v = -1
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "allocs/op") { v = $i; break }
  }
  if (v < 0) next # no -benchmem column on this line
  seen[name] = 1
  if (v + 0 > worst[name]) worst[name] = v + 0
}
END {
  n = 0
  bad = 0
  for (name in seen) {
    n++
    status = "OK"
    if (worst[name] > 0) { status = "FAIL"; bad++ }
    printf "%-52s %10d allocs/op   %s\n", name, worst[name], status
  }
  if (n == 0) {
    print "alloc_gate: no Primitive*Round* benchmarks with allocs/op found" > "/dev/stderr"
    exit 2
  }
  if (bad > 0) {
    printf "alloc_gate: FAIL — %d per-round benchmark(s) allocate in the round loop\n", bad > "/dev/stderr"
    exit 1
  }
  print "alloc_gate: OK"
}' "$1"
