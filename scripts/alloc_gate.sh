#!/usr/bin/env bash
# Allocation gate: parse a benchmark text file (the ${OUT%.json}.txt form
# written by scripts/bench.sh, i.e. `go test -bench -benchmem` result lines)
# and fail on allocation regressions:
#
#   - every per-round benchmark — BenchmarkPrimitive*Round* — must report
#     0 allocs/op. These benchmarks time individual simulated rounds over a
#     warm session, so any steady-state allocation in the round loop
#     (decision draw, delivery kernel, energy accounting, skip path) shows
#     up here and regresses the engine's allocation-free contract.
#   - named per-run benchmarks carry explicit small budgets (see BUDGETS in
#     the awk program): a complete run legitimately allocates its result,
#     but session storage must come from scratch reuse, so the budget is a
#     handful of allocations, not O(n).
#
#   scripts/alloc_gate.sh BENCH_pr.txt
#
# Run it on a full-harness result (default benchtime), not a -benchtime=1x
# smoke: per-run setup allocations only amortise to 0 allocs/op across many
# timed rounds.
set -euo pipefail

if [[ $# -ne 1 ]]; then
  echo "usage: scripts/alloc_gate.sh BENCH.txt" >&2
  exit 2
fi

awk '
BEGIN {
  # Named per-run budgets. GossipRun allocates its GossipResult + PerNodeTx
  # per op (the session itself is GossipScratch-recycled); measured 3
  # allocs/op, budget 8 for headroom.
  budget["BenchmarkPrimitiveGossipRun"] = 8
}
/^BenchmarkPrimitive/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (name ~ /^BenchmarkPrimitive[A-Za-z0-9]*Round/) limit = 0
  else if (name in budget) limit = budget[name]
  else next
  v = -1
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "allocs/op") { v = $i; break }
  }
  if (v < 0) next # no -benchmem column on this line
  seen[name] = 1
  lim[name] = limit
  if (v + 0 > worst[name]) worst[name] = v + 0
}
END {
  n = 0
  bad = 0
  for (name in seen) {
    n++
    status = "OK"
    if (worst[name] > lim[name]) { status = "FAIL"; bad++ }
    printf "%-52s %10d allocs/op (budget %d)   %s\n", name, worst[name], lim[name], status
  }
  if (n == 0) {
    print "alloc_gate: no gated Primitive benchmarks with allocs/op found" > "/dev/stderr"
    exit 2
  }
  if (bad > 0) {
    printf "alloc_gate: FAIL — %d benchmark(s) over their allocation budget\n", bad > "/dev/stderr"
    exit 1
  }
  print "alloc_gate: OK"
}' "$1"
