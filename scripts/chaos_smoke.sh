#!/usr/bin/env bash
# Fault-injection smoke for the campaign service: a real campaignd process,
# two real campaignworker processes, one of which is chaos-killed while it
# holds a lease (it dies abruptly: no report, no more heartbeats). The
# daemon must detect the loss, requeue the point, and finish the campaign
# with zero holes — and the merged record stream must be byte-identical
# (modulo ordering) to an unsharded single-process `cmd/experiments` run of
# the same experiments and seed. This is the end-to-end proof that worker
# death cannot corrupt, duplicate, or perturb a single record.
#
#   scripts/chaos_smoke.sh [workdir]
#
# Everything (binaries, checkpoints, logs) lands in workdir (default: a
# fresh mktemp -d). Exits non-zero on any divergence; daemon and worker
# logs are printed on failure for post-mortem.
set -euo pipefail

EXPERIMENTS="F1,F2,E9"
SEED=777

work="${1:-$(mktemp -d)}"
mkdir -p "${work}"
echo "chaos smoke: working in ${work}"

cleanup() {
  # Best-effort teardown; the chaos worker is usually dead already.
  kill "${daemon_pid:-}" "${w1_pid:-}" "${w2_pid:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

die() {
  echo "chaos smoke: FAIL: $*" >&2
  echo "--- campaignd log ---" >&2;   cat "${work}/campaignd.log" >&2 || true
  echo "--- worker-1 log ---" >&2;    cat "${work}/worker1.log" >&2 || true
  echo "--- worker-2 log ---" >&2;    cat "${work}/worker2.log" >&2 || true
  exit 1
}

echo "chaos smoke: building binaries"
go build -o "${work}/experiments" ./cmd/experiments
go build -o "${work}/campaignd" ./cmd/campaignd
go build -o "${work}/campaignworker" ./cmd/campaignworker
go build -o "${work}/campaignctl" ./cmd/campaignctl

echo "chaos smoke: computing single-process truth"
"${work}/experiments" -run "${EXPERIMENTS}" -seed "${SEED}" -format jsonl \
  -checkpoint "${work}/truth.jsonl" -out /dev/null 2>"${work}/truth.log" \
  || die "single-process truth run failed"

echo "chaos smoke: starting campaignd"
"${work}/campaignd" -addr 127.0.0.1:0 -addr-file "${work}/addr" \
  -data "${work}/data" -lease 5s -heartbeat-timeout 3s -sweep 250ms \
  2>"${work}/campaignd.log" &
daemon_pid=$!
for _ in $(seq 1 100); do
  [[ -s "${work}/addr" ]] && break
  kill -0 "${daemon_pid}" 2>/dev/null || die "campaignd died on startup"
  sleep 0.1
done
[[ -s "${work}/addr" ]] || die "campaignd never wrote its address"
daemon="http://$(cat "${work}/addr")"
echo "chaos smoke: daemon at ${daemon}"

echo "chaos smoke: submitting campaign"
"${work}/campaignctl" -daemon "${daemon}" submit -id smoke \
  -experiments "${EXPERIMENTS}" -seed "${SEED}" >"${work}/submit.json" \
  || die "submit failed"

# The victim runs ALONE first so the kill is deterministic — with a rival
# worker on a fast grid the queue can drain before the victim ever gets a
# lease, and the chaos trigger would never fire. Solo, it completes one
# point, acquires a second lease, and dies holding it — indistinguishable
# from SIGKILL mid-simulation.
echo "chaos smoke: starting victim worker"
"${work}/campaignworker" -daemon "${daemon}" -id victim -poll 100ms \
  -chaos.kill-after-points 1 2>"${work}/worker1.log" &
w1_pid=$!
for _ in $(seq 1 300); do
  kill -0 "${w1_pid}" 2>/dev/null || break
  sleep 0.1
done
kill -0 "${w1_pid}" 2>/dev/null && die "victim still alive after 30s, chaos never fired"
# The victim must have died of chaos (exit 3) — otherwise this run proved
# nothing about fault recovery.
set +e
wait "${w1_pid}"; w1_code=$?
set -e
[[ ${w1_code} -eq 3 ]] || die "victim exited ${w1_code}, want chaos exit 3"
echo "chaos smoke: victim died holding a lease"

# Worker 2 must absorb everything the victim dropped, requeued lease
# included, and finish the campaign with zero holes.
"${work}/campaignworker" -daemon "${daemon}" -id survivor -poll 100ms \
  2>"${work}/worker2.log" &
w2_pid=$!

echo "chaos smoke: waiting for completion"
if ! "${work}/campaignctl" -daemon "${daemon}" wait -timeout 5m -poll 1s smoke \
  2>"${work}/wait.log"; then
  code=$?
  [[ ${code} -eq 4 ]] && die "campaign completed DEGRADED (holes in the manifest)"
  die "campaignctl wait exited ${code}"
fi

grep -q "requeued" "${work}/campaignd.log" \
  || die "daemon never requeued the victim's abandoned lease"

echo "chaos smoke: fetching merged records"
"${work}/campaignctl" -daemon "${daemon}" records smoke >"${work}/merged.jsonl" \
  || die "records fetch failed"

sort "${work}/truth.jsonl" >"${work}/truth.sorted"
sort "${work}/merged.jsonl" >"${work}/merged.sorted"
diff -u "${work}/truth.sorted" "${work}/merged.sorted" \
  || die "merged records differ from the single-process run"

n=$(wc -l <"${work}/truth.jsonl")
echo "chaos smoke: PASS — ${n} records identical across worker death"
