#!/usr/bin/env bash
# Fault-injection smoke for the campaign service: a real campaignd process,
# two real campaignworker processes, one of which is chaos-killed while it
# holds a lease (it dies abruptly: no report, no more heartbeats). The
# daemon must detect the loss, requeue the point, and finish the campaign
# with zero holes — and the merged record stream must be byte-identical
# (modulo ordering) to an unsharded single-process `cmd/experiments` run of
# the same experiments and seed. This is the end-to-end proof that worker
# death cannot corrupt, duplicate, or perturb a single record.
#
#   scripts/chaos_smoke.sh [workdir]
#
# Everything (binaries, checkpoints, logs) lands in workdir (default: a
# fresh mktemp -d). Exits non-zero on any divergence; daemon and worker
# logs are printed on failure for post-mortem.
set -euo pipefail

EXPERIMENTS="F1,F2,E9"
SEED=777

work="${1:-$(mktemp -d)}"
mkdir -p "${work}"
echo "chaos smoke: working in ${work}"

cleanup() {
  # Best-effort teardown; the chaos worker is usually dead already.
  kill "${daemon_pid:-}" "${w1_pid:-}" "${w2_pid:-}" \
       "${daemon2_pid:-}" "${w3_pid:-}" "${w4_pid:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

die() {
  echo "chaos smoke: FAIL: $*" >&2
  for log in campaignd campaignd2 worker1 worker2 worker3 worker4; do
    [[ -f "${work}/${log}.log" ]] || continue
    echo "--- ${log} log ---" >&2; cat "${work}/${log}.log" >&2 || true
  done
  exit 1
}

echo "chaos smoke: building binaries"
go build -o "${work}/experiments" ./cmd/experiments
go build -o "${work}/campaignd" ./cmd/campaignd
go build -o "${work}/campaignworker" ./cmd/campaignworker
go build -o "${work}/campaignctl" ./cmd/campaignctl

echo "chaos smoke: computing single-process truth"
"${work}/experiments" -run "${EXPERIMENTS}" -seed "${SEED}" -format jsonl \
  -checkpoint "${work}/truth.jsonl" -out /dev/null 2>"${work}/truth.log" \
  || die "single-process truth run failed"

echo "chaos smoke: starting campaignd"
"${work}/campaignd" -addr 127.0.0.1:0 -addr-file "${work}/addr" \
  -data "${work}/data" -lease 5s -heartbeat-timeout 3s -sweep 250ms \
  2>"${work}/campaignd.log" &
daemon_pid=$!
for _ in $(seq 1 100); do
  [[ -s "${work}/addr" ]] && break
  kill -0 "${daemon_pid}" 2>/dev/null || die "campaignd died on startup"
  sleep 0.1
done
[[ -s "${work}/addr" ]] || die "campaignd never wrote its address"
daemon="http://$(cat "${work}/addr")"
echo "chaos smoke: daemon at ${daemon}"

echo "chaos smoke: submitting campaign"
"${work}/campaignctl" -daemon "${daemon}" submit -id smoke \
  -experiments "${EXPERIMENTS}" -seed "${SEED}" >"${work}/submit.json" \
  || die "submit failed"

# The victim runs ALONE first so the kill is deterministic — with a rival
# worker on a fast grid the queue can drain before the victim ever gets a
# lease, and the chaos trigger would never fire. Solo, it completes one
# point, acquires a second lease, and dies holding it — indistinguishable
# from SIGKILL mid-simulation.
echo "chaos smoke: starting victim worker"
"${work}/campaignworker" -daemon "${daemon}" -id victim -poll 100ms \
  -chaos.kill-after-points 1 2>"${work}/worker1.log" &
w1_pid=$!
for _ in $(seq 1 300); do
  kill -0 "${w1_pid}" 2>/dev/null || break
  sleep 0.1
done
kill -0 "${w1_pid}" 2>/dev/null && die "victim still alive after 30s, chaos never fired"
# The victim must have died of chaos (exit 3) — otherwise this run proved
# nothing about fault recovery.
set +e
wait "${w1_pid}"; w1_code=$?
set -e
[[ ${w1_code} -eq 3 ]] || die "victim exited ${w1_code}, want chaos exit 3"
echo "chaos smoke: victim died holding a lease"

# Worker 2 must absorb everything the victim dropped, requeued lease
# included, and finish the campaign with zero holes.
"${work}/campaignworker" -daemon "${daemon}" -id survivor -poll 100ms \
  2>"${work}/worker2.log" &
w2_pid=$!

echo "chaos smoke: waiting for completion"
if ! "${work}/campaignctl" -daemon "${daemon}" wait -timeout 5m -poll 1s smoke \
  2>"${work}/wait.log"; then
  code=$?
  [[ ${code} -eq 4 ]] && die "campaign completed DEGRADED (holes in the manifest)"
  die "campaignctl wait exited ${code}"
fi

grep -q "requeued" "${work}/campaignd.log" \
  || die "daemon never requeued the victim's abandoned lease"

echo "chaos smoke: fetching merged records"
"${work}/campaignctl" -daemon "${daemon}" records smoke >"${work}/merged.jsonl" \
  || die "records fetch failed"

sort "${work}/truth.jsonl" >"${work}/truth.sorted"
sort "${work}/merged.jsonl" >"${work}/merged.sorted"
diff -u "${work}/truth.sorted" "${work}/merged.sorted" \
  || die "merged records differ from the single-process run"

n=$(wc -l <"${work}/truth.jsonl")
echo "chaos smoke: PASS leg 1 — ${n} records identical across worker death"

# ---------------------------------------------------------------------------
# Leg 2: kill the DAEMON. A fresh campaignd (own -data/-state) runs a second
# campaign across two slow workers; mid-campaign — after at least two worker
# completions, with more in flight — the daemon takes SIGKILL. Restarted over
# the same address and state directory, it must replay its WAL, pick the
# fleet back up (the workers are never restarted), and finish with records
# byte-identical to the same single-process truth.
# ---------------------------------------------------------------------------
kill "${w2_pid}" 2>/dev/null || true
kill "${daemon_pid}" 2>/dev/null || true
wait "${w2_pid}" "${daemon_pid}" 2>/dev/null || true

done_count() {
  "${work}/campaignctl" -daemon "${daemon2}" status smoke2 2>/dev/null \
    | tr -d ' ' | grep -o '"done":[0-9]*' | head -n1 | cut -d: -f2 || echo 0
}

echo "chaos smoke: leg 2 — starting campaignd (durable state)"
"${work}/campaignd" -addr 127.0.0.1:0 -addr-file "${work}/addr2" \
  -data "${work}/data2" -state "${work}/state2" \
  -lease 5s -heartbeat-timeout 3s -sweep 250ms \
  2>"${work}/campaignd2.log" &
daemon2_pid=$!
for _ in $(seq 1 100); do
  [[ -s "${work}/addr2" ]] && break
  kill -0 "${daemon2_pid}" 2>/dev/null || die "leg-2 campaignd died on startup"
  sleep 0.1
done
[[ -s "${work}/addr2" ]] || die "leg-2 campaignd never wrote its address"
addr2="$(cat "${work}/addr2")"
daemon2="http://${addr2}"
echo "chaos smoke: leg-2 daemon at ${daemon2}"

# Slow workers (300ms per point) keep the campaign running long enough to
# kill the daemon mid-flight with work genuinely in progress.
"${work}/campaignworker" -daemon "${daemon2}" -id slow-1 -poll 100ms \
  -chaos.latency 300ms 2>"${work}/worker3.log" &
w3_pid=$!
"${work}/campaignworker" -daemon "${daemon2}" -id slow-2 -poll 100ms \
  -chaos.latency 300ms 2>"${work}/worker4.log" &
w4_pid=$!

"${work}/campaignctl" -daemon "${daemon2}" submit -id smoke2 \
  -experiments "${EXPERIMENTS}" -seed "${SEED}" >"${work}/submit2.json" \
  || die "leg-2 submit failed"

echo "chaos smoke: waiting for ≥2 completions before the kill"
for _ in $(seq 1 600); do
  d=$(done_count)
  [[ "${d:-0}" -ge 2 ]] && break
  sleep 0.1
done
d=$(done_count)
[[ "${d:-0}" -ge 2 ]] || die "campaign never got underway (done=${d:-0})"
[[ "${d}" -le $((n - 2)) ]] || die "campaign drained too fast to test a mid-flight daemon kill (done=${d}/${n})"

echo "chaos smoke: SIGKILL campaignd (done=${d}/${n})"
kill -9 "${daemon2_pid}"
wait "${daemon2_pid}" 2>/dev/null || true

echo "chaos smoke: restarting campaignd on ${addr2} over the same state"
"${work}/campaignd" -addr "${addr2}" \
  -data "${work}/data2" -state "${work}/state2" \
  -lease 5s -heartbeat-timeout 3s -sweep 250ms \
  2>>"${work}/campaignd2.log" &
daemon2_pid=$!
sleep 0.5
kill -0 "${daemon2_pid}" 2>/dev/null || die "restarted campaignd died (port not rebindable?)"

grep -q "restored" "${work}/campaignd2.log" \
  || die "restarted daemon never logged a state restore — WAL not replayed"

echo "chaos smoke: waiting for completion through the restart"
if ! "${work}/campaignctl" -daemon "${daemon2}" wait -timeout 5m -poll 1s smoke2 \
  2>"${work}/wait2.log"; then
  code=$?
  [[ ${code} -eq 4 ]] && die "leg-2 campaign completed DEGRADED"
  die "leg-2 campaignctl wait exited ${code}"
fi

# The workers must have ridden out the outage — same PIDs, never restarted.
kill -0 "${w3_pid}" 2>/dev/null || die "worker slow-1 did not survive the daemon restart"
kill -0 "${w4_pid}" 2>/dev/null || die "worker slow-2 did not survive the daemon restart"

"${work}/campaignctl" -daemon "${daemon2}" records smoke2 >"${work}/merged2.jsonl" \
  || die "leg-2 records fetch failed"
sort "${work}/merged2.jsonl" >"${work}/merged2.sorted"
diff -u "${work}/truth.sorted" "${work}/merged2.sorted" \
  || die "leg-2 merged records differ from the single-process run"

echo "chaos smoke: PASS leg 2 — ${n} records identical across daemon SIGKILL + restart"
echo "chaos smoke: PASS"
