#!/usr/bin/env bash
# Benchmark-regression harness: runs the Primitive micro-benchmarks with
# allocation stats, writes the raw `go test -json` stream to an output file,
# and derives a benchstat-compatible text file next to it, so successive PRs
# (and the CI bench gate) can diff ns/op and allocs/op. The default pattern
# covers the energy-path benchmarks too (PrimitiveAlgorithm1RunEnergy,
# PrimitiveEnergyRound262144), so the enabled-model cost is tracked next to
# the disabled-model hot path it must not perturb. Usage:
#
#   scripts/bench.sh                         # count=5, all Primitive benchmarks
#   COUNT=1 scripts/bench.sh Decision        # quick smoke of a subset
#   scripts/bench.sh -o /tmp/BENCH_pr.json   # deterministic artifact name (CI)
#   BENCH_FILTER=full COUNT=1 scripts/bench.sh  # include planet-scale runs
#
# BENCH_FILTER selects the tier: "short" (the default) passes -short so the
# planet-scale benchmarks (BenchmarkPrimitiveAlgorithm1Run100M) skip
# themselves and can never time out the PR bench gate; "full" runs
# everything — the nightly leg and the committed BENCH trajectory use it.
#
# The JSON stream goes to OUT (default BENCH_<date>.json in the repo root) and
# the benchmark lines to ${OUT%.json}.txt. Relative -o paths are resolved
# against the bench root. BENCH_ROOT overrides the tree to benchmark (the CI
# gate points it at a merge-base worktree); it defaults to this repo.
#
# Exits with go test's status: a benchmark that fails to build, crashes, or
# fails mid-run fails the harness — the stream is written directly to the
# output file, never through a pipeline that could swallow the status.
set -euo pipefail

OUT=""
while getopts "o:h" opt; do
  case $opt in
    o) OUT="$OPTARG" ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "usage: scripts/bench.sh [-o out.json] [pattern]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

COUNT="${COUNT:-5}"
PATTERN="${1:-Primitive}"
BENCH_FILTER="${BENCH_FILTER:-short}"
case "${BENCH_FILTER}" in
  short) TIER_FLAGS=("-short") ;;
  full)  TIER_FLAGS=("-timeout" "120m") ;;  # planet-scale runs take minutes each
  *) echo "bench.sh: BENCH_FILTER must be \"short\" or \"full\", got \"${BENCH_FILTER}\"" >&2; exit 2 ;;
esac

cd "${BENCH_ROOT:-$(dirname "$0")/..}"
if [[ -z "${OUT}" ]]; then
  OUT="BENCH_$(date +%Y%m%d).json"
fi
TXT="${OUT%.json}.txt"

# Machine metadata: GOMAXPROCS, NumCPU, and the calibration probe's measured
# effective cores and per-edge kernel costs, so trajectory points recorded on
# different containers are comparable. The probe runs in the benched tree
# (BENCH_ROOT may predate -calibrate, so tolerate failure).
CAL_JSON="$(go run ./cmd/experiments -calibrate 2>/dev/null | tr -d '\n' | tr -s ' ' || true)"

echo "running go test -bench=${PATTERN} -benchmem -count=${COUNT} (tier: ${BENCH_FILTER}) -> ${OUT}" >&2
status=0
go test -run '^$' ${TIER_FLAGS[@]+"${TIER_FLAGS[@]}"} -bench="${PATTERN}" -benchmem -count="${COUNT}" \
  -json . > "${OUT}" || status=$?

# Stamp the machine metadata into the JSON stream as one extra line (the
# Action marks it as harness metadata, not a go test event).
if [[ -n "${CAL_JSON}" ]]; then
  printf '{"Action":"bench-meta","Calibration":%s}\n' "${CAL_JSON}" >> "${OUT}"
fi

# Benchstat-compatible text form: the calibration context as `key: value`
# configuration lines (benchstat groups results by them), then the benchmark
# result lines plus the goos/goarch/pkg/cpu context header.
python3 - "${OUT}" > "${TXT}" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines(keepends=True)
for line in lines:
    try:
        ev = json.loads(line)
    except ValueError:
        continue
    cal = ev.get("Calibration")
    if ev.get("Action") == "bench-meta" and cal:
        sys.stdout.write("gomaxprocs: %s\n" % cal.get("GoMaxProcs", ""))
        sys.stdout.write("numcpu: %s\n" % cal.get("NumCPU", ""))
        sys.stdout.write("effective-cores: %.2f\n" % cal.get("EffectiveCores", 0.0))
for line in lines:
    try:
        ev = json.loads(line)
    except ValueError:
        continue
    out = ev.get("Output", "")
    if out.startswith(("Benchmark", "goos:", "goarch:", "pkg:", "cpu:")) or "ns/op" in out:
        sys.stdout.write(out)
EOF
cat "${TXT}"

if [[ ${status} -ne 0 ]]; then
  echo "bench.sh: go test exited with status ${status}" >&2
  exit "${status}"
fi
echo "wrote ${OUT} and ${TXT}" >&2
