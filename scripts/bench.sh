#!/usr/bin/env bash
# Benchmark-regression harness: runs the Primitive micro-benchmarks with
# allocation stats and writes the raw `go test -json` stream to
# BENCH_<date>.json in the repo root, so successive PRs can diff ns/op and
# allocs/op. Usage:
#
#   scripts/bench.sh                 # count=5, all Primitive benchmarks
#   COUNT=1 scripts/bench.sh Decision  # quick smoke of a subset
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
PATTERN="${1:-Primitive}"
OUT="BENCH_$(date +%Y%m%d).json"

echo "running go test -bench=${PATTERN} -benchmem -count=${COUNT} -> ${OUT}" >&2
# pipefail propagates a go test failure through the display filter, so a
# broken or crashing benchmark fails the harness instead of writing junk.
go test -run '^$' -bench="${PATTERN}" -benchmem -count="${COUNT}" -json . | tee "${OUT}" \
  | python3 -c 'import json,sys
for line in sys.stdin:
    try:
        ev = json.loads(line)
    except ValueError:
        continue
    out = ev.get("Output", "")
    if "ns/op" in out or out.startswith("Benchmark"):
        sys.stdout.write(out)'
echo "wrote ${OUT}" >&2
