#!/usr/bin/env bash
# Profiling harness: captures a CPU profile and a runtime/trace execution
# trace for every Primitive macro benchmark into prof/, one file pair per
# benchmark, plus the compiled test binary for symbolisation. Usage:
#
#   scripts/profile.sh                    # profile every Primitive benchmark
#   scripts/profile.sh DensePush          # only benchmarks matching a substring
#   BENCHTIME=5s scripts/profile.sh Late  # longer capture for quiet profiles
#
# Reading the output:
#
#   go tool pprof -http=:8080 prof/repro.test prof/<name>.cpu.pprof
#       flame graph / top — where round time goes (delivery kernel vs
#       decision phase vs accounting)
#   go tool trace prof/<name>.trace.out
#       scheduler timeline — goroutine utilisation of the rounds-parallel
#       and trials-parallel paths, GC pauses, blocked time
#
# Each benchmark runs in its own `go test` invocation because -cpuprofile
# and -trace capture whole-process streams: one benchmark per process keeps
# every profile attributable. The planet-scale benchmarks are excluded via
# -short (use BENCH_FILTER=full to include them).
set -euo pipefail

cd "$(dirname "$0")/.."
PATTERN="${1:-}"
BENCHTIME="${BENCHTIME:-2s}"
BENCH_FILTER="${BENCH_FILTER:-short}"
case "${BENCH_FILTER}" in
  short) TIER_FLAGS=("-short") ;;
  full)  TIER_FLAGS=("-timeout" "120m") ;;
  *) echo "profile.sh: BENCH_FILTER must be \"short\" or \"full\", got \"${BENCH_FILTER}\"" >&2; exit 2 ;;
esac

mkdir -p prof

# Enumerate the macro benchmarks, then run each in isolation.
mapfile -t benches < <(go test -run '^$' -list 'Primitive' . | grep '^Benchmark' || true)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "profile.sh: no Primitive benchmarks found" >&2
  exit 1
fi

ran=0
for bench in "${benches[@]}"; do
  if [[ -n "${PATTERN}" && "${bench}" != *"${PATTERN}"* ]]; then
    continue
  fi
  name="${bench#Benchmark}"
  echo "profiling ${bench} -> prof/${name}.{cpu.pprof,trace.out}" >&2
  go test -run '^$' ${TIER_FLAGS[@]+"${TIER_FLAGS[@]}"} -bench="^${bench}\$" \
    -benchtime="${BENCHTIME}" \
    -cpuprofile "prof/${name}.cpu.pprof" \
    -trace "prof/${name}.trace.out" \
    -o prof/repro.test . >&2
  ran=$((ran + 1))
done

if [[ ${ran} -eq 0 ]]; then
  echo "profile.sh: no benchmark matched \"${PATTERN}\"" >&2
  exit 1
fi
echo "profiled ${ran} benchmark(s); inspect with:" >&2
echo "  go tool pprof -http=:8080 prof/repro.test prof/<name>.cpu.pprof" >&2
echo "  go tool trace prof/<name>.trace.out" >&2
