#!/usr/bin/env bash
# Bench-regression gate: compares two benchmark text files (the ${OUT%.json}.txt
# form written by scripts/bench.sh) and fails when the geometric mean of the
# per-benchmark ns/op ratios (PR ÷ base) exceeds the slowdown threshold.
#
#   scripts/bench_gate.sh BENCH_base.txt BENCH_pr.txt [threshold-pct]
#
# The threshold defaults to 20 (fail on a >20% geomean slowdown). Only
# benchmarks present on both sides are compared; means are taken across
# repeated -count runs. CI pairs this hard gate with a human-readable
# `benchstat base pr` report — benchstat's per-benchmark p-values catch
# individual regressions this aggregate test tolerates.
#
# BENCH_FILTER, when set, is an awk ERE of benchmark names to EXCLUDE from
# the comparison — e.g. BENCH_FILTER='Run100M' keeps a committed full-tier
# baseline comparable against a short-tier PR run without letting the
# planet-scale points (single-iteration, minutes-long, noisy) steer the
# geomean. Note the semantics differ from bench.sh, where BENCH_FILTER
# names the tier to run.
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: scripts/bench_gate.sh BASE.txt PR.txt [threshold-pct]" >&2
  exit 2
fi
base="$1"
pr="$2"
thresh="${3:-20}"

awk -v thresh="${thresh}" -v filter="${BENCH_FILTER:-}" '
FNR == 1 { file++ }
/^Benchmark/ {
  # "BenchmarkFoo-8  120  12345 ns/op ..." — strip the GOMAXPROCS suffix and
  # pick the value preceding the ns/op unit.
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (filter != "" && name ~ filter) next
  v = -1
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "ns/op") { v = $i; break }
  }
  if (v < 0) next
  if (file == 1) { bsum[name] += v; bcnt[name]++ }
  else          { psum[name] += v; pcnt[name]++ }
}
END {
  n = 0; logsum = 0
  for (name in bsum) {
    if (!(name in psum)) continue
    b = bsum[name] / bcnt[name]
    p = psum[name] / pcnt[name]
    if (b <= 0 || p <= 0) continue
    r = p / b
    logsum += log(r)
    n++
    printf "%-48s base %14.1f ns/op   pr %14.1f ns/op   ratio %.3f\n", name, b, p, r
  }
  if (n == 0) {
    print "bench_gate: no common benchmarks between the two files" > "/dev/stderr"
    exit 2
  }
  g = exp(logsum / n)
  printf "geomean ratio %.4f (%+.2f%%) over %d benchmarks; threshold +%d%%\n", g, (g - 1) * 100, n, thresh
  if ((g - 1) * 100 > thresh) {
    printf "bench_gate: FAIL — geomean slowdown exceeds %d%%\n", thresh > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}' "${base}" "${pr}"
