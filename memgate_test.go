package repro

// The memory-ceiling gate behind scripts/mem_gate.sh: prove that simulated
// rounds on a planet-scale implicit topology fit a pinned heap budget. The
// test is env-gated because it deliberately allocates the full O(n) session
// state for n = 10^8 nodes (several GB): CI and local runs opt in with
//
//	MEM_GATE_BUDGET_MB=3072 go test -run TestImplicitScaleMemoryCeiling .
//
// MEM_GATE_N overrides the node count (the CI gate on small runners uses a
// reduced n with a proportionally reduced budget — the point is the O(n)
// scaling contract, which a materialized graph at the same size would break
// by an O(m/n) ≈ mean-degree factor).

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestImplicitScaleMemoryCeiling(t *testing.T) {
	budgetStr := os.Getenv("MEM_GATE_BUDGET_MB")
	if budgetStr == "" {
		t.Skip("set MEM_GATE_BUDGET_MB (and optionally MEM_GATE_N) to run the memory-ceiling gate")
	}
	budgetMB, err := strconv.Atoi(budgetStr)
	if err != nil || budgetMB <= 0 {
		t.Fatalf("MEM_GATE_BUDGET_MB=%q: want a positive integer (MiB)", budgetStr)
	}
	n := 100_000_000
	if s := os.Getenv("MEM_GATE_N"); s != "" {
		if n, err = strconv.Atoi(s); err != nil || n < 2 {
			t.Fatalf("MEM_GATE_N=%q: want an integer >= 2", s)
		}
	}

	p := 8 * math.Log(float64(n)) / float64(n)
	g := graph.NewImplicitGNP(n, p, 1)

	// A fixed transmitter pulse exercises the full delivery path — row
	// re-derivation, collision accounting, informed tracking — for several
	// rounds over a warm session, without paying for a complete broadcast.
	stride := n / 4096
	if stride < 1 {
		stride = 1
	}
	txs := make([]graph.NodeID, 0, n/stride+1)
	for v := 0; v < n; v += stride {
		txs = append(txs, graph.NodeID(v))
	}
	sess := radio.NewBroadcastSession(n, 0, &pulseSet{txs: txs}, rng.New(7))
	res := sess.Run(g, radio.Options{MaxRounds: 8})
	if res.Informed < len(txs) {
		t.Fatalf("pulse rounds informed %d nodes, want at least the %d transmitters' worth", res.Informed, len(txs))
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / (1 << 20)
	t.Logf("n=%d: HeapAlloc %.0f MiB after %d rounds (budget %d MiB)", n, heapMB, 8, budgetMB)
	if heapMB > float64(budgetMB) {
		t.Fatalf("heap %.0f MiB exceeds the %d MiB budget: the n=%d session state is no longer O(n)-lean",
			heapMB, budgetMB, n)
	}
	runtime.KeepAlive(sess)
	runtime.KeepAlive(g)
}
