// Package repro is a production-quality Go reproduction of
//
//	Berenbrink, Cooper, Hu — "Energy efficient randomised communication in
//	unknown AdHoc networks" (SPAA 2007; TCS 410 (2009) 2549–2561).
//
// The library implements the paper's three algorithms (energy-efficient
// broadcast on random networks with at most one transmission per node,
// gossiping on random networks, and known-diameter broadcast on arbitrary
// networks with the new selection distribution α), every substrate they
// need (a synchronous radio-network simulator with exact collision
// semantics, graph generators including both lower-bound constructions, the
// baseline protocols the paper compares against), and a harness that
// regenerates an experiment table for every theorem and figure.
//
// Start with README.md for the layout and the experiment ↔ paper index,
// and EXPERIMENTS.md for paper-vs-measured results. The runnable entry points are:
//
//	cmd/broadcast    — run one broadcast protocol on one topology
//	cmd/gossip       — run a gossip protocol
//	cmd/netgen       — generate topologies and print structural stats
//	cmd/experiments  — regenerate every experiment table
//	examples/...     — quickstart and scenario walk-throughs
//
// The package tree under internal/ is the implementation: core (the paper's
// algorithms), radio (the round engine), graph, dist, baseline, lowerbound,
// stats, sweep, expt, rng.
//
// Beyond the paper's G(n,p) setting, internal/graph carries a geometric ad
// hoc topology subsystem: random geometric / unit-disk graphs on the unit
// square or torus (the connectivity threshold is graph.ConnectivityRadius,
// r_c = sqrt(ln n/(π n))), Matérn-style clustered placement, per-node
// transmission radii (asymmetric links from heterogeneous transmit power),
// and a mobility layer (graph.MobileNetwork: random-waypoint or resample
// epochs emitting one CSR snapshot per epoch). Construction is O(n + m) via
// a cell-grid spatial index into graph.Scratch storage; the G1–G6 experiment
// battery in internal/expt maps broadcast and gossip behaviour across this
// model class.
//
// internal/energy extends the paper's transmission-count measure to a
// per-round radio energy model: every alive node is charged for exactly one
// state per round (transmit / receive / idle-listen / sleep; presets for
// the paper's unit-cost measure and a CC2420-class sensor radio), battery
// budgets deplete — a dead radio stops transmitting and, by default,
// receiving — and results report per-node residual charge plus the
// network-lifetime rounds (first death, half death, partition). Accounting
// is allocation-free and lazy (O(events + deaths·log n) per round via an
// indexed death-prediction heap), so the batch engine keeps its sublinear
// rounds, and it costs nothing when disabled. The N1–N5 battery in
// internal/expt measures lifetime vs protocol, the energy-latency Pareto
// front, listen-cost sensitivity, heterogeneous batteries, and mobile-epoch
// lifetime; note graph.MobileNetwork.Points returns a slice aliasing the
// model's internal state (read-only, between Advance calls).
//
// The experiment layer runs on internal/campaign, a declarative grid
// engine: an experiment is a Campaign — a point enumeration (Axis products
// or ad-hoc lists, every point carrying a stable key), a point→trials
// mapping over sweep.RunTrialsScratch, and a render stage that rebuilds
// tables from recorded samples. Point seeds derive purely from (base seed,
// point key), so execution order, sharding (-shard k/N) and resume
// (-checkpoint + -resume, streaming one durable JSONL record per completed
// point with torn-tail repair) cannot change a result: shard unions and
// killed-then-resumed runs are record-identical to one uninterrupted run,
// and markdown, CSV and JSONL outputs are views over the same record
// stream. See README.md ("The campaign engine") and cmd/experiments.
//
// The engine's hot path is vectorised: protocols implementing
// radio.BatchBroadcaster (all Bernoulli-phase protocols here do) hand the
// engine their whole per-round transmitter set in one call, drawn by
// geometric-skip sampling in O(transmitters) instead of one RNG flip per
// informed node — bit-identical to the scalar path under the shared-draw
// contract (see README.md and the radio package docs).
//
// On top of that sits the sparse round engine. Delivery is
// direction-optimizing across four kernels selected per round from exact
// cost estimates: transmitter-centric push (Σ deg(tx) per round), its
// receiver-sharded parallel variant, a receiver-centric pull kernel
// that iterates only the uninformed frontier's in-edges
// (Σ deg(uninformed), the late-phase winner; its collision count covers
// uninformed receivers only — Options.ExactCollisions pins the
// transmitter-side count), and a word-parallel dense kernel for the
// mid-phase (Σ deg(tx) ≥ n on a binary-decidable channel): carry-save
// hit accumulation into two Bitset planes and 64-receivers-at-a-time
// resolution, branch-free and transmitter-side exact. Where the cores go
// is decided by a measured cost model (radio.Calibrate probes effective
// cores and per-edge kernel costs once per process; sweep.PlanPoint gives
// trial-level parallelism first claim and hands only spare cores to
// rounds-parallel delivery) — scheduling varies per machine, results
// never do. Orthogonally, uniform-Bernoulli phases opt into
// the cross-round stream contract (radio.UniformRound /
// radio.UniformGossipRound over radio.TxSet's stream draws): the rounds of
// one phase form a single Bernoulli stream whose geometric overshoot
// carries across round boundaries, so a fully silent round consumes no
// randomness and whole silent spans are skipped in O(1), with
// energy.State.AdvanceIdle settling idle-listen charges and the
// death-prediction heap across the span in bulk. Every engine
// configuration (radio.SetEngineOverrides) is pinned bit-identical on
// informed trajectory, per-node transmissions, rounds and energy. See
// README.md ("The sparse round engine").
//
// The reception rule itself is pluggable: radio.Options.Reception takes a
// radio.ReceptionModel — Binary (the paper's rule and the default, which
// resolves to the exact pre-existing hot paths), Fade (per-receiver deep
// fade), LossyChannel (per-link erasure), SINRThreshold (capture: up to K
// simultaneous transmitters decode), and Jam (stationary random jamming).
// Channel randomness is hashed per (seed, round, receiver[, transmitter]),
// not streamed, so every kernel iteration order produces bit-identical
// results, silent rounds consume no channel randomness (cross-round
// skipping stays exact), and resumed sessions reproduce uninterrupted
// ones. Listener duty cycles compose from the energy side:
// energy.DutyCycle schedules uninformed listeners into on/off windows
// (sleeping listeners cannot receive and pay the sleep rate), with
// closed-form span accounting that keeps bulk idle settlement and death
// prediction exact. The C1–C5 battery in internal/expt measures the
// consequences, with the channel exposed as a shardable campaign axis
// (campaign.Config.Channel, cmd/experiments -channel). See README.md
// ("Channel models & duty cycles").
//
// The engine also runs on implicit topologies: graph.Implicit is the
// generate-free graph interface (deterministic per-(seed,node) row
// enumeration, strictly increasing and bit-stable), with two backends —
// implicit G(n,p) whose rows are geometric-skip RNG streams (O(1)
// construction, O(n) run footprint; graph.ImplicitGNP.CheapIn reports
// whether the lazy in-index exists, and adaptive runs stay push-only
// until it does) and implicit RGG/UDG re-deriving neighbourhoods from a
// coordinates-only cell grid (graph.ImplicitGeom). Both are pinned
// edge-identical to their materialized twins and bit-identical through
// the engine under every forcing; the S1 experiment carries the
// representation axis (Config.GraphMode, cmd/experiments -implicit), the
// 10^8-node trajectory point is BenchmarkPrimitiveAlgorithm1Run100M, and
// scripts/mem_gate.sh pins the O(n) heap ceiling. See README.md
// ("Implicit topologies").
package repro
