package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func runTraced(t *testing.T, tracer radio.Tracer) *radio.Result {
	t.Helper()
	// Directed path 0->1->2->3 flooded: deterministic, one tx per round.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	return radio.RunBroadcast(g, 0, baseline.Flood{}, rng.New(1), radio.Options{
		MaxRounds: 3, Tracer: tracer, StopWhenInformed: true,
	})
}

func TestRecorderCapturesEvents(t *testing.T) {
	rec := &Recorder{}
	res := runTraced(t, rec)
	if !res.Completed() {
		t.Fatal("run incomplete")
	}
	// Round 1: node 0 transmits, node 1 receives.
	tx1 := rec.Transmissions(1)
	if len(tx1) != 1 || tx1[0] != 0 {
		t.Fatalf("round-1 transmitters %v", tx1)
	}
	rx1 := rec.Deliveries(1)
	if len(rx1) != 1 || rx1[0] != 1 {
		t.Fatalf("round-1 deliveries %v", rx1)
	}
	// Round 2: nodes 0,1 transmit; node 2 receives.
	if len(rec.Transmissions(2)) != 2 {
		t.Fatalf("round-2 transmitters %v", rec.Transmissions(2))
	}
	if got := rec.InformedAt(3); got != 3 {
		t.Fatalf("node 3 informed at %d", got)
	}
	if got := rec.InformedAt(0); got != -1 {
		t.Fatalf("source InformedAt %d, want -1 (informed at round 0, before tracing)", got)
	}
}

func TestRecorderSummary(t *testing.T) {
	rec := &Recorder{}
	runTraced(t, rec)
	var buf bytes.Buffer
	if err := rec.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("summary lines: %v", lines)
	}
	if !strings.Contains(lines[0], "round 1: tx=1 rx=1 collisions=0") {
		t.Fatalf("line 0: %q", lines[0])
	}
}

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	runTraced(t, tr)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 3 rounds x (round + >=1 tx + rx + end) events.
	if len(lines) < 12 {
		t.Fatalf("only %d JSONL lines", len(lines))
	}
	kinds := map[string]int{}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds[e.Kind]++
	}
	if kinds["round"] != 3 || kinds["end"] != 3 || kinds["rx"] != 3 || kinds["tx"] != 6 {
		t.Fatalf("event kinds %v", kinds)
	}
}

func TestJSONLStickyError(t *testing.T) {
	tr := NewJSONL(failWriter{})
	tr.RoundStart(1)
	if tr.Err() == nil {
		t.Fatal("expected sticky error")
	}
	tr.Transmit(1, 0) // must not panic after error
	if tr.Err() == nil {
		t.Fatal("error lost")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }
