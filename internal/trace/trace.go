// Package trace provides radio.Tracer implementations for recording and
// inspecting simulation runs: a JSONL event stream for external tools and an
// in-memory recorder for tests and ad-hoc analysis.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Event is one engine event in the JSONL stream. Kind is "round", "tx",
// "rx", or "end". Node is -1 for events that do not concern a single node
// ("round" and "end") — it cannot be omitted via omitempty because node id 0
// is a valid subject.
type Event struct {
	Kind  string `json:"kind"`
	Round int    `json:"round"`
	Node  int    `json:"node"`
	// Aggregates, set on "end" events only.
	Transmitters int `json:"transmitters,omitempty"`
	Delivered    int `json:"delivered,omitempty"`
	Collisions   int `json:"collisions,omitempty"`
}

// JSONL streams events as one JSON object per line. Errors are sticky and
// reported by Err (the radio engine's Tracer interface has no error
// channel, so the writer latches the first failure instead of panicking
// mid-simulation).
type JSONL struct {
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL tracer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Err returns the first write error, if any.
func (t *JSONL) Err() error { return t.err }

func (t *JSONL) emit(e Event) {
	if t.err == nil {
		t.err = t.enc.Encode(e)
	}
}

// RoundStart implements radio.Tracer.
func (t *JSONL) RoundStart(round int) { t.emit(Event{Kind: "round", Round: round, Node: -1}) }

// Transmit implements radio.Tracer.
func (t *JSONL) Transmit(round int, v graph.NodeID) {
	t.emit(Event{Kind: "tx", Round: round, Node: int(v)})
}

// Deliver implements radio.Tracer.
func (t *JSONL) Deliver(round int, v graph.NodeID) {
	t.emit(Event{Kind: "rx", Round: round, Node: int(v)})
}

// RoundEnd implements radio.Tracer.
func (t *JSONL) RoundEnd(round, transmitters, delivered, collisions int) {
	t.emit(Event{Kind: "end", Round: round,
		Transmitters: transmitters, Delivered: delivered, Collisions: collisions})
}

// Recorder keeps every event in memory, for tests and interactive digging.
type Recorder struct {
	Events []Event
}

// RoundStart implements radio.Tracer.
func (r *Recorder) RoundStart(round int) {
	r.Events = append(r.Events, Event{Kind: "round", Round: round, Node: -1})
}

// Transmit implements radio.Tracer.
func (r *Recorder) Transmit(round int, v graph.NodeID) {
	r.Events = append(r.Events, Event{Kind: "tx", Round: round, Node: int(v)})
}

// Deliver implements radio.Tracer.
func (r *Recorder) Deliver(round int, v graph.NodeID) {
	r.Events = append(r.Events, Event{Kind: "rx", Round: round, Node: int(v)})
}

// RoundEnd implements radio.Tracer.
func (r *Recorder) RoundEnd(round, transmitters, delivered, collisions int) {
	r.Events = append(r.Events, Event{Kind: "end", Round: round,
		Transmitters: transmitters, Delivered: delivered, Collisions: collisions})
}

// Transmissions returns the node ids that transmitted in the given round.
func (r *Recorder) Transmissions(round int) []graph.NodeID {
	var out []graph.NodeID
	for _, e := range r.Events {
		if e.Kind == "tx" && e.Round == round {
			out = append(out, graph.NodeID(e.Node))
		}
	}
	return out
}

// Deliveries returns the node ids first informed in the given round.
func (r *Recorder) Deliveries(round int) []graph.NodeID {
	var out []graph.NodeID
	for _, e := range r.Events {
		if e.Kind == "rx" && e.Round == round {
			out = append(out, graph.NodeID(e.Node))
		}
	}
	return out
}

// InformedAt returns the round in which v was first informed, or -1.
func (r *Recorder) InformedAt(v graph.NodeID) int {
	for _, e := range r.Events {
		if e.Kind == "rx" && e.Node == int(v) {
			return e.Round
		}
	}
	return -1
}

// Summary renders one line per round: round, transmitter count, delivery
// count, collision count.
func (r *Recorder) Summary(w io.Writer) error {
	for _, e := range r.Events {
		if e.Kind != "end" {
			continue
		}
		if _, err := fmt.Fprintf(w, "round %d: tx=%d rx=%d collisions=%d\n",
			e.Round, e.Transmitters, e.Delivered, e.Collisions); err != nil {
			return err
		}
	}
	return nil
}
