// Package baseline implements the protocols the paper compares against:
//
//   - Flood — every informed node transmits every round (the naive
//     strategy; livelocks on any topology where frontiers collide).
//   - FixedProb — every informed node transmits with a constant probability
//     q each round; the uniform time-invariant sender class analysed by the
//     lower bounds of §4.2 (Observation 4.3).
//   - Decay — the Bar-Yehuda–Goldreich–Itai protocol: in each phase of
//     ⌈log n⌉ rounds an active node transmits in round 1 of the phase and
//     keeps transmitting with halving persistence, covering all
//     neighbourhood sizes; O((D + log n)·log n) broadcast time.
//   - CzumajRytter — the known-diameter algorithm of [11] as described in
//     §4: the Algorithm-3 skeleton with distribution α′ and the longer
//     Θ(λ·log² n) activity window that α′ requires, costing Θ(log² n)
//     transmissions per node.
//   - ElsasserGasieniec — the SPAA'05 three-phase broadcast for random
//     graphs [12] as described in §1.1: D−1 rounds of probability-1
//     flooding (up to D−1 transmissions per node), one round at probability
//     n/d^D, then Θ(log n) rounds at probability 1/d.
//   - TDMAGossip — a deterministic collision-free round-robin gossip
//     schedule (n rounds per sweep); the energy-hungry but safe contrast to
//     Algorithm 2.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Flood transmits from every informed node every round.
type Flood struct{}

// Name implements radio.Broadcaster.
func (Flood) Name() string { return "flood" }

// Begin implements radio.Broadcaster.
func (Flood) Begin(int, graph.NodeID, *rng.RNG) {}

// BeginRound implements radio.Broadcaster.
func (Flood) BeginRound(int) {}

// ShouldTransmit implements radio.Broadcaster.
func (Flood) ShouldTransmit(int, graph.NodeID) bool { return true }

// AppendTransmitters implements radio.BatchBroadcaster: every informed node
// transmits, so the batch path is a straight copy of the informed list.
func (Flood) AppendTransmitters(_ int, informed []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return append(dst, informed...)
}

// OnInformed implements radio.Broadcaster.
func (Flood) OnInformed(int, graph.NodeID) {}

// Quiesced implements radio.Broadcaster.
func (Flood) Quiesced(int) bool { return false }

// FixedProb transmits from every informed node with probability Q each
// round. With Window > 0 a node retires Window rounds after being informed;
// Window == 0 means nodes stay active forever. This is the "oblivious
// algorithm with a time-invariant distribution" class of §4.2: on the
// Observation 4.3 network it needs Σ_r q ≥ log n / 4 per intermediate node,
// i.e. ≈ n·log n / 2 transmissions in total.
type FixedProb struct {
	Q      float64
	Window int

	informedAt []int
	r          *rng.RNG
	informedN  int
	retiredN   int
	queue      radio.WindowQueue // informed, window not yet expired
	txs        radio.TxSet       // this round's transmitters (shared-draw set)
}

// Name implements radio.Broadcaster.
func (f *FixedProb) Name() string { return fmt.Sprintf("fixed(q=%.4g)", f.Q) }

// Begin implements radio.Broadcaster.
func (f *FixedProb) Begin(n int, src graph.NodeID, r *rng.RNG) {
	if f.Q < 0 || f.Q > 1 {
		panic("baseline: FixedProb needs q in [0,1]")
	}
	f.informedAt = make([]int, n)
	for i := range f.informedAt {
		f.informedAt[i] = -1
	}
	f.queue.Reset()
	f.txs.Reset(n)
	f.informedN, f.retiredN = 0, 0
	f.r = r
}

// BeginRound implements radio.Broadcaster: expire windows at the queue head
// and draw the round's Bernoulli(Q) transmitter set once, shared by the
// scalar and batch decision paths. The draw follows the cross-round stream
// contract (radio.UniformRound), so a silent round consumes no randomness.
func (f *FixedProb) BeginRound(round int) {
	if f.Window > 0 {
		f.retiredN += f.queue.Expire(f.informedAt, f.Window, round)
	}
	f.txs.BeginRound()
	f.txs.DrawListStream(f.r, f.queue.Live(), f.Q, round)
}

// RoundProb implements radio.UniformRound: every round is a Bernoulli(Q)
// draw over the live window queue.
func (f *FixedProb) RoundProb(int) (float64, bool) { return f.Q, true }

// SkipSilent implements radio.UniformRound. The candidate list shrinks only
// at window expiries during silence (nothing is informed in a silent
// round), so the skip walks the expiry breakpoints: within each stretch of
// constant candidate count the silent rounds come off the stream gap in
// O(1). It stops at the round where the queue empties — Quiesced first
// reports true there, and the engine must observe it normally.
func (f *FixedProb) SkipSilent(from, to int) int {
	round := from
	for round <= to {
		if f.Window > 0 {
			f.retiredN += f.queue.Expire(f.informedAt, f.Window, round)
		}
		live := f.queue.Live()
		k := len(live)
		if k == 0 {
			return round
		}
		max := to - round + 1
		if f.Window > 0 {
			// The head expires at expRound, shrinking the candidate list;
			// the per-round stream arithmetic changes there.
			if expRound := f.informedAt[live[0]] + f.Window + 1; expRound-round < max {
				max = expRound - round
			}
		}
		m := f.txs.StreamSilentRounds(f.r, k, f.Q, max)
		round += m
		if m < max {
			return round
		}
	}
	return round
}

// OnInformed implements radio.Broadcaster.
func (f *FixedProb) OnInformed(round int, v graph.NodeID) {
	f.informedAt[v] = round
	f.informedN++
	f.queue.Push(v)
}

// ShouldTransmit implements radio.Broadcaster: membership in the round's
// pre-drawn transmitter set.
func (f *FixedProb) ShouldTransmit(round int, v graph.NodeID) bool {
	return f.txs.Contains(v, round)
}

// AppendTransmitters implements radio.BatchBroadcaster.
func (f *FixedProb) AppendTransmitters(round int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return f.txs.AppendTo(dst)
}

// Quiesced implements radio.Broadcaster.
func (f *FixedProb) Quiesced(int) bool {
	return f.Window > 0 && f.retiredN == f.informedN
}

// Decay is the Bar-Yehuda–Goldreich–Itai randomised broadcast protocol.
// Time is divided into phases of L = ⌈log₂ n⌉ rounds. At the start of each
// phase an active node plans to transmit for 1 + Geometric(1/2) consecutive
// rounds (capped at L): it certainly transmits in the phase's first round,
// then keeps going with halving probability — so within one phase each
// neighbourhood size 2^j gets a round where the expected number of
// transmitters is Θ(1). A node stays active for Phases phases after being
// informed.
type Decay struct {
	// Phases is how many phases a node stays active after informing.
	Phases int

	n          int
	l          int
	informedAt []int
	plan       []int // rounds-into-phase the node still transmits
	r          *rng.RNG
	informedN  int
	retiredN   int
	retired    []bool
}

// NewDecay returns the protocol with the given per-node phase budget.
func NewDecay(phases int) *Decay {
	if phases < 1 {
		panic("baseline: Decay needs phases >= 1")
	}
	return &Decay{Phases: phases}
}

// Name implements radio.Broadcaster.
func (d *Decay) Name() string { return "decay" }

// Begin implements radio.Broadcaster.
func (d *Decay) Begin(n int, src graph.NodeID, r *rng.RNG) {
	d.n = n
	d.l = int(math.Ceil(math.Log2(float64(n))))
	if d.l < 1 {
		d.l = 1
	}
	d.informedAt = make([]int, n)
	for i := range d.informedAt {
		d.informedAt[i] = -1
	}
	d.plan = make([]int, n)
	d.retired = make([]bool, n)
	d.informedN, d.retiredN = 0, 0
	d.r = r
}

// BeginRound implements radio.Broadcaster.
func (d *Decay) BeginRound(int) {}

// OnInformed implements radio.Broadcaster.
func (d *Decay) OnInformed(round int, v graph.NodeID) {
	d.informedAt[v] = round
	d.informedN++
}

// ShouldTransmit implements radio.Broadcaster. A node's phases are aligned
// to its own informing time (the protocol needs no global synchronisation
// beyond the round clock).
func (d *Decay) ShouldTransmit(round int, v graph.NodeID) bool {
	age := round - d.informedAt[v] - 1 // 0-based rounds since informed
	if age >= d.Phases*d.l {
		if !d.retired[v] {
			d.retired[v] = true
			d.retiredN++
		}
		return false
	}
	inPhase := age % d.l
	if inPhase == 0 {
		// New phase: plan 1 + Geometric(1/2) transmitting rounds, capped.
		k := 1 + d.r.Geometric(0.5)
		if k > d.l {
			k = d.l
		}
		d.plan[v] = k
	}
	return inPhase < d.plan[v]
}

// Quiesced implements radio.Broadcaster.
func (d *Decay) Quiesced(int) bool { return d.retiredN == d.informedN }

// NewCzumajRytter builds the known-diameter Czumaj–Rytter baseline for an
// n-node network of diameter D: the GeneralBroadcast skeleton with the α′
// distribution and activity window ⌈beta·λ·log₂² n⌉ (beta = 1 when zero).
// The λ-times-longer window is what α′'s geometrically thinning deep levels
// require for per-neighbour success w.h.p., and is why this baseline spends
// Θ(log² n) transmissions per node where Algorithm 3 spends Θ(log² n / λ)
// (§4 of the paper).
func NewCzumajRytter(n, D int, beta float64) *core.GeneralBroadcast {
	if beta == 0 {
		beta = 1
	}
	lambda := dist.LambdaFor(n, D)
	return &core.GeneralBroadcast{
		Label:  "czumaj-rytter",
		Dist:   dist.NewAlphaPrimeForDiameter(n, D),
		Window: core.WindowRounds(n, beta*float64(lambda)),
	}
}

// ElsasserGasieniec is the three-phase broadcast of [12] for G(n,p), as
// described in §1.1 of the paper. D is the graph diameter (for G(n,p) above
// the connectivity threshold, D = ⌈log n / log d⌉ w.h.p., Lemma 3.1):
//
//	Phase 1 (rounds 1..D-1):    every informed node transmits (prob 1).
//	Phase 2 (round D):          every informed node transmits w.p. n/d^D.
//	Phase 3 (Θ(log n) rounds):  every node informed in Phases 1–2 transmits
//	                            w.p. 1/d each round.
//
// Unlike Algorithm 1, a node may transmit in every Phase-1 round, i.e. up
// to D−1 times — the energy gap experiment E12 measures exactly this.
type ElsasserGasieniec struct {
	// P is the edge probability of the underlying G(n,p).
	P float64
	// Phase3Beta scales the Phase-3 budget ⌈Phase3Beta·log₂ n⌉ (default 8).
	Phase3Beta float64

	n          int
	d          float64
	diam       int
	p2prob     float64
	p3prob     float64
	phase3To   int
	informedAt []int
	all        []graph.NodeID // every informed node, informing order
	eligible   []graph.NodeID // informed during Phases 1-2 (rounds <= diam)
	txs        radio.TxSet    // this round's transmitters (shared-draw set)
	r          *rng.RNG
}

// NewElsasserGasieniec returns the protocol for edge probability p.
func NewElsasserGasieniec(p float64) *ElsasserGasieniec {
	return &ElsasserGasieniec{P: p}
}

// Name implements radio.Broadcaster.
func (e *ElsasserGasieniec) Name() string { return "elsasser-gasieniec" }

// Begin implements radio.Broadcaster.
func (e *ElsasserGasieniec) Begin(n int, src graph.NodeID, r *rng.RNG) {
	if e.P <= 0 || e.P > 1 {
		panic("baseline: ElsasserGasieniec needs 0 < p <= 1")
	}
	e.n = n
	e.d = float64(n) * e.P
	if e.d <= 1 {
		panic("baseline: ElsasserGasieniec needs d = np > 1")
	}
	e.r = r
	if e.d >= float64(n) {
		e.diam = 1
	} else {
		e.diam = int(math.Ceil(math.Log(float64(n)) / math.Log(e.d)))
		if e.diam < 1 {
			e.diam = 1
		}
	}
	dD := math.Pow(e.d, float64(e.diam))
	e.p2prob = clamp01(float64(n) / dD)
	e.p3prob = clamp01(1 / e.d)
	beta := e.Phase3Beta
	if beta == 0 {
		beta = 8
	}
	e.phase3To = e.diam + int(math.Ceil(beta*math.Log2(float64(n))))
	e.informedAt = make([]int, n)
	for i := range e.informedAt {
		e.informedAt[i] = -1
	}
	e.all = e.all[:0]
	e.eligible = e.eligible[:0]
	e.txs.Reset(n)
}

// BeginRound implements radio.Broadcaster: draw the round's transmitter set
// once (flood, one Bernoulli shot, or the Phase-3 trickle over the nodes
// informed in Phases 1–2), shared by the scalar and batch decision paths.
func (e *ElsasserGasieniec) BeginRound(round int) {
	e.txs.BeginRound()
	switch {
	case round <= e.diam-1:
		// Phase 1: flood — every informed node transmits.
		e.txs.AddAll(e.all, round)
	case round == e.diam:
		e.txs.DrawList(e.r, e.all, e.p2prob, round)
	case round <= e.phase3To:
		// Phase 3: only nodes informed during Phases 1–2 participate
		// (Phase 2 is round e.diam, so informedAt <= e.diam qualifies).
		// Stream-drawn so silent trickle rounds consume no randomness and
		// the engine can skip them (radio.UniformRound).
		e.txs.DrawListStream(e.r, e.eligible, e.p3prob, round)
	}
}

// RoundProb implements radio.UniformRound: the Phase-3 trickle is the
// uniform Bernoulli phase (Phase 1 floods, Phase 2 is a one-shot).
func (e *ElsasserGasieniec) RoundProb(round int) (float64, bool) {
	if round > e.diam && round <= e.phase3To {
		return e.p3prob, true
	}
	return 0, false
}

// SkipSilent implements radio.UniformRound. The eligible list is frozen
// after Phase 2 (nothing informed in Phase 3 ever joins it), so silent
// Phase-3 rounds come off the stream gap in O(1). The skip stops before
// phase3To, where Quiesced first reports true.
func (e *ElsasserGasieniec) SkipSilent(from, to int) int {
	if from <= e.diam || from >= e.phase3To {
		return from
	}
	if to > e.phase3To-1 {
		to = e.phase3To - 1
	}
	k := len(e.eligible)
	if to < from || k == 0 {
		return from
	}
	return from + e.txs.StreamSilentRounds(e.r, k, e.p3prob, to-from+1)
}

// OnInformed implements radio.Broadcaster.
func (e *ElsasserGasieniec) OnInformed(round int, v graph.NodeID) {
	e.informedAt[v] = round
	e.all = append(e.all, v)
	if round <= e.diam {
		e.eligible = append(e.eligible, v)
	}
}

// ShouldTransmit implements radio.Broadcaster: membership in the round's
// pre-drawn transmitter set.
func (e *ElsasserGasieniec) ShouldTransmit(round int, v graph.NodeID) bool {
	return e.txs.Contains(v, round)
}

// AppendTransmitters implements radio.BatchBroadcaster.
func (e *ElsasserGasieniec) AppendTransmitters(round int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return e.txs.AppendTo(dst)
}

// Quiesced implements radio.Broadcaster.
func (e *ElsasserGasieniec) Quiesced(round int) bool { return round >= e.phase3To }

func clamp01(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// TDMAGossip is the deterministic round-robin gossip schedule: node
// (round-1) mod n transmits alone in each round, so there are never
// collisions and a full sweep takes n rounds. Gossip completes within
// n·(D+1) rounds on any strongly connected n-node graph, with exactly one
// transmission per node per sweep — energy Θ(D) per node, versus
// Algorithm 2's Θ(log n).
type TDMAGossip struct{ n int }

// Name implements radio.Gossiper.
func (t *TDMAGossip) Name() string { return "tdma-gossip" }

// Begin implements radio.Gossiper.
func (t *TDMAGossip) Begin(n int, r *rng.RNG) { t.n = n }

// BeginRound implements radio.Gossiper.
func (t *TDMAGossip) BeginRound(int) {}

// ShouldTransmit implements radio.Gossiper.
func (t *TDMAGossip) ShouldTransmit(round int, v graph.NodeID) bool {
	return int(v) == (round-1)%t.n
}

// AppendTransmitters implements radio.BatchGossiper: the schedule is
// deterministic, so the batch path appends the round's single slot owner.
func (t *TDMAGossip) AppendTransmitters(round int, dst []graph.NodeID) []graph.NodeID {
	return append(dst, graph.NodeID((round-1)%t.n))
}

// UniformGossip transmits with a fixed probability q every round — the
// Algorithm 2 shape with a configurable rate, used by gossip ablations
// (Algorithm 2 itself is the q = 1/d instance).
type UniformGossip struct {
	Q float64

	n   int
	r   *rng.RNG
	txs radio.TxSet
}

// Name implements radio.Gossiper.
func (u *UniformGossip) Name() string { return fmt.Sprintf("uniform-gossip(q=%.4g)", u.Q) }

// Begin implements radio.Gossiper.
func (u *UniformGossip) Begin(n int, r *rng.RNG) {
	if u.Q < 0 || u.Q > 1 {
		panic("baseline: UniformGossip needs q in [0,1]")
	}
	u.n = n
	u.r = r
	u.txs.Reset(n)
}

// BeginRound implements radio.Gossiper: draw the round's Bernoulli(Q)
// transmitter set once, shared by the scalar and batch decision paths and
// stream-carried across rounds (radio.UniformGossipRound).
func (u *UniformGossip) BeginRound(round int) {
	u.txs.BeginRound()
	u.txs.DrawRangeStream(u.r, u.n, u.Q, round)
}

// RoundProb implements radio.UniformGossipRound.
func (u *UniformGossip) RoundProb(int) (float64, bool) { return u.Q, true }

// SkipSilent implements radio.UniformGossipRound.
func (u *UniformGossip) SkipSilent(from, to int) int {
	if to < from {
		return from
	}
	return from + u.txs.StreamSilentRounds(u.r, u.n, u.Q, to-from+1)
}

// ShouldTransmit implements radio.Gossiper: membership in the round's
// pre-drawn transmitter set.
func (u *UniformGossip) ShouldTransmit(round int, v graph.NodeID) bool {
	return u.txs.Contains(v, round)
}

// AppendTransmitters implements radio.BatchGossiper.
func (u *UniformGossip) AppendTransmitters(round int, dst []graph.NodeID) []graph.NodeID {
	return u.txs.AppendTo(dst)
}
