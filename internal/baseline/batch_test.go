package baseline

// Batch-vs-scalar decision equivalence for the baseline protocols (see the
// core package's batch_test.go for the paper's algorithms).

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestBaselineBatchDecisionEquivalence(t *testing.T) {
	g := graph.GNPDirected(512, 0.03, rng.New(1))
	star := graph.Star(64)
	for _, tc := range []struct {
		name string
		g    *graph.Digraph
		mk   func() radio.Broadcaster
		opt  radio.Options
	}{
		{"flood", star, func() radio.Broadcaster { return Flood{} },
			radio.Options{MaxRounds: 10}},
		{"fixedprob", g, func() radio.Broadcaster { return &FixedProb{Q: 0.1} },
			radio.Options{MaxRounds: 400}},
		{"fixedprob-window", g, func() radio.Broadcaster { return &FixedProb{Q: 0.1, Window: 60} },
			radio.Options{MaxRounds: 4000}},
		{"elsasser-gasieniec", g, func() radio.Broadcaster { return NewElsasserGasieniec(0.03) },
			radio.Options{MaxRounds: 4000}},
		{"czumaj-rytter", g, func() radio.Broadcaster { return NewCzumajRytter(512, 8, 1) },
			radio.Options{MaxRounds: 20000}},
	} {
		if _, ok := tc.mk().(radio.BatchBroadcaster); !ok {
			t.Fatalf("%s does not implement radio.BatchBroadcaster", tc.name)
		}
		for seed := uint64(0); seed < 3; seed++ {
			opt := tc.opt
			opt.RecordHistory = true
			batch := radio.RunBroadcast(tc.g, 0, tc.mk(), rng.New(seed), opt)
			radio.SetEngineOverrides(true, false)
			scalar := radio.RunBroadcast(tc.g, 0, tc.mk(), rng.New(seed), opt)
			radio.SetEngineOverrides(false, false)
			if batch.Rounds != scalar.Rounds || batch.InformedRound != scalar.InformedRound ||
				batch.Informed != scalar.Informed || batch.TotalTx != scalar.TotalTx ||
				batch.MaxNodeTx != scalar.MaxNodeTx || batch.Collisions != scalar.Collisions {
				t.Fatalf("%s seed=%d: batch/scalar results diverge", tc.name, seed)
			}
			for i := range batch.PerNodeTx {
				if batch.PerNodeTx[i] != scalar.PerNodeTx[i] {
					t.Fatalf("%s seed=%d: per-node tx differ at node %d", tc.name, seed, i)
				}
			}
			for i := range batch.History {
				if batch.History[i] != scalar.History[i] {
					t.Fatalf("%s seed=%d: history differs at %d", tc.name, seed, i)
				}
			}
		}
	}
}

func TestGossipBaselineBatchDecisionEquivalence(t *testing.T) {
	g := graph.GNPDirected(128, 0.1, rng.New(2))
	for _, tc := range []struct {
		name string
		mk   func() radio.Gossiper
	}{
		{"tdma-gossip", func() radio.Gossiper { return &TDMAGossip{} }},
		{"uniform-gossip", func() radio.Gossiper { return &UniformGossip{Q: 0.08} }},
	} {
		if _, ok := tc.mk().(radio.BatchGossiper); !ok {
			t.Fatalf("%s does not implement radio.BatchGossiper", tc.name)
		}
		opt := radio.GossipOptions{MaxRounds: 2000, StopWhenComplete: true}
		for seed := uint64(0); seed < 3; seed++ {
			batch := radio.RunGossip(g, tc.mk(), rng.New(seed), opt)
			radio.SetEngineOverrides(true, false)
			scalar := radio.RunGossip(g, tc.mk(), rng.New(seed), opt)
			radio.SetEngineOverrides(false, false)
			if batch.Rounds != scalar.Rounds || batch.CompleteRound != scalar.CompleteRound ||
				batch.TotalTx != scalar.TotalTx || batch.KnownPairs != scalar.KnownPairs ||
				batch.MaxNodeTx != scalar.MaxNodeTx {
				t.Fatalf("%s seed=%d: batch/scalar diverge", tc.name, seed)
			}
		}
	}
}
