package baseline

// Batch-vs-scalar decision equivalence for the baseline protocols (see the
// core package's batch_test.go for the paper's algorithms).

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// baselineForcings is the override matrix pinned by the baseline
// equivalence tests: decision path × delivery kernel × skip. Collisions are
// compared only between transmitter-side kernels (the pull kernel counts
// uninformed-side collisions only).
var baselineForcings = []struct {
	name string
	o    radio.EngineOverrides
}{
	{"scalar", radio.EngineOverrides{ScalarDecisions: true}},
	{"push", radio.EngineOverrides{Kernel: radio.KernelPush}},
	{"pull", radio.EngineOverrides{Kernel: radio.KernelPull}},
	{"parallel", radio.EngineOverrides{Kernel: radio.KernelParallel}},
	{"dense", radio.EngineOverrides{Kernel: radio.KernelDense}},
	{"noskip", radio.EngineOverrides{DisableSkip: true}},
	{"scalar-pull", radio.EngineOverrides{ScalarDecisions: true, Kernel: radio.KernelPull}},
}

func TestBaselineBatchDecisionEquivalence(t *testing.T) {
	defer radio.SetEngineOverrides(radio.EngineOverrides{})
	g := graph.GNPDirected(512, 0.03, rng.New(1))
	udg := graph.RGG(512, 2*graph.ConnectivityRadius(512), true, rng.New(4))
	star := graph.Star(64)
	for _, tc := range []struct {
		name string
		g    *graph.Digraph
		mk   func() radio.Broadcaster
		opt  radio.Options
	}{
		{"flood", star, func() radio.Broadcaster { return Flood{} },
			radio.Options{MaxRounds: 10}},
		{"fixedprob", g, func() radio.Broadcaster { return &FixedProb{Q: 0.1} },
			radio.Options{MaxRounds: 400}},
		{"fixedprob-window", g, func() radio.Broadcaster { return &FixedProb{Q: 0.1, Window: 60} },
			radio.Options{MaxRounds: 4000}},
		{"fixedprob-udg-lowq", udg, func() radio.Broadcaster { return &FixedProb{Q: 0.004, Window: 300} },
			radio.Options{MaxRounds: 20000}},
		{"elsasser-gasieniec", g, func() radio.Broadcaster { return NewElsasserGasieniec(0.03) },
			radio.Options{MaxRounds: 4000}},
		{"elsasser-gasieniec-udg", udg, func() radio.Broadcaster { return NewElsasserGasieniec(0.03) },
			radio.Options{MaxRounds: 4000}},
		{"czumaj-rytter", g, func() radio.Broadcaster { return NewCzumajRytter(512, 8, 1) },
			radio.Options{MaxRounds: 20000}},
	} {
		if _, ok := tc.mk().(radio.BatchBroadcaster); !ok {
			t.Fatalf("%s does not implement radio.BatchBroadcaster", tc.name)
		}
		for seed := uint64(0); seed < 3; seed++ {
			for _, hist := range []bool{true, false} {
				opt := tc.opt
				opt.RecordHistory = hist
				radio.SetEngineOverrides(radio.EngineOverrides{})
				base := radio.RunBroadcast(tc.g, 0, tc.mk(), rng.New(seed), opt)
				for _, f := range baselineForcings {
					radio.SetEngineOverrides(f.o)
					alt := radio.RunBroadcast(tc.g, 0, tc.mk(), rng.New(seed), opt)
					if base.Rounds != alt.Rounds || base.InformedRound != alt.InformedRound ||
						base.Informed != alt.Informed || base.TotalTx != alt.TotalTx ||
						base.MaxNodeTx != alt.MaxNodeTx {
						t.Fatalf("%s seed=%d [%s]: results diverge", tc.name, seed, f.name)
					}
					for i := range base.PerNodeTx {
						if base.PerNodeTx[i] != alt.PerNodeTx[i] {
							t.Fatalf("%s seed=%d [%s]: per-node tx differ at node %d",
								tc.name, seed, f.name, i)
						}
					}
					for i := range base.History {
						w, h := base.History[i], alt.History[i]
						if w.Round != h.Round || w.Transmitters != h.Transmitters ||
							w.NewlyInformed != h.NewlyInformed || w.Informed != h.Informed {
							t.Fatalf("%s seed=%d [%s]: history differs at %d",
								tc.name, seed, f.name, i)
						}
					}
				}
				radio.SetEngineOverrides(radio.EngineOverrides{})
			}
		}
	}
}

func TestGossipBaselineBatchDecisionEquivalence(t *testing.T) {
	defer radio.SetEngineOverrides(radio.EngineOverrides{})
	g := graph.GNPDirected(128, 0.1, rng.New(2))
	for _, tc := range []struct {
		name string
		mk   func() radio.Gossiper
	}{
		{"tdma-gossip", func() radio.Gossiper { return &TDMAGossip{} }},
		{"uniform-gossip", func() radio.Gossiper { return &UniformGossip{Q: 0.08} }},
		// Dense rounds exercise the receiver-centric gossip kernel, sparse
		// ones the cross-round silent skip.
		{"uniform-gossip-dense", func() radio.Gossiper { return &UniformGossip{Q: 0.85} }},
		{"uniform-gossip-sparse", func() radio.Gossiper { return &UniformGossip{Q: 0.003} }},
	} {
		if _, ok := tc.mk().(radio.BatchGossiper); !ok {
			t.Fatalf("%s does not implement radio.BatchGossiper", tc.name)
		}
		opt := radio.GossipOptions{MaxRounds: 2000, StopWhenComplete: true}
		for seed := uint64(0); seed < 3; seed++ {
			radio.SetEngineOverrides(radio.EngineOverrides{})
			base := radio.RunGossip(g, tc.mk(), rng.New(seed), opt)
			for _, f := range baselineForcings {
				radio.SetEngineOverrides(f.o)
				alt := radio.RunGossip(g, tc.mk(), rng.New(seed), opt)
				if base.Rounds != alt.Rounds || base.CompleteRound != alt.CompleteRound ||
					base.TotalTx != alt.TotalTx || base.KnownPairs != alt.KnownPairs ||
					base.MaxNodeTx != alt.MaxNodeTx {
					t.Fatalf("%s seed=%d [%s]: gossip engines diverge", tc.name, seed, f.name)
				}
				for i := range base.PerNodeTx {
					if base.PerNodeTx[i] != alt.PerNodeTx[i] {
						t.Fatalf("%s seed=%d [%s]: per-node tx differ at %d", tc.name, seed, f.name, i)
					}
				}
			}
			radio.SetEngineOverrides(radio.EngineOverrides{})
		}
	}
}
