package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Battery is a persistent per-node energy store: each transmission costs one
// unit and a node with an empty battery stays silent forever. The store
// survives across protocol runs, so it models a sensor network performing
// REPEATED broadcast campaigns until the first one fails — the functional
// consequence of the paper's per-node energy bounds (a network running
// Algorithm 3 lives ≈ λ times longer than one running Czumaj–Rytter, and a
// network running Algorithm 1 pays one unit per node per campaign).
type Battery struct {
	budget int
	spent  []int32
}

// NewBattery creates a battery bank for n nodes with the given per-node
// budget (in transmissions).
func NewBattery(n, budget int) *Battery {
	if n < 1 || budget < 0 {
		panic("baseline: battery needs n >= 1 and budget >= 0")
	}
	return &Battery{budget: budget, spent: make([]int32, n)}
}

// Budget returns the per-node budget.
func (b *Battery) Budget() int { return b.budget }

// Spent returns how many transmissions node v has paid for so far.
func (b *Battery) Spent(v graph.NodeID) int { return int(b.spent[v]) }

// Remaining returns node v's remaining transmissions.
func (b *Battery) Remaining(v graph.NodeID) int { return b.budget - int(b.spent[v]) }

// DeadCount returns the number of nodes with empty batteries.
func (b *Battery) DeadCount() int {
	dead := 0
	for _, s := range b.spent {
		if int(s) >= b.budget {
			dead++
		}
	}
	return dead
}

// Limit wraps a broadcast protocol so that every transmission draws from
// this battery. The inner protocol is still consulted each round (its
// randomness stream advances identically with or without the budget); only
// the emission is vetoed. Dead nodes still receive — listening is free in
// the paper's energy measure.
func (b *Battery) Limit(inner radio.Broadcaster) *BatteryLimited {
	return &BatteryLimited{Inner: inner, bat: b}
}

// BatteryLimited is the wrapper produced by Battery.Limit. It may also be
// constructed directly via NewBatteryLimited for a single-run budget.
type BatteryLimited struct {
	Inner radio.Broadcaster
	bat   *Battery
}

// NewBatteryLimited wraps inner with a fresh single-run battery of the
// given budget (allocated at Begin).
func NewBatteryLimited(inner radio.Broadcaster, budget int) *BatteryLimited {
	if budget < 0 {
		panic("baseline: battery budget must be non-negative")
	}
	return &BatteryLimited{Inner: inner, bat: &Battery{budget: budget}}
}

// Name implements radio.Broadcaster.
func (b *BatteryLimited) Name() string {
	return fmt.Sprintf("%s/battery=%d", b.Inner.Name(), b.bat.budget)
}

// Begin implements radio.Broadcaster. A battery created by NewBattery keeps
// its charge across runs; one created by NewBatteryLimited is allocated
// fresh here.
func (b *BatteryLimited) Begin(n int, src graph.NodeID, r *rng.RNG) {
	if b.bat.spent == nil {
		b.bat.spent = make([]int32, n)
	}
	if len(b.bat.spent) != n {
		panic("baseline: battery sized for a different network")
	}
	b.Inner.Begin(n, src, r)
}

// BeginRound implements radio.Broadcaster.
func (b *BatteryLimited) BeginRound(round int) { b.Inner.BeginRound(round) }

// OnInformed implements radio.Broadcaster.
func (b *BatteryLimited) OnInformed(round int, v graph.NodeID) { b.Inner.OnInformed(round, v) }

// ShouldTransmit implements radio.Broadcaster: the inner decision is always
// evaluated, then vetoed if the battery is flat.
func (b *BatteryLimited) ShouldTransmit(round int, v graph.NodeID) bool {
	want := b.Inner.ShouldTransmit(round, v)
	if !want {
		return false
	}
	if int(b.bat.spent[v]) >= b.bat.budget {
		return false // dead battery: the radio stays silent
	}
	b.bat.spent[v]++
	return true
}

// Quiesced implements radio.Broadcaster. Conservative: defer to the inner
// protocol (the engine's round cap bounds stalled runs anyway).
func (b *BatteryLimited) Quiesced(round int) bool { return b.Inner.Quiesced(round) }

// Spent returns how many transmissions node v has paid for.
func (b *BatteryLimited) Spent(v graph.NodeID) int { return b.bat.Spent(v) }
