package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RoundProb schedules are what the engine's skip gate consults; pin them so
// a drifted probability or phase window cannot rot silently.

func TestFixedProbRoundProbSchedule(t *testing.T) {
	f := &FixedProb{Q: 0.07, Window: 50}
	f.Begin(128, 0, rng.New(1))
	for _, round := range []int{1, 10, 9999} {
		if q, ok := f.RoundProb(round); !ok || q != 0.07 {
			t.Fatalf("round %d: RoundProb = (%v, %v), want (0.07, true)", round, q, ok)
		}
	}
}

func TestElsasserGasieniecRoundProbSchedule(t *testing.T) {
	e := NewElsasserGasieniec(0.03)
	e.Begin(512, graph.NodeID(0), rng.New(1))
	for round := 1; round <= e.phase3To+3; round++ {
		q, ok := e.RoundProb(round)
		wantOK := round > e.diam && round <= e.phase3To
		if ok != wantOK {
			t.Fatalf("round %d (diam %d, phase3To %d): ok=%v, want %v", round, e.diam, e.phase3To, ok, wantOK)
		}
		if ok && q != e.p3prob {
			t.Fatalf("round %d: q=%v, want %v", round, q, e.p3prob)
		}
	}
}

func TestUniformGossipRoundProbSchedule(t *testing.T) {
	u := &UniformGossip{Q: 0.3}
	u.Begin(64, rng.New(1))
	if q, ok := u.RoundProb(12); !ok || q != 0.3 {
		t.Fatalf("RoundProb = (%v, %v), want (0.3, true)", q, ok)
	}
}
