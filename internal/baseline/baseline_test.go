package baseline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestFloodDirectedPath(t *testing.T) {
	b := graph.NewBuilder(8)
	for i := 0; i+1 < 8; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	res := radio.RunBroadcast(g, 0, Flood{}, rng.New(1), radio.Options{MaxRounds: 20, StopWhenInformed: true})
	if res.InformedRound != 7 {
		t.Fatalf("flood on directed path: round %d, want 7", res.InformedRound)
	}
}

func TestFixedProbWindowRetires(t *testing.T) {
	g := graph.Complete(4)
	f := &FixedProb{Q: 1, Window: 2}
	res := radio.RunBroadcast(g, 0, f, rng.New(1), radio.Options{MaxRounds: 100})
	// q=1 on K4: round 1 source informs all. Rounds 2,3: everyone collides.
	// Every node retires after its window, so the engine quiesces.
	if res.Rounds > 5 {
		t.Fatalf("FixedProb did not quiesce: ran %d rounds", res.Rounds)
	}
	if res.MaxNodeTx > 3 {
		t.Fatalf("node transmitted %d times with window 2", res.MaxNodeTx)
	}
}

func TestFixedProbEternal(t *testing.T) {
	g := graph.Complete(3)
	f := &FixedProb{Q: 0.5} // no window: never quiesces
	res := radio.RunBroadcast(g, 0, f, rng.New(2), radio.Options{MaxRounds: 50})
	if res.Rounds != 50 {
		t.Fatalf("eternal FixedProb stopped at %d", res.Rounds)
	}
}

func TestFixedProbCompletesOnObs43(t *testing.T) {
	// On the Observation 4.3 network a moderate q eventually informs all
	// destinations: each destination needs exactly one of its two
	// intermediates to fire, which happens w.p. 2q(1-q) per round.
	net := graph.NewObs43Network(16)
	f := &FixedProb{Q: 0.25}
	res := radio.RunBroadcast(net.G, net.Source, f, rng.New(3), radio.Options{MaxRounds: 500, StopWhenInformed: true})
	if !res.Completed() {
		t.Fatalf("obs43 incomplete: %d/%d", res.Informed, net.G.N())
	}
}

func TestFixedProbName(t *testing.T) {
	if (&FixedProb{Q: 0.125}).Name() != "fixed(q=0.125)" {
		t.Fatal("name format")
	}
}

func TestFixedProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q > 1")
		}
	}()
	(&FixedProb{Q: 1.5}).Begin(4, 0, rng.New(1))
}

func TestDecayCompletesOnStar(t *testing.T) {
	// Star with many leaves informed simultaneously: Flood would livelock;
	// Decay's halving persistence isolates a single transmitter w.h.p.
	// Build: source -> all leaves; leaves -> hub.
	k := 64
	b := graph.NewBuilder(k + 2)
	hub := graph.NodeID(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, graph.NodeID(i))
		b.AddEdge(graph.NodeID(i), hub)
	}
	g := b.Build()
	completed := 0
	for seed := uint64(0); seed < 10; seed++ {
		d := NewDecay(12)
		res := radio.RunBroadcast(g, 0, d, rng.New(seed), radio.Options{MaxRounds: 2000, StopWhenInformed: true})
		if res.Completed() {
			completed++
		}
	}
	if completed < 8 {
		t.Fatalf("decay completed only %d/10 star trials", completed)
	}
}

func TestDecayCompletesOnGrid(t *testing.T) {
	g := graph.Grid2D(10, 10)
	d := NewDecay(40)
	res := radio.RunBroadcast(g, 0, d, rng.New(5), radio.Options{MaxRounds: 5000, StopWhenInformed: true})
	if !res.Completed() {
		t.Fatalf("decay on grid: informed %d/%d", res.Informed, g.N())
	}
}

func TestDecayQuiesces(t *testing.T) {
	g := graph.Complete(8)
	d := NewDecay(3)
	res := radio.RunBroadcast(g, 0, d, rng.New(6), radio.Options{MaxRounds: 10000})
	l := int(math.Ceil(math.Log2(8)))
	if res.Rounds > (3+1)*l+5 {
		t.Fatalf("decay ran %d rounds, budget ~%d", res.Rounds, 4*l)
	}
}

func TestDecayPhasePattern(t *testing.T) {
	// A node always transmits in the first round of each of its phases.
	d := NewDecay(2)
	d.Begin(16, 0, rng.New(7))
	d.OnInformed(0, 0)
	if !d.ShouldTransmit(1, 0) {
		t.Fatal("decay must transmit in round 1 of its phase")
	}
	l := int(math.Ceil(math.Log2(16)))
	if !d.ShouldTransmit(1+l, 0) {
		t.Fatal("decay must transmit in first round of second phase")
	}
	// After Phases*l rounds it must be silent.
	if d.ShouldTransmit(1+2*l, 0) {
		t.Fatal("decay transmitted past its budget")
	}
	if !d.Quiesced(1 + 2*l) {
		t.Fatal("decay should quiesce after all nodes retire")
	}
}

func TestDecayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDecay(0)
}

func TestCzumajRytterConstruction(t *testing.T) {
	n, D := 1024, 32
	cr := NewCzumajRytter(n, D, 1)
	if cr.Name() != "czumaj-rytter" {
		t.Fatal("name")
	}
	lambda := dist.LambdaFor(n, D)
	wantWindow := core.WindowRounds(n, float64(lambda))
	if cr.Window != wantWindow {
		t.Fatalf("CR window %d, want %d (lambda=%d)", cr.Window, wantWindow, lambda)
	}
	a3 := core.NewAlgorithm3(n, D, 1)
	if cr.Window <= a3.Window {
		t.Fatalf("CR window %d should exceed Algorithm 3 window %d", cr.Window, a3.Window)
	}
	if !strings.Contains(cr.Dist.Name, "alphaPrime") {
		t.Fatalf("CR must use alphaPrime, got %s", cr.Dist.Name)
	}
}

func TestCzumajRytterCompletesOnGrid(t *testing.T) {
	g := graph.Grid2D(12, 12)
	completed := 0
	for seed := uint64(0); seed < 5; seed++ {
		cr := NewCzumajRytter(g.N(), 22, 1)
		res := radio.RunBroadcast(g, 0, cr, rng.New(seed), radio.Options{MaxRounds: 60000})
		if res.Completed() {
			completed++
		}
	}
	if completed < 4 {
		t.Fatalf("CR completed %d/5 grid trials", completed)
	}
}

func TestElsasserGasieniecCompletes(t *testing.T) {
	n := 1024
	p := 0.054
	completed := 0
	for seed := uint64(0); seed < 8; seed++ {
		g := graph.GNPDirected(n, p, rng.New(seed))
		e := NewElsasserGasieniec(p)
		res := radio.RunBroadcast(g, 0, e, rng.New(seed^0xbeef), radio.Options{MaxRounds: 10000})
		if res.Completed() {
			completed++
		}
	}
	if completed < 6 {
		t.Fatalf("EG completed %d/8", completed)
	}
}

func TestElsasserGasieniecEnergyExceedsAlgorithm1(t *testing.T) {
	// The E12 story: EG floods for D-1 rounds, so nodes can transmit several
	// times; Algorithm 1 caps every node at one transmission.
	n := 4096
	p := 0.0163 // sparse: diam ceil(log n / log d) >= 2, so Phase 1 floods
	g := graph.GNPDirected(n, p, rng.New(77))
	e := NewElsasserGasieniec(p)
	eg := radio.RunBroadcast(g, 0, e, rng.New(78), radio.Options{MaxRounds: 10000})
	a := core.NewAlgorithm1(p)
	a1 := radio.RunBroadcast(g, 0, a, rng.New(78), radio.Options{MaxRounds: 10000})
	if a1.MaxNodeTx > 1 {
		t.Fatalf("Algorithm 1 max node tx %d", a1.MaxNodeTx)
	}
	if eg.MaxNodeTx < 2 {
		t.Fatalf("EG max node tx %d, expected >= 2 (flooding phase)", eg.MaxNodeTx)
	}
	if eg.TotalTx <= a1.TotalTx {
		t.Fatalf("EG total %d should exceed Algorithm 1 total %d", eg.TotalTx, a1.TotalTx)
	}
}

func TestElsasserGasieniecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewElsasserGasieniec(0).Begin(10, 0, rng.New(1))
}

func TestTDMAGossipAnyStronglyConnected(t *testing.T) {
	g := graph.Cycle(9)
	p := &TDMAGossip{}
	res := radio.RunGossip(g, p, rng.New(8), radio.GossipOptions{MaxRounds: 9 * 10, StopWhenComplete: true})
	if !res.Completed() {
		t.Fatalf("TDMA gossip incomplete on cycle: %d pairs", res.KnownPairs)
	}
	if res.MaxNodeTx > 10 {
		t.Fatalf("TDMA node tx %d", res.MaxNodeTx)
	}
}

func TestUniformGossipMatchesAlgorithm2Shape(t *testing.T) {
	n := 128
	p := 8 * math.Log(float64(n)) / float64(n)
	g := graph.GNPDirected(n, p, rng.New(9))
	d := float64(n) * p
	u := &UniformGossip{Q: 1 / d}
	res := radio.RunGossip(g, u, rng.New(10), radio.GossipOptions{MaxRounds: 100000, StopWhenComplete: true})
	if !res.Completed() {
		t.Fatal("uniform gossip incomplete")
	}
	a := core.NewAlgorithm2(p)
	res2 := radio.RunGossip(g, a, rng.New(10), radio.GossipOptions{MaxRounds: 100000, StopWhenComplete: true})
	if !res2.Completed() {
		t.Fatal("algorithm2 incomplete")
	}
	// Identical seeds and rates: identical runs.
	if res.CompleteRound != res2.CompleteRound || res.TotalTx != res2.TotalTx {
		t.Fatalf("uniform(1/d) and Algorithm 2 diverge: %d/%d vs %d/%d",
			res.CompleteRound, res.TotalTx, res2.CompleteRound, res2.TotalTx)
	}
}

func TestUniformGossipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&UniformGossip{Q: -0.1}).Begin(4, rng.New(1))
}

// --- battery ---

func TestBatteryLimitedVetoes(t *testing.T) {
	g := graph.Complete(4)
	bl := NewBatteryLimited(Flood{}, 3)
	res := radio.RunBroadcast(g, 0, bl, rng.New(1), radio.Options{MaxRounds: 20})
	if res.MaxNodeTx > 3 {
		t.Fatalf("battery exceeded: max tx %d", res.MaxNodeTx)
	}
	// Flood would transmit every round; with B=3 every informed node stops.
	if bl.Spent(0) != 3 {
		t.Fatalf("source spent %d, want 3", bl.Spent(0))
	}
}

func TestBatteryZeroSilencesEverything(t *testing.T) {
	g := graph.Complete(4)
	res := radio.RunBroadcast(g, 0, NewBatteryLimited(Flood{}, 0), rng.New(1), radio.Options{MaxRounds: 10})
	if res.TotalTx != 0 || res.Informed != 1 {
		t.Fatalf("zero budget leaked: %+v", res)
	}
}

func TestBatteryPersistsAcrossRuns(t *testing.T) {
	g := graph.Complete(8)
	bat := NewBattery(8, 5)
	for campaign := 0; campaign < 3; campaign++ {
		radio.RunBroadcast(g, 0, bat.Limit(NewDecay(4)), rng.New(uint64(campaign)), radio.Options{MaxRounds: 200})
	}
	total := 0
	for v := 0; v < 8; v++ {
		if bat.Spent(graph.NodeID(v)) > 5 {
			t.Fatalf("node %d over budget: %d", v, bat.Spent(graph.NodeID(v)))
		}
		total += bat.Spent(graph.NodeID(v))
	}
	if total == 0 {
		t.Fatal("no energy spent across campaigns")
	}
	if bat.Remaining(0) != 5-bat.Spent(0) {
		t.Fatal("Remaining arithmetic wrong")
	}
}

func TestBatteryDeadCount(t *testing.T) {
	bat := NewBattery(4, 1)
	g := graph.Complete(4)
	radio.RunBroadcast(g, 0, bat.Limit(Flood{}), rng.New(1), radio.Options{MaxRounds: 30})
	// Flood with B=1: every informed node spends its single unit.
	if bat.DeadCount() == 0 {
		t.Fatal("expected dead nodes after flooding with B=1")
	}
}

func TestBatterySizeMismatchPanics(t *testing.T) {
	bat := NewBattery(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	radio.RunBroadcast(graph.Complete(5), 0, bat.Limit(Flood{}), rng.New(1), radio.Options{MaxRounds: 1})
}

func TestBatteryNamePropagates(t *testing.T) {
	bl := NewBatteryLimited(Flood{}, 7)
	if bl.Name() != "flood/battery=7" {
		t.Fatalf("name %q", bl.Name())
	}
}

func TestBatteryPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative budget": func() { NewBatteryLimited(Flood{}, -1) },
		"bad bank":        func() { NewBattery(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
