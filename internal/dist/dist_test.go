package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPMFsNormalised(t *testing.T) {
	n, D := 1<<16, 1<<6
	for _, d := range []*Distribution{
		NewAlphaForDiameter(n, D),
		NewAlphaPrimeForDiameter(n, D),
		NewAlpha(n, 4),
		NewAlphaPrime(n, 4),
		NewUniformLevels(n),
		NewPointLevel(n, 8),
	} {
		sum := 0.0
		for k := 1; k <= d.Levels(); k++ {
			sum += d.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: pmf sums to %v", d.Name, sum)
		}
		if d.Prob(0) != 0 || d.Prob(d.Levels()+1) != 0 {
			t.Fatalf("%s: out-of-range Prob not zero", d.Name)
		}
	}
}

func TestPaperProperties(t *testing.T) {
	for _, tc := range []struct{ n, D int }{
		{1 << 16, 1 << 6}, {1 << 20, 1 << 8}, {1 << 10, 1 << 8}, {1 << 14, 4},
	} {
		lambda := LambdaFor(tc.n, tc.D)
		a := NewAlphaForDiameter(tc.n, tc.D)
		ap := NewAlphaPrimeForDiameter(tc.n, tc.D)
		if err := CheckPaperProperties(a, ap, lambda); err != nil {
			t.Fatalf("n=%d D=%d: %v", tc.n, tc.D, err)
		}
	}
}

func TestLambdaFor(t *testing.T) {
	if got := LambdaFor(1<<16, 1<<6); got != 10 {
		t.Fatalf("LambdaFor(2^16, 2^6) = %d, want 10", got)
	}
	if got := LambdaFor(1<<10, 1<<10); got != 1 {
		t.Fatalf("LambdaFor(n, n) = %d, want 1 (clamped)", got)
	}
	if got := LambdaFor(1<<10, 1); got != 10 {
		t.Fatalf("LambdaFor(2^10, 1) = %d, want 10", got)
	}
}

func TestExpectedSendProbThetaOneOverLambda(t *testing.T) {
	// E[2^{-I}] must scale like 1/λ for α (the Theorem 4.1 energy rate).
	n := 1 << 16
	e4 := NewAlpha(n, 4).ExpectedSendProb()
	e12 := NewAlpha(n, 12).ExpectedSendProb()
	ratio := e4 / e12
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("E[2^-I] ratio λ=4 vs λ=12: %v, want ≈ 3", ratio)
	}
}

func TestSamplerMatchesPMF(t *testing.T) {
	n := 1 << 12
	d := NewAlpha(n, 5)
	r := rng.New(99)
	const draws = 200000
	counts := make([]int, d.Levels()+1)
	for i := 0; i < draws; i++ {
		k := d.Sample(r)
		if k < 1 || k > d.Levels() {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	for k := 1; k <= d.Levels(); k++ {
		got := float64(counts[k]) / draws
		want := d.Prob(k)
		if math.Abs(got-want) > 0.01+0.1*want {
			t.Fatalf("level %d: empirical %v vs pmf %v", k, got, want)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	d := NewAlphaForDiameter(1<<14, 1<<5)
	r1, r2 := rng.New(7), rng.New(7)
	for i := 0; i < 1000; i++ {
		if d.Sample(r1) != d.Sample(r2) {
			t.Fatalf("draw %d differs for equal seeds", i)
		}
	}
}

func TestPointLevelSamplesItsLevel(t *testing.T) {
	d := NewPointLevel(1<<10, 6)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if k := d.Sample(r); k != 6 {
			t.Fatalf("point(6) sampled %d", k)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"alpha lambda 0":    func() { NewAlpha(1024, 0) },
		"alpha lambda big":  func() { NewAlpha(1024, 99) },
		"point level 0":     func() { NewPointLevel(1024, 0) },
		"point level big":   func() { NewPointLevel(1024, 99) },
		"alphaPrime lambda": func() { NewAlphaPrime(1024, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
