// Package dist implements the level distributions of §4 of the paper.
//
// A level distribution assigns probabilities to the levels k = 1..L,
// L = ⌈log₂ n⌉. In round r of the general broadcasting algorithms every
// active node transmits with probability 2^{-I_r}, where the shared
// selection sequence I_1, I_2, ... is drawn i.i.d. from the distribution.
// Level k is therefore "tuned" to neighbourhoods of size ≈ 2^k: if m ≈ 2^k
// active nodes surround a receiver, a round with I_r = k has a constant
// probability that exactly one of them transmits.
//
// Two families matter:
//
//   - α′ (Czumaj–Rytter, [11]): a plateau of mass Θ(1/λ) on levels k ≤ λ
//     followed by geometric decay 2^{-(k-λ)}·Θ(1/λ) on deeper levels. Deep
//     levels are starved, so per-neighbour success on large neighbourhoods
//     needs a Θ(λ·log² n) activity window — Θ(log² n) transmissions per
//     node.
//
//   - α (the paper, Fig. 1): the mixture α = ½·α′ + ½·Uniform{1..L}. The
//     uniform half guarantees the floor α_k ≥ 1/(2 log n) on EVERY level,
//     so a Θ(log² n) window suffices while the plateau half keeps the
//     per-round transmission rate E[2^{-I}] = Θ(1/λ). This is what makes
//     Algorithm 3 energy-optimal (Theorems 4.1 and 4.4).
//
// The package also provides the uniform and point distributions used by the
// lower-bound experiments, and CheckPaperProperties, which verifies the
// inequalities the §4 proofs rely on.
package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Distribution is a probability distribution over levels 1..L with O(1)
// sampling (Walker's alias method). Build one with the New* constructors.
type Distribution struct {
	// Name labels the distribution in tables and test output.
	Name string

	pmf []float64 // pmf[k-1] = P(I = k)

	// alias-method tables, built once by finalise.
	aliasProb []float64
	alias     []int

	expSend float64 // E[2^{-I}], cached
}

// Levels returns L, the number of levels.
func (d *Distribution) Levels() int { return len(d.pmf) }

// Prob returns P(I = k) for k in 1..Levels(); 0 outside that range.
func (d *Distribution) Prob(k int) float64 {
	if k < 1 || k > len(d.pmf) {
		return 0
	}
	return d.pmf[k-1]
}

// ExpectedSendProb returns E[2^{-I}] — the per-round transmission
// probability of an active node, and therefore its expected energy per
// active round.
func (d *Distribution) ExpectedSendProb() float64 { return d.expSend }

// Sample draws one level from the distribution using r. O(1) via the alias
// method; consumes exactly one Uint64 and at most one Float64 from r.
func (d *Distribution) Sample(r *rng.RNG) int {
	i := r.Intn(len(d.pmf))
	if r.Float64() < d.aliasProb[i] {
		return i + 1
	}
	return d.alias[i] + 1
}

// levelsFor returns L = ⌈log₂ n⌉ (at least 1).
func levelsFor(n int) int {
	if n < 2 {
		return 1
	}
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	return l
}

// LambdaFor returns the paper's λ = ⌈log₂(n/D)⌉ for an n-node network of
// diameter D, clamped to [1, ⌈log₂ n⌉].
func LambdaFor(n, D int) int {
	l := levelsFor(n)
	if D < 1 {
		D = 1
	}
	lam := int(math.Ceil(math.Log2(float64(n) / float64(D))))
	if lam < 1 {
		lam = 1
	}
	if lam > l {
		lam = l
	}
	return lam
}

// finalise normalises the pmf, caches E[2^{-I}] and builds the alias tables.
func finalise(d *Distribution) *Distribution {
	total := 0.0
	for _, p := range d.pmf {
		if p < 0 {
			panic("dist: negative pmf entry")
		}
		total += p
	}
	if total <= 0 {
		panic("dist: zero-mass distribution")
	}
	for i := range d.pmf {
		d.pmf[i] /= total
	}
	for k, p := range d.pmf {
		d.expSend += p * math.Pow(2, -float64(k+1))
	}

	// Walker alias tables.
	n := len(d.pmf)
	d.aliasProb = make([]float64, n)
	d.alias = make([]int, n)
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range d.pmf {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		d.aliasProb[s] = scaled[s]
		d.alias[s] = g
		scaled[g] = scaled[g] + scaled[s] - 1
		if scaled[g] < 1 {
			large = large[:len(large)-1]
			small = append(small, g)
		}
	}
	for _, i := range large {
		d.aliasProb[i] = 1
		d.alias[i] = i
	}
	for _, i := range small {
		d.aliasProb[i] = 1 // numerical leftovers
		d.alias[i] = i
	}
	return d
}

// alphaPrimePMF returns the unnormalised Czumaj–Rytter shape for the given
// plateau width λ: constant on k ≤ λ, halving on each deeper level.
func alphaPrimePMF(L, lambda int) []float64 {
	pmf := make([]float64, L)
	for k := 1; k <= L; k++ {
		if k <= lambda {
			pmf[k-1] = 1
		} else {
			pmf[k-1] = math.Pow(2, -float64(k-lambda))
		}
	}
	return pmf
}

// NewAlphaPrime returns the Czumaj–Rytter distribution α′ with plateau
// width λ over levels 1..⌈log₂ n⌉.
func NewAlphaPrime(n, lambda int) *Distribution {
	L := levelsFor(n)
	if lambda < 1 || lambda > L {
		panic(fmt.Sprintf("dist: lambda %d outside [1, %d]", lambda, L))
	}
	return finalise(&Distribution{
		Name: fmt.Sprintf("alphaPrime(λ=%d)", lambda),
		pmf:  alphaPrimePMF(L, lambda),
	})
}

// NewAlphaPrimeForDiameter returns α′ with the paper's λ = log₂(n/D).
func NewAlphaPrimeForDiameter(n, D int) *Distribution {
	return NewAlphaPrime(n, LambdaFor(n, D))
}

// NewAlpha returns the paper's distribution α with plateau width λ: the
// even mixture of α′(λ) and the uniform distribution on 1..L (Fig. 1 left).
// It satisfies α_k ≥ α′_k/2, α_k ≥ 1/(2 log n) and α_k = O(1/λ), the three
// properties the Theorem 4.1 proof uses.
func NewAlpha(n, lambda int) *Distribution {
	L := levelsFor(n)
	if lambda < 1 || lambda > L {
		panic(fmt.Sprintf("dist: lambda %d outside [1, %d]", lambda, L))
	}
	ap := alphaPrimePMF(L, lambda)
	apTotal := 0.0
	for _, p := range ap {
		apTotal += p
	}
	pmf := make([]float64, L)
	for i := range pmf {
		pmf[i] = 0.5*ap[i]/apTotal + 0.5/float64(L)
	}
	return finalise(&Distribution{
		Name: fmt.Sprintf("alpha(λ=%d)", lambda),
		pmf:  pmf,
	})
}

// NewAlphaForDiameter returns α with the paper's λ = log₂(n/D).
func NewAlphaForDiameter(n, D int) *Distribution {
	return NewAlpha(n, LambdaFor(n, D))
}

// NewUniformLevels returns the uniform distribution on levels 1..⌈log₂ n⌉ —
// the unknown-diameter fallback and a lower-bound strawman.
func NewUniformLevels(n int) *Distribution {
	L := levelsFor(n)
	pmf := make([]float64, L)
	for i := range pmf {
		pmf[i] = 1
	}
	return finalise(&Distribution{Name: "uniform", pmf: pmf})
}

// NewPointLevel returns the point mass on the single level k — every round
// uses transmission probability 2^{-k}. Used by the star-crossing analysis.
func NewPointLevel(n, k int) *Distribution {
	L := levelsFor(n)
	if k < 1 || k > L {
		panic(fmt.Sprintf("dist: point level %d outside [1, %d]", k, L))
	}
	pmf := make([]float64, L)
	pmf[k-1] = 1
	return finalise(&Distribution{Name: fmt.Sprintf("point(k=%d)", k), pmf: pmf})
}

// CheckPaperProperties verifies the inequalities the §4 proofs rely on:
// both pmfs sum to 1, α dominates α′/2 pointwise, α has the 1/(2 log n)
// floor on every level, and α's plateau mass is O(1/λ).
func CheckPaperProperties(a, ap *Distribution, lambda int) error {
	const eps = 1e-9
	L := a.Levels()
	if ap.Levels() != L {
		return fmt.Errorf("level count mismatch: %d vs %d", L, ap.Levels())
	}
	for _, d := range []*Distribution{a, ap} {
		sum := 0.0
		for k := 1; k <= L; k++ {
			sum += d.Prob(k)
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("%s: pmf sums to %v, not 1", d.Name, sum)
		}
	}
	floor := 1 / (2 * float64(L))
	for k := 1; k <= L; k++ {
		if a.Prob(k)+eps < ap.Prob(k)/2 {
			return fmt.Errorf("alpha_%d = %v < alphaPrime_%d/2 = %v",
				k, a.Prob(k), k, ap.Prob(k)/2)
		}
		if a.Prob(k)+eps < floor {
			return fmt.Errorf("alpha_%d = %v below floor 1/(2 log n) = %v",
				k, a.Prob(k), floor)
		}
		if a.Prob(k) > 2/float64(lambda)+eps {
			return fmt.Errorf("alpha_%d = %v exceeds O(1/λ) cap 2/λ = %v",
				k, a.Prob(k), 2/float64(lambda))
		}
	}
	return nil
}
