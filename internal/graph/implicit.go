package graph

import (
	"math"
	"slices"
	"sync"

	"repro/internal/rng"
)

// This file is the implicit-topology subsystem: graph views that serve
// adjacency on demand instead of storing edge lists, so the round engine can
// simulate the paper's generative families (G(n,p) at p = d/n, geometric
// UDG near the connectivity radius) at node counts where a materialized CSR
// would not fit in memory — the state is O(n), not O(n + m).
//
// Determinism contract: an implicit graph is a pure function of its
// construction inputs. Repeated enumeration of the same node's row yields
// the identical neighbour sequence (strictly increasing NodeID order, no
// self-loops), and MaterializeImplicit of the view is edge-identical to the
// view itself — which is what lets the engine equivalence suites pin
// implicit and materialized runs bit-identical.

// Implicit is the read interface the round engine's delivery kernels run
// against. *Digraph implements it by aliasing its CSR rows; generative
// backends re-derive rows on demand.
//
// Contract for all implementations:
//   - AppendOut(v, dst) appends v's out-neighbours ("the nodes that hear
//     v") to dst in strictly increasing id order, with no self-loops, and
//     returns the extended slice. Two calls with the same v append the same
//     sequence.
//   - AppendIn is the same for in-neighbours ("the nodes v hears").
//   - OutDegree/InDegree agree with the lengths of the appended rows.
//   - CheapIn reports whether in-side queries (AppendIn, InDegree) cost
//     O(row), like the out side. When false they may cost O(n + m) — the
//     engine then stays on push-side kernels and skips the pull cost model.
type Implicit interface {
	N() int
	OutDegree(v NodeID) int
	InDegree(v NodeID) int
	AppendOut(v NodeID, dst []NodeID) []NodeID
	AppendIn(v NodeID, dst []NodeID) []NodeID
	CheapIn() bool
}

// AppendOut appends v's out-neighbours to dst (the Implicit interface; the
// zero-copy accessor is Out).
func (g *Digraph) AppendOut(v NodeID, dst []NodeID) []NodeID { return append(dst, g.Out(v)...) }

// AppendIn appends v's in-neighbours to dst (the Implicit interface; the
// zero-copy accessor is In).
func (g *Digraph) AppendIn(v NodeID, dst []NodeID) []NodeID { return append(dst, g.In(v)...) }

// CheapIn reports that CSR in-rows are O(1) to locate.
func (g *Digraph) CheapIn() bool { return true }

var _ Implicit = (*Digraph)(nil)
var _ Implicit = (*ImplicitGNP)(nil)
var _ Implicit = (*ImplicitGeom)(nil)

// MaterializeImplicit builds the explicit CSR digraph with exactly the edge
// set g serves — the overlap-size bridge for the equivalence tests and for
// campaign points that compare the two representations. Rows arrive sorted
// (the Implicit contract), so the out-CSR assembles by concatenation and the
// in-adjacency by one counting transpose, matching the Builder invariants.
func MaterializeImplicit(g Implicit) *Digraph {
	n := g.N()
	d := &Digraph{
		n:      n,
		outOff: make([]int, n+1),
		inOff:  make([]int, n+1),
	}
	for u := 0; u < n; u++ {
		d.outTo = g.AppendOut(NodeID(u), d.outTo)
		d.outOff[u+1] = len(d.outTo)
	}
	m := len(d.outTo)
	d.inTo = make([]NodeID, m)
	for _, v := range d.outTo {
		d.inOff[v+1]++
	}
	for v := 0; v < n; v++ {
		d.inOff[v+1] += d.inOff[v]
	}
	pos := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range d.outTo[d.outOff[u]:d.outOff[u+1]] {
			d.inTo[d.inOff[v]+int(pos[v])] = NodeID(u)
			pos[v]++
		}
	}
	return d
}

// ImplicitGNP is the directed G(n,p) random digraph served implicitly: row u
// is re-derived on every query by geometric skipping (Batagelj–Brandes) over
// a substream seeded purely by (seed, u), so enumeration is O(deg(u))
// expected, bit-stable across repetitions, and the whole graph costs O(1)
// memory until in-side queries are made.
//
// The out side is the native direction. In-side queries (AppendIn, InDegree)
// lazily build a full O(n + m) transpose index on first use — cheap implicit
// enumeration of "who hears me" would require inverting n-1 independent
// row streams, so CheapIn reports false until the index exists and the
// engine keeps planet-scale runs on push-only kernels. Forced-pull
// equivalence tests at small n pay the transpose once and then run normally.
//
// Note the edge set differs from Scratch.GNPDirected at equal seeds: that
// generator draws ONE skip stream over the linear index of all ordered
// pairs, while this one draws an independent stream per row (the property
// that makes rows re-derivable). Both are exact G(n,p) samplers; compare an
// implicit instance against MaterializeImplicit of itself, never against the
// single-stream generator.
type ImplicitGNP struct {
	n    int
	p    float64
	seed uint64

	inOnce sync.Once
	inOff  []int
	inTo   []NodeID
}

// NewImplicitGNP returns the implicit G(n,p) instance identified by seed.
// Construction is O(1): no randomness is consumed and no edges are drawn.
func NewImplicitGNP(n int, p float64, seed uint64) *ImplicitGNP {
	if n < 1 {
		panic("graph: GNP needs n >= 1")
	}
	if n > 1<<31-1 {
		panic("graph: too many nodes for int32 ids")
	}
	if p < 0 || p > 1 {
		panic("graph: GNP needs p in [0,1]")
	}
	return &ImplicitGNP{n: n, p: p, seed: seed}
}

// N returns the number of nodes.
func (g *ImplicitGNP) N() int { return g.n }

// P returns the edge probability.
func (g *ImplicitGNP) P() float64 { return g.p }

// AppendOut appends row u — strictly increasing, self-loop-free — to dst.
// The row is a fresh geometric-skip pass over the n-1 possible targets,
// seeded by SubSeed(seed, u), so repeated calls append identical sequences
// and the borrowed RNG lives on the stack (no allocation beyond dst growth).
func (g *ImplicitGNP) AppendOut(u NodeID, dst []NodeID) []NodeID {
	var r rng.RNG
	r.Reseed(rng.SubSeed(g.seed, uint64(u)))
	s := r.SkipSample(g.n-1, g.p)
	for i, ok := s.Next(); ok; i, ok = s.Next() {
		v := NodeID(i)
		if v >= u {
			v++ // skip the diagonal: targets are [0,n) \ {u}
		}
		dst = append(dst, v)
	}
	return dst
}

// OutDegree counts row u by the same skip pass that enumerates it.
func (g *ImplicitGNP) OutDegree(u NodeID) int {
	var r rng.RNG
	r.Reseed(rng.SubSeed(g.seed, uint64(u)))
	s := r.SkipSample(g.n-1, g.p)
	deg := 0
	for _, ok := s.Next(); ok; _, ok = s.Next() {
		deg++
	}
	return deg
}

// buildIn materialises the transpose index: two full enumeration passes
// (count, then fill in u order, which leaves every in-row sorted).
func (g *ImplicitGNP) buildIn() {
	g.inOnce.Do(func() {
		off := make([]int, g.n+1)
		var r rng.RNG
		for u := 0; u < g.n; u++ {
			r.Reseed(rng.SubSeed(g.seed, uint64(u)))
			s := r.SkipSample(g.n-1, g.p)
			for i, ok := s.Next(); ok; i, ok = s.Next() {
				v := i
				if v >= u {
					v++
				}
				off[v+1]++
			}
		}
		for v := 0; v < g.n; v++ {
			off[v+1] += off[v]
		}
		to := make([]NodeID, off[g.n])
		pos := make([]int32, g.n)
		for u := 0; u < g.n; u++ {
			r.Reseed(rng.SubSeed(g.seed, uint64(u)))
			s := r.SkipSample(g.n-1, g.p)
			for i, ok := s.Next(); ok; i, ok = s.Next() {
				v := i
				if v >= u {
					v++
				}
				to[off[v]+int(pos[v])] = NodeID(u)
				pos[v]++
			}
		}
		g.inOff, g.inTo = off, to
	})
}

// InDegree returns the in-degree of v, building the transpose index on
// first use (see CheapIn).
func (g *ImplicitGNP) InDegree(v NodeID) int {
	g.buildIn()
	return g.inOff[v+1] - g.inOff[v]
}

// AppendIn appends the in-row of v, building the transpose index on first
// use (see CheapIn).
func (g *ImplicitGNP) AppendIn(v NodeID, dst []NodeID) []NodeID {
	g.buildIn()
	return append(dst, g.inTo[g.inOff[v]:g.inOff[v+1]]...)
}

// CheapIn reports whether the O(n + m) transpose index already exists;
// until then in-side queries would have to build it, so the engine treats
// the graph as push-only.
func (g *ImplicitGNP) CheapIn() bool { return g.inOff != nil }

// ImplicitGeom serves a geometric (RGG/UDG, optionally heterogeneous-radius)
// digraph from a coordinates-only index: the sampled points plus the same
// uniform cell grid Scratch.FromPoints uses, but holding node ids only —
// no edge lists. Both edge directions are O(row) expected: the grid's cell
// width is at least the maximum radius, so out-rows (dist(u,v) ≤ r_u) and
// in-rows (dist(u,v) ≤ r_v) of a node both live in its 3×3 cell
// neighbourhood. Memory is O(n) regardless of density.
type ImplicitGeom struct {
	pts     []GeometricPoint
	torus   bool
	cols    int
	cellW   float64
	cellOff []int
	cellIDs []NodeID
}

// NewImplicitGeom samples a geometric instance and returns its implicit
// view. It consumes r identically to Scratch.Geometric, so at equal seeds
// the two produce edge-identical graphs (the equivalence tests pin this).
func NewImplicitGeom(spec GeomSpec, r *rng.RNG) *ImplicitGeom {
	pts, _ := samplePoints(spec, r, nil, nil)
	return ImplicitFromPoints(pts, spec.Torus)
}

// ImplicitFromPoints indexes a fixed point set (u → v iff dist(u, v) ≤
// pts[u].Radius) without building adjacency. pts is retained (not copied);
// the grid parameters replicate Scratch.FromPoints exactly so the served
// edge set matches the materialized generator for the same points.
func ImplicitFromPoints(pts []GeometricPoint, torus bool) *ImplicitGeom {
	n := len(pts)
	if n < 1 {
		panic("graph: geometric needs at least one point")
	}
	if n > 1<<31-1 {
		panic("graph: too many nodes for int32 ids")
	}
	rmax := 0.0
	for i := range pts {
		if pts[i].Radius > rmax {
			rmax = pts[i].Radius
		}
	}
	if rmax <= 0 {
		panic("graph: all radii must be positive")
	}
	cols := int(1 / rmax)
	if maxCols := int(math.Sqrt(float64(n))) + 1; cols > maxCols {
		cols = maxCols
	}
	if cols < 1 {
		cols = 1
	}
	ig := &ImplicitGeom{
		pts:   pts,
		torus: torus,
		cols:  cols,
		cellW: 1.0 / float64(cols),
	}
	nCells := cols * cols
	ig.cellOff = make([]int, nCells+1)
	ig.cellIDs = make([]NodeID, n)
	for i := range pts {
		ig.cellOff[ig.cellOf(pts[i].Y)*cols+ig.cellOf(pts[i].X)+1]++
	}
	for c := 0; c < nCells; c++ {
		ig.cellOff[c+1] += ig.cellOff[c]
	}
	pos := make([]int32, nCells)
	for i := range pts {
		c := ig.cellOf(pts[i].Y)*cols + ig.cellOf(pts[i].X)
		ig.cellIDs[ig.cellOff[c]+int(pos[c])] = NodeID(i)
		pos[c]++
	}
	return ig
}

func (ig *ImplicitGeom) cellOf(x float64) int {
	c := int(x / ig.cellW)
	if c >= ig.cols {
		c = ig.cols - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// N returns the number of nodes.
func (ig *ImplicitGeom) N() int { return len(ig.pts) }

// Points returns the indexed point set. The slice is internal storage and
// must not be modified (moving a point would desynchronise the grid).
func (ig *ImplicitGeom) Points() []GeometricPoint { return ig.pts }

// Torus reports whether distances wrap around the unit square.
func (ig *ImplicitGeom) Torus() bool { return ig.torus }

// appendRow appends v's neighbours in one direction: out-rows keep
// candidates inside v's own radius, in-rows keep candidates whose radius
// reaches v. Every qualifying candidate is within rmax ≤ cellW of v, so the
// deduplicated 3×3 cell neighbourhood (identical to FromPoints, torus wrap
// included) covers both directions. Candidates arrive in grid order; sort
// restores the contract's increasing-id order. When count is true nothing
// is appended and only the row length is returned.
func (ig *ImplicitGeom) appendRow(v NodeID, dst []NodeID, in, count bool) ([]NodeID, int) {
	p := ig.pts[v]
	cols := ig.cols
	cx, cy := ig.cellOf(p.X), ig.cellOf(p.Y)
	rr := p.Radius * p.Radius
	var nbr [9]int
	cells := nbr[:0]
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if ig.torus {
				nx, ny = (nx+cols)%cols, (ny+cols)%cols
			} else if nx < 0 || ny < 0 || nx >= cols || ny >= cols {
				continue
			}
			key := ny*cols + nx
			if !slices.Contains(cells, key) {
				cells = append(cells, key)
			}
		}
	}
	start := len(dst)
	deg := 0
	for _, c := range cells {
		for _, w := range ig.cellIDs[ig.cellOff[c]:ig.cellOff[c+1]] {
			if w == v {
				continue
			}
			ddx := ig.pts[w].X - p.X
			ddy := ig.pts[w].Y - p.Y
			if ig.torus {
				if ddx < 0 {
					ddx = -ddx
				}
				if ddx > 0.5 {
					ddx = 1 - ddx
				}
				if ddy < 0 {
					ddy = -ddy
				}
				if ddy > 0.5 {
					ddy = 1 - ddy
				}
			}
			lim := rr
			if in {
				lim = ig.pts[w].Radius * ig.pts[w].Radius
			}
			if ddx*ddx+ddy*ddy <= lim {
				if count {
					deg++
				} else {
					dst = append(dst, w)
				}
			}
		}
	}
	if !count {
		slices.Sort(dst[start:])
		deg = len(dst) - start
	}
	return dst, deg
}

// AppendOut appends the nodes that hear v (dist(v, w) ≤ v's radius).
func (ig *ImplicitGeom) AppendOut(v NodeID, dst []NodeID) []NodeID {
	dst, _ = ig.appendRow(v, dst, false, false)
	return dst
}

// AppendIn appends the nodes v hears (dist(u, v) ≤ u's radius).
func (ig *ImplicitGeom) AppendIn(v NodeID, dst []NodeID) []NodeID {
	dst, _ = ig.appendRow(v, dst, true, false)
	return dst
}

// OutDegree counts v's out-row without materialising it.
func (ig *ImplicitGeom) OutDegree(v NodeID) int {
	_, deg := ig.appendRow(v, nil, false, true)
	return deg
}

// InDegree counts v's in-row without materialising it.
func (ig *ImplicitGeom) InDegree(v NodeID) int {
	_, deg := ig.appendRow(v, nil, true, true)
	return deg
}

// CheapIn reports that geometric in-rows are as cheap as out-rows (both are
// 3×3 cell scans).
func (ig *ImplicitGeom) CheapIn() bool { return true }
