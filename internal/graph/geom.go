package graph

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/rng"
)

// This file is the geometric ad hoc topology subsystem: random geometric /
// unit-disk graphs on the unit square or torus, density-heterogeneous
// placement (Matérn-style clustering), and per-node transmission radii
// (heterogeneous transmit power ⇒ asymmetric links). Construction runs in
// O(n + m) expected time via a uniform cell-grid spatial index that writes
// CSR adjacency directly into graph.Scratch storage, so sweep trial loops
// regenerate topologies allocation-free — there is no O(n²) pairwise scan
// anywhere on this path.

// Placement selects how node positions are sampled in the unit square.
type Placement int

const (
	// PlaceUniform scatters nodes independently and uniformly.
	PlaceUniform Placement = iota
	// PlaceCluster is a Matérn-style cluster process: Clusters parent sites
	// are placed uniformly, then every node picks a uniform parent and
	// scatters around it with a Gaussian of standard deviation Spread.
	// Density is heterogeneous: dense blobs separated by near-empty space.
	PlaceCluster
)

// GeomSpec describes one geometric topology family instance.
type GeomSpec struct {
	// N is the node count.
	N int
	// Radius is the (minimum) transmission radius. With RadiusMax unset or
	// equal, every node transmits to distance Radius and the graph is a
	// symmetric unit-disk graph.
	Radius float64
	// RadiusMax, when > Radius, gives every node its own radius uniform in
	// [Radius, RadiusMax] — heterogeneous transmit power, so u may hear v
	// without v hearing u (the paper's asymmetric-link motivation).
	RadiusMax float64
	// Torus wraps distances around the unit square, removing boundary
	// effects (the standard trick for clean threshold experiments).
	Torus bool
	// Placement selects the point process (default PlaceUniform).
	Placement Placement
	// Clusters is the number of Matérn parent sites for PlaceCluster
	// (default ≈ √N when unset).
	Clusters int
	// Spread is the Gaussian scatter radius around a parent for
	// PlaceCluster (default 2·Radius when unset).
	Spread float64
}

// ConnectivityRadius returns the sharp connectivity threshold radius of a
// uniform RGG on the unit square, r_c(n) = sqrt(ln n / (π n)): below it the
// graph has isolated vertices w.h.p., above it it is connected w.h.p.
// (Gupta–Kumar / Penrose). Geometric experiments parameterise radii as
// multiples of this quantity.
func ConnectivityRadius(n int) float64 {
	if n < 2 {
		return math.Sqrt2
	}
	return math.Sqrt(math.Log(float64(n)) / (math.Pi * float64(n)))
}

func (spec GeomSpec) check() {
	if spec.N < 1 {
		panic("graph: geometric spec needs N >= 1")
	}
	if spec.Radius <= 0 || spec.Radius > math.Sqrt2 {
		panic(fmt.Sprintf("graph: geometric radius %g out of (0, sqrt(2)]", spec.Radius))
	}
	if spec.RadiusMax != 0 && (spec.RadiusMax < spec.Radius || spec.RadiusMax > math.Sqrt2) {
		panic(fmt.Sprintf("graph: geometric radius range [%g, %g] invalid", spec.Radius, spec.RadiusMax))
	}
	if spec.Placement == PlaceCluster && spec.Clusters < 0 {
		panic("graph: negative cluster count")
	}
}

// samplePoints fills dst (resized as needed) with spec.N positions and radii
// drawn from r, and returns it along with the (possibly grown) parent-site
// buffer — callers that sample repeatedly pass the returned buffer back in so
// clustered placement stays allocation-free too. All randomness comes from r
// in a fixed order, so instances are pure functions of the seed.
func samplePoints(spec GeomSpec, r *rng.RNG, dst []GeometricPoint, parents []float64) ([]GeometricPoint, []float64) {
	spec.check()
	if cap(dst) < spec.N {
		dst = make([]GeometricPoint, spec.N)
	}
	dst = dst[:spec.N]
	switch spec.Placement {
	case PlaceUniform:
		for i := range dst {
			dst[i].X, dst[i].Y = r.Float64(), r.Float64()
		}
	case PlaceCluster:
		k := spec.Clusters
		if k == 0 {
			k = int(math.Ceil(math.Sqrt(float64(spec.N))))
		}
		if k > spec.N {
			k = spec.N
		}
		spread := spec.Spread
		if spread <= 0 {
			spread = 2 * spec.Radius
		}
		// Parent sites first (x at [i], y at [k+i]), then children; one
		// parent draw + two Gaussian scatters per node.
		if cap(parents) < 2*k {
			parents = make([]float64, 2*k)
		}
		parents = parents[:2*k]
		for i := 0; i < k; i++ {
			parents[i], parents[k+i] = r.Float64(), r.Float64()
		}
		for i := range dst {
			p := r.Intn(k)
			dst[i].X = wrapOrReflect(parents[p]+spread*r.Normal(), spec.Torus)
			dst[i].Y = wrapOrReflect(parents[k+p]+spread*r.Normal(), spec.Torus)
		}
	default:
		panic("graph: unknown placement")
	}
	if spec.RadiusMax > spec.Radius {
		for i := range dst {
			dst[i].Radius = spec.Radius + (spec.RadiusMax-spec.Radius)*r.Float64()
		}
	} else {
		for i := range dst {
			dst[i].Radius = spec.Radius
		}
	}
	return dst, parents
}

// wrapOrReflect maps a scattered coordinate back into [0, 1): modular wrap on
// the torus (cluster mass is conserved across the seam), mirror reflection on
// the square (keeps boundary clusters dense instead of clipping them).
func wrapOrReflect(x float64, torus bool) float64 {
	if torus {
		x = math.Mod(x, 1)
		if x < 0 {
			x++
		}
		if x >= 1 { // -ε + 1 can round to exactly 1.0
			x = 0
		}
		return x
	}
	// Reflect x into [0, 2) period, then fold [1, 2) back onto (0, 1].
	x = math.Mod(math.Abs(x), 2)
	if x >= 1 {
		x = 2 - x
	}
	if x == 1 { // fold the closed endpoint back inside
		x = math.Nextafter(1, 0)
	}
	return x
}

// Geometric samples a geometric instance into the scratch's reusable storage
// and returns the digraph plus the sampled points. Both alias scratch storage
// and are valid only until the next generation call on s.
func (s *Scratch) Geometric(spec GeomSpec, r *rng.RNG) (*Digraph, []GeometricPoint) {
	s.pts, s.parents = samplePoints(spec, r, s.pts, s.parents)
	return s.FromPoints(s.pts, spec.Torus), s.pts
}

// FromPoints builds the geometric digraph for a fixed point set (u → v iff
// dist(u, v) ≤ pts[u].Radius) into the scratch's reusable storage, using a
// cell-grid spatial index: points are bucketed into a uniform grid with cell
// width ≥ the maximum radius, so each node only tests candidates in its 3×3
// cell neighbourhood — O(n + m) expected for radii near the connectivity
// threshold. The returned graph aliases scratch storage (valid until the
// next generation call); pts may be external (e.g. a mobility model's) and
// is not retained.
func (s *Scratch) FromPoints(pts []GeometricPoint, torus bool) *Digraph {
	n := len(pts)
	if n < 1 {
		panic("graph: geometric needs at least one point")
	}
	if n > 1<<31-1 {
		panic("graph: too many nodes for int32 ids")
	}
	rmax := 0.0
	for i := range pts {
		if pts[i].Radius > rmax {
			rmax = pts[i].Radius
		}
	}
	if rmax <= 0 {
		panic("graph: all radii must be positive")
	}

	// Grid resolution: cells must be at least rmax wide (so a disk of radius
	// rmax is covered by the 3×3 neighbourhood), and we cap the cell count
	// at ~n so the index arrays stay O(n) even for tiny radii.
	cols := int(1 / rmax)
	if maxCols := int(math.Sqrt(float64(n))) + 1; cols > maxCols {
		cols = maxCols
	}
	if cols < 1 {
		cols = 1
	}
	cellW := 1.0 / float64(cols)
	cellOf := func(x float64) int {
		c := int(x / cellW)
		if c >= cols {
			c = cols - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	// Bucket points by cell with a counting sort into CSR-style buckets.
	nCells := cols * cols
	s.cellOff = growOffsets(s.cellOff, nCells+1)
	for i := range s.cellOff {
		s.cellOff[i] = 0
	}
	s.cellIDs = growIDs(s.cellIDs, n)
	for i := range pts {
		s.cellOff[cellOf(pts[i].Y)*cols+cellOf(pts[i].X)+1]++
	}
	for c := 0; c < nCells; c++ {
		s.cellOff[c+1] += s.cellOff[c]
	}
	if cap(s.pos) < nCells {
		s.pos = make([]int32, nCells)
	} else {
		s.pos = s.pos[:nCells]
		for i := range s.pos {
			s.pos[i] = 0
		}
	}
	for i := range pts {
		c := cellOf(pts[i].Y)*cols + cellOf(pts[i].X)
		s.cellIDs[s.cellOff[c]+int(s.pos[c])] = NodeID(i)
		s.pos[c]++
	}

	g := &s.g
	g.n = n
	g.outOff = growOffsets(g.outOff, n+1)
	g.inOff = growOffsets(g.inOff, n+1)
	g.outTo = g.outTo[:0]
	g.outOff[0] = 0

	// For each node, scan its 3×3 cell neighbourhood (deduplicated, so tiny
	// grids and torus wrap-around never double-count a cell) and keep the
	// candidates inside the node's own radius.
	var nbr [9]int
	for u := 0; u < n; u++ {
		p := pts[u]
		cx, cy := cellOf(p.X), cellOf(p.Y)
		rr := p.Radius * p.Radius
		cells := nbr[:0]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if torus {
					nx, ny = (nx+cols)%cols, (ny+cols)%cols
				} else if nx < 0 || ny < 0 || nx >= cols || ny >= cols {
					continue
				}
				key := ny*cols + nx
				if !slices.Contains(cells, key) {
					cells = append(cells, key)
				}
			}
		}
		start := len(g.outTo)
		for _, c := range cells {
			for _, v := range s.cellIDs[s.cellOff[c]:s.cellOff[c+1]] {
				if int(v) == u {
					continue
				}
				ddx := pts[v].X - p.X
				ddy := pts[v].Y - p.Y
				if torus {
					if ddx < 0 {
						ddx = -ddx
					}
					if ddx > 0.5 {
						ddx = 1 - ddx
					}
					if ddy < 0 {
						ddy = -ddy
					}
					if ddy > 0.5 {
						ddy = 1 - ddy
					}
				}
				if ddx*ddx+ddy*ddy <= rr {
					g.outTo = append(g.outTo, v)
				}
			}
		}
		// Cells are visited in grid order, not id order; restore the CSR
		// sorted-adjacency invariant per node.
		slices.Sort(g.outTo[start:])
		g.outOff[u+1] = len(g.outTo)
	}
	s.finishIn()
	return g
}

// Geometric samples a geometric instance with fresh storage (the convenience
// entry point; sweeps use Scratch.Geometric to reuse storage across trials).
func Geometric(spec GeomSpec, r *rng.RNG) (*Digraph, []GeometricPoint) {
	return NewScratch().Geometric(spec, r)
}

// RGG samples the homogeneous random geometric graph RGG(n, radius) — the
// canonical unknown ad hoc network model: n uniform points, symmetric links
// between every pair within distance radius. torus selects wrap-around
// distances.
func RGG(n int, radius float64, torus bool, r *rng.RNG) *Digraph {
	g, _ := Geometric(GeomSpec{N: n, Radius: radius, Torus: torus}, r)
	return g
}
