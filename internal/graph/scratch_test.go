package graph

import (
	"testing"

	"repro/internal/rng"
)

// builderGNP is the original Builder-based G(n,p) construction, kept here as
// the reference for the sort-free CSR fast path.
func builderGNP(n int, p float64, r *rng.RNG) *Digraph {
	b := NewBuilder(n)
	if p == 0 || n == 1 {
		return b.Build()
	}
	total := uint64(n) * uint64(n-1)
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					b.AddEdge(NodeID(u), NodeID(v))
				}
			}
		}
		return b.Build()
	}
	idx := uint64(r.Geometric(p))
	for idx < total {
		u := NodeID(idx / uint64(n-1))
		v := NodeID(idx % uint64(n-1))
		if v >= u {
			v++
		}
		b.AddEdge(u, v)
		idx += 1 + uint64(r.Geometric(p))
	}
	return b.Build()
}

func digraphsEqual(a, b *Digraph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		ao, bo := a.Out(NodeID(v)), b.Out(NodeID(v))
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
		ai, bi := a.In(NodeID(v)), b.In(NodeID(v))
		if len(ai) != len(bi) {
			return false
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return false
			}
		}
	}
	return true
}

func TestScratchGNPMatchesBuilderConstruction(t *testing.T) {
	sc := NewScratch()
	for _, tc := range []struct {
		n    int
		p    float64
		seed uint64
	}{
		{1, 0.5, 1}, {2, 0.5, 2}, {17, 0, 3}, {17, 1, 4},
		{64, 0.05, 5}, {64, 0.3, 6}, {200, 0.02, 7}, {513, 0.011, 8},
	} {
		rA := rng.New(tc.seed)
		rB := rng.New(tc.seed)
		got := sc.GNPDirected(tc.n, tc.p, rA)
		want := builderGNP(tc.n, tc.p, rB)
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d p=%v: scratch graph invalid: %v", tc.n, tc.p, err)
		}
		if !digraphsEqual(got, want) {
			t.Fatalf("n=%d p=%v seed=%d: scratch graph differs from builder graph",
				tc.n, tc.p, tc.seed)
		}
		// RNG-consumption parity: both generators must leave the stream in
		// the same state, or downstream per-trial draws would diverge.
		if rA.Uint64() != rB.Uint64() {
			t.Fatalf("n=%d p=%v seed=%d: RNG consumption differs", tc.n, tc.p, tc.seed)
		}
	}
}

func TestScratchReuseAcrossSizes(t *testing.T) {
	sc := NewScratch()
	r := rng.New(42)
	// Shrinking and regrowing must not leak state between generations.
	for _, n := range []int{128, 16, 300, 1, 64} {
		g := sc.GNPDirected(n, 0.1, r)
		if g.N() != n {
			t.Fatalf("got n=%d, want %d", g.N(), n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
