package graph

import (
	"fmt"

	"repro/internal/rng"
)

// Hypercube returns the symmetric d-dimensional hypercube (n = 2^d nodes;
// node u and v adjacent iff their ids differ in exactly one bit). A classic
// radio-network testbed: diameter d = log₂ n with uniform degree d.
func Hypercube(dim int) *Digraph {
	if dim < 1 || dim > 30 {
		panic("graph: hypercube needs 1 <= dim <= 30")
	}
	n := 1 << uint(dim)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < dim; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				b.AddBoth(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// Torus2D returns the w×h symmetric torus (grid with wrap-around); every
// node has degree 4 and the diameter is ⌊w/2⌋+⌊h/2⌋. Useful when a
// boundary-free medium-diameter topology is wanted.
func Torus2D(w, h int) *Digraph {
	if w < 3 || h < 3 {
		panic("graph: torus needs w, h >= 3")
	}
	b := NewBuilder(w * h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.AddBoth(id(x, y), id((x+1)%w, y))
			b.AddBoth(id(x, y), id(x, (y+1)%h))
		}
	}
	return b.Build()
}

// RandomRegularOut returns a random digraph where every node has exactly
// outDeg out-neighbours chosen uniformly without replacement (in-degrees
// are Binomial(n-1, outDeg/(n-1)) ≈ Poisson(outDeg)). This is the fixed-
// power radio abstraction: each radio reaches exactly outDeg listeners.
func RandomRegularOut(n, outDeg int, r *rng.RNG) *Digraph {
	if outDeg < 0 || outDeg > n-1 {
		panic(fmt.Sprintf("graph: out-degree %d out of range for n=%d", outDeg, n))
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		// Sample outDeg targets from [0, n-1) and skip over u.
		for _, t := range r.SampleWithoutReplacement(n-1, outDeg) {
			v := t
			if v >= u {
				v++
			}
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// BarbellNetwork returns two complete symmetric cliques of size k joined by
// a symmetric path of length bridgeLen — a worst case for collision-heavy
// protocols (dense cliques) that must also traverse a sparse bridge.
func BarbellNetwork(k, bridgeLen int) *Digraph {
	if k < 2 || bridgeLen < 1 {
		panic("graph: barbell needs k >= 2 and bridgeLen >= 1")
	}
	n := 2*k + bridgeLen - 1 // bridge shares endpoints with the cliques
	b := NewBuilder(n)
	// Clique A: nodes 0..k-1; bridge: k-1 .. k-1+bridgeLen; clique B: rest.
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddBoth(NodeID(u), NodeID(v))
		}
	}
	bridgeEnd := k - 1 + bridgeLen
	for v := k - 1; v < bridgeEnd; v++ {
		b.AddBoth(NodeID(v), NodeID(v+1))
	}
	for u := bridgeEnd; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddBoth(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// Caterpillar returns a symmetric path of length spine where every spine
// node additionally carries `legs` leaf nodes — a high-degree-variance tree
// workload.
func Caterpillar(spine, legs int) *Digraph {
	if spine < 1 || legs < 0 {
		panic("graph: caterpillar needs spine >= 1 and legs >= 0")
	}
	n := spine * (1 + legs)
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddBoth(NodeID(i), NodeID(i+1))
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddBoth(NodeID(i), NodeID(next))
			next++
		}
	}
	return b.Build()
}
