package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func torusDist1D(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

func torusDist(x1, y1, x2, y2 float64) float64 {
	return math.Hypot(torusDist1D(x1, x2), torusDist1D(y1, y2))
}

// TestWaypointTorusShortestPath is the regression test for the torus-blind
// waypoint walk: on a torus spec, every non-arriving step must shorten the
// TOROIDAL distance to the waypoint by exactly the node's speed (i.e. the
// node walks the wrap-around shortcut whenever it is shorter than the
// Euclidean straight line), and positions must stay in [0, 1).
func TestWaypointTorusShortestPath(t *testing.T) {
	spec := GeomSpec{N: 300, Radius: 0.05, Torus: true}
	m := NewMobileNetwork(spec, MobilityWaypoint, 0.01, 0.04, rng.New(42))
	n := spec.N
	oldX := make([]float64, n)
	oldY := make([]float64, n)
	destX := make([]float64, n)
	destY := make([]float64, n)
	speed := make([]float64, n)
	wrapped := 0
	for step := 0; step < 60; step++ {
		for i, p := range m.pts {
			oldX[i], oldY[i] = p.X, p.Y
			destX[i], destY[i] = m.destX[i], m.destY[i]
			speed[i] = m.speed[i]
		}
		m.Advance()
		for i, p := range m.pts {
			if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
				t.Fatalf("step %d node %d: position (%g, %g) outside [0,1)", step, i, p.X, p.Y)
			}
			before := torusDist(oldX[i], oldY[i], destX[i], destY[i])
			if before <= speed[i] {
				// Arrived: the node must sit exactly on its old waypoint.
				if p.X != destX[i] || p.Y != destY[i] {
					t.Fatalf("step %d node %d: arrival did not land on waypoint", step, i)
				}
				continue
			}
			after := torusDist(p.X, p.Y, destX[i], destY[i])
			if math.Abs(before-after-speed[i]) > 1e-9 {
				t.Fatalf("step %d node %d: toroidal progress %g, want speed %g (before %g, after %g)",
					step, i, before-after, speed[i], before, after)
			}
			// Count the steps where the straight line would have been wrong:
			// the shortest path wraps in at least one coordinate.
			if math.Abs(destX[i]-oldX[i]) > 0.5 || math.Abs(destY[i]-oldY[i]) > 0.5 {
				wrapped++
			}
		}
	}
	if wrapped == 0 {
		t.Fatal("test exercised no wrap-around legs; not a meaningful regression test")
	}
}

// TestWaypointSquareStaysInRange pins the non-torus walk: straight-line
// motion between in-range points never leaves the unit square, and arrival
// snapping still works.
func TestWaypointSquareStaysInRange(t *testing.T) {
	spec := GeomSpec{N: 200, Radius: 0.05}
	m := NewMobileNetwork(spec, MobilityWaypoint, 0.02, 0.06, rng.New(7))
	for step := 0; step < 60; step++ {
		m.Advance()
		for i, p := range m.pts {
			if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
				t.Fatalf("step %d node %d: position (%g, %g) outside [0,1)", step, i, p.X, p.Y)
			}
		}
	}
}
