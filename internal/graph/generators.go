package graph

import (
	"math"

	"repro/internal/rng"
)

// GNPDirected samples the directed Erdős–Rényi digraph G(n,p): each ordered
// pair (u,v), u ≠ v, is an edge independently with probability p. This is the
// random-network model of §2–3 of the paper. Generation uses geometric
// skipping (Batagelj–Brandes), so it runs in O(n + m) expected time rather
// than O(n²); the skip order emits edges already CSR-sorted, so no edge
// sort happens either (see Scratch.GNPDirected, which trial loops use to
// also reuse the adjacency storage).
func GNPDirected(n int, p float64, r *rng.RNG) *Digraph {
	return NewScratch().GNPDirected(n, p, r)
}

// GNPHetero samples a heterogeneous-range random digraph: node u draws its
// own edge probability p_u uniformly from [pmin, pmax], then reaches each
// other node independently with probability p_u. This realises §1.2's
// "we allow different communication ranges for different nodes" in the
// Erdős–Rényi setting: strong radios (large p_u) are heard widely but hear
// only whoever reaches them, so links are asymmetric and out-degrees vary by
// a factor pmax/pmin. Returns the digraph and the per-node probabilities.
func GNPHetero(n int, pmin, pmax float64, r *rng.RNG) (*Digraph, []float64) {
	if pmin < 0 || pmax > 1 || pmin > pmax {
		panic("graph: GNPHetero needs 0 <= pmin <= pmax <= 1")
	}
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = pmin + (pmax-pmin)*r.Float64()
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		p := ps[u]
		if p <= 0 {
			continue
		}
		// Geometric skipping over the n-1 potential targets of u.
		idx := r.Geometric(p)
		for idx < n-1 {
			v := NodeID(idx)
			if v >= NodeID(u) {
				v++
			}
			b.AddEdge(NodeID(u), v)
			idx += 1 + r.Geometric(p)
		}
	}
	return b.Build(), ps
}

// GNPSymmetric samples an undirected G(n,p) and orients every edge both ways,
// modelling radios with equal communication ranges.
func GNPSymmetric(n int, p float64, r *rng.RNG) *Digraph {
	if p < 0 || p > 1 {
		panic("graph: GNP needs p in [0,1]")
	}
	b := NewBuilder(n)
	if p == 0 || n == 1 {
		return b.Build()
	}
	total := uint64(n) * uint64(n-1) / 2
	next := func() uint64 {
		if p == 1 {
			return 0
		}
		return uint64(r.Geometric(p))
	}
	idx := next()
	for idx < total {
		// Map linear index over unordered pairs {u<v}: row u holds n-1-u pairs.
		u, rem := uint64(0), idx
		for rem >= uint64(n-1)-u {
			rem -= uint64(n-1) - u
			u++
		}
		v := u + 1 + rem
		b.AddBoth(NodeID(u), NodeID(v))
		if p == 1 {
			idx++
		} else {
			idx += 1 + uint64(r.Geometric(p))
		}
	}
	return b.Build()
}

// Star returns a directed star with node 0 as the centre and edges in both
// directions between the centre and each of the k leaves (n = k+1 nodes).
func Star(k int) *Digraph {
	b := NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddBoth(0, NodeID(i))
	}
	return b.Build()
}

// Path returns a symmetric path v_0 — v_1 — ... — v_{n-1} with diameter n-1.
func Path(n int) *Digraph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddBoth(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

// Cycle returns a symmetric cycle on n >= 3 nodes.
func Cycle(n int) *Digraph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddBoth(NodeID(i), NodeID((i+1)%n))
	}
	return b.Build()
}

// Complete returns the complete symmetric digraph on n nodes.
func Complete(n int) *Digraph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddBoth(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// Grid2D returns the w×h symmetric grid (4-neighbourhood). Node (x,y) has id
// y*w + x. Its diameter is (w-1)+(h-1), making it the canonical "known
// diameter D" topology for Algorithm 3 experiments.
func Grid2D(w, h int) *Digraph {
	if w < 1 || h < 1 {
		panic("graph: grid needs positive dimensions")
	}
	b := NewBuilder(w * h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddBoth(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddBoth(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns a symmetric complete binary tree with n nodes,
// rooted at node 0 (children of i are 2i+1 and 2i+2).
func CompleteBinaryTree(n int) *Digraph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			b.AddBoth(NodeID(i), NodeID(l))
		}
		if r := 2*i + 2; r < n {
			b.AddBoth(NodeID(i), NodeID(r))
		}
	}
	return b.Build()
}

// Obs43Network is the lower-bound construction of Observation 4.3: a source
// s, 2n intermediate nodes u_1..u_2n all hearing s, and n destinations where
// destination d_i hears exactly u_{2i-1} and u_{2i}. Any oblivious algorithm
// needs ≈ n·log n / 2 transmissions in total to inform all destinations with
// probability 1 − 1/n, because each d_i is only informed in a round where
// exactly one of its two intermediates transmits.
type Obs43Network struct {
	G            *Digraph
	Source       NodeID
	Intermediate []NodeID // 2n nodes
	Destinations []NodeID // n nodes
}

// NewObs43Network builds the Observation 4.3 network for parameter n
// (3n+1 nodes in total).
func NewObs43Network(n int) *Obs43Network {
	if n < 1 {
		panic("graph: obs43 needs n >= 1")
	}
	total := 3*n + 1
	b := NewBuilder(total)
	net := &Obs43Network{Source: 0}
	// ids: 0 = s; 1..2n = intermediates; 2n+1..3n = destinations.
	for j := 1; j <= 2*n; j++ {
		b.AddEdge(0, NodeID(j)) // intermediates hear the source
		net.Intermediate = append(net.Intermediate, NodeID(j))
	}
	for i := 1; i <= n; i++ {
		d := NodeID(2*n + i)
		b.AddEdge(NodeID(2*i-1), d)
		b.AddEdge(NodeID(2*i), d)
		net.Destinations = append(net.Destinations, d)
	}
	net.G = b.Build()
	return net
}

// Fig2Network is the layered lower-bound construction of Theorem 4.4
// (Fig. 2 of the paper): subgraph G1 is a chain of stars S_1..S_L
// (L = log₂ n) where star S_i has centre c_i and 2^i leaves; the centre
// informs its leaves, every leaf of S_i has an edge to the centre c_{i+1};
// subgraph G2 is a directed path of length D − 2·log n appended after S_L
// (every node of S_L hears-from ... i.e. has an edge to the path head).
// The broadcast originates at c_1.
type Fig2Network struct {
	G       *Digraph
	Source  NodeID
	Centers []NodeID   // c_1 .. c_L, then the path head c_{L+1}
	Leaves  [][]NodeID // Leaves[i] = leaf ids of star S_{i+1}
	Path    []NodeID   // v_0 .. v_L2 (v_0 is the path head, also Centers[L])
	L       int        // number of stars = log₂ n
	D       int        // requested diameter
}

// NewFig2Network builds the Theorem 4.4 network with star parameter n
// (a power of two; L = log₂ n stars) and diameter D: the eccentricity of the
// source c_1 is exactly D. The star section spans 2L−1 hops (centre → leaves
// → next centre, with the last star feeding the path head directly), so the
// path contributes the remaining D − 2L + 1 edges. The paper requires
// D > 4 log n so the path section dominates; we enforce D ≥ 2·log n.
// Total node count is Σ(2^i + 1) + (D − 2 log n) + 2 ≤ 2n + D + 2.
func NewFig2Network(n, D int) *Fig2Network {
	L := exactLog2(n)
	if D < 2*L {
		panic("graph: fig2 needs D >= 2*log2(n)")
	}
	pathLen := D - 2*L + 1 // number of path edges after the stars
	total := 0
	for i := 1; i <= L; i++ {
		total += 1 + (1 << uint(i)) // centre + leaves
	}
	total += pathLen + 1 // path nodes v_0..v_pathLen
	b := NewBuilder(total)
	net := &Fig2Network{Source: 0, L: L, D: D}
	next := NodeID(0)
	var prevLeaves []NodeID
	for i := 1; i <= L; i++ {
		c := next
		next++
		net.Centers = append(net.Centers, c)
		// Leaves of the previous star inform this centre.
		for _, lf := range prevLeaves {
			b.AddEdge(lf, c)
		}
		leaves := make([]NodeID, 0, 1<<uint(i))
		for j := 0; j < 1<<uint(i); j++ {
			lf := next
			next++
			b.AddEdge(c, lf) // leaves hear their centre
			leaves = append(leaves, lf)
		}
		net.Leaves = append(net.Leaves, leaves)
		prevLeaves = leaves
	}
	// Path head hears every node of the last star (centre + leaves).
	head := next
	next++
	net.Centers = append(net.Centers, head)
	net.Path = append(net.Path, head)
	b.AddEdge(net.Centers[L-1], head)
	for _, lf := range prevLeaves {
		b.AddEdge(lf, head)
	}
	prev := head
	for k := 0; k < pathLen; k++ {
		v := next
		next++
		b.AddEdge(prev, v)
		net.Path = append(net.Path, v)
		prev = v
	}
	net.G = b.Build()
	return net
}

// LastNode returns the final path node — the node whose informing time
// determines the broadcast completion time on this network.
func (f *Fig2Network) LastNode() NodeID { return f.Path[len(f.Path)-1] }

func exactLog2(n int) int {
	if n < 2 {
		panic("graph: need n >= 2")
	}
	L := 0
	for v := n; v > 1; v >>= 1 {
		L++
	}
	if 1<<uint(L) != n {
		panic("graph: n must be a power of two")
	}
	return L
}

// LayeredRandom returns a layered digraph with the given layer sizes, where
// every node of layer i has an edge to each node of layer i+1 independently
// with probability p. To keep every node reachable from layer 0, each node
// of layer i+1 additionally receives a forced edge from one uniformly chosen
// node of layer i. Used as an adversarial "shallow network" workload for
// Algorithm 3.
func LayeredRandom(sizes []int, p float64, r *rng.RNG) *Digraph {
	if len(sizes) == 0 {
		panic("graph: layered needs at least one layer")
	}
	total := 0
	for _, s := range sizes {
		if s < 1 {
			panic("graph: layer sizes must be positive")
		}
		total += s
	}
	b := NewBuilder(total)
	start := 0
	for li := 0; li+1 < len(sizes); li++ {
		nextStart := start + sizes[li]
		for u := start; u < start+sizes[li]; u++ {
			for v := nextStart; v < nextStart+sizes[li+1]; v++ {
				if r.Bernoulli(p) {
					b.AddEdge(NodeID(u), NodeID(v))
				}
			}
		}
		for v := nextStart; v < nextStart+sizes[li+1]; v++ {
			b.AddEdge(NodeID(start+r.Intn(sizes[li])), NodeID(v))
		}
		start = nextStart
	}
	return b.Build()
}

// GeometricPoint is a node position in the unit square together with its
// transmission radius.
type GeometricPoint struct {
	X, Y   float64
	Radius float64
}

// RandomGeometric samples n points uniformly in the unit square and connects
// u → v iff dist(u,v) ≤ radius(u) — i.e. v hears u when v lies inside u's
// transmission range. With a constant radius the graph is symmetric; with
// heterogeneous radii (rmin < rmax) links become asymmetric, reproducing the
// paper's motivation that one device may hear another but not vice versa.
// Returns the digraph and the sampled points. Runs in O(n + m) expected time
// using a uniform grid of cell size rmax.
func RandomGeometric(n int, rmin, rmax float64, r *rng.RNG) (*Digraph, []GeometricPoint) {
	if n < 1 {
		panic("graph: geometric needs n >= 1")
	}
	if rmin <= 0 || rmax < rmin || rmax > math.Sqrt2 {
		panic("graph: geometric needs 0 < rmin <= rmax <= sqrt(2)")
	}
	pts := make([]GeometricPoint, n)
	for i := range pts {
		pts[i] = GeometricPoint{X: r.Float64(), Y: r.Float64(), Radius: rmin}
		if rmax > rmin {
			pts[i].Radius = rmin + (rmax-rmin)*r.Float64()
		}
	}
	g := GeometricFromPoints(pts)
	return g, pts
}

// GeometricFromPoints builds the heterogeneous-range geometric digraph for a
// fixed set of points (u → v iff dist(u,v) ≤ pts[u].Radius) via the cell-grid
// index (see Scratch.FromPoints).
func GeometricFromPoints(pts []GeometricPoint) *Digraph {
	return NewScratch().FromPoints(pts, false)
}
