package graph

import "repro/internal/rng"

// Scratch reuses CSR adjacency storage across repeated graph generations —
// the experiment harness keeps one per worker so trial loops stop paying an
// allocation and a global edge sort per trial. The graph returned by a
// generation call aliases the Scratch's storage and is valid only until the
// next call.
type Scratch struct {
	g   Digraph
	pos []int32 // per-node fill cursor for the in-adjacency pass

	// Geometric-generation storage (see geom.go): sampled points, clustered-
	// placement parent sites, and the cell-grid spatial index (CSR buckets of
	// node ids grouped by cell).
	pts     []GeometricPoint
	parents []float64
	cellOff []int
	cellIDs []NodeID
}

// NewScratch returns an empty scratch; storage is sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

func growOffsets(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growIDs(s []NodeID, n int) []NodeID {
	if cap(s) < n {
		return make([]NodeID, n)
	}
	return s[:n]
}

// GNPDirected is graph.GNPDirected writing into the scratch's reusable
// storage. It consumes the RNG identically to the package-level function
// and produces an identical graph, but builds the CSR form directly:
// geometric skipping emits edges already sorted by (u, v), so no edge-list
// sort is needed, and the in-adjacency follows from one counting pass.
func (s *Scratch) GNPDirected(n int, p float64, r *rng.RNG) *Digraph {
	if p < 0 || p > 1 {
		panic("graph: GNP needs p in [0,1]")
	}
	if n < 1 {
		panic("graph: GNP needs n >= 1")
	}
	if n > 1<<31-1 {
		panic("graph: too many nodes for int32 ids")
	}
	g := &s.g
	g.n = n
	g.outOff = growOffsets(g.outOff, n+1)
	g.inOff = growOffsets(g.inOff, n+1)
	g.outTo = g.outTo[:0]

	if p > 0 && n > 1 {
		// Geometric skipping over the linear index of ordered non-diagonal
		// pairs; indices arrive in increasing order, i.e. sorted by (u, v).
		total := uint64(n) * uint64(n-1)
		cur := 0
		g.outOff[0] = 0
		idx := uint64(r.Geometric(p))
		for idx < total {
			u := int(idx / uint64(n-1))
			v := NodeID(idx % uint64(n-1))
			if v >= NodeID(u) {
				v++
			}
			for cur < u {
				cur++
				g.outOff[cur] = len(g.outTo)
			}
			g.outTo = append(g.outTo, v)
			idx += 1 + uint64(r.Geometric(p))
		}
		for cur < n {
			cur++
			g.outOff[cur] = len(g.outTo)
		}
	} else {
		for i := range g.outOff {
			g.outOff[i] = 0
		}
	}

	s.finishIn()
	return g
}

// finishIn derives the in-adjacency of s.g from its completed out-adjacency
// by counting sort: count in-degrees, prefix-sum, then fill by walking the
// out-lists in u order — which leaves every in-list sorted, matching the
// Builder invariant.
func (s *Scratch) finishIn() {
	g := &s.g
	n := g.n
	m := len(g.outTo)
	g.inTo = growIDs(g.inTo, m)
	for i := range g.inOff {
		g.inOff[i] = 0
	}
	for _, v := range g.outTo {
		g.inOff[v+1]++
	}
	for i := 0; i < n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	if cap(s.pos) < n {
		s.pos = make([]int32, n)
	} else {
		s.pos = s.pos[:n]
		for i := range s.pos {
			s.pos[i] = 0
		}
	}
	for u := 0; u < n; u++ {
		for i := g.outOff[u]; i < g.outOff[u+1]; i++ {
			v := g.outTo[i]
			g.inTo[g.inOff[v]+int(s.pos[v])] = NodeID(u)
			s.pos[v]++
		}
	}
}
