package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// assertSameEdges checks that g (implicit) and d (materialized) serve
// identical out- and in-rows and degrees for every node.
func assertSameEdges(t *testing.T, label string, g Implicit, d *Digraph) {
	t.Helper()
	if g.N() != d.N() {
		t.Fatalf("%s: n mismatch: implicit %d, materialized %d", label, g.N(), d.N())
	}
	var row []NodeID
	for v := 0; v < g.N(); v++ {
		id := NodeID(v)
		row = g.AppendOut(id, row[:0])
		if want := d.Out(id); !equalIDs(row, want) {
			t.Fatalf("%s: out-row of %d mismatch:\nimplicit     %v\nmaterialized %v", label, v, row, want)
		}
		if got, want := g.OutDegree(id), d.OutDegree(id); got != want {
			t.Fatalf("%s: out-degree of %d: implicit %d, materialized %d", label, v, got, want)
		}
		row = g.AppendIn(id, row[:0])
		if want := d.In(id); !equalIDs(row, want) {
			t.Fatalf("%s: in-row of %d mismatch:\nimplicit     %v\nmaterialized %v", label, v, row, want)
		}
		if got, want := g.InDegree(id), d.InDegree(id); got != want {
			t.Fatalf("%s: in-degree of %d: implicit %d, materialized %d", label, v, got, want)
		}
	}
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestImplicitGNPMatchesMaterialized pins the implicit G(n,p) view
// edge-identical to its own materialization across seeds and sizes, and the
// materialization a valid CSR digraph.
func TestImplicitGNPMatchesMaterialized(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 257, 1024} {
		for _, seed := range []uint64{1, 42, 0xfeed} {
			p := 2 * math.Log(float64(n)+1) / (float64(n) + 1)
			g := NewImplicitGNP(n, p, seed)
			d := MaterializeImplicit(g)
			if err := d.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: materialization invalid: %v", n, seed, err)
			}
			assertSameEdges(t, "gnp", g, d)
		}
	}
}

// TestImplicitGNPDegenerateProbabilities covers the p=0 and p=1 ends of the
// skip sampler.
func TestImplicitGNPDegenerateProbabilities(t *testing.T) {
	empty := NewImplicitGNP(9, 0, 3)
	full := NewImplicitGNP(9, 1, 3)
	for v := NodeID(0); v < 9; v++ {
		if deg := empty.OutDegree(v); deg != 0 {
			t.Fatalf("p=0: node %d has out-degree %d", v, deg)
		}
		if deg := full.OutDegree(v); deg != 8 {
			t.Fatalf("p=1: node %d has out-degree %d, want 8", v, deg)
		}
	}
	d := MaterializeImplicit(full)
	if !d.IsSymmetric() {
		t.Fatal("p=1 should materialize the complete digraph")
	}
}

// TestImplicitGNPRowDeterminism pins the re-derivation contract: two
// enumerations of the same (seed, node) row are identical, and enumerating
// other rows in between does not perturb them.
func TestImplicitGNPRowDeterminism(t *testing.T) {
	g := NewImplicitGNP(512, 0.03, 99)
	first := make([][]NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		first[v] = g.AppendOut(NodeID(v), nil)
	}
	var row []NodeID
	for v := g.N() - 1; v >= 0; v-- { // different order on purpose
		row = g.AppendOut(NodeID(v), row[:0])
		if !equalIDs(row, first[v]) {
			t.Fatalf("row %d changed between enumerations:\nfirst  %v\nsecond %v", v, first[v], row)
		}
	}
}

// TestImplicitGNPRowsAreIndependentStreams guards against the n-1 row
// streams collapsing to one: distinct nodes must not share a row pattern
// just because the graph seed is shared.
func TestImplicitGNPRowsAreIndependentStreams(t *testing.T) {
	g := NewImplicitGNP(256, 0.1, 7)
	a := g.AppendOut(3, nil)
	b := g.AppendOut(4, nil)
	if equalIDs(a, b) {
		t.Fatalf("rows 3 and 4 are identical (%v); per-row substreams are broken", a)
	}
}

// TestImplicitGeomMatchesScratch pins the implicit geometric view
// edge-identical to Scratch.FromPoints for the same sampled points, across
// torus/square, homogeneous and heterogeneous radii, and placements.
func TestImplicitGeomMatchesScratch(t *testing.T) {
	specs := []GeomSpec{
		{N: 1, Radius: 0.5},
		{N: 100, Radius: 2 * ConnectivityRadius(100)},
		{N: 100, Radius: 2 * ConnectivityRadius(100), Torus: true},
		{N: 300, Radius: ConnectivityRadius(300), RadiusMax: 3 * ConnectivityRadius(300), Torus: true},
		{N: 300, Radius: ConnectivityRadius(300), RadiusMax: 3 * ConnectivityRadius(300)},
		{N: 200, Radius: 0.9, Torus: true}, // radius near the cell-cap regime
		{N: 256, Radius: 2 * ConnectivityRadius(256), Placement: PlaceCluster, Torus: true},
	}
	sc := NewScratch()
	for i, spec := range specs {
		for _, seed := range []uint64{5, 77} {
			want := sc.FromPoints(first(samplePoints(spec, rng.New(seed), nil, nil)), spec.Torus)
			ig := NewImplicitGeom(spec, rng.New(seed))
			assertSameEdges(t, "geom", ig, want)
			// And the generic materialization bridge agrees too.
			d := MaterializeImplicit(ig)
			if err := d.Validate(); err != nil {
				t.Fatalf("spec %d seed %d: materialization invalid: %v", i, seed, err)
			}
			assertSameEdges(t, "geom-materialized", ig, d)
		}
	}
}

func first(pts []GeometricPoint, _ []float64) []GeometricPoint { return pts }

// TestImplicitGeomConsumesRNGLikeScratch pins the shared-stream contract
// between NewImplicitGeom and Scratch.Geometric: after constructing each
// from equally seeded generators, the two RNGs must be in the same state.
func TestImplicitGeomConsumesRNGLikeScratch(t *testing.T) {
	spec := GeomSpec{N: 200, Radius: ConnectivityRadius(200), RadiusMax: 2 * ConnectivityRadius(200), Torus: true}
	r1, r2 := rng.New(11), rng.New(11)
	NewScratch().Geometric(spec, r1)
	NewImplicitGeom(spec, r2)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("NewImplicitGeom consumed the RNG differently from Scratch.Geometric")
	}
}

// TestDigraphImplementsImplicit pins the CSR conformance: the Append
// accessors copy the aliasing rows.
func TestDigraphImplementsImplicit(t *testing.T) {
	d := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {3, 0}})
	var g Implicit = d
	if !g.CheapIn() {
		t.Fatal("CSR in-rows must report cheap")
	}
	if got := g.AppendOut(0, nil); !equalIDs(got, []NodeID{1, 2}) {
		t.Fatalf("AppendOut(0) = %v", got)
	}
	if got := g.AppendIn(2, nil); !equalIDs(got, []NodeID{0, 1}) {
		t.Fatalf("AppendIn(2) = %v", got)
	}
	buf := []NodeID{9}
	if got := g.AppendOut(3, buf); !equalIDs(got, []NodeID{9, 0}) {
		t.Fatalf("AppendOut must append, got %v", got)
	}
}

// TestImplicitGNPCheapInFlips pins the capability gate: in-side queries are
// expensive until the transpose index exists, then cheap.
func TestImplicitGNPCheapInFlips(t *testing.T) {
	g := NewImplicitGNP(128, 0.05, 13)
	if g.CheapIn() {
		t.Fatal("fresh implicit GNP must report expensive in-rows")
	}
	g.AppendIn(0, nil)
	if !g.CheapIn() {
		t.Fatal("after the transpose index is built, in-rows are cheap")
	}
}
