package graph

import (
	"math"

	"repro/internal/rng"
)

// BFS returns the directed-path distance (in hops) from src to every node;
// unreachable nodes get -1. Distances follow edge direction: dist[v] is the
// minimum number of transmissions needed to relay a message from src to v in
// a collision-free schedule.
func BFS(g *Digraph, src NodeID) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src, together
// with the number of nodes reachable from src (including src itself).
func Eccentricity(g *Digraph, src NodeID) (ecc, reachable int) {
	dist := BFS(g, src)
	for _, d := range dist {
		if d < 0 {
			continue
		}
		reachable++
		if d > ecc {
			ecc = d
		}
	}
	return ecc, reachable
}

// Diameter returns the exact directed diameter: the maximum over all ordered
// pairs (u,v) with v reachable from u of dist(u,v). This runs one BFS per
// node (O(n·m)); use DiameterSampled for large graphs. The second return
// value is false if some ordered pair is unreachable (infinite diameter in
// the strongly-connected sense); the reported value then covers reachable
// pairs only.
func Diameter(g *Digraph) (int, bool) {
	diam := 0
	strongly := true
	for v := 0; v < g.N(); v++ {
		ecc, reach := Eccentricity(g, NodeID(v))
		if reach != g.N() {
			strongly = false
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, strongly
}

// DiameterSampled estimates the diameter by running BFS from k sources
// sampled uniformly without replacement (plus node 0, always included).
// It is a lower bound on the true diameter.
func DiameterSampled(g *Digraph, k int, r *rng.RNG) int {
	if k >= g.N() {
		d, _ := Diameter(g)
		return d
	}
	diam := 0
	ecc0, _ := Eccentricity(g, 0)
	if ecc0 > diam {
		diam = ecc0
	}
	for _, src := range r.SampleWithoutReplacement(g.N(), k) {
		ecc, _ := Eccentricity(g, NodeID(src))
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DegreeStats summarises in- and out-degree distributions.
type DegreeStats struct {
	MinOut, MaxOut int
	MinIn, MaxIn   int
	MeanOut        float64 // equals MeanIn (every edge contributes to both)
}

// Degrees computes degree statistics in one pass.
func Degrees(g *Digraph) DegreeStats {
	s := DegreeStats{MinOut: math.MaxInt, MinIn: math.MaxInt}
	for v := 0; v < g.N(); v++ {
		od, id := g.OutDegree(NodeID(v)), g.InDegree(NodeID(v))
		if od < s.MinOut {
			s.MinOut = od
		}
		if od > s.MaxOut {
			s.MaxOut = od
		}
		if id < s.MinIn {
			s.MinIn = id
		}
		if id > s.MaxIn {
			s.MaxIn = id
		}
	}
	s.MeanOut = float64(g.M()) / float64(g.N())
	return s
}

// ReachableFrom returns the number of nodes reachable from src (including
// src). Broadcast from src can only ever inform this many nodes.
func ReachableFrom(g *Digraph, src NodeID) int {
	_, reach := Eccentricity(g, src)
	return reach
}

// AsymmetricEdges counts the directed edges whose reverse is absent — the
// one-way links produced by heterogeneous transmission radii (u hears v but
// not vice versa).
func AsymmetricEdges(g *Digraph) int {
	asym := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(NodeID(u)) {
			if !g.HasEdge(v, NodeID(u)) {
				asym++
			}
		}
	}
	return asym
}

// IsStronglyConnected reports whether every node can reach every other node.
// Implemented as two BFS passes (from node 0 in G and in the transpose),
// which is equivalent to Kosaraju's check for a single component.
func IsStronglyConnected(g *Digraph) bool {
	if g.N() == 0 {
		return true
	}
	if ReachableFrom(g, 0) != g.N() {
		return false
	}
	return ReachableFrom(g.Reverse(), 0) == g.N()
}

// IsWeaklyConnected reports whether the underlying undirected graph is
// connected.
func IsWeaklyConnected(g *Digraph) bool {
	if g.N() == 0 {
		return true
	}
	seen := make([]bool, g.N())
	seen[0] = true
	stack := []NodeID{0}
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(v NodeID) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
		for _, v := range g.Out(u) {
			visit(v)
		}
		for _, v := range g.In(u) {
			visit(v)
		}
	}
	return count == g.N()
}

// Layering partitions nodes by BFS distance from src: Layering[d] holds the
// nodes at distance d. Unreachable nodes are omitted. Used by the layer-based
// experiments for Theorem 4.2.
func Layering(g *Digraph, src NodeID) [][]NodeID {
	dist := BFS(g, src)
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	layers := make([][]NodeID, maxD+1)
	for v, d := range dist {
		if d >= 0 {
			layers[d] = append(layers[d], NodeID(v))
		}
	}
	return layers
}
