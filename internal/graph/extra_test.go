package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() != 16*4 {
		t.Fatalf("m=%d, want 64", g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(NodeID(v)) != 4 {
			t.Fatalf("node %d degree %d", v, g.OutDegree(NodeID(v)))
		}
	}
	d, strong := Diameter(g)
	if d != 4 || !strong {
		t.Fatalf("hypercube diameter %d strong=%v", d, strong)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Hypercube(0)
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(5, 4)
	if g.N() != 20 {
		t.Fatalf("n=%d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(NodeID(v)) != 4 {
			t.Fatalf("torus node %d degree %d", v, g.OutDegree(NodeID(v)))
		}
	}
	d, strong := Diameter(g)
	if d != 5/2+4/2 || !strong {
		t.Fatalf("torus diameter %d", d)
	}
}

func TestTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Torus2D(2, 5)
}

func TestRandomRegularOut(t *testing.T) {
	r := rng.New(1)
	g := RandomRegularOut(200, 8, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(NodeID(v)) != 8 {
			t.Fatalf("node %d out-degree %d, want 8", v, g.OutDegree(NodeID(v)))
		}
	}
	// In-degrees should average 8 with Poisson-like spread.
	s := Degrees(g)
	if s.MaxIn > 8*4 || s.MeanOut != 8 {
		t.Fatalf("degree stats %+v", s)
	}
}

func TestRandomRegularOutEdges(t *testing.T) {
	r := rng.New(2)
	if g := RandomRegularOut(5, 4, r); g.M() != 20 {
		t.Fatalf("full regular m=%d", g.M())
	}
	if g := RandomRegularOut(5, 0, r); g.M() != 0 {
		t.Fatalf("zero regular m=%d", g.M())
	}
}

func TestRandomRegularOutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RandomRegularOut(5, 5, rng.New(1))
}

func TestBarbell(t *testing.T) {
	k, bridge := 5, 4
	g := BarbellNetwork(k, bridge)
	if g.N() != 2*k+bridge-1 {
		t.Fatalf("n=%d", g.N())
	}
	if !IsStronglyConnected(g) {
		t.Fatal("barbell should be strongly connected")
	}
	d, _ := Diameter(g)
	// End of clique A to end of clique B: 1 + bridge + 1 hops.
	if d != bridge+2 {
		t.Fatalf("barbell diameter %d, want %d", d, bridge+2)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 3)
	if g.N() != 16 {
		t.Fatalf("n=%d", g.N())
	}
	if !IsStronglyConnected(g) {
		t.Fatal("caterpillar connected")
	}
	// Spine interior nodes: 2 spine edges + 3 legs = degree 5.
	if g.OutDegree(1) != 5 {
		t.Fatalf("spine degree %d", g.OutDegree(1))
	}
	d, _ := Diameter(g)
	// Leaf of spine 0 to leaf of spine 3: 1 + 3 + 1.
	if d != 5 {
		t.Fatalf("caterpillar diameter %d", d)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(3)
	orig := GNPDirected(100, 0.05, r)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.M() != orig.M() {
		t.Fatalf("round trip size: %d/%d vs %d/%d", back.N(), back.M(), orig.N(), orig.M())
	}
	for v := 0; v < orig.N(); v++ {
		a, b := orig.Out(NodeID(v)), back.Out(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency mismatch", v)
			}
		}
	}
}

func TestEdgeListRoundTripProperty(t *testing.T) {
	r := rng.New(4)
	f := func(rawN, rawM uint8) bool {
		n := int(rawN%30) + 2
		b := NewBuilder(n)
		for i := 0; i < int(rawM); i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return back.N() == g.N() && back.M() == g.M() && back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListHeaderless(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n# a comment\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("headerless parse: n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"bad tokens":     "0 1 2\n",
		"non-numeric":    "a b\n",
		"negative":       "-1 2\n",
		"self loop":      "3 3\n",
		"exceeds header": "# nodes 2 edges 1\n0 5\n",
		"empty":          "",
		"bad header n":   "# nodes 0 edges 0\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestGNPHetero(t *testing.T) {
	r := rng.New(10)
	n := 600
	g, ps := GNPHetero(n, 0.01, 0.2, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ps) != n {
		t.Fatal("probability vector length")
	}
	// Each node's out-degree should track its own p: compare the top and
	// bottom probability quartiles' mean degrees.
	var lo, hi float64
	var nLo, nHi int
	for v := 0; v < n; v++ {
		switch {
		case ps[v] < 0.0575: // bottom quartile of [0.01, 0.2]
			lo += float64(g.OutDegree(NodeID(v)))
			nLo++
		case ps[v] > 0.1525: // top quartile
			hi += float64(g.OutDegree(NodeID(v)))
			nHi++
		}
	}
	if nLo == 0 || nHi == 0 {
		t.Fatal("quartiles empty")
	}
	if hi/float64(nHi) < 2*lo/float64(nLo) {
		t.Fatalf("degree should track p: lo %.1f hi %.1f", lo/float64(nLo), hi/float64(nHi))
	}
}

func TestGNPHeteroUniformCaseMatchesGNP(t *testing.T) {
	// pmin == pmax degenerates to (a reordering of) G(n,p): check the edge
	// count concentrates at p·n·(n-1).
	r := rng.New(11)
	n, p := 500, 0.05
	g, ps := GNPHetero(n, p, p, r)
	for _, pv := range ps {
		if pv != p {
			t.Fatal("degenerate range should give constant p")
		}
	}
	want := p * float64(n) * float64(n-1)
	if diff := float64(g.M()) - want; diff > 6*want/30 || diff < -6*want/30 {
		t.Fatalf("edge count %d too far from %v", g.M(), want)
	}
}

func TestGNPHeteroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GNPHetero(10, 0.5, 0.2, rng.New(1))
}
