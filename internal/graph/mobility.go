package graph

import (
	"math"

	"repro/internal/rng"
)

// MobilityModel selects how node positions evolve between epochs of a
// dynamic geometric network.
type MobilityModel int

const (
	// MobilityResample redraws every position fresh each epoch — the
	// memoryless "nodes teleported" model used for union-connectivity
	// experiments (an epoch is long relative to movement).
	MobilityResample MobilityModel = iota
	// MobilityWaypoint is the random-waypoint model: each node picks a
	// uniform destination and a speed, walks straight toward it one step per
	// epoch, and picks a fresh destination (and speed) on arrival. Positions
	// are continuous across epochs, so successive snapshots are correlated.
	MobilityWaypoint
)

// MobileNetwork owns a set of moving radio nodes and emits one CSR topology
// snapshot per epoch. The simulation pattern for dynamic-network trials is:
//
//	m := graph.NewMobileNetwork(spec, graph.MobilityWaypoint, 0.01, 0.05, rng.New(seed))
//	for e := 0; e < epochs; e++ {
//		g := m.Snapshot(scratch)     // topology for this epoch
//		... run protocol rounds on g ...
//		m.Advance()                  // nodes move
//	}
//
// Radii are sampled once at construction (hardware does not change when a
// node moves); positions follow the mobility model. All randomness comes
// from the constructor's RNG, so a trial is a pure function of its seed.
type MobileNetwork struct {
	spec       GeomSpec
	model      MobilityModel
	vmin, vmax float64
	r          *rng.RNG
	pts        []GeometricPoint
	parents    []float64 // clustered-placement parent-site buffer
	radii      []float64 // fixed per-node hardware radii
	destX      []float64 // waypoint targets
	destY      []float64
	speed      []float64
	epoch      int
}

// NewMobileNetwork creates a mobile geometric network. vmin/vmax bound the
// per-epoch travel distance for MobilityWaypoint (ignored by
// MobilityResample); both are fractions of the unit square's side.
func NewMobileNetwork(spec GeomSpec, model MobilityModel, vmin, vmax float64, r *rng.RNG) *MobileNetwork {
	spec.check()
	if model == MobilityWaypoint && (vmin <= 0 || vmax < vmin) {
		panic("graph: waypoint mobility needs 0 < vmin <= vmax")
	}
	m := &MobileNetwork{spec: spec, model: model, vmin: vmin, vmax: vmax, r: r}
	m.pts, m.parents = samplePoints(spec, r, nil, nil)
	m.radii = make([]float64, spec.N)
	for i := range m.pts {
		m.radii[i] = m.pts[i].Radius
	}
	if model == MobilityWaypoint {
		n := spec.N
		m.destX = make([]float64, n)
		m.destY = make([]float64, n)
		m.speed = make([]float64, n)
		for i := 0; i < n; i++ {
			m.pickWaypoint(i)
		}
	}
	return m
}

func (m *MobileNetwork) pickWaypoint(i int) {
	m.destX[i] = m.r.Float64()
	m.destY[i] = m.r.Float64()
	m.speed[i] = m.vmin + (m.vmax-m.vmin)*m.r.Float64()
}

// N returns the node count.
func (m *MobileNetwork) N() int { return m.spec.N }

// Epoch returns the number of Advance calls so far.
func (m *MobileNetwork) Epoch() int { return m.epoch }

// Points returns the current positions and radii. The slice aliases internal
// state: it is valid to read between Advance calls but must not be modified.
func (m *MobileNetwork) Points() []GeometricPoint { return m.pts }

// Snapshot builds the CSR topology for the current positions into sc's
// reusable storage (valid until sc's next generation call).
func (m *MobileNetwork) Snapshot(sc *Scratch) *Digraph {
	return sc.FromPoints(m.pts, m.spec.Torus)
}

// Advance moves every node one epoch forward under the mobility model.
func (m *MobileNetwork) Advance() {
	m.epoch++
	switch m.model {
	case MobilityResample:
		// Fresh positions, fixed radii: re-sampling draws radii too, so
		// restore the construction-time ones — hardware does not change when
		// a node moves.
		m.pts, m.parents = samplePoints(m.spec, m.r, m.pts, m.parents)
		for i := range m.pts {
			m.pts[i].Radius = m.radii[i]
		}
	case MobilityWaypoint:
		for i := range m.pts {
			dx := m.destX[i] - m.pts[i].X
			dy := m.destY[i] - m.pts[i].Y
			if m.spec.Torus {
				// Walk the shortest toroidal path — matching the wrap-around
				// metric Snapshot builds the graph with — not the Euclidean
				// straight line.
				dx = wrapDelta(dx)
				dy = wrapDelta(dy)
			}
			d := math.Hypot(dx, dy)
			if d <= m.speed[i] {
				// Arrived: settle on the waypoint this epoch, choose the next
				// leg for subsequent epochs.
				m.pts[i].X, m.pts[i].Y = m.destX[i], m.destY[i]
				m.pickWaypoint(i)
				continue
			}
			m.pts[i].X = wrapPos(m.pts[i].X+dx/d*m.speed[i], m.spec.Torus)
			m.pts[i].Y = wrapPos(m.pts[i].Y+dy/d*m.speed[i], m.spec.Torus)
		}
	}
}

// wrapDelta maps a coordinate displacement to its shortest toroidal
// equivalent in [-1/2, 1/2].
func wrapDelta(d float64) float64 {
	if d > 0.5 {
		return d - 1
	}
	if d < -0.5 {
		return d + 1
	}
	return d
}

// wrapPos maps a stepped coordinate back into [0, 1) on the torus. Off the
// torus the step stays on the segment between two in-range points, so no
// wrap is needed.
func wrapPos(x float64, torus bool) float64 {
	if !torus {
		return x
	}
	return wrapOrReflect(x, true)
}
