package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serialises g as a plain-text edge list: a header line
// "# nodes N edges M" followed by one "u v" pair per line in out-adjacency
// order. The format round-trips through ReadEdgeList and is convenient for
// exchanging topologies with external tools (plotting, other simulators).
func WriteEdgeList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(NodeID(u)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format (and tolerates missing
// headers if every node id appears on some edge). Lines starting with '#'
// other than the header are comments. Returns a descriptive error on
// malformed input.
func ReadEdgeList(r io.Reader) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := -1
	var edges [][2]NodeID
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn, hm int
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &hn, &hm); err == nil {
				if hn < 1 {
					return nil, fmt.Errorf("graph: line %d: invalid node count %d", lineNo, hn)
				}
				n = hn
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop %d", lineNo, u)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]NodeID{NodeID(u), NodeID(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	if n < 1 {
		return nil, fmt.Errorf("graph: empty edge list without header")
	}
	if maxID >= n {
		return nil, fmt.Errorf("graph: edge references node %d but header says %d nodes", maxID, n)
	}
	return FromEdges(n, edges), nil
}
