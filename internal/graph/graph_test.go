package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("missing edges")
	}
	if g.HasEdge(1, 0) || g.HasEdge(2, 0) {
		t.Fatal("phantom reverse edges")
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 || g.InDegree(0) != 0 {
		t.Fatal("bad degrees")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupe(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("duplicates not collapsed: m=%d", g.M())
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero nodes": func() { NewBuilder(0) },
		"self-loop":  func() { b := NewBuilder(2); b.AddEdge(1, 1) },
		"oob":        func() { b := NewBuilder(2); b.AddEdge(0, 2) },
		"negative":   func() { b := NewBuilder(2); b.AddEdge(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInOutConsistency(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {3, 2}, {2, 0}})
	in2 := g.In(2)
	if len(in2) != 3 || in2[0] != 0 || in2[1] != 1 || in2[2] != 3 {
		t.Fatalf("In(2) = %v", in2)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverse(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("reverse wrong")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	rr := r.Reverse()
	if !rr.HasEdge(0, 1) || !rr.HasEdge(1, 2) || rr.M() != g.M() {
		t.Fatal("double reverse not identity")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Path(5).IsSymmetric() {
		t.Fatal("path should be symmetric")
	}
	if FromEdges(2, [][2]NodeID{{0, 1}}).IsSymmetric() {
		t.Fatal("one-way edge reported symmetric")
	}
}

func TestCSRInvariantsProperty(t *testing.T) {
	r := rng.New(11)
	f := func(rawN uint8, rawM uint8) bool {
		n := int(rawN%20) + 2
		m := int(rawM % 64)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		return b.Build().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGNPDirectedEdgeCount(t *testing.T) {
	r := rng.New(1)
	n, p := 500, 0.02
	g := GNPDirected(n, p, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1)
	sd := math.Sqrt(want)
	if math.Abs(float64(g.M())-want) > 6*sd {
		t.Fatalf("edge count %d too far from %v", g.M(), want)
	}
}

func TestGNPDirectedExtremes(t *testing.T) {
	r := rng.New(2)
	if g := GNPDirected(10, 0, r); g.M() != 0 {
		t.Fatal("p=0 produced edges")
	}
	g := GNPDirected(6, 1, r)
	if g.M() != 30 {
		t.Fatalf("p=1 edge count %d, want 30", g.M())
	}
	if g1 := GNPDirected(1, 0.5, r); g1.M() != 0 {
		t.Fatal("n=1 produced edges")
	}
}

func TestGNPDirectedDeterministic(t *testing.T) {
	a := GNPDirected(100, 0.05, rng.New(7))
	b := GNPDirected(100, 0.05, rng.New(7))
	if a.M() != b.M() {
		t.Fatalf("same seed gave different graphs: %d vs %d edges", a.M(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		av, bv := a.Out(NodeID(v)), b.Out(NodeID(v))
		if len(av) != len(bv) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

func TestGNPSymmetric(t *testing.T) {
	r := rng.New(3)
	g := GNPSymmetric(200, 0.05, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() {
		t.Fatal("GNPSymmetric not symmetric")
	}
	want := 2 * 0.05 * float64(200*199) / 2
	if math.Abs(float64(g.M())-want) > 6*math.Sqrt(want) {
		t.Fatalf("edge count %d too far from %v", g.M(), want)
	}
	full := GNPSymmetric(5, 1, r)
	if full.M() != 20 {
		t.Fatalf("p=1 symmetric m=%d, want 20", full.M())
	}
}

func TestStar(t *testing.T) {
	g := Star(4)
	if g.N() != 5 || g.M() != 8 {
		t.Fatalf("star n=%d m=%d", g.N(), g.M())
	}
	for i := 1; i <= 4; i++ {
		if !g.HasEdge(0, NodeID(i)) || !g.HasEdge(NodeID(i), 0) {
			t.Fatal("star edges missing")
		}
	}
	if g.OutDegree(0) != 4 || g.OutDegree(1) != 1 {
		t.Fatal("star degrees wrong")
	}
}

func TestPathAndCycle(t *testing.T) {
	p := Path(5)
	if p.M() != 8 {
		t.Fatalf("path m=%d", p.M())
	}
	d, strong := Diameter(p)
	if d != 4 || !strong {
		t.Fatalf("path diameter %d strong=%v", d, strong)
	}
	c := Cycle(6)
	if c.M() != 12 {
		t.Fatalf("cycle m=%d", c.M())
	}
	dc, strongC := Diameter(c)
	if dc != 3 || !strongC {
		t.Fatalf("cycle diameter %d", dc)
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 20 {
		t.Fatalf("complete m=%d", g.M())
	}
	d, _ := Diameter(g)
	if d != 1 {
		t.Fatalf("complete diameter %d", d)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 3)
	if g.N() != 12 {
		t.Fatalf("grid n=%d", g.N())
	}
	// Edges: horizontal 3*3=9, vertical 4*2=8, doubled for symmetry.
	if g.M() != 2*(9+8) {
		t.Fatalf("grid m=%d", g.M())
	}
	d, strong := Diameter(g)
	if d != 5 || !strong {
		t.Fatalf("grid diameter %d", d)
	}
	// Corner degree 2, interior degree 4.
	if g.OutDegree(0) != 2 || g.OutDegree(5) != 4 {
		t.Fatalf("grid degrees: corner=%d interior=%d", g.OutDegree(0), g.OutDegree(5))
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(7)
	if g.M() != 12 {
		t.Fatalf("tree m=%d", g.M())
	}
	d, strong := Diameter(g)
	if d != 4 || !strong {
		t.Fatalf("tree diameter %d", d)
	}
}

func TestObs43Network(t *testing.T) {
	net := NewObs43Network(8)
	g := net.G
	if g.N() != 25 {
		t.Fatalf("obs43 n=%d, want 25", g.N())
	}
	if len(net.Intermediate) != 16 || len(net.Destinations) != 8 {
		t.Fatal("obs43 component counts wrong")
	}
	for _, u := range net.Intermediate {
		if !g.HasEdge(net.Source, u) {
			t.Fatal("intermediate does not hear source")
		}
	}
	for i, d := range net.Destinations {
		if g.InDegree(d) != 2 {
			t.Fatalf("destination %d in-degree %d", i, g.InDegree(d))
		}
		u1, u2 := net.Intermediate[2*i], net.Intermediate[2*i+1]
		if !g.HasEdge(u1, d) || !g.HasEdge(u2, d) {
			t.Fatal("destination not wired to its pair")
		}
	}
	// Destinations are reachable in exactly 2 hops.
	dist := BFS(g, net.Source)
	for _, d := range net.Destinations {
		if dist[d] != 2 {
			t.Fatalf("destination at distance %d", dist[d])
		}
	}
}

func TestFig2Network(t *testing.T) {
	n, D := 16, 20 // L = 4 stars, path length 20-8 = 12
	net := NewFig2Network(n, D)
	g := net.G
	if net.L != 4 {
		t.Fatalf("L=%d", net.L)
	}
	wantNodes := (2 + 1) + (4 + 1) + (8 + 1) + (16 + 1) + (D - 2*4 + 1) + 1
	if g.N() != wantNodes {
		t.Fatalf("fig2 n=%d, want %d", g.N(), wantNodes)
	}
	// Star i has 2^i leaves all hearing centre i.
	for i := 0; i < net.L; i++ {
		if len(net.Leaves[i]) != 1<<uint(i+1) {
			t.Fatalf("star %d has %d leaves", i+1, len(net.Leaves[i]))
		}
		for _, lf := range net.Leaves[i] {
			if !g.HasEdge(net.Centers[i], lf) {
				t.Fatal("leaf does not hear its centre")
			}
		}
	}
	// Leaves of S_i feed centre c_{i+1}.
	for i := 0; i+1 < net.L; i++ {
		for _, lf := range net.Leaves[i] {
			if !g.HasEdge(lf, net.Centers[i+1]) {
				t.Fatal("leaf does not feed next centre")
			}
		}
	}
	// Path head hears all of the last star.
	head := net.Centers[net.L]
	if g.InDegree(head) != 1+len(net.Leaves[net.L-1]) {
		t.Fatalf("path head in-degree %d", g.InDegree(head))
	}
	// The eccentricity from the source equals D.
	ecc, reach := Eccentricity(g, net.Source)
	if reach != g.N() {
		t.Fatalf("only %d/%d reachable from source", reach, g.N())
	}
	if ecc != D {
		t.Fatalf("source eccentricity %d, want D=%d", ecc, D)
	}
	dist := BFS(g, net.Source)
	if dist[net.LastNode()] != D {
		t.Fatalf("last node at distance %d, want %d", dist[net.LastNode()], D)
	}
}

func TestFig2Panics(t *testing.T) {
	for name, fn := range map[string]func(){
		"not power of two": func() { NewFig2Network(10, 100) },
		"D too small":      func() { NewFig2Network(16, 7) },
		"n too small":      func() { NewFig2Network(1, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLayeredRandom(t *testing.T) {
	r := rng.New(4)
	g := LayeredRandom([]int{1, 10, 10, 5}, 0.3, r)
	if g.N() != 26 {
		t.Fatalf("layered n=%d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Forced edges guarantee every layer is reachable.
	if ReachableFrom(g, 0) != 26 {
		t.Fatal("layered graph not fully reachable from source")
	}
	layers := Layering(g, 0)
	if len(layers) != 4 {
		t.Fatalf("expected 4 BFS layers, got %d", len(layers))
	}
	if len(layers[1]) == 0 || len(layers[3]) == 0 {
		t.Fatal("empty BFS layer")
	}
}

func TestBFSKnown(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	dist := BFS(g, 0)
	want := []int{0, 1, 2, 3, -1}
	for i, d := range dist {
		if d != want[i] {
			t.Fatalf("dist %v, want %v", dist, want)
		}
	}
}

func TestBFSRespectsDirection(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {2, 1}})
	dist := BFS(g, 0)
	if dist[2] != -1 {
		t.Fatal("BFS followed an edge backwards")
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {2, 3}})
	d, strong := Diameter(g)
	if strong {
		t.Fatal("disconnected graph reported strongly connected")
	}
	if d != 1 {
		t.Fatalf("diameter of reachable pairs = %d", d)
	}
}

func TestDiameterSampled(t *testing.T) {
	r := rng.New(5)
	g := Path(50)
	exact, _ := Diameter(g)
	est := DiameterSampled(g, 10, r)
	if est > exact {
		t.Fatalf("sampled diameter %d exceeds exact %d", est, exact)
	}
	full := DiameterSampled(g, 100, r)
	if full != exact {
		t.Fatalf("sampled with k>=n should be exact: %d vs %d", full, exact)
	}
}

func TestDegrees(t *testing.T) {
	g := Star(3)
	s := Degrees(g)
	if s.MaxOut != 3 || s.MinOut != 1 || s.MaxIn != 3 || s.MinIn != 1 {
		t.Fatalf("star degree stats %+v", s)
	}
	if math.Abs(s.MeanOut-6.0/4.0) > 1e-12 {
		t.Fatalf("mean out %v", s.MeanOut)
	}
}

func TestConnectivity(t *testing.T) {
	if !IsStronglyConnected(Path(4)) {
		t.Fatal("symmetric path should be strongly connected")
	}
	oneWay := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	if IsStronglyConnected(oneWay) {
		t.Fatal("one-way path is not strongly connected")
	}
	if !IsWeaklyConnected(oneWay) {
		t.Fatal("one-way path is weakly connected")
	}
	split := FromEdges(4, [][2]NodeID{{0, 1}, {2, 3}})
	if IsWeaklyConnected(split) {
		t.Fatal("two components reported weakly connected")
	}
}

func TestGNPConnectivityAboveThreshold(t *testing.T) {
	// p = 4 log n / n is comfortably above the connectivity threshold.
	r := rng.New(6)
	n := 400
	p := 4 * math.Log(float64(n)) / float64(n)
	for trial := 0; trial < 5; trial++ {
		g := GNPDirected(n, p, r.Split(uint64(trial)))
		if !IsStronglyConnected(g) {
			t.Fatalf("trial %d: G(n,p) above threshold not strongly connected", trial)
		}
	}
}

func TestRandomGeometricHomogeneous(t *testing.T) {
	r := rng.New(7)
	g, pts := RandomGeometric(300, 0.15, 0.15, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 300 {
		t.Fatal("point count")
	}
	if !g.IsSymmetric() {
		t.Fatal("homogeneous RGG must be symmetric")
	}
	// Verify against brute force.
	brute := 0
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			dx, dy := pts[i].X-pts[j].X, pts[i].Y-pts[j].Y
			if dx*dx+dy*dy <= 0.15*0.15 {
				brute++
			}
		}
	}
	if g.M() != brute {
		t.Fatalf("RGG edges %d, brute force %d", g.M(), brute)
	}
}

func TestRandomGeometricHeterogeneous(t *testing.T) {
	r := rng.New(8)
	g, pts := RandomGeometric(400, 0.05, 0.25, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	asym := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(NodeID(u)) {
			if !g.HasEdge(v, NodeID(u)) {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("heterogeneous RGG produced no asymmetric links")
	}
	// Every edge respects the sender's radius.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(NodeID(u)) {
			dx, dy := pts[u].X-pts[v].X, pts[u].Y-pts[v].Y
			if dx*dx+dy*dy > pts[u].Radius*pts[u].Radius+1e-12 {
				t.Fatal("edge exceeds sender radius")
			}
		}
	}
}

func TestLayering(t *testing.T) {
	g := Path(4)
	layers := Layering(g, 0)
	if len(layers) != 4 {
		t.Fatalf("layers %v", layers)
	}
	for d, l := range layers {
		if len(l) != 1 || int(l[0]) != d {
			t.Fatalf("layer %d = %v", d, l)
		}
	}
}

func BenchmarkGNPDirectedGenerate(b *testing.B) {
	r := rng.New(1)
	n := 10000
	p := 2 * math.Log(float64(n)) / float64(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := GNPDirected(n, p, r)
		if g.N() != n {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkBFSLargeGNP(b *testing.B) {
	r := rng.New(2)
	n := 20000
	g := GNPDirected(n, 3*math.Log(float64(n))/float64(n), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}
