// Package graph provides the directed-graph substrate for the radio-network
// simulator: a compact CSR (compressed sparse row) digraph, deterministic
// generators for every topology used in the paper's analysis (random digraphs
// G(n,p), stars, paths, grids, the two lower-bound constructions, random
// geometric graphs), and structural metrics (BFS, diameter, degrees,
// connectivity).
//
// Edge direction convention: an edge u → v means "v can hear u", i.e. when u
// transmits, v is one of the potential receivers. This matches the paper's
// model where (u,v) ∈ E means u is in the communication range of v.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID indexes a node. Graphs are limited to 2^31-1 nodes, which keeps the
// adjacency arrays at 4 bytes per endpoint.
type NodeID = int32

// Digraph is an immutable directed graph in CSR form with both out- and
// in-adjacency, so the simulator can iterate receivers of a transmitter
// (out-edges) and analysers can iterate potential interferers (in-edges).
// Adjacency lists are sorted by target id.
type Digraph struct {
	n      int
	outOff []int
	outTo  []NodeID
	inOff  []int
	inTo   []NodeID
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Digraph) M() int { return len(g.outTo) }

// Out returns the out-neighbours of v (the nodes that hear v). The returned
// slice aliases internal storage and must not be modified.
func (g *Digraph) Out(v NodeID) []NodeID { return g.outTo[g.outOff[v]:g.outOff[v+1]] }

// In returns the in-neighbours of v (the nodes v can hear). The returned
// slice aliases internal storage and must not be modified.
func (g *Digraph) In(v NodeID) []NodeID { return g.inTo[g.inOff[v]:g.inOff[v+1]] }

// OutDegree returns the number of nodes that hear v.
func (g *Digraph) OutDegree(v NodeID) int { return g.outOff[v+1] - g.outOff[v] }

// InDegree returns the number of nodes v hears.
func (g *Digraph) InDegree(v NodeID) int { return g.inOff[v+1] - g.inOff[v] }

// HasEdge reports whether the edge u → v exists (binary search on the sorted
// out-adjacency of u).
func (g *Digraph) HasEdge(u, v NodeID) bool {
	adj := g.Out(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Builder accumulates edges and produces an immutable Digraph. Duplicate
// edges are collapsed at Build time; self-loops are rejected by AddEdge
// (a radio cannot inform itself).
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v NodeID }

// NewBuilder returns a Builder for a graph with n nodes. It panics if n < 1
// or n exceeds the NodeID range.
func NewBuilder(n int) *Builder {
	if n < 1 {
		panic("graph: builder needs n >= 1")
	}
	if n > 1<<31-1 {
		panic("graph: too many nodes for int32 ids")
	}
	return &Builder{n: n}
}

// AddEdge records the directed edge u → v ("v hears u"). It panics on
// out-of-range endpoints or self-loops.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v {
		panic("graph: self-loop")
	}
	b.edges = append(b.edges, edge{u, v})
}

// AddBoth records u → v and v → u (a symmetric radio link).
func (b *Builder) AddBoth(u, v NodeID) {
	b.AddEdge(u, v)
	b.AddEdge(v, u)
}

// Build produces the immutable CSR digraph. Duplicate edges are collapsed.
func (b *Builder) Build() *Digraph {
	n := b.n
	// Sort edges by (u, v) and dedupe.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	uniq := b.edges[:0]
	var prev edge
	for i, e := range b.edges {
		if i == 0 || e != prev {
			uniq = append(uniq, e)
			prev = e
		}
	}
	g := &Digraph{
		n:      n,
		outOff: make([]int, n+1),
		outTo:  make([]NodeID, len(uniq)),
		inOff:  make([]int, n+1),
		inTo:   make([]NodeID, len(uniq)),
	}
	for _, e := range uniq {
		g.outOff[e.u+1]++
		g.inOff[e.v+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	outPos := make([]int, n)
	inPos := make([]int, n)
	for _, e := range uniq {
		g.outTo[g.outOff[e.u]+outPos[e.u]] = e.v
		outPos[e.u]++
		g.inTo[g.inOff[e.v]+inPos[e.v]] = e.u
		inPos[e.v]++
	}
	// Out lists are sorted because edges were sorted by (u,v). In lists need
	// their own sort for deterministic iteration and binary-search support.
	for v := 0; v < n; v++ {
		in := g.inTo[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	}
	return g
}

// FromEdges builds a digraph directly from an edge list.
func FromEdges(n int, edges [][2]NodeID) *Digraph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Validate checks the CSR invariants. It is used by property tests and
// returns a descriptive error on the first violation found.
func (g *Digraph) Validate() error {
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return errors.New("graph: offset array length mismatch")
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	if g.outOff[g.n] != len(g.outTo) || g.inOff[g.n] != len(g.inTo) {
		return errors.New("graph: offsets must end at edge count")
	}
	if len(g.outTo) != len(g.inTo) {
		return errors.New("graph: out/in edge count mismatch")
	}
	inCount := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] || g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
		adj := g.Out(NodeID(v))
		for i, w := range adj {
			if w < 0 || int(w) >= g.n {
				return fmt.Errorf("graph: out edge target %d out of range", w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: out adjacency of %d not strictly sorted", v)
			}
			inCount[w]++
		}
	}
	for v := 0; v < g.n; v++ {
		if got := g.InDegree(NodeID(v)); got != inCount[v] {
			return fmt.Errorf("graph: in-degree of %d is %d, want %d", v, got, inCount[v])
		}
		adj := g.In(NodeID(v))
		for i, w := range adj {
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: in adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(w, NodeID(v)) {
				return fmt.Errorf("graph: in edge %d->%d missing from out lists", w, v)
			}
		}
	}
	return nil
}

// Reverse returns the transpose graph (every edge u → v becomes v → u).
func (g *Digraph) Reverse() *Digraph {
	r := &Digraph{
		n:      g.n,
		outOff: append([]int(nil), g.inOff...),
		outTo:  append([]NodeID(nil), g.inTo...),
		inOff:  append([]int(nil), g.outOff...),
		inTo:   append([]NodeID(nil), g.outTo...),
	}
	return r
}

// IsSymmetric reports whether every edge has its reverse (a bidirectional
// radio network).
func (g *Digraph) IsSymmetric() bool {
	for v := 0; v < g.n; v++ {
		for _, w := range g.Out(NodeID(v)) {
			if !g.HasEdge(w, NodeID(v)) {
				return false
			}
		}
	}
	return true
}
