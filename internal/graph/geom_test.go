package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// naiveGeometric is the O(n²) reference construction: every ordered pair is
// tested directly against the sender's radius. The cell-grid path must be
// edge-identical to it.
func naiveGeometric(pts []GeometricPoint, torus bool) *Digraph {
	b := NewBuilder(len(pts))
	for u := range pts {
		rr := pts[u].Radius * pts[u].Radius
		for v := range pts {
			if u == v {
				continue
			}
			dx := math.Abs(pts[u].X - pts[v].X)
			dy := math.Abs(pts[u].Y - pts[v].Y)
			if torus {
				if dx > 0.5 {
					dx = 1 - dx
				}
				if dy > 0.5 {
					dy = 1 - dy
				}
			}
			if dx*dx+dy*dy <= rr {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

func sameDigraph(t *testing.T, got, want *Digraph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("size mismatch: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for u := 0; u < want.N(); u++ {
		g, w := got.Out(NodeID(u)), want.Out(NodeID(u))
		if len(g) != len(w) {
			t.Fatalf("node %d: out-degree %d, want %d", u, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("node %d: out[%d] = %d, want %d", u, i, g[i], w[i])
			}
		}
	}
}

// TestGeometricMatchesNaive is the property test: across seeds, sizes, radii,
// boundary modes and placements, the cell-grid construction is edge-identical
// to the naive O(n²) reference.
func TestGeometricMatchesNaive(t *testing.T) {
	specs := []GeomSpec{
		{N: 1, Radius: 0.3},
		{N: 2, Radius: 0.9},
		{N: 50, Radius: 0.2},
		{N: 50, Radius: 0.2, Torus: true},
		{N: 200, Radius: 0.08},
		{N: 200, Radius: 0.08, Torus: true},
		{N: 200, Radius: 0.05, RadiusMax: 0.25},
		{N: 200, Radius: 0.05, RadiusMax: 0.25, Torus: true},
		{N: 150, Radius: 0.6, Torus: true}, // radius > 0.5: everything adjacent on the torus
		{N: 300, Radius: 0.002},            // radius far below cell width: isolated nodes
		{N: 120, Radius: 0.1, Placement: PlaceCluster},
		{N: 120, Radius: 0.1, Placement: PlaceCluster, Clusters: 3, Spread: 0.02},
		{N: 120, Radius: 0.1, RadiusMax: 0.3, Placement: PlaceCluster, Torus: true},
	}
	sc := NewScratch()
	for _, spec := range specs {
		for seed := uint64(0); seed < 5; seed++ {
			pts, _ := samplePoints(spec, rng.New(seed), nil, nil)
			for i := range pts {
				if pts[i].X < 0 || pts[i].X >= 1 || pts[i].Y < 0 || pts[i].Y >= 1 {
					t.Fatalf("spec %+v seed %d: point %d = (%g, %g) outside [0,1)", spec, seed, i, pts[i].X, pts[i].Y)
				}
			}
			got := sc.FromPoints(pts, spec.Torus)
			if err := got.Validate(); err != nil {
				t.Fatalf("spec %+v seed %d: %v", spec, seed, err)
			}
			sameDigraph(t, got, naiveGeometric(pts, spec.Torus))
		}
	}
}

// TestGeometricScratchReuse checks that regenerating through one scratch
// yields the same instance as a fresh scratch (stale storage never leaks).
func TestGeometricScratchReuse(t *testing.T) {
	sc := NewScratch()
	specs := []GeomSpec{
		{N: 300, Radius: 0.1, Torus: true},
		{N: 40, Radius: 0.4},
		{N: 500, Radius: 0.05, RadiusMax: 0.1},
	}
	for trial := 0; trial < 3; trial++ {
		for _, spec := range specs {
			seed := uint64(trial)*31 + uint64(spec.N)
			got, _ := sc.Geometric(spec, rng.New(seed))
			want, _ := Geometric(spec, rng.New(seed))
			sameDigraph(t, got, want)
		}
	}
}

func TestGeometricDeterminism(t *testing.T) {
	spec := GeomSpec{N: 256, Radius: 0.07, RadiusMax: 0.2, Placement: PlaceCluster, Torus: true}
	a, ptsA := Geometric(spec, rng.New(99))
	b, ptsB := Geometric(spec, rng.New(99))
	sameDigraph(t, a, b)
	for i := range ptsA {
		if ptsA[i] != ptsB[i] {
			t.Fatalf("point %d differs between identically seeded runs", i)
		}
	}
}

func TestRGGSymmetricAndThreshold(t *testing.T) {
	n := 900
	rc := ConnectivityRadius(n)
	if want := math.Sqrt(math.Log(float64(n)) / (math.Pi * float64(n))); math.Abs(rc-want) > 1e-15 {
		t.Fatalf("ConnectivityRadius = %g, want %g", rc, want)
	}
	// Homogeneous radii: RGG is symmetric; comfortably above the threshold
	// it is connected, far below it it is not.
	above := RGG(n, 2*rc, false, rng.New(5))
	if !above.IsSymmetric() {
		t.Fatal("RGG must be symmetric")
	}
	if !IsStronglyConnected(above) {
		t.Fatal("RGG at 2·r_c should be connected")
	}
	below := RGG(n, 0.3*rc, false, rng.New(5))
	if IsStronglyConnected(below) {
		t.Fatal("RGG at 0.3·r_c should be disconnected")
	}
}

func TestClusterPlacementIsHeterogeneous(t *testing.T) {
	// Clustered placement should concentrate mass: the max cell occupancy of
	// a coarse grid must clearly exceed the uniform expectation.
	n := 2000
	maxOcc := func(pts []GeometricPoint) int {
		const k = 8
		var occ [k * k]int
		for _, p := range pts {
			cx, cy := int(p.X*k), int(p.Y*k)
			occ[cy*k+cx]++
		}
		m := 0
		for _, c := range occ {
			if c > m {
				m = c
			}
		}
		return m
	}
	uni, _ := samplePoints(GeomSpec{N: n, Radius: 0.05}, rng.New(3), nil, nil)
	clu, _ := samplePoints(GeomSpec{N: n, Radius: 0.05, Placement: PlaceCluster, Clusters: 5, Spread: 0.03}, rng.New(3), nil, nil)
	if mu, mc := maxOcc(uni), maxOcc(clu); mc < 3*mu {
		t.Fatalf("cluster placement not heterogeneous: max occupancy %d vs uniform %d", mc, mu)
	}
}

func TestMobileNetworkWaypoint(t *testing.T) {
	spec := GeomSpec{N: 200, Radius: 0.12}
	m := NewMobileNetwork(spec, MobilityWaypoint, 0.02, 0.05, rng.New(11))
	sc := NewScratch()
	prev := append([]GeometricPoint(nil), m.Points()...)
	for e := 0; e < 10; e++ {
		g := m.Snapshot(sc)
		if err := g.Validate(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		sameDigraph(t, g, naiveGeometric(m.Points(), spec.Torus))
		m.Advance()
		if m.Epoch() != e+1 {
			t.Fatalf("epoch counter %d, want %d", m.Epoch(), e+1)
		}
		// Waypoint motion is bounded by vmax per epoch and keeps radii fixed.
		for i, p := range m.Points() {
			d := math.Hypot(p.X-prev[i].X, p.Y-prev[i].Y)
			if d > 0.05+1e-12 {
				t.Fatalf("epoch %d: node %d moved %g > vmax", e, i, d)
			}
			if p.Radius != prev[i].Radius {
				t.Fatalf("epoch %d: node %d radius changed", e, i)
			}
			if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
				t.Fatalf("epoch %d: node %d left the unit square", e, i)
			}
		}
		copy(prev, m.Points())
	}
}

func TestMobileNetworkResample(t *testing.T) {
	spec := GeomSpec{N: 150, Radius: 0.05, RadiusMax: 0.2, Torus: true}
	m := NewMobileNetwork(spec, MobilityResample, 0, 0, rng.New(4))
	radii := make([]float64, spec.N)
	for i, p := range m.Points() {
		radii[i] = p.Radius
	}
	sc := NewScratch()
	moved := false
	prev := append([]GeometricPoint(nil), m.Points()...)
	for e := 0; e < 5; e++ {
		m.Advance()
		for i, p := range m.Points() {
			if p.Radius != radii[i] {
				t.Fatalf("epoch %d: node %d radius changed under resample", e, i)
			}
			if p.X != prev[i].X || p.Y != prev[i].Y {
				moved = true
			}
		}
		g := m.Snapshot(sc)
		sameDigraph(t, g, naiveGeometric(m.Points(), spec.Torus))
		copy(prev, m.Points())
	}
	if !moved {
		t.Fatal("resample mobility never moved any node")
	}
}
