package energy

// Tests of listener duty-cycle schedules: direct spend checks across wake
// boundaries, the naive-mirror fuzz with schedules active, and bulk idle
// settlement (AdvanceIdle) bit-identical to the round loop — the invariant
// the radio engine's silent-span skipping rests on when schedules gate the
// listeners.

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// refAwake mirrors DutyCycle.awakeAt independently of the production code:
// node v is awake in round r iff (r-1+offset+v·stagger) mod Period < On.
func refAwake(d DutyCycle, v graph.NodeID, r int) bool {
	off := d.Offset
	if d.Stagger {
		off += int(v)
	}
	m := (r - 1 + off) % d.Period
	if m < 0 {
		m += d.Period
	}
	return m < d.On
}

func TestScheduleAwakeAtMatchesDefinition(t *testing.T) {
	r := rng.New(0x5c4ed)
	for trial := 0; trial < 200; trial++ {
		d := DutyCycle{
			Period:  1 + r.Intn(9),
			Offset:  r.Intn(21) - 10,
			Stagger: r.Bernoulli(0.5),
		}
		d.On = 1 + r.Intn(d.Period)
		for v := 0; v < 12; v++ {
			for round := 1; round <= 3*d.Period+2; round++ {
				got := d.awakeAt(d.classOf(graph.NodeID(v)), round)
				if want := refAwake(d, graph.NodeID(v), round); got != want {
					t.Fatalf("%+v node %d round %d: awake %v, definition says %v", d, v, round, got, want)
				}
			}
		}
		// awakeIn must agree with counting awakeAt round by round.
		c := d.classOf(graph.NodeID(r.Intn(12)))
		from := 1 + r.Intn(20)
		to := from + r.Intn(40) - 2
		want := int64(0)
		for round := from; round <= to; round++ {
			if d.awakeAt(c, round) {
				want++
			}
		}
		if got := d.awakeIn(c, from, to); got != want {
			t.Fatalf("%+v class %d: awakeIn(%d, %d) = %d, counted %d", d, c, from, to, got, want)
		}
	}
}

// TestScheduleAsleepRunSpendsSleepOnly: a listener scheduled asleep for a
// whole run pays exactly the sleep rate — never Listen — and an awake round
// at the boundary switches it back.
func TestScheduleAsleepRunSpendsSleepOnly(t *testing.T) {
	m := Model{Listen: 1, Sleep: 0.25}
	// Period 4, On 1, Offset 1: awake rounds are r ≡ 0 (mod 4), so rounds
	// 1..3 are one fully asleep span for every (un-staggered) node.
	st := NewState()
	st.Start(Spec{Model: m, Schedule: &DutyCycle{Period: 4, On: 1, Offset: 1}}, 3)
	for r := 1; r <= 3; r++ {
		st.EndRound(r, nil, nil)
	}
	rep := st.Report()
	if rep.ListenEnergy != 0 {
		t.Fatalf("asleep span accrued listen energy %g", rep.ListenEnergy)
	}
	if want := 3 * 3 * 0.25; rep.SleepEnergy != want {
		t.Fatalf("asleep span sleep energy %g, want %g", rep.SleepEnergy, want)
	}
	// Round 4 is the wake boundary: all three listeners pay Listen.
	st.EndRound(4, nil, nil)
	rep = st.Report()
	if rep.ListenEnergy != 3 {
		t.Fatalf("wake round listen energy %g, want 3", rep.ListenEnergy)
	}
}

// TestScheduleLazyFoldAcrossWakeBoundaries: per-node spends settle lazily
// (only when Remaining or Report forces a fold), and the closed-form span
// settlement must cross wake/sleep boundaries exactly.
func TestScheduleLazyFoldAcrossWakeBoundaries(t *testing.T) {
	m := Model{Listen: 0.75, Sleep: 0.125}
	d := &DutyCycle{Period: 3, On: 2, Offset: 0, Stagger: true}
	const n, rounds = 7, 23
	st := NewState()
	st.Start(Spec{Model: m, Budget: 1000, Schedule: d}, n)
	for r := 1; r <= rounds; r++ {
		st.EndRound(r, nil, nil)
	}
	for v := 0; v < n; v++ {
		awake := 0
		for r := 1; r <= rounds; r++ {
			if refAwake(*d, graph.NodeID(v), r) {
				awake++
			}
		}
		want := 1000 - (float64(awake)*m.Listen + float64(rounds-awake)*m.Sleep)
		if got := st.Remaining(graph.NodeID(v)); got != want {
			t.Fatalf("node %d: remaining %g, want %g (%d awake of %d rounds)", v, got, want, awake, rounds)
		}
	}
}

// randomSchedule draws a schedule (possibly inactive) for the fuzz loops.
func randomSchedule(r *rng.RNG) *DutyCycle {
	d := &DutyCycle{
		Period:  1 + r.Intn(7),
		Offset:  r.Intn(11) - 5,
		Stagger: r.Bernoulli(0.5),
	}
	d.On = 1 + r.Intn(d.Period)
	return d
}

// TestStateMatchesNaiveReferenceWithSchedule extends the naive-mirror fuzz
// to duty-cycled listeners: deliveries land only on awake listeners (the
// engine's FilterAwake applies first), an asleep uninformed node pays Sleep,
// and death rounds stay exact.
func TestStateMatchesNaiveReferenceWithSchedule(t *testing.T) {
	const n = 48
	const rounds = 300
	m := Model{Tx: 1, Rx: 0.5, Listen: 0.25, Sleep: 0.125}
	r := rng.New(0xd07c)

	for trial := 0; trial < 12; trial++ {
		sched := randomSchedule(r)
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = float64(2+r.Intn(200)) * 0.5
		}
		st := NewState()
		st.Start(Spec{Model: m, Budgets: budgets, Schedule: sched}, n)

		spent := make([]float64, n)
		informed := make([]bool, n)
		dead := make([]bool, n)
		naiveDead := 0

		st.NoteInformed(0, 0)
		informed[0] = true

		var txs, delivered []graph.NodeID
		for round := 1; round <= rounds; round++ {
			txs, delivered = txs[:0], delivered[:0]
			for v := 1; v < n; v++ {
				if dead[v] || informed[v] {
					continue
				}
				if r.Float64() < 0.04 {
					delivered = append(delivered, graph.NodeID(v))
				}
			}
			for v := 0; v < n; v++ {
				if !dead[v] && informed[v] && r.Float64() < 0.1 {
					txs = append(txs, graph.NodeID(v))
				}
			}
			// The engine's delivery pipeline: sleeping listeners miss the
			// message. FilterAwake must agree with the independent mirror.
			delivered = st.FilterAwake(delivered, round)
			for _, v := range delivered {
				if sched.active() && !refAwake(*sched, v, round) {
					t.Fatalf("trial %d round %d: FilterAwake kept sleeping node %d", trial, round, v)
				}
			}
			st.EndRound(round, txs, delivered)

			inTx := map[graph.NodeID]bool{}
			for _, v := range txs {
				inTx[v] = true
			}
			inRx := map[graph.NodeID]bool{}
			for _, v := range delivered {
				inRx[v] = true
			}
			for v := 0; v < n; v++ {
				if dead[v] {
					continue
				}
				switch {
				case inTx[graph.NodeID(v)]:
					spent[v] += m.Tx
				case inRx[graph.NodeID(v)]:
					spent[v] += m.Rx
				case informed[v]:
					spent[v] += m.Sleep
				case sched.active() && !refAwake(*sched, graph.NodeID(v), round):
					spent[v] += m.Sleep
				default:
					spent[v] += m.Listen
				}
			}
			for _, v := range delivered {
				informed[v] = true
			}
			for v := 0; v < n; v++ {
				if !dead[v] && spent[v] >= budgets[v]-1e-9 {
					dead[v] = true
					naiveDead++
				}
			}
			if st.DeadCount() != naiveDead {
				t.Fatalf("trial %d (%+v) round %d: dead %d, naive %d",
					trial, *sched, round, st.DeadCount(), naiveDead)
			}
		}

		rep := st.Report()
		for v := 0; v < n; v++ {
			if math.Abs(rep.Spent[v]-spent[v]) > 1e-9 {
				t.Fatalf("trial %d (%+v) node %d: spent %g, naive %g",
					trial, *sched, v, rep.Spent[v], spent[v])
			}
		}
	}
}

// TestAdvanceIdleMatchesEndRoundLoopWithSchedule: bulk idle settlement must
// stay bit-identical to the round loop when a schedule splits every span
// into awake and asleep segments — including deaths that land mid-sleep.
func TestAdvanceIdleMatchesEndRoundLoopWithSchedule(t *testing.T) {
	r := rng.New(0xab1e)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(40)
		sched := randomSchedule(r)
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = 0.5 + 6*r.Float64()
		}
		spec := Spec{Model: Model{Tx: 1, Rx: 0.5, Listen: 0.25, Sleep: 0.0625},
			Budgets: budgets, Schedule: sched}

		mk := func() *State {
			st := NewState()
			st.Start(spec, n)
			for v := 0; v < n; v++ {
				if v*2654435761%7 < 3 {
					st.NoteInformed(graph.NodeID(v), 0)
				}
			}
			return st
		}
		a, b := mk(), mk()

		span := 1 + r.Intn(60)
		loopDeaths := 0
		for round := 1; round <= span; round++ {
			loopDeaths += a.EndRound(round, nil, nil)
		}
		bulkDeaths := b.AdvanceIdle(1, span)

		if loopDeaths != bulkDeaths {
			t.Fatalf("trial %d (%+v): %d deaths round-by-round, %d in bulk", trial, *sched, loopDeaths, bulkDeaths)
		}
		ra, rb := a.Report(), b.Report()
		if ra.ListenEnergy != rb.ListenEnergy || ra.SleepEnergy != rb.SleepEnergy ||
			ra.TxEnergy != rb.TxEnergy || ra.RxEnergy != rb.RxEnergy ||
			ra.DeadCount != rb.DeadCount || ra.FirstDeathRound != rb.FirstDeathRound ||
			ra.HalfDeathRound != rb.HalfDeathRound {
			t.Fatalf("trial %d (%+v): reports diverge\nloop %+v\nbulk %+v", trial, *sched, ra, rb)
		}
		for v := 0; v < n; v++ {
			if ra.Spent[v] != rb.Spent[v] {
				t.Fatalf("trial %d (%+v) node %d: spend %g loop vs %g bulk", trial, *sched, v, ra.Spent[v], rb.Spent[v])
			}
			if a.Alive(graph.NodeID(v)) != b.Alive(graph.NodeID(v)) {
				t.Fatalf("trial %d node %d: aliveness differs", trial, v)
			}
		}
		if an, bn := a.NextPassiveDeathSession(), b.NextPassiveDeathSession(); an != bn {
			t.Fatalf("trial %d (%+v): next predicted death %d loop vs %d bulk", trial, *sched, an, bn)
		}
	}
}

// TestScheduleValidationPanics: malformed schedules and the inactive
// On == Period case.
func TestScheduleValidationPanics(t *testing.T) {
	for name, d := range map[string]DutyCycle{
		"zero period": {Period: 0, On: 0},
		"zero on":     {Period: 4, On: 0},
		"on > period": {Period: 2, On: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			NewState().Start(Spec{Model: UnitTx(), Schedule: &d}, 2)
		}()
	}
	// On == Period is valid but gates nothing: equivalent to no schedule.
	st := NewState()
	st.Start(Spec{Model: UnitTx(), Schedule: &DutyCycle{Period: 3, On: 3}}, 2)
	if st.Scheduled() {
		t.Fatal("an always-on schedule should resolve to unscheduled")
	}
	if !st.AwakeAt(1, 5) {
		t.Fatal("unscheduled AwakeAt must be true")
	}
}
