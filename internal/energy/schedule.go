package energy

// Listener duty-cycle schedules: the dominant real energy lever for sensor
// radios (see the package notes — idle listening out-draws transmitting on
// a CC2420). A DutyCycle powers the LISTENING radio down for part of every
// cycle: an alive uninformed node is awake (receiver on, paying Listen)
// only in the On leading rounds of each Period-round cycle and sleeps
// through the rest — it cannot receive in those rounds and pays Sleep.
// Informed nodes are untouched: they already sleep between their scheduled
// transmissions, and a protocol's transmit schedule is never gated (the
// radio wakes to transmit).
//
// All schedule accounting is closed-form over phase residues: any Period
// consecutive rounds contain exactly On awake rounds for every node, so an
// idle span of any length settles in O(Period) regardless of how many
// wake/sleep boundaries it crosses — which is what lets the engine's
// silent-span skipping and the death-heap prediction stay bit-identical to
// round-by-round execution with schedules active.

import (
	"fmt"

	"repro/internal/graph"
)

// DutyCycle is a periodic listener schedule. The zero Offset, non-Stagger
// schedule wakes every listener in rounds 1..On of each cycle
// synchronously; Stagger shifts node v's phase by v, spreading wake
// windows evenly across the network (so every round has ~n·On/Period awake
// listeners instead of all-or-nothing).
type DutyCycle struct {
	// Period is the cycle length in rounds (>= 1).
	Period int
	// On is the number of awake rounds per cycle (1..Period). On == Period
	// means always awake — the schedule gates nothing.
	On int
	// Offset shifts the global phase: round r is in cycle position
	// (r - 1 + Offset) mod Period.
	Offset int
	// Stagger additionally shifts node v's phase by v.
	Stagger bool
}

func (d DutyCycle) validate() error {
	if d.Period < 1 {
		return fmt.Errorf("energy: DutyCycle.Period %d must be >= 1", d.Period)
	}
	if d.On < 1 || d.On > d.Period {
		return fmt.Errorf("energy: DutyCycle.On %d outside 1..Period (%d)", d.On, d.Period)
	}
	return nil
}

// active reports whether the schedule actually gates anything.
func (d DutyCycle) active() bool { return d.On < d.Period }

// classOf returns node v's phase-residue class in [0, Period).
func (d DutyCycle) classOf(v graph.NodeID) int {
	off := d.Offset
	if d.Stagger {
		off += int(v)
	}
	off %= d.Period
	if off < 0 {
		off += d.Period
	}
	return off
}

// awakeAt reports whether class c is awake in age round r (1-based, r >= 1).
func (d DutyCycle) awakeAt(c, r int) bool { return (r-1+c)%d.Period < d.On }

// awakeCount returns the number of s in [0, x] with s mod Period < On
// (0 for negative x) — the prefix-count behind all span settlement.
func (d DutyCycle) awakeCount(x int) int64 {
	if x < 0 {
		return 0
	}
	q, rem := (x+1)/d.Period, (x+1)%d.Period
	if rem > d.On {
		rem = d.On
	}
	return int64(q)*int64(d.On) + int64(rem)
}

// awakeIn returns the number of age rounds in [from, to] (from >= 1) in
// which class c is awake. O(1): two prefix counts.
func (d DutyCycle) awakeIn(c, from, to int) int64 {
	if to < from {
		return 0
	}
	return d.awakeCount(to-1+c) - d.awakeCount(from-2+c)
}
