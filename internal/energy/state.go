package energy

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Node status byte: exactly one per node, determining its passive drain
// rate (Listen while uninformed, Sleep once informed) and its eligibility
// to transmit or receive.
const (
	statusListening uint8 = iota // alive, uninformed: receiver on every round
	statusInformed               // alive, informed: sleeps when not transmitting
	statusDead                   // depleted: no tx, no charge, (optionally) no rx
)

// neverRound is the heap key of a node that will not die of passive drain.
const neverRound = math.MaxInt64

// depleteEps absorbs float rounding at the death threshold: a node is dead
// when its spend reaches budget - depleteEps. With binary-exact cost tables
// (powers of two, integers) death rounds are exact.
const depleteEps = 1e-9

// State is one battery bank plus the lazy accounting machinery. It is
// created once (or borrowed from a radio.Scratch), reset per session by
// Start, and optionally carried across sessions with Spec.Resume. All
// methods are allocation-free after Start; none are safe for concurrent
// use.
type State struct {
	model          Model
	n              int
	limited        bool
	deadReceive    bool
	trackPartition bool

	// Listener duty-cycle schedule (hasSched iff one is active):
	// listenPhase[c] counts the alive LISTENING nodes of phase class c, so
	// the awake-listener population of any round — and of any idle span —
	// is a Σ over at most Period classes (see schedule.go).
	sched       DutyCycle
	hasSched    bool
	listenPhase []int64

	budget []float64
	spent  []float64 // charge folded through round anchor[v]
	anchor []int32   // last *age* round whose cost is included in spent[v]
	status []uint8

	// Indexed min-heap of predicted spontaneous-death rounds (limited mode
	// only): key[v] is the age round at whose end v's passive drain alone
	// reaches its budget; pos[v] is v's slot in heap. Keys are predictions —
	// verified, and corrected, when popped.
	key  []int64
	heap []int32
	pos  []int32

	round int // current age round = rounds lived across all sessions
	base  int // session round r ↔ age round base + r

	aliveListening int
	aliveInformed  int
	dead           int

	// Aggregate per-state usage, kept as exact integer event/node-round
	// counters (the cost products are taken at Report time). Integer
	// accumulation is what lets AdvanceIdle settle a skipped span of rounds
	// in one multiplication while staying bit-identical to the
	// round-by-round engine for ANY cost table.
	txEvents, rxEvents                int64
	listenNodeRounds, sleepNodeRounds int64

	firstDeath, halfDeath, partition int // age rounds; -1 until reached

	bfsSeen  []bool
	bfsQueue []graph.NodeID
	bfsRow   []graph.NodeID // out-row buffer for implicit graphs
}

// NewState returns an empty state; Start sizes it.
func NewState() *State { return &State{} }

// Start resets the state for a fresh session of n nodes under spec. It
// reuses prior storage when capacities suffice, so a scratch-held state
// costs nothing steady-state across trials.
func (st *State) Start(spec Spec, n int) {
	if err := spec.Model.validate(); err != nil {
		panic(err)
	}
	if n < 1 {
		panic("energy: state needs n >= 1")
	}
	if spec.Budgets != nil && len(spec.Budgets) != n {
		panic(fmt.Sprintf("energy: %d per-node budgets for an %d-node session", len(spec.Budgets), n))
	}
	if spec.Budget < 0 {
		panic("energy: negative budget")
	}
	st.model = spec.Model
	st.n = n
	st.deadReceive = spec.DeadReceive
	st.trackPartition = spec.TrackPartition
	st.limited = spec.Budgets != nil || (spec.Budget > 0 && !math.IsInf(spec.Budget, 1))

	st.hasSched = false
	if spec.Schedule != nil {
		if err := spec.Schedule.validate(); err != nil {
			panic(err)
		}
		if spec.Schedule.active() {
			st.sched = *spec.Schedule
			st.hasSched = true
			st.listenPhase = grow64(st.listenPhase, st.sched.Period)
			for c := range st.listenPhase {
				st.listenPhase[c] = 0
			}
			for v := 0; v < n; v++ {
				st.listenPhase[st.sched.classOf(graph.NodeID(v))]++
			}
		}
	}

	st.spent = growF(st.spent, n)
	st.anchor = grow32(st.anchor, n)
	st.status = growU8(st.status, n)
	for i := 0; i < n; i++ {
		st.spent[i] = 0
		st.anchor[i] = 0
		st.status[i] = statusListening
	}
	if st.limited {
		st.budget = growF(st.budget, n)
		if spec.Budgets != nil {
			for i, b := range spec.Budgets {
				if b <= 0 {
					panic(fmt.Sprintf("energy: non-positive budget %g for node %d", b, i))
				}
				st.budget[i] = b
			}
		} else {
			for i := range st.budget {
				st.budget[i] = spec.Budget
			}
		}
		st.key = grow64(st.key, n)
		st.heap = grow32(st.heap, n)
		st.pos = grow32(st.pos, n)
		for v := 0; v < n; v++ {
			st.key[v] = st.predictKey(graph.NodeID(v))
			st.heap[v] = int32(v)
			st.pos[v] = int32(v)
		}
		for i := n/2 - 1; i >= 0; i-- {
			st.siftDown(i)
		}
	}
	if st.trackPartition && len(st.bfsSeen) < n {
		// Sized here so CheckPartition stays allocation-free in the round
		// loop.
		st.bfsSeen = make([]bool, n)
		st.bfsQueue = make([]graph.NodeID, 0, n)
	}
	st.round, st.base = 0, 0
	st.aliveListening, st.aliveInformed, st.dead = n, 0, 0
	st.txEvents, st.rxEvents, st.listenNodeRounds, st.sleepNodeRounds = 0, 0, 0, 0
	st.firstDeath, st.halfDeath, st.partition = -1, -1, -1
}

// Rebase readies a persistent state for the next session (campaign): spends
// are folded to the current round, every surviving node goes back to
// listening (a new message is about to circulate), and the session round
// clock re-anchors so the next session's round 1 continues the age clock.
func (st *State) Rebase() {
	for v := 0; v < st.n; v++ {
		if st.status[v] == statusDead {
			continue
		}
		st.fold(graph.NodeID(v), st.round)
		if st.status[v] == statusInformed {
			st.status[v] = statusListening
			st.aliveInformed--
			st.aliveListening++
			st.noteListenEnter(graph.NodeID(v))
		}
		if st.limited {
			st.key[v] = st.predictKey(graph.NodeID(v))
		}
	}
	if st.limited {
		for i := st.n/2 - 1; i >= 0; i-- {
			st.siftDown(i)
		}
	}
	st.base = st.round
}

// N returns the node count the state was started for.
func (st *State) N() int { return st.n }

// Alive reports whether node v still has charge.
func (st *State) Alive(v graph.NodeID) bool { return st.status[v] != statusDead }

// AliveCount returns the number of non-depleted nodes.
func (st *State) AliveCount() int { return st.n - st.dead }

// DeadCount returns the number of depleted nodes.
func (st *State) DeadCount() int { return st.dead }

// DeadReceive reports whether depleted nodes may still receive.
func (st *State) DeadReceive() bool { return st.deadReceive }

// TrackPartition reports whether partition detection is enabled.
func (st *State) TrackPartition() bool { return st.trackPartition }

// PartitionRecorded reports whether the partition round has been found.
func (st *State) PartitionRecorded() bool { return st.partition >= 0 }

// Remaining returns node v's residual charge, clamped at 0 (+Inf when the
// budget is unlimited).
func (st *State) Remaining(v graph.NodeID) float64 {
	if !st.limited {
		return math.Inf(1)
	}
	r := st.budget[v] - st.spendAt(v, st.round)
	if r < 0 {
		r = 0
	}
	return r
}

// NoteInformed records that node v holds the message from the start (the
// broadcast source, or every pre-informed node of a resumed session): no
// receive cost, but from the next round on v sleeps instead of listening.
// No-op for depleted nodes.
func (st *State) NoteInformed(v graph.NodeID, sessionRound int) {
	if st.status[v] != statusListening {
		return
	}
	st.fold(v, st.base+sessionRound)
	st.noteListenExit(v)
	st.status[v] = statusInformed
	st.aliveListening--
	st.aliveInformed++
	if st.limited {
		st.fixKey(v)
	}
}

// noteListenExit / noteListenEnter maintain the schedule's phase-class
// populations across listening-status transitions. No-ops without a
// schedule. Call while v's status is still statusListening (exit) or
// just after it became statusListening (enter).
func (st *State) noteListenExit(v graph.NodeID) {
	if st.hasSched {
		st.listenPhase[st.sched.classOf(v)]--
	}
}

func (st *State) noteListenEnter(v graph.NodeID) {
	if st.hasSched {
		st.listenPhase[st.sched.classOf(v)]++
	}
}

// Scheduled reports whether a listener duty-cycle schedule is active.
func (st *State) Scheduled() bool { return st.hasSched }

// AwakeAt reports whether the listening radio of node v is awake in the
// given session round (always true without an active schedule). Informed
// and dead nodes are governed by the protocol and depletion, not by this.
func (st *State) AwakeAt(v graph.NodeID, sessionRound int) bool {
	if !st.hasSched {
		return true
	}
	return st.sched.awakeAt(st.sched.classOf(v), st.base+sessionRound)
}

// FilterAwake drops receivers whose radio is duty-cycled asleep in the
// given session round, in place, preserving order. The engine applies it
// to the delivered list so a sleeping listener misses the message (and
// keeps paying Sleep, not Rx).
func (st *State) FilterAwake(list []graph.NodeID, sessionRound int) []graph.NodeID {
	if !st.hasSched {
		return list
	}
	age := st.base + sessionRound
	out := list[:0]
	for _, v := range list {
		if st.sched.awakeAt(st.sched.classOf(v), age) {
			out = append(out, v)
		}
	}
	return out
}

// FilterAlive drops depleted nodes from list in place, preserving order,
// and returns the shortened slice.
func (st *State) FilterAlive(list []graph.NodeID) []graph.NodeID {
	out := list[:0]
	for _, v := range list {
		if st.status[v] != statusDead {
			out = append(out, v)
		}
	}
	return out
}

// EndRound settles the accounting of one simulated round: transmitters
// (already filtered to alive nodes, all informed) pay Tx, first-time
// receivers pay Rx and switch to the informed/sleeping regime, every other
// alive node pays Listen or Sleep by status, and depletions are detected.
// Returns the number of nodes that died at the end of this round.
//
// Call exactly once per simulated round, with session rounds advancing by
// one (the engine's round loop does): the aggregate listen/sleep totals
// accrue one round per call.
func (st *State) EndRound(sessionRound int, transmitters, delivered []graph.NodeID) (newDeaths int) {
	age := st.base + sessionRound
	st.round = age

	// txInf counts transmitters in the informed regime — in a conforming
	// protocol all of them, but the accounting stays consistent even for a
	// transmitter the engine was handed outside the informed list.
	txInf := 0
	for _, v := range transmitters {
		if st.status[v] == statusInformed {
			txInf++
		}
		st.charge(v, age, st.model.Tx)
	}
	listenersBefore := st.aliveListening
	sleepersBefore := st.aliveInformed - txInf
	// Under a duty-cycle schedule only the AWAKE listeners pay Listen this
	// round; the asleep ones pay Sleep. Receivers were necessarily awake
	// (the engine vetoes deliveries to sleeping listeners), so they, like
	// any listening transmitter, come out of the awake share.
	awakeBefore := listenersBefore
	if st.hasSched {
		awakeBefore = st.awakeListenersAt(age)
	}
	rx := 0
	for _, v := range delivered {
		if st.status[v] == statusDead {
			continue // DeadReceive mode: an informed corpse pays nothing
		}
		rx++
		st.charge(v, age, st.model.Rx)
		st.noteListenExit(v)
		st.status[v] = statusInformed
		st.aliveListening--
		st.aliveInformed++
		if st.limited {
			st.fixKey(v) // the passive rate just dropped to Sleep
		}
	}

	st.txEvents += int64(len(transmitters))
	st.rxEvents += int64(rx)
	st.listenNodeRounds += int64(awakeBefore - rx - (len(transmitters) - txInf))
	st.sleepNodeRounds += int64(sleepersBefore) + int64(listenersBefore-awakeBefore)

	if st.limited {
		newDeaths = st.sweepDeaths(age)
	}
	return newDeaths
}

// Limited reports whether any battery budget is finite (without budgets
// nothing ever depletes and the death heap is absent).
func (st *State) Limited() bool { return st.limited }

// NextPassiveDeathSession returns the session round at whose end the next
// spontaneous (passive-drain) depletion is predicted, or math.MaxInt when
// none is. Predictions can be conservative (early) when a node's drain rate
// dropped since they were made; they are never later than the detection
// round the round-by-round engine would use, because both run on the same
// heap. The engine uses this to bound silent-round skips.
func (st *State) NextPassiveDeathSession() int {
	if !st.limited {
		return math.MaxInt
	}
	k := st.key[st.heap[0]]
	if k >= neverRound {
		return math.MaxInt
	}
	return int(k) - st.base
}

// AdvanceIdle settles a span of idle session rounds [fromSession,
// toSession] in which no node transmitted or received anything: every alive
// node pays its passive rate (Listen while uninformed, Sleep once informed)
// for each round of the span, and spontaneous depletions are detected at
// the end of their exact round, identically to calling EndRound once per
// round with empty event lists. The aggregate node-round counters advance
// in O(1) per death-free stretch; deaths segment the span. Returns the
// total deaths in the span.
func (st *State) AdvanceIdle(fromSession, toSession int) (deaths int) {
	cur := st.base + fromSession - 1 // settled through this age round
	end := st.base + toSession
	for cur < end {
		next := end
		if st.limited {
			if k := st.key[st.heap[0]]; k < int64(next) {
				if k <= int64(cur) {
					next = cur + 1 // stale-low prediction: resolve it round by round
				} else {
					next = int(k)
				}
			}
		}
		span := int64(next - cur)
		if st.hasSched {
			// Listen node-rounds over the span, per phase class: awakeIn is
			// a closed form, so spans settle exactly no matter how many
			// wake/sleep boundaries they cross. Asleep listener rounds pay
			// Sleep alongside the informed sleepers.
			var awake int64
			for c, cnt := range st.listenPhase {
				if cnt != 0 {
					awake += cnt * st.sched.awakeIn(c, cur+1, next)
				}
			}
			st.listenNodeRounds += awake
			st.sleepNodeRounds += int64(st.aliveInformed)*span +
				int64(st.aliveListening)*span - awake
		} else {
			st.listenNodeRounds += int64(st.aliveListening) * span
			st.sleepNodeRounds += int64(st.aliveInformed) * span
		}
		cur = next
		st.round = cur
		if st.limited {
			deaths += st.sweepDeaths(cur)
		}
	}
	return deaths
}

// CheckPartition tests whether the alive nodes still form one mutually
// reachable component on g and records the partition round if not. Call
// after a round that had deaths; no-ops once recorded or when fewer than
// two nodes remain.
func (st *State) CheckPartition(g graph.Implicit, sessionRound int) {
	if !st.trackPartition || st.partition >= 0 || st.n-st.dead < 2 {
		return
	}
	dg, _ := g.(*graph.Digraph)
	seen := st.bfsSeen[:st.n]
	clear(seen)
	var root graph.NodeID = -1
	for v := 0; v < st.n; v++ {
		if st.status[v] != statusDead {
			root = graph.NodeID(v)
			break
		}
	}
	queue := st.bfsQueue[:0]
	queue = append(queue, root)
	seen[root] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		var row []graph.NodeID
		if dg != nil {
			row = dg.Out(u)
		} else {
			st.bfsRow = g.AppendOut(u, st.bfsRow[:0])
			row = st.bfsRow
		}
		for _, w := range row {
			if !seen[w] && st.status[w] != statusDead {
				seen[w] = true
				reached++
				queue = append(queue, w)
			}
		}
	}
	st.bfsQueue = queue[:0]
	if reached < st.n-st.dead {
		st.partition = st.base + sessionRound
	}
}

// Report snapshots the accounting into a fresh Report (the only allocating
// read path; call once per Run, like Result.PerNodeTx).
func (st *State) Report() *Report {
	rep := &Report{
		Model:           st.model,
		TxEnergy:        st.model.Tx * float64(st.txEvents),
		RxEnergy:        st.model.Rx * float64(st.rxEvents),
		ListenEnergy:    st.model.Listen * float64(st.listenNodeRounds),
		SleepEnergy:     st.model.Sleep * float64(st.sleepNodeRounds),
		DeadCount:       st.dead,
		FirstDeathRound: st.firstDeath,
		HalfDeathRound:  st.halfDeath,
		PartitionRound:  st.partition,
		Spent:           make([]float64, st.n),
	}
	for v := 0; v < st.n; v++ {
		rep.Spent[v] = st.spendAt(graph.NodeID(v), st.round)
	}
	if st.limited {
		rep.Residual = make([]float64, st.n)
		for v := range rep.Residual {
			r := st.budget[v] - rep.Spent[v]
			if r < 0 {
				r = 0
			}
			rep.Residual[v] = r
		}
	}
	return rep
}

// --- lazy per-node accounting ---

// rate returns v's passive per-round drain under its current status
// (schedule-free; scheduled listeners go through passiveSpend).
func (st *State) rate(v graph.NodeID) float64 {
	switch st.status[v] {
	case statusListening:
		return st.model.Listen
	case statusInformed:
		return st.model.Sleep
	}
	return 0
}

// awakeListenersAt returns the number of alive listening nodes awake in age
// round `age` under the active schedule: Σ over phase classes, O(Period).
func (st *State) awakeListenersAt(age int) int {
	var awake int64
	for c, cnt := range st.listenPhase {
		if cnt != 0 && st.sched.awakeAt(c, age) {
			awake += cnt
		}
	}
	return int(awake)
}

// passiveSpend returns v's passive drain over age rounds [from, to] under
// its current status: constant-rate, except for a duty-cycled listener,
// whose awake rounds (Listen) and asleep rounds (Sleep) are counted in
// closed form.
func (st *State) passiveSpend(v graph.NodeID, from, to int) float64 {
	d := to - from + 1
	if d <= 0 {
		return 0
	}
	if st.hasSched && st.status[v] == statusListening {
		aw := st.sched.awakeIn(st.sched.classOf(v), from, to)
		return st.model.Listen*float64(aw) + st.model.Sleep*float64(int64(d)-aw)
	}
	return st.rate(v) * float64(d)
}

// fold materialises v's passive drain through age round `through`.
func (st *State) fold(v graph.NodeID, through int) {
	if through > int(st.anchor[v]) {
		st.spent[v] += st.passiveSpend(v, int(st.anchor[v])+1, through)
		st.anchor[v] = int32(through)
	}
}

// spendAt returns v's cumulative spend through age round `age` without
// mutating state.
func (st *State) spendAt(v graph.NodeID, age int) float64 {
	if age <= int(st.anchor[v]) {
		return st.spent[v]
	}
	return st.spent[v] + st.passiveSpend(v, int(st.anchor[v])+1, age)
}

// charge bills v for an active round (transmit or receive): passive rounds
// up to age-1 at the current status's rate, then the event cost for round
// age. The caller adjusts status and population counts afterwards.
func (st *State) charge(v graph.NodeID, age int, cost float64) {
	st.fold(v, age-1)
	st.spent[v] += cost
	st.anchor[v] = int32(age)
	if st.limited {
		st.fixKey(v)
	}
}

// --- depletion detection ---

// predictKey returns the age round at whose end v's passive drain alone
// reaches its budget (neverRound when it cannot). Predictions may be off by
// float rounding; sweepDeaths verifies before killing.
func (st *State) predictKey(v graph.NodeID) int64 {
	if st.status[v] == statusDead {
		return neverRound
	}
	left := st.budget[v] - depleteEps - st.spent[v]
	if left <= 0 {
		return int64(st.anchor[v])
	}
	if st.hasSched && st.status[v] == statusListening {
		return st.predictScheduled(v, left)
	}
	rho := st.rate(v)
	if rho <= 0 {
		return neverRound
	}
	k := math.Ceil(left / rho)
	if k > float64(neverRound)/2 {
		return neverRound
	}
	return int64(st.anchor[v]) + int64(k)
}

// predictScheduled inverts a duty-cycled listener's periodic drain: any
// Period consecutive rounds cost exactly cyc = Listen·On + Sleep·(Period-On),
// so jump whole cycles to just below the budget and walk the remaining
// <= 2 cycles round by round (O(Period), exact). The fallback return after
// the walk bound is conservative-early, which sweepDeaths tolerates.
func (st *State) predictScheduled(v graph.NodeID, left float64) int64 {
	p := &st.sched
	cyc := st.model.Listen*float64(p.On) + st.model.Sleep*float64(p.Period-p.On)
	if cyc <= 0 {
		return neverRound
	}
	full := math.Floor(left/cyc) - 1
	if full < 0 {
		full = 0
	}
	if full > float64(neverRound)/2/float64(p.Period) {
		return neverRound
	}
	c := p.classOf(v)
	r := int64(st.anchor[v]) + int64(full)*int64(p.Period)
	acc := full * cyc
	for i := 0; i < 3*p.Period+2; i++ {
		r++
		if p.awakeAt(c, int(r)) {
			acc += st.model.Listen
		} else {
			acc += st.model.Sleep
		}
		if acc >= left {
			return r
		}
	}
	return r
}

// sweepDeaths retires every node whose spend reached its budget by the end
// of age round `age`. Deaths take effect at the round's end: the dying
// node's round-age activity already happened and was charged.
func (st *State) sweepDeaths(age int) (deaths int) {
	for st.key[st.heap[0]] <= int64(age) {
		v := graph.NodeID(st.heap[0])
		if st.spendAt(v, age) >= st.budget[v]-depleteEps {
			st.kill(v, age)
			deaths++
			continue
		}
		// Stale prediction (the node's rate dropped since the push, or float
		// slack): re-predict, never earlier than the next round so the sweep
		// always progresses.
		nk := st.predictKey(v)
		if nk <= int64(age) {
			nk = int64(age) + 1
		}
		st.key[v] = nk
		st.siftDown(int(st.pos[v]))
	}
	return deaths
}

// kill retires v at the end of age round `age`.
func (st *State) kill(v graph.NodeID, age int) {
	st.fold(v, age)
	if st.status[v] == statusListening {
		st.aliveListening--
		st.noteListenExit(v)
	} else {
		st.aliveInformed--
	}
	st.status[v] = statusDead
	st.dead++
	if st.firstDeath < 0 {
		st.firstDeath = age
	}
	if st.halfDeath < 0 && 2*st.dead >= st.n {
		st.halfDeath = age
	}
	st.key[v] = neverRound
	st.siftDown(int(st.pos[v]))
}

// --- indexed min-heap over predicted death rounds ---

func (st *State) heapLess(i, j int) bool { return st.key[st.heap[i]] < st.key[st.heap[j]] }

func (st *State) heapSwap(i, j int) {
	st.heap[i], st.heap[j] = st.heap[j], st.heap[i]
	st.pos[st.heap[i]] = int32(i)
	st.pos[st.heap[j]] = int32(j)
}

func (st *State) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !st.heapLess(i, p) {
			return
		}
		st.heapSwap(i, p)
		i = p
	}
}

func (st *State) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < st.n && st.heapLess(l, s) {
			s = l
		}
		if r < st.n && st.heapLess(r, s) {
			s = r
		}
		if s == i {
			return
		}
		st.heapSwap(i, s)
		i = s
	}
}

// fixKey re-predicts v's death round and restores the heap invariant.
func (st *State) fixKey(v graph.NodeID) {
	st.key[v] = st.predictKey(v)
	st.siftUp(int(st.pos[v]))
	st.siftDown(int(st.pos[v]))
}

// --- storage growth helpers (reuse capacity across Start calls) ---

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func grow64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}
