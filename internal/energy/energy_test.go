package energy

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// binModel uses binary-exact costs so the lazy rate·rounds accounting and a
// naive per-round summation agree bit for bit.
func binModel() Model { return Model{Tx: 1, Rx: 0.5, Listen: 0.25, Sleep: 0.125} }

func idleRounds(st *State, rounds int) {
	for r := 1; r <= rounds; r++ {
		st.EndRound(r, nil, nil)
	}
}

func TestListenDrainKillsUninformedNodes(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: Model{Listen: 0.25}, Budget: 1}, 4)
	for r := 1; r <= 3; r++ {
		if d := st.EndRound(r, nil, nil); d != 0 {
			t.Fatalf("round %d: %d premature deaths", r, d)
		}
	}
	if d := st.EndRound(4, nil, nil); d != 4 {
		t.Fatalf("round 4: got %d deaths, want 4 (0.25 × 4 rounds = budget)", d)
	}
	rep := st.Report()
	if rep.FirstDeathRound != 4 || rep.HalfDeathRound != 4 || rep.DeadCount != 4 {
		t.Fatalf("lifetime marks = (%d, %d, dead %d), want (4, 4, 4)",
			rep.FirstDeathRound, rep.HalfDeathRound, rep.DeadCount)
	}
	if rep.ListenEnergy != 4 || rep.TotalEnergy() != 4 {
		t.Fatalf("listen energy %g (total %g), want 4", rep.ListenEnergy, rep.TotalEnergy())
	}
	for v, s := range rep.Spent {
		if s != 1 || rep.Residual[v] != 0 {
			t.Fatalf("node %d: spent %g residual %g, want 1 and 0", v, s, rep.Residual[v])
		}
	}
	if st.AliveCount() != 0 {
		t.Fatalf("alive count %d after network death", st.AliveCount())
	}
}

func TestInformedNodesSleepAtTheirOwnRate(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: Model{Listen: 0.25, Sleep: 0.125}, Budget: 1}, 4)
	st.NoteInformed(0, 0) // the source: sleeps from round 1 on, no rx cost
	deaths := 0
	for r := 1; r <= 4; r++ {
		deaths += st.EndRound(r, nil, nil)
	}
	if deaths != 3 {
		t.Fatalf("through round 4: got %d deaths, want the 3 listeners", deaths)
	}
	if !st.Alive(0) || st.AliveCount() != 1 {
		t.Fatal("sleeping source should outlive the listeners")
	}
	deaths = 0
	for r := 5; r <= 8; r++ {
		deaths += st.EndRound(r, nil, nil)
	}
	if deaths != 1 {
		t.Fatalf("rounds 5-8: got %d deaths, want the source (0.125 × 8 = budget)", deaths)
	}
	rep := st.Report()
	if rep.FirstDeathRound != 4 || rep.HalfDeathRound != 4 {
		t.Fatalf("lifetime marks (%d, %d), want (4, 4)", rep.FirstDeathRound, rep.HalfDeathRound)
	}
	if rep.SleepEnergy != 1 || rep.ListenEnergy != 3 {
		t.Fatalf("energy split sleep %g listen %g, want 1 and 3", rep.SleepEnergy, rep.ListenEnergy)
	}
}

func TestTransmitOverdrawAndFilterAlive(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: Model{Tx: 1}, Budget: 2.5}, 3)
	st.NoteInformed(0, 0)
	txs := []graph.NodeID{0}
	for r := 1; r <= 2; r++ {
		if d := st.EndRound(r, txs, nil); d != 0 {
			t.Fatalf("round %d: premature death", r)
		}
	}
	if d := st.EndRound(3, txs, nil); d != 1 {
		t.Fatal("third transmission should overdraw the 2.5-unit battery")
	}
	rep := st.Report()
	if rep.Spent[0] != 3 || rep.Residual[0] != 0 {
		t.Fatalf("overdrawn node: spent %g residual %g, want 3 and 0 (clamped)", rep.Spent[0], rep.Residual[0])
	}
	if rep.TxEnergy != 3 {
		t.Fatalf("tx energy %g, want 3", rep.TxEnergy)
	}
	if got := st.FilterAlive([]graph.NodeID{0, 1, 2}); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("FilterAlive = %v, want [1 2]", got)
	}
}

func TestReceiveChargesAndSwitchesToSleep(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: binModel(), Budget: 100}, 2)
	st.NoteInformed(0, 0)
	st.EndRound(1, nil, nil)
	st.EndRound(2, nil, []graph.NodeID{1}) // node 1 decodes in round 2
	idleRounds := 3
	for r := 3; r < 3+idleRounds; r++ {
		st.EndRound(r, nil, nil)
	}
	rep := st.Report()
	// Node 1: listened round 1 (0.25), received round 2 (0.5), slept 3 rounds
	// (0.375).
	if want := 0.25 + 0.5 + 3*0.125; rep.Spent[1] != want {
		t.Fatalf("receiver spent %g, want %g", rep.Spent[1], want)
	}
	// Node 0: slept all 5 rounds.
	if want := 5 * 0.125; rep.Spent[0] != want {
		t.Fatalf("source spent %g, want %g", rep.Spent[0], want)
	}
	if rep.RxEnergy != 0.5 {
		t.Fatalf("rx energy %g, want 0.5", rep.RxEnergy)
	}
}

func TestUnlimitedBudgetMetersOnly(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: binModel()}, 8)
	st.NoteInformed(0, 0)
	idleRounds(st, 10000)
	if st.DeadCount() != 0 {
		t.Fatal("unlimited budget must never deplete")
	}
	if !math.IsInf(st.Remaining(3), 1) {
		t.Fatal("Remaining should be +Inf when unlimited")
	}
	rep := st.Report()
	if rep.Residual != nil {
		t.Fatal("Report.Residual must be nil when unlimited")
	}
	if want := 7 * 10000 * 0.25; rep.ListenEnergy != want {
		t.Fatalf("listen energy %g, want %g", rep.ListenEnergy, want)
	}
}

func TestRebaseContinuesAgeAndResetsInformedStatus(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: Model{Listen: 0.25, Sleep: 0.125}, Budget: 4}, 2)
	st.NoteInformed(0, 0)
	idleRounds(st, 4) // node 0 slept 4 (0.5), node 1 listened 4 (1.0)

	st.Rebase() // new campaign: both back to listening
	st.NoteInformed(1, 0)
	// Session rounds restart at 1; ages continue at 5, 6, ...
	for r := 1; r <= 12; r++ {
		st.EndRound(r, nil, nil)
	}
	rep := st.Report()
	// Node 1: 4 rounds listening (1.0) + 12 rounds sleeping (1.5) = 2.5.
	if rep.Spent[1] != 2.5 {
		t.Fatalf("node 1 spent %g, want 2.5", rep.Spent[1])
	}
	// Node 0: 4 rounds sleeping (0.5) + 12 rounds listening (3.0) = 3.5.
	if rep.Spent[0] != 3.5 {
		t.Fatalf("node 0 spent %g, want 3.5", rep.Spent[0])
	}
	if rep.DeadCount != 0 {
		t.Fatal("nobody should have died yet")
	}
	// Node 0 has 0.5 left listening at 0.25: dies at age 18 = session round 14.
	st.EndRound(13, nil, nil)
	if d := st.EndRound(14, nil, nil); d != 1 {
		t.Fatal("node 0 should deplete at session round 14 (age 18)")
	}
	if got := st.Report().FirstDeathRound; got != 18 {
		t.Fatalf("first-death age %d, want 18", got)
	}
}

func TestPartitionDetection(t *testing.T) {
	// Path 0-1-2-3-4; node 2's battery is the bottleneck. When it dies the
	// alive nodes {0,1} and {3,4} split.
	g := graph.Path(5)
	st := NewState()
	st.Start(Spec{
		Model:          Model{Listen: 0.25},
		Budgets:        []float64{100, 100, 1, 100, 100},
		TrackPartition: true,
	}, 5)
	for r := 1; r <= 10; r++ {
		d := st.EndRound(r, nil, nil)
		if d > 0 {
			st.CheckPartition(g, r)
		}
	}
	rep := st.Report()
	if rep.FirstDeathRound != 4 {
		t.Fatalf("first death at %d, want 4", rep.FirstDeathRound)
	}
	if rep.PartitionRound != 4 {
		t.Fatalf("partition at %d, want 4 (node 2's death splits the path)", rep.PartitionRound)
	}
	if rep.HalfDeathRound != -1 {
		t.Fatal("half-death should not be reached")
	}
}

// TestStateMatchesNaiveReference fuzzes the lazy-fold + death-heap machinery
// against a straightforward per-round accounting on random event streams.
// Binary-exact costs make the comparison exact, including death rounds.
func TestStateMatchesNaiveReference(t *testing.T) {
	const n = 64
	const rounds = 400
	m := binModel()
	r := rng.New(0xeeee)

	for trial := 0; trial < 20; trial++ {
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = float64(1+r.Intn(24)) * 0.25
		}
		st := NewState()
		st.Start(Spec{Model: m, Budgets: budgets}, n)

		// Naive mirror.
		spent := make([]float64, n)
		informed := make([]bool, n)
		dead := make([]bool, n)
		naiveFirst, naiveHalf := -1, -1
		naiveDead := 0

		st.NoteInformed(0, 0)
		informed[0] = true

		var txs, delivered []graph.NodeID
		for round := 1; round <= rounds; round++ {
			txs, delivered = txs[:0], delivered[:0]
			for v := 0; v < n; v++ {
				if dead[v] {
					continue
				}
				if informed[v] {
					if r.Float64() < 0.15 {
						txs = append(txs, graph.NodeID(v))
					}
				} else if r.Float64() < 0.05 {
					delivered = append(delivered, graph.NodeID(v))
				}
			}
			// Engine-side filtering must agree with the naive alive view.
			if got := st.FilterAlive(append([]graph.NodeID(nil), txs...)); len(got) != len(txs) {
				t.Fatalf("trial %d round %d: FilterAlive disagrees with naive alive set", trial, round)
			}
			st.EndRound(round, txs, delivered)

			// Naive accounting: one state per node per round.
			inTx := make(map[graph.NodeID]bool, len(txs))
			for _, v := range txs {
				inTx[v] = true
			}
			inRx := make(map[graph.NodeID]bool, len(delivered))
			for _, v := range delivered {
				inRx[v] = true
			}
			for v := 0; v < n; v++ {
				if dead[v] {
					continue
				}
				switch {
				case inTx[graph.NodeID(v)]:
					spent[v] += m.Tx
				case inRx[graph.NodeID(v)]:
					spent[v] += m.Rx
				case informed[v]:
					spent[v] += m.Sleep
				default:
					spent[v] += m.Listen
				}
			}
			for _, v := range delivered {
				informed[v] = true
			}
			for v := 0; v < n; v++ {
				if !dead[v] && spent[v] >= budgets[v]-1e-9 {
					dead[v] = true
					naiveDead++
					if naiveFirst < 0 {
						naiveFirst = round
					}
					if naiveHalf < 0 && 2*naiveDead >= n {
						naiveHalf = round
					}
				}
			}
			if st.DeadCount() != naiveDead {
				t.Fatalf("trial %d round %d: dead %d, naive %d", trial, round, st.DeadCount(), naiveDead)
			}
		}

		rep := st.Report()
		for v := 0; v < n; v++ {
			if rep.Spent[v] != spent[v] {
				t.Fatalf("trial %d node %d: spent %g, naive %g", trial, v, rep.Spent[v], spent[v])
			}
			if st.Alive(graph.NodeID(v)) == dead[v] {
				t.Fatalf("trial %d node %d: liveness mismatch", trial, v)
			}
		}
		if rep.FirstDeathRound != naiveFirst || rep.HalfDeathRound != naiveHalf {
			t.Fatalf("trial %d: lifetime marks (%d, %d), naive (%d, %d)",
				trial, rep.FirstDeathRound, rep.HalfDeathRound, naiveFirst, naiveHalf)
		}
		// Cross-check the aggregate split against the per-node spends.
		sum := 0.0
		for _, s := range rep.Spent {
			sum += s
		}
		if math.Abs(sum-rep.TotalEnergy()) > 1e-6 {
			t.Fatalf("trial %d: per-node spend sum %g != state totals %g", trial, sum, rep.TotalEnergy())
		}
	}
}

// TestStartReusesStorage pins the scratch contract: a second Start on the
// same node count allocates nothing.
func TestStartReusesStorage(t *testing.T) {
	st := NewState()
	spec := Spec{Model: binModel(), Budget: 8}
	st.Start(spec, 512)
	idleRounds(st, 10)
	if allocs := testing.AllocsPerRun(50, func() {
		st.Start(spec, 512)
		st.NoteInformed(0, 0)
		st.EndRound(1, nil, nil)
	}); allocs != 0 {
		t.Fatalf("Start+round on a warm state allocates %v per run, want 0", allocs)
	}
}

// TestAdvanceIdleMatchesEndRoundLoop pins the bulk idle settlement the
// engine's silent-round skipping relies on: AdvanceIdle over a span must be
// bit-identical to calling EndRound once per round with empty event lists —
// aggregate totals, per-node spends, death rounds, lifetime marks and the
// follow-on predictions all included.
func TestAdvanceIdleMatchesEndRoundLoop(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(40)
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = 0.5 + 4*r.Float64()
		}
		spec := Spec{Model: binModel(), Budgets: budgets}

		mk := func() *State {
			st := NewState()
			st.Start(spec, n)
			// A random prefix becomes informed at round 0 (sleep drain).
			for v := 0; v < n; v++ {
				if r := v * 2654435761 % 7; r < 3 {
					st.NoteInformed(graph.NodeID(v), 0)
				}
			}
			return st
		}
		a, b := mk(), mk()

		span := 1 + r.Intn(60)
		loopDeaths := 0
		for round := 1; round <= span; round++ {
			loopDeaths += a.EndRound(round, nil, nil)
		}
		bulkDeaths := b.AdvanceIdle(1, span)

		if loopDeaths != bulkDeaths {
			t.Fatalf("trial %d: %d deaths round-by-round, %d in bulk", trial, loopDeaths, bulkDeaths)
		}
		ra, rb := a.Report(), b.Report()
		if ra.ListenEnergy != rb.ListenEnergy || ra.SleepEnergy != rb.SleepEnergy ||
			ra.TxEnergy != rb.TxEnergy || ra.RxEnergy != rb.RxEnergy ||
			ra.DeadCount != rb.DeadCount || ra.FirstDeathRound != rb.FirstDeathRound ||
			ra.HalfDeathRound != rb.HalfDeathRound {
			t.Fatalf("trial %d: reports diverge\nloop %+v\nbulk %+v", trial, ra, rb)
		}
		for v := 0; v < n; v++ {
			if ra.Spent[v] != rb.Spent[v] {
				t.Fatalf("trial %d node %d: spend %g loop vs %g bulk", trial, v, ra.Spent[v], rb.Spent[v])
			}
			if a.Alive(graph.NodeID(v)) != b.Alive(graph.NodeID(v)) {
				t.Fatalf("trial %d node %d: aliveness differs", trial, v)
			}
		}
		// Follow-on predictions must agree so later rounds stay identical.
		if an, bn := a.NextPassiveDeathSession(), b.NextPassiveDeathSession(); an != bn {
			t.Fatalf("trial %d: next predicted death %d loop vs %d bulk", trial, an, bn)
		}
	}
}

// TestNextPassiveDeathSessionUnlimited: without budgets there is no death
// heap and no predicted death.
func TestNextPassiveDeathSessionUnlimited(t *testing.T) {
	st := NewState()
	st.Start(Spec{Model: binModel()}, 4)
	if st.Limited() {
		t.Fatal("unbudgeted state reports Limited")
	}
	if got := st.NextPassiveDeathSession(); got != math.MaxInt {
		t.Fatalf("NextPassiveDeathSession = %d, want MaxInt", got)
	}
}
