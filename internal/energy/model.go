// Package energy models per-round radio power states and battery depletion
// for the simulator: the missing half of the paper's energy story. The
// paper counts transmissions only; real sensor radios burn comparable power
// *listening* (the receiver chain draws as much current as the transmitter),
// so network lifetime is governed by idle cost as much as by the transmit
// schedule — see e.g. arXiv:1501.06647 and the survey arXiv:2004.06380.
//
// The model assigns each node exactly one radio state per round:
//
//   - Transmit — the node is an (alive) scheduled transmitter this round.
//   - Receive  — the node decodes the message for the first time this round.
//   - Listen   — the node is alive and uninformed: its receiver must be on,
//     waiting for the message.
//   - Sleep    — the node is alive, already informed and not transmitting:
//     in single-message broadcast it has nothing to hear, so it powers the
//     radio down between its scheduled transmissions.
//
// Depleted nodes transmit nothing, pay nothing, and (by default) receive
// nothing. Accounting is lazy: per-node charge is folded only at state
// transitions, and spontaneous deaths (a listener running out of battery
// with no event touching it) are found by an indexed min-heap of predicted
// death rounds — so a simulated round costs O(events + deaths · log n), not
// O(n), and the engine's batch decision path keeps its sublinear rounds.
package energy

import "fmt"

// Model gives the per-round energy cost of each radio state. Units are
// arbitrary but must be consistent with the battery budgets; the presets
// normalise one transmission to cost 1.
type Model struct {
	Tx     float64 // transmit for one round
	Rx     float64 // receive (decode) for one round
	Listen float64 // idle-listen (receiver on, nothing decoded) for one round
	Sleep  float64 // radio powered down for one round
}

func (m Model) validate() error {
	if m.Tx < 0 || m.Rx < 0 || m.Listen < 0 || m.Sleep < 0 {
		return fmt.Errorf("energy: negative state cost in model %+v", m)
	}
	return nil
}

// UnitTx is the paper's energy measure: transmissions cost one unit each and
// every other state is free. With this model TotalEnergy == TotalTx and the
// per-node spend equals PerNodeTx.
func UnitTx() Model { return Model{Tx: 1} }

// CC2420 approximates a TI/Chipcon CC2420 802.15.4 sensor radio, normalised
// to one 0 dBm transmission round = 1 unit: TX draws 17.4 mA, the receive
// chain 18.8 mA whether or not a frame is being decoded (idle listening is
// NOT cheap — it slightly out-draws transmitting), and idle mode with the
// oscillator running 426 µA. This is the model under which listen cost
// dominates lifetime, the motivating regime for energy-efficient broadcast.
func CC2420() Model {
	return Model{Tx: 1, Rx: 18.8 / 17.4, Listen: 18.8 / 17.4, Sleep: 0.426 / 17.4}
}

// Spec configures the energy accounting of one broadcast session.
type Spec struct {
	// Model is the per-state cost table.
	Model Model
	// Budget is the uniform per-node initial charge. Zero (with Budgets nil)
	// means unlimited: the session meters energy but nothing ever depletes.
	Budget float64
	// Budgets, when non-nil, gives each node its own initial charge
	// (heterogeneous batteries). len(Budgets) must equal the session's node
	// count; every entry must be positive. The slice is copied.
	Budgets []float64
	// DeadReceive lets depleted nodes keep receiving (the paper's
	// listening-is-free semantics: a dead battery only silences the
	// transmitter). Default false: a depleted radio is off entirely.
	DeadReceive bool
	// Schedule, when non-nil, duty-cycles every listening radio (see
	// DutyCycle): an alive uninformed node is awake only in the On leading
	// rounds of each Period-round cycle (shifted by Offset, plus the node
	// id when Stagger); in asleep rounds it pays Sleep instead of Listen
	// and cannot receive — the radio engine vetoes deliveries to sleeping
	// listeners. On == Period gates nothing and is equivalent to nil.
	// Ignored on Resume (the resumed state keeps its schedule).
	Schedule *DutyCycle
	// TrackPartition records Report.PartitionRound: the first round at whose
	// end the alive nodes no longer form a single connected component
	// (reachability from the lowest-id alive node along out-edges through
	// alive nodes — exact for symmetric topologies, an upper-bound proxy for
	// asymmetric ones). Costs one O(n+m) sweep per round that has a death,
	// so it is opt-in.
	TrackPartition bool
	// Resume, when non-nil, continues an existing battery bank instead of
	// starting a fresh one — the repeated-campaign pattern: each campaign is
	// a new session (fresh protocol, new message, everyone back to
	// listening) drawing on the same persistent charge. All other fields
	// are ignored; the model and budgets are the resumed state's.
	Resume *State
}

// Report is the energy summary attached to a radio.Result. Round numbers
// are absolute over the state's whole life: within one session they equal
// session rounds, and across resumed campaigns they keep counting.
type Report struct {
	// Model echoes the cost table the run was accounted under.
	Model Model
	// Per-state energy totals over the whole network and state lifetime.
	TxEnergy, RxEnergy, ListenEnergy, SleepEnergy float64
	// Spent is the per-node cumulative energy spend.
	Spent []float64
	// Residual is the per-node remaining charge, clamped at 0 (a node's
	// final transmission may overdraw its last fraction of a unit). Nil when
	// the budget is unlimited.
	Residual []float64
	// DeadCount is the number of depleted nodes.
	DeadCount int
	// FirstDeathRound and HalfDeathRound are the network-lifetime marks: the
	// round at whose end the first node (resp. half the nodes) had depleted.
	// -1 if not reached.
	FirstDeathRound, HalfDeathRound int
	// PartitionRound is the first round at whose end the alive nodes were no
	// longer mutually connected (see Spec.TrackPartition). -1 if never
	// reached or not tracked.
	PartitionRound int
}

// TotalEnergy returns the network-wide energy consumed across all states.
func (r *Report) TotalEnergy() float64 {
	return r.TxEnergy + r.RxEnergy + r.ListenEnergy + r.SleepEnergy
}

// EnergyPerNode returns the mean per-node spend (0 for an empty report).
func (r *Report) EnergyPerNode() float64 {
	if len(r.Spent) == 0 {
		return 0
	}
	return r.TotalEnergy() / float64(len(r.Spent))
}
