package jobqueue

import (
	"io"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// Fault is one scripted misbehaviour of a FaultTransport.
type Fault int

const (
	// FaultNone passes the request through untouched.
	FaultNone Fault = iota
	// FaultDrop fails the request before it is sent, as a refused
	// connection — the daemon-is-down case. The server never sees it.
	FaultDrop
	// FaultDelay holds the request for the transport's Delay, then sends
	// it (slow network; pairs with short client timeouts).
	FaultDelay
	// FaultDupe delivers the request twice and returns the second
	// response — the retransmission that makes at-least-once delivery
	// real. The server must tolerate the duplicate.
	FaultDupe
	// FaultSever delivers the request but cuts the response body after
	// its first byte, so the caller sees a mid-body connection loss.
	FaultSever
)

// FaultTransport is an http.RoundTripper that injects scripted faults in
// front of an inner transport, for chaos-testing the client layer without
// a flaky network. Faults are consumed from the script in request order;
// past the script's end every request passes through. Safe for
// concurrent use.
type FaultTransport struct {
	// Inner handles the requests that are allowed through (default
	// http.DefaultTransport).
	Inner http.RoundTripper
	// Delay is the hold applied by FaultDelay.
	Delay time.Duration

	mu       sync.Mutex
	script   []Fault
	next     int
	requests int
}

// Push appends faults to the script.
func (t *FaultTransport) Push(fs ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.script = append(t.script, fs...)
}

// Requests returns how many round trips were attempted (dropped ones
// included).
func (t *FaultTransport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests
}

func (t *FaultTransport) take() Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	if t.next >= len(t.script) {
		return FaultNone
	}
	f := t.script[t.next]
	t.next++
	return f
}

func (t *FaultTransport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.take() {
	case FaultDrop:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case FaultDelay:
		select {
		case <-time.After(t.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case FaultDupe:
		if first, err := t.inner().RoundTrip(cloneRequest(req)); err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		req = cloneRequest(req)
	case FaultSever:
		resp, err := t.inner().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &severedBody{inner: resp.Body}
		resp.ContentLength = -1
		return resp, nil
	}
	return t.inner().RoundTrip(req)
}

// cloneRequest makes the request resendable: bodies built by
// http.NewRequest from a bytes.Reader carry GetBody.
func cloneRequest(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			c.Body = body
		}
	}
	return c
}

// severedBody yields one byte then fails like a connection cut mid-read.
type severedBody struct {
	inner io.ReadCloser
	read  bool
}

func (s *severedBody) Read(p []byte) (int, error) {
	if s.read {
		return 0, io.ErrUnexpectedEOF
	}
	s.read = true
	if len(p) > 1 {
		p = p[:1]
	}
	n, err := s.inner.Read(p)
	if err != nil {
		return n, err
	}
	return n, nil
}

func (s *severedBody) Close() error { return s.inner.Close() }
