package jobqueue

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/campaign"
)

// Client speaks the campaignd HTTP API (see Server for the endpoint map).
// It is used by the worker loop, by campaignctl, and by tests.
type Client struct {
	// Base is the daemon URL, e.g. "http://127.0.0.1:8655".
	Base string
	// HTTP is the transport (default: a client with a 30s timeout).
	HTTP *http.Client
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one JSON round trip. A nil in sends no body; a nil out discards
// the response body. 204 yields (false, nil) so callers can distinguish
// "no content" without an error.
func (c *Client) do(method, path string, in, out any) (bool, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return false, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return false, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return false, fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return false, fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("%s %s: decode response: %w", method, path, err)
		}
	}
	return true, nil
}

// Submit submits a campaign spec and returns its initial status.
func (c *Client) Submit(spec JobSpec) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do("POST", "/api/v1/campaigns", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches one job's live status.
func (c *Client) Status(jobID string) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do("GET", "/api/v1/campaigns/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if _, err := c.do("GET", "/api/v1/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// ManifestOf fetches a job's current failure manifest.
func (c *Client) ManifestOf(jobID string) (*Manifest, error) {
	var m Manifest
	if _, err := c.do("GET", "/api/v1/campaigns/"+jobID+"/manifest", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Records streams a job's JSONL record file into w.
func (c *Client) Records(jobID string, w io.Writer) error {
	resp, err := c.httpClient().Get(c.Base + "/api/v1/campaigns/" + jobID + "/records")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET records: HTTP %d", resp.StatusCode)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Register announces a worker and returns the daemon's cadences.
func (c *Client) Register(workerID string) (*RegisterInfo, error) {
	var info RegisterInfo
	req := map[string]string{"id": workerID}
	if _, err := c.do("POST", "/api/v1/workers/register", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Heartbeat marks the worker live (and renews its leases).
func (c *Client) Heartbeat(workerID string) error {
	req := map[string]string{"id": workerID}
	_, err := c.do("POST", "/api/v1/workers/heartbeat", req, nil)
	return err
}

// Acquire asks for the next lease; (nil, nil) when nothing is runnable.
func (c *Client) Acquire(workerID string) (*Lease, error) {
	var l Lease
	ok, err := c.do("POST", "/api/v1/lease", map[string]string{"worker": workerID}, &l)
	if err != nil || !ok {
		return nil, err
	}
	return &l, nil
}

// Complete reports a finished point with its record.
func (c *Client) Complete(ref LeaseRef, rec *campaign.Record) error {
	req := struct {
		Lease  LeaseRef         `json:"lease"`
		Record *campaign.Record `json:"record"`
	}{ref, rec}
	_, err := c.do("POST", "/api/v1/complete", req, nil)
	return err
}

// Fail reports a point failure.
func (c *Client) Fail(ref LeaseRef, msg string) error {
	req := struct {
		Lease LeaseRef `json:"lease"`
		Error string   `json:"error"`
	}{ref, msg}
	_, err := c.do("POST", "/api/v1/fail", req, nil)
	return err
}

// Healthz checks daemon liveness.
func (c *Client) Healthz() (*Health, error) {
	var h Health
	if _, err := c.do("GET", "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
