package jobqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/campaign"
)

// RetryPolicy shapes the client's transparent retry: up to Attempts total
// tries per call, separated by the shared backoff curve. Attempts <= 1
// disables retry.
type RetryPolicy struct {
	Attempts int
	Backoff  BackoffPolicy
}

// Client speaks the campaignd HTTP API (see Server for the endpoint map).
// It is used by the worker loop, by campaignctl, and by tests.
//
// Calls take a context and retry transient failures (refused/reset
// connections, timeouts, responses severed mid-body, 5xx) under the
// Retry policy — but only for idempotent requests. Submit and Acquire
// have side effects per delivery, so they retry only when the request
// provably never reached the daemon (connection refused); everything
// else surfaces immediately with a typed *APIError the caller can branch
// on via Retryable and IsStatus.
type Client struct {
	// Base is the daemon URL, e.g. "http://127.0.0.1:8655".
	Base string
	// HTTP is the transport (default: a client with a 30s timeout). Swap
	// its Transport for a FaultTransport to chaos-test the call paths.
	HTTP *http.Client
	// Retry shapes transparent retries (NewClient defaults: 4 attempts,
	// 150ms base, 3s cap). The zero value disables retry.
	Retry RetryPolicy
}

// NewClient builds a client for the daemon at base with retry enabled.
func NewClient(base string) *Client {
	return &Client{
		Base:  base,
		HTTP:  &http.Client{Timeout: 30 * time.Second},
		Retry: RetryPolicy{Attempts: 4, Backoff: BackoffPolicy{Base: 150 * time.Millisecond, Max: 3 * time.Second}},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one JSON call with retry. A nil in sends no body; a nil out
// discards the response body. 204 yields (false, nil) so callers can
// distinguish "no content" without an error. idem marks the request safe
// to resend after an ambiguous failure.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idem bool) (bool, error) {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return false, err
		}
		payload = data
	}
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 1; ; try++ {
		ok, err := c.once(ctx, method, path, payload, out)
		if err == nil {
			return ok, nil
		}
		lastErr = err
		if ctx.Err() != nil || try >= attempts {
			break
		}
		if idem && !Retryable(err) {
			break
		}
		if !idem && !notSent(err) {
			break
		}
		if err := sleepRetry(ctx, c.Retry.Backoff.Delay(try)); err != nil {
			break
		}
	}
	return false, lastErr
}

// once is a single round trip.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) (bool, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return false, fmt.Errorf("%s %s: read response: %w", method, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Method: method, Path: path, Status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = snippet(data)
		}
		return false, apiErr
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("%s %s: decode response %q: %w", method, path, snippet(data), err)
		}
	}
	return true, nil
}

// snippet truncates a response body for inclusion in an error message.
func snippet(data []byte) string {
	const max = 200
	s := string(bytes.TrimSpace(data))
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// sleepRetry waits out a backoff delay unless the context ends first.
func sleepRetry(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Submit submits a campaign spec and returns its initial status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do(ctx, "POST", "/api/v1/campaigns", spec, &st, false); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches one job's live status.
func (c *Client) Status(ctx context.Context, jobID string) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do(ctx, "GET", "/api/v1/campaigns/"+jobID, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if _, err := c.do(ctx, "GET", "/api/v1/campaigns", nil, &out, true); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// ManifestOf fetches a job's current failure manifest.
func (c *Client) ManifestOf(ctx context.Context, jobID string) (*Manifest, error) {
	var m Manifest
	if _, err := c.do(ctx, "GET", "/api/v1/campaigns/"+jobID+"/manifest", nil, &m, true); err != nil {
		return nil, err
	}
	return &m, nil
}

// Records streams a job's JSONL record file into w. The fetch retries
// like any idempotent call until the first byte is written; a stream cut
// after that surfaces as an error rather than risking duplicated output.
func (c *Client) Records(ctx context.Context, jobID string, w io.Writer) error {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 1; ; try++ {
		n, err := c.recordsOnce(ctx, jobID, w)
		if err == nil {
			return nil
		}
		lastErr = err
		if n > 0 || ctx.Err() != nil || try >= attempts || !Retryable(err) {
			break
		}
		if err := sleepRetry(ctx, c.Retry.Backoff.Delay(try)); err != nil {
			break
		}
	}
	return lastErr
}

func (c *Client) recordsOnce(ctx context.Context, jobID string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.Base+"/api/v1/campaigns/"+jobID+"/records", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		apiErr := &APIError{Method: "GET", Path: "/api/v1/campaigns/" + jobID + "/records", Status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = snippet(data)
		}
		return 0, apiErr
	}
	return io.Copy(w, resp.Body)
}

// Register announces a worker and returns the daemon's cadences.
func (c *Client) Register(ctx context.Context, workerID string) (*RegisterInfo, error) {
	var info RegisterInfo
	req := map[string]string{"id": workerID}
	if _, err := c.do(ctx, "POST", "/api/v1/workers/register", req, &info, true); err != nil {
		return nil, err
	}
	return &info, nil
}

// Heartbeat marks the worker live and renews exactly the leases it
// reports holding (held may be empty). Reporting the held set — rather
// than letting the daemon renew blindly — lets a lease whose grant
// response was lost in transit expire and requeue instead of being kept
// alive forever by a worker that never knew it had it.
func (c *Client) Heartbeat(ctx context.Context, workerID string, held []uint64) error {
	if held == nil {
		held = []uint64{}
	}
	req := struct {
		ID     string   `json:"id"`
		Leases []uint64 `json:"leases"`
	}{workerID, held}
	_, err := c.do(ctx, "POST", "/api/v1/workers/heartbeat", req, nil, true)
	return err
}

// Acquire asks for the next lease; (nil, nil) when nothing is runnable.
func (c *Client) Acquire(ctx context.Context, workerID string) (*Lease, error) {
	var l Lease
	ok, err := c.do(ctx, "POST", "/api/v1/lease", map[string]string{"worker": workerID}, &l, false)
	if err != nil || !ok {
		return nil, err
	}
	return &l, nil
}

// Complete reports a finished point with its record. Idempotent: the
// queue discards duplicate completions, so an ambiguous failure resends.
func (c *Client) Complete(ctx context.Context, ref LeaseRef, rec *campaign.Record) error {
	req := struct {
		Lease  LeaseRef         `json:"lease"`
		Record *campaign.Record `json:"record"`
	}{ref, rec}
	_, err := c.do(ctx, "POST", "/api/v1/complete", req, nil, true)
	return err
}

// Fail reports a point failure. Idempotent: the queue ignores stale
// reports, so an ambiguous failure resends.
func (c *Client) Fail(ctx context.Context, ref LeaseRef, msg string) error {
	req := struct {
		Lease LeaseRef `json:"lease"`
		Error string   `json:"error"`
	}{ref, msg}
	_, err := c.do(ctx, "POST", "/api/v1/fail", req, nil, true)
	return err
}

// Healthz checks daemon liveness.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	var h Health
	if _, err := c.do(ctx, "GET", "/healthz", nil, &h, true); err != nil {
		return nil, err
	}
	return &h, nil
}
