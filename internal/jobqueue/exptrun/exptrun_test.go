package exptrun

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/expt"
	"repro/internal/jobqueue"
)

func TestExpandAllCoversRegistry(t *testing.T) {
	pts, trials, err := Expand(jobqueue.JobSpec{Experiments: []string{"all"}, Seed: 1})
	if err != nil {
		t.Fatalf("Expand(all): %v", err)
	}
	if trials != expt.Trials(campaign.Config{}) {
		t.Fatalf("trials = %d, want the reduced-scale registry count %d", trials, expt.Trials(campaign.Config{}))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Campaign] = true
	}
	for _, e := range expt.All() {
		if !seen[e.ID] {
			t.Errorf("Expand(all) has no points for experiment %s", e.ID)
		}
	}
	if len(pts) < len(expt.All()) {
		t.Fatalf("%d points for %d experiments", len(pts), len(expt.All()))
	}
}

func TestExpandSelectionErrors(t *testing.T) {
	cases := []struct {
		name string
		ids  []string
		want string
	}{
		{"empty", nil, "selects no experiments"},
		{"unknown", []string{"ZZ99"}, "unknown experiment"},
		{"duplicate", []string{"F1", "F1"}, "listed twice"},
	}
	for _, tc := range cases {
		_, _, err := Expand(jobqueue.JobSpec{Experiments: tc.ids})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// The unknown-ID message names the valid set so a typo is self-serviceable.
	_, _, err := Expand(jobqueue.JobSpec{Experiments: []string{"ZZ99"}})
	if err == nil || !strings.Contains(err.Error(), "F1") {
		t.Errorf("unknown-ID error does not list valid IDs: %v", err)
	}
}

func TestRunPointUnknownLeaseIsVersionSkew(t *testing.T) {
	var r Runner
	if _, err := r.RunPoint(&jobqueue.Lease{Point: jobqueue.PointRef{Campaign: "ZZ99", Key: "p"}}); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Errorf("unknown experiment: %v", err)
	}
	if _, err := r.RunPoint(&jobqueue.Lease{Point: jobqueue.PointRef{Campaign: "F1", Key: "no-such-point"}}); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Errorf("unknown point: %v", err)
	}
}

// TestRunPointMatchesSingleProcessRun is the determinism contract the whole
// daemon rests on: for every F1 point, the record a leased worker computes
// must be byte-identical to the line the in-process engine streams into a
// checkpoint during an unsharded run. (F1 is analytic, so this is cheap.)
func TestRunPointMatchesSingleProcessRun(t *testing.T) {
	spec := jobqueue.JobSpec{ID: "eq", Experiments: []string{"F1"}, Seed: 321}
	pts, trials, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Truth: the PR 4 engine writing its own checkpoint.
	e, _ := expt.ByID("F1")
	ck := filepath.Join(t.TempDir(), "truth.jsonl")
	cfg := campaign.Config{Seed: spec.Seed}
	if _, err := campaign.Run([]campaign.Unit{{ID: e.ID, C: e.Campaign}}, campaign.RunOptions{
		Config: cfg, Trials: trials, Checkpoint: ck,
	}); err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	truth := map[string]string{}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	for _, ln := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec campaign.Record
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("truth checkpoint line corrupt: %v", err)
		}
		truth[rec.Campaign+"/"+rec.Point] = ln
	}

	// Distributed path: one RunPoint per lease, marshalled as the daemon
	// sink would write it.
	var r Runner
	for _, pt := range pts {
		rec, err := r.RunPoint(&jobqueue.Lease{Job: "eq", Point: pt, Spec: spec, Trials: trials})
		if err != nil {
			t.Fatalf("RunPoint(%s/%s): %v", pt.Campaign, pt.Key, err)
		}
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := truth[pt.Campaign+"/"+pt.Key]
		if !ok {
			t.Fatalf("truth checkpoint missing %s/%s", pt.Campaign, pt.Key)
		}
		if string(line) != want {
			t.Errorf("record for %s/%s differs from single-process run:\n got %s\nwant %s", pt.Campaign, pt.Key, line, want)
		}
	}
	if len(truth) != len(pts) {
		t.Fatalf("truth has %d records for %d expanded points", len(truth), len(pts))
	}
}
