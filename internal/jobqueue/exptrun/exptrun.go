// Package exptrun adapts the expt experiment registry to the jobqueue
// service: Expand turns a submitted JobSpec into its grid points (the
// daemon side), and Runner executes one leased point (the worker side).
//
// Both sides re-derive the grid independently from the registry compiled
// into their own binary, so only (campaign ID, point key, spec) crosses
// the wire — the typed point payloads (protocol constructors, topology
// specs) never need to serialise. The worker's record is bit-identical to
// what an in-process campaign.Run would have streamed for the same point,
// because both call the same Campaign.Run with the same
// campaign.PointSeed-derived seed.
package exptrun

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/expt"
	"repro/internal/jobqueue"
)

// config maps the wire spec onto the engine config. GraphMode and Channel
// ride along so daemon-side Expand and worker-side RunPoint enumerate the
// same grid.
func config(spec jobqueue.JobSpec) campaign.Config {
	return campaign.Config{Full: spec.Full, Seed: spec.Seed, Workers: spec.Workers,
		GraphMode: spec.GraphMode, Channel: spec.Channel}
}

// select resolves the spec's experiment list against the registry:
// explicit IDs, or the single element "all". Unknown IDs error with the
// valid set; duplicates error rather than silently collapsing.
func selectExperiments(spec jobqueue.JobSpec) ([]expt.Experiment, error) {
	if len(spec.Experiments) == 0 {
		return nil, fmt.Errorf("exptrun: spec selects no experiments (use [\"all\"] or explicit IDs)")
	}
	if len(spec.Experiments) == 1 && spec.Experiments[0] == "all" {
		return expt.All(), nil
	}
	var out []expt.Experiment
	seen := map[string]bool{}
	for _, id := range spec.Experiments {
		id = strings.TrimSpace(id)
		if seen[id] {
			return nil, fmt.Errorf("exptrun: experiment %q listed twice", id)
		}
		seen[id] = true
		e, ok := expt.ByID(id)
		if !ok {
			return nil, fmt.Errorf("exptrun: unknown experiment %q (valid: %s, or \"all\")", id, validIDs())
		}
		out = append(out, e)
	}
	return out, nil
}

func validIDs() string {
	var ids []string
	for _, e := range expt.All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return strings.Join(ids, " ")
}

// Expand is the jobqueue.Expander over the expt registry: it enumerates
// every selected experiment's grid for the spec's scale and returns the
// per-point trial count stamped into records.
func Expand(spec jobqueue.JobSpec) ([]jobqueue.PointRef, int, error) {
	es, err := selectExperiments(spec)
	if err != nil {
		return nil, 0, err
	}
	cfg := config(spec)
	var points []jobqueue.PointRef
	for _, e := range es {
		for _, pt := range e.Campaign.Points(cfg) {
			if pt.Key == "" {
				return nil, 0, fmt.Errorf("exptrun: experiment %s has a point with an empty key", e.ID)
			}
			points = append(points, jobqueue.PointRef{Campaign: e.ID, Key: pt.Key})
		}
	}
	return points, expt.Trials(cfg), nil
}

// Runner executes leased points against the registry.
type Runner struct{}

// RunPoint finds the leased point in the worker's own enumeration of the
// experiment grid and runs it, packaging the samples exactly as the
// in-process engine would. An unknown experiment or point key means the
// worker and daemon binaries disagree on the registry (version skew) —
// reported as a failure so the point retries elsewhere and, if no worker
// can run it, lands in the manifest instead of wedging the campaign.
func (Runner) RunPoint(l *jobqueue.Lease) (*campaign.Record, error) {
	e, ok := expt.ByID(l.Point.Campaign)
	if !ok {
		return nil, fmt.Errorf("exptrun: unknown experiment %q (worker/daemon version skew?)", l.Point.Campaign)
	}
	cfg := config(l.Spec)
	var pt *campaign.Point
	for _, p := range e.Campaign.Points(cfg) {
		if p.Key == l.Point.Key {
			pt = &p
			break
		}
	}
	if pt == nil {
		return nil, fmt.Errorf("exptrun: experiment %s has no point %q at this scale (worker/daemon version skew?)", e.ID, l.Point.Key)
	}
	seed := campaign.PointSeed(e.Campaign.SeedMode, cfg.Seed, pt.Key)
	samples := e.Campaign.Run(cfg, *pt, seed)
	return campaign.NewRecord(e.ID, *pt, cfg, l.Trials, samples), nil
}
