package jobqueue

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
)

// taskState is the lifecycle of one grid point inside a job.
type taskState int

const (
	taskPending taskState = iota
	taskLeased
	taskDone
	taskFailed
)

// qtask is the queue's view of one grid point.
type qtask struct {
	ref       PointRef
	state     taskState
	attempts  int       // leases granted so far
	notBefore time.Time // backoff gate while pending
	lease     *qlease   // current grant while leased
	lastErr   string
}

// qlease is an outstanding grant.
type qlease struct {
	id       uint64
	job      *qjob
	task     *qtask
	worker   string
	attempt  int
	deadline time.Time
	started  time.Time
}

// qjob is one submitted campaign.
type qjob struct {
	spec     JobSpec
	trials   int
	tasks    []*qtask
	byRef    map[PointRef]*qtask
	done     int
	failed   int
	requeues int
	retries  int
	dups     int
	complete bool

	sink     *campaign.Sink
	sinkPath string
	manifest string

	// completion-duration accumulator for the ETA estimate.
	compDur time.Duration
	compN   int
}

// workerInfo tracks one registered (or implicitly seen) worker.
type workerInfo struct {
	lastSeen time.Time
	leases   map[uint64]*qlease
}

// Queue is the coordination core: jobs, their point tasks, outstanding
// leases, and worker liveness. All methods are safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	opts    Options
	jobs    map[string]*qjob
	order   []string // submission order, for fair round-robin dispatch
	rr      int      // last job index served by Acquire
	workers map[string]*workerInfo
	leases  map[uint64]*qlease // current grants only
	nextID  uint64
	autoJob int

	// Durability (wal.go); wal is nil when Options.StateDir is empty.
	wal      *os.File
	walPath  string
	walSeq   uint64
	walCount int // appends since the last compaction
	draining bool
}

// NewQueue builds a queue rooted at opts.DataDir, applying defaults.
func NewQueue(opts Options) (*Queue, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("jobqueue: Options.DataDir is required")
	}
	if opts.Expand == nil {
		return nil, fmt.Errorf("jobqueue: Options.Expand is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = opts.LeaseTTL * 3 / 4
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 250 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 30 * time.Second
	}
	if opts.Jitter == nil {
		opts.Jitter = rand.Float64
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 1024
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("jobqueue: create data dir: %w", err)
	}
	q := &Queue{
		opts:    opts,
		jobs:    map[string]*qjob{},
		workers: map[string]*workerInfo{},
		leases:  map[uint64]*qlease{},
	}
	if opts.StateDir != "" {
		if err := q.openState(); err != nil {
			return nil, err
		}
		if n := len(q.jobs); n > 0 {
			q.logf("state: restored %d job(s), %d live lease(s), WAL seq %d", n, len(q.leases), q.walSeq)
		}
	}
	return q, nil
}

func (q *Queue) logf(format string, args ...any) {
	if q.opts.Log != nil {
		q.opts.Log(format, args...)
	}
}

// Submit validates and enqueues a campaign. With spec.Resume, records
// already present in the job's checkpoint (matching seed, scale and trial
// count) mark their points done without re-running; otherwise a non-empty
// checkpoint is refused so prior work is never clobbered silently.
func (q *Queue) Submit(spec JobSpec) (JobStatus, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if spec.ID == "" {
		q.autoJob++
		spec.ID = fmt.Sprintf("job-%03d", q.autoJob)
	}
	if err := validateJobID(spec.ID); err != nil {
		return JobStatus{}, err
	}
	if _, dup := q.jobs[spec.ID]; dup {
		return JobStatus{}, fmt.Errorf("jobqueue: job %q already exists", spec.ID)
	}
	points, trials, err := q.opts.Expand(spec)
	if err != nil {
		return JobStatus{}, err
	}
	if len(points) == 0 {
		return JobStatus{}, fmt.Errorf("jobqueue: job %q expands to zero grid points", spec.ID)
	}

	dir := filepath.Join(q.opts.DataDir, spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return JobStatus{}, fmt.Errorf("jobqueue: create job dir: %w", err)
	}
	j := &qjob{
		spec:     spec,
		trials:   trials,
		byRef:    map[PointRef]*qtask{},
		sinkPath: filepath.Join(dir, "records.jsonl"),
		manifest: filepath.Join(dir, "manifest.json"),
	}
	for _, ref := range points {
		if _, dup := j.byRef[ref]; dup {
			return JobStatus{}, fmt.Errorf("jobqueue: job %q: duplicate point %s/%s", spec.ID, ref.Campaign, ref.Key)
		}
		t := &qtask{ref: ref}
		j.byRef[ref] = t
		j.tasks = append(j.tasks, t)
	}

	prior := campaign.NewResultSet()
	if spec.Resume {
		rs, rep, err := campaign.RepairCheckpoint(j.sinkPath)
		if err != nil {
			return JobStatus{}, fmt.Errorf("jobqueue: resume job %q: %w", spec.ID, err)
		}
		if rep.TornTailBytes > 0 {
			q.logf("job %s: dropped torn %d-byte checkpoint tail on resume", spec.ID, rep.TornTailBytes)
		}
		prior = rs
	} else if st, err := os.Stat(j.sinkPath); err == nil && st.Size() > 0 {
		return JobStatus{}, fmt.Errorf("jobqueue: job %q checkpoint %s already holds records; submit with resume or remove it", spec.ID, j.sinkPath)
	}
	for _, t := range j.tasks {
		r, ok := prior.Lookup(t.ref.Campaign, t.ref.Key)
		if ok && recordMatches(r, t.ref, spec, trials) {
			t.state = taskDone
			j.done++
		}
	}

	sink, err := campaign.OpenSink(j.sinkPath, !spec.Resume)
	if err != nil {
		return JobStatus{}, err
	}
	j.sink = sink
	q.jobs[spec.ID] = j
	q.order = append(q.order, spec.ID)
	q.walAppend(walRecord{Type: "submit", Job: spec.ID, Spec: &spec, Trials: trials, AutoJob: q.autoJob})
	q.maybeFinish(j) // a fully resumed job is complete on arrival
	q.logf("job %s: submitted, %d points (%d resumed)", spec.ID, len(j.tasks), j.done)
	return q.status(j, false), nil
}

// recordMatches is the resume/acceptance criterion: same point identity,
// seed, scale and trial count (mirrors the campaign engine's resume check).
func recordMatches(r *campaign.Record, ref PointRef, spec JobSpec, trials int) bool {
	return r.Campaign == ref.Campaign && r.Point == ref.Key &&
		r.Seed == spec.Seed && r.Full == spec.Full && r.Trials == trials
}

// RegisterWorker announces a worker. Registration is advisory — an unknown
// worker acquiring a lease is registered implicitly — but lets /healthz
// and the status endpoints report fleet size before any lease is taken.
func (q *Queue) RegisterWorker(id string) error {
	if id == "" {
		return fmt.Errorf("jobqueue: empty worker id")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.touchWorker(id)
	return nil
}

func (q *Queue) touchWorker(id string) *workerInfo {
	w := q.workers[id]
	if w == nil {
		w = &workerInfo{leases: map[uint64]*qlease{}}
		q.workers[id] = w
	}
	w.lastSeen = q.opts.Now()
	return w
}

// Heartbeat marks the worker live and renews the deadline of every lease
// it holds. Workers that track their own leases should prefer
// HeartbeatLeases: renewing blindly keeps alive leases the worker never
// learned about (a grant whose response was lost mid-body), which would
// otherwise pin their points forever.
func (q *Queue) Heartbeat(workerID string) error {
	return q.HeartbeatLeases(workerID, nil)
}

// HeartbeatLeases marks the worker live and renews exactly the leases it
// reports holding (nil renews all of them — the legacy blind renewal; an
// empty non-nil slice renews none). A lease the daemon granted but the
// worker never heard of is deliberately NOT renewed: it runs out its
// absolute deadline and the sweeper requeues the point.
func (q *Queue) HeartbeatLeases(workerID string, held []uint64) error {
	if workerID == "" {
		return fmt.Errorf("jobqueue: empty worker id")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	w := q.touchWorker(workerID)
	deadline := w.lastSeen.Add(q.opts.LeaseTTL)
	var renewed []uint64
	if held == nil {
		for id, l := range w.leases {
			l.deadline = deadline
			renewed = append(renewed, id)
		}
	} else {
		for _, id := range held {
			if l, ok := w.leases[id]; ok {
				l.deadline = deadline
				renewed = append(renewed, id)
			}
		}
	}
	if len(renewed) > 0 {
		// Idle heartbeats change no lease state; logging only held-lease
		// renewals keeps the WAL proportional to work, not to fleet size.
		sort.Slice(renewed, func(i, j int) bool { return renewed[i] < renewed[j] })
		q.walAppend(walRecord{Type: "renew", Worker: workerID, Deadline: deadline, LastSeen: w.lastSeen, Leases: renewed})
	}
	return nil
}

// Acquire grants the next available point to the worker, round-robin
// across jobs (fair multi-tenancy) and grid-order within a job. Returns
// (nil, nil) when nothing is currently runnable — all points done, leased
// out, or waiting out a backoff.
func (q *Queue) Acquire(workerID string) (*Lease, error) {
	if workerID == "" {
		return nil, fmt.Errorf("jobqueue: empty worker id")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	w := q.touchWorker(workerID)
	if q.draining {
		return nil, nil // shutting down: let in-flight work finish, grant nothing new
	}
	now := w.lastSeen
	for i := 1; i <= len(q.order); i++ {
		j := q.jobs[q.order[(q.rr+i)%len(q.order)]]
		if j.complete {
			continue
		}
		for _, t := range j.tasks {
			if t.state != taskPending || t.notBefore.After(now) {
				continue
			}
			q.rr = (q.rr + i) % len(q.order)
			t.state = taskLeased
			t.attempts++
			q.nextID++
			l := &qlease{
				id:       q.nextID,
				job:      j,
				task:     t,
				worker:   workerID,
				attempt:  t.attempts,
				deadline: now.Add(q.opts.LeaseTTL),
				started:  now,
			}
			t.lease = l
			q.leases[l.id] = l
			w.leases[l.id] = l
			q.walAppend(walRecord{Type: "lease", Job: j.spec.ID, Point: &t.ref, Lease: l.id,
				Worker: workerID, Attempt: l.attempt, Deadline: l.deadline, Started: l.started})
			return &Lease{
				ID:       l.id,
				Job:      j.spec.ID,
				Point:    t.ref,
				Spec:     j.spec,
				Trials:   j.trials,
				Attempt:  l.attempt,
				Worker:   workerID,
				Deadline: l.deadline,
			}, nil
		}
	}
	return nil, nil
}

// Complete records a finished point. Stale leases are accepted — a worker
// that lost its lease to expiry but finished anyway delivers a record that
// is bit-identical by seed purity, and the first valid completion wins.
// Duplicate completions of an already-done point are discarded and
// counted. A record that does not match the lease's point and spec
// consumes an attempt like a reported failure: the worker is evidently not
// computing what it was asked.
func (q *Queue) Complete(ref LeaseRef, rec *campaign.Record) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ref.Worker != "" {
		q.touchWorker(ref.Worker)
	}
	j, ok := q.jobs[ref.Job]
	if !ok {
		return fmt.Errorf("jobqueue: unknown job %q", ref.Job)
	}
	t, ok := j.byRef[ref.Point]
	if !ok {
		return fmt.Errorf("jobqueue: job %q has no point %s/%s", ref.Job, ref.Point.Campaign, ref.Point.Key)
	}
	if rec == nil {
		return fmt.Errorf("jobqueue: completion without a record")
	}
	if !recordMatches(rec, t.ref, j.spec, j.trials) {
		// Only the holder of the task's current lease can burn an attempt;
		// a stale mismatch is simply dropped.
		if t.lease != nil && t.lease.id == ref.ID {
			j.retries++
			q.failLocked(j, t, ref.ID, fmt.Sprintf("record mismatch: got %s/%s seed=%d full=%v trials=%d",
				rec.Campaign, rec.Point, rec.Seed, rec.Full, rec.Trials), "report")
		}
		q.releaseLease(ref.ID)
		return fmt.Errorf("jobqueue: record does not match lease for %s/%s", ref.Point.Campaign, ref.Point.Key)
	}
	if j.complete || t.state == taskDone {
		j.dups++
		q.logf("job %s: duplicate completion of %s/%s discarded", j.spec.ID, t.ref.Campaign, t.ref.Key)
		q.releaseLease(ref.ID)
		q.walAppend(walRecord{Type: "dup", Job: j.spec.ID, Point: &t.ref, Lease: ref.ID})
		return nil
	}
	var dur time.Duration
	timed := false
	if l := q.leases[ref.ID]; l != nil && l.task == t {
		dur = q.opts.Now().Sub(l.started)
		j.compDur += dur
		j.compN++
		timed = true
	}
	if t.state == taskFailed {
		// A straggler delivered the record after the attempt budget wrote
		// the point off — take it, the hole heals.
		j.failed--
		q.logf("job %s: late completion filled failed point %s/%s", j.spec.ID, t.ref.Campaign, t.ref.Key)
	}
	q.dropTaskLease(t)
	q.releaseLease(ref.ID)
	if err := j.sink.Append(rec); err != nil {
		// Sink failure is a daemon-side storage problem, not the worker's:
		// leave the task pending so the record is recomputed and appended
		// once storage recovers.
		t.state = taskPending
		t.notBefore = q.opts.Now().Add(q.backoff(t.attempts))
		q.walAppend(walRecord{Type: "fail", Job: j.spec.ID, Point: &t.ref, Lease: ref.ID,
			Worker: ref.Worker, Attempt: t.attempts, Outcome: "retry", Cause: "report",
			NotBefore: t.notBefore, Err: fmt.Sprintf("append record: %v", err)})
		return fmt.Errorf("jobqueue: append record: %w", err)
	}
	t.state = taskDone
	t.lastErr = ""
	j.done++
	// Checkpoint first, WAL second: a logged completion implies the record
	// is durable. The reverse crash window (record durable, completion
	// lost) is healed by the reconcile step on recovery.
	q.walAppend(walRecord{Type: "complete", Job: j.spec.ID, Point: &t.ref, Lease: ref.ID,
		Worker: ref.Worker, Timed: timed, DurNS: int64(dur)})
	q.maybeFinish(j)
	return nil
}

// Fail records a reported point failure from the task's current lease
// holder: retry after backoff, or land the point in the failure manifest
// once the attempt budget is spent. Stale reports (the lease was already
// requeued or resolved) are ignored.
func (q *Queue) Fail(ref LeaseRef, msg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ref.Worker != "" {
		q.touchWorker(ref.Worker)
	}
	j, ok := q.jobs[ref.Job]
	if !ok {
		return fmt.Errorf("jobqueue: unknown job %q", ref.Job)
	}
	t, ok := j.byRef[ref.Point]
	if !ok {
		return fmt.Errorf("jobqueue: job %q has no point %s/%s", ref.Job, ref.Point.Campaign, ref.Point.Key)
	}
	if t.lease == nil || t.lease.id != ref.ID || t.state != taskLeased {
		q.releaseLease(ref.ID)
		return nil // stale: the point moved on without this worker
	}
	j.retries++
	q.failLocked(j, t, ref.ID, msg, "report")
	q.releaseLease(ref.ID)
	return nil
}

// failLocked applies failure bookkeeping to a leased task and logs the
// transition to the WAL (caller holds the lock and releases the reporting
// lease; cause is "report" or "sweep" for the recovery counters).
func (q *Queue) failLocked(j *qjob, t *qtask, leaseID uint64, msg, cause string) {
	q.dropTaskLease(t)
	t.lastErr = msg
	if t.attempts >= q.opts.MaxAttempts {
		t.state = taskFailed
		j.failed++
		q.logf("job %s: point %s/%s exhausted %d attempts: %s", j.spec.ID, t.ref.Campaign, t.ref.Key, t.attempts, msg)
		q.walAppend(walRecord{Type: "fail", Job: j.spec.ID, Point: &t.ref, Lease: leaseID,
			Attempt: t.attempts, Outcome: "exhausted", Cause: cause, Err: msg})
		q.maybeFinish(j)
		return
	}
	d := q.backoff(t.attempts)
	t.state = taskPending
	t.notBefore = q.opts.Now().Add(d)
	q.walAppend(walRecord{Type: "fail", Job: j.spec.ID, Point: &t.ref, Lease: leaseID,
		Attempt: t.attempts, Outcome: "retry", Cause: cause, NotBefore: t.notBefore, Err: msg})
	q.logf("job %s: point %s/%s attempt %d failed (%s); retrying in %v", j.spec.ID, t.ref.Campaign, t.ref.Key, t.attempts, msg, d)
}

// backoff returns the delay before the next grant after `attempts` granted
// attempts, via the shared BackoffPolicy shape: uniform in [d/2, d) for
// d = min(base·2^(attempts-1), max). Reads opts at call time so tests can
// swap the jitter after construction.
func (q *Queue) backoff(attempts int) time.Duration {
	return BackoffPolicy{Base: q.opts.BackoffBase, Max: q.opts.BackoffMax, Jitter: q.opts.Jitter}.Delay(attempts)
}

// dropTaskLease detaches the task's current lease, if any.
func (q *Queue) dropTaskLease(t *qtask) {
	if t.lease != nil {
		q.releaseLease(t.lease.id)
	}
}

// releaseLease removes a lease from the queue- and worker-level indices.
func (q *Queue) releaseLease(id uint64) {
	l, ok := q.leases[id]
	if !ok {
		return
	}
	delete(q.leases, id)
	if w := q.workers[l.worker]; w != nil {
		delete(w.leases, id)
	}
	if l.task.lease == l {
		l.task.lease = nil
	}
}

// Sweep requeues the points of expired leases and of workers that missed
// their heartbeat window. The daemon calls it on a ticker; tests call it
// directly against an injected clock. Returns the number of requeued
// leases.
func (q *Queue) Sweep() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	var victims []*qlease
	for _, l := range q.leases {
		if now.After(l.deadline) {
			victims = append(victims, l)
			continue
		}
		if w := q.workers[l.worker]; w != nil && now.Sub(w.lastSeen) > q.opts.HeartbeatTimeout {
			victims = append(victims, l)
		}
	}
	// Deterministic processing order (map iteration is randomised).
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, l := range victims {
		t, j := l.task, l.job
		reason := fmt.Sprintf("worker %s missed heartbeat", l.worker)
		if now.After(l.deadline) {
			reason = fmt.Sprintf("lease expired (worker %s)", l.worker)
		}
		q.releaseLease(l.id)
		if t.state != taskLeased {
			continue
		}
		j.requeues++
		t.lastErr = reason
		if t.attempts >= q.opts.MaxAttempts {
			t.state = taskFailed
			j.failed++
			q.logf("job %s: point %s/%s exhausted %d attempts: %s", j.spec.ID, t.ref.Campaign, t.ref.Key, t.attempts, reason)
			q.walAppend(walRecord{Type: "fail", Job: j.spec.ID, Point: &t.ref, Lease: l.id,
				Attempt: t.attempts, Outcome: "exhausted", Cause: "sweep", Err: reason})
			q.maybeFinish(j)
			continue
		}
		// Requeue immediately: the point is presumed fine, the worker dead.
		t.state = taskPending
		t.notBefore = now
		q.walAppend(walRecord{Type: "fail", Job: j.spec.ID, Point: &t.ref, Lease: l.id,
			Attempt: t.attempts, Outcome: "retry", Cause: "sweep", NotBefore: t.notBefore, Err: reason})
		q.logf("job %s: requeued %s/%s (%s, attempt %d)", j.spec.ID, t.ref.Campaign, t.ref.Key, reason, t.attempts)
	}
	return len(victims)
}

// maybeFinish finalises a job whose every point is done or failed: closes
// the sink and writes the failure manifest (caller holds the lock).
func (q *Queue) maybeFinish(j *qjob) {
	if j.complete || j.done+j.failed < len(j.tasks) {
		return
	}
	j.complete = true
	if j.sink != nil {
		if err := j.sink.Close(); err != nil {
			q.logf("job %s: close sink: %v", j.spec.ID, err)
		}
		j.sink = nil
	}
	m := Manifest{Job: j.spec.ID, Spec: j.spec, Total: len(j.tasks), Done: j.done, Failed: j.failed,
		Failures: j.failures()}
	if m.Failures == nil {
		m.Failures = []FailureEntry{}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err == nil {
		tmp := j.manifest + ".tmp"
		if err = os.WriteFile(tmp, append(data, '\n'), 0o644); err == nil {
			err = os.Rename(tmp, j.manifest)
		}
	}
	if err != nil {
		q.logf("job %s: write manifest: %v", j.spec.ID, err)
	}
	q.logf("job %s: complete (%d done, %d failed)", j.spec.ID, j.done, j.failed)
}

// failures lists the exhausted points in grid order.
func (j *qjob) failures() []FailureEntry {
	var out []FailureEntry
	for _, t := range j.tasks {
		if t.state == taskFailed {
			out = append(out, FailureEntry{Point: t.ref, Attempts: t.attempts, LastErr: t.lastErr})
		}
	}
	return out
}

// Status reports one job's progress, including outstanding leases and the
// current failure list.
func (q *Queue) Status(jobID string) (JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[jobID]
	if !ok {
		return JobStatus{}, false
	}
	return q.status(j, true), true
}

// Jobs lists every job in submission order (summary form).
func (q *Queue) Jobs() []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStatus, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.status(q.jobs[id], false))
	}
	return out
}

// status builds a JobStatus (caller holds the lock).
func (q *Queue) status(j *qjob, detail bool) JobStatus {
	s := JobStatus{
		ID: j.spec.ID, Spec: j.spec, State: "running",
		Total: len(j.tasks), Done: j.done, Failed: j.failed,
		Requeues: j.requeues, Retries: j.retries, Duplicates: j.dups,
		RecordsPath: j.sinkPath,
	}
	if j.complete {
		s.State = "complete"
	}
	now := q.opts.Now()
	for _, t := range j.tasks {
		switch t.state {
		case taskPending:
			s.Pending++
		case taskLeased:
			s.Leased++
			if detail && t.lease != nil {
				s.Leases = append(s.Leases, LeaseInfo{Point: t.ref, Worker: t.lease.worker,
					Attempt: t.lease.attempt, Deadline: t.lease.deadline})
			}
		}
	}
	if detail {
		s.Failures = j.failures()
	}
	if remaining := s.Pending + s.Leased; remaining > 0 && j.compN > 0 {
		live := 0
		for _, w := range q.workers {
			if now.Sub(w.lastSeen) <= q.opts.HeartbeatTimeout {
				live++
			}
		}
		if live < 1 {
			live = 1
		}
		mean := j.compDur / time.Duration(j.compN)
		s.ETASeconds = (time.Duration(remaining) * mean / time.Duration(live)).Seconds()
	}
	return s
}

// Healthz summarises daemon liveness for the /healthz endpoint.
func (q *Queue) Healthz() Health {
	q.mu.Lock()
	defer q.mu.Unlock()
	h := Health{Status: "ok", Jobs: len(q.jobs), Workers: len(q.workers)}
	if q.draining {
		h.Status = "draining"
	}
	for _, j := range q.jobs {
		if !j.complete {
			h.RunningJobs++
		}
	}
	now := q.opts.Now()
	for _, w := range q.workers {
		if now.Sub(w.lastSeen) <= q.opts.HeartbeatTimeout {
			h.LiveWorkers++
		}
	}
	return h
}

// RecordsPath returns the job's JSONL checkpoint path.
func (q *Queue) RecordsPath(jobID string) (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[jobID]
	if !ok {
		return "", false
	}
	return j.sinkPath, true
}

// ManifestOf returns the job's current (or final) failure manifest.
func (q *Queue) ManifestOf(jobID string) (Manifest, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[jobID]
	if !ok {
		return Manifest{}, false
	}
	m := Manifest{Job: j.spec.ID, Spec: j.spec, Total: len(j.tasks), Done: j.done, Failed: j.failed,
		Failures: j.failures()}
	if m.Failures == nil {
		m.Failures = []FailureEntry{}
	}
	return m, true
}

// Close flushes and closes the queue's files (daemon shutdown). A durable
// queue (Options.StateDir) folds its state into a final snapshot and
// leaves incomplete jobs incomplete — a daemon reopened over the same
// state dir resumes them exactly. A non-durable queue marks incomplete
// jobs complete as it closes their sinks; a restarted daemon resubmits
// with Resume to continue.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	var first error
	if q.wal != nil {
		if err := q.compactLocked(); err != nil {
			first = err
		}
		if q.wal != nil {
			if err := q.wal.Close(); err != nil && first == nil {
				first = err
			}
			q.wal = nil
		}
	}
	durable := q.opts.StateDir != ""
	for _, j := range q.jobs {
		if !j.complete && j.sink != nil {
			if err := j.sink.Close(); err != nil && first == nil {
				first = err
			}
			j.sink = nil
			if !durable {
				j.complete = true
			}
		}
	}
	return first
}
