package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"syscall"
)

// APIError is a non-2xx answer from the daemon, carrying enough to branch
// on: the status code plus the server's error message (or a truncated
// body snippet when the answer was not the API's JSON error shape).
type APIError struct {
	Method  string
	Path    string
	Status  int
	Message string
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	return fmt.Sprintf("%s %s: HTTP %d: %s", e.Method, e.Path, e.Status, msg)
}

// IsStatus reports whether err is an APIError with the given HTTP status.
func IsStatus(err error, status int) bool {
	var api *APIError
	return errors.As(err, &api) && api.Status == status
}

// Retryable classifies an error from a Client call: true for transient
// transport failures (timeouts, refused/reset connections, a response
// severed mid-body) and server-side trouble (5xx, 429), false for
// permanent answers (4xx — the request itself is wrong) and for the
// caller's own cancellation. context.DeadlineExceeded is transient
// because the HTTP client's per-request timeout surfaces as it; callers
// that set their own deadline check their ctx separately.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var api *APIError
	if errors.As(err, &api) {
		switch {
		case api.Status >= 500, api.Status == http.StatusTooManyRequests, api.Status == http.StatusRequestTimeout:
			return true
		default:
			return false
		}
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true // dial/read/write failed at the transport layer
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	return false
}

// notSent reports whether the request provably never reached the daemon —
// the only transient class a non-idempotent call (Submit, Acquire) may
// retry without risking a double effect. Connection refused means nothing
// listened; everything past the dial might have been processed.
func notSent(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}
