package jobqueue

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// newClientFixture wires a real queue+server behind a fault-injecting
// transport, with retry backoff shrunk to test scale.
func newClientFixture(t *testing.T) (*Client, *FaultTransport, *Queue) {
	t.Helper()
	clk := newFakeClock()
	q, err := NewQueue(testOptions(t, clk, 4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	srv := httptest.NewServer(NewServer(q))
	t.Cleanup(srv.Close)
	ft := &FaultTransport{}
	c := &Client{
		Base:  srv.URL,
		HTTP:  &http.Client{Transport: ft, Timeout: 5 * time.Second},
		Retry: RetryPolicy{Attempts: 4, Backoff: BackoffPolicy{Base: time.Millisecond, Max: 4 * time.Millisecond}},
	}
	return c, ft, q
}

// TestAPIErrorCarriesStatusAndBody pins satellite #1: a non-2xx answer
// surfaces as a typed *APIError with the status code and the server's
// message (or a truncated body snippet), not an anonymous string.
func TestAPIErrorCarriesStatusAndBody(t *testing.T) {
	c, _, _ := newClientFixture(t)

	_, err := c.Status(t.Context(), "no-such-job")
	var api *APIError
	if !errors.As(err, &api) {
		t.Fatalf("unknown job: got %T (%v), want *APIError", err, err)
	}
	if api.Status != http.StatusNotFound || !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown job: %+v, want 404", api)
	}
	if api.Message == "" || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("error lacks status/message: %q", err)
	}
	if Retryable(err) {
		t.Fatal("404 classified retryable")
	}

	// A non-JSON error body is snipped into the message, not dropped.
	long := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		io.WriteString(w, strings.Repeat("x", 500))
	}))
	defer long.Close()
	c2 := &Client{Base: long.URL, HTTP: long.Client()}
	_, err = c2.Status(t.Context(), "j")
	if !errors.As(err, &api) || api.Status != http.StatusBadGateway {
		t.Fatalf("gateway error: %v", err)
	}
	if len(api.Message) > 210 || !strings.HasSuffix(api.Message, "…") {
		t.Fatalf("body not truncated: %d bytes", len(api.Message))
	}
	if !Retryable(err) {
		t.Fatal("502 classified permanent")
	}
}

// TestRetryableClassification covers the error taxonomy table.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"500", &APIError{Status: 500}, true},
		{"503", &APIError{Status: 503}, true},
		{"429", &APIError{Status: 429}, true},
		{"408", &APIError{Status: 408}, true},
		{"400", &APIError{Status: 400}, false},
		{"404", &APIError{Status: 404}, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, true},
		{"refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"reset", syscall.ECONNRESET, true},
		{"severed", io.ErrUnexpectedEOF, true},
		{"wrapped severed", &url2Err{io.ErrUnexpectedEOF}, true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if notSent(io.ErrUnexpectedEOF) {
		t.Error("severed response classified as never-sent")
	}
	if !notSent(&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}) {
		t.Error("refused connection not classified as never-sent")
	}
}

// url2Err stands in for the url.Error wrapping the http client applies.
type url2Err struct{ err error }

func (e *url2Err) Error() string { return "Get \"x\": " + e.err.Error() }
func (e *url2Err) Unwrap() error { return e.err }

// TestClientRetriesThroughFaults drives idempotent calls through each
// transient fault and checks they recover transparently, with the
// transport's request counter proving a retry actually happened.
func TestClientRetriesThroughFaults(t *testing.T) {
	t.Run("dropped connection", func(t *testing.T) {
		c, ft, q := newClientFixture(t)
		mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
		ft.Push(FaultDrop)
		st, err := c.Status(t.Context(), "j")
		if err != nil || st.Total != 4 {
			t.Fatalf("status through drop: %v %+v", err, st)
		}
		if got := ft.Requests(); got != 2 {
			t.Fatalf("%d round trips, want 2 (drop + retry)", got)
		}
	})
	t.Run("severed body", func(t *testing.T) {
		c, ft, q := newClientFixture(t)
		mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
		ft.Push(FaultSever)
		if _, err := c.Status(t.Context(), "j"); err != nil {
			t.Fatalf("status through severed body: %v", err)
		}
		if got := ft.Requests(); got != 2 {
			t.Fatalf("%d round trips, want 2 (sever + retry)", got)
		}
	})
	t.Run("repeated drops exhaust attempts", func(t *testing.T) {
		c, ft, q := newClientFixture(t)
		mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
		ft.Push(FaultDrop, FaultDrop, FaultDrop, FaultDrop)
		_, err := c.Status(t.Context(), "j")
		if err == nil || !Retryable(err) {
			t.Fatalf("four drops with four attempts: err=%v", err)
		}
		if got := ft.Requests(); got != 4 {
			t.Fatalf("%d round trips, want 4", got)
		}
	})
}

// TestNonIdempotentRetryDiscipline: Acquire (a lease grant per delivery)
// may be resent only when the request provably never arrived — connection
// refused — and must NOT be resent after an ambiguous mid-body failure,
// where the daemon may already have granted the lease.
func TestNonIdempotentRetryDiscipline(t *testing.T) {
	t.Run("refused connection retried", func(t *testing.T) {
		c, ft, q := newClientFixture(t)
		mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
		ft.Push(FaultDrop)
		l, err := c.Acquire(t.Context(), "w1")
		if err != nil || l == nil {
			t.Fatalf("acquire through drop: %v %+v", err, l)
		}
		if got := ft.Requests(); got != 2 {
			t.Fatalf("%d round trips, want 2", got)
		}
	})
	t.Run("severed response NOT retried", func(t *testing.T) {
		c, ft, q := newClientFixture(t)
		mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
		ft.Push(FaultSever)
		_, err := c.Acquire(t.Context(), "w1")
		if err == nil {
			t.Fatal("severed acquire returned no error")
		}
		if !Retryable(err) {
			t.Fatalf("severed acquire should still be retryable by the caller: %v", err)
		}
		if got := ft.Requests(); got != 1 {
			t.Fatalf("%d round trips, want 1 (no transparent resend)", got)
		}
		// The grant may have landed: exactly one lease is out.
		st, _ := q.Status("j")
		if st.Leased != 1 {
			t.Fatalf("leased = %d after severed acquire, want 1", st.Leased)
		}
	})
}

// TestDuplicateDeliveryTolerated: a retransmitted Complete (FaultDupe
// sends the request twice) must land exactly one checkpoint record, with
// the second delivery counted as a discarded duplicate.
func TestDuplicateDeliveryTolerated(t *testing.T) {
	c, ft, q := newClientFixture(t)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
	l := mustAcquire(t, q, "w1")
	ft.Push(FaultDupe)
	if err := c.Complete(t.Context(), l.Ref(), recFor(l)); err != nil {
		t.Fatalf("duplicated complete: %v", err)
	}
	st, _ := q.Status("j")
	if st.Done != 1 || st.Duplicates != 1 {
		t.Fatalf("after duplicated delivery: %+v", st)
	}
	if got := sinkLines(t, q, "j"); got != 1 {
		t.Fatalf("checkpoint holds %d records, want exactly 1", got)
	}
}

// TestRetryRespectsContext: cancellation cuts the retry loop short
// instead of sleeping out the full backoff schedule.
func TestRetryRespectsContext(t *testing.T) {
	c, ft, q := newClientFixture(t)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
	c.Retry = RetryPolicy{Attempts: 10, Backoff: BackoffPolicy{Base: time.Minute, Max: time.Minute}}
	ft.Push(FaultDrop, FaultDrop, FaultDrop)
	ctx, cancel := context.WithTimeout(t.Context(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Status(ctx, "j")
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
	if got := ft.Requests(); got != 1 {
		t.Fatalf("%d round trips, want 1 (context ended during first backoff)", got)
	}
}

// TestRecordsRetriesOnlyBeforeFirstByte: the stream fetch retries like
// any idempotent call until output starts; after that a cut surfaces as
// an error so the caller never gets silently duplicated lines.
func TestRecordsRetriesOnlyBeforeFirstByte(t *testing.T) {
	c, ft, q := newClientFixture(t)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
	l := mustAcquire(t, q, "w1")
	if err := q.Complete(l.Ref(), recFor(l)); err != nil {
		t.Fatal(err)
	}

	ft.Push(FaultDrop)
	var buf strings.Builder
	if err := c.Records(t.Context(), "j", &buf); err != nil {
		t.Fatalf("records through drop: %v", err)
	}
	if !strings.HasSuffix(buf.String(), "\n") || strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("streamed records malformed: %q", buf.String())
	}

	ft.Push(FaultSever) // cut mid-body, after bytes flowed
	var buf2 strings.Builder
	err := c.Records(t.Context(), "j", &buf2)
	if err == nil {
		t.Fatal("mid-stream cut reported success")
	}
	if buf2.Len() == 0 {
		t.Fatal("expected partial output before the cut")
	}
}
