package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// synthRecord is the deterministic "simulation": samples are a pure
// function of (campaign, point key, seed), mirroring the seed-purity
// property the real experiment registry guarantees via campaign.PointSeed.
// Any two executions of the same point — first attempt, retry, steal —
// therefore produce byte-identical records, which is exactly what the
// chaos assertions below rely on.
func synthRecord(pt PointRef, spec JobSpec, trials int) *campaign.Record {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", pt.Campaign, pt.Key, spec.Seed)
	x := h.Sum64()
	samples := make([]campaign.NullFloat, trials)
	for i := range samples {
		x = x*6364136223846793005 + 1442695040888963407
		samples[i] = campaign.NullFloat(float64(x%1000) / 10)
	}
	return &campaign.Record{
		Campaign: pt.Campaign,
		Point:    pt.Key,
		Seed:     spec.Seed,
		Full:     spec.Full,
		Trials:   trials,
		Samples:  map[string][]campaign.NullFloat{"rounds": samples},
	}
}

var synthRunner = RunnerFunc(func(l *Lease) (*campaign.Record, error) {
	return synthRecord(l.Point, l.Spec, l.Trials), nil
})

// chaosOptions are the fast-clock settings the e2e tests run under:
// everything scaled so worker death is detected and healed in tens of
// milliseconds.
func chaosOptions(t *testing.T, n int) Options {
	t.Helper()
	return Options{
		DataDir:          t.TempDir(),
		Expand:           synthExpand(n),
		LeaseTTL:         250 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
		MaxAttempts:      4,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       40 * time.Millisecond,
	}
}

// startDaemon runs queue + HTTP server + sweeper, all torn down with the test.
func startDaemon(t *testing.T, opts Options) (*Client, *Queue) {
	t.Helper()
	q, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(q)
	ts := httptest.NewServer(srv)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.RunSweeper(20*time.Millisecond, stop)
	}()
	t.Cleanup(func() {
		close(stop)
		<-done
		ts.Close()
	})
	return NewClient(ts.URL), q
}

// waitComplete polls until the job reports complete or the deadline passes.
func waitComplete(t *testing.T, c *Client, job string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(t.Context(), job)
		if err != nil {
			t.Fatalf("Status(%s): %v", job, err)
		}
		if st.State == "complete" {
			return *st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not complete after %v: %+v", job, timeout, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// recordLines reads a JSONL file into a (campaign/point → raw line) map.
func recordLines(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read records: %v", err)
	}
	out := map[string]string{}
	for i, ln := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		var r campaign.Record
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("records line %d corrupt: %v", i+1, err)
		}
		key := r.Campaign + "/" + r.Point
		if _, dup := out[key]; dup {
			t.Fatalf("records contain %s twice", key)
		}
		out[key] = ln
	}
	return out
}

// expectedLines renders the records an uninterrupted single-process run
// would have produced, in the daemon's own wire encoding.
func expectedLines(t *testing.T, spec JobSpec, n, trials int) map[string]string {
	t.Helper()
	pts, _, err := synthExpand(n)(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, pt := range pts {
		rec := synthRecord(pt, spec, trials)
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out[pt.Campaign+"/"+pt.Key] = string(data)
	}
	return out
}

func assertSameRecords(t *testing.T, got, want map[string]string) {
	t.Helper()
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing record for %s", k)
			continue
		}
		if g != w {
			t.Errorf("record %s differs from single-process run:\n got %s\nwant %s", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected extra record %s", k)
		}
	}
}

// TestE2EChaosKilledWorker is the headline fault-injection test: two
// workers share a campaign, one is chaos-killed mid-point (it dies holding
// an unreported lease, heartbeats and all), and the merged record stream
// must still be byte-identical to an unsharded single-process run.
func TestE2EChaosKilledWorker(t *testing.T) {
	const n = 12
	c, q := startDaemon(t, chaosOptions(t, n))
	spec := JobSpec{ID: "chaos", Experiments: []string{"all"}, Seed: 1234}
	if _, err := c.Submit(t.Context(), spec); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The victim runs alone first so the kill is deterministic (racing a
	// survivor on a fast grid, the queue can drain before the victim ever
	// reaches its 3rd lease): it finishes 2 points, then dies holding its
	// 3rd lease — heartbeats stop, the point is never reported.
	killedErr := RunWorker(ctx, c, synthRunner, WorkerOptions{
		ID: "victim", Poll: 5 * time.Millisecond, ChaosKillAtLease: 3,
	})
	if !errors.Is(killedErr, ErrChaosKill) {
		t.Fatalf("victim exited %v, want ErrChaosKill", killedErr)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the survivor drains everything the victim dropped
		defer wg.Done()
		RunWorker(ctx, c, synthRunner, WorkerOptions{ //nolint:errcheck
			ID: "survivor", Poll: 5 * time.Millisecond,
		})
	}()

	st := waitComplete(t, c, "chaos", 30*time.Second)
	cancel()
	wg.Wait()
	if st.Done != n || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", st.Done, st.Failed, n)
	}
	if st.Requeues < 1 {
		t.Fatalf("requeues=%d — the victim's abandoned lease was never recovered", st.Requeues)
	}
	path, _ := q.RecordsPath("chaos")
	assertSameRecords(t, recordLines(t, path), expectedLines(t, spec, n, 5))

	m, err := c.ManifestOf(t.Context(), "chaos")
	if err != nil || m.Failed != 0 || len(m.Failures) != 0 {
		t.Fatalf("manifest after clean chaos run: %+v, %v", m, err)
	}
}

// TestE2ETransientFailureRetries injects one first-attempt failure and
// checks the point heals through the backoff/retry path end to end.
func TestE2ETransientFailureRetries(t *testing.T) {
	const n = 6
	c, q := startDaemon(t, chaosOptions(t, n))
	spec := JobSpec{ID: "flaky", Experiments: []string{"all"}, Seed: 55}
	if _, err := c.Submit(t.Context(), spec); err != nil {
		t.Fatal(err)
	}

	flaky := RunnerFunc(func(l *Lease) (*campaign.Record, error) {
		if l.Point.Key == "p03" && l.Attempt == 1 {
			return nil, fmt.Errorf("transient: simulated OOM")
		}
		return synthRunner(l)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, c, flaky, WorkerOptions{ID: "w1", Poll: 5 * time.Millisecond}) //nolint:errcheck
	}()

	st := waitComplete(t, c, "flaky", 30*time.Second)
	cancel()
	wg.Wait()

	if st.Done != n || st.Failed != 0 || st.Retries < 1 {
		t.Fatalf("done=%d failed=%d retries=%d, want %d/0/≥1", st.Done, st.Failed, st.Retries, n)
	}
	path, _ := q.RecordsPath("flaky")
	assertSameRecords(t, recordLines(t, path), expectedLines(t, spec, n, 5))
}

// TestE2EPermanentFailureDegradesGracefully makes one point fail every
// attempt: the campaign must still complete, with that point — and only
// that point — recorded as an explicit hole in the failure manifest.
func TestE2EPermanentFailureDegradesGracefully(t *testing.T) {
	const n = 6
	opts := chaosOptions(t, n)
	opts.MaxAttempts = 2
	c, q := startDaemon(t, opts)
	spec := JobSpec{ID: "holey", Experiments: []string{"all"}, Seed: 77}
	if _, err := c.Submit(t.Context(), spec); err != nil {
		t.Fatal(err)
	}

	broken := RunnerFunc(func(l *Lease) (*campaign.Record, error) {
		if l.Point.Key == "p02" {
			return nil, fmt.Errorf("permanent: parameter regime diverges")
		}
		return synthRunner(l)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, c, broken, WorkerOptions{ID: "w1", Poll: 5 * time.Millisecond}) //nolint:errcheck
	}()

	st := waitComplete(t, c, "holey", 30*time.Second)
	cancel()
	wg.Wait()

	if st.Done != n-1 || st.Failed != 1 {
		t.Fatalf("done=%d failed=%d, want %d/1", st.Done, st.Failed, n-1)
	}
	m, err := c.ManifestOf(t.Context(), "holey")
	if err != nil || len(m.Failures) != 1 {
		t.Fatalf("manifest %+v, %v; want exactly one hole", m, err)
	}
	f := m.Failures[0]
	if f.Point.Key != "p02" || f.Attempts != 2 || !strings.Contains(f.LastErr, "parameter regime diverges") {
		t.Fatalf("manifest hole %+v", f)
	}
	// The other five records are still the single-process bytes.
	want := expectedLines(t, spec, n, 5)
	delete(want, "synth/p02")
	path, _ := q.RecordsPath("holey")
	assertSameRecords(t, recordLines(t, path), want)

	// The persisted manifest carries the hole too.
	data, err := os.ReadFile(strings.TrimSuffix(path, "records.jsonl") + "manifest.json")
	if err != nil || !strings.Contains(string(data), "parameter regime diverges") {
		t.Fatalf("persisted manifest: %v\n%s", err, data)
	}
}
