// Package jobqueue is the fault-tolerant execution layer of the campaign
// service: a lease-based work queue (campaignd holds it behind an HTTP/JSON
// API) that dispatches grid points to a fleet of worker processes and keeps
// a campaign's record stream correct when those workers are slow, flaky, or
// die mid-point.
//
// The design is fault-first:
//
//   - Dispatch is pull-based (work stealing): every worker asks for its next
//     point when it is ready, so a fast worker simply acquires more leases
//     than a slow one and heterogeneous fleets balance themselves.
//   - A point is handed out under a Lease with a deadline. Worker heartbeats
//     carry the worker's own list of held leases and renew exactly those, so
//     a lease whose grant response was lost in transit expires on schedule
//     instead of being renewed forever; a worker that dies (missed
//     heartbeat) or wedges (expired deadline) has its points requeued for
//     someone else.
//   - A reported point failure is retried with exponential backoff plus
//     jitter up to a bounded attempt budget. When the budget is exhausted
//     the point lands in the job's failure manifest and the campaign
//     completes with explicit holes instead of hanging.
//   - Because a point's seed is a pure function of (base seed, point key)
//     (campaign.PointSeed), a retried or stolen point recomputes the exact
//     record its first attempt would have produced — duplicate completions
//     are discarded, and the merged record stream of any chaotic execution
//     equals an unsharded single-process run record for record.
//
// Records stream through the PR 4 checkpoint machinery: each job owns a
// namespaced directory (dataDir/<jobID>/) holding its append-only JSONL
// record file — written through campaign.Sink, resumable with
// campaign.RepairCheckpoint — and its failure manifest.
//
// The queue itself is durable when Options.StateDir is set: every state
// transition appends one fsync'd JSONL record to a write-ahead log that is
// periodically folded into a snapshot, and a queue reopened over the same
// state directory resumes exactly where its predecessor died — SIGKILL
// included. What survives verbatim: jobs and their task states, live
// leases with their absolute deadlines and attempt counts, backoff gates,
// and the requeue/retry/duplicate counters. What is recomputed or
// re-armed: checkpoint contents are reconciled against records.jsonl (a
// completion that reached the checkpoint but not the WAL is healed), and
// live-lease holders get a fresh heartbeat window so the sweeper does not
// steal a point from a worker that merely outlived the daemon. See wal.go
// for the format, compaction, and torn-tail repair discipline.
//
// The package is layered so the whole service can be exercised in-process:
// Queue (this file and queue.go) is the pure coordination core with an
// injectable clock; Server (server.go) exposes it over HTTP; Client
// (client.go) speaks that API; RunWorker (worker.go) is the worker loop the
// campaignworker binary wraps, with chaos hooks for fault-injection tests.
package jobqueue

import (
	"fmt"
	"regexp"
	"time"
)

// JobSpec is a submitted campaign: which experiments to run, at what scale
// and seed, and under which job identity. It is the wire format of
// POST /api/v1/campaigns.
type JobSpec struct {
	// ID names the job and its checkpoint namespace (dataDir/<ID>/). Optional
	// on submit: the daemon assigns job-NNN when empty. Must match [A-Za-z0-9._-]+
	// (it becomes a directory name).
	ID string `json:"id,omitempty"`
	// Experiments lists expt registry IDs ("E1", "F2", ...); the single
	// element "all" selects every registered experiment.
	Experiments []string `json:"experiments"`
	// Full selects the paper-scale grid; false the reduced grid.
	Full bool `json:"full,omitempty"`
	// Seed is the campaign base seed (campaign.Config.Seed).
	Seed uint64 `json:"seed"`
	// Workers bounds per-point trial parallelism on the worker that runs the
	// point (campaign.Config.Workers; 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// GraphMode restricts graph-representation axes (campaign.Config
	// .GraphMode): "", "csr", or "implicit". "implicit" lets campaignd
	// dispatch planet-scale generate-free points to small workers.
	GraphMode string `json:"graph_mode,omitempty"`
	// Channel restricts channel-model axes (campaign.Config.Channel): "",
	// "binary", "fade", or "duty" — one worker can run one channel leg of
	// the channel-realism comparison grid.
	Channel string `json:"channel,omitempty"`
	// Resume continues a previous job with the same ID: points whose records
	// already sit in the job's checkpoint are marked done without re-running.
	// Without Resume, submitting over a non-empty checkpoint is refused.
	Resume bool `json:"resume,omitempty"`
}

// PointRef identifies one grid point globally: the campaign (experiment) ID
// it belongs to plus its stable point key.
type PointRef struct {
	Campaign string `json:"campaign"`
	Key      string `json:"key"`
}

// Lease is one granted work assignment: run this point under this spec and
// report back before the deadline (heartbeats extend it).
type Lease struct {
	// ID is unique per grant; a requeued point gets a fresh lease ID.
	ID     uint64   `json:"id"`
	Job    string   `json:"job"`
	Point  PointRef `json:"point"`
	Spec   JobSpec  `json:"spec"`
	Trials int      `json:"trials"`
	// Attempt is 1 for the first grant of a point and increments on every
	// retry or requeue.
	Attempt  int       `json:"attempt"`
	Worker   string    `json:"worker"`
	Deadline time.Time `json:"deadline"`
}

// Ref returns the compact identity a worker reports completions and
// failures under.
func (l *Lease) Ref() LeaseRef {
	return LeaseRef{ID: l.ID, Job: l.Job, Point: l.Point, Worker: l.Worker}
}

// LeaseRef identifies a lease in complete/fail reports. The queue accepts
// reports from stale leases too (a worker that lost its lease to expiry but
// finished anyway): the record is bit-identical by seed purity, so the
// first completion wins whoever delivers it.
type LeaseRef struct {
	ID     uint64   `json:"id"`
	Job    string   `json:"job"`
	Point  PointRef `json:"point"`
	Worker string   `json:"worker"`
}

// FailureEntry is one exhausted point in a job's failure manifest.
type FailureEntry struct {
	Point    PointRef `json:"point"`
	Attempts int      `json:"attempts"`
	LastErr  string   `json:"last_error"`
}

// Manifest is the failure manifest written to dataDir/<jobID>/manifest.json
// when a job finishes: the explicit holes of a gracefully degraded
// campaign (empty Failures for a fully successful one).
type Manifest struct {
	Job      string         `json:"job"`
	Spec     JobSpec        `json:"spec"`
	Total    int            `json:"total"`
	Done     int            `json:"done"`
	Failed   int            `json:"failed"`
	Failures []FailureEntry `json:"failures"`
}

// LeaseInfo describes one outstanding lease in a job status report.
type LeaseInfo struct {
	Point    PointRef  `json:"point"`
	Worker   string    `json:"worker"`
	Attempt  int       `json:"attempt"`
	Deadline time.Time `json:"deadline"`
}

// JobStatus is the live progress report of one job
// (GET /api/v1/campaigns/{id}).
type JobStatus struct {
	ID    string  `json:"id"`
	State string  `json:"state"` // "running" or "complete"
	Spec  JobSpec `json:"spec"`

	Total   int `json:"total"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`

	// Requeues counts leases taken back (deadline expiry or missed
	// heartbeat); Retries counts reported point failures; Duplicates counts
	// discarded duplicate completions (a stolen point finishing twice).
	Requeues   int `json:"requeues"`
	Retries    int `json:"retries"`
	Duplicates int `json:"duplicates"`

	// ETASeconds estimates the remaining wall time from the mean lease
	// duration of completed points and the number of live workers
	// (0 when unknown or complete).
	ETASeconds float64 `json:"eta_seconds"`

	Leases   []LeaseInfo    `json:"leases,omitempty"`
	Failures []FailureEntry `json:"failures,omitempty"`

	// RecordsPath is the job's JSONL checkpoint inside the daemon's data
	// directory.
	RecordsPath string `json:"records_path"`
}

// Health is the /healthz payload.
type Health struct {
	Status      string `json:"status"`
	Jobs        int    `json:"jobs"`
	RunningJobs int    `json:"running_jobs"`
	Workers     int    `json:"workers"`
	LiveWorkers int    `json:"live_workers"`
}

// Expander turns a validated job spec into its grid points plus the
// per-point trial count stamped into records. Implementations must be
// deterministic in the spec (the worker re-derives the same enumeration
// from its own registry). exptrun.Expand is the expt-registry
// implementation; tests supply synthetic grids.
type Expander func(spec JobSpec) (points []PointRef, trials int, err error)

// Options configures a Queue. Zero values select the documented defaults.
type Options struct {
	// DataDir is the root of the per-job checkpoint namespaces (required).
	DataDir string
	// Expand turns submitted specs into grid points (required).
	Expand Expander

	// StateDir, when set, makes the queue durable: every state transition
	// appends one JSONL record to StateDir/wal.jsonl (fsync'd like the
	// checkpoint sink), periodically compacted into StateDir/snapshot.json.
	// A queue reopened over the same StateDir replays snapshot+WAL and
	// resumes exactly — live leases keep their deadlines, backoff gates and
	// attempt counts survive, completed points stay done. Empty means the
	// pre-WAL behaviour: queue state lives and dies with the process.
	StateDir string
	// CompactEvery is the number of WAL appends between automatic
	// compactions into a fresh snapshot (default 1024).
	CompactEvery int

	// LeaseTTL is how long a lease lives without a heartbeat (default 30s).
	LeaseTTL time.Duration
	// HeartbeatTimeout declares a worker lost when it has not been heard
	// from for this long, requeueing all its leases even before their
	// deadlines (default 3/4 of LeaseTTL).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds grants per point — first try, retries, and
	// requeues after worker death all count (default 4).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the retry delay after a reported
	// failure: attempt k waits uniformly in [d/2, d) for
	// d = min(BackoffBase·2^(k-1), BackoffMax) (defaults 250ms / 30s).
	// Requeues after lease expiry retry immediately — the point is
	// presumed fine, the worker dead.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Jitter returns a uniform draw in [0,1) for backoff spreading
	// (default math/rand; injectable for deterministic tests).
	Jitter func() float64
	// Now is the clock (default time.Now; injectable for expiry tests).
	Now func() time.Time
	// Log, when non-nil, receives one line per notable queue event
	// (requeue, retry, exhausted point, duplicate completion).
	Log func(format string, args ...any)
}

var jobIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// validateJobID rejects IDs that cannot serve as a checkpoint directory
// name ("." and ".." included).
func validateJobID(id string) error {
	if !jobIDPattern.MatchString(id) || id == "." || id == ".." {
		return fmt.Errorf("jobqueue: invalid job id %q (want [A-Za-z0-9._-]+)", id)
	}
	return nil
}
