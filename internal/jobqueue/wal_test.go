package jobqueue

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// durableOptions is testOptions plus a state dir: the WAL-backed variant
// of the deterministic baseline.
func durableOptions(t *testing.T, clk *fakeClock, n int) Options {
	t.Helper()
	opts := testOptions(t, clk, n)
	opts.StateDir = t.TempDir()
	return opts
}

// dumpState renders the queue's full coordination state canonically (the
// snapshot form with the WAL sequence number zeroed). Two queues with
// equal dumps would behave identically from here on. Worker liveness is
// advisory (lastSeen is refreshed by any contact, and recovery re-arms
// live-lease holders), so comparisons across a crash exclude it.
func dumpState(t *testing.T, q *Queue, withWorkers bool) string {
	t.Helper()
	q.mu.Lock()
	snap := q.snapshotLocked()
	q.mu.Unlock()
	snap.Seq = 0
	if !withWorkers {
		snap.Workers = nil
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// driveMixedWorkload pushes one job through every task lifecycle state:
// a completed point, a reported failure waiting out its backoff, a point
// requeued by the sweeper after its worker died, a live leased point
// (heartbeat-renewed), and untouched pending points. Returns the live
// lease so tests can exercise it across a crash.
func driveMixedWorkload(t *testing.T, q *Queue, clk *fakeClock) *Lease {
	t.Helper()
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 42})
	done := mustAcquire(t, q, "w1")
	if err := q.Complete(done.Ref(), recFor(done)); err != nil {
		t.Fatal(err)
	}
	flaky := mustAcquire(t, q, "w2")
	if err := q.Fail(flaky.Ref(), "injected transient"); err != nil {
		t.Fatal(err)
	}
	abandoned := mustAcquire(t, q, "w3")
	_ = abandoned // w3 dies silently; the sweep recovers its lease
	clk.advance(11 * time.Second)
	if n := q.Sweep(); n != 1 {
		t.Fatalf("sweep requeued %d lease(s), want 1", n)
	}
	live := mustAcquire(t, q, "w1")
	if err := q.Heartbeat("w1"); err != nil {
		t.Fatal(err)
	}
	return live
}

// TestWALRestartRestoresExactState is the heart of the durability
// contract: a queue that crashed (no Close, no flush beyond the
// per-append fsyncs) and was reopened over the same dirs is in exactly
// the state it died in — lease IDs, absolute deadlines, attempt counts,
// backoff gates, counters — and the old world keeps working against it:
// the live lease holder's completion is accepted, and a duplicate
// completion from the outage window is discarded, not double-counted.
func TestWALRestartRestoresExactState(t *testing.T) {
	clk := newFakeClock()
	opts := durableOptions(t, clk, 6)
	q1, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	live := driveMixedWorkload(t, q1, clk)
	before := dumpState(t, q1, false)
	// Crash: q1 is simply abandoned mid-flight.

	q2, err := NewQueue(opts)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if after := dumpState(t, q2, false); after != before {
		t.Fatalf("state after crash+replay differs:\n--- died with ---\n%s\n--- restored ---\n%s", before, after)
	}

	st, ok := q2.Status("j")
	if !ok {
		t.Fatal("job lost across restart")
	}
	if st.Done != 1 || st.Leased != 1 || st.Requeues != 1 || st.Retries != 1 {
		t.Fatalf("restored status: %+v", st)
	}
	if len(st.Leases) != 1 || st.Leases[0].Worker != "w1" || !st.Leases[0].Deadline.Equal(live.Deadline) {
		// The replayed deadline must be the absolute time the dying daemon
		// promised, not re-armed relative to the restart.
		t.Fatalf("restored lease: %+v (live lease %+v)", st.Leases, live)
	}

	// The worker that outlived the daemon finishes its point unaided.
	if err := q2.Complete(live.Ref(), recFor(live)); err != nil {
		t.Fatalf("completion of pre-crash lease refused: %v", err)
	}
	// A worker that completed during the outage resends: first-valid-wins.
	reDone := *live
	if err := q2.Complete(LeaseRef{ID: live.ID, Job: "j", Point: live.Point, Worker: "w9"}, recFor(&reDone)); err != nil {
		t.Fatalf("duplicate completion errored: %v", err)
	}
	st, _ = q2.Status("j")
	if st.Done != 2 || st.Duplicates != 1 {
		t.Fatalf("after post-crash completion: %+v", st)
	}
	if got := sinkLines(t, q2, "j"); got != 2 {
		t.Fatalf("checkpoint holds %d records, want 2 (no double append)", got)
	}
}

// TestWALReplayIdempotent reopens the same state twice: the second replay
// (which starts from the compacted snapshot the first reopen wrote) must
// land in exactly the same state, workers included.
func TestWALReplayIdempotent(t *testing.T) {
	clk := newFakeClock()
	opts := durableOptions(t, clk, 6)
	q1, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	driveMixedWorkload(t, q1, clk)
	// Crash q1; open twice in sequence.
	q2, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dumpState(t, q2, true)
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	q3, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	if d3 := dumpState(t, q3, true); d3 != d2 {
		t.Fatalf("second replay diverged:\n--- first ---\n%s\n--- second ---\n%s", d2, d3)
	}
}

// TestWALTruncationEveryByte is the WAL's analogue of the checkpoint
// crash test: a daemon killed mid-append leaves a torn final line, and
// recovery from a WAL cut at byte k must equal recovery from the longest
// clean prefix of those k bytes. In -short mode every byte of the final
// record is tried; the full run cuts at every byte of the whole file.
func TestWALTruncationEveryByte(t *testing.T) {
	clk := newFakeClock()
	opts := durableOptions(t, clk, 6)
	q1, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	driveMixedWorkload(t, q1, clk)
	walBytes, err := os.ReadFile(filepath.Join(opts.StateDir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 || walBytes[len(walBytes)-1] != '\n' {
		t.Fatalf("workload WAL malformed: %d bytes", len(walBytes))
	}
	start := 0
	if testing.Short() {
		start = strings.LastIndexByte(string(walBytes[:len(walBytes)-1]), '\n') + 1
	}

	scratch := t.TempDir()
	byPrefix := map[int]string{} // clean-prefix length → canonical dump
	for cut := start; cut <= len(walBytes); cut++ {
		root := filepath.Join(scratch, fmt.Sprintf("cut-%05d", cut))
		dataDir := filepath.Join(root, "data")
		stateDir := filepath.Join(root, "state")
		copyTree(t, opts.DataDir, dataDir)
		copyTree(t, opts.StateDir, stateDir)
		if err := os.WriteFile(filepath.Join(stateDir, "wal.jsonl"), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cutOpts := opts
		cutOpts.DataDir = dataDir
		cutOpts.StateDir = stateDir
		q, err := NewQueue(cutOpts)
		if err != nil {
			t.Fatalf("cut at byte %d: reopen failed: %v", cut, err)
		}
		clean := strings.LastIndexByte(string(walBytes[:cut]), '\n') + 1
		dump := dumpState(t, q, false)
		if want, ok := byPrefix[clean]; ok {
			if dump != want {
				t.Fatalf("cut at byte %d: state differs from clean prefix of %d bytes", cut, clean)
			}
		} else {
			byPrefix[clean] = dump
		}
		if err := q.Close(); err != nil {
			t.Fatalf("cut at byte %d: close: %v", cut, err)
		}
		os.RemoveAll(root)
	}
}

// TestWALStaleRecordsSkippedAfterCompaction pins the crash window inside
// compaction itself: the snapshot has landed but the WAL was not yet
// truncated, so every WAL record is already folded in. Replay must skip
// them by sequence number instead of double-applying.
func TestWALStaleRecordsSkippedAfterCompaction(t *testing.T) {
	clk := newFakeClock()
	opts := durableOptions(t, clk, 6)
	q1, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	driveMixedWorkload(t, q1, clk)
	walPath := filepath.Join(opts.StateDir, "wal.jsonl")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	want := dumpState(t, q1, false)
	if err := q1.Close(); err != nil { // compacts: snapshot current, WAL truncated
		t.Fatal(err)
	}
	// Undo the truncation: the stale records reappear behind the snapshot.
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := NewQueue(opts)
	if err != nil {
		t.Fatalf("reopen with stale WAL tail: %v", err)
	}
	if got := dumpState(t, q2, false); got != want {
		t.Fatalf("stale WAL records were re-applied:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestWALCorruptTerminatedLineRefuses mirrors the checkpoint contract: a
// torn tail heals silently, but a corrupt line that IS newline-terminated
// was written whole and then damaged — recovery must refuse, not guess.
func TestWALCorruptTerminatedLineRefuses(t *testing.T) {
	clk := newFakeClock()
	opts := durableOptions(t, clk, 4)
	q1, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q1, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 1})
	walPath := filepath.Join(opts.StateDir, "wal.jsonl")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{broken json}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = NewQueue(opts)
	if err == nil || !strings.Contains(err.Error(), "not a torn tail") {
		t.Fatalf("corrupt terminated WAL line: err=%v, want refusal naming the damage", err)
	}
}

// TestWALCrashRecoveryFuzz drives randomised interleavings of lease
// grants, completions, failures, heartbeats, clock jumps, sweeps — and
// daemon crashes at random points between them — then finishes every
// campaign and checks the ground truth: the checkpoint holds exactly one
// record per non-failed point, each byte-identical to what an
// uninterrupted run produces. Run under -race in CI.
func TestWALCrashRecoveryFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := newFakeClock()
			opts := durableOptions(t, clk, 8)
			q, err := NewQueue(opts)
			if err != nil {
				t.Fatal(err)
			}
			spec := JobSpec{ID: "j", Experiments: []string{"all"}, Seed: uint64(seed)}
			mustSubmit(t, q, spec)

			workers := []string{"w0", "w1", "w2"}
			var held []*Lease
			crashes := 0
			for step := 0; step < 60; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // acquire
					l, err := q.Acquire(workers[rng.Intn(len(workers))])
					if err != nil {
						t.Fatalf("step %d: acquire: %v", step, err)
					}
					if l != nil {
						held = append(held, l)
					}
				case 3, 4: // complete a held lease (possibly stale — both legal)
					if len(held) > 0 {
						i := rng.Intn(len(held))
						l := held[i]
						held = append(held[:i], held[i+1:]...)
						if err := q.Complete(l.Ref(), recFor(l)); err != nil {
							t.Fatalf("step %d: complete %s: %v", step, l.Point.Key, err)
						}
					}
				case 5: // report a failure
					if len(held) > 0 {
						i := rng.Intn(len(held))
						l := held[i]
						held = append(held[:i], held[i+1:]...)
						if err := q.Fail(l.Ref(), "fuzz failure"); err != nil {
							t.Fatalf("step %d: fail %s: %v", step, l.Point.Key, err)
						}
					}
				case 6: // heartbeat
					if err := q.Heartbeat(workers[rng.Intn(len(workers))]); err != nil {
						t.Fatal(err)
					}
				case 7: // time passes; sweeper runs
					clk.advance(time.Duration(rng.Intn(8000)) * time.Millisecond)
					q.Sweep()
				case 8, 9: // CRASH between any two transitions
					crashes++
					q, err = NewQueue(opts)
					if err != nil {
						t.Fatalf("step %d: recovery failed: %v", step, err)
					}
				}
			}
			if crashes == 0 {
				q2, err := NewQueue(opts) // make every seed exercise recovery at least once
				if err != nil {
					t.Fatalf("final crash recovery: %v", err)
				}
				q = q2
			}

			// Drain to completion: one diligent worker plus the sweeper.
			for i := 0; i < 1000; i++ {
				st, ok := q.Status("j")
				if !ok {
					t.Fatal("job lost")
				}
				if st.State == "complete" {
					break
				}
				l, err := q.Acquire("w0")
				if err != nil {
					t.Fatal(err)
				}
				if l != nil {
					if err := q.Complete(l.Ref(), recFor(l)); err != nil {
						t.Fatal(err)
					}
					continue
				}
				clk.advance(time.Second)
				q.Sweep()
				q.Heartbeat("w0") //nolint:errcheck
			}
			st, _ := q.Status("j")
			if st.State != "complete" {
				t.Fatalf("campaign never completed: %+v", st)
			}

			// Ground truth: merged records == uninterrupted run, no dups.
			m, _ := q.ManifestOf("j")
			failed := map[string]bool{}
			for _, f := range m.Failures {
				failed[f.Point.Campaign+"/"+f.Point.Key] = true
			}
			path, _ := q.RecordsPath("j")
			got := recordLines(t, path) // fails the test on duplicate keys
			pts, trials, _ := opts.Expand(spec)
			for _, pt := range pts {
				key := pt.Campaign + "/" + pt.Key
				if failed[key] {
					if _, ok := got[key]; ok {
						t.Errorf("failed point %s has a record anyway", key)
					}
					continue
				}
				exp, err := json.Marshal(recFor(&Lease{Point: pt, Spec: spec, Trials: trials}))
				if err != nil {
					t.Fatal(err)
				}
				if got[key] != string(exp) {
					t.Errorf("record %s differs from uninterrupted run:\n got %q\nwant %q", key, got[key], exp)
				}
				delete(got, key)
			}
			for key := range got {
				if !failed[key] {
					t.Errorf("unexpected extra record %s", key)
				}
			}
		})
	}
}

// TestZombieLeaseExpiresDespiteHeartbeats pins the lost-grant hazard: the
// daemon grants a lease but the response never reaches the worker (severed
// mid-body by a crash). The worker keeps heartbeating with its manifest of
// known leases, which must NOT keep the orphan alive — it runs out its
// deadline and the sweeper requeues the point. The subset renewal also has
// to replay exactly from the WAL.
func TestZombieLeaseExpiresDespiteHeartbeats(t *testing.T) {
	clk := newFakeClock()
	opts := durableOptions(t, clk, 4)
	q, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 9})
	known := mustAcquire(t, q, "w1")  // the worker got this response
	zombie := mustAcquire(t, q, "w1") // this response was lost in transit
	clk.advance(6 * time.Second)
	if err := q.HeartbeatLeases("w1", []uint64{known.ID}); err != nil {
		t.Fatal(err)
	}
	clk.advance(5 * time.Second) // t=11s: known renewed to 16s, zombie expired at 10s
	if n := q.Sweep(); n != 1 {
		t.Fatalf("sweep requeued %d lease(s), want 1 (the zombie)", n)
	}
	st, _ := q.Status("j")
	if st.Leased != 1 || st.Requeues != 1 {
		t.Fatalf("after zombie sweep: %+v", st)
	}
	if len(st.Leases) != 1 || st.Leases[0].Point != known.Point {
		t.Fatalf("wrong lease survived: %+v (zombie was %s)", st.Leases, zombie.Point.Key)
	}

	// The partial renewal is a WAL record like any other: crash and replay.
	before := dumpState(t, q, false)
	q2, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	if after := dumpState(t, q2, false); after != before {
		t.Fatalf("subset renew did not replay:\n--- died with ---\n%s\n--- restored ---\n%s", before, after)
	}
}

// TestWALFixtureReplay replays a committed snapshot+WAL fixture and
// compares the restored state against a committed expectation, so any
// format drift (field renames, semantic changes to replay) fails loudly
// instead of silently orphaning existing state dirs. Regenerate with:
//
//	UPDATE_WAL_FIXTURE=1 go test ./internal/jobqueue -run TestWALFixtureReplay
func TestWALFixtureReplay(t *testing.T) {
	fixDir := filepath.Join("testdata", "walfixture")
	if os.Getenv("UPDATE_WAL_FIXTURE") != "" {
		regenWALFixture(t, fixDir)
	}
	got := replayWALFixture(t, fixDir)
	want, err := os.ReadFile(filepath.Join(fixDir, "expected_state.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got != strings.TrimRight(string(want), "\n") {
		t.Fatalf("fixture replay drifted from expected_state.json — if the WAL format change is intentional, bump walVersion and regenerate with UPDATE_WAL_FIXTURE=1\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// replayWALFixture opens a copy of the fixture state under the canonical
// deterministic environment and returns the state dump.
func replayWALFixture(t *testing.T, fixDir string) string {
	t.Helper()
	work := t.TempDir()
	copyTree(t, fixDir, work)
	clk := newFakeClock()
	opts := testOptions(t, clk, 6)
	opts.DataDir = filepath.Join(work, "data")
	opts.StateDir = filepath.Join(work, "state")
	q, err := NewQueue(opts)
	if err != nil {
		t.Fatalf("fixture failed to replay — WAL/snapshot format drift? %v", err)
	}
	defer q.Close()
	return dumpState(t, q, true)
}

// regenWALFixture rebuilds the committed fixture: the mixed workload run
// with a tiny compaction interval, so the fixture holds both a mid-stream
// snapshot and live WAL records past it.
func regenWALFixture(t *testing.T, fixDir string) {
	t.Helper()
	clk := newFakeClock()
	opts := testOptions(t, clk, 6)
	opts.StateDir = t.TempDir()
	opts.CompactEvery = 4
	q, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	driveMixedWorkload(t, q, clk)
	// Crash (no Close): the fixture captures a mid-flight daemon.
	for _, sub := range []string{"data", "state"} {
		if err := os.RemoveAll(filepath.Join(fixDir, sub)); err != nil {
			t.Fatal(err)
		}
	}
	copyTree(t, opts.DataDir, filepath.Join(fixDir, "data"))
	copyTree(t, opts.StateDir, filepath.Join(fixDir, "state"))
	dump := replayWALFixture(t, fixDir)
	if err := os.WriteFile(filepath.Join(fixDir, "expected_state.json"), []byte(dump+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s", fixDir)
}
