package jobqueue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
)

// This file is the durability layer of the queue: a write-ahead log plus
// periodic snapshot that make campaignd restart-transparent.
//
// Every state transition the queue performs under its lock — job
// submitted, point leased, leases renewed by a heartbeat, point completed,
// point failed or requeued, duplicate completion discarded — appends one
// JSONL record to StateDir/wal.jsonl, written with the same
// fsync-per-append discipline as the campaign checkpoint sink. Every
// CompactEvery appends the whole queue state is folded into
// StateDir/snapshot.json (tmp+rename, fsync'd) and the WAL truncated.
//
// Recovery replays snapshot then WAL. Records carry a monotonic sequence
// number and the snapshot stores the last sequence it folded in, so a
// crash between the snapshot rename and the WAL truncation is harmless:
// stale WAL records (seq <= snapshot.seq) are skipped on replay, which
// also makes replay idempotent — reopening the same state twice yields
// the same queue. A torn final WAL line (the one malformation a killed
// append can produce) is repaired in place via campaign.RepairJSONL; a
// corrupt *terminated* line refuses to open, exactly like a checkpoint.
//
// The WAL deliberately records less than the full truth and leans on the
// record checkpoints for the rest: Complete appends to the fsync'd
// checkpoint BEFORE logging to the WAL, so a WAL completion implies the
// record is durable, and the reverse crash window (record durable, WAL
// completion lost) is healed by the reconcile step, which rescans each
// incomplete job's checkpoint after replay and marks matching points
// done. Counters (requeues, retries, duplicates) replay best-effort;
// task states, attempt counts, backoff gates and lease deadlines replay
// exactly. Lease deadlines are absolute, so a live lease resumes with
// its remaining TTL; its holder is granted a fresh heartbeat window
// (lastSeen = restart time) so the sweeper does not steal the point from
// a worker that merely outlived the daemon. Stale leases sweep as usual.

// walVersion guards the snapshot format; bump on incompatible change.
const walVersion = 1

// walRecord is one WAL entry. Type selects which fields are meaningful:
//
//	submit   — Job, Spec, Trials, AutoJob
//	lease    — Job, Point, Lease, Worker, Attempt, Deadline, Started
//	renew    — Worker, Deadline, LastSeen, Leases (the renewed lease IDs;
//	           nil means every lease the worker held, for old records)
//	complete — Job, Point, Lease, Worker, DurNS
//	fail     — Job, Point, Lease, Worker, Attempt, Outcome, Cause, NotBefore, Err
//	dup      — Job, Point, Lease
type walRecord struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`

	Job     string    `json:"job,omitempty"`
	Spec    *JobSpec  `json:"spec,omitempty"`
	Trials  int       `json:"trials,omitempty"`
	AutoJob int       `json:"auto_job,omitempty"`
	Point   *PointRef `json:"point,omitempty"`
	Lease   uint64    `json:"lease,omitempty"`
	Leases  []uint64  `json:"leases,omitempty"`
	Worker  string    `json:"worker,omitempty"`
	Attempt int       `json:"attempt,omitempty"`

	Deadline  time.Time `json:"deadline,omitzero"`
	Started   time.Time `json:"started,omitzero"`
	LastSeen  time.Time `json:"last_seen,omitzero"`
	NotBefore time.Time `json:"not_before,omitzero"`

	// Outcome is "retry" or "exhausted" for fail records; Cause is
	// "report" (worker said so) or "sweep" (lease expiry / missed
	// heartbeat), steering the requeue-vs-retry counter on replay.
	Outcome string `json:"outcome,omitempty"`
	Cause   string `json:"cause,omitempty"`
	// Timed marks a completion that was delivered by the point's current
	// lease holder, whose duration (DurNS, possibly zero) feeds the ETA
	// estimate; stale completions replay without touching it.
	Timed bool   `json:"timed,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	Err   string `json:"err,omitempty"`
}

// walSnapshot is the full queue state at one WAL sequence number.
type walSnapshot struct {
	Version   int         `json:"version"`
	Seq       uint64      `json:"seq"`
	NextLease uint64      `json:"next_lease"`
	AutoJob   int         `json:"auto_job,omitempty"`
	Jobs      []walJob    `json:"jobs"`
	Workers   []walWorker `json:"workers,omitempty"`
}

type walJob struct {
	Spec      JobSpec   `json:"spec"`
	Trials    int       `json:"trials"`
	Complete  bool      `json:"complete,omitempty"`
	Requeues  int       `json:"requeues,omitempty"`
	Retries   int       `json:"retries,omitempty"`
	Dups      int       `json:"duplicates,omitempty"`
	CompDurNS int64     `json:"comp_dur_ns,omitempty"`
	CompN     int       `json:"comp_n,omitempty"`
	Tasks     []walTask `json:"tasks"`
}

type walTask struct {
	Point     PointRef  `json:"point"`
	State     string    `json:"state"`
	Attempts  int       `json:"attempts,omitempty"`
	NotBefore time.Time `json:"not_before,omitzero"`
	LastErr   string    `json:"last_error,omitempty"`
	Lease     *walLease `json:"lease,omitempty"`
}

type walLease struct {
	ID       uint64    `json:"id"`
	Worker   string    `json:"worker"`
	Attempt  int       `json:"attempt"`
	Deadline time.Time `json:"deadline"`
	Started  time.Time `json:"started"`
}

type walWorker struct {
	ID       string    `json:"id"`
	LastSeen time.Time `json:"last_seen"`
}

var taskStateNames = map[taskState]string{
	taskPending: "pending", taskLeased: "leased", taskDone: "done", taskFailed: "failed",
}

func taskStateOf(name string) (taskState, error) {
	for s, n := range taskStateNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown task state %q", name)
}

func (q *Queue) snapshotPath() string { return filepath.Join(q.opts.StateDir, "snapshot.json") }

// openState restores the queue from StateDir (snapshot + WAL replay +
// checkpoint reconcile) and leaves the WAL open for appends. Called by
// NewQueue with the lock not yet shared; no other goroutine can see q.
func (q *Queue) openState() error {
	if err := os.MkdirAll(q.opts.StateDir, 0o755); err != nil {
		return fmt.Errorf("jobqueue: create state dir: %w", err)
	}
	q.walPath = filepath.Join(q.opts.StateDir, "wal.jsonl")

	var snapSeq uint64
	if data, err := os.ReadFile(q.snapshotPath()); err == nil {
		var snap walSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("jobqueue: parse snapshot %s: %w", q.snapshotPath(), err)
		}
		if snap.Version != walVersion {
			return fmt.Errorf("jobqueue: snapshot %s has version %d, this daemon speaks %d", q.snapshotPath(), snap.Version, walVersion)
		}
		if err := q.restoreSnapshot(&snap); err != nil {
			return err
		}
		snapSeq = snap.Seq
		q.walSeq = snap.Seq
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("jobqueue: read snapshot: %w", err)
	}

	rep, err := campaign.RepairJSONL(q.walPath, func(line []byte) error {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("corrupt WAL record (not a torn tail — the line is newline-terminated): %w", err)
		}
		if rec.Seq <= snapSeq {
			return nil // already folded into the snapshot (crash mid-compaction)
		}
		if err := q.applyWAL(&rec); err != nil {
			return fmt.Errorf("replay %s record: %w", rec.Type, err)
		}
		if rec.Seq > q.walSeq {
			q.walSeq = rec.Seq
		}
		return nil
	})
	if err != nil {
		return err
	}
	if rep.TornTailBytes > 0 {
		q.logf("state: dropped torn %d-byte WAL tail", rep.TornTailBytes)
	}

	// Reconcile with the record checkpoints: a record that reached the
	// fsync'd checkpoint is the durable truth even if the daemon died
	// before the WAL completion landed.
	now := q.opts.Now()
	for _, id := range q.order {
		j := q.jobs[id]
		rs, crep, err := campaign.RepairCheckpoint(j.sinkPath)
		if err != nil {
			return fmt.Errorf("jobqueue: reconcile job %q: %w", id, err)
		}
		if crep.TornTailBytes > 0 {
			q.logf("job %s: dropped torn %d-byte checkpoint tail on recovery", id, crep.TornTailBytes)
		}
		for _, t := range j.tasks {
			if t.state == taskDone {
				continue
			}
			r, ok := rs.Lookup(t.ref.Campaign, t.ref.Key)
			if !ok || !recordMatches(r, t.ref, j.spec, j.trials) {
				continue
			}
			if t.state == taskFailed {
				j.failed--
			}
			q.dropTaskLease(t)
			t.state = taskDone
			t.lastErr = ""
			j.done++
		}
		if !j.complete {
			sink, err := campaign.OpenSink(j.sinkPath, false)
			if err != nil {
				return fmt.Errorf("jobqueue: reopen sink for job %q: %w", id, err)
			}
			j.sink = sink
			q.maybeFinish(j)
		}
	}

	// Workers holding live leases outlived the daemon, not the other way
	// round: grant them a fresh heartbeat window so the sweeper does not
	// steal their points before they can reconnect. Stale leases keep
	// their past deadlines and sweep as usual.
	for _, l := range q.leases {
		if l.deadline.After(now) {
			if w := q.workers[l.worker]; w != nil && w.lastSeen.Before(now) {
				w.lastSeen = now
			}
		}
	}

	wal, err := os.OpenFile(q.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobqueue: open WAL: %w", err)
	}
	q.wal = wal
	// Fold the replayed state into a fresh snapshot immediately: recovery
	// cost stays proportional to work since the last compaction, not to
	// the lifetime of the state dir.
	if err := q.compactLocked(); err != nil {
		return err
	}
	return nil
}

// restoreSnapshot rebuilds the in-memory queue from a snapshot. Derived
// quantities (done/failed counts, lease indices) are recomputed from the
// task list rather than trusted.
func (q *Queue) restoreSnapshot(snap *walSnapshot) error {
	q.nextID = snap.NextLease
	q.autoJob = snap.AutoJob
	for _, ww := range snap.Workers {
		q.workers[ww.ID] = &workerInfo{lastSeen: ww.LastSeen, leases: map[uint64]*qlease{}}
	}
	for _, wj := range snap.Jobs {
		if err := validateJobID(wj.Spec.ID); err != nil {
			return fmt.Errorf("jobqueue: snapshot: %w", err)
		}
		dir := filepath.Join(q.opts.DataDir, wj.Spec.ID)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("jobqueue: create job dir: %w", err)
		}
		j := &qjob{
			spec: wj.Spec, trials: wj.Trials, complete: wj.Complete,
			requeues: wj.Requeues, retries: wj.Retries, dups: wj.Dups,
			compDur: time.Duration(wj.CompDurNS), compN: wj.CompN,
			byRef:    map[PointRef]*qtask{},
			sinkPath: filepath.Join(dir, "records.jsonl"),
			manifest: filepath.Join(dir, "manifest.json"),
		}
		for _, wt := range wj.Tasks {
			st, err := taskStateOf(wt.State)
			if err != nil {
				return fmt.Errorf("jobqueue: snapshot job %q: %w", wj.Spec.ID, err)
			}
			t := &qtask{ref: wt.Point, state: st, attempts: wt.Attempts,
				notBefore: wt.NotBefore, lastErr: wt.LastErr}
			switch st {
			case taskDone:
				j.done++
			case taskFailed:
				j.failed++
			case taskLeased:
				if wt.Lease == nil {
					return fmt.Errorf("jobqueue: snapshot job %q: leased task %s/%s without a lease", wj.Spec.ID, wt.Point.Campaign, wt.Point.Key)
				}
				l := &qlease{id: wt.Lease.ID, job: j, task: t, worker: wt.Lease.Worker,
					attempt: wt.Lease.Attempt, deadline: wt.Lease.Deadline, started: wt.Lease.Started}
				t.lease = l
				q.leases[l.id] = l
				w := q.workers[l.worker]
				if w == nil {
					w = &workerInfo{leases: map[uint64]*qlease{}}
					q.workers[l.worker] = w
				}
				w.leases[l.id] = l
				if l.id > q.nextID {
					q.nextID = l.id
				}
			}
			j.byRef[t.ref] = t
			j.tasks = append(j.tasks, t)
		}
		q.jobs[wj.Spec.ID] = j
		q.order = append(q.order, wj.Spec.ID)
	}
	return nil
}

// snapshotLocked serialises the whole queue (caller holds the lock).
func (q *Queue) snapshotLocked() *walSnapshot {
	snap := &walSnapshot{Version: walVersion, Seq: q.walSeq, NextLease: q.nextID, AutoJob: q.autoJob,
		Jobs: []walJob{}}
	for _, id := range q.order {
		j := q.jobs[id]
		wj := walJob{Spec: j.spec, Trials: j.trials, Complete: j.complete,
			Requeues: j.requeues, Retries: j.retries, Dups: j.dups,
			CompDurNS: int64(j.compDur), CompN: j.compN, Tasks: []walTask{}}
		for _, t := range j.tasks {
			wt := walTask{Point: t.ref, State: taskStateNames[t.state], Attempts: t.attempts,
				NotBefore: t.notBefore, LastErr: t.lastErr}
			if t.state == taskLeased && t.lease != nil {
				wt.Lease = &walLease{ID: t.lease.id, Worker: t.lease.worker, Attempt: t.lease.attempt,
					Deadline: t.lease.deadline, Started: t.lease.started}
			}
			wj.Tasks = append(wj.Tasks, wt)
		}
		snap.Jobs = append(snap.Jobs, wj)
	}
	for id, w := range q.workers {
		snap.Workers = append(snap.Workers, walWorker{ID: id, LastSeen: w.lastSeen})
	}
	// Map iteration order is randomised; the snapshot file should not be.
	for i := 1; i < len(snap.Workers); i++ {
		for k := i; k > 0 && snap.Workers[k].ID < snap.Workers[k-1].ID; k-- {
			snap.Workers[k], snap.Workers[k-1] = snap.Workers[k-1], snap.Workers[k]
		}
	}
	return snap
}

// applyWAL replays one record against the in-memory state. Tolerant of
// re-application (a record whose effect is already present is a no-op),
// which keeps replay idempotent.
func (q *Queue) applyWAL(rec *walRecord) error {
	switch rec.Type {
	case "submit":
		if rec.Spec == nil {
			return fmt.Errorf("submit without a spec")
		}
		if rec.AutoJob > q.autoJob {
			q.autoJob = rec.AutoJob
		}
		if _, exists := q.jobs[rec.Spec.ID]; exists {
			return nil
		}
		points, trials, err := q.opts.Expand(*rec.Spec)
		if err != nil {
			return fmt.Errorf("re-expand job %q (worker/daemon version skew?): %w", rec.Spec.ID, err)
		}
		if rec.Trials != 0 && trials != rec.Trials {
			return fmt.Errorf("job %q re-expands to %d trials, WAL recorded %d (grid skew)", rec.Spec.ID, trials, rec.Trials)
		}
		dir := filepath.Join(q.opts.DataDir, rec.Spec.ID)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("create job dir: %w", err)
		}
		j := &qjob{spec: *rec.Spec, trials: trials, byRef: map[PointRef]*qtask{},
			sinkPath: filepath.Join(dir, "records.jsonl"),
			manifest: filepath.Join(dir, "manifest.json")}
		for _, ref := range points {
			t := &qtask{ref: ref}
			j.byRef[ref] = t
			j.tasks = append(j.tasks, t)
		}
		q.jobs[j.spec.ID] = j
		q.order = append(q.order, j.spec.ID)
		return nil

	case "lease":
		j, t, err := q.walTask(rec)
		if err != nil {
			return err
		}
		if rec.Lease > q.nextID {
			q.nextID = rec.Lease
		}
		if t.state == taskDone || t.state == taskFailed {
			return nil // a later record already resolved the point
		}
		if t.lease != nil && t.lease.id == rec.Lease {
			return nil
		}
		q.dropTaskLease(t)
		t.state = taskLeased
		t.attempts = rec.Attempt
		l := &qlease{id: rec.Lease, job: j, task: t, worker: rec.Worker,
			attempt: rec.Attempt, deadline: rec.Deadline, started: rec.Started}
		t.lease = l
		q.leases[l.id] = l
		w := q.workers[rec.Worker]
		if w == nil {
			w = &workerInfo{leases: map[uint64]*qlease{}}
			q.workers[rec.Worker] = w
		}
		if rec.Started.After(w.lastSeen) {
			w.lastSeen = rec.Started
		}
		w.leases[l.id] = l
		return nil

	case "renew":
		w := q.workers[rec.Worker]
		if w == nil {
			w = &workerInfo{leases: map[uint64]*qlease{}}
			q.workers[rec.Worker] = w
		}
		if rec.LastSeen.After(w.lastSeen) {
			w.lastSeen = rec.LastSeen
		}
		if rec.Leases == nil {
			for _, l := range w.leases {
				l.deadline = rec.Deadline
			}
		} else {
			for _, id := range rec.Leases {
				if l, ok := w.leases[id]; ok {
					l.deadline = rec.Deadline
				}
			}
		}
		return nil

	case "complete":
		j, t, err := q.walTask(rec)
		if err != nil {
			return err
		}
		q.releaseLease(rec.Lease)
		if t.state == taskDone {
			return nil
		}
		if t.state == taskFailed {
			j.failed--
		}
		q.dropTaskLease(t)
		t.state = taskDone
		t.lastErr = ""
		j.done++
		if rec.Timed {
			j.compDur += time.Duration(rec.DurNS)
			j.compN++
		}
		return nil

	case "fail":
		j, t, err := q.walTask(rec)
		if err != nil {
			return err
		}
		q.releaseLease(rec.Lease)
		if t.state == taskDone {
			return nil
		}
		if rec.Cause == "sweep" {
			j.requeues++
		} else {
			j.retries++
		}
		q.dropTaskLease(t)
		if rec.Attempt > t.attempts {
			t.attempts = rec.Attempt
		}
		t.lastErr = rec.Err
		if rec.Outcome == "exhausted" {
			if t.state != taskFailed {
				t.state = taskFailed
				j.failed++
			}
		} else {
			t.state = taskPending
			t.notBefore = rec.NotBefore
		}
		return nil

	case "dup":
		j, _, err := q.walTask(rec)
		if err != nil {
			return err
		}
		q.releaseLease(rec.Lease)
		j.dups++
		return nil
	}
	return fmt.Errorf("unknown WAL record type %q", rec.Type)
}

// walTask resolves the job and task a WAL record refers to.
func (q *Queue) walTask(rec *walRecord) (*qjob, *qtask, error) {
	j, ok := q.jobs[rec.Job]
	if !ok {
		return nil, nil, fmt.Errorf("unknown job %q", rec.Job)
	}
	if rec.Point == nil {
		return nil, nil, fmt.Errorf("job %q: record without a point", rec.Job)
	}
	t, ok := j.byRef[*rec.Point]
	if !ok {
		return nil, nil, fmt.Errorf("job %q has no point %s/%s", rec.Job, rec.Point.Campaign, rec.Point.Key)
	}
	return j, t, nil
}

// walAppend logs one state transition (caller holds the lock). A WAL
// write failure degrades durability, not availability: the queue keeps
// serving and complains loudly, and the record checkpoints still bound
// the possible loss to coordination state.
func (q *Queue) walAppend(rec walRecord) {
	if q.wal == nil {
		return
	}
	q.walSeq++
	rec.Seq = q.walSeq
	data, err := json.Marshal(rec)
	if err != nil {
		q.logf("state: marshal WAL record: %v", err)
		return
	}
	if _, err := q.wal.Write(append(data, '\n')); err != nil {
		q.logf("state: append WAL record seq=%d: %v", rec.Seq, err)
		return
	}
	if err := q.wal.Sync(); err != nil {
		q.logf("state: fsync WAL: %v", err)
	}
	q.walCount++
	if q.walCount >= q.opts.CompactEvery {
		if err := q.compactLocked(); err != nil {
			q.logf("state: compact: %v", err)
		}
	}
}

// compactLocked folds the queue state into a fresh snapshot and truncates
// the WAL (caller holds the lock). Crash-ordering: the snapshot lands via
// tmp+fsync+rename before the truncation, and replay skips WAL records
// already covered by the snapshot's sequence number, so dying between the
// two steps loses nothing and duplicates nothing.
func (q *Queue) compactLocked() error {
	snap := q.snapshotLocked()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("jobqueue: marshal snapshot: %w", err)
	}
	tmp := q.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobqueue: write snapshot: %w", err)
	}
	if _, err = f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, q.snapshotPath())
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobqueue: write snapshot: %w", err)
	}
	if q.wal != nil {
		q.wal.Close()
	}
	wal, err := os.OpenFile(q.walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		q.wal = nil
		return fmt.Errorf("jobqueue: truncate WAL: %w", err)
	}
	if err := wal.Sync(); err != nil {
		q.logf("state: fsync truncated WAL: %v", err)
	}
	q.wal = wal
	q.walCount = 0
	return nil
}

// Drain stops granting new leases (Acquire answers "nothing runnable")
// while completions, failures and heartbeats keep flowing — the first
// phase of a graceful shutdown. Healthz reports "draining".
func (q *Queue) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.draining = true
	q.logf("state: draining — no new leases will be granted")
}
