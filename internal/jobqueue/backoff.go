package jobqueue

import (
	"math/rand"
	"time"
)

// BackoffPolicy is the one retry-delay shape shared by every retry loop in
// the service — the queue's point-retry gate, the client's transport
// retry, and the worker's registration/acquire loops — so they all back
// off the same way: attempt k waits uniformly in [d/2, d) for
// d = min(Base·2^(k-1), Max). The half-width jitter spreads a fleet of
// workers that all lost the daemon at the same instant, so the restarted
// daemon is not hit by a synchronised thundering herd.
type BackoffPolicy struct {
	// Base is the first-attempt delay ceiling (default 250ms).
	Base time.Duration
	// Max caps the exponential growth (default 30s).
	Max time.Duration
	// Jitter returns a uniform draw in [0,1) (default math/rand;
	// injectable — tests pin it to 0 for exact delays).
	Jitter func() float64
}

// Delay returns the wait before attempt+1, given `attempt` tries already
// made (attempt >= 1). Zero-value fields fall back to the defaults.
func (p BackoffPolicy) Delay(attempt int) time.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	jitter := p.Jitter
	if jitter == nil {
		jitter = rand.Float64
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(jitter()*float64(half))
}
