package jobqueue

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer wires a queue behind httptest and returns a client for it.
func newTestServer(t *testing.T, clk *fakeClock, n int, mutate func(*Options)) (*Client, *Queue) {
	t.Helper()
	q := newTestQueue(t, clk, n, mutate)
	srv := httptest.NewServer(NewServer(q))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), q
}

func TestServerSubmitStatusRoundTrip(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestServer(t, clk, 2, nil)

	st, err := c.Submit(t.Context(), JobSpec{ID: "web", Experiments: []string{"all"}, Seed: 9})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "web" || st.Total != 2 || st.Pending != 2 || st.State != "running" {
		t.Fatalf("submit status %+v", st)
	}

	got, err := c.Status(t.Context(), "web")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if got.Total != 2 || got.Spec.Seed != 9 {
		t.Fatalf("status round trip %+v", got)
	}

	jobs, err := c.Jobs(t.Context())
	if err != nil || len(jobs) != 1 || jobs[0].ID != "web" {
		t.Fatalf("Jobs = %+v, %v", jobs, err)
	}
}

func TestServerWorkerFlow(t *testing.T) {
	clk := newFakeClock()
	c, q := newTestServer(t, clk, 1, nil)
	if _, err := c.Submit(t.Context(), JobSpec{ID: "w", Experiments: []string{"all"}, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	info, err := c.Register(t.Context(), "w1")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if info.LeaseTTLMS != 10_000 {
		t.Fatalf("lease TTL %dms, want 10000", info.LeaseTTLMS)
	}
	if hb := time.Duration(info.HeartbeatMS) * time.Millisecond; hb <= 0 || hb > 5*time.Second {
		t.Fatalf("suggested heartbeat %v, want within the 5s timeout window", hb)
	}

	l, err := c.Acquire(t.Context(), "w1")
	if err != nil || l == nil {
		t.Fatalf("Acquire: %v, %v", l, err)
	}
	if l.Job != "w" || l.Attempt != 1 || l.Trials != 5 {
		t.Fatalf("lease %+v", l)
	}
	if err := c.Heartbeat(t.Context(), "w1", nil); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if err := c.Complete(t.Context(), l.Ref(), recFor(l)); err != nil {
		t.Fatalf("Complete: %v", err)
	}

	// Drained: the lease endpoint answers 204 → (nil, nil).
	l2, err := c.Acquire(t.Context(), "w1")
	if err != nil || l2 != nil {
		t.Fatalf("Acquire on drained queue = %+v, %v; want nil, nil", l2, err)
	}

	st, err := c.Status(t.Context(), "w")
	if err != nil || st.State != "complete" {
		t.Fatalf("status %+v, %v", st, err)
	}

	// Records stream verbatim from the sink file.
	var sb strings.Builder
	if err := c.Records(t.Context(), "w", &sb); err != nil {
		t.Fatalf("Records: %v", err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 1 {
		t.Fatalf("streamed %d record lines, want 1:\n%s", n, sb.String())
	}
	if path, _ := q.RecordsPath("w"); path == "" {
		t.Fatal("no records path")
	}

	m, err := c.ManifestOf(t.Context(), "w")
	if err != nil || m.Done != 1 || len(m.Failures) != 0 {
		t.Fatalf("manifest %+v, %v", m, err)
	}
}

func TestServerFailEndpoint(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestServer(t, clk, 1, nil)
	if _, err := c.Submit(t.Context(), JobSpec{ID: "f", Experiments: []string{"all"}}); err != nil {
		t.Fatal(err)
	}
	l, err := c.Acquire(t.Context(), "w1")
	if err != nil || l == nil {
		t.Fatal(err)
	}
	if err := c.Fail(t.Context(), l.Ref(), "injected"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	st, err := c.Status(t.Context(), "f")
	if err != nil || st.Retries != 1 {
		t.Fatalf("status after fail %+v, %v", st, err)
	}
}

func TestServerValidationAndNotFound(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestServer(t, clk, 1, nil)

	// Validation errors surface as readable messages, not bare status codes.
	_, err := c.Submit(t.Context(), JobSpec{ID: "../evil", Experiments: []string{"all"}})
	if err == nil || !strings.Contains(err.Error(), "invalid job id") {
		t.Fatalf("bad id error = %v", err)
	}
	if _, err := c.Status(t.Context(), "nope"); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("unknown job error = %v", err)
	}
	if _, err := c.ManifestOf(t.Context(), "nope"); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("unknown manifest error = %v", err)
	}
	if err := c.Records(t.Context(), "nope", &strings.Builder{}); err == nil {
		t.Fatalf("unknown records did not error")
	}
	if err := c.Heartbeat(t.Context(), "", nil); err == nil || !strings.Contains(err.Error(), "empty worker id") {
		t.Fatalf("empty heartbeat id error = %v", err)
	}
	if _, err := c.Acquire(t.Context(), ""); err == nil || !strings.Contains(err.Error(), "empty worker id") {
		t.Fatalf("empty acquire id error = %v", err)
	}

	// Malformed bodies are 400s with a parse error, not 500s.
	resp, err := http.Post(c.Base+"/api/v1/campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestServer(t, clk, 1, nil)
	if _, err := c.Submit(t.Context(), JobSpec{ID: "h", Experiments: []string{"all"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(t.Context(), "w1"); err != nil {
		t.Fatal(err)
	}
	h, err := c.Healthz(t.Context())
	if err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if h.Status != "ok" || h.Jobs != 1 || h.RunningJobs != 1 || h.Workers != 1 || h.LiveWorkers != 1 {
		t.Fatalf("healthz %+v", h)
	}
}
