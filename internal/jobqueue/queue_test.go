package jobqueue

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// fakeClock is the injectable time source the expiry tests advance by hand.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// synthExpand builds an n-point synthetic grid under one campaign ID.
func synthExpand(n int) Expander {
	return func(spec JobSpec) ([]PointRef, int, error) {
		pts := make([]PointRef, n)
		for i := range pts {
			pts[i] = PointRef{Campaign: "synth", Key: fmt.Sprintf("p%02d", i)}
		}
		return pts, 5, nil
	}
}

// testOptions is the deterministic baseline: 10s TTL, 5s heartbeat window,
// zero jitter (backoff == d/2 exactly), hand-cranked clock.
func testOptions(t *testing.T, clk *fakeClock, n int) Options {
	t.Helper()
	return Options{
		DataDir:          t.TempDir(),
		Expand:           synthExpand(n),
		LeaseTTL:         10 * time.Second,
		HeartbeatTimeout: 5 * time.Second,
		MaxAttempts:      3,
		BackoffBase:      time.Second,
		BackoffMax:       8 * time.Second,
		Jitter:           func() float64 { return 0 },
		Now:              clk.now,
	}
}

func newTestQueue(t *testing.T, clk *fakeClock, n int, mutate func(*Options)) *Queue {
	t.Helper()
	opts := testOptions(t, clk, n)
	if mutate != nil {
		mutate(&opts)
	}
	q, err := NewQueue(opts)
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	return q
}

// recFor fabricates the record a well-behaved worker would report for a
// lease (the synthetic analogue of seed-pure recomputation).
func recFor(l *Lease) *campaign.Record {
	return &campaign.Record{
		Campaign: l.Point.Campaign,
		Point:    l.Point.Key,
		Seed:     l.Spec.Seed,
		Full:     l.Spec.Full,
		Trials:   l.Trials,
		Samples:  map[string][]campaign.NullFloat{"x": {campaign.NullFloat(1)}},
	}
}

func mustSubmit(t *testing.T, q *Queue, spec JobSpec) JobStatus {
	t.Helper()
	st, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return st
}

func mustAcquire(t *testing.T, q *Queue, worker string) *Lease {
	t.Helper()
	l, err := q.Acquire(worker)
	if err != nil {
		t.Fatalf("Acquire(%s): %v", worker, err)
	}
	if l == nil {
		t.Fatalf("Acquire(%s): nothing runnable, want a lease", worker)
	}
	return l
}

func sinkLines(t *testing.T, q *Queue, job string) int {
	t.Helper()
	path, ok := q.RecordsPath(job)
	if !ok {
		t.Fatalf("RecordsPath(%s): unknown job", job)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(ln) != "" {
			n++
		}
	}
	return n
}

func TestLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	if l1.Attempt != 1 {
		t.Fatalf("first lease attempt = %d, want 1", l1.Attempt)
	}
	// Unexpired: nothing to sweep, nothing else runnable.
	if n := q.Sweep(); n != 0 {
		t.Fatalf("Sweep before expiry requeued %d", n)
	}
	if l, _ := q.Acquire("w2"); l != nil {
		t.Fatalf("point double-leased while l1 live")
	}

	clk.advance(11 * time.Second) // past the 10s TTL
	if n := q.Sweep(); n != 1 {
		t.Fatalf("Sweep after expiry requeued %d, want 1", n)
	}
	st, _ := q.Status("j")
	if st.Requeues != 1 || st.Pending != 1 || st.Leased != 0 {
		t.Fatalf("after expiry: requeues=%d pending=%d leased=%d, want 1/1/0", st.Requeues, st.Pending, st.Leased)
	}

	// The point is stealable immediately (no backoff for presumed-dead workers).
	l2 := mustAcquire(t, q, "w2")
	if l2.Attempt != 2 || l2.ID == l1.ID {
		t.Fatalf("requeued lease attempt=%d id=%d (old id %d), want attempt 2 and a fresh id", l2.Attempt, l2.ID, l1.ID)
	}
	if err := q.Complete(l2.Ref(), recFor(l2)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	st, _ = q.Status("j")
	if st.State != "complete" || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("final status: %+v", st)
	}
}

func TestHeartbeatExtendsLeaseDeadline(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})
	mustAcquire(t, q, "w1")

	// Heartbeat every 4s; by t0+14 the original t0+10 deadline has long
	// passed, but each beat pushed it out — the lease must survive.
	for i := 0; i < 3; i++ {
		clk.advance(4 * time.Second)
		if err := q.Heartbeat("w1"); err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
		if n := q.Sweep(); n != 0 {
			t.Fatalf("Sweep at +%ds requeued %d despite heartbeats", 4*(i+1), n)
		}
	}
	clk.advance(2 * time.Second) // t0+14: deadline is t0+12+10
	if n := q.Sweep(); n != 0 {
		t.Fatalf("Sweep requeued a heartbeat-renewed lease")
	}
	st, _ := q.Status("j")
	if st.Leased != 1 || st.Requeues != 0 {
		t.Fatalf("leased=%d requeues=%d, want 1/0", st.Leased, st.Requeues)
	}
}

func TestHeartbeatTimeoutRequeuesOnlySilentWorker(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 2, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})
	lDead := mustAcquire(t, q, "dead")
	lLive := mustAcquire(t, q, "live")

	clk.advance(4 * time.Second)
	if err := q.Heartbeat("live"); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second) // dead silent 6s > 5s window; deadlines (t0+10) unexpired
	if n := q.Sweep(); n != 1 {
		t.Fatalf("Sweep requeued %d leases, want only the silent worker's", n)
	}
	st, _ := q.Status("j")
	if st.Requeues != 1 || st.Leased != 1 || st.Pending != 1 {
		t.Fatalf("requeues=%d leased=%d pending=%d, want 1/1/1", st.Requeues, st.Leased, st.Pending)
	}
	if len(st.Leases) != 1 || st.Leases[0].Worker != "live" {
		t.Fatalf("surviving lease = %+v, want live's %v (dead's was %v)", st.Leases, lLive.Point, lDead.Point)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil) // base 1s, max 8s, jitter 0 → exactly d/2
	want := []time.Duration{
		500 * time.Millisecond, // attempt 1: d=1s
		time.Second,            // attempt 2: d=2s
		2 * time.Second,        // attempt 3: d=4s
		4 * time.Second,        // attempt 4: d=8s (cap)
		4 * time.Second,        // attempt 5: still capped
		4 * time.Second,        // attempt 9: still capped (no overflow)
	}
	for i, attempts := range []int{1, 2, 3, 4, 5, 9} {
		if got := q.backoff(attempts); got != want[i] {
			t.Errorf("backoff(%d) = %v, want %v", attempts, got, want[i])
		}
	}

	// Jitter spreads within [d/2, d): at jitter j the delay is (1+j)·d/2.
	q.opts.Jitter = func() float64 { return 0.5 }
	if got, want := q.backoff(2), 1500*time.Millisecond; got != want {
		t.Errorf("backoff(2) with jitter 0.5 = %v, want %v", got, want)
	}
	q.opts.Jitter = func() float64 { return 0.999 }
	if got := q.backoff(2); got < time.Second || got >= 2*time.Second {
		t.Errorf("backoff(2) with jitter 0.999 = %v, want in [1s, 2s)", got)
	}
}

func TestFailureRetriesWithBackoffGate(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	if err := q.Fail(l1.Ref(), "transient"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	// Backoff after attempt 1 is 500ms (jitter 0): not runnable before then.
	if l, _ := q.Acquire("w1"); l != nil {
		t.Fatalf("point runnable inside its backoff window")
	}
	clk.advance(499 * time.Millisecond)
	if l, _ := q.Acquire("w1"); l != nil {
		t.Fatalf("point runnable 1ms before its backoff gate")
	}
	clk.advance(2 * time.Millisecond)
	l2 := mustAcquire(t, q, "w1")
	if l2.Attempt != 2 {
		t.Fatalf("retry attempt = %d, want 2", l2.Attempt)
	}
	st, _ := q.Status("j")
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
}

func TestMaxAttemptsLandsInManifest(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 2, nil) // MaxAttempts 3
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	// Exhaust p00 with three reported failures.
	var unlucky PointRef
	for attempt := 1; attempt <= 3; attempt++ {
		clk.advance(10 * time.Second) // clear any backoff gate
		l := mustAcquire(t, q, "w1")
		if attempt == 1 {
			unlucky = l.Point
		} else if l.Point != unlucky {
			// Round-robin may hand out the healthy point first; finish it.
			if err := q.Complete(l.Ref(), recFor(l)); err != nil {
				t.Fatal(err)
			}
			attempt--
			continue
		}
		if err := q.Fail(l.Ref(), fmt.Sprintf("boom %d", attempt)); err != nil {
			t.Fatal(err)
		}
	}
	// Finish the healthy point if it is still open.
	for {
		clk.advance(10 * time.Second)
		l, err := q.Acquire("w1")
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			break
		}
		if err := q.Complete(l.Ref(), recFor(l)); err != nil {
			t.Fatal(err)
		}
	}

	st, _ := q.Status("j")
	if st.State != "complete" {
		t.Fatalf("job not complete after exhaustion: %+v", st)
	}
	if st.Done != 1 || st.Failed != 1 {
		t.Fatalf("done=%d failed=%d, want 1/1", st.Done, st.Failed)
	}
	m, ok := q.ManifestOf("j")
	if !ok || len(m.Failures) != 1 {
		t.Fatalf("manifest failures = %+v, want exactly the exhausted point", m.Failures)
	}
	f := m.Failures[0]
	if f.Point != unlucky || f.Attempts != 3 || !strings.Contains(f.LastErr, "boom 3") {
		t.Fatalf("manifest entry = %+v", f)
	}
	// The manifest is also persisted next to the records.
	path, _ := q.RecordsPath("j")
	data, err := os.ReadFile(strings.TrimSuffix(path, "records.jsonl") + "manifest.json")
	if err != nil {
		t.Fatalf("manifest file: %v", err)
	}
	if !strings.Contains(string(data), "boom 3") {
		t.Fatalf("persisted manifest missing failure entry:\n%s", data)
	}
	if n := sinkLines(t, q, "j"); n != 1 {
		t.Fatalf("records.jsonl has %d lines, want 1 (the completed point only)", n)
	}
}

func TestAcquireRoundRobinsAcrossJobs(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 2, nil)
	mustSubmit(t, q, JobSpec{ID: "a", Experiments: []string{"all"}, Seed: 1})
	mustSubmit(t, q, JobSpec{ID: "b", Experiments: []string{"all"}, Seed: 2})

	var jobs []string
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mustAcquire(t, q, "w1").Job)
	}
	got := strings.Join(jobs, ",")
	if got != "a,b,a,b" && got != "b,a,b,a" {
		t.Fatalf("dispatch order %s, want strict alternation between jobs", got)
	}
}

func TestDuplicateCompletionDiscarded(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	clk.advance(11 * time.Second)
	q.Sweep() // w1 presumed dead; point stolen
	l2 := mustAcquire(t, q, "w2")
	if err := q.Complete(l2.Ref(), recFor(l2)); err != nil {
		t.Fatal(err)
	}
	// w1 was merely slow: its late duplicate must be swallowed, not double-
	// appended and not an error (the worker did nothing wrong).
	if err := q.Complete(l1.Ref(), recFor(l1)); err != nil {
		t.Fatalf("duplicate completion errored: %v", err)
	}
	st, _ := q.Status("j")
	if st.Duplicates != 1 || st.Done != 1 {
		t.Fatalf("duplicates=%d done=%d, want 1/1", st.Duplicates, st.Done)
	}
	if n := sinkLines(t, q, "j"); n != 1 {
		t.Fatalf("records.jsonl has %d lines after duplicate, want 1", n)
	}
}

func TestStaleLeaseCompletionWins(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	clk.advance(11 * time.Second)
	q.Sweep() // lease revoked, point pending again
	// w1 delivers before anyone steals the point: first completion wins even
	// from a revoked lease — the record is bit-identical by seed purity.
	if err := q.Complete(l1.Ref(), recFor(l1)); err != nil {
		t.Fatalf("stale-lease completion rejected: %v", err)
	}
	st, _ := q.Status("j")
	if st.State != "complete" || st.Done != 1 {
		t.Fatalf("status after stale completion: %+v", st)
	}
	if l, _ := q.Acquire("w2"); l != nil {
		t.Fatalf("completed point re-leased to %s", l.Worker)
	}
}

func TestLateCompletionHealsManifestHole(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 2, func(o *Options) { o.MaxAttempts = 1 })
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	clk.advance(11 * time.Second)
	q.Sweep() // budget of 1 spent → the point is written off as failed
	st, _ := q.Status("j")
	if st.Failed != 1 {
		t.Fatalf("failed=%d after exhausting requeue budget, want 1", st.Failed)
	}
	// The straggler delivers anyway while the job is still running: the hole
	// heals instead of losing a perfectly good record.
	if err := q.Complete(l1.Ref(), recFor(l1)); err != nil {
		t.Fatalf("late completion: %v", err)
	}
	st, _ = q.Status("j")
	if st.Failed != 0 || st.Done != 1 {
		t.Fatalf("failed=%d done=%d after heal, want 0/1", st.Failed, st.Done)
	}
	l2 := mustAcquire(t, q, "w2")
	if err := q.Complete(l2.Ref(), recFor(l2)); err != nil {
		t.Fatal(err)
	}
	m, _ := q.ManifestOf("j")
	if len(m.Failures) != 0 || m.Done != 2 {
		t.Fatalf("final manifest %+v, want 2 done and no failures", m)
	}
}

func TestMismatchedRecordBurnsAttempt(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	bad := recFor(l1)
	bad.Seed = 999 // not what the lease asked for
	if err := q.Complete(l1.Ref(), bad); err == nil {
		t.Fatalf("mismatched record accepted")
	}
	st, _ := q.Status("j")
	if st.Retries != 1 || st.Done != 0 || st.Pending != 1 {
		t.Fatalf("after mismatch: retries=%d done=%d pending=%d, want 1/0/1", st.Retries, st.Done, st.Pending)
	}
	clk.advance(time.Second)
	l2 := mustAcquire(t, q, "w2")
	if l2.Attempt != 2 {
		t.Fatalf("attempt after mismatch = %d, want 2", l2.Attempt)
	}
	if err := q.Complete(l2.Ref(), recFor(l2)); err != nil {
		t.Fatal(err)
	}
	if n := sinkLines(t, q, "j"); n != 1 {
		t.Fatalf("records.jsonl has %d lines, want 1", n)
	}
}

func TestStaleFailureReportIgnored(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}, Seed: 7})

	l1 := mustAcquire(t, q, "w1")
	clk.advance(11 * time.Second)
	q.Sweep()
	l2 := mustAcquire(t, q, "w2")
	// w1's late failure report refers to a revoked lease: it must not burn
	// one of the point's attempts or disturb w2's live lease.
	if err := q.Fail(l1.Ref(), "late and irrelevant"); err != nil {
		t.Fatalf("stale Fail errored: %v", err)
	}
	st, _ := q.Status("j")
	if st.Retries != 0 || st.Leased != 1 {
		t.Fatalf("after stale failure: retries=%d leased=%d, want 0/1", st.Retries, st.Leased)
	}
	if err := q.Complete(l2.Ref(), recFor(l2)); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"path traversal id", JobSpec{ID: "../evil", Experiments: []string{"all"}}, "invalid job id"},
		{"slash id", JobSpec{ID: "a/b", Experiments: []string{"all"}}, "invalid job id"},
		{"dot id", JobSpec{ID: ".", Experiments: []string{"all"}}, "invalid job id"},
	}
	for _, tc := range cases {
		if _, err := q.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	mustSubmit(t, q, JobSpec{ID: "dup", Experiments: []string{"all"}})
	if _, err := q.Submit(JobSpec{ID: "dup", Experiments: []string{"all"}}); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate id: err = %v", err)
	}

	// Expander errors surface verbatim; empty grids are refused.
	qe := newTestQueue(t, clk, 1, func(o *Options) {
		o.Expand = func(JobSpec) ([]PointRef, int, error) { return nil, 0, fmt.Errorf("no such experiment") }
	})
	if _, err := qe.Submit(JobSpec{ID: "x", Experiments: []string{"bogus"}}); err == nil || !strings.Contains(err.Error(), "no such experiment") {
		t.Errorf("expander error: %v", err)
	}
	qz := newTestQueue(t, clk, 0, nil)
	if _, err := qz.Submit(JobSpec{ID: "z", Experiments: []string{"all"}}); err == nil || !strings.Contains(err.Error(), "zero grid points") {
		t.Errorf("zero points: %v", err)
	}
}

func TestAutoJobIDsAssigned(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	st1 := mustSubmit(t, q, JobSpec{Experiments: []string{"all"}})
	st2 := mustSubmit(t, q, JobSpec{Experiments: []string{"all"}})
	if st1.ID != "job-001" || st2.ID != "job-002" {
		t.Fatalf("auto IDs %q, %q; want job-001, job-002", st1.ID, st2.ID)
	}
}

func TestResumeMarksCheckpointedPointsDone(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	mk := func() *Queue {
		opts := testOptions(t, clk, 3)
		opts.DataDir = dir
		q, err := NewQueue(opts)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	spec := JobSpec{ID: "r", Experiments: []string{"all"}, Seed: 42}

	// First daemon lifetime: finish 2 of 3 points, then "crash".
	q1 := mk()
	mustSubmit(t, q1, spec)
	for i := 0; i < 2; i++ {
		l := mustAcquire(t, q1, "w1")
		if err := q1.Complete(l.Ref(), recFor(l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon over the same data dir refuses a blind resubmit...
	q2 := mk()
	if _, err := q2.Submit(spec); err == nil || !strings.Contains(err.Error(), "already holds records") {
		t.Fatalf("resubmit without resume: err = %v, want checkpoint refusal", err)
	}
	// ...but resumes cleanly: 2 points pre-done, only 1 left to run.
	resumed := spec
	resumed.Resume = true
	st := mustSubmit(t, q2, resumed)
	if st.Done != 2 || st.Pending != 1 {
		t.Fatalf("resumed status done=%d pending=%d, want 2/1", st.Done, st.Pending)
	}
	l := mustAcquire(t, q2, "w1")
	if err := q2.Complete(l.Ref(), recFor(l)); err != nil {
		t.Fatal(err)
	}
	st, _ = q2.Status("r")
	if st.State != "complete" || st.Done != 3 {
		t.Fatalf("final resumed status: %+v", st)
	}
	if n := sinkLines(t, q2, "r"); n != 3 {
		t.Fatalf("records.jsonl has %d lines after resume, want 3", n)
	}
}

func TestResumeIgnoresMismatchedSeedRecords(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	opts := testOptions(t, clk, 2)
	opts.DataDir = dir
	q1, err := NewQueue(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q1, JobSpec{ID: "r", Experiments: []string{"all"}, Seed: 1})
	l := mustAcquire(t, q1, "w1")
	if err := q1.Complete(l.Ref(), recFor(l)); err != nil {
		t.Fatal(err)
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resuming under a different seed must not trust the old records.
	opts2 := testOptions(t, clk, 2)
	opts2.DataDir = dir
	q2, err := NewQueue(opts2)
	if err != nil {
		t.Fatal(err)
	}
	st := mustSubmit(t, q2, JobSpec{ID: "r", Experiments: []string{"all"}, Seed: 2, Resume: true})
	if st.Done != 0 || st.Pending != 2 {
		t.Fatalf("seed-changed resume done=%d pending=%d, want 0/2", st.Done, st.Pending)
	}
}

func TestHealthzCountsLiveWorkers(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(t, clk, 1, nil)
	mustSubmit(t, q, JobSpec{ID: "j", Experiments: []string{"all"}})
	if err := q.RegisterWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if err := q.RegisterWorker("w2"); err != nil {
		t.Fatal(err)
	}
	clk.advance(4 * time.Second)
	if err := q.Heartbeat("w2"); err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second) // w1 silent 7s > 5s window
	h := q.Healthz()
	if h.Workers != 2 || h.LiveWorkers != 1 || h.Jobs != 1 || h.RunningJobs != 1 {
		t.Fatalf("healthz %+v, want 2 workers / 1 live / 1 running job", h)
	}
}
