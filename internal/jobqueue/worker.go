package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/campaign"
)

// Runner executes one leased grid point and returns its record. It must be
// a pure function of the lease (spec, point, trials): the record of a
// retried or stolen point has to be bit-identical to its first attempt.
// exptrun.Runner is the expt-registry implementation.
type Runner interface {
	RunPoint(l *Lease) (*campaign.Record, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(l *Lease) (*campaign.Record, error)

// RunPoint implements Runner.
func (f RunnerFunc) RunPoint(l *Lease) (*campaign.Record, error) { return f(l) }

// ErrChaosKill is returned by RunWorker when the kill-after-points chaos
// trigger fired: the worker abandoned a held lease without reporting —
// indistinguishable, from the daemon's side, from a SIGKILL mid-point.
var ErrChaosKill = errors.New("jobqueue: chaos kill triggered")

// WorkerOptions configures one worker loop.
type WorkerOptions struct {
	// ID names the worker to the daemon (required).
	ID string
	// Poll is the idle wait between lease requests when nothing was
	// runnable (default 500ms).
	Poll time.Duration
	// Heartbeat is the liveness cadence; 0 adopts the daemon's suggestion
	// from registration.
	Heartbeat time.Duration
	// ChaosKillAtLease <= 0 disables chaos (the zero value is safe). At
	// N >= 1 the worker completes N-1 points normally, acquires its Nth
	// lease, and dies abruptly holding it: no completion, no failure
	// report, no more heartbeats. The lease must be recovered by the
	// daemon's expiry/heartbeat machinery — this is the fault-injection
	// hook the chaos tests and the CI smoke job drive. (The campaignworker
	// flag -chaos.kill-after-points N maps to ChaosKillAtLease N+1.)
	ChaosKillAtLease int
	// ChaosLatency sleeps this long before reporting each completion
	// (straggler simulation; also widens the window for lease theft).
	ChaosLatency time.Duration
	// Log, when non-nil, receives one line per worker event.
	Log io.Writer
}

// RunWorker runs the acquire→run→report loop against a daemon until ctx is
// cancelled (graceful: the in-flight point finishes and reports first) or
// chaos kills it. Registration and transient RPC errors are retried — a
// worker outliving a daemon restart just keeps polling.
func RunWorker(ctx context.Context, c *Client, r Runner, o WorkerOptions) error {
	if o.ID == "" {
		return fmt.Errorf("jobqueue: WorkerOptions.ID is required")
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, "worker %s: "+format+"\n", append([]any{o.ID}, args...)...)
		}
	}

	// Register, retrying while the daemon comes up.
	var info *RegisterInfo
	for {
		var err error
		info, err = c.Register(o.ID)
		if err == nil {
			break
		}
		logf("register: %v (retrying)", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(o.Poll):
		}
	}
	hb := o.Heartbeat
	if hb <= 0 {
		hb = time.Duration(info.HeartbeatMS) * time.Millisecond
	}
	if hb <= 0 {
		hb = 2 * time.Second
	}

	// Heartbeats run for the worker's whole life, covering long points.
	// They stop the instant the loop returns — a chaos kill goes silent.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(o.ID); err != nil {
					logf("heartbeat: %v", err)
				}
			}
		}
	}()

	completed, acquired := 0, 0
	for {
		select {
		case <-ctx.Done():
			logf("shutting down after %d point(s)", completed)
			return nil
		default:
		}
		lease, err := c.Acquire(o.ID)
		if err != nil {
			logf("acquire: %v (retrying)", err)
			if !sleepCtx(ctx, o.Poll) {
				return nil
			}
			continue
		}
		if lease == nil {
			if !sleepCtx(ctx, o.Poll) {
				return nil
			}
			continue
		}
		acquired++
		if o.ChaosKillAtLease > 0 && acquired >= o.ChaosKillAtLease {
			logf("CHAOS: dying with lease %d (%s/%s) unreported", lease.ID, lease.Point.Campaign, lease.Point.Key)
			return ErrChaosKill
		}
		logf("lease %d: %s/%s attempt %d", lease.ID, lease.Point.Campaign, lease.Point.Key, lease.Attempt)
		rec, err := r.RunPoint(lease)
		if o.ChaosLatency > 0 {
			time.Sleep(o.ChaosLatency)
		}
		if err != nil {
			logf("point %s/%s failed: %v", lease.Point.Campaign, lease.Point.Key, err)
			if ferr := c.Fail(lease.Ref(), err.Error()); ferr != nil {
				logf("fail report: %v", ferr)
			}
			continue
		}
		if cerr := c.Complete(lease.Ref(), rec); cerr != nil {
			// The daemon refused (e.g. record mismatch) or is unreachable;
			// either way the lease machinery decides the point's fate.
			logf("complete report: %v", cerr)
			continue
		}
		completed++
	}
}

// sleepCtx waits d or until ctx cancels; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
