package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Runner executes one leased grid point and returns its record. It must be
// a pure function of the lease (spec, point, trials): the record of a
// retried or stolen point has to be bit-identical to its first attempt.
// exptrun.Runner is the expt-registry implementation.
type Runner interface {
	RunPoint(l *Lease) (*campaign.Record, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(l *Lease) (*campaign.Record, error)

// RunPoint implements Runner.
func (f RunnerFunc) RunPoint(l *Lease) (*campaign.Record, error) { return f(l) }

// ErrChaosKill is returned by RunWorker when the kill-after-points chaos
// trigger fired: the worker abandoned a held lease without reporting —
// indistinguishable, from the daemon's side, from a SIGKILL mid-point.
var ErrChaosKill = errors.New("jobqueue: chaos kill triggered")

// WorkerOptions configures one worker loop.
type WorkerOptions struct {
	// ID names the worker to the daemon (required).
	ID string
	// Poll is the idle wait between lease requests when nothing was
	// runnable (default 500ms).
	Poll time.Duration
	// Heartbeat is the liveness cadence; 0 adopts the daemon's suggestion
	// from registration.
	Heartbeat time.Duration
	// Backoff shapes the retry delays for registration, acquire errors,
	// and report delivery (zero value: the shared defaults, 250ms/30s).
	Backoff BackoffPolicy
	// ChaosKillAtLease <= 0 disables chaos (the zero value is safe). At
	// N >= 1 the worker completes N-1 points normally, acquires its Nth
	// lease, and dies abruptly holding it: no completion, no failure
	// report, no more heartbeats. The lease must be recovered by the
	// daemon's expiry/heartbeat machinery — this is the fault-injection
	// hook the chaos tests and the CI smoke job drive. (The campaignworker
	// flag -chaos.kill-after-points N maps to ChaosKillAtLease N+1.)
	ChaosKillAtLease int
	// ChaosLatency sleeps this long before reporting each completion
	// (straggler simulation; also widens the window for lease theft).
	ChaosLatency time.Duration
	// Log, when non-nil, receives one line per worker event.
	Log io.Writer
}

// RunWorker runs the acquire→run→report loop against a daemon until ctx is
// cancelled (graceful: the in-flight point finishes and reports first) or
// chaos kills it. The loop is built to outlive the daemon: registration,
// acquire and report delivery all retry transient failures with the
// shared capped exponential backoff, completions and failure reports are
// never abandoned while the context lives (a computed record is delivered
// through arbitrary daemon downtime — the WAL-restored daemon will accept
// or dup-discard it), and the heartbeat goroutine re-registers after an
// outage ends. Only a permanent refusal (4xx — the daemon understood and
// said no) drops a report, because resending it cannot change the answer.
func RunWorker(ctx context.Context, c *Client, r Runner, o WorkerOptions) error {
	if o.ID == "" {
		return fmt.Errorf("jobqueue: WorkerOptions.ID is required")
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, "worker %s: "+format+"\n", append([]any{o.ID}, args...)...)
		}
	}

	// Register, backing off while the daemon comes up.
	var info *RegisterInfo
	for attempt := 1; ; attempt++ {
		var err error
		info, err = c.Register(ctx, o.ID)
		if err == nil {
			break
		}
		d := o.Backoff.Delay(attempt)
		logf("register: %v (retrying in %v)", err, d)
		if !sleepCtx(ctx, d) {
			return ctx.Err()
		}
	}
	hb := o.Heartbeat
	if hb <= 0 {
		hb = time.Duration(info.HeartbeatMS) * time.Millisecond
	}
	if hb <= 0 {
		hb = 2 * time.Second
	}

	// The worker renews only the leases it knows it holds. A grant whose
	// response never arrived (connection cut mid-body) must NOT be kept
	// alive by our heartbeats — it expires by its deadline and the daemon
	// requeues the point.
	var heldMu sync.Mutex
	held := map[uint64]struct{}{}
	heldIDs := func() []uint64 {
		heldMu.Lock()
		defer heldMu.Unlock()
		ids := make([]uint64, 0, len(held))
		for id := range held {
			ids = append(ids, id)
		}
		return ids
	}

	// Heartbeats run for the worker's whole life, covering long points.
	// They stop the instant the loop returns — a chaos kill goes silent.
	// After an outage (any heartbeat error) the first success is followed
	// by a fresh registration, so a restarted daemon relearns the worker
	// without the worker abandoning whatever point it is computing.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		outage := false
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(hbCtx, o.ID, heldIDs()); err != nil {
					logf("heartbeat: %v", err)
					outage = true
					continue
				}
				if outage {
					outage = false
					if _, err := c.Register(hbCtx, o.ID); err != nil {
						logf("re-register after outage: %v", err)
					} else {
						logf("daemon back; re-registered")
					}
				}
			}
		}
	}()

	// deliver resends a report through daemon downtime until it lands, the
	// context ends, or the daemon permanently refuses it.
	deliver := func(what string, fn func() error) bool {
		for attempt := 1; ; attempt++ {
			err := fn()
			if err == nil {
				return true
			}
			if ctx.Err() != nil {
				return false
			}
			if !Retryable(err) {
				// The daemon heard the report and said no (e.g. record
				// mismatch): the lease machinery decides the point's fate.
				logf("%s rejected: %v", what, err)
				return false
			}
			d := o.Backoff.Delay(attempt)
			logf("%s: %v (retrying in %v)", what, err, d)
			if !sleepCtx(ctx, d) {
				return false
			}
		}
	}

	completed, acquired, acquireFails := 0, 0, 0
	for {
		select {
		case <-ctx.Done():
			logf("shutting down after %d point(s)", completed)
			return nil
		default:
		}
		lease, err := c.Acquire(ctx, o.ID)
		if err != nil {
			acquireFails++
			d := o.Backoff.Delay(acquireFails)
			logf("acquire: %v (retrying in %v)", err, d)
			if !sleepCtx(ctx, d) {
				return nil
			}
			continue
		}
		acquireFails = 0
		if lease == nil {
			if !sleepCtx(ctx, o.Poll) {
				return nil
			}
			continue
		}
		acquired++
		heldMu.Lock()
		held[lease.ID] = struct{}{}
		heldMu.Unlock()
		release := func() {
			heldMu.Lock()
			delete(held, lease.ID)
			heldMu.Unlock()
		}
		if o.ChaosKillAtLease > 0 && acquired >= o.ChaosKillAtLease {
			logf("CHAOS: dying with lease %d (%s/%s) unreported", lease.ID, lease.Point.Campaign, lease.Point.Key)
			return ErrChaosKill
		}
		logf("lease %d: %s/%s attempt %d", lease.ID, lease.Point.Campaign, lease.Point.Key, lease.Attempt)
		rec, err := r.RunPoint(lease)
		if o.ChaosLatency > 0 {
			time.Sleep(o.ChaosLatency)
		}
		if err != nil {
			logf("point %s/%s failed: %v", lease.Point.Campaign, lease.Point.Key, err)
			deliver("fail report", func() error { return c.Fail(ctx, lease.Ref(), err.Error()) })
			release()
			continue
		}
		if deliver("complete report", func() error { return c.Complete(ctx, lease.Ref(), rec) }) {
			completed++
		}
		release()
	}
}

// sleepCtx waits d or until ctx cancels; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
