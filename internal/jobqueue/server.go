package jobqueue

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/campaign"
)

// Server exposes a Queue over HTTP/JSON — the campaignd API.
//
// Campaign API:
//
//	POST /api/v1/campaigns            submit a JobSpec; 200 JobStatus, 400 on a validation error
//	GET  /api/v1/campaigns            list jobs (summaries)
//	GET  /api/v1/campaigns/{id}       live status: progress counts, leases, failures, ETA
//	GET  /api/v1/campaigns/{id}/records   stream the JSONL records written so far
//	GET  /api/v1/campaigns/{id}/manifest  current (or final) failure manifest
//
// Worker API:
//
//	POST /api/v1/workers/register     {"id": ...}; 200 {"lease_ttl_ms", "heartbeat_ms"}
//	POST /api/v1/workers/heartbeat    {"id": ...}
//	POST /api/v1/lease                {"worker": ...}; 200 Lease or 204 when nothing is runnable
//	POST /api/v1/complete             {"lease": LeaseRef, "record": Record}
//	POST /api/v1/fail                 {"lease": LeaseRef, "error": "..."}
//
// Operability:
//
//	GET  /healthz                     liveness + fleet/job counts
type Server struct {
	q   *Queue
	mux *http.ServeMux
}

// NewServer wraps a queue with the HTTP API.
func NewServer(q *Queue) *Server {
	s := &Server{q: q, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.handleJobs)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/records", s.handleRecords)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/manifest", s.handleManifest)
	s.mux.HandleFunc("POST /api/v1/workers/register", s.handleRegister)
	s.mux.HandleFunc("POST /api/v1/workers/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /api/v1/lease", s.handleLease)
	s.mux.HandleFunc("POST /api/v1/complete", s.handleComplete)
	s.mux.HandleFunc("POST /api/v1/fail", s.handleFail)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// RunSweeper expires leases on a ticker until stop is closed. The daemon
// runs it in a goroutine; tests drive Queue.Sweep directly.
func (s *Server) RunSweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.q.Sweep()
		case <-stop:
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-response is its problem
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	st, err := s.q.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.q.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.q.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	path, ok := s.q.RecordsPath(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	// The sink is append-only and every record is one atomic write+sync, so
	// streaming the file concurrently with appends yields a clean prefix.
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, f) //nolint:errcheck // client gone mid-stream is its problem
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	m, ok := s.q.ManifestOf(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// RegisterInfo is the register response: the cadences the daemon expects.
type RegisterInfo struct {
	LeaseTTLMS  int64 `json:"lease_ttl_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.q.RegisterWorker(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterInfo{
		LeaseTTLMS:  s.q.opts.LeaseTTL.Milliseconds(),
		HeartbeatMS: (s.q.opts.HeartbeatTimeout / 3).Milliseconds(),
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
		// Leases is the worker's own view of what it holds; absent means
		// "renew everything" (legacy), present renews exactly that set.
		Leases []uint64 `json:"leases"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.q.HeartbeatLeases(req.ID, req.Leases); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	lease, err := s.q.Acquire(req.Worker)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Lease  LeaseRef         `json:"lease"`
		Record *campaign.Record `json:"record"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.q.Complete(req.Lease, req.Record); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Lease LeaseRef `json:"lease"`
		Error string   `json:"error"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.q.Fail(req.Lease, req.Error); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.q.Healthz())
}
