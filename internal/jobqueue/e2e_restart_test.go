package jobqueue

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// testDaemon is a restartable in-process campaignd: queue + HTTP server +
// sweeper on a real TCP listener whose address survives a kill/relaunch
// cycle, so clients and workers keep pointing at the same base URL across
// daemon incarnations (httptest.NewServer would move ports).
type testDaemon struct {
	t    *testing.T
	q    *Queue
	hs   *http.Server
	addr string
	stop chan struct{}
	done chan struct{}
}

// launchDaemon starts a daemon on addr ("127.0.0.1:0" for the first
// incarnation; pass the previous addr to restart on the same port).
func launchDaemon(t *testing.T, opts Options, addr string) *testDaemon {
	t.Helper()
	q, err := NewQueue(opts)
	if err != nil {
		t.Fatalf("launch daemon: %v", err)
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv := NewServer(q)
	d := &testDaemon{
		t:    t,
		q:    q,
		hs:   &http.Server{Handler: srv},
		addr: ln.Addr().String(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		srv.RunSweeper(20*time.Millisecond, d.stop)
	}()
	go d.hs.Serve(ln) //nolint:errcheck // returns ErrServerClosed on kill
	return d
}

func (d *testDaemon) url() string { return "http://" + d.addr }

// kill simulates SIGKILL: connections are cut and the queue is abandoned
// without Close — no flush, no final snapshot, nothing beyond the WAL's
// per-append fsyncs. The brief settle keeps straggler handler goroutines
// of the dead incarnation from racing the next incarnation's files.
func (d *testDaemon) kill() {
	close(d.stop)
	<-d.done
	d.hs.Close() //nolint:errcheck
	time.Sleep(50 * time.Millisecond)
}

// shutdown is the graceful path used by test cleanup.
func (d *testDaemon) shutdown() {
	close(d.stop)
	<-d.done
	d.hs.Close() //nolint:errcheck
	d.q.Close()  //nolint:errcheck
}

// logCollector is a goroutine-safe Options.Log sink.
type logCollector struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCollector) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

// TestE2EDaemonRestart is the tentpole's end-to-end proof: a campaign is
// mid-flight across two workers when the daemon is killed (SIGKILL
// semantics — no drain) and restarted over the same state directory and
// address. The workers are NEVER restarted: they ride out the outage on
// client retries, re-register, keep their in-flight points, and the
// merged record stream is still byte-identical to an uninterrupted
// single-process run.
func TestE2EDaemonRestart(t *testing.T) {
	const n = 12
	opts := chaosOptions(t, n)
	opts.StateDir = t.TempDir()
	lc := &logCollector{}
	opts.Log = lc.logf

	d := launchDaemon(t, opts, "127.0.0.1:0")
	c := NewClient(d.url())
	c.Retry.Backoff = BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	spec := JobSpec{ID: "restart", Experiments: []string{"all"}, Seed: 999}
	if _, err := c.Submit(t.Context(), spec); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range []string{"wa", "wb"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			RunWorker(ctx, c, synthRunner, WorkerOptions{ //nolint:errcheck
				ID: id, Poll: 5 * time.Millisecond,
				ChaosLatency: 25 * time.Millisecond, // keep points in flight across the kill
				Backoff:      BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			})
		}(id)
	}

	// Let the campaign get properly underway, then pull the rug.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.Status(t.Context(), "restart")
		if err == nil && st.Done >= 3 && st.Done <= n-3 {
			break
		}
		if err == nil && st.Done > n-3 {
			t.Fatalf("campaign drained too fast to test a mid-flight kill (done=%d)", st.Done)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never got underway")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.kill()

	d2 := launchDaemon(t, opts, d.addr)
	defer d2.shutdown()

	st := waitComplete(t, c, "restart", 30*time.Second)
	cancel()
	wg.Wait()
	if st.Done != n || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", st.Done, st.Failed, n)
	}
	path, _ := d2.q.RecordsPath("restart")
	assertSameRecords(t, recordLines(t, path), expectedLines(t, spec, n, 5))

	lc.mu.Lock()
	restored := false
	for _, ln := range lc.lines {
		if strings.Contains(ln, "restored") {
			restored = true
		}
	}
	lc.mu.Unlock()
	if !restored {
		t.Fatal("second incarnation never logged a state restore — did it replay the WAL at all?")
	}
}

// TestE2EDaemonAndWorkerSimultaneousCrash kills BOTH halves: a worker
// dies holding an unreported lease, the daemon is killed right after, and
// the restarted daemon must replay the orphaned lease from the WAL,
// expire it by its absolute deadline, and hand the point to a fresh
// worker — records still byte-identical, the hole healed by requeue.
func TestE2EDaemonAndWorkerSimultaneousCrash(t *testing.T) {
	const n = 10
	opts := chaosOptions(t, n)
	opts.StateDir = t.TempDir()

	d := launchDaemon(t, opts, "127.0.0.1:0")
	c := NewClient(d.url())
	c.Retry.Backoff = BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	spec := JobSpec{ID: "double", Experiments: []string{"all"}, Seed: 4242}
	if _, err := c.Submit(t.Context(), spec); err != nil {
		t.Fatal(err)
	}

	// The victim completes two points, then dies holding its third lease.
	err := RunWorker(t.Context(), c, synthRunner, WorkerOptions{
		ID: "victim", Poll: 5 * time.Millisecond, ChaosKillAtLease: 3,
	})
	if err != ErrChaosKill {
		t.Fatalf("victim exited %v, want ErrChaosKill", err)
	}
	d.kill() // and the daemon goes down with it

	d2 := launchDaemon(t, opts, d.addr)
	defer d2.shutdown()

	// A fresh worker against the restarted daemon drains everything,
	// including the point the victim took to its grave.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, c, synthRunner, WorkerOptions{ //nolint:errcheck
			ID: "survivor", Poll: 5 * time.Millisecond,
			Backoff: BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		})
	}()

	st := waitComplete(t, c, "double", 30*time.Second)
	cancel()
	wg.Wait()
	if st.Done != n || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", st.Done, st.Failed, n)
	}
	if st.Requeues < 1 {
		t.Fatalf("requeues=%d — the orphaned lease survived the WAL but was never swept", st.Requeues)
	}
	path, _ := d2.q.RecordsPath("double")
	assertSameRecords(t, recordLines(t, path), expectedLines(t, spec, n, 5))
}
