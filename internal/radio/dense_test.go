package radio

// Tests of the word-parallel dense delivery kernel: bit-exact equivalence
// with the serial push kernel at the deliver() level (delivered sets,
// ordering, and exact collision counts), and engine-level invariance under
// the KernelDense forcing across reception models — including the models
// the kernel must *refuse* (SINR capture, per-edge loss), where the forcing
// falls back to the counting kernels. The CI race leg runs this file's
// matrix under GOMAXPROCS ∈ {1, 2, 4}.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// hideCSR wraps a materialised Digraph so the dense kernel's type switch
// misses and exercises the AppendOut (implicit-graph) accumulation path.
type hideCSR struct{ g *graph.Digraph }

func (h hideCSR) N() int                       { return h.g.N() }
func (h hideCSR) OutDegree(v graph.NodeID) int { return h.g.OutDegree(v) }
func (h hideCSR) InDegree(v graph.NodeID) int  { return h.g.InDegree(v) }
func (h hideCSR) CheapIn() bool                { return h.g.CheapIn() }
func (h hideCSR) AppendOut(v graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return h.g.AppendOut(v, dst)
}
func (h hideCSR) AppendIn(v graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return h.g.AppendIn(v, dst)
}

// TestDenseKernelAgainstReference checks the carry-save kernel directly
// against the serial push kernel on adversarial rounds: identical delivered
// sets in strictly ascending order, and — because both kernels are
// transmitter-side exact — identical collision counts. Both the CSR fast
// path and the AppendOut fallback are checked against the same reference.
func TestDenseKernelAgainstReference(t *testing.T) {
	n := 2048
	g := graph.GNPDirected(n, 4e-3, rng.New(91))
	r := rng.New(92)
	dn := newDenseState(n)
	dnImplicit := newDenseState(n)
	for trial := 0; trial < 30; trial++ {
		informed := NewBitset(n)
		var txs []graph.NodeID
		frac := 0.1 + 0.8*r.Float64()
		for v := 0; v < n; v++ {
			if r.Bernoulli(frac) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(0.3) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		st := newDeliveryState(n)
		wantD, wantC := st.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})

		for name, got := range map[string]*denseState{"csr": dn, "implicit": dnImplicit} {
			var gi graph.Implicit = g
			if name == "implicit" {
				gi = hideCSR{g}
			}
			gotD, gotC := got.deliver(gi, txs, informed)
			if !equalNodeSlices(gotD, wantD) {
				t.Fatalf("trial %d/%s: dense delivered %d nodes, push %d", trial, name, len(gotD), len(wantD))
			}
			for i := 1; i < len(gotD); i++ {
				if gotD[i-1] >= gotD[i] {
					t.Fatalf("trial %d/%s: dense output not strictly ascending at %d", trial, name, i)
				}
			}
			if gotC != wantC {
				t.Fatalf("trial %d/%s: dense collisions %d, push exact count %d", trial, name, gotC, wantC)
			}
		}
	}
}

// TestDensePlanesClearBetweenRounds pins the zero-state contract: the
// resolution pass must leave both carry planes empty, so back-to-back
// rounds never see stale hits. A stale bit would surface as a phantom
// collision in the next round.
func TestDensePlanesClearBetweenRounds(t *testing.T) {
	n := 512
	g := graph.GNPDirected(n, 0.05, rng.New(7))
	dn := newDenseState(n)
	informed := NewBitset(n)
	txs := []graph.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	for round := 0; round < 5; round++ {
		dn.deliver(g, txs, informed)
		if got := dn.hitOnce.Count() + dn.hitTwice.Count(); got != 0 {
			t.Fatalf("round %d: %d stale bits left in the carry planes", round, got)
		}
	}
}

// TestDenseForcingBitIdentical is the engine-level pin: forcing KernelDense
// must not change any observable of a run, on any reception model. Binary,
// Fade and Jam actually take the dense path (the models denseOK admits);
// LossyChannel and SINR exercise the fallback (the forcing degrades to the
// counting kernels because a saturating two-hit carry cannot represent
// per-edge loss or capture).
func TestDenseForcingBitIdentical(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	channels := map[string]func() Options{
		"binary": func() Options { return Options{MaxRounds: 2500} },
		"fade":   func() Options { return Options{MaxRounds: 2500, Reception: Fade(0.2)} },
		"jam":    func() Options { return Options{MaxRounds: 2500, Reception: Jam(0.15)} },
		"lossy":  func() Options { return Options{MaxRounds: 2500, Reception: LossyChannel(0.25)} },
		"sinr":   func() Options { return Options{MaxRounds: 2500, Reception: SINRThreshold(0.5, 0.1)} },
	}
	for gname, g := range sparseTestGraphs(t) {
		for cname, mkOpt := range channels {
			run := func() *Result {
				opt := mkOpt()
				return RunBroadcast(g, 0, &sbern{q: 0.02}, rng.New(42), opt)
			}
			SetEngineOverrides(EngineOverrides{})
			base := run()
			SetEngineOverrides(EngineOverrides{Kernel: KernelDense})
			assertSameResult(t, gname+"/"+cname+"/dense", base, run())
			SetEngineOverrides(EngineOverrides{})
		}
	}
}

// TestDenseForcingPreservesHistory pins the per-round trajectory and the
// collision-exactness claim: with RecordHistory on, a forced-dense run must
// be bit-identical to forced push *including per-round collision counts* —
// the dense kernel's popcount(hitTwice) is the same transmitter-side exact
// count the push kernel maintains, so KernelDense stays legal under
// Options.ExactCollisions.
func TestDenseForcingPreservesHistory(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	for gname, g := range sparseTestGraphs(t) {
		run := func(o EngineOverrides) *Result {
			SetEngineOverrides(o)
			return RunBroadcast(g, 0, &sbern{q: 0.05}, rng.New(3),
				Options{MaxRounds: 600, RecordHistory: true})
		}
		push := run(EngineOverrides{Kernel: KernelPush})
		dense := run(EngineOverrides{Kernel: KernelDense})
		SetEngineOverrides(EngineOverrides{})
		if !resultsEqual(push, dense) {
			t.Fatalf("%s: forced-dense run diverges from forced push under RecordHistory", gname)
		}
	}
}

// TestDenseOK pins the admission rule: only the binary collision rule with
// no per-edge filter may ride the saturating carry.
func TestDenseOK(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want bool
	}{
		{"binary", Options{}, true},
		{"fade", Options{Reception: Fade(0.2)}, true},
		{"jam", Options{Reception: Jam(0.15)}, true},
		{"lossy", Options{Reception: LossyChannel(0.25)}, false},
		{"lossprob", Options{LossProb: 0.25}, false},
		{"sinr", Options{Reception: SINRThreshold(0.5, 0.1)}, false},
	}
	for _, c := range cases {
		model := c.opt.Reception
		switch {
		case c.opt.LossProb > 0:
			model = LossyChannel(c.opt.LossProb)
		case model == nil:
			model = Binary()
		}
		if got := denseOK(model.resolve(7)); got != c.want {
			t.Errorf("%s: denseOK = %v, want %v", c.name, got, c.want)
		}
	}
}
