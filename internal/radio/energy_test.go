package radio

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/rng"
)

// bern is a minimal conforming shared-draw Bernoulli protocol (a FixedProb
// clone local to this package, so the energy tests can exercise the batch
// decision path without importing baseline and creating an import cycle).
type bern struct {
	q        float64
	r        *rng.RNG
	set      TxSet
	informed []graph.NodeID
}

func (b *bern) Name() string { return "bern" }
func (b *bern) Begin(n int, _ graph.NodeID, r *rng.RNG) {
	b.r = r
	b.set.Reset(n)
	b.informed = b.informed[:0]
}
func (b *bern) BeginRound(round int) {
	b.set.BeginRound()
	b.set.DrawList(b.r, b.informed, b.q, round)
}
func (b *bern) ShouldTransmit(round int, v graph.NodeID) bool { return b.set.Contains(v, round) }
func (b *bern) AppendTransmitters(_ int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return b.set.AppendTo(dst)
}
func (b *bern) OnInformed(_ int, v graph.NodeID) { b.informed = append(b.informed, v) }
func (b *bern) Quiesced(int) bool                { return false }

// eventTrace records the engine's per-round transmit/deliver events.
type eventTrace struct {
	txs, rxs [][]graph.NodeID
}

func (tr *eventTrace) RoundStart(int) {
	tr.txs = append(tr.txs, nil)
	tr.rxs = append(tr.rxs, nil)
}
func (tr *eventTrace) Transmit(_ int, v graph.NodeID) {
	tr.txs[len(tr.txs)-1] = append(tr.txs[len(tr.txs)-1], v)
}
func (tr *eventTrace) Deliver(_ int, v graph.NodeID) {
	tr.rxs[len(tr.rxs)-1] = append(tr.rxs[len(tr.rxs)-1], v)
}
func (tr *eventTrace) RoundEnd(int, int, int, int) {}

// TestEngineEnergyMatchesNaiveReplay runs a real broadcast with the energy
// model on and re-derives every per-node spend and death round from the
// traced event stream with a naive one-state-per-node-per-round accounting.
// Binary-exact costs make the comparison exact.
func TestEngineEnergyMatchesNaiveReplay(t *testing.T) {
	n := 192
	g, _ := graph.Geometric(graph.GeomSpec{N: n, Radius: 2 * graph.ConnectivityRadius(n), Torus: true}, rng.New(11))
	m := energy.Model{Tx: 1, Rx: 0.5, Listen: 0.25, Sleep: 0.125}
	budget := 40.0
	tr := &eventTrace{}
	res := RunBroadcast(g, 0, &bern{q: 0.1}, rng.New(5),
		Options{MaxRounds: 600, Tracer: tr, Energy: &energy.Spec{Model: m, Budget: budget}})
	if res.Energy == nil {
		t.Fatal("Result.Energy missing")
	}
	if res.Energy.DeadCount == 0 {
		t.Fatal("workload produced no deaths; tighten the budget to make this test meaningful")
	}

	spent := make([]float64, n)
	informed := make([]bool, n)
	dead := make([]bool, n)
	informed[0] = true
	first, half, deadCount := -1, -1, 0
	for round := 1; round <= res.Rounds; round++ {
		isTx := make(map[graph.NodeID]bool)
		for _, v := range tr.txs[round-1] {
			if dead[v] {
				t.Fatalf("round %d: dead node %d transmitted", round, v)
			}
			isTx[v] = true
		}
		isRx := make(map[graph.NodeID]bool)
		for _, v := range tr.rxs[round-1] {
			if dead[v] {
				t.Fatalf("round %d: dead node %d received", round, v)
			}
			isRx[v] = true
		}
		for v := 0; v < n; v++ {
			if dead[v] {
				continue
			}
			switch {
			case isTx[graph.NodeID(v)]:
				spent[v] += m.Tx
			case isRx[graph.NodeID(v)]:
				spent[v] += m.Rx
			case informed[v]:
				spent[v] += m.Sleep
			default:
				spent[v] += m.Listen
			}
		}
		for _, v := range tr.rxs[round-1] {
			informed[v] = true
		}
		for v := 0; v < n; v++ {
			if !dead[v] && spent[v] >= budget-1e-9 {
				dead[v] = true
				deadCount++
				if first < 0 {
					first = round
				}
				if half < 0 && 2*deadCount >= n {
					half = round
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if res.Energy.Spent[v] != spent[v] {
			t.Fatalf("node %d: engine spent %g, naive replay %g", v, res.Energy.Spent[v], spent[v])
		}
	}
	if res.Energy.DeadCount != deadCount ||
		res.Energy.FirstDeathRound != first || res.Energy.HalfDeathRound != half {
		t.Fatalf("lifetime (%d dead, first %d, half %d), naive (%d, %d, %d)",
			res.Energy.DeadCount, res.Energy.FirstDeathRound, res.Energy.HalfDeathRound,
			deadCount, first, half)
	}
}

// TestEnergyEquivalenceAcrossEngineConfigurations is the satellite
// equivalence extension: per-node energy, residual charge and lifetime
// rounds must be bit-identical whichever decision path (batch/scalar) and
// delivery kernel (serial/parallel) the engine uses, on both G(n,p) and UDG
// topologies.
func TestEnergyEquivalenceAcrossEngineConfigurations(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	n := 256
	tops := []struct {
		name string
		g    *graph.Digraph
	}{
		{"gnp", graph.GNPDirected(n, 8*math.Log(float64(n))/float64(n), rng.New(3))},
		{"udg", graph.RGG(n, 2*graph.ConnectivityRadius(n), true, rng.New(4))},
	}
	spec := &energy.Spec{Model: energy.CC2420(), Budget: 60, TrackPartition: true}
	run := func(g *graph.Digraph) *Result {
		return RunBroadcast(g, 0, &bern{q: 0.05}, rng.New(99),
			Options{MaxRounds: 500, Energy: spec})
	}
	for _, tp := range tops {
		SetEngineOverrides(EngineOverrides{})
		base := run(tp.g)
		if base.Energy.DeadCount == 0 {
			t.Fatalf("%s: no deaths; the equivalence test is not exercising depletion", tp.name)
		}
		SetEngineOverrides(EngineOverrides{ScalarDecisions: true})
		scalar := run(tp.g)
		SetEngineOverrides(EngineOverrides{Kernel: KernelParallel})
		parallel := run(tp.g)
		for _, alt := range []*Result{scalar, parallel} {
			if alt.Rounds != base.Rounds || alt.Informed != base.Informed || alt.TotalTx != base.TotalTx {
				t.Fatalf("%s: engine results diverge under overrides", tp.name)
			}
			for v := range base.Energy.Spent {
				if alt.Energy.Spent[v] != base.Energy.Spent[v] {
					t.Fatalf("%s node %d: spend %g vs %g across engine paths",
						tp.name, v, alt.Energy.Spent[v], base.Energy.Spent[v])
				}
				if alt.Energy.Residual[v] != base.Energy.Residual[v] {
					t.Fatalf("%s node %d: residual differs across engine paths", tp.name, v)
				}
			}
			if alt.Energy.FirstDeathRound != base.Energy.FirstDeathRound ||
				alt.Energy.HalfDeathRound != base.Energy.HalfDeathRound ||
				alt.Energy.PartitionRound != base.Energy.PartitionRound ||
				alt.Energy.DeadCount != base.Energy.DeadCount {
				t.Fatalf("%s: lifetime marks differ across engine paths", tp.name)
			}
		}
	}
}

// TestDepletedNodesStopTransmitting: flooding a path with a 2-transmission
// battery, every node emits exactly twice and the session halts once the
// whole network is depleted.
func TestDepletedNodesStopTransmitting(t *testing.T) {
	g := graph.Path(3) // directed 0 -> 1 -> 2
	res := RunBroadcast(g, 0, flood{}, rng.New(1),
		Options{MaxRounds: 50, Energy: &energy.Spec{Model: energy.UnitTx(), Budget: 2}})
	// Every node exhausts its 2-transmission budget (node 2, informed in
	// round 2, transmits in rounds 3-4).
	for v, c := range res.PerNodeTx {
		if c != 2 {
			t.Fatalf("node %d transmitted %d times, want 2", v, c)
		}
	}
	// Node 2 is informed at round 2 and dies at the end of round 4; the
	// engine must stop there, not burn the other 46 rounds.
	if res.Rounds != 4 {
		t.Fatalf("session ran %d rounds, want early stop at 4 (network dead)", res.Rounds)
	}
	if res.Energy.DeadCount != 3 || res.Energy.FirstDeathRound != 2 {
		t.Fatalf("deaths (%d, first %d), want (3, 2)", res.Energy.DeadCount, res.Energy.FirstDeathRound)
	}
}

// TestDeadReceiverSemantics: with the default model a node that depletes
// before the message reaches it never joins the informed set; with
// DeadReceive it still does (the paper's listening-is-free reading).
func TestDeadReceiverSemantics(t *testing.T) {
	g := graph.Path(3)
	// Listen costs 1/round; node 2's battery dies at the end of round 1,
	// before the message (which needs two hops) can reach it.
	budgets := []float64{100, 100, 1}
	m := energy.Model{Tx: 1, Listen: 1}

	res := RunBroadcast(g, 0, flood{}, rng.New(1),
		Options{MaxRounds: 6, Energy: &energy.Spec{Model: m, Budgets: budgets}})
	if res.Informed != 2 || res.Completed() {
		t.Fatalf("dead receiver joined the informed set: informed=%d", res.Informed)
	}

	res = RunBroadcast(g, 0, flood{}, rng.New(1),
		Options{MaxRounds: 6, Energy: &energy.Spec{Model: m, Budgets: budgets, DeadReceive: true}})
	if res.Informed != 3 || !res.Completed() {
		t.Fatalf("DeadReceive: informed=%d, want 3", res.Informed)
	}
}

// TestEnergyResumeAcrossCampaigns: a second session resuming the first's
// battery bank keeps draining the same charge and keeps the age clock.
func TestEnergyResumeAcrossCampaigns(t *testing.T) {
	g := graph.Cycle(8)
	spec := &energy.Spec{Model: energy.UnitTx(), Budget: 5}

	s1 := NewBroadcastSession(8, 0, flood{}, rng.New(1))
	r1 := s1.Run(g, Options{MaxRounds: 3, Energy: spec})
	bank := s1.EnergyState()
	if bank == nil {
		t.Fatal("no energy state captured")
	}

	s2 := NewBroadcastSession(8, 1, flood{}, rng.New(2))
	r2 := s2.Run(g, Options{MaxRounds: 3, Energy: &energy.Spec{Resume: bank}})
	if s2.EnergyState() != bank {
		t.Fatal("resumed session did not adopt the battery bank")
	}
	if r2.Energy.TxEnergy <= r1.Energy.TxEnergy {
		t.Fatalf("cumulative tx energy did not grow across campaigns: %g then %g",
			r1.Energy.TxEnergy, r2.Energy.TxEnergy)
	}
	for v := range r2.Energy.Spent {
		if r2.Energy.Spent[v] < r1.Energy.Spent[v] {
			t.Fatalf("node %d: spend shrank across campaigns", v)
		}
	}
}

// TestEnergySpecChangeMidSessionPanics pins the capture rule.
func TestEnergySpecChangeMidSessionPanics(t *testing.T) {
	g := graph.Cycle(4)
	s := NewBroadcastSession(4, 0, flood{}, rng.New(1))
	s.Run(g, Options{MaxRounds: 2, Energy: &energy.Spec{Model: energy.UnitTx(), Budget: 10}})
	defer func() {
		if recover() == nil {
			t.Fatal("changing Options.Energy mid-session should panic")
		}
	}()
	s.Run(g, Options{MaxRounds: 2, Energy: &energy.Spec{Model: energy.UnitTx(), Budget: 99}})
}

// TestEnergyAccountingAllocationFree: with a warm Scratch, the per-round
// energy accounting must not allocate — a 40× longer run costs the same
// fixed per-Run allocations (Result, Report, per-node copies).
func TestEnergyAccountingAllocationFree(t *testing.T) {
	n := 128
	g := graph.Cycle(n)
	sc := NewScratch()
	spec := &energy.Spec{Model: energy.CC2420(), Budget: 1e9}
	run := func(rounds int) {
		RunBroadcastWith(sc, g, 0, flood{}, rng.New(7), Options{MaxRounds: rounds, Energy: spec})
	}
	run(50) // warm the scratch
	short := testing.AllocsPerRun(10, func() { run(50) })
	long := testing.AllocsPerRun(10, func() { run(2000) })
	if long > short+1 {
		t.Fatalf("per-round allocation leak: %v allocs for 50 rounds, %v for 2000", short, long)
	}
}
