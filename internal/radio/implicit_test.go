package radio

// Equivalence suite for implicit topologies: the engine run against a
// graph.Implicit backend must be bit-identical to the run against the
// materialization of that same backend, on every engine forcing — the
// implicit analogue of TestEngineConfigurationsBitIdentical. Collisions and
// History are excluded per the Result.Collisions contract (assertSameResult
// already encodes this).

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/rng"
)

// implicitTestGraphs returns the two implicit acceptance backends with
// their materializations: per-row skip-sampled G(n,p) and the
// coordinates-only geometric index (heterogeneous radii, so in- and
// out-rows genuinely differ).
func implicitTestGraphs(t *testing.T) map[string]struct {
	imp graph.Implicit
	mat *graph.Digraph
} {
	t.Helper()
	n := 512
	gnp := graph.NewImplicitGNP(n, 6*math.Log(float64(n))/float64(n), 77)
	rc := graph.ConnectivityRadius(n)
	geo := graph.NewImplicitGeom(graph.GeomSpec{N: n, Radius: rc, RadiusMax: 3 * rc, Torus: true}, rng.New(78))
	return map[string]struct {
		imp graph.Implicit
		mat *graph.Digraph
	}{
		"gnp": {gnp, graph.MaterializeImplicit(gnp)},
		"udg": {geo, graph.MaterializeImplicit(geo)},
	}
}

// TestImplicitBitIdenticalToMaterialized is the headline pin: every kernel
// forcing × decision path × skip setting × energy metering produces the
// same result whether the engine reads CSR rows or re-derives them.
func TestImplicitBitIdenticalToMaterialized(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	configs := []struct {
		name string
		o    EngineOverrides
	}{
		{"default", EngineOverrides{}},
		{"scalar", EngineOverrides{ScalarDecisions: true}},
		{"push", EngineOverrides{Kernel: KernelPush}},
		{"pull", EngineOverrides{Kernel: KernelPull}},
		{"parallel", EngineOverrides{Kernel: KernelParallel}},
		{"dense", EngineOverrides{Kernel: KernelDense}},
		{"noskip", EngineOverrides{DisableSkip: true}},
		{"scalar-pull-noskip", EngineOverrides{ScalarDecisions: true, Kernel: KernelPull, DisableSkip: true}},
	}
	specs := map[string]func() *energy.Spec{
		"nometer": func() *energy.Spec { return nil },
		"budget": func() *energy.Spec {
			return &energy.Spec{Model: energy.CC2420(), Budget: 150, TrackPartition: true}
		},
	}
	for gname, pair := range implicitTestGraphs(t) {
		for ename, mkSpec := range specs {
			run := func(g graph.Implicit) *Result {
				return RunBroadcast(g, 0, &sbern{q: 0.02}, rng.New(42),
					Options{MaxRounds: 2500, Energy: mkSpec()})
			}
			for _, cfg := range configs {
				SetEngineOverrides(cfg.o)
				want := run(pair.mat)
				got := run(pair.imp)
				SetEngineOverrides(EngineOverrides{})
				assertSameResult(t, gname+"/"+ename+"/"+cfg.name, want, got)
			}
		}
	}
}

// TestImplicitGNPAutoRunStaysPushOnly pins the memory contract of the
// planet-scale path: an adaptive (un-forced) run on implicit G(n,p) must
// never trigger in-side queries — CheapIn stays false, i.e. the O(n + m)
// transpose index was never built and the session stayed O(n).
func TestImplicitGNPAutoRunStaysPushOnly(t *testing.T) {
	n := 512
	g := graph.NewImplicitGNP(n, 6*math.Log(float64(n))/float64(n), 5)
	res := RunBroadcast(g, 0, &sbern{q: 0.02}, rng.New(9), Options{MaxRounds: 2500})
	if res.Informed < n/2 {
		t.Fatalf("broadcast stalled at %d/%d informed; workload is not representative", res.Informed, n)
	}
	if g.CheapIn() {
		t.Fatal("adaptive run on implicit G(n,p) built the transpose index; the push-only gate leaks in-side queries")
	}
}

// TestImplicitLossyEquivalence covers the lossy channel on implicit rows:
// hashed per-edge draws are order-independent, so implicit row enumeration
// must reach exactly the verdicts CSR iteration does. ExactCollisions pins
// both runs to transmitter-side kernels so the collision counts are
// comparable too (without it the CSR run may adaptively pull, which counts
// uninformed receivers only).
func TestImplicitLossyEquivalence(t *testing.T) {
	for gname, pair := range implicitTestGraphs(t) {
		run := func(g graph.Implicit) *Result {
			return RunBroadcast(g, 0, &sbern{q: 0.05}, rng.New(11),
				Options{MaxRounds: 1200, LossProb: 0.2, ExactCollisions: true})
		}
		want := run(pair.mat)
		got := run(pair.imp)
		if want.Collisions != got.Collisions {
			t.Fatalf("%s: lossy collision counts differ: %d vs %d", gname, want.Collisions, got.Collisions)
		}
		assertSameResult(t, gname+"/lossy", want, got)
	}
}

// TestImplicitParallelOptionEquivalence drives the sharded kernel through
// Options.Parallel (not just the override) far enough past the serial
// fallback threshold to exercise the fan-out path on implicit rows.
func TestImplicitParallelOptionEquivalence(t *testing.T) {
	n := 2048
	g := graph.NewImplicitGNP(n, 4e-3, 31)
	mat := graph.MaterializeImplicit(g)
	run := func(gr graph.Implicit, par bool) *Result {
		return RunBroadcast(gr, 0, &sbern{q: 0.4}, rng.New(6),
			Options{MaxRounds: 400, Parallel: par, Workers: 4})
	}
	want := run(mat, false)
	assertSameResult(t, "parallel/materialized", want, run(mat, true))
	assertSameResult(t, "parallel/implicit", want, run(g, true))
}
