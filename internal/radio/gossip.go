package radio

import (
	"math/bits"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Gossiper is a gossiping protocol in the join model of §3: every node
// starts with its own rumor, nodes may join all rumors they know into a
// single message, and a joined message is transmitted in one round.
// The engine guarantees the same calling discipline as for Broadcaster
// (Begin once per Run, then per round BeginRound followed by ShouldTransmit
// for every node in increasing id order).
type Gossiper interface {
	Name() string
	Begin(n int, r *rng.RNG)
	BeginRound(round int)
	// ShouldTransmit reports whether node v transmits this round. Unlike
	// broadcast, every node always has something to send (at least its own
	// rumor), so the engine consults every node every round.
	ShouldTransmit(round int, v graph.NodeID) bool
}

// BatchGossiper is the gossip analogue of BatchBroadcaster: the engine
// replaces the per-node ShouldTransmit loop with one AppendTransmitters
// call per round. The shared-draw contract is the same — both paths must
// select the same transmitter sequence (in increasing node order, since
// gossip consults every node) from the same randomness.
type BatchGossiper interface {
	Gossiper
	// AppendTransmitters appends this round's transmitters to dst and
	// returns the extended slice. Unlike the broadcast variant there is no
	// candidate-list parameter: every node gossips, and protocols already
	// know n from Begin, so they sample the id range directly.
	AppendTransmitters(round int, dst []graph.NodeID) []graph.NodeID
}

// GossipOptions configures a gossip run.
type GossipOptions struct {
	// MaxRounds caps the run length. Required (> 0).
	MaxRounds int
	// FullDuplex lets a transmitting node also receive in the same round.
	// Default false (half-duplex), matching the broadcast model.
	FullDuplex bool
	// StopWhenComplete ends the run as soon as every node knows every
	// rumor; false runs the full schedule for faithful energy accounting.
	StopWhenComplete bool
	// RecordHistory captures per-round knowledge growth.
	RecordHistory bool
}

// GossipRoundStat is one row of a gossip run's history.
type GossipRoundStat struct {
	Round        int
	Transmitters int
	KnownPairs   int64 // Σ_v |rumors known to v| at end of round
}

// GossipResult summarises one gossip run (one Run segment of a session).
type GossipResult struct {
	Protocol      string
	Rounds        int   // rounds executed in this segment
	CompleteRound int   // session-absolute round at which gossip completed; -1 if not yet
	KnownPairs    int64 // session-cumulative
	TotalTx       int64 // this segment
	MaxNodeTx     int   // session-cumulative
	PerNodeTx     []int32
	History       []GossipRoundStat
}

// Completed reports whether gossip finished (everyone knows everything).
func (r *GossipResult) Completed() bool { return r.CompleteRound >= 0 }

// TxPerNode returns the mean transmissions per node over this segment.
func (r *GossipResult) TxPerNode() float64 {
	return float64(r.TotalTx) / float64(len(r.PerNodeTx))
}

// rumorSet is a fixed-size bitset over rumor ids.
type rumorSet []uint64

func newRumorSet(n int) rumorSet { return make(rumorSet, (n+63)/64) }

func (s rumorSet) add(i graph.NodeID) { s[i>>6] |= 1 << (uint(i) & 63) }

// union merges o into s and returns the number of newly added rumors.
func (s rumorSet) union(o rumorSet) int {
	added := 0
	for i, w := range o {
		nw := s[i] | w
		added += bits.OnesCount64(nw ^ s[i])
		s[i] = nw
	}
	return added
}

func (s rumorSet) clone() rumorSet {
	c := make(rumorSet, len(s))
	copy(c, s)
	return c
}

// GossipSession holds gossip knowledge across multiple Run segments, so the
// topology may change between segments — the paper's mobile-network setting
// (§1: "due to the mobility of the nodes, the network topology changes over
// time"). Knowledge, per-node transmission counts, and the round clock
// persist; each Run may use a different graph over the same node set.
type GossipSession struct {
	n          int
	know       []rumorSet
	slab       []uint64 // single backing store for all n rumor sets
	knownPairs int64
	rounds     int // absolute round clock across segments

	// scratch buffers reused across rounds and segments
	hits         []int32
	lastFrom     []graph.NodeID
	isTx         []bool
	transmitters []graph.NodeID
	touched      []graph.NodeID
}

// NewGossipSession creates a session for n nodes, each knowing its own rumor.
func NewGossipSession(n int) *GossipSession {
	if n < 1 {
		panic("radio: gossip session needs n >= 1")
	}
	words := (n + 63) / 64
	// One slab sliced into n windows instead of n individual rumor sets:
	// the allocation count per session drops from O(n) to O(1) (the win
	// BenchmarkPrimitiveGossipRun gates), and the sets sit contiguous for
	// the union-heavy merge loop.
	s := &GossipSession{
		n:            n,
		know:         make([]rumorSet, n),
		slab:         make([]uint64, n*words),
		hits:         make([]int32, n),
		lastFrom:     make([]graph.NodeID, n),
		isTx:         make([]bool, n),
		transmitters: make([]graph.NodeID, 0, n),
		touched:      make([]graph.NodeID, 0, n),
	}
	for v := 0; v < n; v++ {
		s.know[v] = rumorSet(s.slab[v*words : (v+1)*words])
		s.know[v].add(graph.NodeID(v))
	}
	s.knownPairs = int64(n)
	return s
}

// reset returns the session to its initial state — each node knowing only
// its own rumor, round clock at zero — without releasing any storage.
func (s *GossipSession) reset() {
	for i := range s.slab {
		s.slab[i] = 0
	}
	for v := 0; v < s.n; v++ {
		s.know[v].add(graph.NodeID(v))
		s.hits[v] = 0
		s.isTx[v] = false
	}
	s.knownPairs = int64(s.n)
	s.rounds = 0
}

// GossipScratch recycles a gossip session across runs, the gossip analogue
// of Scratch for broadcast: trial loops running many same-n gossip
// simulations reset one session's storage per run instead of reallocating
// the n rumor sets and engine buffers. A GossipScratch must not be shared
// between concurrent runs (give each sweep worker its own, as
// sweep.RunTrialsScratch does).
type GossipScratch struct {
	sess *GossipSession
}

// NewGossipScratch returns an empty scratch; buffers materialise on first use.
func NewGossipScratch() *GossipScratch { return &GossipScratch{} }

// NewGossipSessionWith is NewGossipSession with storage borrowed from sc:
// a same-n session held by the scratch is reset and reused, anything else is
// allocated fresh and parked in sc for the next call. sc may be nil.
func NewGossipSessionWith(sc *GossipScratch, n int) *GossipSession {
	if sc != nil && sc.sess != nil && sc.sess.n == n {
		sc.sess.reset()
		return sc.sess
	}
	s := NewGossipSession(n)
	if sc != nil {
		sc.sess = s
	}
	return s
}

// KnownPairs returns Σ_v |rumors known to v| (n² means complete).
func (s *GossipSession) KnownPairs() int64 { return s.knownPairs }

// Complete reports whether every node knows every rumor.
func (s *GossipSession) Complete() bool { return s.knownPairs >= int64(s.n)*int64(s.n) }

// Rounds returns the absolute round clock (total rounds across segments).
func (s *GossipSession) Rounds() int { return s.rounds }

// Knows reports whether node v currently knows the rumor of node u.
func (s *GossipSession) Knows(v, u graph.NodeID) bool {
	return s.know[v][u>>6]&(1<<(uint(u)&63)) != 0
}

// Run executes up to opt.MaxRounds further gossip rounds of protocol p on
// graph g (which must have the session's node count but may differ from
// previous segments' graphs). Per round, a node w receives iff exactly one
// of its in-neighbours transmits (and, under half-duplex, w itself stays
// silent); it then joins the sender's rumor set as of the START of the
// round into its own — the paper's m_{r+1}(w) = m_r(w) ∪ m_r(u) rule. The
// engine snapshots sender sets where required so same-round relaying cannot
// occur.
func (s *GossipSession) Run(g *graph.Digraph, p Gossiper, protoRNG *rng.RNG, opt GossipOptions) *GossipResult {
	if opt.MaxRounds <= 0 {
		panic("radio: MaxRounds must be positive")
	}
	if g.N() != s.n {
		panic("radio: graph size does not match gossip session")
	}
	n := s.n
	res := &GossipResult{
		Protocol:      p.Name(),
		CompleteRound: -1,
		PerNodeTx:     make([]int32, n),
		KnownPairs:    s.knownPairs,
	}
	if s.Complete() {
		res.CompleteRound = s.rounds
		return res
	}

	p.Begin(n, protoRNG)
	batch, _ := p.(BatchGossiper)
	if engineOverrides.ScalarDecisions {
		batch = nil
	}
	// Cross-round skipping: a silent gossip round changes nothing but the
	// clock, so protocols exposing the uniform stream contract fast-forward
	// across silent spans (disabled when per-round history is recorded).
	skipper, _ := p.(UniformGossipRound)
	canSkip := skipper != nil && !engineOverrides.DisableSkip && !opt.RecordHistory
	totalTarget := int64(n) * int64(n)
	transmitters := s.transmitters[:0]
	touched := s.touched[:0]

	start := s.rounds
	segEnd := start + opt.MaxRounds
	for s.rounds < segEnd {
		round := s.rounds + 1
		// RoundProb gates the skip attempt: only uniform Bernoulli rounds
		// are candidates for cross-round fast-forwarding.
		if _, uniform := uniformGossipProb(skipper, canSkip, round); uniform {
			if next := skipper.SkipSilent(round, segEnd); next > round {
				if next > segEnd+1 {
					next = segEnd + 1
				}
				s.rounds = next - 1
				res.Rounds = s.rounds - start
				if s.rounds >= segEnd {
					break
				}
				round = next
			}
		}
		s.rounds = round
		p.BeginRound(round)
		transmitters = transmitters[:0]
		if batch != nil {
			transmitters = batch.AppendTransmitters(round, transmitters)
			for _, v := range transmitters {
				res.PerNodeTx[v]++
				s.isTx[v] = true
			}
		} else {
			for v := 0; v < n; v++ {
				if p.ShouldTransmit(round, graph.NodeID(v)) {
					transmitters = append(transmitters, graph.NodeID(v))
					res.PerNodeTx[v]++
					s.isTx[v] = true
				}
			}
		}
		res.TotalTx += int64(len(transmitters))

		// Delivery. Direction-optimizing under half-duplex: when most nodes
		// transmit (dense gossip rounds), iterating the NON-transmitters'
		// in-edges against the transmitter marks costs M - Σ indeg(tx) + n
		// instead of the sender-centric Σ outdeg(tx). Under full duplex
		// transmitters can receive too (and need start-of-round snapshots),
		// so delivery stays sender-centric there.
		usePull := false
		if !opt.FullDuplex && len(transmitters) > 0 {
			switch engineOverrides.Kernel {
			case KernelPull:
				usePull = true
			case KernelPush, KernelParallel, KernelDense:
				// forced sender-centric (gossip exchanges rumor sets per
				// edge, so the broadcast-only dense bitset kernel degrades
				// to push here)
			default:
				var inTx, outTx int64
				for _, u := range transmitters {
					inTx += int64(g.InDegree(u))
					outTx += int64(g.OutDegree(u))
				}
				usePull = int64(g.M())-inTx+int64(n) < outTx
			}
		}
		if usePull {
			// Receiver-centric: each non-transmitter counts its transmitting
			// in-neighbours (early exit at two); exactly one means reception.
			// Senders' sets never change mid-round under half-duplex, so the
			// merge order across receivers is immaterial and the result is
			// identical to the sender-centric pass.
			for v := 0; v < n; v++ {
				if s.isTx[v] {
					continue // half-duplex: a transmitting node hears nothing
				}
				hits := 0
				var from graph.NodeID
				for _, u := range g.In(graph.NodeID(v)) {
					if s.isTx[u] {
						hits++
						if hits == 2 {
							break
						}
						from = u
					}
				}
				if hits == 1 {
					s.knownPairs += int64(s.know[v].union(s.know[from]))
				}
			}
		} else {
			touched = touched[:0]
			for _, u := range transmitters {
				for _, w := range g.Out(u) {
					if s.hits[w] == 0 {
						touched = append(touched, w)
					}
					s.hits[w]++
					s.lastFrom[w] = u
				}
			}

			// Under full duplex a transmitter can also receive, so its rumor
			// set may be extended during this round's merge loop. Snapshot
			// the sets of all such sender-receivers before merging, so that
			// receivers of their transmissions see the start-of-round set.
			// Under half-duplex no transmitter receives, so no snapshots are
			// needed.
			var snapshots map[graph.NodeID]rumorSet
			if opt.FullDuplex {
				for _, w := range touched {
					if s.hits[w] == 1 && s.isTx[w] {
						if snapshots == nil {
							snapshots = make(map[graph.NodeID]rumorSet)
						}
						snapshots[w] = s.know[w].clone()
					}
				}
			}

			for _, w := range touched {
				h := s.hits[w]
				s.hits[w] = 0
				if h != 1 {
					continue
				}
				if !opt.FullDuplex && s.isTx[w] {
					continue // half-duplex: a transmitting node hears nothing
				}
				u := s.lastFrom[w]
				src := s.know[u]
				if snap, ok := snapshots[u]; ok {
					src = snap
				}
				s.knownPairs += int64(s.know[w].union(src))
			}
		}
		for _, u := range transmitters {
			s.isTx[u] = false
		}
		res.Rounds = round - start
		res.KnownPairs = s.knownPairs
		if opt.RecordHistory {
			res.History = append(res.History, GossipRoundStat{
				Round:        round,
				Transmitters: len(transmitters),
				KnownPairs:   s.knownPairs,
			})
		}
		if s.knownPairs >= totalTarget {
			res.CompleteRound = round
			if opt.StopWhenComplete {
				break
			}
		}
	}
	s.transmitters = transmitters
	s.touched = touched
	for _, c := range res.PerNodeTx {
		if int(c) > res.MaxNodeTx {
			res.MaxNodeTx = int(c)
		}
	}
	return res
}

// uniformGossipProb asks a UniformGossipRound protocol for the round's
// shared probability when skipping is enabled; (0, false) otherwise.
func uniformGossipProb(u UniformGossipRound, enabled bool, round int) (float64, bool) {
	if !enabled {
		return 0, false
	}
	return u.RoundProb(round)
}

// RunGossip simulates protocol p gossiping on a static graph g: a fresh
// single-segment session. See GossipSession.Run for the semantics.
func RunGossip(g *graph.Digraph, p Gossiper, protoRNG *rng.RNG, opt GossipOptions) *GossipResult {
	return NewGossipSession(g.N()).Run(g, p, protoRNG, opt)
}

// RunGossipWith is RunGossip with session storage borrowed from sc (see
// GossipScratch): the trial-loop form that keeps repeated same-n runs from
// reallocating per-node rumor sets.
func RunGossipWith(sc *GossipScratch, g *graph.Digraph, p Gossiper, protoRNG *rng.RNG, opt GossipOptions) *GossipResult {
	return NewGossipSessionWith(sc, g.N()).Run(g, p, protoRNG, opt)
}
