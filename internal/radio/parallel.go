package radio

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// parallelDeliverer is the sharded delivery kernel: transmitters are split
// among workers that accumulate hit counts with atomic adds, then a second
// pass (also sharded by transmitter) collects the uniquely-hit receivers.
//
// In the second pass a worker that resolves a receiver claims it by CASing
// the counter to zero — which doubles as the reset, so no third pass is
// needed. A receiver with hits == 1 has exactly one transmitter pointing at
// it (one claimant); a collided receiver is claimed by whichever of its
// transmitters' workers wins the CAS, and the losers observe 0 and skip.
// Results are sorted before returning, which makes the parallel kernel
// bit-identical to the serial one.
//
// This exists for large-graph throughput (the X4 engine experiment); the
// experiment harness otherwise parallelises across independent trials,
// which is the better granularity for sweeps.
type parallelDeliverer struct {
	hits    []int32
	workers int
}

func newParallelDeliverer(n, workers int) *parallelDeliverer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &parallelDeliverer{hits: make([]int32, n), workers: workers}
}

func (pd *parallelDeliverer) deliver(g *graph.Digraph, transmitters []graph.NodeID, informed []bool) (delivered []graph.NodeID, collisions int) {
	w := pd.workers
	if len(transmitters) < 4*w {
		// Not worth fanning out; reuse the serial algorithm on our buffer.
		st := deliveryState{hits: pd.hits}
		return st.deliver(g, transmitters, informed)
	}

	// Pass 1: count hits.
	var wg sync.WaitGroup
	chunk := (len(transmitters) + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= len(transmitters) {
			break
		}
		hi := lo + chunk
		if hi > len(transmitters) {
			hi = len(transmitters)
		}
		wg.Add(1)
		go func(txs []graph.NodeID) {
			defer wg.Done()
			for _, u := range txs {
				for _, t := range g.Out(u) {
					atomic.AddInt32(&pd.hits[t], 1)
				}
			}
		}(transmitters[lo:hi])
	}
	wg.Wait()

	// Pass 2: claim uniquely-hit receivers and count collisions. Claiming
	// CASes the counter back to zero, so the array is fully reset when the
	// pass completes (no increments happen concurrently with this pass).
	results := make([][]graph.NodeID, w)
	collCounts := make([]int, w)
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= len(transmitters) {
			break
		}
		hi := lo + chunk
		if hi > len(transmitters) {
			hi = len(transmitters)
		}
		wg.Add(1)
		go func(idx int, txs []graph.NodeID) {
			defer wg.Done()
			var local []graph.NodeID
			coll := 0
			for _, u := range txs {
				for _, t := range g.Out(u) {
					h := atomic.LoadInt32(&pd.hits[t])
					switch {
					case h == 1:
						if atomic.CompareAndSwapInt32(&pd.hits[t], 1, 0) {
							if !informed[t] {
								local = append(local, t)
							}
						}
					case h >= 2:
						// Whichever worker wins the CAS accounts for the
						// collision; losers observe 0 and skip.
						if atomic.CompareAndSwapInt32(&pd.hits[t], h, 0) {
							coll++
						}
					}
				}
			}
			results[idx] = local
			collCounts[idx] = coll
		}(i, transmitters[lo:hi])
	}
	wg.Wait()

	for i := 0; i < w; i++ {
		delivered = append(delivered, results[i]...)
		collisions += collCounts[i]
	}
	sortNodeIDs(delivered)
	return delivered, collisions
}
