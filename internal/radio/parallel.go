package radio

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// parallelDeliverer is the sharded delivery kernel. It replaces the old
// atomic-CAS design with receiver-sharded counting, which does the same
// work with zero atomics and strictly sequential memory traffic:
//
//	Pass 1 (sharded by transmitter): each worker walks its transmitters'
//	out-edges and distributes the hit receivers into per-(worker, shard)
//	buckets, where a shard is a contiguous receiver-id range.
//
//	Pass 2 (sharded by receiver): each shard owner merges the buckets
//	aimed at its range into the shared hit array — no two workers touch
//	the same counter — then resolves its receivers exactly like the
//	serial kernel (> maxHits surviving hits collide, 1..maxHits deliver)
//	and resets its counters.
//
// Per-shard delivered lists are sorted locally; concatenating them in shard
// order yields a globally sorted result, which makes the kernel
// bit-identical to the serial one. All buckets and output buffers are
// retained across rounds, so the steady state allocates nothing.
//
// This exists for large-graph throughput (the X4 engine experiment); the
// experiment harness otherwise parallelises across independent trials,
// which is the better granularity for sweeps.
type parallelDeliverer struct {
	n       int
	workers int
	shift   uint // receiver shard = id >> shift
	shards  int

	hits    []int32
	st      deliveryState      // serial fallback for small rounds
	buckets [][][]graph.NodeID // [worker][shard] hit receivers
	rows    [][]graph.NodeID   // per-worker row buffers for implicit graphs
	touched [][]graph.NodeID   // per-shard first-touch lists
	outD    [][]graph.NodeID   // per-shard delivered lists
	colls   []int              // per-shard collision counts
	merged  []graph.NodeID     // concatenated delivered scratch
}

func newParallelDeliverer(n, workers int) *parallelDeliverer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shift := uint(0)
	for (n-1)>>shift >= workers {
		shift++
	}
	shards := ((n - 1) >> shift) + 1
	pd := &parallelDeliverer{
		n:       n,
		workers: workers,
		shift:   shift,
		shards:  shards,
		hits:    make([]int32, n),
		buckets: make([][][]graph.NodeID, workers),
		rows:    make([][]graph.NodeID, workers),
		touched: make([][]graph.NodeID, shards),
		outD:    make([][]graph.NodeID, shards),
		colls:   make([]int, shards),
	}
	for w := range pd.buckets {
		pd.buckets[w] = make([][]graph.NodeID, shards)
	}
	pd.st.hits = pd.hits
	return pd
}

func (pd *parallelDeliverer) deliver(g graph.Implicit, round int, transmitters []graph.NodeID, informed Bitset, caps channelCaps) (delivered []graph.NodeID, collisions int) {
	w := pd.workers
	if len(transmitters) < 4*w {
		// Not worth fanning out; run the serial algorithm on our buffers.
		return pd.st.deliver(g, round, transmitters, informed, caps)
	}
	dg, _ := g.(*graph.Digraph)

	// Pass 1: distribute hit receivers into per-(worker, shard) buckets,
	// dropping signals the channel's edge filter fades out (the filter is a
	// pure hash of (seed, round, tx, rx), so workers need no shared state).
	// Implicit graphs enumerate rows into a per-worker buffer (rows are
	// re-derived independently, so workers never share generator state).
	var wg sync.WaitGroup
	chunk := (len(transmitters) + w - 1) / w
	nBuckets := (len(transmitters) + chunk - 1) / chunk
	for i := 0; i < nBuckets; i++ {
		lo := i * chunk
		hi := min(lo+chunk, len(transmitters))
		wg.Add(1)
		go func(bw [][]graph.NodeID, txs []graph.NodeID, row *[]graph.NodeID) {
			defer wg.Done()
			for s := range bw {
				bw[s] = bw[s][:0]
			}
			for _, u := range txs {
				out := *row
				if dg != nil {
					out = dg.Out(u)
				} else {
					out = g.AppendOut(u, out[:0])
					*row = out
				}
				if caps.edgeOK == nil {
					for _, t := range out {
						s := uint32(t) >> pd.shift
						bw[s] = append(bw[s], t)
					}
				} else {
					for _, t := range out {
						if !caps.edgeOK(round, u, t) {
							continue
						}
						s := uint32(t) >> pd.shift
						bw[s] = append(bw[s], t)
					}
				}
			}
		}(pd.buckets[i], transmitters[lo:hi], &pd.rows[i])
	}
	wg.Wait()

	// Pass 2: each shard owner counts its range and resolves receivers.
	for s := 0; s < pd.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			touched := pd.touched[s][:0]
			for b := 0; b < nBuckets; b++ {
				for _, t := range pd.buckets[b][s] {
					if pd.hits[t] == 0 {
						touched = append(touched, t)
					}
					pd.hits[t]++
				}
			}
			out := pd.outD[s][:0]
			coll := 0
			for _, t := range touched {
				h := pd.hits[t]
				pd.hits[t] = 0
				if h > caps.maxHits {
					coll++
					continue
				}
				if informed.Get(t) {
					continue
				}
				out = append(out, t)
			}
			sortNodeIDs(out)
			pd.touched[s] = touched
			pd.outD[s] = out
			pd.colls[s] = coll
		}(s)
	}
	wg.Wait()

	// Shards are ascending id ranges, so concatenation is globally sorted.
	merged := pd.merged[:0]
	for s := 0; s < pd.shards; s++ {
		merged = append(merged, pd.outD[s]...)
		collisions += pd.colls[s]
	}
	pd.merged = merged
	return merged, collisions
}
