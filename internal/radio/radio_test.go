package radio

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// scripted is a test Broadcaster that transmits exactly per plan.
type scripted struct {
	plan      map[int][]graph.NodeID
	lastRound int
	informed  map[graph.NodeID]int // node -> round informed (for assertions)
}

func newScripted(plan map[int][]graph.NodeID) *scripted {
	last := 0
	for r := range plan {
		if r > last {
			last = r
		}
	}
	return &scripted{plan: plan, lastRound: last}
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Begin(n int, src graph.NodeID, r *rng.RNG) {
	s.informed = make(map[graph.NodeID]int)
}
func (s *scripted) BeginRound(int) {}
func (s *scripted) ShouldTransmit(round int, v graph.NodeID) bool {
	for _, u := range s.plan[round] {
		if u == v {
			return true
		}
	}
	return false
}
func (s *scripted) OnInformed(round int, v graph.NodeID) {
	if _, dup := s.informed[v]; dup {
		panic("OnInformed called twice for same node")
	}
	s.informed[v] = round
}
func (s *scripted) Quiesced(round int) bool { return round >= s.lastRound }

// flood transmits every round from every informed node.
type flood struct{}

func (flood) Name() string                          { return "flood" }
func (flood) Begin(int, graph.NodeID, *rng.RNG)     {}
func (flood) BeginRound(int)                        {}
func (flood) ShouldTransmit(int, graph.NodeID) bool { return true }
func (flood) OnInformed(int, graph.NodeID)          {}
func (flood) Quiesced(int) bool                     { return false }

// coin transmits with fixed probability q from every informed node.
type coin struct {
	q float64
	r *rng.RNG
}

func (c *coin) Name() string                              { return "coin" }
func (c *coin) Begin(n int, src graph.NodeID, r *rng.RNG) { c.r = r }
func (c *coin) BeginRound(int)                            {}
func (c *coin) ShouldTransmit(int, graph.NodeID) bool     { return c.r.Bernoulli(c.q) }
func (c *coin) OnInformed(int, graph.NodeID)              {}
func (c *coin) Quiesced(int) bool                         { return false }

func TestSingleTransmitterInformsNeighbours(t *testing.T) {
	// 0 -> {1,2}; only node 0 transmits in round 1.
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {0, 2}})
	p := newScripted(map[int][]graph.NodeID{1: {0}})
	res := RunBroadcast(g, 0, p, rng.New(1), Options{MaxRounds: 5})
	if !res.Completed() || res.InformedRound != 1 {
		t.Fatalf("completion: %+v", res)
	}
	if res.TotalTx != 1 || res.PerNodeTx[0] != 1 {
		t.Fatalf("tx accounting: %+v", res)
	}
	if p.informed[1] != 1 || p.informed[2] != 1 {
		t.Fatalf("informing rounds: %v", p.informed)
	}
}

func TestCollisionBlocksReception(t *testing.T) {
	// 0 -> 1, 0 -> 2, 2 -> 3, and 1,2 -> 4. Round 1: 0 informs 1,2.
	// Round 2: both 1 and 2 transmit -> 4 hears a collision, but 3 (hearing
	// only 2) is informed.
	g := graph.FromEdges(5, [][2]graph.NodeID{{0, 1}, {0, 2}, {2, 3}, {1, 4}, {2, 4}})
	p := newScripted(map[int][]graph.NodeID{1: {0}, 2: {1, 2}})
	res := RunBroadcast(g, 0, p, rng.New(1), Options{MaxRounds: 5, RecordHistory: true})
	if p.informed[3] != 2 {
		t.Fatalf("node 3 informed at %d, want 2", p.informed[3])
	}
	if _, ok := p.informed[4]; ok {
		t.Fatal("node 4 informed despite collision")
	}
	if res.Collisions != 1 {
		t.Fatalf("collision count %d, want 1", res.Collisions)
	}
	if res.Informed != 4 {
		t.Fatalf("informed %d, want 4", res.Informed)
	}
	// History should show the round-2 collision.
	if res.History[2].Collisions != 1 || res.History[2].NewlyInformed != 1 {
		t.Fatalf("history round 2: %+v", res.History[2])
	}
}

func TestAlreadyInformedNotRedelivered(t *testing.T) {
	// Cycle 0 <-> 1: node 1 transmitting back to 0 must not re-inform 0.
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}, {1, 0}})
	p := newScripted(map[int][]graph.NodeID{1: {0}, 2: {1}})
	res := RunBroadcast(g, 0, p, rng.New(1), Options{MaxRounds: 3})
	if res.Informed != 2 {
		t.Fatalf("informed %d", res.Informed)
	}
	if p.informed[0] != 0 {
		t.Fatalf("source informing round %d, want 0", p.informed[0])
	}
}

func TestFloodOnPathInformsInDHops(t *testing.T) {
	// On a directed path, flooding has no collisions and takes exactly D rounds.
	n := 10
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	res := RunBroadcast(g, 0, flood{}, rng.New(1), Options{MaxRounds: 50, StopWhenInformed: true})
	if res.InformedRound != n-1 {
		t.Fatalf("path flood informed at round %d, want %d", res.InformedRound, n-1)
	}
	if res.Collisions != 0 {
		t.Fatalf("collisions on a directed path: %d", res.Collisions)
	}
}

func TestFloodOnSymmetricPathCollides(t *testing.T) {
	// On a symmetric path flooding deadlocks in the middle: after round 2,
	// each frontier node's unheard neighbour hears two transmitters.
	g := graph.Path(7)
	res := RunBroadcast(g, 3, flood{}, rng.New(1), Options{MaxRounds: 30})
	// Round 1: 3 informs 2 and 4. Round 2 onwards: 2,3,4 all transmit;
	// node 1 hears only 2 (just 2 is its neighbour among transmitters)...
	// Actually node 1 hears 2 only -> informed. The stall happens for the
	// star; on a path flooding still completes. Just assert no crash and
	// sensible accounting.
	if res.TotalTx == 0 || res.Rounds != 30 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestFloodOnStarNeverCompletes(t *testing.T) {
	// Star centre 0 with 5 leaves: round 1 informs all leaves; from round 2
	// every node transmits forever, so nothing changes, but with every node
	// informed the run completes at round 1. Instead root the broadcast at a
	// leaf: leaf informs centre, centre informs others... then all leaves
	// collide at the centre forever, but centre already informed everyone.
	// The genuinely stuck case is two leaves informed first: build it via
	// a custom graph where two leaves hear the source.
	//   s -> l1, s -> l2, l1 -> c, l2 -> c (c never hears s directly)
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res := RunBroadcast(g, 0, flood{}, rng.New(1), Options{MaxRounds: 40})
	if res.Completed() {
		t.Fatal("flooding should livelock: l1 and l2 always collide at c")
	}
	if res.Informed != 3 {
		t.Fatalf("informed %d, want 3", res.Informed)
	}
	if res.Collisions != 39 {
		// rounds 2..40 each have exactly one collision at node 3
		t.Fatalf("collisions %d, want 39", res.Collisions)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.GNPDirected(200, 0.05, rng.New(9))
	run := func() *Result {
		return RunBroadcast(g, 0, &coin{q: 0.2}, rng.New(42), Options{MaxRounds: 200})
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.TotalTx != b.TotalTx || a.Informed != b.Informed || a.InformedRound != b.InformedRound {
		t.Fatalf("nondeterministic engine: %+v vs %+v", a, b)
	}
	for i := range a.PerNodeTx {
		if a.PerNodeTx[i] != b.PerNodeTx[i] {
			t.Fatalf("per-node tx differ at %d", i)
		}
	}
}

func TestTargetAndStopWhenInformed(t *testing.T) {
	g := graph.Complete(10)
	p := newScripted(map[int][]graph.NodeID{1: {0}})
	res := RunBroadcast(g, 0, p, rng.New(1), Options{MaxRounds: 10, Target: 5, StopWhenInformed: true})
	if res.InformedRound != 1 || res.Rounds != 1 {
		t.Fatalf("target stop: %+v", res)
	}
	// Source alone can satisfy Target=1 at round 0.
	res0 := RunBroadcast(g, 0, newScripted(nil), rng.New(1), Options{MaxRounds: 10, Target: 1, StopWhenInformed: true})
	if res0.InformedRound != 0 || res0.Rounds != 0 {
		t.Fatalf("round-0 target: %+v", res0)
	}
}

func TestQuiescedStopsEngine(t *testing.T) {
	g := graph.Complete(4)
	p := newScripted(map[int][]graph.NodeID{1: {0}}) // quiesces after round 1
	res := RunBroadcast(g, 0, p, rng.New(1), Options{MaxRounds: 100})
	if res.Rounds != 1 {
		t.Fatalf("engine ran %d rounds after quiescence", res.Rounds)
	}
}

func TestMaxRoundsCap(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{}) // no edges: never completes
	res := RunBroadcast(g, 0, flood{}, rng.New(1), Options{MaxRounds: 7})
	if res.Rounds != 7 || res.Completed() {
		t.Fatalf("cap: %+v", res)
	}
}

func TestInvalidOptionsPanic(t *testing.T) {
	g := graph.Complete(2)
	for name, opt := range map[string]Options{
		"no max rounds": {},
		"neg target":    {MaxRounds: 1, Target: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			RunBroadcast(g, 0, flood{}, rng.New(1), opt)
		}()
	}
}

func TestSourceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunBroadcast(graph.Complete(2), 5, flood{}, rng.New(1), Options{MaxRounds: 1})
}

func TestSortNodeIDs(t *testing.T) {
	r := rng.New(3)
	f := func(rawLen uint8) bool {
		m := int(rawLen % 100)
		xs := make([]graph.NodeID, m)
		for i := range xs {
			xs[i] = graph.NodeID(r.Intn(1000))
		}
		want := append([]graph.NodeID(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sortNodeIDs(xs)
		for i := range xs {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSortNodeIDsDegenerate covers the adversarial shapes for the
// three-way-partition quicksort: all-equal input (the classic quadratic /
// non-termination trap), already-sorted and reverse-sorted runs well past
// the insertion-sort cutoff, long runs of duplicates, and a sawtooth. Each
// must come out equal to the library sort.
func TestSortNodeIDsDegenerate(t *testing.T) {
	mk := func(m int, f func(i int) graph.NodeID) []graph.NodeID {
		xs := make([]graph.NodeID, m)
		for i := range xs {
			xs[i] = f(i)
		}
		return xs
	}
	cases := map[string][]graph.NodeID{
		"empty":         nil,
		"single":        {7},
		"all-equal":     mk(500, func(int) graph.NodeID { return 42 }),
		"sorted":        mk(500, func(i int) graph.NodeID { return graph.NodeID(i) }),
		"reverse":       mk(500, func(i int) graph.NodeID { return graph.NodeID(500 - i) }),
		"two-runs":      mk(600, func(i int) graph.NodeID { return graph.NodeID(i % 2) }),
		"long-runs":     mk(900, func(i int) graph.NodeID { return graph.NodeID(i / 300) }),
		"sawtooth":      mk(512, func(i int) graph.NodeID { return graph.NodeID(i % 17) }),
		"short-reverse": mk(23, func(i int) graph.NodeID { return graph.NodeID(23 - i) }),
	}
	for name, xs := range cases {
		want := append([]graph.NodeID(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sortNodeIDs(xs)
		if !equalNodeSlices(xs, want) {
			t.Fatalf("%s: sortNodeIDs mis-sorted: %v", name, xs)
		}
	}
}

func TestParallelMatchesSerialKernel(t *testing.T) {
	r := rng.New(4)
	g := graph.GNPDirected(800, 0.01, r)
	serial := newDeliveryState(g.N())
	par := newParallelDeliverer(g.N(), 4)
	for trial := 0; trial < 30; trial++ {
		informed := NewBitset(g.N())
		var txs []graph.NodeID
		for v := 0; v < g.N(); v++ {
			if r.Bernoulli(0.3) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(0.5) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		ds, cs := serial.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})
		dp, cp := par.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})
		if cs != cp {
			t.Fatalf("trial %d: collision counts %d vs %d", trial, cs, cp)
		}
		if len(ds) != len(dp) {
			t.Fatalf("trial %d: delivered %d vs %d", trial, len(ds), len(dp))
		}
		for i := range ds {
			if ds[i] != dp[i] {
				t.Fatalf("trial %d: delivered sets differ at %d", trial, i)
			}
		}
	}
}

func TestParallelEngineMatchesSerialEngine(t *testing.T) {
	g := graph.GNPDirected(500, 0.02, rng.New(5))
	opts := Options{MaxRounds: 300}
	optp := opts
	optp.Parallel = true
	optp.Workers = 3
	a := RunBroadcast(g, 0, &coin{q: 0.1}, rng.New(77), opts)
	b := RunBroadcast(g, 0, &coin{q: 0.1}, rng.New(77), optp)
	if a.Rounds != b.Rounds || a.TotalTx != b.TotalTx || a.Informed != b.Informed ||
		a.InformedRound != b.InformedRound || a.Collisions != b.Collisions {
		t.Fatalf("parallel engine diverged:\nserial   %+v\nparallel %+v", a, b)
	}
}

// --- gossip engine tests ---

// tdma transmits node (round-1) mod n each round: collision-free schedule.
type tdma struct{ n int }

func (p *tdma) Name() string            { return "tdma" }
func (p *tdma) Begin(n int, r *rng.RNG) { p.n = n }
func (p *tdma) BeginRound(int)          {}
func (p *tdma) ShouldTransmit(round int, v graph.NodeID) bool {
	return int(v) == (round-1)%p.n
}

// gossipCoin transmits with probability q.
type gossipCoin struct {
	q float64
	r *rng.RNG
}

func (p *gossipCoin) Name() string                          { return "gossip-coin" }
func (p *gossipCoin) Begin(n int, r *rng.RNG)               { p.r = r }
func (p *gossipCoin) BeginRound(int)                        {}
func (p *gossipCoin) ShouldTransmit(int, graph.NodeID) bool { return p.r.Bernoulli(p.q) }

func TestGossipTDMACompleteGraph(t *testing.T) {
	// TDMA on K_n: round r spreads node (r-1)'s current set to everyone.
	// Round 1: node 0's rumor reaches all. Round 2: node 1 sends {0's, 1's}
	// ... wait: node 1 already knows rumor 0 and its own. After round 2
	// everyone knows rumors {0,1}. Completion after n rounds.
	n := 6
	g := graph.Complete(n)
	res := RunGossip(g, &tdma{}, rng.New(1), GossipOptions{MaxRounds: 3 * n, StopWhenComplete: true})
	if !res.Completed() {
		t.Fatalf("TDMA gossip incomplete: %+v", res)
	}
	if res.CompleteRound != n {
		t.Fatalf("TDMA completion round %d, want %d", res.CompleteRound, n)
	}
	if res.TotalTx != int64(n) {
		t.Fatalf("TotalTx %d, want %d", res.TotalTx, n)
	}
}

func TestGossipHalfDuplexBlocksTransmitterReception(t *testing.T) {
	// Two nodes, both transmit every round: under half-duplex neither ever
	// receives; under full duplex each receives the other's rumor in round 1
	// (each has exactly one in-neighbour, so no collision).
	g := graph.Complete(2)
	always := &gossipCoin{q: 1}
	res := RunGossip(g, always, rng.New(1), GossipOptions{MaxRounds: 10, StopWhenComplete: true})
	if res.Completed() {
		t.Fatal("half-duplex simultaneous transmitters should never exchange")
	}
	res2 := RunGossip(g, &gossipCoin{q: 1}, rng.New(1), GossipOptions{MaxRounds: 10, FullDuplex: true, StopWhenComplete: true})
	if !res2.Completed() || res2.CompleteRound != 1 {
		t.Fatalf("full duplex exchange: %+v", res2)
	}
}

func TestGossipNoSameRoundRelay(t *testing.T) {
	// Path 0 -> 1 -> 2 (directed). Round 1: nodes 0 and 1 transmit
	// (full duplex so node 1 can receive while transmitting).
	// Node 1 receives rumor 0; node 2 must receive only node 1's
	// START-of-round set {1}, not rumor 0.
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	p := newScriptedGossip(map[int][]graph.NodeID{1: {0, 1}, 2: {1}})
	res := RunGossip(g, p, rng.New(1), GossipOptions{MaxRounds: 2, FullDuplex: true})
	// After round 1: know(1) = {0,1}, know(2) = {1,2}.
	// After round 2 (node 1 sends {0,1}): know(2) = {0,1,2}.
	if res.KnownPairs != 1+2+3 {
		t.Fatalf("KnownPairs %d, want 6", res.KnownPairs)
	}
}

type scriptedGossip struct {
	plan map[int][]graph.NodeID
}

func newScriptedGossip(plan map[int][]graph.NodeID) *scriptedGossip {
	return &scriptedGossip{plan: plan}
}
func (s *scriptedGossip) Name() string        { return "scripted-gossip" }
func (s *scriptedGossip) Begin(int, *rng.RNG) {}
func (s *scriptedGossip) BeginRound(int)      {}
func (s *scriptedGossip) ShouldTransmit(round int, v graph.NodeID) bool {
	for _, u := range s.plan[round] {
		if u == v {
			return true
		}
	}
	return false
}

func TestGossipCoinCompletesOnGNP(t *testing.T) {
	n := 64
	g := graph.GNPSymmetric(n, 0.2, rng.New(6))
	d := 0.2 * float64(n)
	res := RunGossip(g, &gossipCoin{q: 1 / d}, rng.New(7), GossipOptions{MaxRounds: 20000, StopWhenComplete: true})
	if !res.Completed() {
		t.Fatalf("gossip did not complete in %d rounds (known %d/%d)", res.Rounds, res.KnownPairs, n*n)
	}
}

func TestGossipMonotoneKnowledge(t *testing.T) {
	g := graph.GNPSymmetric(40, 0.3, rng.New(8))
	res := RunGossip(g, &gossipCoin{q: 0.1}, rng.New(9), GossipOptions{MaxRounds: 500, RecordHistory: true, StopWhenComplete: true})
	prev := int64(0)
	for _, h := range res.History {
		if h.KnownPairs < prev {
			t.Fatalf("knowledge decreased at round %d", h.Round)
		}
		prev = h.KnownPairs
	}
	if prev < int64(40) {
		t.Fatal("knowledge below initial state")
	}
}

func TestRumorSetUnion(t *testing.T) {
	a := newRumorSet(130)
	b := newRumorSet(130)
	a.add(0)
	b.add(64)
	b.add(129)
	if added := a.union(b); added != 2 {
		t.Fatalf("union added %d, want 2", added)
	}
	if added := a.union(b); added != 0 {
		t.Fatalf("re-union added %d, want 0", added)
	}
	c := a.clone()
	c.add(5)
	if added := a.union(c); added != 1 {
		t.Fatalf("clone isolation broken: %d", added)
	}
}

func TestGossipDeterminism(t *testing.T) {
	g := graph.GNPSymmetric(50, 0.2, rng.New(10))
	run := func() *GossipResult {
		return RunGossip(g, &gossipCoin{q: 0.15}, rng.New(11), GossipOptions{MaxRounds: 1000, StopWhenComplete: true})
	}
	a, b := run(), run()
	if a.CompleteRound != b.CompleteRound || a.TotalTx != b.TotalTx {
		t.Fatalf("gossip nondeterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkBroadcastRoundGNP(b *testing.B) {
	g := graph.GNPDirected(10000, 0.002, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunBroadcast(g, 0, &coin{q: 0.05}, rng.New(uint64(i)), Options{MaxRounds: 50})
	}
}

func BenchmarkGossipRoundGNP(b *testing.B) {
	g := graph.GNPSymmetric(1000, 0.02, rng.New(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunGossip(g, &gossipCoin{q: 0.05}, rng.New(uint64(i)), GossipOptions{MaxRounds: 100})
	}
}

// --- broadcast session, fading, jamming ---

func TestBroadcastSessionEquivalentToRunBroadcast(t *testing.T) {
	g := graph.GNPDirected(300, 0.03, rng.New(40))
	a := RunBroadcast(g, 0, &coin{q: 0.1}, rng.New(41), Options{MaxRounds: 200})
	s := NewBroadcastSession(g.N(), 0, &coin{q: 0.1}, rng.New(41))
	b := s.Run(g, Options{MaxRounds: 200})
	if a.Rounds != b.Rounds || a.TotalTx != b.TotalTx || a.Informed != b.Informed ||
		a.InformedRound != b.InformedRound || a.Collisions != b.Collisions {
		t.Fatalf("session diverged from RunBroadcast:\n%+v\n%+v", a, b)
	}
}

func TestBroadcastSessionAcrossTopologies(t *testing.T) {
	// Two disjoint directed halves: on g1 the message can only cover the
	// first half; after re-wiring to g2 (which connects the halves) the
	// same session finishes. Static runs on either graph alone cannot.
	n := 8
	b1 := graph.NewBuilder(n)
	for i := 0; i < 3; i++ {
		b1.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g1 := b1.Build() // path over 0..3 only; nodes 4..7 isolated
	b2 := graph.NewBuilder(n)
	for i := 3; i < 7; i++ {
		b2.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g2 := b2.Build() // path over 3..7 only

	s := NewBroadcastSession(n, 0, flood{}, rng.New(1))
	r1 := s.Run(g1, Options{MaxRounds: 10})
	if r1.Informed != 4 {
		t.Fatalf("after g1: informed %d, want 4", r1.Informed)
	}
	if r1.Completed() {
		t.Fatal("cannot be complete on g1")
	}
	r2 := s.Run(g2, Options{MaxRounds: 10, StopWhenInformed: true})
	if !r2.Completed() || r2.Informed != n {
		t.Fatalf("after g2: %+v", r2)
	}
	// Absolute clock: 10 rounds on g1, then 4 more hops on g2.
	if r2.InformedRound != 14 {
		t.Fatalf("informed at absolute round %d, want 14", r2.InformedRound)
	}
	// Cumulative energy covers both segments.
	if r2.TotalTx <= r1.TotalTx {
		t.Fatal("cumulative tx should grow across segments")
	}
}

func TestBroadcastSessionGraphSizeMismatchPanics(t *testing.T) {
	s := NewBroadcastSession(4, 0, flood{}, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Run(graph.Complete(5), Options{MaxRounds: 1})
}

func TestLossZeroMatchesLosslessPath(t *testing.T) {
	// LossProb=0 must take the exact same code path results as default.
	g := graph.GNPDirected(200, 0.05, rng.New(50))
	a := RunBroadcast(g, 0, &coin{q: 0.2}, rng.New(51), Options{MaxRounds: 100})
	b := RunBroadcast(g, 0, &coin{q: 0.2}, rng.New(51), Options{MaxRounds: 100, LossProb: 0})
	if a.Informed != b.Informed || a.TotalTx != b.TotalTx {
		t.Fatalf("loss=0 changed results: %+v vs %+v", a, b)
	}
}

func TestLossSlowsDirectedPathFlood(t *testing.T) {
	// On a directed path flooding advances one hop per successful delivery;
	// with fading probability l each hop needs Geometric(1-l) tries, so the
	// completion round stretches by a factor ~1/(1-l).
	n := 60
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	clean := RunBroadcast(g, 0, flood{}, rng.New(60), Options{MaxRounds: 5000, StopWhenInformed: true})
	lossy := RunBroadcast(g, 0, flood{}, rng.New(60), Options{MaxRounds: 5000, StopWhenInformed: true, LossProb: 0.5})
	if clean.InformedRound != n-1 {
		t.Fatalf("clean path: %d", clean.InformedRound)
	}
	if !lossy.Completed() {
		t.Fatal("lossy flood never completed")
	}
	ratio := float64(lossy.InformedRound) / float64(clean.InformedRound)
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("loss=0.5 stretch factor %v, want ≈ 2", ratio)
	}
}

func TestLossCanResolveCollisions(t *testing.T) {
	// Two transmitters into one receiver always collide; with fading, rounds
	// where exactly one signal survives deliver the message. Fading can
	// therefore *help* the pathological flood livelock case.
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	stuck := RunBroadcast(g, 0, flood{}, rng.New(70), Options{MaxRounds: 300})
	if stuck.Completed() {
		t.Fatal("lossless flood should livelock")
	}
	faded := RunBroadcast(g, 0, flood{}, rng.New(70), Options{MaxRounds: 300, LossProb: 0.3, StopWhenInformed: true})
	if !faded.Completed() {
		t.Fatal("fading should eventually isolate one transmitter")
	}
}

func TestLossProbValidation(t *testing.T) {
	g := graph.Complete(3)
	for name, opt := range map[string]Options{
		"negative":       {MaxRounds: 1, LossProb: -0.1},
		"one":            {MaxRounds: 1, LossProb: 1},
		"with Reception": {MaxRounds: 1, LossProb: 0.1, Reception: Fade(0.2)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			RunBroadcast(g, 0, flood{}, rng.New(1), opt)
		}()
	}
}

func TestJammedReceiverBlocked(t *testing.T) {
	// 0 -> 1, 0 -> 2; node 2 is jammed in round 1 so only node 1 receives.
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {0, 2}})
	p := newScripted(map[int][]graph.NodeID{1: {0}, 2: {0}})
	// Let node 0 transmit twice (scripted) so node 2 gets a second chance.
	res := RunBroadcast(g, 0, p, rng.New(1), Options{
		MaxRounds: 5,
		Jammed: func(round int) []graph.NodeID {
			if round == 1 {
				return []graph.NodeID{2}
			}
			return nil
		},
	})
	if p.informed[1] != 1 {
		t.Fatalf("node 1 informed at %d, want 1", p.informed[1])
	}
	if p.informed[2] != 2 {
		t.Fatalf("node 2 informed at %d, want 2 (jammed in round 1)", p.informed[2])
	}
	if res.Informed != 3 {
		t.Fatalf("informed %d", res.Informed)
	}
}

func TestJammingEverythingPreventsBroadcast(t *testing.T) {
	g := graph.Complete(6)
	all := make([]graph.NodeID, 6)
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	res := RunBroadcast(g, 0, flood{}, rng.New(1), Options{
		MaxRounds: 50,
		Jammed:    func(int) []graph.NodeID { return all },
	})
	if res.Informed != 1 {
		t.Fatalf("jam-everything still informed %d nodes", res.Informed)
	}
}

func TestGossipSessionCarriesKnowledge(t *testing.T) {
	// Disjoint halves again, gossip flavour: two cliques that later merge.
	n := 6
	b1 := graph.NewBuilder(n)
	b1.AddBoth(0, 1)
	b1.AddBoth(2, 3)
	b1.AddBoth(4, 5)
	g1 := b1.Build() // three pairs
	g2 := graph.Complete(n)
	sess := NewGossipSession(n)
	r1 := sess.Run(g1, &tdma{}, rng.New(1), GossipOptions{MaxRounds: 2 * n, StopWhenComplete: true})
	if r1.Completed() {
		t.Fatal("pairs-only topology cannot complete gossip")
	}
	if sess.KnownPairs() <= int64(n) {
		t.Fatal("pair exchanges should have grown knowledge")
	}
	if !sess.Knows(1, 0) || sess.Knows(2, 0) {
		t.Fatal("knowledge pattern wrong after pair phase")
	}
	r2 := sess.Run(g2, &tdma{}, rng.New(2), GossipOptions{MaxRounds: 3 * n, StopWhenComplete: true})
	if !r2.Completed() {
		t.Fatalf("complete-graph phase should finish gossip: %d pairs", sess.KnownPairs())
	}
	if !sess.Complete() {
		t.Fatal("session should report complete")
	}
}
