package radio

// Cross-validation of the delivery kernels against an independent
// brute-force implementation of the §1.2 collision rule, over randomly
// generated graphs and transmitter sets. The reference is written for
// clarity, not speed: for every node it scans ALL in-neighbours and counts
// transmitters, then applies "receive iff exactly one".

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// referenceDeliver is the O(n·deg) spec-level implementation.
func referenceDeliver(g *graph.Digraph, transmitters []graph.NodeID, informed Bitset) (delivered []graph.NodeID, collisions int) {
	isTx := make(map[graph.NodeID]bool, len(transmitters))
	for _, u := range transmitters {
		isTx[u] = true
	}
	for v := 0; v < g.N(); v++ {
		count := 0
		for _, u := range g.In(graph.NodeID(v)) {
			if isTx[u] {
				count++
			}
		}
		switch {
		case count >= 2:
			collisions++
		case count == 1 && !informed.Get(graph.NodeID(v)):
			delivered = append(delivered, graph.NodeID(v))
		}
	}
	return delivered, collisions
}

func equalNodeSlices(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSerialKernelMatchesReference(t *testing.T) {
	r := rng.New(1)
	f := func(rawN, rawP, rawTx uint8) bool {
		n := int(rawN%60) + 2
		p := float64(rawP%50)/100 + 0.02
		g := graph.GNPDirected(n, p, r.Split(uint64(rawN)<<8|uint64(rawP)))
		informed := NewBitset(n)
		var txs []graph.NodeID
		txProb := float64(rawTx%80)/100 + 0.1
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.5) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(txProb) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		st := newDeliveryState(n)
		gotD, gotC := st.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})
		wantD, wantC := referenceDeliver(g, txs, informed)
		return gotC == wantC && equalNodeSlices(gotD, wantD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelKernelMatchesReference(t *testing.T) {
	r := rng.New(2)
	f := func(rawN, rawP uint8) bool {
		n := int(rawN%80) + 10
		p := float64(rawP%40)/100 + 0.05
		g := graph.GNPDirected(n, p, r.Split(uint64(rawN)*131+uint64(rawP)))
		informed := NewBitset(n)
		var txs []graph.NodeID
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.6) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(0.5) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		pd := newParallelDeliverer(n, 3)
		gotD, gotC := pd.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})
		wantD, wantC := referenceDeliver(g, txs, informed)
		return gotC == wantC && equalNodeSlices(gotD, wantD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyKernelZeroLossMatchesReference(t *testing.T) {
	// The edge-filtered loop with an all-pass filter must agree with the
	// spec exactly: the edgeOK code path may not perturb hit counting.
	allPass := channelCaps{maxHits: 1,
		edgeOK: func(int, graph.NodeID, graph.NodeID) bool { return true }}
	r := rng.New(3)
	f := func(rawN, rawP uint8) bool {
		n := int(rawN%40) + 2
		p := float64(rawP%60)/100 + 0.05
		g := graph.GNPDirected(n, p, r.Split(uint64(rawN)^uint64(rawP)<<3))
		informed := NewBitset(n)
		var txs []graph.NodeID
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.5) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(0.5) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		st := newDeliveryState(n)
		gotD, gotC := st.deliver(g, 1, txs, informed, allPass)
		wantD, wantC := referenceDeliver(g, txs, informed)
		return gotC == wantC && equalNodeSlices(gotD, wantD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyKernelSubsetOfLossless(t *testing.T) {
	// With loss > 0 every delivered node must be a node that had at least
	// one transmitting in-neighbour; and any node with exactly one
	// transmitting in-neighbour either receives or loses to fading — it can
	// never be reported as a collision.
	r := rng.New(5)
	lossy := LossyChannel(0.4).resolve(0x10ead)
	f := func(rawN uint8) bool {
		n := int(rawN%40) + 4
		g := graph.GNPDirected(n, 0.2, r.Split(uint64(rawN)))
		informed := NewBitset(n)
		var txs []graph.NodeID
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.5) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(0.6) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		isTx := make(map[graph.NodeID]bool)
		for _, u := range txs {
			isTx[u] = true
		}
		st := newDeliveryState(n)
		delivered, _ := st.deliver(g, int(rawN)+1, txs, informed, lossy)
		for _, v := range delivered {
			if informed.Get(v) {
				return false
			}
			count := 0
			for _, u := range g.In(v) {
				if isTx[u] {
					count++
				}
			}
			if count == 0 {
				return false // received without any transmitter: impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
