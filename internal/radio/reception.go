package radio

// The pluggable channel layer. The paper's reception rule — a node receives
// iff exactly ONE in-neighbour transmits — is one point in a family of
// channel models; this file factors the family out of the delivery kernels
// into a ReceptionModel that every kernel (serial push, receiver-centric
// pull, sharded parallel push) resolves identically.
//
// # Determinism: hashed channel draws
//
// Channel randomness is NOT a sequential RNG stream. Every draw is a pure
// hash of (channel seed, round, endpoints): chanDraw below. That one design
// decision buys the whole engine back:
//
//   - Order independence. A sequential stream ties the draw to the order in
//     which edges are visited, which is kernel-specific — the old lossy
//     kernel had to pin the serial transmitter-ordered walk and forfeit the
//     pull/parallel kernels. Hashed draws give the same verdict for an edge
//     no matter which kernel asks, or in which order, so every kernel and
//     every SetEngineOverrides forcing stays bit-identical under every
//     model.
//   - Skip exactness. A silent round has no transmissions, hence no channel
//     questions: skipping it consumes no channel randomness, so the
//     cross-round silent-skip fast path (UniformRound) remains exact under
//     every model.
//   - Resume determinism. The draw for (round, receiver) is a function of
//     the session seed alone — re-running a session, or re-running a
//     campaign point after a crash, reproduces every fade decision without
//     replaying a stream.
//
// The channel seed derives from the session's protocol RNG exactly as the
// old lossy stream did (one Split at session start), so protocol randomness
// — and with it every binary-model result — is untouched by this layer.
//
// # Capabilities
//
// A model resolves into at most three kernel capabilities (channelCaps):
//
//   - edgeOK: per-(round, tx, rx) detection — a faded edge neither delivers
//     nor interferes. Threaded through all three kernels' edge walks.
//   - recvOK: per-(round, rx) receiver availability — an unavailable
//     receiver hears nothing this round. Applied once by the engine as a
//     post-kernel filter on the delivered list, so kernels need no changes
//     and a vetoed node stays on the pull frontier.
//   - maxHits: the largest number of concurrent above-threshold signals a
//     receiver can still decode. 1 is the paper's binary collision rule;
//     SINR capture raises it.
//
// Binary resolves to {nil, nil, 1}: the kernels' hot paths see exactly the
// pre-refactor code.
//
// # Collision counts
//
// Binary and SINRThreshold keep Result.Collisions exact (up to the pull
// kernel's uninformed-only contract). Under edgeOK models a collision means
// ">maxHits signals above threshold", counted after fading — also exact.
// Under recvOK models (Fade, Jam) the count is taken BEFORE the receiver
// veto: a receiver in a deep fade that would have heard a collision still
// counts one, since the kernels cannot see the veto. The informed
// trajectory is unaffected either way.

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// ReceptionModel describes how the channel resolves concurrent
// transmissions at a receiver. Implementations live in this package (the
// interface is sealed by resolve); select one with Options.Reception. All
// models are deterministic per (session seed, round, receiver): the engine
// derives one channel seed per session and every draw is a pure hash — see
// the package notes above for why that makes all kernels, the silent-skip
// fast path, and campaign resume exact under every model.
type ReceptionModel interface {
	// Name identifies the model in diagnostics.
	Name() string
	// resolve compiles the model into kernel capabilities for one session.
	resolve(seed uint64) channelCaps
}

// channelCaps is a resolved model: what the kernels actually consult. Nil
// function fields mean "no check" — the binary fast paths.
type channelCaps struct {
	// edgeOK reports whether the tx→rx signal of `round` is above the
	// detection threshold (nil: always).
	edgeOK func(round int, tx, rx graph.NodeID) bool
	// recvOK reports whether receiver rx can decode at all in `round`
	// (nil: always). Applied by the engine after the kernel.
	recvOK func(round int, rx graph.NodeID) bool
	// maxHits is the decoding capture limit: a receiver with 1..maxHits
	// above-threshold signals receives; more collide.
	maxHits int32
}

// chanDraw hashes (seed, round, a, b) to a uniform uint64: a splitmix64-
// style finalizer over a linear combination with distinct odd multipliers.
// Pure — the whole channel layer's determinism rests on this function.
func chanDraw(seed, round, a, b uint64) uint64 {
	x := seed + round*0x9e3779b97f4a7c15 + a*0xbf58476d1ce4e5b9 + b*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Draw domains: node-keyed models hash (rx, domain) so their draws can
// never alias an edge draw or each other.
const (
	fadeDomain uint64 = 0x66616465_66616465
	jamDomain  uint64 = 0x6a616d21_6a616d21
)

// pThreshold maps a probability to the uint64 threshold t with
// P(chanDraw < t) = p (up to float64 resolution). Requires p in [0, 1).
func pThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	// p < 1 keeps the product strictly below 2^64, so the conversion is
	// exact-range.
	return uint64(p * 18446744073709551616.0)
}

// probPanic validates a model probability parameter.
func probPanic(model string, p float64) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("radio: %s probability %v outside [0,1)", model, p))
	}
}

// Binary returns the paper's reception model: a node receives iff exactly
// one in-neighbour transmits; two or more collide and deliver nothing. The
// default when Options.Reception is nil. Keeps exact collision counts.
func Binary() ReceptionModel { return binaryModel{} }

type binaryModel struct{}

func (binaryModel) Name() string               { return "binary" }
func (binaryModel) resolve(uint64) channelCaps { return channelCaps{maxHits: 1} }

// Fade returns a receiver-coherence fading model: in each round, each
// receiver is independently in a deep fade with probability p, hearing
// nothing that round (neither deliveries nor interference — its whole
// coherence interval is below the detection threshold). Deterministic per
// (seed, round, receiver). Collision counts are taken before the fade veto
// (see the package notes).
func Fade(p float64) ReceptionModel {
	probPanic("Fade", p)
	return fadeModel{p: p}
}

type fadeModel struct{ p float64 }

func (m fadeModel) Name() string { return fmt.Sprintf("fade(%g)", m.p) }
func (m fadeModel) resolve(seed uint64) channelCaps {
	if m.p == 0 {
		return channelCaps{maxHits: 1}
	}
	thresh := pThreshold(m.p)
	return channelCaps{
		maxHits: 1,
		recvOK: func(round int, rx graph.NodeID) bool {
			return chanDraw(seed, uint64(round), uint64(rx), fadeDomain) >= thresh
		},
	}
}

// LossyChannel returns the per-edge fading model: each (transmitter,
// receiver) delivery of a round is independently lost with probability
// loss, in which case the signal neither delivers nor interferes at that
// receiver. The hashed-draw successor of the old Options.LossProb stream
// (same distribution, different — order-independent — randomness), which is
// what lets lossy runs use the pull/parallel kernels and silent-round
// skipping. Collision counts are exact over the surviving signals.
func LossyChannel(loss float64) ReceptionModel {
	probPanic("LossyChannel", loss)
	return lossyModel{loss: loss}
}

type lossyModel struct{ loss float64 }

func (m lossyModel) Name() string { return fmt.Sprintf("lossy(%g)", m.loss) }
func (m lossyModel) resolve(seed uint64) channelCaps {
	if m.loss == 0 {
		return channelCaps{maxHits: 1}
	}
	thresh := pThreshold(m.loss)
	return channelCaps{
		maxHits: 1,
		edgeOK: func(round int, tx, rx graph.NodeID) bool {
			return chanDraw(seed, uint64(round), uint64(tx), uint64(rx)) >= thresh
		},
	}
}

// SINRThreshold returns an equal-power capture model: with h in-neighbours
// transmitting, each signal's SINR at the receiver is 1/(h-1+noise), and
// the (shared broadcast) message decodes iff that reaches beta — i.e. iff
// 1 <= h <= K with K = floor(1 + 1/beta - noise). beta >= 1 (with small
// noise) gives K = 1, the paper's binary rule; weaker thresholds let a
// receiver capture through bounded interference. Deterministic (no channel
// randomness at all) and exact on collision counts: >K concurrent signals
// collide.
func SINRThreshold(beta, noise float64) ReceptionModel {
	if beta <= 0 || math.IsNaN(beta) {
		panic(fmt.Sprintf("radio: SINRThreshold beta %v must be positive", beta))
	}
	if noise < 0 || math.IsNaN(noise) {
		panic(fmt.Sprintf("radio: SINRThreshold noise %v must be non-negative", noise))
	}
	k := math.Floor(1 + 1/beta - noise + 1e-9)
	if k < 1 {
		panic(fmt.Sprintf("radio: SINRThreshold(beta=%v, noise=%v) admits no reception at all", beta, noise))
	}
	if k > math.MaxInt32 {
		k = math.MaxInt32
	}
	return sinrModel{beta: beta, noise: noise, k: int32(k)}
}

type sinrModel struct {
	beta, noise float64
	k           int32
}

func (m sinrModel) Name() string {
	return fmt.Sprintf("sinr(beta=%g,noise=%g)", m.beta, m.noise)
}
func (m sinrModel) resolve(uint64) channelCaps { return channelCaps{maxHits: m.k} }

// Jam returns a random-jamming model: in each round, each receiver's
// channel is independently occupied by external interference with
// probability rate — a jammed node cannot receive that round (the noise
// collides with any transmission). The hashed, skip-compatible alternative
// to the Options.Jammed callback, which remains for adversaries that need
// run-state (at the cost of disabling silent-round skipping). Deterministic
// per (seed, round, receiver); collision counts are taken before the veto.
func Jam(rate float64) ReceptionModel {
	probPanic("Jam", rate)
	return jamModel{rate: rate}
}

type jamModel struct{ rate float64 }

func (m jamModel) Name() string { return fmt.Sprintf("jam(%g)", m.rate) }
func (m jamModel) resolve(seed uint64) channelCaps {
	if m.rate == 0 {
		return channelCaps{maxHits: 1}
	}
	thresh := pThreshold(m.rate)
	return channelCaps{
		maxHits: 1,
		recvOK: func(round int, rx graph.NodeID) bool {
			return chanDraw(seed, uint64(round), uint64(rx), jamDomain) >= thresh
		},
	}
}

// filterRecv applies a recvOK capability to the delivered list in place,
// preserving order.
func filterRecv(delivered []graph.NodeID, round int, ok func(int, graph.NodeID) bool) []graph.NodeID {
	out := delivered[:0]
	for _, v := range delivered {
		if ok(round, v) {
			out = append(out, v)
		}
	}
	return out
}
