package radio

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// TxSet is the shared-draw building block behind every Bernoulli-phase
// protocol's BatchBroadcaster implementation: the current round's
// transmitter set, drawn exactly once in BeginRound and read by both
// decision paths — ShouldTransmit answers membership, AppendTransmitters
// copies the set. Centralising it keeps the batch/scalar equivalence
// contract in one place instead of six protocols.
type TxSet struct {
	pending []graph.NodeID
	txRound []int // txRound[v] == r iff v transmits in round r
}

// Reset readies the set for a fresh run on an n-node network, reusing the
// sentinel array when its capacity suffices (the allocation-free trial-loop
// contract). Clearing restores the "round 0" sentinel, which no live round
// ever uses (rounds are 1-based), so stale membership cannot leak across
// runs.
func (s *TxSet) Reset(n int) {
	s.pending = s.pending[:0]
	if cap(s.txRound) < n {
		s.txRound = make([]int, n)
		return
	}
	s.txRound = s.txRound[:n]
	clear(s.txRound)
}

// BeginRound clears the pending set for a new round.
func (s *TxSet) BeginRound() { s.pending = s.pending[:0] }

// Add puts v into the given round's transmitter set.
func (s *TxSet) Add(v graph.NodeID, round int) {
	s.pending = append(s.pending, v)
	s.txRound[v] = round
}

// AddAll puts every node of list into the round's set (the flood phases).
func (s *TxSet) AddAll(list []graph.NodeID, round int) {
	for _, v := range list {
		s.Add(v, round)
	}
}

// DrawList skip-samples the candidate list with per-node probability p into
// the round's set: one Geometric draw per selected node plus one overshoot,
// instead of one Bernoulli per candidate.
func (s *TxSet) DrawList(r *rng.RNG, list []graph.NodeID, p float64, round int) {
	it := r.SkipSample(len(list), p)
	for i, ok := it.Next(); ok; i, ok = it.Next() {
		s.Add(list[i], round)
	}
}

// DrawRange skip-samples the id range [0, n) — the gossip case, where every
// node is a candidate.
func (s *TxSet) DrawRange(r *rng.RNG, n int, p float64, round int) {
	it := r.SkipSample(n, p)
	for i, ok := it.Next(); ok; i, ok = it.Next() {
		s.Add(graph.NodeID(i), round)
	}
}

// Contains reports whether v is in the given round's set (the scalar
// ShouldTransmit body).
func (s *TxSet) Contains(v graph.NodeID, round int) bool { return s.txRound[v] == round }

// AppendTo appends the round's set to dst (the AppendTransmitters body).
func (s *TxSet) AppendTo(dst []graph.NodeID) []graph.NodeID { return append(dst, s.pending...) }

// WindowQueue is the activity-window queue shared by the window-based
// protocols (GeneralBroadcast, FixedProb): nodes enter in informing order,
// and because informing times are non-decreasing along that order, window
// expiry always pops from the head.
type WindowQueue struct {
	active []graph.NodeID
	head   int
}

// Reset empties the queue for a fresh run.
func (q *WindowQueue) Reset() {
	q.active = q.active[:0]
	q.head = 0
}

// Push appends a newly informed node.
func (q *WindowQueue) Push(v graph.NodeID) { q.active = append(q.active, v) }

// Expire pops every node whose activity window [informedAt+1,
// informedAt+window] has passed as of round, returning how many retired.
func (q *WindowQueue) Expire(informedAt []int, window, round int) int {
	n := 0
	for q.head < len(q.active) && informedAt[q.active[q.head]]+window < round {
		q.head++
		n++
	}
	return n
}

// Live returns the not-yet-expired nodes in informing order.
func (q *WindowQueue) Live() []graph.NodeID { return q.active[q.head:] }
