package radio

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// TxSet is the shared-draw building block behind every Bernoulli-phase
// protocol's BatchBroadcaster implementation: the current round's
// transmitter set, drawn exactly once in BeginRound and read by both
// decision paths — ShouldTransmit answers membership, AppendTransmitters
// copies the set. Centralising it keeps the batch/scalar equivalence
// contract in one place instead of six protocols.
type TxSet struct {
	pending []graph.NodeID
	txRound []int // txRound[v] == r iff v transmits in round r

	// Cross-round stream state (the stream-draw contract, see
	// DrawListStream): gap is the number of candidate positions left to
	// skip before the next selected position of the concatenated
	// Bernoulli(streamQ) stream. Valid only while streamOK; a draw with a
	// different probability restarts the stream (the remainder of a
	// Geometric(q') overshoot is memoryless only for q').
	gap      int
	streamQ  float64
	streamOK bool
}

// Reset readies the set for a fresh run on an n-node network, reusing the
// sentinel array when its capacity suffices (the allocation-free trial-loop
// contract). Clearing restores the "round 0" sentinel, which no live round
// ever uses (rounds are 1-based), so stale membership cannot leak across
// runs.
func (s *TxSet) Reset(n int) {
	s.pending = s.pending[:0]
	s.streamOK = false
	if cap(s.txRound) < n {
		s.txRound = make([]int, n)
		return
	}
	s.txRound = s.txRound[:n]
	clear(s.txRound)
}

// BeginRound clears the pending set for a new round.
func (s *TxSet) BeginRound() { s.pending = s.pending[:0] }

// Add puts v into the given round's transmitter set.
func (s *TxSet) Add(v graph.NodeID, round int) {
	s.pending = append(s.pending, v)
	s.txRound[v] = round
}

// AddAll puts every node of list into the round's set (the flood phases).
func (s *TxSet) AddAll(list []graph.NodeID, round int) {
	for _, v := range list {
		s.Add(v, round)
	}
}

// DrawList skip-samples the candidate list with per-node probability p into
// the round's set: one Geometric draw per selected node plus one overshoot,
// instead of one Bernoulli per candidate.
func (s *TxSet) DrawList(r *rng.RNG, list []graph.NodeID, p float64, round int) {
	it := r.SkipSample(len(list), p)
	for i, ok := it.Next(); ok; i, ok = it.Next() {
		s.Add(list[i], round)
	}
}

// DrawRange skip-samples the id range [0, n) — the gossip case, where every
// node is a candidate.
func (s *TxSet) DrawRange(r *rng.RNG, n int, p float64, round int) {
	it := r.SkipSample(n, p)
	for i, ok := it.Next(); ok; i, ok = it.Next() {
		s.Add(graph.NodeID(i), round)
	}
}

// ensureStream primes the carried gap for probability q, restarting the
// stream when q changed since the carry was drawn.
func (s *TxSet) ensureStream(r *rng.RNG, q float64) {
	if !s.streamOK || s.streamQ != q {
		s.gap = r.Geometric(q)
		s.streamQ = q
		s.streamOK = true
	}
}

// DrawListStream is DrawList under the cross-round stream contract: the
// rounds of one uniform-probability phase are treated as a single
// concatenated Bernoulli(q) stream over the per-round candidate lists, so
// each round's trailing geometric overshoot carries into the next round
// with the same q instead of being redrawn. A fully silent round therefore
// consumes NO randomness (the carried gap just shrinks by the candidate
// count) — the property the engine's silent-round skipping
// (UniformRound.SkipSilent / StreamSilentRounds) is built on. Per-round
// marginals are unchanged: every candidate is still selected independently
// with probability q.
func (s *TxSet) DrawListStream(r *rng.RNG, list []graph.NodeID, q float64, round int) {
	k := len(list)
	if q >= 1 {
		// Degenerate flood round: everyone transmits, no randomness, and the
		// carried gap (if any) is untouched.
		s.AddAll(list, round)
		return
	}
	if q <= 0 || k == 0 {
		return
	}
	s.ensureStream(r, q)
	pos := 0
	for pos+s.gap < k {
		pos += s.gap
		s.Add(list[pos], round)
		pos++
		s.gap = r.Geometric(q)
	}
	s.gap -= k - pos
}

// DrawRangeStream is DrawListStream over the id range [0, n) — the gossip
// case, where every node is a candidate.
func (s *TxSet) DrawRangeStream(r *rng.RNG, n int, q float64, round int) {
	if q >= 1 {
		for v := 0; v < n; v++ {
			s.Add(graph.NodeID(v), round)
		}
		return
	}
	if q <= 0 || n == 0 {
		return
	}
	s.ensureStream(r, q)
	pos := 0
	for pos+s.gap < n {
		pos += s.gap
		s.Add(graph.NodeID(pos), round)
		pos++
		s.gap = r.Geometric(q)
	}
	s.gap -= n - pos
}

// StreamSilentRounds consumes up to max whole silent rounds of k candidates
// each from the carried gap and returns how many rounds were verified
// silent — the O(1) cross-round skip: a round is silent iff the gap spans
// its whole candidate window, so a span of m silent rounds is m·k positions
// subtracted from the gap with no RNG draws at all. A return of m < max
// means the next round has a selection pending (or the call does not apply:
// k == 0, q >= 1) and must be drawn normally via DrawListStream /
// DrawRangeStream, which continues from the same gap.
func (s *TxSet) StreamSilentRounds(r *rng.RNG, k int, q float64, max int) int {
	if max <= 0 || k <= 0 || q >= 1 {
		return 0
	}
	if q <= 0 {
		return max // nothing is ever selected; no randomness involved
	}
	s.ensureStream(r, q)
	m := s.gap / k
	if m > max {
		m = max
	}
	s.gap -= m * k
	return m
}

// Contains reports whether v is in the given round's set (the scalar
// ShouldTransmit body).
func (s *TxSet) Contains(v graph.NodeID, round int) bool { return s.txRound[v] == round }

// AppendTo appends the round's set to dst (the AppendTransmitters body).
func (s *TxSet) AppendTo(dst []graph.NodeID) []graph.NodeID { return append(dst, s.pending...) }

// Pending returns this round's selected set in selection order (aliases
// internal storage; valid until the next BeginRound).
func (s *TxSet) Pending() []graph.NodeID { return s.pending }

// WindowQueue is the activity-window queue shared by the window-based
// protocols (GeneralBroadcast, FixedProb): nodes enter in informing order,
// and because informing times are non-decreasing along that order, window
// expiry always pops from the head.
type WindowQueue struct {
	active []graph.NodeID
	head   int
}

// Reset empties the queue for a fresh run.
func (q *WindowQueue) Reset() {
	q.active = q.active[:0]
	q.head = 0
}

// Push appends a newly informed node.
func (q *WindowQueue) Push(v graph.NodeID) { q.active = append(q.active, v) }

// Expire pops every node whose activity window [informedAt+1,
// informedAt+window] has passed as of round, returning how many retired.
func (q *WindowQueue) Expire(informedAt []int, window, round int) int {
	n := 0
	for q.head < len(q.active) && informedAt[q.active[q.head]]+window < round {
		q.head++
		n++
	}
	return n
}

// Live returns the not-yet-expired nodes in informing order.
func (q *WindowQueue) Live() []graph.NodeID { return q.active[q.head:] }
