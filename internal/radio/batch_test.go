package radio

// Equivalence tests for the engine's alternative code paths: the batch
// decision fast path (BatchBroadcaster / BatchGossiper) and the
// receiver-sharded parallel delivery kernel must be bit-identical to the
// scalar/serial paths.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// pulse is a minimal BatchBroadcaster obeying the shared-draw contract: the
// transmitter set is drawn once per round in BeginRound; ShouldTransmit and
// AppendTransmitters both read it.
type pulse struct {
	q        float64
	n        int
	r        *rng.RNG
	informed []graph.NodeID
	pending  []graph.NodeID
	txRound  []int
}

func (p *pulse) Name() string { return "pulse" }
func (p *pulse) Begin(n int, src graph.NodeID, r *rng.RNG) {
	p.n = n
	p.r = r
	p.informed = p.informed[:0]
	p.txRound = make([]int, n)
}
func (p *pulse) BeginRound(round int) {
	p.pending = p.pending[:0]
	s := p.r.SkipSample(len(p.informed), p.q)
	for i, ok := s.Next(); ok; i, ok = s.Next() {
		v := p.informed[i]
		p.pending = append(p.pending, v)
		p.txRound[v] = round
	}
}
func (p *pulse) ShouldTransmit(round int, v graph.NodeID) bool { return p.txRound[v] == round }
func (p *pulse) AppendTransmitters(_ int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return append(dst, p.pending...)
}
func (p *pulse) OnInformed(_ int, v graph.NodeID) { p.informed = append(p.informed, v) }
func (p *pulse) Quiesced(int) bool                { return false }

func resultsEqual(a, b *Result) bool {
	if a.Rounds != b.Rounds || a.InformedRound != b.InformedRound ||
		a.Informed != b.Informed || a.TotalTx != b.TotalTx ||
		a.MaxNodeTx != b.MaxNodeTx || a.Collisions != b.Collisions ||
		len(a.PerNodeTx) != len(b.PerNodeTx) || len(a.History) != len(b.History) {
		return false
	}
	for i := range a.PerNodeTx {
		if a.PerNodeTx[i] != b.PerNodeTx[i] {
			return false
		}
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			return false
		}
	}
	return true
}

func TestBatchDecisionPathMatchesScalar(t *testing.T) {
	g := graph.GNPDirected(2000, 0.004, rng.New(11))
	opt := Options{MaxRounds: 400, RecordHistory: true}
	run := func() *Result { return RunBroadcast(g, 0, &pulse{q: 0.2}, rng.New(99), opt) }

	batch := run()
	SetEngineOverrides(EngineOverrides{ScalarDecisions: true})
	scalar := run()
	SetEngineOverrides(EngineOverrides{})
	if !resultsEqual(batch, scalar) {
		t.Fatalf("batch and scalar decision paths diverge:\nbatch  %+v\nscalar %+v", batch, scalar)
	}
	// Determinism of the batch path itself.
	if again := run(); !resultsEqual(batch, again) {
		t.Fatal("batch path not deterministic across runs")
	}
}

func TestSerialAndParallelKernelsAgreeAtScale(t *testing.T) {
	// The n >= 10k serial-vs-parallel equivalence check, through the full
	// engine so claim/merge ordering bugs surface in Result fields.
	n := 12000
	g := graph.GNPDirected(n, 2.5e-3, rng.New(21))
	opt := Options{MaxRounds: 60, RecordHistory: true}
	serial := RunBroadcast(g, 0, &pulse{q: 0.3}, rng.New(5), opt)
	for _, workers := range []int{2, 3, 8} {
		po := opt
		po.Parallel = true
		po.Workers = workers
		par := RunBroadcast(g, 0, &pulse{q: 0.3}, rng.New(5), po)
		if !resultsEqual(serial, par) {
			t.Fatalf("parallel kernel (workers=%d) differs from serial at n=%d", workers, n)
		}
	}
}

func TestParallelKernelDirectAtScale(t *testing.T) {
	// Kernel-level comparison on a big round: every receiver shard boundary
	// gets exercised with an adversarially dense transmitter set.
	n := 16384
	g := graph.GNPDirected(n, 1.2e-3, rng.New(31))
	r := rng.New(32)
	informed := NewBitset(n)
	var txs []graph.NodeID
	for v := 0; v < n; v++ {
		if r.Bernoulli(0.5) {
			informed.Set(graph.NodeID(v))
			if r.Bernoulli(0.6) {
				txs = append(txs, graph.NodeID(v))
			}
		}
	}
	st := newDeliveryState(n)
	wantD, wantC := st.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})
	for _, workers := range []int{1, 2, 5, 16} {
		pd := newParallelDeliverer(n, workers)
		gotD, gotC := pd.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})
		if gotC != wantC || !equalNodeSlices(gotD, wantD) {
			t.Fatalf("workers=%d: kernel mismatch (%d/%d delivered, %d/%d collisions)",
				workers, len(gotD), len(wantD), gotC, wantC)
		}
	}
}

func TestScratchSessionsMatchFreshSessions(t *testing.T) {
	// Reusing a Scratch across trials must not leak state between runs.
	sc := NewScratch()
	g1 := graph.GNPDirected(600, 0.01, rng.New(41))
	g2 := graph.GNPDirected(600, 0.02, rng.New(42))
	g3 := graph.GNPDirected(300, 0.05, rng.New(43))
	opt := Options{MaxRounds: 200, RecordHistory: true}
	for i, g := range []*graph.Digraph{g1, g2, g3, g1} {
		fresh := RunBroadcast(g, 0, &pulse{q: 0.15}, rng.New(uint64(i)), opt)
		reused := RunBroadcastWith(sc, g, 0, &pulse{q: 0.15}, rng.New(uint64(i)), opt)
		if !resultsEqual(fresh, reused) {
			t.Fatalf("run %d: scratch-backed session differs from fresh session", i)
		}
	}
}

// pulseGossip is pulse's gossip twin.
type pulseGossip struct {
	q       float64
	n       int
	r       *rng.RNG
	pending []graph.NodeID
	txRound []int
}

func (p *pulseGossip) Name() string { return "pulse-gossip" }
func (p *pulseGossip) Begin(n int, r *rng.RNG) {
	p.n = n
	p.r = r
	p.txRound = make([]int, n)
}
func (p *pulseGossip) BeginRound(round int) {
	p.pending = p.pending[:0]
	s := p.r.SkipSample(p.n, p.q)
	for i, ok := s.Next(); ok; i, ok = s.Next() {
		p.pending = append(p.pending, graph.NodeID(i))
		p.txRound[i] = round
	}
}
func (p *pulseGossip) ShouldTransmit(round int, v graph.NodeID) bool { return p.txRound[v] == round }
func (p *pulseGossip) AppendTransmitters(_ int, dst []graph.NodeID) []graph.NodeID {
	return append(dst, p.pending...)
}

func TestGossipBatchPathMatchesScalar(t *testing.T) {
	g := graph.GNPDirected(300, 0.03, rng.New(51))
	opt := GossipOptions{MaxRounds: 500, RecordHistory: true, StopWhenComplete: true}
	run := func() *GossipResult { return RunGossip(g, &pulseGossip{q: 0.1}, rng.New(7), opt) }

	batch := run()
	SetEngineOverrides(EngineOverrides{ScalarDecisions: true})
	scalar := run()
	SetEngineOverrides(EngineOverrides{})
	if batch.Rounds != scalar.Rounds || batch.CompleteRound != scalar.CompleteRound ||
		batch.TotalTx != scalar.TotalTx || batch.KnownPairs != scalar.KnownPairs ||
		batch.MaxNodeTx != scalar.MaxNodeTx {
		t.Fatalf("gossip batch/scalar diverge:\nbatch  %+v\nscalar %+v", batch, scalar)
	}
	for i := range batch.PerNodeTx {
		if batch.PerNodeTx[i] != scalar.PerNodeTx[i] {
			t.Fatalf("per-node tx differ at %d", i)
		}
	}
}
