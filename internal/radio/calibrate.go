package radio

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Calibration is the startup probe's measurement of what this machine can
// actually do. PR 1's rounds-parallel kernel and the sweep's trials-parallel
// pool were both built blind — on a 1-CPU container they fight over the same
// core, and GOMAXPROCS alone cannot tell a 16-vCPU machine from a cgroup
// throttled to one. The probe measures instead of assuming, and the sweep
// arbiter (sweep.PlanPoint) divides cores between the two parallelism axes
// from the measurement. Kernel *choice* never depends on it — results stay
// bit-identical whatever the probe reports — only scheduling does.
type Calibration struct {
	GoMaxProcs int // runtime.GOMAXPROCS(0) at probe time
	NumCPU     int // runtime.NumCPU()
	// EffectiveCores is the measured parallel speedup of a CPU-bound spin
	// fanned over GOMAXPROCS goroutines (1.0 on a single-core container even
	// when NumCPU lies). Fractional: a hyperthreaded or throttled pair often
	// measures ~1.5.
	EffectiveCores float64
	// EdgeNs and DenseEdgeNs are the measured per-edge costs (nanoseconds) of
	// the serial push and word-parallel dense kernels on a synthetic dense
	// round — the constants the cost model's "outSum ≳ n" heuristic stands
	// on, recorded in bench metadata so trajectory points are comparable.
	EdgeNs      float64
	DenseEdgeNs float64
}

var (
	calOnce sync.Once
	cal     Calibration
)

// Calibrate runs the startup probe once per process and returns the cached
// measurement (~10ms of spin plus two synthetic delivery rounds). Safe for
// concurrent use.
func Calibrate() Calibration {
	calOnce.Do(func() { cal = runProbe() })
	return cal
}

func runProbe() Calibration {
	c := Calibration{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	c.EffectiveCores = measureEffectiveCores(c.GoMaxProcs)
	c.EdgeNs, c.DenseEdgeNs = measureEdgeCost()
	return c
}

// spin burns CPU for a fixed iteration count; the sink defeats dead-code
// elimination.
var spinSink uint64

func spin(iters int) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// measureEffectiveCores times one spin quantum serially, then p goroutines
// each running the same quantum. With p real cores the parallel wall clock
// matches the serial one; on an oversubscribed container it stretches toward
// p·serial. The ratio is the usable parallelism.
func measureEffectiveCores(p int) float64 {
	if p <= 1 {
		return 1
	}
	const iters = 2_000_000
	spinSink = spin(iters / 10) // warm up scheduling/clock ramp
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		spinSink = spin(iters)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spinSink = spin(iters)
		}()
	}
	wg.Wait()
	par := time.Since(t0)
	eff := float64(p) * float64(best) / float64(par)
	if eff < 1 {
		eff = 1
	}
	if eff > float64(p) {
		eff = float64(p)
	}
	return eff
}

// measureEdgeCost times the serial push and dense kernels on one synthetic
// dense round (n=4096, d=32, every node transmitting) and reports ns/edge
// for each.
func measureEdgeCost() (edgeNs, denseNs float64) {
	const (
		n = 4096
		d = 32
	)
	r := rng.New(0xca11b8a7e)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for k := 0; k < d; k++ {
			v := int(r.Uint64n(uint64(n)))
			if v != u {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g := b.Build()
	tx := make([]graph.NodeID, n)
	for i := range tx {
		tx[i] = graph.NodeID(i)
	}
	informed := NewBitset(n)
	edges := float64(g.M())
	caps := Binary().resolve(0)

	st := newDeliveryState(n)
	dn := newDenseState(n)
	// One warm-up each, then best-of-3 to shed scheduler noise.
	st.deliver(g, 1, tx, informed, caps)
	dn.deliver(g, tx, informed)
	timeIt := func(f func()) float64 {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			f()
			if dt := time.Since(t0); dt < best {
				best = dt
			}
		}
		return float64(best.Nanoseconds()) / edges
	}
	edgeNs = timeIt(func() { st.deliver(g, 1, tx, informed, caps) })
	denseNs = timeIt(func() { dn.deliver(g, tx, informed) })
	return edgeNs, denseNs
}
