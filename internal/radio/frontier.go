package radio

import (
	"math/bits"

	"repro/internal/graph"
)

// frontierState is the receiver-centric (pull) delivery kernel: the late
// phase of a broadcast has few uninformed nodes left, so iterating the
// uninformed frontier's IN-edges against a transmitter bitset costs
// Σ deg(uninformed) per round instead of the push kernel's
// Σ deg(transmitter) — the direction-optimizing idea of Beamer et al.'s
// BFS, applied to the collision rule. Because the frontier list is kept in
// ascending id order, delivered nodes come out sorted for free (the push
// kernel pays a sortNodeIDs for the same contract).
//
// The kernel is exact on the informed trajectory: an uninformed node
// receives iff exactly one in-neighbour transmits, identically to push.
// The collision count, however, covers only the receivers the kernel
// examines — the uninformed frontier — so informed-side collisions are not
// counted. The engine therefore only selects this kernel when no consumer
// needs transmitter-side collision counts (see Options.ExactCollisions and
// the Result.Collisions contract).
type frontierState struct {
	txMark Bitset         // transmitter membership, set/cleared per round
	list   []graph.NodeID // uninformed nodes, ascending id order
	ok     bool           // list is in sync with the session's informed set
	out    []graph.NodeID // delivered-output scratch, reused across rounds
	row    []graph.NodeID // in-row buffer for implicit graphs
}

func newFrontierState(n int) *frontierState {
	return &frontierState{txMark: NewBitset(n)}
}

// reset invalidates the frontier for a fresh session on n nodes.
func (f *frontierState) reset(n int) {
	if len(f.txMark)*64 < n {
		f.txMark = NewBitset(n)
	} else {
		f.txMark.Reset()
	}
	f.list = f.list[:0]
	f.ok = false
}

// forEachUninformed enumerates the node ids NOT in the informed bitset over
// [0, n), in ascending order: one pass over the inverted words with the
// tail word masked to n. Shared by the frontier rebuild and the pull-cost
// base so the two can never drift apart.
func forEachUninformed(informed Bitset, n int, fn func(v graph.NodeID)) {
	for w, word := range informed {
		inv := ^word
		base := w << 6
		// Mask off the bits beyond n in the last word.
		if rem := n - base; rem < 64 {
			if rem <= 0 {
				break
			}
			inv &= (1 << uint(rem)) - 1
		}
		for inv != 0 {
			b := bits.TrailingZeros64(inv)
			fn(graph.NodeID(base + b))
			inv &= inv - 1
		}
	}
}

// sync rebuilds the frontier list from the informed bitset when stale: one
// pass over the bitset words enumerating zero bits, O(n/64 + |frontier|).
// The engine calls it lazily, on the first round the pull kernel is
// selected; from then on remove keeps the list current incrementally.
func (f *frontierState) sync(informed Bitset, n int) {
	if f.ok {
		return
	}
	f.list = f.list[:0]
	forEachUninformed(informed, n, func(v graph.NodeID) {
		f.list = append(f.list, v)
	})
	f.ok = true
}

// deliver applies the channel's reception rule receiver-centrically for one
// round: each frontier node counts its transmitting in-neighbours whose
// signal survives the edge filter (early exit at maxHits+1 — one past the
// capture limit, two under the binary model); 1..maxHits means reception.
// Returns the newly informed nodes in ascending id order and the number of
// UNINFORMED nodes that experienced a collision. The frontier list itself
// is not modified — the engine removes the finally-delivered nodes (after
// channel, jamming, schedule and battery filters) with remove, so a vetoed
// reception stays on the frontier. The returned slice is scratch, valid
// until the next deliver call.
func (f *frontierState) deliver(g graph.Implicit, round int, transmitters []graph.NodeID, caps channelCaps) (delivered []graph.NodeID, collisions int) {
	dg, _ := g.(*graph.Digraph)
	for _, u := range transmitters {
		f.txMark.Set(u)
	}
	limit := int(caps.maxHits) + 1
	delivered = f.out[:0]
	for _, v := range f.list {
		var in []graph.NodeID
		if dg != nil {
			in = dg.In(v)
		} else {
			f.row = g.AppendIn(v, f.row[:0])
			in = f.row
		}
		hits := 0
		if caps.edgeOK == nil {
			for _, u := range in {
				if f.txMark.Get(u) {
					hits++
					if hits == limit {
						break
					}
				}
			}
		} else {
			for _, u := range in {
				if f.txMark.Get(u) && caps.edgeOK(round, u, v) {
					hits++
					if hits == limit {
						break
					}
				}
			}
		}
		if hits == limit {
			collisions++
		} else if hits >= 1 {
			delivered = append(delivered, v)
		}
	}
	for _, u := range transmitters {
		f.txMark.Clear(u)
	}
	f.out = delivered
	return delivered, collisions
}

// remove drops the delivered nodes from the frontier list in one merge pass
// (both inputs are ascending). Call with the round's FINAL delivered list,
// after every engine-side filter.
func (f *frontierState) remove(delivered []graph.NodeID) {
	if !f.ok || len(delivered) == 0 {
		return
	}
	keep := f.list[:0]
	j := 0
	for _, v := range f.list {
		for j < len(delivered) && delivered[j] < v {
			j++
		}
		if j < len(delivered) && delivered[j] == v {
			j++
			continue
		}
		keep = append(keep, v)
	}
	f.list = keep
}

// uninformedInSum returns Σ InDegree(v) over the uninformed nodes — the
// pull kernel's per-round cost estimate, recomputed per Run segment (the
// graph may change between segments) and maintained incrementally by the
// engine as nodes are informed. The engine only calls it when g.CheapIn()
// holds (in-degrees cost O(row) or better).
func uninformedInSum(g graph.Implicit, informed Bitset) int64 {
	var sum int64
	if dg, ok := g.(*graph.Digraph); ok {
		forEachUninformed(informed, dg.N(), func(v graph.NodeID) {
			sum += int64(dg.InDegree(v))
		})
		return sum
	}
	forEachUninformed(informed, g.N(), func(v graph.NodeID) {
		sum += int64(g.InDegree(v))
	})
	return sum
}

// outDegSum returns Σ OutDegree(u) over the transmitter set — the push
// kernel's exact per-round cost. O(|tx|) from the CSR offsets on a
// materialized graph; implicit graphs pay a row enumeration per
// transmitter, which is why the engine consults it only when the pull side
// is a live alternative (trackUnin).
func outDegSum(g graph.Implicit, txs []graph.NodeID) int64 {
	var sum int64
	if dg, ok := g.(*graph.Digraph); ok {
		for _, u := range txs {
			sum += int64(dg.OutDegree(u))
		}
		return sum
	}
	for _, u := range txs {
		sum += int64(g.OutDegree(u))
	}
	return sum
}
