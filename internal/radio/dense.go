package radio

import (
	"math/bits"

	"repro/internal/graph"
)

// denseState is the word-parallel dense delivery kernel. The protocols'
// mid-phase — nearly every informed node transmitting — is where a broadcast
// run spends most of its wall clock: Σ outdeg(transmitter) approaches m, so
// the per-edge work dominates everything else. The serial push kernel pays,
// per edge, a random 4-byte counter load, a data-dependent branch (first
// touch?), a possible list append, and a counter store; this kernel replaces
// all of that with branch-free carry-save accumulation into a pair of
// Bitsets:
//
//	hitTwice |= hitOnce & bit    // second-or-later hit → saturated carry
//	hitOnce  |= bit              // first hit
//
// Two single-word read-modify-writes per edge, no branches, no touched
// list, and the working set is n/8 bytes per plane instead of 4n — at
// n = 262144 both planes fit in L2 together. Resolution then runs 64
// receivers at a time: under the binary collision rule a receiver decodes
// iff it was hit exactly once, so per word
//
//	delivered = hitOnce &^ hitTwice &^ informed
//	collisions += popcount(hitTwice)
//
// and the delivered ids stream out of per-word popcount iteration already in
// ascending order — the same sorted-output contract the other kernels meet.
// Both planes are zeroed in the same O(n/64) resolution pass, so the kernel
// allocates nothing and touches no per-node state in steady state.
//
// Exactness: hitTwice marks every receiver with ≥ 2 hits, so the collision
// count covers all receivers (transmitter-side exact, like push and parallel
// push — the kernel is legal under Options.ExactCollisions). The carry
// saturates at two, which is only correct when "two hits" already decides
// the round; the engine therefore restricts this kernel to channel models
// with maxHits == 1 and no per-edge filter (Binary, Fade, Jam — receiver
// vetoes are applied by the engine after the kernel), falling back to the
// counting kernels otherwise (SINR capture, per-edge loss).
type denseState struct {
	hitOnce  Bitset
	hitTwice Bitset
	out      []graph.NodeID // delivered-output scratch, reused across rounds
	row      []graph.NodeID // out-row buffer for implicit graphs
}

func newDenseState(n int) *denseState {
	return &denseState{hitOnce: NewBitset(n), hitTwice: NewBitset(n)}
}

// denseOK reports whether the word-parallel kernel resolves the given
// channel capabilities exactly: a saturating two-hit carry can only stand in
// for the full hit count when one concurrent signal is the decoding limit
// and every edge's signal counts.
func denseOK(caps channelCaps) bool {
	return caps.maxHits == 1 && caps.edgeOK == nil
}

// deliver accumulates one round's transmissions carry-save and resolves all
// receivers word-parallel. Callers must have checked denseOK(caps) — the
// kernel ignores caps entirely (it IS the binary rule). Returns the newly
// informed nodes in ascending id order and the number of receivers that
// experienced a collision (≥ 2 hits, counted at every receiver). The
// returned slice is scratch, valid until the next deliver call.
func (d *denseState) deliver(g graph.Implicit, transmitters []graph.NodeID, informed Bitset) (delivered []graph.NodeID, collisions int) {
	once, twice := d.hitOnce, d.hitTwice
	if dg, ok := g.(*graph.Digraph); ok {
		for _, u := range transmitters {
			for _, w := range dg.Out(u) {
				wi := uint32(w) >> 6
				m := uint64(1) << (uint32(w) & 63)
				twice[wi] |= once[wi] & m
				once[wi] |= m
			}
		}
	} else {
		for _, u := range transmitters {
			d.row = g.AppendOut(u, d.row[:0])
			for _, w := range d.row {
				wi := uint32(w) >> 6
				m := uint64(1) << (uint32(w) & 63)
				twice[wi] |= once[wi] & m
				once[wi] |= m
			}
		}
	}

	// Resolution: one pass over the words computes deliveries and collision
	// counts and clears both planes for the next round. Rows only ever
	// contain valid ids < n, so no tail masking is needed.
	delivered = d.out[:0]
	for wi, tw := range twice {
		collisions += bits.OnesCount64(tw)
		if newBits := once[wi] &^ tw &^ informed[wi]; newBits != 0 {
			base := wi << 6
			for newBits != 0 {
				delivered = append(delivered, graph.NodeID(base+bits.TrailingZeros64(newBits)))
				newBits &= newBits - 1
			}
		}
		once[wi] = 0
		twice[wi] = 0
	}
	d.out = delivered
	return delivered, collisions
}
