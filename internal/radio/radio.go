// Package radio implements the synchronous radio-network model of §1.2 of
// the paper as a discrete-round simulator.
//
// Model semantics, implemented literally:
//
//   - Time proceeds in synchronous rounds 1, 2, 3, ...
//   - In each round every informed node locally decides whether to transmit.
//   - A node v receives a message in a round iff exactly ONE of its
//     in-neighbours transmits in that round. If two or more transmit, the
//     messages collide and v hears nothing; v cannot even detect the
//     collision.
//   - By default a transmitting node cannot simultaneously receive
//     (half-duplex radios); Options.FullDuplex disables this.
//   - Nodes know n (and protocol parameters like p or D) but nothing about
//     the topology.
//
// The engine accounts energy as the paper does: the total number of
// transmissions and the per-node transmission counts.
//
// # Decision-phase fast path
//
// Most of the paper's protocols are Bernoulli-style: in a given round every
// eligible node transmits independently with some probability q. The
// per-node path (one virtual ShouldTransmit call and one RNG draw per
// informed node per round) is then pure overhead: geometric-skip sampling
// can draw the ~nq transmitters directly. Protocols opt in by implementing
// BatchBroadcaster; the engine batch-collects the round's transmitters in
// one call and skips the scalar loop. Both paths must select the same
// transmitter sequence from the same randomness (the shared-draw contract,
// see BatchBroadcaster), so engine results are independent of the path.
//
// # The sparse round engine
//
// Delivery is direction-optimizing: per round the engine compares the
// transmitters' out-degree sum against the uninformed frontier's in-degree
// sum (tracked incrementally) and picks the cheaper kernel — push
// (radio.go), parallel push (parallel.go), or the receiver-centric pull
// kernel over the frontier list (frontier.go). Protocols whose rounds are
// uniform Bernoulli draws additionally implement UniformRound and take
// their draws through TxSet's cross-round stream contract, letting the
// engine skip fully silent rounds in O(1) and the energy model settle the
// skipped span in bulk. All configurations are bit-identical on the
// informed trajectory, per-node transmissions, rounds and energy; only
// Result.Collisions is kernel-dependent (see its contract).
//
// # The channel layer
//
// The exactly-one reception rule is the default of a pluggable channel
// layer (reception.go): Options.Reception selects a ReceptionModel —
// Binary (the paper), Fade (per-receiver deep fades), LossyChannel
// (per-edge fading), SINRThreshold (equal-power capture), Jam (random
// receiver jamming). Channel randomness is hashed per (seed, round,
// endpoints) rather than drawn from a stream, so every kernel, every
// engine forcing, and the silent-skip fast path agree bit-for-bit under
// every model; Binary resolves to the unmodified hot paths. A listener
// duty-cycle schedule (energy.Spec.Schedule) additionally vetoes
// deliveries to receivers whose radio is scheduled asleep.
package radio

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Broadcaster is a broadcast protocol driven by the engine. Implementations
// hold all per-node protocol state (active/passive, informing times, ...).
//
// The engine guarantees:
//   - Begin is called exactly once per run, before any other method.
//   - OnInformed(0, src) is called for the source before round 1.
//   - BeginRound(r) is called once at the start of round r = 1, 2, ...
//   - The decision phase then either calls ShouldTransmit(r, v) exactly once
//     for every informed node v in informing order, or — when the protocol
//     implements BatchBroadcaster — calls AppendTransmitters once instead.
//   - OnInformed(r, v) is called at the end of round r for every node v
//     that received the message for the first time in round r.
//
// To keep protocols oblivious (as the paper requires), Begin receives only
// the network size, never the topology.
type Broadcaster interface {
	// Name identifies the protocol in results and tables.
	Name() string
	// Begin resets protocol state for a fresh run on an n-node network.
	// All protocol randomness must come from r.
	Begin(n int, src graph.NodeID, r *rng.RNG)
	// BeginRound announces the start of round `round` (1-based). Protocols
	// that draw a shared per-round value (like Algorithm 3's selection
	// sequence I_r) do it here.
	BeginRound(round int)
	// ShouldTransmit reports whether informed node v transmits this round.
	ShouldTransmit(round int, v graph.NodeID) bool
	// OnInformed tells the protocol that v received the message for the
	// first time at the end of `round` (0 for the source).
	OnInformed(round int, v graph.NodeID)
	// Quiesced reports that the protocol will never transmit again (all
	// nodes passive); the engine then stops early. `round` is the round
	// that just finished.
	Quiesced(round int) bool
}

// BatchBroadcaster is the optional decision-phase fast path. When a
// Broadcaster implements it, the engine replaces the per-informed-node
// ShouldTransmit loop with a single AppendTransmitters call per round.
//
// Contract (the shared-draw scheme): for any round, AppendTransmitters must
// append exactly the nodes for which ShouldTransmit would report true, in
// the same (informing) order, and the two paths must consume protocol
// randomness identically — the practical recipe is to draw the round's
// transmitter set once (in BeginRound or lazily on the first decision
// query) and have both ShouldTransmit and AppendTransmitters read from it.
// The batch equivalence tests in core and baseline enforce this for every
// implementation in the repository.
type BatchBroadcaster interface {
	Broadcaster
	// AppendTransmitters appends this round's transmitters to dst and
	// returns the extended slice. informed is the engine's informed list in
	// informing order; protocols that track their own eligible sets may
	// ignore it.
	AppendTransmitters(round int, informed []graph.NodeID, dst []graph.NodeID) []graph.NodeID
}

// UniformRound is the optional cross-round fast path: protocols whose
// transmit decision in (a phase of) rounds is one shared Bernoulli(q) draw
// over their candidate list, taken through the TxSet stream contract
// (DrawListStream / DrawRangeStream), implement it so the engine can skip
// provably silent rounds in O(1) instead of grinding through them one at a
// time. FixedProb, the Phase-3 trickles of Algorithm 1 and
// Elsässer–Gasieniec, and the uniform gossips qualify; protocols whose
// per-round probability varies (Algorithm 3's 2^{-I_r}) do not.
type UniformRound interface {
	Broadcaster
	// RoundProb reports the shared per-candidate transmit probability of
	// `round`, with ok == false when the round is not a uniform Bernoulli
	// round (flood phases, one-shot phases, exhausted schedules).
	RoundProb(round int) (q float64, ok bool)
	// SkipSilent advances protocol state from round `from` across rounds
	// that are provably silent under the stream contract, up to round `to`
	// inclusive, and returns the first round the engine must execute
	// normally (to+1 when the whole span is silent). Implementations must
	// stop AT (i.e. return, not skip past) any round in which a transmission
	// is pending, the round is not uniform, or Quiesced could first report
	// true at the round's end — the engine executes that round through the
	// ordinary per-round path, which continues from the same stream state.
	SkipSilent(from, to int) int
}

// UniformGossipRound is the gossip analogue of UniformRound, with the same
// SkipSilent contract (gossip protocols never quiesce, so only pending
// transmissions bound a skip).
type UniformGossipRound interface {
	Gossiper
	RoundProb(round int) (q float64, ok bool)
	SkipSilent(from, to int) int
}

// DeliveryKernel names a delivery implementation for EngineOverrides.
type DeliveryKernel int

const (
	// KernelAuto lets the engine pick per round from the cost estimates
	// (the default): pull when the uninformed frontier's in-degree sum
	// undercuts the transmitters' out-degree sum; the word-parallel dense
	// kernel when the transmitters' out-degree sum reaches n on a
	// materialized graph under a dense-capable channel model (see dense.go);
	// push otherwise (parallel push when Options.Parallel).
	KernelAuto DeliveryKernel = iota
	// KernelPush forces the serial transmitter-centric kernel.
	KernelPush
	// KernelPull forces the receiver-centric frontier kernel.
	KernelPull
	// KernelParallel forces the receiver-sharded parallel push kernel.
	KernelParallel
	// KernelDense forces the word-parallel carry-save dense kernel for every
	// round the channel model supports (maxHits == 1, no per-edge filter);
	// unsupported models fall back to serial push.
	KernelDense
)

// EngineOverrides force specific engine code paths, for the equivalence
// tests and for debugging. All combinations are bit-identical on the
// informed trajectory, per-node transmissions, rounds and energy report;
// only Result.Collisions may differ under KernelPull (see the
// Result.Collisions contract).
type EngineOverrides struct {
	// ScalarDecisions disables the batch decision fast path even for
	// BatchBroadcasters / BatchGossipers.
	ScalarDecisions bool
	// Kernel pins the delivery kernel instead of the per-round cost model.
	// Every reception model is served by every kernel (channel draws are
	// hashed, not streamed — see reception.go), so the pin is total.
	Kernel DeliveryKernel
	// DisableSkip forces round-by-round execution even for UniformRound
	// protocols.
	DisableSkip bool
}

// engineOverrides is the active override set; see SetEngineOverrides.
var engineOverrides EngineOverrides

// SetEngineOverrides globally forces engine code paths. Call only while no
// simulations are running; every configuration must produce identical
// results (up to the Result.Collisions contract under KernelPull), which is
// what the engine equivalence tests pin.
func SetEngineOverrides(o EngineOverrides) { engineOverrides = o }

// Options configures a simulation run (one session segment).
type Options struct {
	// MaxRounds caps the segment length. Required (> 0).
	MaxRounds int
	// FullDuplex lets a transmitting node receive in the same round.
	// Default false: half-duplex radios, as standard in the literature.
	FullDuplex bool
	// Target is the informed-node count at which InformedRound is recorded.
	// 0 means g.N(). The run continues past the target until the protocol
	// quiesces or MaxRounds elapses, so that energy is accounted for the
	// full protocol schedule (nodes cannot know the broadcast completed).
	Target int
	// StopWhenInformed stops the run as soon as Target is reached. Use for
	// time-only measurements where trailing energy is not of interest.
	StopWhenInformed bool
	// RecordHistory captures per-round statistics in Result.History.
	RecordHistory bool
	// Parallel selects the sharded parallel delivery kernel (see
	// parallel.go). Results are identical to the serial kernel.
	Parallel bool
	// Workers is the parallel kernel's worker count (0 = GOMAXPROCS).
	Workers int
	// Reception selects the channel's reception model (see ReceptionModel
	// in reception.go). Nil means Binary() — the paper's exactly-one rule —
	// unless LossProb is set. Every model runs on every kernel and keeps
	// the silent-skip fast path.
	Reception ReceptionModel
	// LossProb is shorthand for Reception: LossyChannel(LossProb) — the
	// per-edge fading probability: each (transmitter, receiver) delivery is
	// independently lost with this probability, in which case the signal
	// neither delivers nor interferes at that receiver. Mutually exclusive
	// with an explicit Reception model.
	LossProb float64
	// Jammed, when non-nil, returns the receivers whose channel is occupied
	// by external interference in the given round: a jammed node cannot
	// receive that round (the noise collides with any transmission).
	Jammed func(round int) []graph.NodeID
	// ExactCollisions forces transmitter-side delivery kernels so that
	// Result.Collisions counts collisions at every receiver, informed or
	// not. Without it the engine may select the receiver-centric pull
	// kernel for late-phase rounds, whose collision count covers only
	// uninformed receivers (the informed trajectory, transmissions, rounds
	// and energy are identical either way). RecordHistory and Tracer imply
	// exact collisions.
	ExactCollisions bool
	// Energy, when non-nil, enables the per-round radio energy model (see
	// internal/energy): every alive node is charged for exactly one state
	// per round (transmit / receive / listen / sleep), depleted nodes stop
	// transmitting (and, unless Spec.DeadReceive, stop receiving), and
	// Result.Energy reports totals, per-node residual charge and the
	// network-lifetime rounds. The spec is captured by the session on its
	// FIRST Run segment; later segments must pass the same pointer or nil.
	// Spec.Resume carries one battery bank across sessions (repeated
	// campaigns). The session stops early once every node has depleted.
	Energy *energy.Spec
	// Tracer, when non-nil, receives per-event callbacks (see Tracer). Use
	// internal/trace for ready-made recorders.
	Tracer Tracer
}

// Tracer observes engine events for debugging and visualisation. Callbacks
// run synchronously inside the round loop; keep them cheap.
type Tracer interface {
	// RoundStart fires at the beginning of every simulated round.
	RoundStart(round int)
	// Transmit fires for every transmission decision.
	Transmit(round int, v graph.NodeID)
	// Deliver fires for every first-time reception.
	Deliver(round int, v graph.NodeID)
	// RoundEnd fires after delivery with the round's aggregate counts.
	RoundEnd(round, transmitters, delivered, collisions int)
}

func (o Options) validate() error {
	if o.MaxRounds <= 0 {
		return fmt.Errorf("radio: MaxRounds must be positive, got %d", o.MaxRounds)
	}
	if o.Target < 0 {
		return fmt.Errorf("radio: negative Target %d", o.Target)
	}
	if o.LossProb < 0 || o.LossProb >= 1 {
		return fmt.Errorf("radio: LossProb %v outside [0,1)", o.LossProb)
	}
	if o.LossProb > 0 && o.Reception != nil {
		return fmt.Errorf("radio: Reception and LossProb are mutually exclusive (LossProb is LossyChannel shorthand)")
	}
	return nil
}

// RoundStat is one row of a run's history.
type RoundStat struct {
	Round         int
	Transmitters  int
	NewlyInformed int
	Informed      int // cumulative, end of round
	Collisions    int // nodes that heard >= 2 transmitters this round
}

// Result summarises one broadcast run.
type Result struct {
	Protocol      string
	Rounds        int   // rounds actually executed
	InformedRound int   // first round with Informed >= Target; -1 if never
	Informed      int   // final informed count
	TotalTx       int64 // total transmissions over the whole run
	MaxNodeTx     int   // maximum transmissions by any single node
	PerNodeTx     []int32
	// Collisions counts receivers that heard >= 2 transmitters in a round,
	// summed over rounds. Contract: rounds delivered by the receiver-centric
	// pull kernel count collisions at UNINFORMED receivers only (the only
	// ones the kernel examines). The engine uses pull only when no consumer
	// needs the transmitter-side count — set Options.ExactCollisions (or
	// RecordHistory, or a Tracer) to force exact counting at every receiver.
	Collisions int64
	History    []RoundStat    // non-nil iff Options.RecordHistory
	Energy     *energy.Report // non-nil iff the session ran with Options.Energy
}

// Completed reports whether the target informed count was reached.
func (r *Result) Completed() bool { return r.InformedRound >= 0 }

// TxPerNode returns the mean transmissions per node (0 for a zero-value or
// PerNodeTx-less result, never NaN).
func (r *Result) TxPerNode() float64 {
	if len(r.PerNodeTx) == 0 {
		return 0
	}
	return float64(r.TotalTx) / float64(len(r.PerNodeTx))
}

// Scratch holds the allocation-heavy session state — the informed bitset,
// per-node counters, the informed list, and the delivery kernels' buffers —
// for reuse across trials. The experiment harness keeps one Scratch per
// worker; NewBroadcastSessionWith borrows the buffers, so at most one
// session may use a Scratch at a time, and a session's Result must be
// consumed before the Scratch hosts the next session.
type Scratch struct {
	n            int
	informed     Bitset
	perNodeTx    []int32
	informedList []graph.NodeID
	txbuf        []graph.NodeID
	st           *deliveryState
	fr           *frontierState
	par          *parallelDeliverer
	dn           *denseState   // lazily created on the first dense round
	energy       *energy.State // lazily created on the first energy-enabled session
}

// NewScratch returns an empty scratch; buffers are sized on first use and
// resized when the node count changes.
func NewScratch() *Scratch { return &Scratch{} }

// acquire readies the scratch for an n-node session and hands out buffers.
func (sc *Scratch) acquire(n int) {
	if sc.n != n {
		sc.n = n
		sc.informed = NewBitset(n)
		sc.perNodeTx = make([]int32, n)
		sc.informedList = make([]graph.NodeID, 0, n)
		sc.txbuf = make([]graph.NodeID, 0, n)
		sc.st = newDeliveryState(n)
		sc.fr = newFrontierState(n)
		sc.par = nil
		sc.dn = nil
		return
	}
	sc.informed.Reset()
	clear(sc.perNodeTx)
	sc.informedList = sc.informedList[:0]
	sc.txbuf = sc.txbuf[:0]
	sc.fr.reset(n)
}

// BroadcastSession carries broadcast state — the informed set, the protocol
// instance, the round clock, and the energy accounting — across multiple Run
// segments, so the topology may change between segments. This models the
// paper's mobile-network setting (§1: "due to the mobility of the nodes, the
// network topology changes over time"): the oblivious protocols never see
// the graph, so their state is meaningful across re-wirings.
type BroadcastSession struct {
	n        int
	proto    Broadcaster
	batch    BatchBroadcaster // non-nil when proto implements the fast path
	chanSeed uint64           // channel-draw seed, separate from protocol RNG

	informed     Bitset
	informedList []graph.NodeID
	txbuf        []graph.NodeID // per-round transmitter scratch
	rounds       int            // absolute round clock across segments
	quiesced     bool

	totalTx    int64
	perNodeTx  []int32
	collisions int64

	reachedAt map[int]int // target count -> absolute round first reached

	energy     *energy.State // non-nil once an energy spec was captured
	energySpec *energy.Spec  // the captured spec, for mid-session change detection

	sc  *Scratch // non-nil when buffers are borrowed
	st  *deliveryState
	fr  *frontierState
	par *parallelDeliverer
	dn  *denseState

	// Pull-kernel cost tracking: Σ InDegree over uninformed nodes for the
	// current Run segment's graph, decremented as nodes are informed.
	uninSum int64
}

// NewBroadcastSession starts a session: protocol p is initialised for an
// n-node network with the given source already informed (at round 0).
func NewBroadcastSession(n int, src graph.NodeID, p Broadcaster, protoRNG *rng.RNG) *BroadcastSession {
	return NewBroadcastSessionWith(nil, n, src, p, protoRNG)
}

// NewBroadcastSessionWith is NewBroadcastSession borrowing buffers from sc
// (which may be nil for one-shot sessions).
func NewBroadcastSessionWith(sc *Scratch, n int, src graph.NodeID, p Broadcaster, protoRNG *rng.RNG) *BroadcastSession {
	if n < 1 {
		panic("radio: broadcast session needs n >= 1")
	}
	if src < 0 || int(src) >= n {
		panic("radio: source out of range")
	}
	s := &BroadcastSession{
		n:         n,
		proto:     p,
		reachedAt: map[int]int{},
	}
	if b, ok := p.(BatchBroadcaster); ok {
		s.batch = b
	}
	if sc != nil {
		sc.acquire(n)
		s.sc = sc
		s.informed = sc.informed
		s.perNodeTx = sc.perNodeTx
		s.informedList = sc.informedList
		s.txbuf = sc.txbuf
		s.st = sc.st
		s.fr = sc.fr
		s.par = sc.par
		s.dn = sc.dn
	} else {
		s.informed = NewBitset(n)
		s.perNodeTx = make([]int32, n)
		s.st = newDeliveryState(n)
		s.fr = newFrontierState(n)
	}
	p.Begin(n, src, protoRNG)
	// One Split keeps protocol-stream consumption identical to every prior
	// release; the child's first draw seeds the hashed channel layer, so
	// channel randomness is a pure function of the protocol seed (resume-
	// and kernel-independent; see reception.go).
	s.chanSeed = protoRNG.Split(0xc4a881e1).Uint64()
	s.informed.Set(src)
	s.informedList = append(s.informedList, src)
	p.OnInformed(0, src)
	return s
}

// Informed returns the current informed-node count.
func (s *BroadcastSession) Informed() int { return len(s.informedList) }

// Rounds returns the absolute round clock.
func (s *BroadcastSession) Rounds() int { return s.rounds }

// Quiesced reports whether the protocol has retired every node.
func (s *BroadcastSession) Quiesced() bool { return s.quiesced }

// IsInformed reports whether node v has received the message.
func (s *BroadcastSession) IsInformed(v graph.NodeID) bool { return s.informed.Get(v) }

// EnergyState returns the session's battery bank (nil when the energy model
// is disabled). Pass it as energy.Spec{Resume: ...} to a later session to
// model repeated campaigns on one charge. When the session borrowed a
// Scratch, the state aliases scratch storage: it stays valid only until the
// scratch hosts another *energy-enabled* session that does not resume it.
func (s *BroadcastSession) EnergyState() *energy.State { return s.energy }

// initEnergy captures an energy spec on the session's first segment.
func (s *BroadcastSession) initEnergy(spec *energy.Spec) {
	if s.rounds > 0 {
		panic("radio: Options.Energy must be supplied from the session's first Run segment")
	}
	if spec.Resume != nil {
		if spec.Resume.N() != s.n {
			panic("radio: resumed energy state sized for a different network")
		}
		spec.Resume.Rebase()
		s.energy = spec.Resume
	} else {
		var st *energy.State
		if s.sc != nil {
			if s.sc.energy == nil {
				s.sc.energy = energy.NewState()
			}
			st = s.sc.energy
		} else {
			st = energy.NewState()
		}
		st.Start(*spec, s.n)
		s.energy = st
	}
	s.energySpec = spec
	// Nodes informed before round 1 (the source) never pay a receive cost
	// and sleep from the start.
	for _, v := range s.informedList {
		s.energy.NoteInformed(v, 0)
	}
}

// Run executes up to opt.MaxRounds further rounds on graph g (which must
// have the session's node count but may differ from previous segments'
// graphs). The returned Result reflects the cumulative session state;
// Result.Rounds is the absolute round clock and Result.History (if
// recorded) covers this segment only.
//
// g may be any graph.Implicit — a materialized *graph.Digraph or an
// implicit view that re-derives rows on demand. Every kernel takes the
// zero-copy CSR path when g is a *Digraph, so the materialized hot loops
// are unchanged; implicit graphs enumerate rows into reusable buffers. The
// pull cost model needs Σ in-degree over the uninformed set, so it engages
// only when g.CheapIn() reports in-rows affordable — push-only otherwise
// (implicit G(n,p) without its transpose index), which is exactly the
// access pattern that keeps planet-scale runs O(n) in memory.
func (s *BroadcastSession) Run(g graph.Implicit, opt Options) *Result {
	if err := opt.validate(); err != nil {
		panic(err)
	}
	if g.N() != s.n {
		panic("radio: graph size does not match broadcast session")
	}
	target := opt.Target
	if target == 0 {
		target = s.n
	}
	// The channel model, resolved once per segment into the capabilities
	// the kernels consult. Binary resolves to {nil, nil, 1} — the
	// unmodified hot paths.
	model := opt.Reception
	if model == nil {
		if opt.LossProb > 0 {
			model = LossyChannel(opt.LossProb)
		} else {
			model = Binary()
		}
	}
	caps := model.resolve(s.chanSeed)
	parallel := opt.Parallel || engineOverrides.Kernel == KernelParallel
	if parallel && s.par == nil {
		s.par = newParallelDeliverer(s.n, opt.Workers)
		if s.sc != nil {
			s.sc.par = s.par
		}
	}
	useBatch := s.batch != nil && !engineOverrides.ScalarDecisions
	// Collision-exactness consumers pin transmitter-side kernels (see the
	// Result.Collisions contract); an explicit override forcing wins.
	exactCollisions := opt.ExactCollisions || opt.RecordHistory || opt.Tracer != nil
	// The pull kernel's cost estimate: Σ in-degree over uninformed nodes,
	// recomputed per segment whenever adaptive pull is reachable — callers
	// may rebuild the SAME *Digraph in place between segments (graph.Scratch
	// reuse is exactly what the mobility epochs do), so pointer identity
	// cannot prove the topology is unchanged. O(n/64 + uninformed) per Run,
	// then maintained incrementally in the round loop. Segments that can
	// never consult it (forced kernels, exact-collision consumers, graphs
	// whose in-rows are expensive) skip the scan.
	dg, _ := g.(*graph.Digraph)
	trackUnin := engineOverrides.Kernel == KernelAuto &&
		!exactCollisions && g.CheapIn()
	if trackUnin {
		s.uninSum = uninformedInSum(g, s.informed)
	}
	if opt.Energy != nil {
		if s.energy == nil {
			s.initEnergy(opt.Energy)
		} else if opt.Energy != s.energySpec {
			panic("radio: Options.Energy changed mid-session (pass the same *energy.Spec or nil on later segments)")
		}
	}
	en := s.energy // nil keeps the whole model off the hot path

	res := &Result{Protocol: s.proto.Name(), InformedRound: -1}
	recordTarget := func() {
		if _, ok := s.reachedAt[target]; !ok && len(s.informedList) >= target {
			s.reachedAt[target] = s.rounds
		}
	}
	recordTarget()
	if opt.RecordHistory {
		res.History = append(res.History, RoundStat{Round: s.rounds, Informed: len(s.informedList)})
	}

	transmitters := s.txbuf
	_, alreadyDone := s.reachedAt[target]
	// Cross-round skipping applies when the protocol exposes the uniform
	// stream contract and no per-round observer (history rows, tracer
	// callbacks, jamming queries) would notice the missing rounds.
	skipper, _ := s.proto.(UniformRound)
	canSkip := skipper != nil && !engineOverrides.DisableSkip &&
		opt.Tracer == nil && !opt.RecordHistory && opt.Jammed == nil
	segEnd := s.rounds + opt.MaxRounds
	for s.rounds < segEnd && !s.quiesced && !(opt.StopWhenInformed && alreadyDone) {
		round := s.rounds + 1
		// RoundProb gates the skip attempt: only uniform Bernoulli rounds
		// are candidates (SkipSilent additionally refuses on its own — this
		// is the cheap first check and what keeps RoundProb honest).
		if _, uniform := uniformProb(skipper, canSkip, round); uniform {
			// Ask the protocol to fast-forward across silent rounds. The
			// span is bounded by the next predicted battery death so the
			// all-dead early stop below can only trigger at the span's end —
			// protocol state then matches the round clock exactly.
			to := segEnd
			if en != nil {
				if d := en.NextPassiveDeathSession(); d < to {
					if d < round {
						d = round
					}
					to = d
				}
			}
			if next := skipper.SkipSilent(round, to); next > round {
				if next > to+1 {
					next = to + 1
				}
				if en != nil {
					// Settle the idle span in bulk: listen/sleep node-rounds
					// and any spontaneous depletions (only possible at the
					// span's final round, by the bound above).
					if deaths := en.AdvanceIdle(round, next-1); deaths > 0 {
						en.CheckPartition(g, next-1)
					}
				}
				s.rounds = next - 1
				if en != nil && en.AliveCount() == 0 {
					break
				}
				if s.rounds >= segEnd {
					break
				}
				round = next
			}
		}
		s.rounds = round
		s.proto.BeginRound(round)
		if opt.Tracer != nil {
			opt.Tracer.RoundStart(round)
		}

		// Decision phase: informedList is in informing order; both paths
		// iterate a stable order so protocol RNG consumption is
		// deterministic. Protocol decisions (and randomness) are drawn
		// before the battery veto, so the energy model never perturbs a
		// protocol's schedule — a depleted radio just fails to emit.
		transmitters = transmitters[:0]
		if useBatch {
			transmitters = s.batch.AppendTransmitters(round, s.informedList, transmitters)
		} else {
			for _, v := range s.informedList {
				if s.proto.ShouldTransmit(round, v) {
					transmitters = append(transmitters, v)
				}
			}
		}
		if en != nil {
			transmitters = en.FilterAlive(transmitters)
		}
		for _, v := range transmitters {
			s.perNodeTx[v]++
		}
		if opt.Tracer != nil {
			for _, v := range transmitters {
				opt.Tracer.Transmit(round, v)
			}
		}
		s.totalTx += int64(len(transmitters))

		// Delivery phase. (Half- vs full-duplex is immaterial for broadcast:
		// every transmitter is already informed, so it can never be a first-
		// time receiver. The distinction matters for gossip; see gossip.go.)
		// Kernel selection is direction-optimizing: once the frontier's
		// in-degree sum undercuts the transmitters' out-degree sum (the late
		// phase), the receiver-centric pull kernel wins. Every kernel
		// resolves receptions through the same channel capabilities, so
		// selection is model-independent. The returned slice is kernel
		// scratch, valid until the next round.
		var delivered []graph.NodeID
		var collisions int
		usePull, useDense := false, false
		switch engineOverrides.Kernel {
		case KernelPull:
			usePull = true
		case KernelDense:
			// Forced dense runs every round the channel supports; rounds it
			// cannot resolve exactly fall back to serial push.
			useDense = denseOK(caps)
		case KernelPush, KernelParallel:
			// forced transmitter-side kernels
		default:
			if len(transmitters) > 0 {
				outSum := int64(-1) // computed at most once, shared by both estimates
				if trackUnin {
					outSum = outDegSum(g, transmitters)
					usePull = s.uninSum+int64(len(transmitters)) < outSum
				}
				// Dense pays O(n/64) resolution regardless of density, so it
				// only wins once the per-edge work it strips reaches ~n; the
				// out-degree scan that prices that is only O(1)-per-node on a
				// materialized CSR. Rounds-parallel keeps its shards instead.
				if !usePull && !parallel && dg != nil && denseOK(caps) {
					if outSum < 0 {
						outSum = outDegSum(g, transmitters)
					}
					useDense = outSum >= int64(s.n)
				}
			}
		}
		switch {
		case usePull:
			s.fr.sync(s.informed, s.n)
			delivered, collisions = s.fr.deliver(g, round, transmitters, caps)
		case useDense:
			if s.dn == nil {
				s.dn = newDenseState(s.n)
				if s.sc != nil {
					s.sc.dn = s.dn
				}
			}
			delivered, collisions = s.dn.deliver(g, transmitters, s.informed)
		case parallel:
			delivered, collisions = s.par.deliver(g, round, transmitters, s.informed, caps)
		default:
			delivered, collisions = s.st.deliver(g, round, transmitters, s.informed, caps)
		}
		// Receiver-side vetoes, applied before the frontier removal so a
		// vetoed node stays uninformed AND on the pull frontier: the jamming
		// callback, the model's receiver availability, the duty-cycle sleep
		// gate, and the battery.
		if opt.Jammed != nil {
			delivered = dropJammed(delivered, opt.Jammed(round))
		}
		if caps.recvOK != nil {
			delivered = filterRecv(delivered, round, caps.recvOK)
		}
		if en != nil {
			if en.Scheduled() {
				// A listener whose radio is duty-cycled asleep this round
				// cannot decode; it keeps paying Sleep and stays uninformed.
				delivered = en.FilterAwake(delivered, round)
			}
			if !en.DeadReceive() {
				// A depleted radio is off: it cannot decode, so it never
				// joins the informed set (all kernels see the same filter).
				delivered = en.FilterAlive(delivered)
			}
		}
		s.collisions += int64(collisions)

		for _, v := range delivered {
			s.informed.Set(v)
			s.informedList = append(s.informedList, v)
			if trackUnin {
				if dg != nil {
					s.uninSum -= int64(dg.InDegree(v))
				} else {
					s.uninSum -= int64(g.InDegree(v))
				}
			}
			s.proto.OnInformed(round, v)
			if opt.Tracer != nil {
				opt.Tracer.Deliver(round, v)
			}
		}
		s.fr.remove(delivered)
		if opt.Tracer != nil {
			opt.Tracer.RoundEnd(round, len(transmitters), len(delivered), collisions)
		}

		if en != nil {
			if deaths := en.EndRound(round, transmitters, delivered); deaths > 0 {
				en.CheckPartition(g, round)
			}
		}

		if opt.RecordHistory {
			res.History = append(res.History, RoundStat{
				Round:         round,
				Transmitters:  len(transmitters),
				NewlyInformed: len(delivered),
				Informed:      len(s.informedList),
				Collisions:    collisions,
			})
		}
		recordTarget()
		if opt.StopWhenInformed {
			if _, ok := s.reachedAt[target]; ok {
				break
			}
		}
		if s.proto.Quiesced(round) {
			s.quiesced = true
		}
		if en != nil && en.AliveCount() == 0 {
			// The whole network depleted: no transmission or reception can
			// ever happen again.
			break
		}
	}
	s.txbuf = transmitters[:0]
	if s.sc != nil {
		// Hand grown buffers back so the next borrower reuses the capacity.
		// The contents stay valid for this session's further segments; the
		// next acquire truncates them.
		s.sc.txbuf = s.txbuf
		s.sc.informedList = s.informedList
	}

	res.Rounds = s.rounds
	res.Informed = len(s.informedList)
	res.TotalTx = s.totalTx
	res.Collisions = s.collisions
	res.PerNodeTx = append([]int32(nil), s.perNodeTx...)
	if en != nil {
		res.Energy = en.Report()
	}
	if at, ok := s.reachedAt[target]; ok {
		res.InformedRound = at
	}
	for _, c := range res.PerNodeTx {
		if int(c) > res.MaxNodeTx {
			res.MaxNodeTx = int(c)
		}
	}
	return res
}

// uniformProb asks a UniformRound protocol for the round's shared
// probability when skipping is enabled; (0, false) otherwise.
func uniformProb(u UniformRound, enabled bool, round int) (float64, bool) {
	if !enabled {
		return 0, false
	}
	return u.RoundProb(round)
}

// dropJammed removes jammed receivers from the delivered list, preserving
// order. Both inputs are small; jammed lists are scanned linearly.
func dropJammed(delivered, jammed []graph.NodeID) []graph.NodeID {
	if len(jammed) == 0 || len(delivered) == 0 {
		return delivered
	}
	out := delivered[:0]
	for _, v := range delivered {
		hit := false
		for _, j := range jammed {
			if j == v {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, v)
		}
	}
	return out
}

// RunBroadcast simulates protocol p broadcasting from src on a static graph
// g: a fresh single-segment session. The run is a pure function of (g, src,
// p's parameters, seed of protoRNG): repeated runs with equal inputs produce
// identical Results.
func RunBroadcast(g graph.Implicit, src graph.NodeID, p Broadcaster, protoRNG *rng.RNG, opt Options) *Result {
	return NewBroadcastSession(g.N(), src, p, protoRNG).Run(g, opt)
}

// RunBroadcastWith is RunBroadcast reusing sc's buffers (the trial-loop fast
// path: the experiment harness calls it with one Scratch per worker).
func RunBroadcastWith(sc *Scratch, g graph.Implicit, src graph.NodeID, p Broadcaster, protoRNG *rng.RNG, opt Options) *Result {
	return NewBroadcastSessionWith(sc, g.N(), src, p, protoRNG).Run(g, opt)
}

// deliveryState holds the reusable scratch arrays of the serial delivery
// kernel: a hit counter per node, the list of touched nodes (so resetting
// costs O(touched), not O(n)), the delivered-output buffer reused across
// rounds, and the row buffer implicit graphs enumerate into.
type deliveryState struct {
	hits      []int32
	touched   []graph.NodeID
	delivered []graph.NodeID
	row       []graph.NodeID
}

func newDeliveryState(n int) *deliveryState {
	return &deliveryState{hits: make([]int32, n)}
}

// deliver applies the channel's reception rule for one round: every
// out-neighbour of a transmitter whose signal survives the edge filter gets
// a hit; nodes with 1..maxHits hits receive (exactly one under the binary
// model), more collide. Returns the newly informed nodes (in increasing id
// order) and the number of nodes that experienced a collision (> maxHits
// surviving hits). The returned slice is scratch, valid until the next
// deliver call on this state.
func (st *deliveryState) deliver(g graph.Implicit, round int, transmitters []graph.NodeID, informed Bitset, caps channelCaps) (delivered []graph.NodeID, collisions int) {
	st.touched = st.touched[:0]
	dg, _ := g.(*graph.Digraph)
	if caps.edgeOK == nil {
		// Binary/capture fast path: the hit loops are branch-free on the
		// channel, identical to the binary-only kernel.
		if dg != nil {
			for _, u := range transmitters {
				for _, w := range dg.Out(u) {
					if st.hits[w] == 0 {
						st.touched = append(st.touched, w)
					}
					st.hits[w]++
				}
			}
		} else {
			for _, u := range transmitters {
				st.row = g.AppendOut(u, st.row[:0])
				for _, w := range st.row {
					if st.hits[w] == 0 {
						st.touched = append(st.touched, w)
					}
					st.hits[w]++
				}
			}
		}
	} else {
		for _, u := range transmitters {
			var row []graph.NodeID
			if dg != nil {
				row = dg.Out(u)
			} else {
				st.row = g.AppendOut(u, st.row[:0])
				row = st.row
			}
			for _, w := range row {
				if !caps.edgeOK(round, u, w) {
					continue // faded below detection threshold
				}
				if st.hits[w] == 0 {
					st.touched = append(st.touched, w)
				}
				st.hits[w]++
			}
		}
	}
	delivered = st.delivered[:0]
	maxHits := caps.maxHits
	for _, w := range st.touched {
		h := st.hits[w]
		st.hits[w] = 0
		if h > maxHits {
			collisions++
			continue
		}
		// 1 <= h <= maxHits: successful reception unless w already knows
		// the message.
		if informed.Get(w) {
			continue
		}
		delivered = append(delivered, w)
	}
	sortNodeIDs(delivered)
	st.delivered = delivered
	return delivered, collisions
}

// sortNodeIDs sorts a small slice of node ids in place (insertion sort for
// short slices, which dominate; falls back to a simple quicksort).
func sortNodeIDs(xs []graph.NodeID) {
	if len(xs) < 24 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	pivot := xs[len(xs)/2]
	lt, i, gt := 0, 0, len(xs)
	for i < gt {
		switch {
		case xs[i] < pivot:
			xs[i], xs[lt] = xs[lt], xs[i]
			lt++
			i++
		case xs[i] > pivot:
			gt--
			xs[i], xs[gt] = xs[gt], xs[i]
		default:
			i++
		}
	}
	sortNodeIDs(xs[:lt])
	sortNodeIDs(xs[gt:])
}
