package radio

// Tests of the sparse round engine: the receiver-centric pull kernel, the
// adaptive kernel selection, and the cross-round silent-skip fast path.
// Every engine configuration must be bit-identical on the informed
// trajectory, per-node transmissions, rounds and energy report; only
// Result.Collisions may differ under the pull kernel (uninformed-side
// counting — see the Result.Collisions contract), which is why the
// comparisons here split into a collision-exact matrix (history on, skip
// auto-disabled) and a skip matrix (history off).

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/rng"
)

// sbern is a minimal UniformRound protocol: every informed node transmits
// with probability q each round, drawn through the cross-round stream
// contract (a FixedProb clone local to this package).
type sbern struct {
	q        float64
	r        *rng.RNG
	set      TxSet
	informed []graph.NodeID
}

func (b *sbern) Name() string { return "sbern" }
func (b *sbern) Begin(n int, _ graph.NodeID, r *rng.RNG) {
	b.r = r
	b.set.Reset(n)
	b.informed = b.informed[:0]
}
func (b *sbern) BeginRound(round int) {
	b.set.BeginRound()
	b.set.DrawListStream(b.r, b.informed, b.q, round)
}
func (b *sbern) ShouldTransmit(round int, v graph.NodeID) bool { return b.set.Contains(v, round) }
func (b *sbern) AppendTransmitters(_ int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return b.set.AppendTo(dst)
}
func (b *sbern) OnInformed(_ int, v graph.NodeID) { b.informed = append(b.informed, v) }
func (b *sbern) Quiesced(int) bool                { return false }
func (b *sbern) RoundProb(int) (float64, bool)    { return b.q, true }
func (b *sbern) SkipSilent(from, to int) int {
	if to < from || len(b.informed) == 0 {
		return from
	}
	return from + b.set.StreamSilentRounds(b.r, len(b.informed), b.q, to-from+1)
}

// sparseTestGraphs returns the two acceptance topologies: G(n,p) and a UDG.
func sparseTestGraphs(t *testing.T) map[string]*graph.Digraph {
	t.Helper()
	n := 512
	return map[string]*graph.Digraph{
		"gnp": graph.GNPDirected(n, 6*math.Log(float64(n))/float64(n), rng.New(7)),
		"udg": graph.RGG(n, 2*graph.ConnectivityRadius(n), true, rng.New(8)),
	}
}

// assertSameResult compares everything except Collisions and History.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.InformedRound != want.InformedRound ||
		got.Informed != want.Informed || got.TotalTx != want.TotalTx ||
		got.MaxNodeTx != want.MaxNodeTx {
		t.Fatalf("%s: results diverge\nwant %+v\ngot  %+v", label, want, got)
	}
	for i := range want.PerNodeTx {
		if want.PerNodeTx[i] != got.PerNodeTx[i] {
			t.Fatalf("%s: per-node tx differ at node %d", label, i)
		}
	}
	if (want.Energy == nil) != (got.Energy == nil) {
		t.Fatalf("%s: energy report presence differs", label)
	}
	if want.Energy != nil {
		we, ge := want.Energy, got.Energy
		if we.TxEnergy != ge.TxEnergy || we.RxEnergy != ge.RxEnergy ||
			we.ListenEnergy != ge.ListenEnergy || we.SleepEnergy != ge.SleepEnergy ||
			we.DeadCount != ge.DeadCount || we.FirstDeathRound != ge.FirstDeathRound ||
			we.HalfDeathRound != ge.HalfDeathRound || we.PartitionRound != ge.PartitionRound {
			t.Fatalf("%s: energy reports diverge\nwant %+v\ngot  %+v", label, we, ge)
		}
		for v := range we.Spent {
			if we.Spent[v] != ge.Spent[v] {
				t.Fatalf("%s: per-node energy spend differs at node %d", label, v)
			}
		}
	}
}

// TestEngineConfigurationsBitIdentical is the headline equivalence pin:
// push / pull / parallel / adaptive kernels, batch / scalar decisions, and
// skip on / off must all yield the same informed trajectory, transmissions,
// rounds and energy, on G(n,p) and UDG, with and without battery budgets.
func TestEngineConfigurationsBitIdentical(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	configs := []struct {
		name string
		o    EngineOverrides
	}{
		{"default", EngineOverrides{}},
		{"scalar", EngineOverrides{ScalarDecisions: true}},
		{"push", EngineOverrides{Kernel: KernelPush}},
		{"pull", EngineOverrides{Kernel: KernelPull}},
		{"parallel", EngineOverrides{Kernel: KernelParallel}},
		{"dense", EngineOverrides{Kernel: KernelDense}},
		{"noskip", EngineOverrides{DisableSkip: true}},
		{"scalar-pull-noskip", EngineOverrides{ScalarDecisions: true, Kernel: KernelPull, DisableSkip: true}},
	}
	specs := map[string]func() *energy.Spec{
		"nometer": func() *energy.Spec { return nil },
		"budget": func() *energy.Spec {
			return &energy.Spec{Model: energy.CC2420(), Budget: 150, TrackPartition: true}
		},
	}
	for gname, g := range sparseTestGraphs(t) {
		for ename, mkSpec := range specs {
			run := func() *Result {
				return RunBroadcast(g, 0, &sbern{q: 0.02}, rng.New(42),
					Options{MaxRounds: 2500, Energy: mkSpec()})
			}
			SetEngineOverrides(EngineOverrides{})
			base := run()
			if ename == "budget" && base.Energy.DeadCount == 0 {
				t.Fatalf("%s: no deaths; the budget matrix is not exercising depletion", gname)
			}
			for _, cfg := range configs[1:] {
				SetEngineOverrides(cfg.o)
				assertSameResult(t, gname+"/"+ename+"/"+cfg.name, base, run())
			}
			SetEngineOverrides(EngineOverrides{})
		}
	}
}

// TestKernelForcingsPreserveHistory pins the per-round trajectory: with
// RecordHistory on (which suspends skipping), every kernel forcing must
// produce the same transmitter/delivery history. Collisions are compared
// only between the transmitter-side kernels; the pull kernel's count covers
// uninformed receivers only and must never exceed the exact count.
func TestKernelForcingsPreserveHistory(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	for gname, g := range sparseTestGraphs(t) {
		run := func(o EngineOverrides) *Result {
			SetEngineOverrides(o)
			return RunBroadcast(g, 0, &sbern{q: 0.05}, rng.New(3),
				Options{MaxRounds: 600, RecordHistory: true})
		}
		base := run(EngineOverrides{})
		push := run(EngineOverrides{Kernel: KernelPush})
		par := run(EngineOverrides{Kernel: KernelParallel})
		dense := run(EngineOverrides{Kernel: KernelDense})
		pull := run(EngineOverrides{Kernel: KernelPull})
		SetEngineOverrides(EngineOverrides{})

		// Default (history on) must be collision-exact, i.e. identical to
		// forced push, including per-round collision counts. The dense
		// carry-save kernel is transmitter-side exact too.
		if !resultsEqual(base, push) || !resultsEqual(base, par) || !resultsEqual(base, dense) {
			t.Fatalf("%s: transmitter-side kernels diverge under RecordHistory", gname)
		}
		assertSameResult(t, gname+"/pull-history", base, pull)
		if len(pull.History) != len(base.History) {
			t.Fatalf("%s: pull history length differs", gname)
		}
		for i := range base.History {
			w, p := base.History[i], pull.History[i]
			if w.Round != p.Round || w.Transmitters != p.Transmitters ||
				w.NewlyInformed != p.NewlyInformed || w.Informed != p.Informed {
				t.Fatalf("%s: pull trajectory differs at round %d: %+v vs %+v", gname, i, w, p)
			}
			if p.Collisions > w.Collisions {
				t.Fatalf("%s round %d: pull collision count %d exceeds exact count %d",
					gname, w.Round, p.Collisions, w.Collisions)
			}
		}
	}
}

// TestPullKernelAgainstReference checks the pull kernel directly against
// the serial push kernel on adversarial rounds: same delivered set (in
// ascending id order — the sorted-output contract the engine relies on),
// and a collision count equal to push's count restricted to uninformed
// receivers.
func TestPullKernelAgainstReference(t *testing.T) {
	n := 2048
	g := graph.GNPDirected(n, 4e-3, rng.New(91))
	r := rng.New(92)
	for trial := 0; trial < 30; trial++ {
		informed := NewBitset(n)
		var txs []graph.NodeID
		frac := 0.1 + 0.8*r.Float64()
		for v := 0; v < n; v++ {
			if r.Bernoulli(frac) {
				informed.Set(graph.NodeID(v))
				if r.Bernoulli(0.3) {
					txs = append(txs, graph.NodeID(v))
				}
			}
		}
		st := newDeliveryState(n)
		wantD, _ := st.deliver(g, 1, txs, informed, channelCaps{maxHits: 1})

		// Exact uninformed-side collision count, from first principles.
		wantColl := 0
		for v := 0; v < n; v++ {
			if informed.Get(graph.NodeID(v)) {
				continue
			}
			hits := 0
			for _, u := range g.In(graph.NodeID(v)) {
				for _, x := range txs {
					if x == u {
						hits++
						break
					}
				}
			}
			if hits >= 2 {
				wantColl++
			}
		}

		fr := newFrontierState(n)
		fr.sync(informed, n)
		gotD, gotC := fr.deliver(g, 1, txs, channelCaps{maxHits: 1})
		if !equalNodeSlices(gotD, wantD) {
			t.Fatalf("trial %d: pull delivered %d nodes, push %d", trial, len(gotD), len(wantD))
		}
		for i := 1; i < len(gotD); i++ {
			if gotD[i-1] >= gotD[i] {
				t.Fatalf("trial %d: pull output not strictly ascending at %d", trial, i)
			}
		}
		if gotC != wantColl {
			t.Fatalf("trial %d: pull collisions %d, want uninformed-side count %d", trial, gotC, wantColl)
		}
		txs = txs[:0]
	}
}

// TestFrontierRemoveKeepsSync pins the incremental maintenance path: after
// removing delivered nodes the frontier must equal a fresh rebuild.
func TestFrontierRemoveKeepsSync(t *testing.T) {
	n := 300
	informed := NewBitset(n)
	fr := newFrontierState(n)
	fr.sync(informed, n)
	if len(fr.list) != n {
		t.Fatalf("empty informed set: frontier has %d nodes, want %d", len(fr.list), n)
	}
	r := rng.New(5)
	for step := 0; step < 20; step++ {
		var delivered []graph.NodeID
		for v := 0; v < n; v++ {
			if !informed.Get(graph.NodeID(v)) && r.Bernoulli(0.1) {
				delivered = append(delivered, graph.NodeID(v))
				informed.Set(graph.NodeID(v))
			}
		}
		fr.remove(delivered)
		fresh := newFrontierState(n)
		fresh.sync(informed, n)
		if !equalNodeSlices(fr.list, fresh.list) {
			t.Fatalf("step %d: incrementally maintained frontier diverges from rebuild", step)
		}
	}
}

// TestStreamSilentRoundsMatchRoundByRound pins the stream contract at the
// TxSet level: executing a uniform phase round by round (DrawListStream
// each round) and fast-forwarding with StreamSilentRounds must select the
// same (round, node) pairs AND leave the RNG at the same stream position —
// the property that makes the engine's skip path bit-identical.
func TestStreamSilentRoundsMatchRoundByRound(t *testing.T) {
	list := make([]graph.NodeID, 37)
	for i := range list {
		list[i] = graph.NodeID(i)
	}
	for seed := uint64(0); seed < 50; seed++ {
		q := 0.001 + 0.01*float64(seed%7)

		// Path A: execute 400 rounds one by one.
		var a TxSet
		a.Reset(len(list))
		ra := rng.New(seed)
		type sel struct{ round, node int }
		var selsA []sel
		for round := 1; round <= 400; round++ {
			a.BeginRound()
			a.DrawListStream(ra, list, q, round)
			for _, v := range a.Pending() {
				selsA = append(selsA, sel{round, int(v)})
			}
		}

		// Path B: skip silent spans, draw only rounds with selections.
		var b TxSet
		b.Reset(len(list))
		rb := rng.New(seed)
		var selsB []sel
		round := 1
		for round <= 400 {
			m := b.StreamSilentRounds(rb, len(list), q, 400-round+1)
			round += m
			if round > 400 {
				break
			}
			b.BeginRound()
			b.DrawListStream(rb, list, q, round)
			if len(b.Pending()) == 0 {
				t.Fatalf("seed %d: round %d was predicted non-silent but drew nothing", seed, round)
			}
			for _, v := range b.Pending() {
				selsB = append(selsB, sel{round, int(v)})
			}
			round++
		}
		if len(selsA) != len(selsB) {
			t.Fatalf("seed %d: %d selections round-by-round, %d with skipping", seed, len(selsA), len(selsB))
		}
		for i := range selsA {
			if selsA[i] != selsB[i] {
				t.Fatalf("seed %d: selection %d differs: %+v vs %+v", seed, i, selsA[i], selsB[i])
			}
		}
		if ra.Uint64() != rb.Uint64() {
			t.Fatalf("seed %d: RNG stream positions diverge after the run", seed)
		}
	}
}

// TestUninformedSumRecomputedPerSegment guards the mobility pattern:
// graph.Scratch rebuilds the SAME *Digraph in place for every epoch, so
// the pull-kernel cost base must be recomputed at each Run segment —
// pointer identity proves nothing. With a silent protocol the sum is
// untouched during the segment, so after Run it must equal a fresh
// computation on the rebuilt topology (under the stale-cache bug it would
// still reflect the first epoch's in-degrees).
func TestUninformedSumRecomputedPerSegment(t *testing.T) {
	n := 256
	sc := graph.NewScratch()
	r := rng.New(31)
	spec := graph.GeomSpec{N: n, Radius: graph.ConnectivityRadius(n), Torus: true}
	g1, _ := sc.Geometric(spec, r)

	sess := NewBroadcastSession(n, 0, &sbern{q: 0}, rng.New(1))
	sess.Run(g1, Options{MaxRounds: 3})

	spec.Radius = 3 * graph.ConnectivityRadius(n) // much denser epoch
	g2, _ := sc.Geometric(spec, r)
	if g1 != g2 {
		t.Fatal("scratch no longer rebuilds in place; this test needs a same-pointer rebuild")
	}
	sess.Run(g2, Options{MaxRounds: 3})
	if want := uninformedInSum(g2, sess.informed); sess.uninSum != want {
		t.Fatalf("uninformed in-degree sum %d after in-place rebuild, want %d", sess.uninSum, want)
	}
}

// TestExactCollisionsOptionPinsTransmitterSideCount: with
// Options.ExactCollisions the adaptive engine must never hand a round to
// the pull kernel, so the collision totals match the forced-push engine
// exactly even on a late-phase-heavy run where the default engine would
// choose pull (and report the smaller uninformed-side count).
func TestExactCollisionsOptionPinsTransmitterSideCount(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	g := graph.GNPDirected(1024, 0.03, rng.New(13))
	run := func(opt Options) *Result {
		return RunBroadcast(g, 0, &sbern{q: 0.05}, rng.New(2), opt)
	}
	SetEngineOverrides(EngineOverrides{Kernel: KernelPush})
	push := run(Options{MaxRounds: 800})
	SetEngineOverrides(EngineOverrides{})
	exact := run(Options{MaxRounds: 800, ExactCollisions: true})
	loose := run(Options{MaxRounds: 800})
	if exact.Collisions != push.Collisions {
		t.Fatalf("ExactCollisions run counted %d collisions, forced push %d",
			exact.Collisions, push.Collisions)
	}
	// The workload runs long past full informing, so the adaptive engine
	// must have taken the pull kernel for the late rounds — visible as a
	// strictly smaller (uninformed-side-only) collision count. Deterministic
	// seeds make this a hard assertion, and it proves the adaptive path is
	// actually exercised.
	if loose.Collisions >= push.Collisions {
		t.Fatalf("adaptive run counted %d collisions vs push's %d: pull kernel never selected",
			loose.Collisions, push.Collisions)
	}
	assertSameResult(t, "exact-collisions", push, exact)
	assertSameResult(t, "adaptive", push, loose)
}

// TestSkipBoundedByEnergyDeaths: deaths during a skipped silent span must
// land on the exact rounds the round-by-round engine finds, and the session
// must stop at the same round when the whole network depletes mid-silence.
func TestSkipBoundedByEnergyDeaths(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	g := graph.GNPDirected(96, 0.08, rng.New(21))
	// Heterogeneous budgets: listeners die at staggered rounds purely from
	// idle drain while the tiny-q protocol stays silent for long spans.
	budgets := make([]float64, 96)
	for i := range budgets {
		budgets[i] = 3 + float64(i%17)
	}
	spec := func() *energy.Spec {
		return &energy.Spec{Model: energy.Model{Tx: 1, Rx: 0.5, Listen: 0.25, Sleep: 0.125},
			Budgets: budgets, TrackPartition: true}
	}
	run := func() *Result {
		return RunBroadcast(g, 0, &sbern{q: 1e-4}, rng.New(17),
			Options{MaxRounds: 5000, Energy: spec()})
	}
	SetEngineOverrides(EngineOverrides{})
	skip := run()
	SetEngineOverrides(EngineOverrides{DisableSkip: true})
	plain := run()
	SetEngineOverrides(EngineOverrides{})
	if plain.Energy.DeadCount != 96 {
		t.Fatalf("workload should deplete the whole network, %d dead", plain.Energy.DeadCount)
	}
	assertSameResult(t, "energy-death-span", plain, skip)
}
