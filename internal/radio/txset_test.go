package radio

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// TestTxSetResetReusesBuffer pins the allocation-free trial-loop contract:
// once a TxSet has been sized, Reset must not allocate again for the same
// (or any smaller) network.
func TestTxSetResetReusesBuffer(t *testing.T) {
	var s TxSet
	s.Reset(256)
	if allocs := testing.AllocsPerRun(100, func() { s.Reset(256) }); allocs != 0 {
		t.Fatalf("Reset(256) allocates %v per run after warm-up, want 0", allocs)
	}
	// Shrinking and re-growing within the original capacity must reuse too.
	if allocs := testing.AllocsPerRun(100, func() { s.Reset(64); s.Reset(256) }); allocs != 0 {
		t.Fatalf("Reset(64)+Reset(256) allocates %v per run, want 0", allocs)
	}
}

// TestTxSetResetClearsSentinels pins the correctness half of the reuse: a
// round sentinel written before Reset must not make Contains report a stale
// membership afterwards.
func TestTxSetResetClearsSentinels(t *testing.T) {
	var s TxSet
	s.Reset(16)
	s.BeginRound()
	s.Add(graph.NodeID(5), 9)
	if !s.Contains(5, 9) {
		t.Fatal("Add(5, round 9) not visible to Contains")
	}
	s.Reset(16)
	if s.Contains(5, 9) {
		t.Fatal("stale round sentinel survived Reset: node 5 still in round 9's set")
	}
	// The cleared array must behave exactly like a fresh one for round 1.
	s.BeginRound()
	if s.Contains(5, 1) || s.Contains(0, 1) {
		t.Fatal("fresh round reports phantom members after Reset")
	}
}

// TestTxPerNodeEmptyResult: a zero-value (or PerNodeTx-less) Result must
// report 0 transmissions per node, not NaN.
func TestTxPerNodeEmptyResult(t *testing.T) {
	var r Result
	if got := r.TxPerNode(); got != 0 || math.IsNaN(got) {
		t.Fatalf("zero-value Result.TxPerNode() = %v, want 0", got)
	}
	r.TotalTx = 7
	if got := r.TxPerNode(); got != 0 {
		t.Fatalf("PerNodeTx-less Result.TxPerNode() = %v, want 0", got)
	}
}
