package radio

import "repro/internal/graph"

// Bitset is a word-packed set of node ids: the engine's informed-set
// representation, shared with the delivery kernels. At n nodes it costs
// n/8 bytes instead of n (the old []bool), so at the million-node scale the
// whole set stays cache-resident during delivery.
type Bitset []uint64

// NewBitset returns an empty set over the id range [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Get reports whether id i is in the set.
func (b Bitset) Get(i graph.NodeID) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }

// Set adds id i to the set.
func (b Bitset) Set(i graph.NodeID) { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// Clear removes id i from the set.
func (b Bitset) Clear(i graph.NodeID) { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// Reset removes every id.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}
