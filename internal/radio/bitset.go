package radio

import (
	"math/bits"

	"repro/internal/graph"
)

// Bitset is a word-packed set of node ids: the engine's informed-set
// representation, shared with the delivery kernels. At n nodes it costs
// n/8 bytes instead of n (the old []bool), so at the million-node scale the
// whole set stays cache-resident during delivery.
type Bitset []uint64

// NewBitset returns an empty set over the id range [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Get reports whether id i is in the set.
func (b Bitset) Get(i graph.NodeID) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }

// Set adds id i to the set.
func (b Bitset) Set(i graph.NodeID) { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// Clear removes id i from the set.
func (b Bitset) Clear(i graph.NodeID) { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// Reset removes every id.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Word-level operations: the dense delivery kernel (dense.go) treats Bitsets
// as arrays of 64-receiver lanes, so set algebra over whole rounds costs
// n/64 word operations instead of n branchy per-node updates. All operands
// must have equal length (the kernels size every per-session Bitset with
// NewBitset(n), so this holds by construction).

// OrWords folds o into b word-wise: b |= o.
func (b Bitset) OrWords(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// AndNotWords clears from b every bit set in o: b &^= o.
func (b Bitset) AndNotWords(o Bitset) {
	for i, w := range o {
		b[i] &^= w
	}
}

// Count returns the number of set bits (popcount over words).
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendIDs appends the set ids to dst in ascending order via per-word
// popcount iteration and returns the extended slice.
func (b Bitset) AppendIDs(dst []graph.NodeID) []graph.NodeID {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, graph.NodeID(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
