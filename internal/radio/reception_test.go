package radio

// Tests of the pluggable channel layer: every reception model must be
// engine-configuration invariant (the refactor's headline payoff — lossy and
// jammed runs now ride the pull/parallel kernels and the silent-skip fast
// path), deterministic across session segmentation (hashed draws), and
// correct on handcrafted capture/veto instances.

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/rng"
)

// receptionForcings is the full engine matrix the channel layer must be
// invariant under (the race CI leg runs this file's matrix tests).
var receptionForcings = []struct {
	name string
	o    EngineOverrides
}{
	{"default", EngineOverrides{}},
	{"scalar", EngineOverrides{ScalarDecisions: true}},
	{"push", EngineOverrides{Kernel: KernelPush}},
	{"pull", EngineOverrides{Kernel: KernelPull}},
	{"parallel", EngineOverrides{Kernel: KernelParallel}},
	{"dense", EngineOverrides{Kernel: KernelDense}},
	{"noskip", EngineOverrides{DisableSkip: true}},
	{"scalar-pull-noskip", EngineOverrides{ScalarDecisions: true, Kernel: KernelPull, DisableSkip: true}},
}

// TestChannelModelForcingsBitIdentical is the channel-layer counterpart of
// TestEngineConfigurationsBitIdentical, and the regression pin for the
// refactor's acceptance claim: LossProb and Jammed runs — once serial-only —
// and every new reception model must produce identical trajectories,
// transmissions and energy under every kernel, decision-path and skip
// forcing.
func TestChannelModelForcingsBitIdentical(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	jam := func(round int) []graph.NodeID {
		// A deterministic rotating jammer: three receivers every fifth round.
		if round%5 != 2 {
			return nil
		}
		base := graph.NodeID(round % 97)
		return []graph.NodeID{base, base + 101, base + 202}
	}
	channels := map[string]func() Options{
		"lossprob": func() Options { return Options{MaxRounds: 2500, LossProb: 0.25} },
		"lossy":    func() Options { return Options{MaxRounds: 2500, Reception: LossyChannel(0.25)} },
		"fade":     func() Options { return Options{MaxRounds: 2500, Reception: Fade(0.2)} },
		"jam":      func() Options { return Options{MaxRounds: 2500, Reception: Jam(0.15)} },
		"sinr":     func() Options { return Options{MaxRounds: 2500, Reception: SINRThreshold(0.5, 0.1)} },
		"jammed":   func() Options { return Options{MaxRounds: 2500, Jammed: jam} },
	}
	for gname, g := range sparseTestGraphs(t) {
		for cname, mkOpt := range channels {
			for _, meter := range []bool{false, true} {
				run := func() *Result {
					opt := mkOpt()
					if meter {
						opt.Energy = &energy.Spec{Model: energy.CC2420(), Budget: 150}
					}
					return RunBroadcast(g, 0, &sbern{q: 0.02}, rng.New(42), opt)
				}
				SetEngineOverrides(EngineOverrides{})
				base := run()
				if base.Informed < g.N()/2 {
					t.Fatalf("%s/%s: only %d informed; workload not representative", gname, cname, base.Informed)
				}
				label := gname + "/" + cname
				if meter {
					label += "/budget"
				}
				for _, cfg := range receptionForcings[1:] {
					SetEngineOverrides(cfg.o)
					assertSameResult(t, label+"/"+cfg.name, base, run())
				}
				SetEngineOverrides(EngineOverrides{})
			}
		}
	}
}

// TestLossProbMatchesLossyChannel: the Options.LossProb shorthand must be
// the exact same run as the explicit model (same hashed draws).
func TestLossProbMatchesLossyChannel(t *testing.T) {
	for gname, g := range sparseTestGraphs(t) {
		a := RunBroadcast(g, 0, &sbern{q: 0.03}, rng.New(5), Options{MaxRounds: 1500, LossProb: 0.3})
		b := RunBroadcast(g, 0, &sbern{q: 0.03}, rng.New(5), Options{MaxRounds: 1500, Reception: LossyChannel(0.3)})
		assertSameResult(t, gname, a, b)
		if a.Collisions != b.Collisions {
			t.Fatalf("%s: collision counts differ: %d vs %d", gname, a.Collisions, b.Collisions)
		}
	}
}

// TestDutyCycleForcingsBitIdentical: duty-cycled listeners must compose
// exactly with every engine forcing — in particular the silent-span skip
// (schedule spans settle closed-form) and the death heap (budgeted run).
func TestDutyCycleForcingsBitIdentical(t *testing.T) {
	defer SetEngineOverrides(EngineOverrides{})

	scheds := []energy.DutyCycle{
		{Period: 2, On: 1},
		{Period: 4, On: 1, Stagger: true},
		{Period: 5, On: 2, Offset: 3, Stagger: true},
	}
	for gname, g := range sparseTestGraphs(t) {
		for _, sched := range scheds {
			for _, budget := range []float64{0, 150} {
				sched := sched
				run := func() *Result {
					return RunBroadcast(g, 0, &sbern{q: 0.02}, rng.New(21), Options{
						MaxRounds: 2500,
						Energy:    &energy.Spec{Model: energy.CC2420(), Budget: budget, Schedule: &sched},
					})
				}
				SetEngineOverrides(EngineOverrides{})
				base := run()
				if base.Informed < g.N()/2 {
					t.Fatalf("%s/%+v: only %d informed; workload not representative", gname, sched, base.Informed)
				}
				for _, cfg := range receptionForcings[1:] {
					SetEngineOverrides(cfg.o)
					assertSameResult(t, gname+"/"+cfg.name, base, run())
				}
				SetEngineOverrides(EngineOverrides{})
			}
		}
	}
}

// TestFadeDeterministicAcrossSegments pins resume determinism: hashed
// channel draws are a pure function of (session seed, round, receiver), so
// splitting one session into many Run segments — the campaign-resume and
// mobility-epoch pattern — must reproduce the single-run trajectory exactly.
func TestFadeDeterministicAcrossSegments(t *testing.T) {
	for gname, g := range sparseTestGraphs(t) {
		for cname, model := range map[string]ReceptionModel{
			"fade":  Fade(0.25),
			"lossy": LossyChannel(0.25),
			"jam":   Jam(0.2),
		} {
			single := func() *Result {
				sess := NewBroadcastSession(g.N(), 0, &sbern{q: 0.03}, rng.New(9))
				return sess.Run(g, Options{MaxRounds: 600, Reception: model})
			}
			segmented := func() *Result {
				sess := NewBroadcastSession(g.N(), 0, &sbern{q: 0.03}, rng.New(9))
				var res *Result
				for seg := 0; seg < 6; seg++ {
					res = sess.Run(g, Options{MaxRounds: 100, Reception: model})
				}
				return res
			}
			a, b := single(), segmented()
			if a.Informed != b.Informed || a.TotalTx != b.TotalTx || a.MaxNodeTx != b.MaxNodeTx {
				t.Fatalf("%s/%s: one 600-round run and 6×100-round segments diverge: %+v vs %+v",
					gname, cname, a, b)
			}
		}
	}
}

// TestChanDrawPure: the determinism contract of the draw function itself —
// equal inputs collide, any argument change decorrelates, and the draw does
// not depend on evaluation order (it is a pure hash, not a stream).
func TestChanDrawPure(t *testing.T) {
	if chanDraw(1, 2, 3, 4) != chanDraw(1, 2, 3, 4) {
		t.Fatal("chanDraw is not a function of its arguments")
	}
	seen := map[uint64]bool{chanDraw(1, 2, 3, 4): true}
	for _, alt := range [][4]uint64{{9, 2, 3, 4}, {1, 9, 3, 4}, {1, 2, 9, 4}, {1, 2, 3, 9}} {
		d := chanDraw(alt[0], alt[1], alt[2], alt[3])
		if seen[d] {
			t.Fatalf("chanDraw%v aliases a previous draw", alt)
		}
		seen[d] = true
	}
	if pThreshold(0) != 0 {
		t.Fatal("pThreshold(0) must veto nothing")
	}
}

// TestSINRCaptureSemantics drives the capture rule through a handcrafted
// star: with K = 2 (beta 0.5, noise 0.1), two concurrent in-signals decode
// and three collide; the binary rule collides at two.
func TestSINRCaptureSemantics(t *testing.T) {
	// Star: 1, 2, 3 → 0.
	g := graph.FromEdges(4, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 0}})
	informed := NewBitset(4)
	for _, v := range []graph.NodeID{1, 2, 3} {
		informed.Set(v)
	}
	capture := SINRThreshold(0.5, 0.1).resolve(1)
	if capture.maxHits != 2 {
		t.Fatalf("SINRThreshold(0.5, 0.1) resolves to K=%d, want 2", capture.maxHits)
	}
	st := newDeliveryState(4)
	check := func(caps channelCaps, txs []graph.NodeID, wantDelivered, wantCollisions int) {
		t.Helper()
		d, c := st.deliver(g, 1, txs, informed, caps)
		if len(d) != wantDelivered || c != wantCollisions {
			t.Fatalf("txs %v caps{K=%d}: delivered %d collisions %d, want %d/%d",
				txs, caps.maxHits, len(d), c, wantDelivered, wantCollisions)
		}
	}
	check(channelCaps{maxHits: 1}, []graph.NodeID{1, 2}, 0, 1)                // binary: collision
	check(capture, []graph.NodeID{1, 2}, 1, 0)                                // K=2: captured
	check(capture, []graph.NodeID{1, 2, 3}, 0, 1)                             // K=2: three collide
	check(SINRThreshold(0.25, 0.1).resolve(1), []graph.NodeID{1, 2, 3}, 1, 0) // K=4
	// The pull kernel must apply the same limit.
	fr := newFrontierState(4)
	fr.reset(4)
	fr.sync(informed, 4)
	if d, _ := fr.deliver(g, 1, []graph.NodeID{1, 2}, capture); len(d) != 1 {
		t.Fatalf("pull kernel under capture: delivered %d, want 1", len(d))
	}
}

// TestSINRValidation: thresholds that admit no reception must refuse.
func TestSINRValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"beta 0":       func() { SINRThreshold(0, 0) },
		"noise eats K": func() { SINRThreshold(1, 1.5) },
		"fade 1":       func() { Fade(1) },
		"loss neg":     func() { LossyChannel(-0.1) },
		"jam 1":        func() { Jam(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestFadeVetoKeepsFrontier: a fade-vetoed receiver must stay uninformed
// and receive in a later clear round — i.e. the engine applies recvOK as a
// post-filter without removing the node from play.
func TestFadeVetoKeepsFrontier(t *testing.T) {
	// 0 → 1: one transmitter, one listener, repeated transmissions.
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	p := newScripted(map[int][]graph.NodeID{1: {0}, 2: {0}, 3: {0}, 4: {0}, 5: {0}, 6: {0}})
	res := RunBroadcast(g, 0, p, rng.New(77), Options{MaxRounds: 6, Reception: Fade(0.6)})
	caps := Fade(0.6).resolve(0) // seed-independent structure: recvOK set, edgeOK nil
	if caps.recvOK == nil || caps.edgeOK != nil || caps.maxHits != 1 {
		t.Fatalf("Fade resolves to unexpected capabilities %+v", caps)
	}
	if res.Informed == 2 && res.InformedRound == 1 {
		// Possible only if round 1 was clear for node 1 under this seed;
		// nothing to assert about veto recovery then — but with p = 0.6 over
		// 6 rounds the run informing at all is the point:
		return
	}
	if res.Informed != 2 {
		t.Fatalf("listener never informed across 6 repeated transmissions (fade 0.6, seed 77); "+
			"res %+v — veto may be removing the node from the frontier", res)
	}
}

// TestDropJammedEdgeCases: the jam filter's boundary behaviour.
func TestDropJammedEdgeCases(t *testing.T) {
	if got := dropJammed(nil, []graph.NodeID{1, 2}); len(got) != 0 {
		t.Fatalf("empty delivered: got %v", got)
	}
	d := []graph.NodeID{3, 4, 5}
	if got := dropJammed(d, nil); len(got) != 3 {
		t.Fatalf("no jammers must keep all: got %v", got)
	}
	if got := dropJammed([]graph.NodeID{3, 4, 5}, []graph.NodeID{3, 4, 5}); len(got) != 0 {
		t.Fatalf("all jammed: got %v", got)
	}
	// Duplicate jam IDs must not over-remove distinct receivers.
	if got := dropJammed([]graph.NodeID{3, 4, 5}, []graph.NodeID{4, 4, 4}); len(got) != 2 ||
		got[0] != 3 || got[1] != 5 {
		t.Fatalf("duplicate jammer ids: got %v, want [3 5]", got)
	}
	// Order preserved.
	if got := dropJammed([]graph.NodeID{9, 1, 7, 2}, []graph.NodeID{1, 2}); len(got) != 2 ||
		got[0] != 9 || got[1] != 7 {
		t.Fatalf("order not preserved: got %v", got)
	}
}
