// Package stats provides the summary statistics, fits, and goodness-of-fit
// helpers used by the experiment harness.
//
// The experiments in this repository validate asymptotic *shapes* (rounds
// growing like log n, transmissions like log² n / λ, ...), so alongside the
// usual mean/variance/quantile machinery the package offers least-squares
// fits against arbitrary predictor transforms and log-log slope estimation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds standard moments and order statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not mutate xs.
// It panics on an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI returns the sample mean together with a normal-approximation
// confidence half-width at the given z value (e.g. 1.96 for 95%).
// For n == 1 the half-width is reported as +Inf.
func MeanCI(xs []float64, z float64) (mean, halfWidth float64) {
	s := Summarize(xs)
	if s.N < 2 {
		return s.Mean, math.Inf(1)
	}
	return s.Mean, z * s.StdDev / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean. It panics on an empty sample.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// MaxInt returns the maximum of an integer sample (0 on empty).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Floats converts an int sample to float64 for the statistics helpers.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// LinearFit holds the result of a simple least-squares regression
// y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear computes the least-squares line through (xs[i], ys[i]).
// It panics if the slices differ in length or have fewer than 2 points,
// or if all xs are identical (the slope is undefined).
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		panic("stats: FitLinear needs at least 2 points")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: FitLinear with constant x")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// FitPowerLaw fits y ≈ C·x^k by regressing log y on log x and returns
// (k, C, R² in log space). All inputs must be strictly positive.
func FitPowerLaw(xs, ys []float64) (exponent, coeff, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: FitPowerLaw needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f := FitLinear(lx, ly)
	return f.Slope, math.Exp(f.Intercept), f.R2
}

// Ratio returns element-wise ys[i]/xs[i]; used to check that a measured
// quantity tracks a predicted scaling (the ratios should be near-constant).
func Ratio(ys, xs []float64) []float64 {
	if len(xs) != len(ys) {
		panic("stats: Ratio length mismatch")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = ys[i] / xs[i]
	}
	return out
}

// RelSpread returns (max-min)/mean of xs — a scale-free measure of how
// constant a sequence of ratios is. Panics on empty input or zero mean.
func RelSpread(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		panic("stats: RelSpread with zero mean")
	}
	return (s.Max - s.Min) / math.Abs(s.Mean)
}

// Histogram bins values into k equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Width    float64
}

// NewHistogram builds a histogram of xs with k bins. Values exactly at Max
// fall in the last bin. Panics if k <= 0 or xs is empty.
func NewHistogram(xs []float64, k int) *Histogram {
	if k <= 0 {
		panic("stats: histogram needs k > 0")
	}
	s := Summarize(xs)
	h := &Histogram{Min: s.Min, Max: s.Max, Counts: make([]int, k)}
	if s.Max == s.Min {
		h.Width = 1
		h.Counts[0] = len(xs)
		return h
	}
	h.Width = (s.Max - s.Min) / float64(k)
	for _, x := range xs {
		b := int((x - s.Min) / h.Width)
		if b >= k {
			b = k - 1
		}
		h.Counts[b]++
	}
	return h
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against a uniform expectation. Degrees of freedom = len(counts)-1.
func ChiSquareUniform(counts []int) float64 {
	if len(counts) == 0 {
		panic("stats: ChiSquareUniform of empty counts")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	want := float64(total) / float64(len(counts))
	if want == 0 {
		return 0
	}
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - want
		chi += d * d / want
	}
	return chi
}

// ChiSquare returns the chi-square statistic of observed counts against the
// expected probabilities (which must sum to ~1). Bins with expected count
// below 1e-12 are skipped to avoid division blow-ups.
func ChiSquare(counts []int, probs []float64) float64 {
	if len(counts) != len(probs) {
		panic("stats: ChiSquare length mismatch")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	chi := 0.0
	for i, c := range counts {
		want := probs[i] * float64(total)
		if want < 1e-12 {
			continue
		}
		d := float64(c) - want
		chi += d * d / want
	}
	return chi
}

// SuccessRate returns the fraction of true values and a Wilson-score
// half-width at z (robust near 0 and 1, unlike the normal approximation).
func SuccessRate(outcomes []bool, z float64) (rate, halfWidth float64) {
	if len(outcomes) == 0 {
		panic("stats: SuccessRate of empty sample")
	}
	n := float64(len(outcomes))
	k := 0.0
	for _, b := range outcomes {
		if b {
			k++
		}
	}
	p := k / n
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / den
	_ = center
	return p, half
}

// GeomMean returns the geometric mean of a strictly positive sample.
func GeomMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeomMean of empty sample")
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeomMean needs positive data")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Log2 is a convenience base-2 logarithm used across experiment code.
func Log2(x float64) float64 { return math.Log2(x) }

// CeilLog2 returns ceil(log2(n)) for n >= 1 (0 for n == 1).
func CeilLog2(n int) int {
	if n < 1 {
		panic("stats: CeilLog2 needs n >= 1")
	}
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// FloorLog2 returns floor(log2(n)) for n >= 1.
func FloorLog2(n int) int {
	if n < 1 {
		panic("stats: FloorLog2 needs n >= 1")
	}
	k := -1
	for n > 0 {
		n >>= 1
		k++
	}
	return k
}
