package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPermutationTestDetectsShift(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = r.Normal()
		ys[i] = r.Normal() + 2 // clearly larger
	}
	p := PermutationTest(xs, ys, 2000, rng.New(2))
	if p > 0.01 {
		t.Fatalf("shifted samples p=%v, want tiny", p)
	}
}

func TestPermutationTestNullIsUniformish(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 25)
	ys := make([]float64, 25)
	for i := range xs {
		xs[i] = r.Normal()
		ys[i] = r.Normal()
	}
	p := PermutationTest(xs, ys, 2000, rng.New(4))
	if p < 0.02 {
		t.Fatalf("null hypothesis rejected spuriously: p=%v", p)
	}
}

func TestPermutationTestDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 3, 4}
	a := PermutationTest(xs, ys, 500, rng.New(5))
	b := PermutationTest(xs, ys, 500, rng.New(5))
	if a != b {
		t.Fatalf("permutation test not deterministic: %v vs %v", a, b)
	}
}

func TestPermutationTestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { PermutationTest(nil, []float64{1}, 10, rng.New(1)) },
		"iters": func() { PermutationTest([]float64{1}, []float64{1}, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	r := rng.New(6)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 10 + r.Normal()
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, rng.New(7))
	m := Mean(xs)
	if lo > m || hi < m {
		t.Fatalf("CI [%v, %v] excludes the sample mean %v", lo, hi, m)
	}
	if lo > 10.5 || hi < 9.5 {
		t.Fatalf("CI [%v, %v] implausible for true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("CI [%v, %v] too wide for n=100", lo, hi)
	}
}

func TestBootstrapCINarrowsWithConfidence(t *testing.T) {
	r := rng.New(8)
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = r.Normal()
	}
	lo50, hi50 := BootstrapCI(xs, 0.5, 800, rng.New(9))
	lo99, hi99 := BootstrapCI(xs, 0.99, 800, rng.New(9))
	if (hi50 - lo50) >= (hi99 - lo99) {
		t.Fatalf("50%% CI [%v,%v] not narrower than 99%% CI [%v,%v]", lo50, hi50, lo99, hi99)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":      func() { BootstrapCI(nil, 0.95, 100, rng.New(1)) },
		"confidence": func() { BootstrapCI([]float64{1}, 1.5, 100, rng.New(1)) },
		"iters":      func() { BootstrapCI([]float64{1}, 0.95, 5, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMannWhitneyUShift(t *testing.T) {
	r := rng.New(10)
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = r.Normal()
		ys[i] = r.Normal() + 1.5
	}
	_, z := MannWhitneyU(xs, ys)
	if z < 3 {
		t.Fatalf("shifted samples z=%v, want strongly positive", z)
	}
	_, zRev := MannWhitneyU(ys, xs)
	if zRev > -3 {
		t.Fatalf("reverse comparison z=%v, want strongly negative", zRev)
	}
}

func TestMannWhitneyUNull(t *testing.T) {
	r := rng.New(11)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = r.Normal()
		ys[i] = r.Normal()
	}
	_, z := MannWhitneyU(xs, ys)
	if math.Abs(z) > 3 {
		t.Fatalf("null z=%v implausibly large", z)
	}
}

func TestMannWhitneyUTies(t *testing.T) {
	// All equal: U should equal its mean, z = 0.
	xs := []float64{5, 5, 5}
	ys := []float64{5, 5, 5}
	u, z := MannWhitneyU(xs, ys)
	if u != 4.5 || z != 0 {
		t.Fatalf("all-ties u=%v z=%v, want 4.5, 0", u, z)
	}
}

func TestMannWhitneyUKnown(t *testing.T) {
	// ys all above xs: U = nx*ny (maximal).
	xs := []float64{1, 2}
	ys := []float64{3, 4, 5}
	u, z := MannWhitneyU(xs, ys)
	if u != 6 {
		t.Fatalf("u=%v, want 6", u)
	}
	if z <= 0 {
		t.Fatalf("z=%v, want positive", z)
	}
}
