package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEq(s.Variance, 2.5, 1e-12) {
		t.Fatalf("variance %v, want 2.5", s.Variance)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.StdDev != 0 || s.Median != 7 {
		t.Fatalf("bad single summary: %+v", s)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	r := rng.New(1)
	f := func(n uint8) bool {
		m := int(n%20) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{1, 1, 1, 1}, 1.96)
	if mean != 1 || hw != 0 {
		t.Fatalf("constant sample CI: mean=%v hw=%v", mean, hw)
	}
	_, hw1 := MeanCI([]float64{5}, 1.96)
	if !math.IsInf(hw1, 1) {
		t.Fatalf("n=1 half-width should be +Inf, got %v", hw1)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f := FitLinear(xs, ys)
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 1, 1e-12) || !almostEq(f.R2, 1, 1e-12) {
		t.Fatalf("bad fit: %+v", f)
	}
}

func TestFitLinearNoise(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] - 10 + r.Normal()*0.5
	}
	f := FitLinear(xs, ys)
	if !almostEq(f.Slope, 3, 0.01) {
		t.Fatalf("slope %v, want ~3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 %v too low", f.R2)
	}
}

func TestFitLinearPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { FitLinear([]float64{1}, []float64{1, 2}) },
		"short":    func() { FitLinear([]float64{1}, []float64{1}) },
		"constX":   func() { FitLinear([]float64{2, 2}, []float64{1, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFitPowerLaw(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.5)
	}
	k, c, r2 := FitPowerLaw(xs, ys)
	if !almostEq(k, 1.5, 1e-9) || !almostEq(c, 5, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Fatalf("power fit k=%v c=%v r2=%v", k, c, r2)
	}
}

func TestRatioAndRelSpread(t *testing.T) {
	r := Ratio([]float64{2, 4, 6}, []float64{1, 2, 3})
	for _, v := range r {
		if v != 2 {
			t.Fatalf("ratio %v", r)
		}
	}
	if got := RelSpread(r); got != 0 {
		t.Fatalf("RelSpread of constant = %v", got)
	}
	if got := RelSpread([]float64{1, 3}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("RelSpread([1,3]) = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("histogram counts %v", h.Counts)
	}
	hc := NewHistogram([]float64{5, 5, 5}, 3)
	if hc.Counts[0] != 3 {
		t.Fatalf("constant histogram %v", hc.Counts)
	}
}

func TestChiSquareUniform(t *testing.T) {
	if got := ChiSquareUniform([]int{10, 10, 10}); got != 0 {
		t.Fatalf("uniform chi-square %v", got)
	}
	if got := ChiSquareUniform([]int{0, 30}); !almostEq(got, 30, 1e-12) {
		t.Fatalf("skewed chi-square %v, want 30", got)
	}
}

func TestChiSquareAgainstPMF(t *testing.T) {
	// Sampling from a known pmf should give small chi-square for 3 dof.
	r := rng.New(3)
	probs := []float64{0.5, 0.25, 0.125, 0.125}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		u := r.Float64()
		switch {
		case u < 0.5:
			counts[0]++
		case u < 0.75:
			counts[1]++
		case u < 0.875:
			counts[2]++
		default:
			counts[3]++
		}
	}
	if chi := ChiSquare(counts, probs); chi > 16.27 { // p=0.001 at 3 dof
		t.Fatalf("chi-square %v too large", chi)
	}
}

func TestSuccessRate(t *testing.T) {
	rate, hw := SuccessRate([]bool{true, true, false, false}, 1.96)
	if rate != 0.5 {
		t.Fatalf("rate %v", rate)
	}
	if hw <= 0 || hw >= 1 {
		t.Fatalf("half-width %v", hw)
	}
	rate1, _ := SuccessRate([]bool{true}, 1.96)
	if rate1 != 1 {
		t.Fatalf("rate of all-true %v", rate1)
	}
}

func TestGeomMean(t *testing.T) {
	if got := GeomMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("GeomMean %v", got)
	}
}

func TestLogHelpers(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2}, {1024, 10, 10}, {1025, 11, 10},
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.ceil {
			t.Fatalf("CeilLog2(%d) = %d, want %d", c.n, got, c.ceil)
		}
		if got := FloorLog2(c.n); got != c.floor {
			t.Fatalf("FloorLog2(%d) = %d, want %d", c.n, got, c.floor)
		}
	}
}

func TestLogHelpersProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%100000 + 1
		c, fl := CeilLog2(n), FloorLog2(n)
		return (1<<uint(c)) >= n && (c == 0 || (1<<uint(c-1)) < n) &&
			(1<<uint(fl)) <= n && (1<<uint(fl+1)) > n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatsAndMaxInt(t *testing.T) {
	fs := Floats([]int{1, 2, 3})
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatalf("Floats %v", fs)
	}
	if MaxInt([]int{3, 1, 2}) != 3 {
		t.Fatal("MaxInt wrong")
	}
	if MaxInt(nil) != 0 {
		t.Fatal("MaxInt(nil) != 0")
	}
	if MaxInt([]int{-5, -2}) != -2 {
		t.Fatal("MaxInt negative wrong")
	}
}
