package stats

import (
	"math"

	"repro/internal/rng"
)

// PermutationTest estimates the one-sided p-value for the hypothesis
// mean(xs) < mean(ys) by randomly re-assigning the pooled samples `iters`
// times: the returned p is the fraction of permutations whose mean
// difference (ys - xs) is at least as large as the observed one. Small p
// means "ys really is larger than xs", e.g. a baseline really does use more
// transmissions than the paper's algorithm.
func PermutationTest(xs, ys []float64, iters int, r *rng.RNG) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		panic("stats: PermutationTest needs non-empty samples")
	}
	if iters < 1 {
		panic("stats: PermutationTest needs iters >= 1")
	}
	observed := Mean(ys) - Mean(xs)
	pool := make([]float64, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	nx := len(xs)
	atLeast := 0
	for i := 0; i < iters; i++ {
		r.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		sumX := 0.0
		for _, v := range pool[:nx] {
			sumX += v
		}
		sumY := 0.0
		for _, v := range pool[nx:] {
			sumY += v
		}
		diff := sumY/float64(len(pool)-nx) - sumX/float64(nx)
		if diff >= observed {
			atLeast++
		}
	}
	// Add-one smoothing keeps the p-value away from an impossible 0.
	return (float64(atLeast) + 1) / (float64(iters) + 1)
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using `iters`
// resamples. It is distribution-free, unlike the normal-approximation
// MeanCI, and better behaved for the skewed round-count distributions the
// simulator produces.
func BootstrapCI(xs []float64, confidence float64, iters int, r *rng.RNG) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0,1)")
	}
	if iters < 10 {
		panic("stats: BootstrapCI needs iters >= 10")
	}
	means := make([]float64, iters)
	for i := range means {
		sum := 0.0
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	alpha := (1 - confidence) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// MannWhitneyU computes the Mann–Whitney U statistic for ys versus xs and
// returns the normal-approximation z-score for the hypothesis that ys tends
// to be larger. For sample sizes >= 8 the approximation is standard; use
// PermutationTest for smaller samples. Ties receive average ranks.
func MannWhitneyU(xs, ys []float64) (u, z float64) {
	nx, ny := len(xs), len(ys)
	if nx == 0 || ny == 0 {
		panic("stats: MannWhitneyU needs non-empty samples")
	}
	type tagged struct {
		v    float64
		isY  bool
		rank float64
	}
	all := make([]tagged, 0, nx+ny)
	for _, v := range xs {
		all = append(all, tagged{v: v})
	}
	for _, v := range ys {
		all = append(all, tagged{v: v, isY: true})
	}
	// Insertion sort by value (samples are small in this codebase).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].v < all[j-1].v; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	// Average ranks over tie groups (1-based ranks).
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+1+j) / 2 // mean of ranks i+1..j
		for k := i; k < j; k++ {
			all[k].rank = avg
		}
		i = j
	}
	ry := 0.0
	for _, t := range all {
		if t.isY {
			ry += t.rank
		}
	}
	u = ry - float64(ny)*float64(ny+1)/2
	mu := float64(nx) * float64(ny) / 2
	sigma := math.Sqrt(float64(nx) * float64(ny) * float64(nx+ny+1) / 12)
	if sigma == 0 {
		return u, 0
	}
	return u, (u - mu) / sigma
}
