// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// trial must be a pure function of its seeds so that parallel sweeps produce
// bit-identical results to serial runs. The standard library's math/rand
// global functions are not splittable in a way that guarantees this, so we
// implement xoshiro256++ seeded via splitmix64, following the reference
// constructions by Blackman and Vigna.
//
// The generator is NOT safe for concurrent use; callers derive independent
// substreams with Split (one per goroutine, node, or trial) instead of
// sharing a generator behind a lock.
package rng

import "math"

// RNG is a xoshiro256++ generator. The zero value is invalid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// to expand seeds into full xoshiro state and to derive substream seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	var r RNG
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state as if freshly created with New(seed).
func (r *RNG) Reseed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro state must not be all zero; splitmix64 of any seed cannot
	// produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent substream keyed by id. Streams derived with
// distinct ids from the same parent are statistically independent for our
// purposes (the derivation hashes the parent's next output with the id
// through splitmix64). Split advances the parent generator once.
func (r *RNG) Split(id uint64) *RNG {
	x := r.Uint64() ^ (id * 0x9e3779b97f4a7c15)
	return New(splitmix64(&x))
}

// SubSeed returns a derived seed for stream id without consuming parent
// state. It allows deterministic fan-out: SubSeed(seed, i) is a pure
// function, so workers can be seeded independently of scheduling order.
func SubSeed(seed, id uint64) uint64 {
	x := seed ^ 0xd1b54a32d192ed03
	h := splitmix64(&x)
	x = h ^ (id+1)*0x9e3779b97f4a7c15
	return splitmix64(&x)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	v := r.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t & mask32
	hi1 := t >> 32
	lo1 += a0 * b1
	hi = a1*b1 + hi1 + lo1>>32
	lo = a * b
	return hi, lo
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a sample from the geometric distribution on {0, 1, 2, ...}
// with mean (1-p)/p. It panics unless 0 < p <= 1. For small p it uses the
// inversion formula floor(log(U)/log(1-p)) which is O(1).
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// SkipSampler enumerates the indices of [0, n) that pass independent
// Bernoulli(p) trials, in increasing order, drawing only O(np) expected
// randomness via geometric skipping (the Batagelj–Brandes trick already used
// by the G(n,p) generators). It is the decision-phase primitive behind the
// batch transmit fast path: selecting the ~nq transmitters of a Bernoulli
// round directly instead of flipping n coins.
//
// The zero value is exhausted; obtain one from RNG.SkipSample. The sampler
// borrows the RNG: interleaving other draws between Next calls changes the
// selection (deterministically).
type SkipSampler struct {
	r    *RNG
	p    float64
	n    int
	next int
	all  bool
}

// SkipSample returns a sampler over [0, n) with per-index probability p.
// p <= 0 selects nothing and p >= 1 selects everything; neither consumes
// randomness for the degenerate part (p >= 1 consumes none at all).
func (r *RNG) SkipSample(n int, p float64) SkipSampler {
	s := SkipSampler{r: r, p: p, n: n}
	switch {
	case n <= 0 || p <= 0:
		s.next = n
		if s.next < 0 {
			s.next = 0
		}
	case p >= 1:
		s.all = true
	default:
		s.next = r.Geometric(p)
	}
	return s
}

// Next returns the next selected index, or ok == false when exhausted.
func (s *SkipSampler) Next() (i int, ok bool) {
	if s.next >= s.n {
		return 0, false
	}
	i = s.next
	if s.all {
		s.next++
	} else {
		s.next += 1 + s.r.Geometric(s.p)
	}
	return i, true
}

// Binomial returns a sample from Binomial(n, p). For small n it sums
// Bernoulli draws; for large n it uses geometric skipping (waiting times),
// which runs in O(np) expected time and is exact.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if n <= 32 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Geometric skipping: positions of successes among n trials.
	k := 0
	i := r.Geometric(p)
	for i < n {
		k++
		i += 1 + r.Geometric(p)
	}
	return k
}

// Exponential returns a sample from Exp(rate) with the given rate parameter
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential needs rate > 0")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Normal returns a standard normal sample via the polar Box–Muller method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place uniformly at random.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct uniform values from [0, n) in
// increasing order. It panics if k > n or either is negative. For k close to
// n it uses a partial Fisher–Yates; for small k, rejection into a set would
// allocate, so we use Floyd's algorithm.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: invalid SampleWithoutReplacement arguments")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort (k is typically small; avoids importing sort).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
