package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed state differs from New at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const m, trials = 10, 100000
	counts := make([]int, m)
	for i := 0; i < trials; i++ {
		counts[r.Intn(m)]++
	}
	want := float64(trials) / m
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", k, c, want)
		}
	}
}

func TestUint64nEdge(t *testing.T) {
	r := New(7)
	if got := r.Uint64n(1); got != 0 {
		t.Fatalf("Uint64n(1) = %d, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(3); v > 2 {
			t.Fatalf("Uint64n(3) = %d", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(9)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(10)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / n
		want := (1 - p) / p
		sd := math.Sqrt((1-p)/(p*p)) / math.Sqrt(n)
		if math.Abs(mean-want) > 6*sd+0.01 {
			t.Fatalf("Geometric(%v) mean %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBinomialMoments(t *testing.T) {
	r := New(12)
	cases := []struct {
		n int
		p float64
	}{{10, 0.5}, {100, 0.1}, {1000, 0.01}, {5000, 0.7}}
	for _, c := range cases {
		const trials = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(c.n, c.p))
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		varr := sumSq/trials - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantMean) > 6*math.Sqrt(wantVar/trials)+0.05 {
			t.Fatalf("Binomial(%d,%v) mean %v want %v", c.n, c.p, mean, wantMean)
		}
		if math.Abs(varr-wantVar)/wantVar > 0.15 {
			t.Fatalf("Binomial(%d,%v) var %v want %v", c.n, c.p, varr, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(13)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0,.5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100,0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100,1) = %d", got)
	}
	f := func(n uint8, pRaw uint16) bool {
		p := float64(pRaw) / math.MaxUint16
		k := r.Binomial(int(n), p)
		return k >= 0 && k <= int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(14)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	varr := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Normal mean %v", mean)
	}
	if math.Abs(varr-1) > 0.03 {
		t.Fatalf("Normal variance %v", varr)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(15)
	const rate, n = 2.0, 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exponential(%v) mean %v", rate, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d count %d, want ~%v", k, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(18)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(19)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}} {
		s := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("sample(%d,%d) length %d", tc.n, tc.k, len(s))
		}
		for i, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("sample(%d,%d) out of range: %d", tc.n, tc.k, v)
			}
			if i > 0 && s[i-1] >= v {
				t.Fatalf("sample(%d,%d) not strictly increasing: %v", tc.n, tc.k, s)
			}
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k>n did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(20)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide: %d/1000", same)
	}
}

func TestSubSeedDeterministic(t *testing.T) {
	if SubSeed(1, 2) != SubSeed(1, 2) {
		t.Fatal("SubSeed not deterministic")
	}
	if SubSeed(1, 2) == SubSeed(1, 3) {
		t.Fatal("SubSeed id collision")
	}
	if SubSeed(1, 2) == SubSeed(2, 2) {
		t.Fatal("SubSeed seed collision")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestChiSquareUint64Bits(t *testing.T) {
	// Crude bit-balance check: each of the 64 bits should be ~50/50.
	r := New(21)
	const n = 100000
	var ones [64]int
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-n/2) > 6*math.Sqrt(n/4) {
			t.Fatalf("bit %d set %d/%d times", b, c, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkGeometricSmallP(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Geometric(1e-4)
	}
	_ = sink
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(1<<16, 1e-3)
	}
	_ = sink
}
