package lowerbound

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestObs43PairProb(t *testing.T) {
	if got := Obs43PairProb(0.5); got != 0.5 {
		t.Fatalf("pair prob at q=0.5: %v", got)
	}
	if got := Obs43PairProb(0); got != 0 {
		t.Fatalf("pair prob at q=0: %v", got)
	}
	if got := Obs43PairProb(1); got != 0 {
		t.Fatalf("pair prob at q=1: %v (both always transmit -> collision)", got)
	}
}

func TestObs43SuccessProbMonotone(t *testing.T) {
	prev := 0.0
	for _, r := range []int{1, 5, 20, 100, 500} {
		p := Obs43SuccessProb(32, 0.1, r)
		if p < prev {
			t.Fatalf("success prob not monotone in rounds at %d", r)
		}
		prev = p
	}
	if prev < 0.999 {
		t.Fatalf("500 rounds at q=0.1 should succeed: %v", prev)
	}
}

func TestObs43RoundsNeededConsistent(t *testing.T) {
	n, q, fail := 64, 0.2, 1.0/64
	r := Obs43RoundsNeeded(n, q, fail)
	if got := Obs43SuccessProb(n, q, r); got < 1-fail {
		t.Fatalf("R=%d gives success %v < %v", r, got, 1-fail)
	}
	if r > 1 {
		if got := Obs43SuccessProb(n, q, r-1); got >= 1-fail {
			t.Fatalf("R-1=%d already succeeds (%v); R not minimal", r-1, got)
		}
	}
}

func TestObs43EnergyCurveAboveBound(t *testing.T) {
	// The lower bound's content: at EVERY rate q, achieving success 1-1/n
	// costs at least ~n·log n/2 expected transmissions. (The bound's
	// constant is loose; we verify a 0.8 safety factor.)
	n := 256
	qs := []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
	curve := Obs43EnergyCurve(n, qs, 1.0/float64(n))
	bound := Obs43Bound(n)
	for _, pt := range curve {
		if pt.Energy < 0.8*bound {
			t.Fatalf("q=%v: energy %v below 0.8x bound %v", pt.Q, pt.Energy, bound)
		}
	}
}

func TestObs43AnalyticMatchesSimulation(t *testing.T) {
	// Cross-validate the analytic success probability against Monte Carlo on
	// the actual network with the actual FixedProb protocol.
	n := 16
	q := 0.15
	rounds := 40
	net := graph.NewObs43Network(n)
	// In the simulation the source must first inform the intermediates
	// (1 round with every informed node = source transmitting at rate q...).
	// To match the analytic model exactly, give the run extra rounds until
	// the source fires once, then count `rounds` more. Simpler: measure the
	// conditional success within [t1+1, t1+rounds] where t1 = first source
	// transmission. We approximate by using total budget t1+rounds per trial.
	const trials = 800
	hits := 0
	for s := uint64(0); s < trials; s++ {
		r := rng.New(s)
		// Determine t1: rounds until source transmits (geometric).
		t1 := 1 + r.Geometric(q)
		f := &baseline.FixedProb{Q: q}
		res := radio.RunBroadcast(net.G, net.Source, f, rng.New(s^0xabc), radio.Options{
			MaxRounds: t1 + rounds, StopWhenInformed: true,
		})
		if res.Completed() {
			hits++
		}
	}
	got := float64(hits) / trials
	// The analytic model assumes intermediates start informed; the simulated
	// source keeps transmitting after t1 (it is never silenced), which can
	// only help... it cannot collide with intermediates at destinations (the
	// source is not an in-neighbour of any destination). It may differ by the
	// exact t1 the sim realises vs. the geometric we drew, so allow slack.
	want := Obs43SuccessProb(n, q, rounds)
	if math.Abs(got-want) > 0.12 {
		t.Fatalf("simulated success %v vs analytic %v", got, want)
	}
}

func TestObs43Panics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad q":       func() { Obs43PairProb(1.2) },
		"bad failure": func() { Obs43RoundsNeeded(8, 0.1, 0) },
		"zero q":      func() { Obs43RoundsNeeded(8, 0, 0.1) },
		"bad n":       func() { Obs43SuccessProb(0, 0.1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStarCrossProbPeaksNearMatchingLevel(t *testing.T) {
	// With a point distribution at level k, a star of size 2^k crosses with
	// constant probability ~ (1-1/m)^{m-1} -> 1/e; far-off levels are bad.
	n := 1 << 12
	m := 1 << 6
	matched := StarCrossProb(dist.NewPointLevel(n, 6), m)
	if matched < 0.3 {
		t.Fatalf("matched level cross prob %v", matched)
	}
	tooLow := StarCrossProb(dist.NewPointLevel(n, 1), m)   // everyone fires: collisions
	tooHigh := StarCrossProb(dist.NewPointLevel(n, 12), m) // nobody fires
	if tooLow > matched/4 || tooHigh > matched/2 {
		t.Fatalf("off-level cross probs low=%v high=%v vs matched=%v", tooLow, tooHigh, matched)
	}
}

func TestSumStarCrossProbBounded(t *testing.T) {
	// Theorem 4.4's integral bound: Σ_i P(cross S_i) <= ~1/ln 2 for ANY
	// distribution. Check for several.
	n := 1 << 16
	L := 16
	for _, d := range []*dist.Distribution{
		dist.NewUniformLevels(n),
		dist.NewAlpha(n, 4),
		dist.NewAlphaPrime(n, 4),
		dist.NewPointLevel(n, 8),
	} {
		s := SumStarCrossProb(d, L)
		if s > 1/math.Ln2+0.15 {
			t.Fatalf("%s: star-cross sum %v exceeds 1/ln2", d.Name, s)
		}
	}
}

func TestMinStarCrossProbSmall(t *testing.T) {
	// Consequently the worst star crosses with prob <= ~1.44/L.
	n := 1 << 16
	L := 16
	for _, d := range []*dist.Distribution{
		dist.NewUniformLevels(n),
		dist.NewAlpha(n, 4),
		dist.NewAlphaPrime(n, 4),
	} {
		m, arg := MinStarCrossProb(d, L)
		if m > 1.6/float64(L) {
			t.Fatalf("%s: min star cross %v (at S_%d) too large", d.Name, m, arg)
		}
		if arg < 1 || arg > L {
			t.Fatalf("bad argmin %d", arg)
		}
	}
}

func TestStarCrossAnalyticMatchesSimulation(t *testing.T) {
	// Monte Carlo one star: m leaves all active, drawing level k ~ d each
	// round, each transmitting w.p. 2^{-k}. Compare per-round success rate.
	n := 1 << 10
	m := 32
	d := dist.NewAlpha(n, 5)
	r := rng.New(42)
	const rounds = 200000
	hits := 0
	for i := 0; i < rounds; i++ {
		k := d.Sample(r)
		q := math.Pow(2, -float64(k))
		cnt := 0
		for leaf := 0; leaf < m; leaf++ {
			if r.Bernoulli(q) {
				cnt++
				if cnt > 1 {
					break
				}
			}
		}
		if cnt == 1 {
			hits++
		}
	}
	got := float64(hits) / rounds
	want := StarCrossProb(d, m)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("simulated star cross %v vs analytic %v", got, want)
	}
}

func TestFig2Predictions(t *testing.T) {
	n := 1 << 10
	d := dist.NewAlphaForDiameter(n, 64)
	starsT := Fig2PredictedStarsTime(d, 10)
	pathT := Fig2PredictedPathTime(d, 100)
	if starsT <= 0 || pathT <= 0 {
		t.Fatal("non-positive predictions")
	}
	// Path time = edges / E[sendprob].
	want := 100 / d.ExpectedSendProb()
	if math.Abs(pathT-want) > 1e-9 {
		t.Fatalf("path time %v, want %v", pathT, want)
	}
	tx := Fig2PredictedTxPerActiveNode(d, 100)
	if math.Abs(tx-100*d.ExpectedSendProb()) > 1e-9 {
		t.Fatalf("tx prediction %v", tx)
	}
}

func TestTheorem44Bound(t *testing.T) {
	// For c <= 2 the denominator uses 8: bound = log²n/(8·log(n/D)).
	n, D := 1<<16, 1<<8
	got := Theorem44Bound(n, D, 1)
	want := 16.0 * 16 / (8 * 8)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bound %v, want %v", got, want)
	}
	// For large c the denominator switches to 4c.
	got2 := Theorem44Bound(n, D, 10)
	want2 := 16.0 * 16 / (40 * 8)
	if math.Abs(got2-want2) > 1e-9 {
		t.Fatalf("bound(c=10) %v, want %v", got2, want2)
	}
}

func TestAlphaSitsNearTheorem44Bound(t *testing.T) {
	// The reason Algorithm 3 is optimal: its expected per-node energy over a
	// Θ(log² n) window is Θ(log² n/λ), within a constant of Theorem44Bound.
	n, D := 1<<14, 1<<7
	d := dist.NewAlphaForDiameter(n, D)
	window := 14 * 14 // log²n
	predicted := Fig2PredictedTxPerActiveNode(d, window)
	bound := Theorem44Bound(n, D, 1)
	ratio := predicted / bound
	if ratio < 0.2 || ratio > 20 {
		t.Fatalf("alpha energy %v vs Thm4.4 bound %v (ratio %v)", predicted, bound, ratio)
	}
}
