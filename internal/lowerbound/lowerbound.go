// Package lowerbound provides analytic estimators for the two lower-bound
// constructions of §4.2, used to cross-check the simulation experiments:
//
//   - Observation 4.3: the 3n+1-node network where each destination d_i
//     hears exactly two intermediates. Any oblivious sender with per-round
//     probability q informs d_i with probability 2q(1-q) per round, forcing
//     Σ_r q_r ≳ log n/4 per pair and therefore ≈ n·log n/2 transmissions in
//     total for success probability 1 − 1/n.
//
//   - Theorem 4.4 (Fig. 2): the chain of stars S_1..S_{log n} (star S_i has
//     2^i leaves) followed by a path. For any time-invariant level
//     distribution there is a star with per-round crossing probability at
//     most 1/ln n, so every node must stay active Ω(log² n) rounds; the path
//     forces a per-round transmission rate Ω(1/(c·log(n/D))), giving
//     Ω(log² n / log(n/D)) transmissions per node at optimal broadcast time.
package lowerbound

import (
	"math"

	"repro/internal/dist"
)

// Obs43PairProb returns the probability that a fixed destination is
// informed in one round when both of its intermediates transmit
// independently with probability q: exactly one of the two must fire.
func Obs43PairProb(q float64) float64 {
	if q < 0 || q > 1 {
		panic("lowerbound: q outside [0,1]")
	}
	return 2 * q * (1 - q)
}

// Obs43SuccessProb returns the probability that ALL n destinations are
// informed within the given number of rounds (intermediates informed at
// round 0, fixed per-round probability q). Destinations are independent.
func Obs43SuccessProb(n int, q float64, rounds int) float64 {
	if n < 1 || rounds < 0 {
		panic("lowerbound: invalid n or rounds")
	}
	pp := Obs43PairProb(q)
	missOne := math.Pow(1-pp, float64(rounds))
	return math.Pow(1-missOne, float64(n))
}

// Obs43RoundsNeeded returns the smallest round count R such that
// Obs43SuccessProb(n, q, R) >= 1 - failure. Solved in closed form:
// (1-(1-pp)^R)^n >= 1-failure  <=>  R >= ln(1-(1-failure)^{1/n}) / ln(1-pp).
func Obs43RoundsNeeded(n int, q, failure float64) int {
	if failure <= 0 || failure >= 1 {
		panic("lowerbound: failure must be in (0,1)")
	}
	pp := Obs43PairProb(q)
	if pp <= 0 {
		panic("lowerbound: q gives zero progress")
	}
	perDest := 1 - math.Pow(1-failure, 1/float64(n))
	r := math.Log(perDest) / math.Log(1-pp)
	return int(math.Ceil(r))
}

// Obs43ExpectedTx returns the expected number of transmissions performed by
// the 2n intermediates over R rounds at rate q (the destinations never relay
// and the source transmits once).
func Obs43ExpectedTx(n int, q float64, rounds int) float64 {
	return 2 * float64(n) * q * float64(rounds)
}

// Obs43EnergyCurvePoint is one (q, rounds, energy) sample of the
// energy-vs-rate curve at a fixed success target.
type Obs43EnergyCurvePoint struct {
	Q      float64
	Rounds int
	Energy float64 // expected intermediate transmissions
}

// Obs43EnergyCurve evaluates, for each q, the rounds needed for success
// probability 1-failure and the resulting expected energy. The observation's
// content is that Energy ≥ ~n·log n/2 for EVERY q: there is no rate at which
// the oblivious sender class beats the bound.
func Obs43EnergyCurve(n int, qs []float64, failure float64) []Obs43EnergyCurvePoint {
	out := make([]Obs43EnergyCurvePoint, 0, len(qs))
	for _, q := range qs {
		r := Obs43RoundsNeeded(n, q, failure)
		out = append(out, Obs43EnergyCurvePoint{Q: q, Rounds: r, Energy: Obs43ExpectedTx(n, q, r)})
	}
	return out
}

// Obs43Bound returns the paper's lower bound n·log₂(n)/2 on the total
// number of transmissions for success probability 1 − 1/n.
func Obs43Bound(n int) float64 {
	return float64(n) * math.Log2(float64(n)) / 2
}

// StarCrossProb returns the per-round probability that a star with m active
// leaves (all informed, all using the shared selection sequence drawn from
// d) informs its centre: exactly one leaf transmits.
//
//	P = Σ_k d(k) · m·2^{-k}·(1-2^{-k})^{m-1}
func StarCrossProb(d *dist.Distribution, m int) float64 {
	if m < 1 {
		panic("lowerbound: star needs m >= 1 leaves")
	}
	total := 0.0
	for k := 1; k <= d.Levels(); k++ {
		q := math.Pow(2, -float64(k))
		total += d.Prob(k) * float64(m) * q * math.Pow(1-q, float64(m-1))
	}
	return total
}

// MinStarCrossProb returns min over stars S_1..S_L (sizes 2^1..2^L) of
// StarCrossProb — the Theorem 4.4 quantity that is at most ~1/ln n for any
// time-invariant distribution (the proof integrates the single-round
// success over all star sizes and gets at most 1/ln 2 in total).
func MinStarCrossProb(d *dist.Distribution, L int) (minProb float64, argStar int) {
	if L < 1 {
		panic("lowerbound: need L >= 1")
	}
	minProb = math.Inf(1)
	for i := 1; i <= L; i++ {
		p := StarCrossProb(d, 1<<uint(i))
		if p < minProb {
			minProb = p
			argStar = i
		}
	}
	return minProb, argStar
}

// SumStarCrossProb returns Σ_i StarCrossProb(d, 2^i) for i = 1..L. The
// Theorem 4.4 proof shows this sum is at most 1/ln 2 ≈ 1.44 for every
// distribution, which forces the minimum to be ≤ 1.44/L ≈ 1/ln n.
func SumStarCrossProb(d *dist.Distribution, L int) float64 {
	s := 0.0
	for i := 1; i <= L; i++ {
		s += StarCrossProb(d, 1<<uint(i))
	}
	return s
}

// Fig2PredictedStarsTime returns the expected number of rounds to traverse
// all L stars: Σ_i (1/crossProb(2^i)) plus one round per centre→leaves hop
// (a centre informs its leaves the first round it transmits, expected
// 1/E[2^{-I}] rounds).
func Fig2PredictedStarsTime(d *dist.Distribution, L int) float64 {
	hop := 1 / d.ExpectedSendProb() // centre alone: transmits w.p. 2^{-I_r}
	t := 0.0
	for i := 1; i <= L; i++ {
		t += hop + 1/StarCrossProb(d, 1<<uint(i))
	}
	return t
}

// Fig2PredictedPathTime returns the expected rounds to advance the message
// along a directed path of the given number of edges: each hop has a single
// active in-neighbour transmitting alone with probability E[2^{-I}].
func Fig2PredictedPathTime(d *dist.Distribution, pathEdges int) float64 {
	return float64(pathEdges) / d.ExpectedSendProb()
}

// Fig2PredictedTxPerActiveNode returns the expected transmissions of a node
// that stays active for window rounds: window·E[2^{-I}].
func Fig2PredictedTxPerActiveNode(d *dist.Distribution, window int) float64 {
	return float64(window) * d.ExpectedSendProb()
}

// Theorem44Bound returns the paper's per-node transmission lower bound
// log₂²n / (max{4c, 8}·log₂(n/D)) for completing broadcast within
// c·D·log(n/D) rounds with probability 1 − 1/n.
func Theorem44Bound(n, D int, c float64) float64 {
	l := math.Log2(float64(n))
	lam := math.Log2(float64(n) / float64(D))
	if lam < 1 {
		lam = 1
	}
	den := math.Max(4*c, 8) * lam
	return l * l / den
}
