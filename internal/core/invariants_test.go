package core

// Property-based tests of the paper's protocol invariants, over random
// graphs, parameters, and seeds.

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestAlgorithm1NeverTransmitsTwiceProperty(t *testing.T) {
	// The headline invariant of Theorem 2.1 under arbitrary (n, p, seed):
	// no node ever transmits twice, including on graphs far outside the
	// theorem's p-range (the schedule enforces it structurally).
	r := rng.New(1)
	f := func(rawN, rawP, rawSeed uint8) bool {
		// Keep d = np > 1 (Algorithm 1's validity domain): n >= 64 and
		// p >= 0.05 give d >= 3.2 at the corner.
		n := int(rawN)%200 + 64
		p := float64(rawP%60)/100 + 0.05
		g := graph.GNPDirected(n, p, r.Split(uint64(rawSeed)))
		a := NewAlgorithm1(p)
		res := radio.RunBroadcast(g, 0, a, rng.New(uint64(rawSeed)+7), radio.Options{MaxRounds: 5000})
		return res.MaxNodeTx <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1PassiveForever(t *testing.T) {
	// Trace-level check: once a node transmits, it never transmits again —
	// the per-node event sequence contains at most one tx.
	g := graph.GNPDirected(512, 0.06, rng.New(2))
	rec := &trace.Recorder{}
	a := NewAlgorithm1(0.06)
	radio.RunBroadcast(g, 0, a, rng.New(3), radio.Options{MaxRounds: 5000, Tracer: rec})
	seen := map[int]int{}
	for _, e := range rec.Events {
		if e.Kind == "tx" {
			seen[e.Node]++
			if seen[e.Node] > 1 {
				t.Fatalf("node %d transmitted %d times", e.Node, seen[e.Node])
			}
		}
	}
}

func TestAlgorithm3WindowInvariantProperty(t *testing.T) {
	// No transmission may occur more than Window rounds after the node's
	// informing round; verified from the raw event trace.
	r := rng.New(4)
	f := func(rawSeed uint8) bool {
		g := graph.GNPDirected(200, 0.08, r.Split(uint64(rawSeed)))
		a := NewAlgorithm3(200, 8, 0.5)
		rec := &trace.Recorder{}
		radio.RunBroadcast(g, 0, a, rng.New(uint64(rawSeed)*31+5),
			radio.Options{MaxRounds: 5000, Tracer: rec})
		informedAt := map[int]int{0: 0}
		for _, e := range rec.Events {
			switch e.Kind {
			case "rx":
				informedAt[e.Node] = e.Round
			case "tx":
				at, ok := informedAt[e.Node]
				if !ok {
					return false // transmitted before being informed
				}
				if e.Round > at+a.Window {
					return false // transmitted after window expiry
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlyInformedNodesTransmitProperty(t *testing.T) {
	// Engine-level sanity for every protocol in this package: a tx event
	// for a node must be preceded by its rx event (or the node is the
	// source). Uses Algorithm 1 and GeneralBroadcast over random inputs.
	r := rng.New(5)
	f := func(rawSeed, which uint8) bool {
		g := graph.GNPDirected(128, 0.1, r.Split(uint64(rawSeed)))
		var proto radio.Broadcaster
		if which%2 == 0 {
			proto = NewAlgorithm1(0.1)
		} else {
			proto = NewAlgorithm3(128, 6, 1)
		}
		rec := &trace.Recorder{}
		radio.RunBroadcast(g, 0, proto, rng.New(uint64(rawSeed)^0x5555),
			radio.Options{MaxRounds: 2000, Tracer: rec})
		informed := map[int]bool{0: true}
		for _, e := range rec.Events {
			switch e.Kind {
			case "rx":
				if informed[e.Node] {
					return false // double informing
				}
				informed[e.Node] = true
			case "tx":
				if !informed[e.Node] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGossipKnowledgeNeverExceedsReachability(t *testing.T) {
	// A node can only ever learn rumors of nodes with a directed path TO it
	// (information flows along edges). Check Algorithm 2's final knowledge
	// against BFS reachability on sparse digraphs with unreachable parts.
	r := rng.New(6)
	f := func(rawSeed uint8) bool {
		n := 48
		g := graph.GNPDirected(n, 0.03, r.Split(uint64(rawSeed))) // often disconnected
		sess := radio.NewGossipSession(n)
		a := NewAlgorithm2(0.1) // d = 4.8 (protocol parameter need not match graph)
		sess.Run(g, a, rng.New(uint64(rawSeed)+99), radio.GossipOptions{MaxRounds: 3000})
		rev := g.Reverse()
		for v := 0; v < n; v++ {
			// Rumors v knows must originate from nodes that reach v, i.e.
			// nodes reachable from v in the reverse graph.
			dist := graph.BFS(rev, graph.NodeID(v))
			for u := 0; u < n; u++ {
				if sess.Knows(graph.NodeID(v), graph.NodeID(u)) && dist[u] < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
