// Package core implements the paper's primary contribution: the three
// energy-efficient randomised communication algorithms of Berenbrink,
// Cooper & Hu.
//
//   - Algorithm1 — broadcasting on random networks G(n,p) in three phases,
//     O(log n) rounds w.h.p. with AT MOST ONE transmission per node (§2).
//   - Algorithm2 — gossiping on G(n,p) in the join model, O(d log n) rounds
//     with O(log n) transmissions per node (§3).
//   - GeneralBroadcast — broadcasting on arbitrary networks with known
//     diameter D using the new selection distribution α, with optimal time
//     O(D log(n/D) + log² n) and only O(log² n / log(n/D)) transmissions
//     per node (§4.1, Algorithm 3); parameterising λ trades time for energy
//     (Theorem 4.2).
//
// All protocols are oblivious: every node runs the same code knowing only n
// and the protocol parameters (p for random networks, D for general ones),
// never the topology. They plug into the round engine in internal/radio.
package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// nodeStatus tracks the §2 node life cycle: a node is uninformed until it
// first receives the message, active while it may still transmit, and
// passive once it will never transmit again.
type nodeStatus uint8

const (
	statusUninformed nodeStatus = iota
	statusActive
	statusPassive // informed, will never transmit
)

// Algorithm1 is the paper's Algorithm 1: an energy-efficient broadcasting
// protocol for the random network G(n,p) in which every node transmits at
// most once.
//
// Phase 1 (rounds 1..T, T = ⌊log n / log d⌋, d = np): every active node
// transmits with probability 1 and becomes passive; nodes receiving the
// message become active. The active set grows by a factor Θ(d) per round
// (Lemma 2.3), reaching Θ(d^T) nodes (Lemma 2.4).
//
// Phase 2 (round T+1, only when p ≤ n^{-2/5}): every active node transmits
// with probability 1/(d^T·p) and becomes passive either way; Θ(n) nodes are
// informed (Lemma 2.5).
//
// Phase 3 (Θ(log n) rounds): active nodes transmit with probability 1/d
// (sparse case) or 1/(d·p) (dense case) and become passive after
// transmitting; nodes informed during Phase 3 never become active. Every
// remaining node is informed w.h.p. (Lemma 2.6).
//
// The paper's proof constants (128 log n / c rounds with c ≈ 16⁻⁴4⁻³·...)
// are union-bound artefacts; Phase3Beta sets the practical Phase-3 length
// of ⌈Phase3Beta · log₂ n⌉ rounds.
type Algorithm1 struct {
	// P is the edge probability of the underlying G(n,p); the paper
	// requires p > δ·log n / n for a sufficiently large constant δ.
	P float64
	// Phase3Beta scales the Phase-3 round budget (default 8 when zero).
	Phase3Beta float64
	// DisablePhase2 is an ABLATION knob (experiment X2): skip Phase 2 even
	// in the sparse regime, moving straight from Phase 1 to Phase 3. The
	// Phase-3 active pool then stays at the Θ(d^T) ≈ 1/p nodes Phase 1
	// produced instead of the Θ(n) Phase 2 guarantees (Lemma 2.5), so the
	// per-node informing capacity collapses — demonstrating why Phase 2
	// exists.
	DisablePhase2 bool

	n           int
	d           float64
	t           int // T = floor(log n / log d)
	sparse      bool
	phase2Round int // == t+1 when sparse, else -1
	phase3From  int // first Phase-3 round
	phase3To    int // last Phase-3 round (inclusive)
	p2prob      float64
	p3prob      float64
	status      []nodeStatus
	active      []graph.NodeID // active nodes in informing order
	txs         radio.TxSet    // this round's transmitters (shared-draw set)
	r           *rng.RNG
}

// NewAlgorithm1 returns the protocol for edge probability p with the default
// Phase-3 budget.
func NewAlgorithm1(p float64) *Algorithm1 { return &Algorithm1{P: p} }

// Name implements radio.Broadcaster.
func (a *Algorithm1) Name() string { return "algorithm1" }

// T returns ⌊log n / log d⌋, the Phase-1 length. Valid after Begin.
func (a *Algorithm1) T() int { return a.t }

// Phase2Round returns the round index of Phase 2, or -1 when p > n^{-2/5}
// and Phase 2 is skipped. Valid after Begin.
func (a *Algorithm1) Phase2Round() int { return a.phase2Round }

// Phase3Rounds returns the inclusive round range of Phase 3. Valid after Begin.
func (a *Algorithm1) Phase3Rounds() (from, to int) { return a.phase3From, a.phase3To }

// PhaseOfRound maps a round index to its phase (1, 2 or 3); 0 for rounds
// after the schedule ends. Valid after Begin.
func (a *Algorithm1) PhaseOfRound(round int) int {
	switch {
	case round >= 1 && round <= a.t:
		return 1
	case round == a.phase2Round:
		return 2
	case round >= a.phase3From && round <= a.phase3To:
		return 3
	default:
		return 0
	}
}

// TotalRounds returns the full schedule length. Valid after Begin.
func (a *Algorithm1) TotalRounds() int { return a.phase3To }

// Begin implements radio.Broadcaster.
func (a *Algorithm1) Begin(n int, src graph.NodeID, r *rng.RNG) {
	if a.P <= 0 || a.P > 1 {
		panic(fmt.Sprintf("core: Algorithm1 needs 0 < p <= 1, got %v", a.P))
	}
	a.n = n
	a.d = float64(n) * a.P
	if a.d <= 1 {
		panic("core: Algorithm1 needs expected degree d = np > 1")
	}
	a.r = r
	if a.d >= float64(n) {
		a.t = 1
	} else {
		a.t = int(math.Floor(math.Log(float64(n)) / math.Log(a.d)))
		if a.t < 1 {
			a.t = 1
		}
	}
	a.sparse = a.P <= math.Pow(float64(n), -2.0/5.0)
	beta := a.Phase3Beta
	if beta == 0 {
		beta = 8
	}
	p3len := int(math.Ceil(beta * math.Log2(float64(n))))
	if p3len < 1 {
		p3len = 1
	}
	switch {
	case a.sparse && !a.DisablePhase2:
		a.phase2Round = a.t + 1
		a.phase3From = a.t + 2
		dT := math.Pow(a.d, float64(a.t))
		a.p2prob = clampProb(1 / (dT * a.P))
		a.p3prob = clampProb(1 / a.d)
	case a.sparse: // ablation X2: sparse regime with Phase 2 removed
		a.phase2Round = -1
		a.phase3From = a.t + 1
		a.p2prob = 0
		a.p3prob = clampProb(1 / a.d)
	default:
		a.phase2Round = -1
		a.phase3From = a.t + 1
		a.p2prob = 0
		a.p3prob = clampProb(1 / (a.d * a.P))
	}
	a.phase3To = a.phase3From + p3len - 1
	a.status = make([]nodeStatus, n)
	a.active = a.active[:0]
	a.txs.Reset(n)
}

// OnInformed implements radio.Broadcaster: nodes informed during Phases 1
// and 2 (and the source at round 0) become active; nodes informed during
// Phase 3 stay silent forever ("no node gets activated in Phase 3").
func (a *Algorithm1) OnInformed(round int, v graph.NodeID) {
	if round < a.phase3From {
		a.status[v] = statusActive
		a.active = append(a.active, v)
	} else {
		a.status[v] = statusPassive
	}
}

// BeginRound implements radio.Broadcaster: the round's transmitter set is
// drawn here, once, by geometric-skip sampling over the active list (the
// shared-draw scheme of radio.BatchBroadcaster). ShouldTransmit and
// AppendTransmitters both read the same set, so the scalar and batch engine
// paths consume identical randomness and select identical transmitters.
func (a *Algorithm1) BeginRound(round int) {
	a.txs.BeginRound()
	switch {
	case round <= a.t:
		// Phase 1: every active node transmits once, then retires.
		a.txs.AddAll(a.active, round)
		a.retireAll()
	case round == a.phase2Round:
		// Phase 2: one shot with probability 1/(d^T p); retire either way.
		a.txs.DrawList(a.r, a.active, a.p2prob, round)
		a.retireAll()
	case round >= a.phase3From && round <= a.phase3To:
		// Phase 3: geometric trickle under the cross-round stream contract
		// (radio.UniformRound): a silent round consumes no randomness, which
		// is what lets the engine skip silent spans in O(1). Transmitters
		// retire; the active list only shrinks on transmitting rounds.
		a.txs.DrawListStream(a.r, a.active, a.p3prob, round)
		if sel := a.txs.Pending(); len(sel) > 0 {
			for _, v := range sel {
				a.status[v] = statusPassive
			}
			keep := a.active[:0]
			for _, v := range a.active {
				if a.status[v] == statusActive {
					keep = append(keep, v)
				}
			}
			a.active = keep
		}
	}
}

// RoundProb implements radio.UniformRound: only Phase-3 rounds are uniform
// Bernoulli rounds (Phase 1 floods, Phase 2 is a one-shot at a different
// probability).
func (a *Algorithm1) RoundProb(round int) (float64, bool) {
	if round >= a.phase3From && round <= a.phase3To {
		return a.p3prob, true
	}
	return 0, false
}

// SkipSilent implements radio.UniformRound. Within Phase 3 the candidate
// list is fixed during silence (actives retire only by transmitting), so
// whole silent rounds are consumed from the stream gap in O(1). The skip
// stops before phase3To because Quiesced first reports true at that round's
// end, which the engine must observe through the normal path.
func (a *Algorithm1) SkipSilent(from, to int) int {
	if from < a.phase3From || from >= a.phase3To {
		return from
	}
	if to > a.phase3To-1 {
		to = a.phase3To - 1
	}
	k := len(a.active)
	if to < from || k == 0 {
		return from
	}
	return from + a.txs.StreamSilentRounds(a.r, k, a.p3prob, to-from+1)
}

func (a *Algorithm1) retireAll() {
	for _, v := range a.active {
		a.status[v] = statusPassive
	}
	a.active = a.active[:0]
}

// ShouldTransmit implements radio.Broadcaster: membership in the round's
// pre-drawn transmitter set.
func (a *Algorithm1) ShouldTransmit(round int, v graph.NodeID) bool {
	return a.txs.Contains(v, round)
}

// AppendTransmitters implements radio.BatchBroadcaster.
func (a *Algorithm1) AppendTransmitters(round int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return a.txs.AppendTo(dst)
}

// Quiesced implements radio.Broadcaster: the protocol is silent once its
// schedule ends or no active node remains.
func (a *Algorithm1) Quiesced(round int) bool {
	return round >= a.phase3To || len(a.active) == 0
}

func clampProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// Algorithm2 is the paper's Algorithm 2: gossiping on G(n,p). Every node
// transmits with probability 1/d in every round (joining all known rumors
// into one message, handled by the radio.RunGossip engine). Theorem 3.2:
// gossip completes within O(d·log n) rounds w.h.p. and every node performs
// O(log n) transmissions. RoundBudget returns the schedule length
// ⌈Gamma·d·log₂ n⌉ to pass as the engine's MaxRounds (the paper uses
// 128·d·log n; Gamma is the practical analogue).
type Algorithm2 struct {
	// P is the edge probability of the underlying G(n,p).
	P float64
	// Gamma scales the round budget (default 8 when zero).
	Gamma float64

	n   int
	d   float64
	q   float64
	r   *rng.RNG
	txs radio.TxSet
}

// NewAlgorithm2 returns the gossip protocol for edge probability p.
func NewAlgorithm2(p float64) *Algorithm2 { return &Algorithm2{P: p} }

// Name implements radio.Gossiper.
func (a *Algorithm2) Name() string { return "algorithm2-gossip" }

// Begin implements radio.Gossiper.
func (a *Algorithm2) Begin(n int, r *rng.RNG) {
	if a.P <= 0 || a.P > 1 {
		panic(fmt.Sprintf("core: Algorithm2 needs 0 < p <= 1, got %v", a.P))
	}
	a.d = float64(n) * a.P
	if a.d <= 1 {
		panic("core: Algorithm2 needs expected degree d = np > 1")
	}
	a.q = clampProb(1 / a.d)
	a.r = r
	a.n = n
	a.txs.Reset(n)
}

// RoundBudget returns the schedule length for an n-node network.
func (a *Algorithm2) RoundBudget(n int) int {
	gamma := a.Gamma
	if gamma == 0 {
		gamma = 8
	}
	d := float64(n) * a.P
	return int(math.Ceil(gamma * d * math.Log2(float64(n))))
}

// BeginRound implements radio.Gossiper: the round's transmitters are drawn
// once by geometric-skip sampling over the node range (every node gossips),
// shared by the scalar and batch decision paths. The draw follows the
// cross-round stream contract so the engine can skip silent rounds.
func (a *Algorithm2) BeginRound(round int) {
	a.txs.BeginRound()
	a.txs.DrawRangeStream(a.r, a.n, a.q, round)
}

// RoundProb implements radio.UniformGossipRound: every round is a
// Bernoulli(1/d) draw over all n nodes.
func (a *Algorithm2) RoundProb(int) (float64, bool) { return a.q, true }

// SkipSilent implements radio.UniformGossipRound.
func (a *Algorithm2) SkipSilent(from, to int) int {
	if to < from {
		return from
	}
	return from + a.txs.StreamSilentRounds(a.r, a.n, a.q, to-from+1)
}

// ShouldTransmit implements radio.Gossiper: membership in the round's
// pre-drawn transmitter set.
func (a *Algorithm2) ShouldTransmit(round int, v graph.NodeID) bool {
	return a.txs.Contains(v, round)
}

// AppendTransmitters implements radio.BatchGossiper.
func (a *Algorithm2) AppendTransmitters(round int, dst []graph.NodeID) []graph.NodeID {
	return a.txs.AppendTo(dst)
}
