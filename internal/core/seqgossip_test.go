package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestSequentialGossipCompletes(t *testing.T) {
	// p chosen with np² = 20 so every one of the n broadcasts has a safe
	// Phase-3 capacity (see the capacity note in core_test.go).
	n := 128
	p := 0.4
	g := graph.GNPDirected(n, p, rng.New(1))
	res := RunSequentialGossip(g, p, rng.New(2), 10000)
	if !res.Success() {
		t.Fatalf("sequential gossip: %d/%d broadcasts completed", res.Completed, res.Sources)
	}
	if res.Rounds < n { // at least one round per source
		t.Fatalf("rounds %d implausibly low", res.Rounds)
	}
}

func TestSequentialGossipSlowerThanAlgorithm2(t *testing.T) {
	// The reason §3 exists: the composition costs O(n log n) rounds where
	// Algorithm 2 costs O(d log n); with d < n the gap follows.
	n := 128
	p := 0.4
	g := graph.GNPDirected(n, p, rng.New(3))
	seq := RunSequentialGossip(g, p, rng.New(4), 10000)
	a := NewAlgorithm2(p)
	direct := radio.RunGossip(g, a, rng.New(5), radio.GossipOptions{
		MaxRounds: a.RoundBudget(n), StopWhenComplete: true,
	})
	if !seq.Success() || !direct.Completed() {
		t.Fatal("one of the protocols failed")
	}
	if seq.Rounds <= direct.CompleteRound {
		t.Fatalf("sequential (%d rounds) should be slower than Algorithm 2 (%d rounds)",
			seq.Rounds, direct.CompleteRound)
	}
}

func TestSequentialGossipEnergyAccounting(t *testing.T) {
	n := 64
	p := 0.3
	g := graph.GNPDirected(n, p, rng.New(6))
	res := RunSequentialGossip(g, p, rng.New(7), 10000)
	// Each broadcast sends at most one transmission per node, so across n
	// broadcasts no node exceeds n and the total is at most n².
	if res.MaxNodeTx > n {
		t.Fatalf("max node tx %d exceeds n", res.MaxNodeTx)
	}
	if res.TotalTx > int64(n)*int64(n) {
		t.Fatalf("total tx %d exceeds n²", res.TotalTx)
	}
	if res.TxPerNode() <= 0 {
		t.Fatal("tx accounting empty")
	}
}

func TestUnknownDiameterCompletes(t *testing.T) {
	g := graph.Grid2D(12, 12)
	n := g.N()
	completed := 0
	for seed := uint64(0); seed < 5; seed++ {
		u := NewUnknownDiameter(n, 2)
		res := radio.RunBroadcast(g, 0, u, rng.New(seed), radio.Options{MaxRounds: 100000})
		if res.Completed() {
			completed++
		}
	}
	if completed < 4 {
		t.Fatalf("unknown-diameter completed %d/5", completed)
	}
}

func TestUnknownDiameterSlowerThanAlgorithm3(t *testing.T) {
	// Knowing D lets Algorithm 3 concentrate its plateau on λ = log(n/D)
	// levels; the uniform guesser needs a log n / λ factor more rounds
	// through layer-bound regions. On a 16x16 grid (λ=4, log n=8) the gap
	// is ≈ 2x.
	g := graph.Grid2D(16, 16)
	n := g.N()
	D := 30
	var known, unknown float64
	const trials = 6
	for seed := uint64(0); seed < trials; seed++ {
		a3 := NewAlgorithm3(n, D, 2)
		r1 := radio.RunBroadcast(g, 0, a3, rng.New(seed), radio.Options{MaxRounds: 200000, StopWhenInformed: true})
		ud := NewUnknownDiameter(n, 2)
		r2 := radio.RunBroadcast(g, 0, ud, rng.New(seed), radio.Options{MaxRounds: 200000, StopWhenInformed: true})
		if !r1.Completed() || !r2.Completed() {
			t.Fatalf("seed %d: incomplete run", seed)
		}
		known += float64(r1.InformedRound)
		unknown += float64(r2.InformedRound)
	}
	if unknown <= known {
		t.Fatalf("unknown-D rounds %v should exceed known-D rounds %v", unknown/trials, known/trials)
	}
}

func TestUnknownDiameterName(t *testing.T) {
	if NewUnknownDiameter(64, 1).Name() != "unknown-diameter" {
		t.Fatal("name")
	}
}
