package core

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// SequentialGossipResult summarises a gossip-by-repeated-broadcast run.
type SequentialGossipResult struct {
	// Rounds is the total rounds across all broadcasts.
	Rounds int
	// Completed counts the broadcasts that informed every node.
	Completed int
	// Sources is the number of broadcasts run (= n).
	Sources int
	// TotalTx is the total transmissions across all broadcasts.
	TotalTx int64
	// MaxNodeTx is the maximum transmissions by any node, summed over all
	// broadcasts it participated in.
	MaxNodeTx int
}

// Success reports whether every broadcast completed, i.e. gossip finished.
func (r *SequentialGossipResult) Success() bool { return r.Completed == r.Sources }

// TxPerNode returns mean transmissions per node across the whole run.
func (r *SequentialGossipResult) TxPerNode() float64 {
	return float64(r.TotalTx) / float64(r.Sources)
}

// RunSequentialGossip is the §3 composition the paper mentions before
// Algorithm 2: "we can obtain a gossiping algorithm with running time
// O(n log n) by combining the framework proposed in [8] and the broadcasting
// algorithm in Section 2". Each node broadcasts its rumor in turn with
// Algorithm 1 (O(log n) rounds, ≤ 1 transmission per node per broadcast),
// for a total of O(n log n) rounds and O(log n) transmissions per node per
// rumor — strictly worse than Algorithm 2's O(d log n) rounds when d ≪ n,
// which is exactly why §3 develops the specialised algorithm.
//
// Scheduling is genuinely sequential (broadcast i+1 starts after broadcast
// i's schedule ends), which a deployment would realise with a coarse
// time-division schedule derived from n.
func RunSequentialGossip(g *graph.Digraph, p float64, protoRNG *rng.RNG, maxRoundsPerBroadcast int) *SequentialGossipResult {
	n := g.N()
	res := &SequentialGossipResult{Sources: n}
	perNode := make([]int64, n)
	for src := 0; src < n; src++ {
		a := NewAlgorithm1(p)
		r := radio.RunBroadcast(g, graph.NodeID(src), a, protoRNG.Split(uint64(src)),
			radio.Options{MaxRounds: maxRoundsPerBroadcast})
		res.Rounds += r.Rounds
		res.TotalTx += r.TotalTx
		if r.Completed() {
			res.Completed++
		}
		for v, c := range r.PerNodeTx {
			perNode[v] += int64(c)
		}
	}
	for _, c := range perNode {
		if int(c) > res.MaxNodeTx {
			res.MaxNodeTx = int(c)
		}
	}
	return res
}

// NewUnknownDiameter builds the unknown-diameter fallback: without D the
// sender cannot centre α's plateau on λ = log(n/D), so it guesses every
// neighbourhood size equally often (the uniform level distribution over
// 1..log n). The cost is TIME: each layer that α crosses in O(λ) expected
// rounds now needs O(log n), so broadcasting degrades to O(D·log n + log² n)
// — slower by a factor log n / log(n/D) on the layer-bound regime. (Its
// per-round transmission rate is ~1/log n ≤ α's Θ(1/λ), so the energy is
// comparable or lower; what the diameter buys in Theorem 4.1 is optimal
// speed at the energy floor of Theorem 4.4.)
func NewUnknownDiameter(n int, beta float64) *GeneralBroadcast {
	if beta == 0 {
		beta = 1
	}
	return &GeneralBroadcast{
		Label:  "unknown-diameter",
		Dist:   dist.NewUniformLevels(n),
		Window: windowRounds(n, beta),
	}
}
