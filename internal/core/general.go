package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// GeneralBroadcast is the paper's Algorithm 3: an energy-efficient oblivious
// broadcasting protocol for arbitrary networks with known diameter D.
//
// A shared random selection sequence I = <I_1, I_2, ...> is drawn from the
// level distribution (α in the paper, Fig. 1 left); in round r every active
// node transmits with probability 2^{-I_r}. A node stays active for Window
// rounds after being informed (the paper's β·log² n), then goes passive
// forever.
//
// With Dist = α(λ = log(n/D)) and Window = Θ(log² n), broadcasting finishes
// in O(D·log(n/D) + log² n) rounds w.h.p. while each node transmits only
// O(log² n / λ) times in expectation (Theorem 4.1); a larger λ trades time
// O(Dλ + log² n) for energy O(log² n / λ) (Theorem 4.2).
//
// The Czumaj–Rytter baseline is this same skeleton with Dist = α′ and the
// longer window Θ(λ·log² n) that α′'s thinner level coverage requires — its
// expected energy is Θ(log² n) per node (§4 of the paper, and
// baseline.NewCzumajRytter).
type GeneralBroadcast struct {
	// Label names the protocol variant in results.
	Label string
	// Dist is the level distribution generating the selection sequence.
	Dist *dist.Distribution
	// Window is the number of rounds a node stays active after being
	// informed (the paper's β·log² n).
	Window int

	informedAt []int
	r          *rng.RNG
	seq        *rng.RNG
	curProb    float64
	informedN  int
	retiredN   int
	queue      radio.WindowQueue // informed, window not yet expired
	txs        radio.TxSet       // this round's transmitters (shared-draw set)
}

// NewAlgorithm3 builds the paper's configuration: α with λ = log₂(n/D) and
// window ⌈beta·log₂² n⌉ (beta = 1 when zero). n is the network size and D
// the known diameter.
func NewAlgorithm3(n, D int, beta float64) *GeneralBroadcast {
	if beta == 0 {
		beta = 1
	}
	return &GeneralBroadcast{
		Label:  "algorithm3",
		Dist:   dist.NewAlphaForDiameter(n, D),
		Window: windowRounds(n, beta),
	}
}

// NewTradeoff builds the Theorem 4.2 variant: α with an explicit λ in
// [log(n/D), log n], trading time O(Dλ + log² n) for energy O(log² n / λ).
func NewTradeoff(n, lambda int, beta float64) *GeneralBroadcast {
	if beta == 0 {
		beta = 1
	}
	return &GeneralBroadcast{
		Label:  fmt.Sprintf("tradeoff(lambda=%d)", lambda),
		Dist:   dist.NewAlpha(n, lambda),
		Window: windowRounds(n, beta),
	}
}

// windowRounds returns ⌈beta · log₂² n⌉.
func windowRounds(n int, beta float64) int {
	l := math.Log2(float64(n))
	w := int(math.Ceil(beta * l * l))
	if w < 1 {
		w = 1
	}
	return w
}

// WindowRounds exposes the β·log² n window formula for harnesses and
// baselines.
func WindowRounds(n int, beta float64) int { return windowRounds(n, beta) }

// Name implements radio.Broadcaster.
func (g *GeneralBroadcast) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "general-broadcast"
}

// Begin implements radio.Broadcaster.
func (g *GeneralBroadcast) Begin(n int, src graph.NodeID, r *rng.RNG) {
	if g.Dist == nil {
		panic("core: GeneralBroadcast needs a level distribution")
	}
	if g.Window < 1 {
		panic("core: GeneralBroadcast needs Window >= 1")
	}
	g.informedAt = make([]int, n)
	for i := range g.informedAt {
		g.informedAt[i] = -1
	}
	g.queue.Reset()
	g.txs.Reset(n)
	g.r = r
	// The shared selection sequence is common randomness: all nodes know it
	// (it is part of the algorithm description, like Czumaj–Rytter's
	// selection sequences). Derive it from the protocol RNG so each run gets
	// a fresh sequence deterministically.
	g.seq = r.Split(0xa15e1ec7)
	g.informedN = 0
	g.retiredN = 0
	g.curProb = 0
}

// BeginRound implements radio.Broadcaster: draw I_r, set the round's shared
// transmission probability 2^{-I_r}, retire the nodes whose activity window
// expired, and draw the round's transmitter set by geometric-skip sampling
// over the still-active queue (the shared-draw scheme of
// radio.BatchBroadcaster — ShouldTransmit and AppendTransmitters both read
// the same set).
//
// The active list is a queue because informing times are non-decreasing in
// informing order, so window expiry always happens at the head.
func (g *GeneralBroadcast) BeginRound(round int) {
	k := g.Dist.Sample(g.seq)
	g.curProb = math.Pow(2, -float64(k))
	g.retiredN += g.queue.Expire(g.informedAt, g.Window, round)
	g.txs.BeginRound()
	g.txs.DrawList(g.r, g.queue.Live(), g.curProb, round)
}

// OnInformed implements radio.Broadcaster.
func (g *GeneralBroadcast) OnInformed(round int, v graph.NodeID) {
	g.informedAt[v] = round
	g.informedN++
	g.queue.Push(v)
}

// ShouldTransmit implements radio.Broadcaster: membership in the round's
// pre-drawn transmitter set.
func (g *GeneralBroadcast) ShouldTransmit(round int, v graph.NodeID) bool {
	return g.txs.Contains(v, round)
}

// AppendTransmitters implements radio.BatchBroadcaster.
func (g *GeneralBroadcast) AppendTransmitters(round int, _ []graph.NodeID, dst []graph.NodeID) []graph.NodeID {
	return g.txs.AppendTo(dst)
}

// Quiesced implements radio.Broadcaster: true once every informed node's
// activity window has expired.
func (g *GeneralBroadcast) Quiesced(round int) bool {
	return g.retiredN == g.informedN
}
