package core

// Batch-vs-scalar decision equivalence for every protocol in this package
// that implements the radio fast-path interfaces: under the shared-draw
// scheme the engine must produce bit-identical Results whichever decision
// path it takes, for every seed.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// assertBatchScalarEquivalent runs the protocol factory through the engine
// on both decision paths with identical seeds and compares full Results.
func assertBatchScalarEquivalent(t *testing.T, name string, g *graph.Digraph,
	mk func() radio.Broadcaster, seed uint64, opt radio.Options) {
	t.Helper()
	if _, ok := mk().(radio.BatchBroadcaster); !ok {
		t.Fatalf("%s does not implement radio.BatchBroadcaster", name)
	}
	opt.RecordHistory = true
	batch := radio.RunBroadcast(g, 0, mk(), rng.New(seed), opt)
	radio.SetEngineOverrides(true, false)
	scalar := radio.RunBroadcast(g, 0, mk(), rng.New(seed), opt)
	radio.SetEngineOverrides(false, false)

	if batch.Rounds != scalar.Rounds || batch.InformedRound != scalar.InformedRound ||
		batch.Informed != scalar.Informed || batch.TotalTx != scalar.TotalTx ||
		batch.MaxNodeTx != scalar.MaxNodeTx || batch.Collisions != scalar.Collisions {
		t.Fatalf("%s seed=%d: batch/scalar results diverge\nbatch  %+v\nscalar %+v",
			name, seed, batch, scalar)
	}
	for i := range batch.PerNodeTx {
		if batch.PerNodeTx[i] != scalar.PerNodeTx[i] {
			t.Fatalf("%s seed=%d: per-node tx differ at node %d", name, seed, i)
		}
	}
	for i := range batch.History {
		if batch.History[i] != scalar.History[i] {
			t.Fatalf("%s seed=%d: history differs at round %d: %+v vs %+v",
				name, seed, i, batch.History[i], scalar.History[i])
		}
	}
}

func TestCoreBatchDecisionEquivalence(t *testing.T) {
	sparse := graph.GNPDirected(1024, 0.02, rng.New(1)) // p <= n^{-2/5}
	dense := graph.GNPDirected(512, 0.2, rng.New(2))
	grid := graph.Grid2D(16, 16)
	for _, tc := range []struct {
		name string
		g    *graph.Digraph
		mk   func() radio.Broadcaster
	}{
		{"algorithm1-sparse", sparse, func() radio.Broadcaster { return NewAlgorithm1(0.02) }},
		{"algorithm1-dense", dense, func() radio.Broadcaster { return NewAlgorithm1(0.2) }},
		{"algorithm1-ablated", sparse, func() radio.Broadcaster {
			a := NewAlgorithm1(0.02)
			a.DisablePhase2 = true
			return a
		}},
		{"algorithm3", grid, func() radio.Broadcaster { return NewAlgorithm3(256, 30, 1) }},
		{"tradeoff", grid, func() radio.Broadcaster { return NewTradeoff(256, 5, 1) }},
		{"unknown-diameter", grid, func() radio.Broadcaster { return NewUnknownDiameter(256, 1) }},
	} {
		for seed := uint64(0); seed < 4; seed++ {
			assertBatchScalarEquivalent(t, tc.name, tc.g, tc.mk, seed,
				radio.Options{MaxRounds: 20000})
		}
	}
}

func TestAlgorithm2BatchDecisionEquivalence(t *testing.T) {
	g := graph.GNPDirected(192, 0.08, rng.New(3))
	a := NewAlgorithm2(0.08)
	if _, ok := interface{}(a).(radio.BatchGossiper); !ok {
		t.Fatal("Algorithm2 does not implement radio.BatchGossiper")
	}
	opt := radio.GossipOptions{MaxRounds: a.RoundBudget(192), StopWhenComplete: true}
	for seed := uint64(0); seed < 3; seed++ {
		batch := radio.RunGossip(g, NewAlgorithm2(0.08), rng.New(seed), opt)
		radio.SetEngineOverrides(true, false)
		scalar := radio.RunGossip(g, NewAlgorithm2(0.08), rng.New(seed), opt)
		radio.SetEngineOverrides(false, false)
		if batch.Rounds != scalar.Rounds || batch.CompleteRound != scalar.CompleteRound ||
			batch.TotalTx != scalar.TotalTx || batch.KnownPairs != scalar.KnownPairs {
			t.Fatalf("seed=%d: algorithm2 batch/scalar diverge", seed)
		}
	}
}

func TestBatchPathConsumesRNGDeterministically(t *testing.T) {
	// Two identical batch runs must leave the protocol RNG in the same
	// state: the engine result AND the downstream stream position agree.
	g := graph.GNPDirected(1024, 0.02, rng.New(4))
	for seed := uint64(0); seed < 3; seed++ {
		r1, r2 := rng.New(seed), rng.New(seed)
		a := radio.RunBroadcast(g, 0, NewAlgorithm1(0.02), r1, radio.Options{MaxRounds: 20000})
		b := radio.RunBroadcast(g, 0, NewAlgorithm1(0.02), r2, radio.Options{MaxRounds: 20000})
		if a.TotalTx != b.TotalTx || a.Rounds != b.Rounds || a.Informed != b.Informed {
			t.Fatalf("seed=%d: repeated batch runs differ", seed)
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("seed=%d: RNG stream positions differ after run", seed)
		}
	}
}
