package core

// Batch-vs-scalar decision equivalence for every protocol in this package
// that implements the radio fast-path interfaces: under the shared-draw
// scheme the engine must produce bit-identical Results whichever decision
// path it takes, for every seed.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// engineForcings is the full override matrix the protocol-level equivalence
// tests pin: decision path × delivery kernel × skip. Collisions are
// excluded from the comparison (the pull kernel counts uninformed-side
// collisions only — see the radio.Result.Collisions contract); everything
// else must be bit-identical.
var engineForcings = []struct {
	name string
	o    radio.EngineOverrides
}{
	{"scalar", radio.EngineOverrides{ScalarDecisions: true}},
	{"push", radio.EngineOverrides{Kernel: radio.KernelPush}},
	{"pull", radio.EngineOverrides{Kernel: radio.KernelPull}},
	{"parallel", radio.EngineOverrides{Kernel: radio.KernelParallel}},
	{"dense", radio.EngineOverrides{Kernel: radio.KernelDense}},
	{"noskip", radio.EngineOverrides{DisableSkip: true}},
	{"scalar-pull", radio.EngineOverrides{ScalarDecisions: true, Kernel: radio.KernelPull}},
}

// assertBatchScalarEquivalent runs the protocol factory through the engine
// under every forcing with identical seeds and compares Results: first with
// per-round history (which pins the informed trajectory and, for the
// transmitter-side kernels, exact collision counts), then without history
// so the cross-round skip path participates.
func assertBatchScalarEquivalent(t *testing.T, name string, g *graph.Digraph,
	mk func() radio.Broadcaster, seed uint64, opt radio.Options) {
	t.Helper()
	defer radio.SetEngineOverrides(radio.EngineOverrides{})
	if _, ok := mk().(radio.BatchBroadcaster); !ok {
		t.Fatalf("%s does not implement radio.BatchBroadcaster", name)
	}
	compare := func(label string, batch, alt *radio.Result, trajectory bool) {
		t.Helper()
		if batch.Rounds != alt.Rounds || batch.InformedRound != alt.InformedRound ||
			batch.Informed != alt.Informed || batch.TotalTx != alt.TotalTx ||
			batch.MaxNodeTx != alt.MaxNodeTx {
			t.Fatalf("%s seed=%d [%s]: results diverge\nbase %+v\nalt  %+v",
				name, seed, label, batch, alt)
		}
		for i := range batch.PerNodeTx {
			if batch.PerNodeTx[i] != alt.PerNodeTx[i] {
				t.Fatalf("%s seed=%d [%s]: per-node tx differ at node %d", name, seed, label, i)
			}
		}
		if !trajectory {
			return
		}
		for i := range batch.History {
			w, h := batch.History[i], alt.History[i]
			if w.Round != h.Round || w.Transmitters != h.Transmitters ||
				w.NewlyInformed != h.NewlyInformed || w.Informed != h.Informed {
				t.Fatalf("%s seed=%d [%s]: history differs at round %d: %+v vs %+v",
					name, seed, label, i, w, h)
			}
		}
	}
	for _, hist := range []bool{true, false} {
		o := opt
		o.RecordHistory = hist
		radio.SetEngineOverrides(radio.EngineOverrides{})
		base := radio.RunBroadcast(g, 0, mk(), rng.New(seed), o)
		for _, f := range engineForcings {
			radio.SetEngineOverrides(f.o)
			alt := radio.RunBroadcast(g, 0, mk(), rng.New(seed), o)
			compare(f.name, base, alt, hist)
		}
		radio.SetEngineOverrides(radio.EngineOverrides{})
	}
}

func TestCoreBatchDecisionEquivalence(t *testing.T) {
	sparse := graph.GNPDirected(1024, 0.02, rng.New(1)) // p <= n^{-2/5}
	dense := graph.GNPDirected(512, 0.2, rng.New(2))
	grid := graph.Grid2D(16, 16)
	udg := graph.RGG(512, 2*graph.ConnectivityRadius(512), true, rng.New(9))
	for _, tc := range []struct {
		name string
		g    *graph.Digraph
		mk   func() radio.Broadcaster
	}{
		{"algorithm1-sparse", sparse, func() radio.Broadcaster { return NewAlgorithm1(0.02) }},
		{"algorithm1-dense", dense, func() radio.Broadcaster { return NewAlgorithm1(0.2) }},
		{"algorithm1-ablated", sparse, func() radio.Broadcaster {
			a := NewAlgorithm1(0.02)
			a.DisablePhase2 = true
			return a
		}},
		{"algorithm1-udg", udg, func() radio.Broadcaster { return NewAlgorithm1(0.03) }},
		{"algorithm3", grid, func() radio.Broadcaster { return NewAlgorithm3(256, 30, 1) }},
		{"algorithm3-udg", udg, func() radio.Broadcaster { return NewAlgorithm3(512, 20, 1) }},
		{"tradeoff", grid, func() radio.Broadcaster { return NewTradeoff(256, 5, 1) }},
		{"unknown-diameter", grid, func() radio.Broadcaster { return NewUnknownDiameter(256, 1) }},
	} {
		for seed := uint64(0); seed < 4; seed++ {
			assertBatchScalarEquivalent(t, tc.name, tc.g, tc.mk, seed,
				radio.Options{MaxRounds: 20000})
		}
	}
}

func TestAlgorithm2BatchDecisionEquivalence(t *testing.T) {
	g := graph.GNPDirected(192, 0.08, rng.New(3))
	a := NewAlgorithm2(0.08)
	if _, ok := interface{}(a).(radio.BatchGossiper); !ok {
		t.Fatal("Algorithm2 does not implement radio.BatchGossiper")
	}
	opt := radio.GossipOptions{MaxRounds: a.RoundBudget(192), StopWhenComplete: true}
	for seed := uint64(0); seed < 3; seed++ {
		batch := radio.RunGossip(g, NewAlgorithm2(0.08), rng.New(seed), opt)
		radio.SetEngineOverrides(radio.EngineOverrides{ScalarDecisions: true})
		scalar := radio.RunGossip(g, NewAlgorithm2(0.08), rng.New(seed), opt)
		radio.SetEngineOverrides(radio.EngineOverrides{})
		if batch.Rounds != scalar.Rounds || batch.CompleteRound != scalar.CompleteRound ||
			batch.TotalTx != scalar.TotalTx || batch.KnownPairs != scalar.KnownPairs {
			t.Fatalf("seed=%d: algorithm2 batch/scalar diverge", seed)
		}
	}
}

func TestBatchPathConsumesRNGDeterministically(t *testing.T) {
	// Two identical batch runs must leave the protocol RNG in the same
	// state: the engine result AND the downstream stream position agree.
	g := graph.GNPDirected(1024, 0.02, rng.New(4))
	for seed := uint64(0); seed < 3; seed++ {
		r1, r2 := rng.New(seed), rng.New(seed)
		a := radio.RunBroadcast(g, 0, NewAlgorithm1(0.02), r1, radio.Options{MaxRounds: 20000})
		b := radio.RunBroadcast(g, 0, NewAlgorithm1(0.02), r2, radio.Options{MaxRounds: 20000})
		if a.TotalTx != b.TotalTx || a.Rounds != b.Rounds || a.Informed != b.Informed {
			t.Fatalf("seed=%d: repeated batch runs differ", seed)
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("seed=%d: RNG stream positions differ after run", seed)
		}
	}
}

// TestAlgorithm1RoundProbSchedule pins the UniformRound introspection the
// engine's skip gate consults: exactly the Phase-3 rounds are uniform, at
// the Phase-3 probability.
func TestAlgorithm1RoundProbSchedule(t *testing.T) {
	a := NewAlgorithm1(0.02)
	a.Begin(1024, 0, rng.New(1))
	from, to := a.Phase3Rounds()
	for round := 1; round <= to+3; round++ {
		q, ok := a.RoundProb(round)
		wantOK := round >= from && round <= to
		if ok != wantOK {
			t.Fatalf("round %d (phase %d): RoundProb ok=%v, want %v", round, a.PhaseOfRound(round), ok, wantOK)
		}
		if ok && q != a.p3prob {
			t.Fatalf("round %d: RoundProb q=%v, want phase-3 prob %v", round, q, a.p3prob)
		}
	}
}

// TestAlgorithm2RoundProbSchedule: every gossip round is uniform at 1/d.
func TestAlgorithm2RoundProbSchedule(t *testing.T) {
	a := NewAlgorithm2(0.1)
	a.Begin(256, rng.New(1))
	for _, round := range []int{1, 7, 5000} {
		q, ok := a.RoundProb(round)
		if !ok || q != a.q {
			t.Fatalf("round %d: RoundProb = (%v, %v), want (%v, true)", round, q, ok, a.q)
		}
	}
}
