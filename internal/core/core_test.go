package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// runA1 runs Algorithm 1 on a fresh G(n,p) and returns the result.
func runA1(t *testing.T, n int, p float64, seed uint64, opts radio.Options) (*Algorithm1, *radio.Result) {
	t.Helper()
	g := graph.GNPDirected(n, p, rng.New(seed))
	a := NewAlgorithm1(p)
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10000
	}
	res := radio.RunBroadcast(g, 0, a, rng.New(seed^0xdead), opts)
	return a, res
}

func TestAlgorithm1PhaseLayoutSparse(t *testing.T) {
	n := 1024
	p := 0.02 // d ~ 20.5, below n^{-2/5} = 0.0625 -> sparse path
	a := NewAlgorithm1(p)
	a.Begin(n, 0, rng.New(1))
	if !a.sparse {
		t.Fatal("expected sparse regime")
	}
	wantT := int(math.Floor(math.Log(float64(n)) / math.Log(float64(n)*p)))
	if a.T() != wantT {
		t.Fatalf("T = %d, want %d", a.T(), wantT)
	}
	if a.Phase2Round() != a.T()+1 {
		t.Fatalf("phase 2 at %d", a.Phase2Round())
	}
	from, to := a.Phase3Rounds()
	if from != a.T()+2 || to < from {
		t.Fatalf("phase 3 range [%d,%d]", from, to)
	}
	if a.PhaseOfRound(1) != 1 || a.PhaseOfRound(a.T()+1) != 2 || a.PhaseOfRound(from) != 3 || a.PhaseOfRound(to+1) != 0 {
		t.Fatal("PhaseOfRound mapping wrong")
	}
}

func TestAlgorithm1PhaseLayoutDense(t *testing.T) {
	n := 1024
	p := 0.2 // above n^{-2/5} -> dense path, no Phase 2
	a := NewAlgorithm1(p)
	a.Begin(n, 0, rng.New(1))
	if a.sparse {
		t.Fatal("expected dense regime")
	}
	if a.Phase2Round() != -1 {
		t.Fatalf("dense case has phase 2 at %d", a.Phase2Round())
	}
	from, _ := a.Phase3Rounds()
	if from != a.T()+1 {
		t.Fatalf("phase 3 starts at %d, want %d", from, a.T()+1)
	}
	// Dense phase-3 probability is 1/(d·p).
	want := 1 / (float64(n) * p * p)
	if math.Abs(a.p3prob-want) > 1e-12 {
		t.Fatalf("p3prob %v, want %v", a.p3prob, want)
	}
}

func TestAlgorithm1AtMostOneTransmissionPerNode(t *testing.T) {
	// The paper's headline invariant: every node transmits at most once,
	// across regimes and seeds.
	for _, tc := range []struct {
		n int
		p float64
	}{
		{512, 0.03}, {512, 0.2}, {1024, 0.02}, {256, 0.5}, {128, 1.0},
	} {
		for seed := uint64(0); seed < 5; seed++ {
			_, res := runA1(t, tc.n, tc.p, seed, radio.Options{})
			if res.MaxNodeTx > 1 {
				t.Fatalf("n=%d p=%v seed=%d: node transmitted %d times",
					tc.n, tc.p, seed, res.MaxNodeTx)
			}
		}
	}
}

func TestAlgorithm1CompletesOnRandomGraphs(t *testing.T) {
	// Above the connectivity threshold Algorithm 1 should essentially always
	// finish; allow a small number of unlucky trials at these small n.
	// Parameter note: the paper requires p > δ·log n/n for a sufficiently
	// large δ. At simulation scale the binding constraint is the Phase-3
	// informing capacity A₀(v) ≈ |U_phase3|·p ≳ 1.5·ln n (sparse case) or
	// np² ≳ 1.5·ln n (dense case); the points below satisfy it with margin.
	cases := []struct {
		n int
		p float64
	}{
		{512, 0.06},   // sparse regime (δ ≈ 5, A₀ ≈ 11)
		{1024, 0.054}, // sparse regime (δ ≈ 8, A₀ ≈ 20)
		{512, 0.15},   // dense regime (np² ≈ 11.5)
		{1024, 0.12},  // dense regime (np² ≈ 14.7)
	}
	for _, tc := range cases {
		completed, informedFrac := 0, 1.0
		const trials = 10
		for seed := uint64(0); seed < trials; seed++ {
			_, res := runA1(t, tc.n, tc.p, seed, radio.Options{})
			if res.Completed() {
				completed++
			}
			f := float64(res.Informed) / float64(tc.n)
			if f < informedFrac {
				informedFrac = f
			}
		}
		if completed < 7 {
			t.Fatalf("n=%d p=%v: only %d/%d trials completed", tc.n, tc.p, completed, trials)
		}
		if informedFrac < 0.95 {
			t.Fatalf("n=%d p=%v: worst informed fraction %v", tc.n, tc.p, informedFrac)
		}
	}
}

func TestAlgorithm1RoundsLogarithmic(t *testing.T) {
	// Completion round should scale like log n, far below n. Operating
	// points chosen per the capacity note in
	// TestAlgorithm1CompletesOnRandomGraphs.
	for _, tc := range []struct {
		n int
		p float64
	}{
		{256, 0.25}, {1024, 0.054}, {4096, 0.0163},
	} {
		_, res := runA1(t, tc.n, tc.p, 99, radio.Options{})
		if !res.Completed() {
			t.Fatalf("n=%d p=%v did not complete (informed %d)", tc.n, tc.p, res.Informed)
		}
		limit := 12 * int(math.Ceil(math.Log2(float64(tc.n))))
		if res.InformedRound > limit {
			t.Fatalf("n=%d informed at round %d > %d", tc.n, res.InformedRound, limit)
		}
	}
}

func TestAlgorithm1TotalTransmissionsScaling(t *testing.T) {
	// Expected total transmissions are O(log n / p): at most the informed
	// count (each node sends <= 1) and concentrated near Θ(1/p)·log-ish.
	n := 2048
	p := 8 * math.Log(float64(n)) / float64(n)
	_, res := runA1(t, n, p, 7, radio.Options{})
	if !res.Completed() {
		t.Fatal("did not complete")
	}
	bound := 4 * math.Log(float64(n)) / p // generous constant
	if float64(res.TotalTx) > bound {
		t.Fatalf("total tx %d exceeds O(log n / p) bound %v", res.TotalTx, bound)
	}
	if res.TotalTx < int64(1/p) {
		t.Fatalf("total tx %d suspiciously small (1/p = %v)", res.TotalTx, 1/p)
	}
}

func TestAlgorithm1QuiescesByScheduleEnd(t *testing.T) {
	a, res := runA1(t, 512, 0.05, 3, radio.Options{})
	if res.Rounds > a.TotalRounds() {
		t.Fatalf("ran %d rounds past schedule end %d", res.Rounds, a.TotalRounds())
	}
}

func TestAlgorithm1Phase1GrowthFactor(t *testing.T) {
	// Lemma 2.3: |U_{t+1}| ≈ d·|U_t| during Phase 1 while |U_t| << 1/p.
	// With T >= 2 we can observe at least the first ratio. Use a sparse
	// graph with moderate d so T = floor(log n/log d) >= 2.
	n := 1 << 14
	d := 16.0
	p := d / float64(n)
	g := graph.GNPDirected(n, p, rng.New(21))
	a := NewAlgorithm1(p)
	res := radio.RunBroadcast(g, 0, a, rng.New(22), radio.Options{MaxRounds: 10000, RecordHistory: true})
	if a.T() < 2 {
		t.Fatalf("want T >= 2, got %d", a.T())
	}
	u2 := res.History[1].NewlyInformed // |U_2| = newly informed in round 1
	if float64(u2) < d/4 || float64(u2) > 4*d {
		t.Fatalf("|U_2| = %d, want ≈ d = %v", u2, d)
	}
	u3 := res.History[2].NewlyInformed
	ratio := float64(u3) / float64(u2)
	if ratio < d/16 || ratio > 2*d {
		t.Fatalf("phase-1 growth ratio %v outside (d/16, 2d) with d=%v", ratio, d)
	}
}

func TestAlgorithm1PanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"p zero":    func() { NewAlgorithm1(0).Begin(100, 0, rng.New(1)) },
		"p above 1": func() { NewAlgorithm1(1.5).Begin(100, 0, rng.New(1)) },
		"d below 1": func() { NewAlgorithm1(0.001).Begin(100, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAlgorithm1SourceOnlyCase(t *testing.T) {
	// Complete graph (p=1): source informs everyone in round 1.
	_, res := runA1(t, 64, 1.0, 5, radio.Options{})
	if !res.Completed() || res.InformedRound != 1 {
		t.Fatalf("p=1: %+v", res)
	}
}

// --- Algorithm 2 ---

func TestAlgorithm2CompletesWithinBudget(t *testing.T) {
	n := 256
	p := 8 * math.Log(float64(n)) / float64(n)
	g := graph.GNPDirected(n, p, rng.New(31))
	a := NewAlgorithm2(p)
	res := radio.RunGossip(g, a, rng.New(32), radio.GossipOptions{
		MaxRounds: a.RoundBudget(n), StopWhenComplete: true,
	})
	if !res.Completed() {
		t.Fatalf("gossip incomplete after %d rounds: %d/%d pairs",
			res.Rounds, res.KnownPairs, n*n)
	}
}

func TestAlgorithm2TransmissionsLogarithmic(t *testing.T) {
	// Theorem 3.2: O(log n) transmissions per node. Over the completed run
	// (stopping at completion), per-node tx ≈ rounds/d ≈ O(log n).
	n := 256
	p := 8 * math.Log(float64(n)) / float64(n)
	g := graph.GNPDirected(n, p, rng.New(33))
	a := NewAlgorithm2(p)
	res := radio.RunGossip(g, a, rng.New(34), radio.GossipOptions{
		MaxRounds: a.RoundBudget(n), StopWhenComplete: true,
	})
	if !res.Completed() {
		t.Fatal("incomplete")
	}
	limit := 64 * math.Log2(float64(n))
	if res.TxPerNode() > limit {
		t.Fatalf("tx/node %v exceeds O(log n) envelope %v", res.TxPerNode(), limit)
	}
}

func TestAlgorithm2RoundBudget(t *testing.T) {
	a := NewAlgorithm2(0.1)
	n := 1000
	want := int(math.Ceil(8 * 100 * math.Log2(1000)))
	if got := a.RoundBudget(n); got != want {
		t.Fatalf("RoundBudget = %d, want %d", got, want)
	}
	a.Gamma = 2
	want2 := int(math.Ceil(2 * 100 * math.Log2(1000)))
	if got := a.RoundBudget(n); got != want2 {
		t.Fatalf("RoundBudget gamma=2 = %d, want %d", got, want2)
	}
}

func TestAlgorithm2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for d <= 1")
		}
	}()
	NewAlgorithm2(0.001).Begin(100, rng.New(1))
}

// --- GeneralBroadcast (Algorithm 3) ---

func TestAlgorithm3CompletesOnGrid(t *testing.T) {
	g := graph.Grid2D(16, 16)
	n := g.N()
	D := 30
	completed := 0
	const trials = 8
	for seed := uint64(0); seed < trials; seed++ {
		a := NewAlgorithm3(n, D, 2)
		res := radio.RunBroadcast(g, 0, a, rng.New(seed), radio.Options{MaxRounds: 20000})
		if res.Completed() {
			completed++
		}
	}
	if completed < 6 {
		t.Fatalf("grid completion %d/%d", completed, trials)
	}
}

func TestAlgorithm3CompletesOnPath(t *testing.T) {
	g := graph.Path(128)
	a := NewAlgorithm3(128, 127, 2)
	res := radio.RunBroadcast(g, 0, a, rng.New(4), radio.Options{MaxRounds: 50000})
	if !res.Completed() {
		t.Fatalf("path: informed %d/%d", res.Informed, g.N())
	}
}

func TestAlgorithm3CompletesOnLayered(t *testing.T) {
	r := rng.New(5)
	sizes := []int{1, 50, 200, 50, 10, 200, 1}
	g := graph.LayeredRandom(sizes, 0.2, r)
	a := NewAlgorithm3(g.N(), len(sizes)-1, 2)
	res := radio.RunBroadcast(g, 0, a, rng.New(6), radio.Options{MaxRounds: 30000})
	if !res.Completed() {
		t.Fatalf("layered: informed %d/%d", res.Informed, g.N())
	}
}

func TestAlgorithm3WindowRespected(t *testing.T) {
	// No node may transmit after its window expires: with Window=W and the
	// engine's per-node accounting, max transmissions <= W trivially; the
	// sharper check is that the run quiesces no later than last-informed
	// round + W + 1.
	g := graph.Grid2D(12, 12)
	a := NewAlgorithm3(g.N(), 22, 1)
	res := radio.RunBroadcast(g, 0, a, rng.New(7), radio.Options{MaxRounds: 100000, RecordHistory: true})
	lastInformed := 0
	for _, h := range res.History {
		if h.NewlyInformed > 0 {
			lastInformed = h.Round
		}
	}
	if res.Rounds > lastInformed+a.Window+1 {
		t.Fatalf("ran to %d, window should end by %d", res.Rounds, lastInformed+a.Window+1)
	}
}

func TestAlgorithm3EnergyPerNode(t *testing.T) {
	// Expected tx/node ≈ Window · E[2^{-I}] = O(log² n / λ).
	g := graph.Grid2D(16, 16)
	n := g.N()
	D := 30
	a := NewAlgorithm3(n, D, 1)
	res := radio.RunBroadcast(g, 0, a, rng.New(8), radio.Options{MaxRounds: 50000})
	want := float64(a.Window) * a.Dist.ExpectedSendProb()
	got := res.TxPerNode()
	if got > 2*want+1 || got < want/8 {
		t.Fatalf("tx/node %v, analytic envelope %v", got, want)
	}
}

func TestTradeoffLambdaReducesEnergy(t *testing.T) {
	// Theorem 4.2: larger λ → fewer transmissions per node (on average).
	g := graph.Grid2D(16, 16)
	n := g.N()
	energy := func(lambda int) float64 {
		total := 0.0
		for seed := uint64(0); seed < 5; seed++ {
			a := NewTradeoff(n, lambda, 1)
			res := radio.RunBroadcast(g, 0, a, rng.New(seed), radio.Options{MaxRounds: 50000})
			total += res.TxPerNode()
		}
		return total / 5
	}
	e2, e6 := energy(2), energy(6)
	if e6 >= e2 {
		t.Fatalf("lambda=6 energy %v not below lambda=2 energy %v", e6, e2)
	}
}

func TestWindowRoundsFormula(t *testing.T) {
	if got := WindowRounds(1024, 1); got != 100 {
		t.Fatalf("WindowRounds(1024,1) = %d, want 100", got)
	}
	if got := WindowRounds(1024, 2.5); got != 250 {
		t.Fatalf("WindowRounds(1024,2.5) = %d, want 250", got)
	}
}

func TestGeneralBroadcastPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil dist":  func() { (&GeneralBroadcast{Window: 5}).Begin(10, 0, rng.New(1)) },
		"no window": func() { NewAlgorithm3(64, 8, 1).withWindow(0).Begin(10, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func (g *GeneralBroadcast) withWindow(w int) *GeneralBroadcast {
	g.Window = w
	return g
}

func TestAlgorithm3Names(t *testing.T) {
	if NewAlgorithm3(64, 8, 1).Name() != "algorithm3" {
		t.Fatal("name")
	}
	if NewTradeoff(64, 3, 1).Name() != "tradeoff(lambda=3)" {
		t.Fatal("tradeoff name")
	}
	if (&GeneralBroadcast{}).Name() != "general-broadcast" {
		t.Fatal("default name")
	}
}

func BenchmarkAlgorithm1GNP(b *testing.B) {
	n := 4096
	p := 4 * math.Log(float64(n)) / float64(n)
	g := graph.GNPDirected(n, p, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAlgorithm1(p)
		radio.RunBroadcast(g, 0, a, rng.New(uint64(i)), radio.Options{MaxRounds: 10000})
	}
}

func BenchmarkAlgorithm3Grid(b *testing.B) {
	g := graph.Grid2D(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAlgorithm3(g.N(), 62, 1)
		radio.RunBroadcast(g, 0, a, rng.New(uint64(i)), radio.Options{MaxRounds: 100000})
	}
}
