// Package campaign is the declarative experiment-grid engine: an experiment
// is data — a set of named grid points, a point→trials mapping, and a render
// stage that turns the collected per-point samples into tables — executed by
// one engine that owns seeding, sharding, checkpointing, resume, and
// progress reporting.
//
// The contract that makes sharded and resumed runs trustworthy is seeding:
// a point's seed is a pure function of (base seed, point key) — never of
// execution order, shard layout, or which points a previous run already
// finished — so any partition of the grid, in any order, across any number
// of processes, produces records identical to one uninterrupted run.
// Two derivations are available (SeedMode): Paired, the default, hands every
// point the base seed itself, so all points draw the same trial-seed
// sequence — the variance-reducing paired design the experiment batteries
// use for protocol comparisons (and the seeding the committed goldens pin);
// Keyed mixes the point key into the seed for campaigns that want
// decorrelated points.
//
// Execution streams one JSONL Record per completed point through an
// append-only checkpoint sink (see record.go); Markdown, CSV and JSONL views
// are all rendered from the same record stream, so a table can be rebuilt
// from checkpoints without re-running anything.
package campaign

import (
	"fmt"
	"strconv"

	"repro/internal/rng"
	"repro/internal/sweep"
)

// Config controls experiment scale and reproducibility. It is shared by
// every campaign (internal/expt aliases it as expt.Config).
type Config struct {
	// Full selects the paper-scale parameter grid; false runs a reduced grid
	// suitable for CI and benchmarks.
	Full bool
	// Seed is the base seed; every point and trial seed derives from it.
	Seed uint64
	// Workers bounds harness parallelism (0 = GOMAXPROCS).
	Workers int
	// GraphMode restricts graph-representation axes in campaigns that carry
	// one (the implicit-topology battery): "" enumerates every
	// representation, "csr" only materialized points, "implicit" only
	// generate-free points — the setting that lets planet-scale grids run on
	// small workers. Campaigns without a representation axis ignore it.
	// Point keys embed the representation, so records from different modes
	// never collide and resume works across mode changes.
	GraphMode string
	// Channel restricts channel-model axes in campaigns that carry one (the
	// channel-realism battery): "" enumerates every model; "binary", "fade"
	// or "duty" only that model's points — so a worker can run one channel
	// leg of a comparison grid. Point keys embed the channel, so records
	// from different restrictions never collide and resume works across
	// changes. Campaigns without a channel axis ignore it.
	Channel string
	// Parallelism selects how the machine is divided between the two
	// parallelism axes — trial fan-out and per-trial rounds-parallel
	// delivery. "" or "auto" uses the measured arbiter: the engine wires the
	// calibration probe's effective-core count (radio.Calibrate) into
	// sweep.PlanPoint, which gives trials first claim on cores and hands
	// rounds-parallel only the spares. "trials" gives every core to the
	// trial pool (the pre-calibration behaviour); "off" runs fully serial.
	// Workers, when set, still bounds the trial pool in every mode. Results
	// are bit-identical across all settings — only scheduling changes.
	Parallelism string
}

// Samples is the result of one grid point: per-metric sample vectors,
// usually one entry per trial (scalar facts are stored as length-1 vectors).
// NaN marks a sample where the metric was absent or undefined.
type Samples = map[string][]float64

// Point is one cell of an experiment grid. Key identifies the point within
// its campaign — stable across runs, scales, and code motion, because the
// resume and shard machinery match on it. Params is the human/JSONL-facing
// string form of the coordinates; Data carries the typed payload (axis
// values, constructors, specs) for the Run stage and is never serialised.
type Point struct {
	Key    string
	Params map[string]string
	Data   any
}

// value returns the named axis value from a Product-built point.
func (p Point) value(name string) any {
	m, ok := p.Data.(map[string]any)
	if !ok {
		panic(fmt.Sprintf("campaign: point %q was not built from axes", p.Key))
	}
	v, ok := m[name]
	if !ok {
		panic(fmt.Sprintf("campaign: point %q has no axis %q", p.Key, name))
	}
	return v
}

// Int returns the named axis value of a Product-built point as an int.
func (p Point) Int(name string) int { return p.value(name).(int) }

// Float returns the named axis value as a float64.
func (p Point) Float(name string) float64 { return p.value(name).(float64) }

// Str returns the named axis value as a string.
func (p Point) Str(name string) string { return p.value(name).(string) }

// Val returns the named axis value untyped (for axes built with Vals).
func (p Point) Val(name string) any { return p.value(name) }

// Axis is one named dimension of a grid: an ordered list of values with
// canonical string labels (the labels appear in point keys, so they must be
// stable).
type Axis struct {
	Name   string
	Labels []string
	Values []any
}

// Ints builds an integer axis.
func Ints(name string, vals ...int) Axis {
	a := Axis{Name: name}
	for _, v := range vals {
		a.Labels = append(a.Labels, strconv.Itoa(v))
		a.Values = append(a.Values, v)
	}
	return a
}

// Floats builds a float axis; labels use the shortest exact formatting.
func Floats(name string, vals ...float64) Axis {
	a := Axis{Name: name}
	for _, v := range vals {
		a.Labels = append(a.Labels, strconv.FormatFloat(v, 'g', -1, 64))
		a.Values = append(a.Values, v)
	}
	return a
}

// Strings builds a string axis (labels are the values themselves).
func Strings(name string, vals ...string) Axis {
	a := Axis{Name: name}
	for _, v := range vals {
		a.Labels = append(a.Labels, v)
		a.Values = append(a.Values, v)
	}
	return a
}

// Vals builds an axis of arbitrary typed values with explicit labels (e.g.
// protocol constructors labelled by protocol name). Access via Point.Val.
func Vals(name string, labels []string, vals []any) Axis {
	if len(labels) != len(vals) {
		panic("campaign: Vals needs one label per value")
	}
	return Axis{Name: name, Labels: labels, Values: vals}
}

// Product enumerates the cartesian product of the axes in row-major order
// (the last axis varies fastest). Each point's Data maps axis name → value,
// its Params map axis name → label, and its Key is "name=label/..." in axis
// order.
func Product(axes ...Axis) []Point {
	pts := []Point{{Key: "", Params: map[string]string{}, Data: map[string]any{}}}
	for _, ax := range axes {
		var next []Point
		for _, base := range pts {
			for i, v := range ax.Values {
				key := ax.Name + "=" + ax.Labels[i]
				if base.Key != "" {
					key = base.Key + "/" + key
				}
				params := make(map[string]string, len(base.Params)+1)
				for k, s := range base.Params {
					params[k] = s
				}
				params[ax.Name] = ax.Labels[i]
				data := make(map[string]any, len(base.Data.(map[string]any))+1)
				for k, s := range base.Data.(map[string]any) {
					data[k] = s
				}
				data[ax.Name] = v
				next = append(next, Point{Key: key, Params: params, Data: data})
			}
		}
		pts = next
	}
	return pts
}

// Pt builds a single ad-hoc point for irregular grids: a key, a typed
// payload, and alternating name/value parameter pairs.
func Pt(key string, data any, params ...string) Point {
	if len(params)%2 != 0 {
		panic("campaign: Pt params must be name/value pairs")
	}
	p := Point{Key: key, Data: data}
	if len(params) > 0 {
		p.Params = make(map[string]string, len(params)/2)
		for i := 0; i < len(params); i += 2 {
			p.Params[params[i]] = params[i+1]
		}
	}
	return p
}

// SeedMode selects how a point's seed derives from (base seed, point key).
type SeedMode int

const (
	// Paired (the default) gives every point the base seed itself: all
	// points see the same trial-seed sequence, so cross-point comparisons
	// (protocol A vs B on the same topologies) are paired. Trivially
	// independent of scheduling, sharding, and resume.
	Paired SeedMode = iota
	// Keyed mixes a stable hash of the point key into the base seed, for
	// campaigns that want statistically independent points.
	Keyed
)

// PointSeed derives a point's seed from the base seed and its key under the
// given mode. It is a pure function — the engine guarantee that records are
// identical whatever the shard layout, execution order, or resume history.
func PointSeed(mode SeedMode, base uint64, key string) uint64 {
	switch mode {
	case Keyed:
		// FNV-1a over the key, folded through the rng's splitmix derivation.
		h := uint64(1469598103934665603)
		for i := 0; i < len(key); i++ {
			h ^= uint64(key[i])
			h *= 1099511628211
		}
		return rng.SubSeed(base, h)
	default:
		return base
	}
}

// Campaign is a declarative experiment: the grid, the per-point trial
// runner, and the table renderer. All three must be deterministic functions
// of their arguments — Points must enumerate the same keys in the same
// order for a given Config, and Run must depend only on (cfg, point, seed).
type Campaign struct {
	// Points enumerates the grid for the configured scale.
	Points func(cfg Config) []Point
	// Run executes every trial of one point and returns its sample vectors.
	// seed is the engine-derived point seed (see SeedMode); trial fan-out
	// inside Run should go through sweep.RunTrialsScratch with it.
	Run func(cfg Config, pt Point, seed uint64) Samples
	// Render builds the experiment's tables from the completed record set.
	// It runs only when every point of the campaign is present (unsharded
	// runs, or a resumed run over merged shard checkpoints).
	Render func(cfg Config, v View) []*sweep.Table
	// SeedMode selects the point-seed derivation (default Paired).
	SeedMode SeedMode
}
