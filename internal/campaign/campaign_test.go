package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/sweep"
)

// testCampaign is a tiny synthetic campaign: a 2×3 grid whose "value"
// sample is a pure function of (point, seed), so record equality across
// execution strategies is meaningful. One metric carries NaN to exercise
// the null round-trip.
func testCampaign() Campaign {
	points := func(cfg Config) []Point {
		return Product(Strings("proto", "a", "b"), Ints("n", 1, 2, 3))
	}
	return Campaign{
		Points: points,
		Run: func(cfg Config, pt Point, seed uint64) Samples {
			n := pt.Int("n")
			base := float64(len(pt.Str("proto"))) * 1000
			return Samples{
				"value": {base + float64(n)*float64(seed%97), float64(n)},
				"gap":   {math.NaN(), float64(n)},
			}
		},
		Render: func(cfg Config, v View) []*sweep.Table {
			t := sweep.NewTable("synthetic", "proto", "n", "value")
			for _, pt := range points(cfg) {
				s := v.Samples(pt.Key)
				t.AddRow(pt.Str("proto"), fmt.Sprint(pt.Int("n")), sweep.F(s["value"][0]))
			}
			return []*sweep.Table{t}
		},
	}
}

func testUnits() []Unit { return []Unit{{ID: "T1", C: testCampaign()}} }

// sortedLines renders a record set as canonically-ordered JSONL lines, so
// runs that complete points in different orders compare equal.
func sortedLines(t *testing.T, rs *ResultSet) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, r := range rs.Records() {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[r.Campaign+"/"+r.Point] = string(b)
	}
	return out
}

func TestProductEnumeration(t *testing.T) {
	pts := Product(Strings("proto", "a", "b"), Ints("n", 1, 2, 3))
	if len(pts) != 6 {
		t.Fatalf("product size %d, want 6", len(pts))
	}
	if pts[0].Key != "proto=a/n=1" || pts[5].Key != "proto=b/n=3" {
		t.Fatalf("unexpected keys %q .. %q", pts[0].Key, pts[5].Key)
	}
	if pts[1].Key != "proto=a/n=2" {
		t.Fatalf("last axis must vary fastest, got %q", pts[1].Key)
	}
	if pts[3].Str("proto") != "b" || pts[3].Int("n") != 1 {
		t.Fatalf("typed access broken: %v", pts[3])
	}
	if pts[2].Params["proto"] != "a" || pts[2].Params["n"] != "3" {
		t.Fatalf("params broken: %v", pts[2].Params)
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		if seen[pt.Key] {
			t.Fatalf("duplicate key %q", pt.Key)
		}
		seen[pt.Key] = true
	}
}

func TestPointSeedModes(t *testing.T) {
	if PointSeed(Paired, 42, "x") != 42 || PointSeed(Paired, 42, "y") != 42 {
		t.Fatal("paired mode must hand every point the base seed")
	}
	kx, ky := PointSeed(Keyed, 42, "x"), PointSeed(Keyed, 42, "y")
	if kx == ky {
		t.Fatal("keyed mode must decorrelate distinct keys")
	}
	if kx != PointSeed(Keyed, 42, "x") {
		t.Fatal("keyed derivation must be deterministic")
	}
	if kx == PointSeed(Keyed, 43, "x") {
		t.Fatal("keyed derivation must depend on the base seed")
	}
}

func TestNullFloatRoundTrip(t *testing.T) {
	in := []NullFloat{1.5, NullFloat(math.NaN()), NullFloat(math.Inf(1)), -3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1.5,null,null,-3]" {
		t.Fatalf("marshal: %s", b)
	}
	var out []NullFloat
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1.5 || !math.IsNaN(float64(out[1])) || !math.IsNaN(float64(out[2])) || out[3] != -3 {
		t.Fatalf("round trip: %v", out)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := Config{Seed: 7}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, ShardCount: 2, ShardIndex: 5}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Resume: true}); err == nil {
		t.Fatal("resume without checkpoint accepted")
	}
	dup := testCampaign()
	inner := dup.Points
	dup.Points = func(cfg Config) []Point {
		pts := inner(cfg)
		return append(pts, pts[0])
	}
	if _, err := Run([]Unit{{ID: "T1", C: dup}}, RunOptions{Config: cfg}); err == nil || !strings.Contains(err.Error(), "duplicate point key") {
		t.Fatalf("duplicate point keys not rejected: %v", err)
	}
	if _, err := Run([]Unit{{ID: "", C: testCampaign()}}, RunOptions{Config: cfg}); err == nil {
		t.Fatal("empty unit ID accepted")
	}
	// A non-empty checkpoint without Resume holds computed records; the
	// engine must refuse rather than silently truncate them.
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: ck}); err == nil ||
		!strings.Contains(err.Error(), "already holds records") {
		t.Fatalf("non-resume run over an existing checkpoint not refused: %v", err)
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: ck, Resume: true}); err != nil {
		t.Fatalf("resume over the same checkpoint must keep working: %v", err)
	}
}

func TestShardUnionEqualsUnsharded(t *testing.T) {
	cfg := Config{Seed: 99}
	full, err := Run(testUnits(), RunOptions{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	union := map[string]string{}
	counts := map[string]int{}
	for shard := 0; shard < 3; shard++ {
		rs, err := Run(testUnits(), RunOptions{Config: cfg, ShardIndex: shard, ShardCount: 3})
		if err != nil {
			t.Fatal(err)
		}
		for k, line := range sortedLines(t, rs) {
			union[k] = line
			counts[k]++
		}
	}
	want := sortedLines(t, full)
	if len(union) != len(want) {
		t.Fatalf("shard union has %d records, unsharded %d", len(union), len(want))
	}
	for k, line := range want {
		if union[k] != line {
			t.Errorf("record %s differs between sharded and unsharded runs\nsharded:   %s\nunsharded: %s", k, union[k], line)
		}
		if counts[k] != 1 {
			t.Errorf("record %s ran on %d shards, want exactly 1", k, counts[k])
		}
	}
}

func TestResumeEquivalence(t *testing.T) {
	cfg := Config{Seed: 1234}
	dir := t.TempDir()

	// One uninterrupted run with a checkpoint.
	fullPath := filepath.Join(dir, "full.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: fullPath}); err != nil {
		t.Fatal(err)
	}
	fullBytes, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a kill after 2 points: keep the first 2 lines, resume.
	lines := strings.SplitAfter(string(fullBytes), "\n")
	partial := strings.Join(lines[:2], "")
	resumePath := filepath.Join(dir, "resume.jsonl")
	if err := os.WriteFile(resumePath, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: resumePath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	resumedBytes, err := os.ReadFile(resumePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedBytes) != string(fullBytes) {
		t.Errorf("killed-then-resumed checkpoint differs from uninterrupted run\nresumed:\n%s\nfull:\n%s", resumedBytes, fullBytes)
	}
	if len(rs.Records()) != 6 {
		t.Fatalf("resumed result set has %d records, want 6", len(rs.Records()))
	}

	// A second resume over the complete file runs nothing and changes nothing
	// (pure render-from-checkpoint mode).
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: resumePath, Resume: true}); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(resumePath)
	if string(again) != string(fullBytes) {
		t.Error("no-op resume modified the checkpoint")
	}

	// Records from a different seed or scale must NOT satisfy resume.
	rs2, err := Run(testUnits(), RunOptions{Config: Config{Seed: 4321}, Checkpoint: resumePath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs2.Records() {
		if r.Seed != 4321 {
			t.Fatalf("resume reused a record with stale seed %d", r.Seed)
		}
	}
}

func TestResumeToleratesTornTail(t *testing.T) {
	cfg := Config{Seed: 5}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(full), "\n")
	// Keep 3 complete records plus a torn fragment of the 4th.
	torn := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(rs.Records()) != 6 {
		t.Fatalf("resumed %d records, want 6", len(rs.Records()))
	}
	// Resume repairs the tear in place: the fragment is truncated before the
	// re-run of its point appends, so the final file is byte-identical to the
	// uninterrupted stream.
	repaired, _ := os.ReadFile(path)
	if string(repaired) != string(full) {
		t.Errorf("repaired checkpoint differs from uninterrupted stream:\n%s\nvs\n%s", repaired, full)
	}
	// A tear at offset 0 — a run killed mid-append of its very first record
	// — must also be repaired: the torn fragment is truncated away, not
	// appended onto.
	if err := os.WriteFile(path, []byte(lines[0][:len(lines[0])/2]), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err = Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatalf("offset-0 tear not tolerated: %v", err)
	}
	if len(rs.Records()) != 6 {
		t.Fatalf("offset-0 resume produced %d records, want 6", len(rs.Records()))
	}
	repaired, _ = os.ReadFile(path)
	if string(repaired) != string(full) {
		t.Errorf("offset-0 repaired checkpoint differs from uninterrupted stream")
	}
	if _, err := LoadRecords(path); err != nil {
		t.Errorf("repaired checkpoint unreadable: %v", err)
	}

	// Corruption mid-file, by contrast, must fail loudly.
	bad := lines[0][:len(lines[0])/2] + "\n" + strings.Join(lines[1:3], "")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecords(path); err == nil {
		t.Fatal("mid-file corruption not detected")
	}
	// ... including on the FINAL line when it is newline-terminated: sink
	// writes are prefix-only, so a complete line that fails to parse was
	// corrupted after the fact, never torn — it must not be silently
	// truncated as if it were a torn tail.
	if err := os.WriteFile(path, []byte(strings.Join(lines[:2], "")+"{\"broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecords(path); err == nil {
		t.Fatal("terminated malformed final line not detected as corruption")
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true}); err == nil {
		t.Fatal("resume over a corrupt terminated final line must refuse, not truncate")
	}
}

func TestRenderFromCheckpointOnly(t *testing.T) {
	cfg := Config{Seed: 77}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	want, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	wantTables := testCampaign().Render(cfg, NewView(want, "T1"))

	loaded, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	gotTables := testCampaign().Render(cfg, NewView(loaded, "T1"))
	if len(gotTables) != len(wantTables) {
		t.Fatalf("table count %d vs %d", len(gotTables), len(wantTables))
	}
	for i := range gotTables {
		if gotTables[i].Markdown() != wantTables[i].Markdown() {
			t.Errorf("table %d rendered from checkpoint differs from live render", i)
		}
	}
}

func TestCompleteDetectsMissingPoints(t *testing.T) {
	cfg := Config{Seed: 3}
	u := testUnits()[0]
	rs, err := Run([]Unit{u}, RunOptions{Config: cfg, ShardIndex: 0, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if Complete(u, cfg, rs) {
		t.Fatal("half a grid reported complete")
	}
	rest, err := Run([]Unit{u}, RunOptions{Config: cfg, ShardIndex: 1, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rest.Records() {
		rs.Add(r)
	}
	if !Complete(u, cfg, rs) {
		t.Fatal("merged shards reported incomplete")
	}
}

// TestResumeSurvivesTruncationAtEveryByte is the exhaustive crash-injection
// sweep: a killed process can leave the checkpoint cut at ANY byte
// boundary, and resume must rebuild the byte-identical uninterrupted
// stream from every one of them. Every offset inside the final record is
// always tested (the satellite requirement); without -short the sweep
// covers every byte of the whole file.
func TestResumeSurvivesTruncationAtEveryByte(t *testing.T) {
	cfg := Config{Seed: 5}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSuffix(string(full), "\n")
	finalStart := strings.LastIndex(body, "\n") + 1
	if finalStart <= 0 || finalStart >= len(full)-1 {
		t.Fatalf("cannot locate final record (finalStart=%d, len=%d)", finalStart, len(full))
	}

	from := finalStart
	if !testing.Short() {
		from = 0
	}
	for cut := from; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true})
		if err != nil {
			t.Fatalf("cut at byte %d: resume failed: %v", cut, err)
		}
		if len(rs.Records()) != 6 {
			t.Fatalf("cut at byte %d: resumed %d records, want 6", cut, len(rs.Records()))
		}
		resumed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumed, full) {
			t.Fatalf("cut at byte %d: resumed checkpoint differs from uninterrupted stream", cut)
		}
	}
}

// TestLoadReportSurfacesToleratedDamage pins the explicit-warning contract:
// what loading tolerates (torn tail, blank lines) is itemised in the
// report, never silently absorbed — and what it does not tolerate
// (corruption of a terminated line) errors with the line and byte offset.
func TestLoadReportSurfacesToleratedDamage(t *testing.T) {
	cfg := Config{Seed: 5}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)

	// Clean file: six records, zero warnings.
	rs, rep, err := LoadRecordsReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 6 || rep.Warnings() != 0 || len(rs.Records()) != 6 {
		t.Fatalf("clean report %+v", rep)
	}

	// Torn tail: counted byte for byte, and repaired away in place.
	frag := `{"campaign":"T1","point":"torn`
	if err := os.WriteFile(path, append(append([]byte{}, full...), frag...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err = LoadRecordsReport(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if rep.TornTailBytes != int64(len(frag)) || rep.Warnings() != 1 {
		t.Fatalf("torn report %+v, want %d torn bytes / 1 warning", rep, len(frag))
	}
	if _, _, err := RepairCheckpoint(path); err != nil {
		t.Fatalf("RepairCheckpoint: %v", err)
	}
	repaired, _ := os.ReadFile(path)
	if !bytes.Equal(repaired, full) {
		t.Errorf("repair did not restore the clean stream")
	}

	// Blank terminated lines are tolerated but itemised.
	lines := strings.SplitAfter(string(full), "\n")
	withBlank := lines[0] + "\n" + strings.Join(lines[1:], "")
	if err := os.WriteFile(path, []byte(withBlank), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err = LoadRecordsReport(path)
	if err != nil {
		t.Fatalf("blank line rejected: %v", err)
	}
	if rep.BlankLines != 1 || rep.Records != 6 || rep.Warnings() != 1 {
		t.Fatalf("blank-line report %+v", rep)
	}

	// A corrupt terminated line errors and names where.
	bad := lines[0] + "{broken}\n" + strings.Join(lines[1:], "")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadRecordsReport(path)
	if err == nil {
		t.Fatal("corrupt terminated line tolerated")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "byte") ||
		!strings.Contains(err.Error(), "not a torn tail") {
		t.Errorf("corruption error lacks location diagnostics: %v", err)
	}
}

// TestRunInterruptStopsBetweenPoints drives the engine's graceful-shutdown
// hook: an interrupt raised while a point runs lets that point finish and
// flush, stops before the next one, and returns ErrInterrupted — leaving a
// clean prefix a resume completes to the byte-identical full stream.
func TestRunInterruptStopsBetweenPoints(t *testing.T) {
	cfg := Config{Seed: 5}
	dir := t.TempDir()
	truth := filepath.Join(dir, "truth.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: truth}); err != nil {
		t.Fatal(err)
	}
	fullBytes, _ := os.ReadFile(truth)

	// The campaign itself pulls the trigger after its first point — the
	// deterministic stand-in for a SIGINT landing mid-run.
	interrupt := make(chan struct{})
	var once sync.Once
	c := testCampaign()
	inner := c.Run
	c.Run = func(cfg Config, pt Point, seed uint64) Samples {
		defer once.Do(func() { close(interrupt) })
		return inner(cfg, pt, seed)
	}
	path := filepath.Join(dir, "ck.jsonl")
	rs, err := Run([]Unit{{ID: "T1", C: c}}, RunOptions{
		Config: cfg, Checkpoint: path, Interrupt: interrupt,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(rs.Records()) != 1 {
		t.Fatalf("interrupted run holds %d records, want the 1 finished point", len(rs.Records()))
	}
	partial, _ := os.ReadFile(path)
	if !bytes.HasPrefix(fullBytes, partial) || len(partial) == 0 {
		t.Fatalf("interrupted checkpoint is not a clean prefix of the full stream")
	}

	// A pre-raised interrupt stops before any point at all.
	pre := make(chan struct{})
	close(pre)
	rs, err = Run(testUnits(), RunOptions{Config: cfg, Interrupt: pre})
	if !errors.Is(err, ErrInterrupted) || len(rs.Records()) != 0 {
		t.Fatalf("pre-raised interrupt: err=%v records=%d, want ErrInterrupted and 0", err, len(rs.Records()))
	}

	// Resume completes the interrupted checkpoint to the full byte stream.
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true}); err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	resumed, _ := os.ReadFile(path)
	if !bytes.Equal(resumed, fullBytes) {
		t.Errorf("resumed-after-interrupt checkpoint differs from uninterrupted stream")
	}
}
