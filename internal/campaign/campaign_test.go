package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// testCampaign is a tiny synthetic campaign: a 2×3 grid whose "value"
// sample is a pure function of (point, seed), so record equality across
// execution strategies is meaningful. One metric carries NaN to exercise
// the null round-trip.
func testCampaign() Campaign {
	points := func(cfg Config) []Point {
		return Product(Strings("proto", "a", "b"), Ints("n", 1, 2, 3))
	}
	return Campaign{
		Points: points,
		Run: func(cfg Config, pt Point, seed uint64) Samples {
			n := pt.Int("n")
			base := float64(len(pt.Str("proto"))) * 1000
			return Samples{
				"value": {base + float64(n)*float64(seed%97), float64(n)},
				"gap":   {math.NaN(), float64(n)},
			}
		},
		Render: func(cfg Config, v View) []*sweep.Table {
			t := sweep.NewTable("synthetic", "proto", "n", "value")
			for _, pt := range points(cfg) {
				s := v.Samples(pt.Key)
				t.AddRow(pt.Str("proto"), fmt.Sprint(pt.Int("n")), sweep.F(s["value"][0]))
			}
			return []*sweep.Table{t}
		},
	}
}

func testUnits() []Unit { return []Unit{{ID: "T1", C: testCampaign()}} }

// sortedLines renders a record set as canonically-ordered JSONL lines, so
// runs that complete points in different orders compare equal.
func sortedLines(t *testing.T, rs *ResultSet) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, r := range rs.Records() {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[r.Campaign+"/"+r.Point] = string(b)
	}
	return out
}

func TestProductEnumeration(t *testing.T) {
	pts := Product(Strings("proto", "a", "b"), Ints("n", 1, 2, 3))
	if len(pts) != 6 {
		t.Fatalf("product size %d, want 6", len(pts))
	}
	if pts[0].Key != "proto=a/n=1" || pts[5].Key != "proto=b/n=3" {
		t.Fatalf("unexpected keys %q .. %q", pts[0].Key, pts[5].Key)
	}
	if pts[1].Key != "proto=a/n=2" {
		t.Fatalf("last axis must vary fastest, got %q", pts[1].Key)
	}
	if pts[3].Str("proto") != "b" || pts[3].Int("n") != 1 {
		t.Fatalf("typed access broken: %v", pts[3])
	}
	if pts[2].Params["proto"] != "a" || pts[2].Params["n"] != "3" {
		t.Fatalf("params broken: %v", pts[2].Params)
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		if seen[pt.Key] {
			t.Fatalf("duplicate key %q", pt.Key)
		}
		seen[pt.Key] = true
	}
}

func TestPointSeedModes(t *testing.T) {
	if PointSeed(Paired, 42, "x") != 42 || PointSeed(Paired, 42, "y") != 42 {
		t.Fatal("paired mode must hand every point the base seed")
	}
	kx, ky := PointSeed(Keyed, 42, "x"), PointSeed(Keyed, 42, "y")
	if kx == ky {
		t.Fatal("keyed mode must decorrelate distinct keys")
	}
	if kx != PointSeed(Keyed, 42, "x") {
		t.Fatal("keyed derivation must be deterministic")
	}
	if kx == PointSeed(Keyed, 43, "x") {
		t.Fatal("keyed derivation must depend on the base seed")
	}
}

func TestNullFloatRoundTrip(t *testing.T) {
	in := []NullFloat{1.5, NullFloat(math.NaN()), NullFloat(math.Inf(1)), -3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1.5,null,null,-3]" {
		t.Fatalf("marshal: %s", b)
	}
	var out []NullFloat
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1.5 || !math.IsNaN(float64(out[1])) || !math.IsNaN(float64(out[2])) || out[3] != -3 {
		t.Fatalf("round trip: %v", out)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := Config{Seed: 7}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, ShardCount: 2, ShardIndex: 5}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Resume: true}); err == nil {
		t.Fatal("resume without checkpoint accepted")
	}
	dup := testCampaign()
	inner := dup.Points
	dup.Points = func(cfg Config) []Point {
		pts := inner(cfg)
		return append(pts, pts[0])
	}
	if _, err := Run([]Unit{{ID: "T1", C: dup}}, RunOptions{Config: cfg}); err == nil || !strings.Contains(err.Error(), "duplicate point key") {
		t.Fatalf("duplicate point keys not rejected: %v", err)
	}
	if _, err := Run([]Unit{{ID: "", C: testCampaign()}}, RunOptions{Config: cfg}); err == nil {
		t.Fatal("empty unit ID accepted")
	}
	// A non-empty checkpoint without Resume holds computed records; the
	// engine must refuse rather than silently truncate them.
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: ck}); err == nil ||
		!strings.Contains(err.Error(), "already holds records") {
		t.Fatalf("non-resume run over an existing checkpoint not refused: %v", err)
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: ck, Resume: true}); err != nil {
		t.Fatalf("resume over the same checkpoint must keep working: %v", err)
	}
}

func TestShardUnionEqualsUnsharded(t *testing.T) {
	cfg := Config{Seed: 99}
	full, err := Run(testUnits(), RunOptions{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	union := map[string]string{}
	counts := map[string]int{}
	for shard := 0; shard < 3; shard++ {
		rs, err := Run(testUnits(), RunOptions{Config: cfg, ShardIndex: shard, ShardCount: 3})
		if err != nil {
			t.Fatal(err)
		}
		for k, line := range sortedLines(t, rs) {
			union[k] = line
			counts[k]++
		}
	}
	want := sortedLines(t, full)
	if len(union) != len(want) {
		t.Fatalf("shard union has %d records, unsharded %d", len(union), len(want))
	}
	for k, line := range want {
		if union[k] != line {
			t.Errorf("record %s differs between sharded and unsharded runs\nsharded:   %s\nunsharded: %s", k, union[k], line)
		}
		if counts[k] != 1 {
			t.Errorf("record %s ran on %d shards, want exactly 1", k, counts[k])
		}
	}
}

func TestResumeEquivalence(t *testing.T) {
	cfg := Config{Seed: 1234}
	dir := t.TempDir()

	// One uninterrupted run with a checkpoint.
	fullPath := filepath.Join(dir, "full.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: fullPath}); err != nil {
		t.Fatal(err)
	}
	fullBytes, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a kill after 2 points: keep the first 2 lines, resume.
	lines := strings.SplitAfter(string(fullBytes), "\n")
	partial := strings.Join(lines[:2], "")
	resumePath := filepath.Join(dir, "resume.jsonl")
	if err := os.WriteFile(resumePath, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: resumePath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	resumedBytes, err := os.ReadFile(resumePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedBytes) != string(fullBytes) {
		t.Errorf("killed-then-resumed checkpoint differs from uninterrupted run\nresumed:\n%s\nfull:\n%s", resumedBytes, fullBytes)
	}
	if len(rs.Records()) != 6 {
		t.Fatalf("resumed result set has %d records, want 6", len(rs.Records()))
	}

	// A second resume over the complete file runs nothing and changes nothing
	// (pure render-from-checkpoint mode).
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: resumePath, Resume: true}); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(resumePath)
	if string(again) != string(fullBytes) {
		t.Error("no-op resume modified the checkpoint")
	}

	// Records from a different seed or scale must NOT satisfy resume.
	rs2, err := Run(testUnits(), RunOptions{Config: Config{Seed: 4321}, Checkpoint: resumePath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs2.Records() {
		if r.Seed != 4321 {
			t.Fatalf("resume reused a record with stale seed %d", r.Seed)
		}
	}
}

func TestResumeToleratesTornTail(t *testing.T) {
	cfg := Config{Seed: 5}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(full), "\n")
	// Keep 3 complete records plus a torn fragment of the 4th.
	torn := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(rs.Records()) != 6 {
		t.Fatalf("resumed %d records, want 6", len(rs.Records()))
	}
	// Resume repairs the tear in place: the fragment is truncated before the
	// re-run of its point appends, so the final file is byte-identical to the
	// uninterrupted stream.
	repaired, _ := os.ReadFile(path)
	if string(repaired) != string(full) {
		t.Errorf("repaired checkpoint differs from uninterrupted stream:\n%s\nvs\n%s", repaired, full)
	}
	// A tear at offset 0 — a run killed mid-append of its very first record
	// — must also be repaired: the torn fragment is truncated away, not
	// appended onto.
	if err := os.WriteFile(path, []byte(lines[0][:len(lines[0])/2]), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err = Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatalf("offset-0 tear not tolerated: %v", err)
	}
	if len(rs.Records()) != 6 {
		t.Fatalf("offset-0 resume produced %d records, want 6", len(rs.Records()))
	}
	repaired, _ = os.ReadFile(path)
	if string(repaired) != string(full) {
		t.Errorf("offset-0 repaired checkpoint differs from uninterrupted stream")
	}
	if _, err := LoadRecords(path); err != nil {
		t.Errorf("repaired checkpoint unreadable: %v", err)
	}

	// Corruption mid-file, by contrast, must fail loudly.
	bad := lines[0][:len(lines[0])/2] + "\n" + strings.Join(lines[1:3], "")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecords(path); err == nil {
		t.Fatal("mid-file corruption not detected")
	}
	// ... including on the FINAL line when it is newline-terminated: sink
	// writes are prefix-only, so a complete line that fails to parse was
	// corrupted after the fact, never torn — it must not be silently
	// truncated as if it were a torn tail.
	if err := os.WriteFile(path, []byte(strings.Join(lines[:2], "")+"{\"broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecords(path); err == nil {
		t.Fatal("terminated malformed final line not detected as corruption")
	}
	if _, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path, Resume: true}); err == nil {
		t.Fatal("resume over a corrupt terminated final line must refuse, not truncate")
	}
}

func TestRenderFromCheckpointOnly(t *testing.T) {
	cfg := Config{Seed: 77}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	want, err := Run(testUnits(), RunOptions{Config: cfg, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	wantTables := testCampaign().Render(cfg, NewView(want, "T1"))

	loaded, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	gotTables := testCampaign().Render(cfg, NewView(loaded, "T1"))
	if len(gotTables) != len(wantTables) {
		t.Fatalf("table count %d vs %d", len(gotTables), len(wantTables))
	}
	for i := range gotTables {
		if gotTables[i].Markdown() != wantTables[i].Markdown() {
			t.Errorf("table %d rendered from checkpoint differs from live render", i)
		}
	}
}

func TestCompleteDetectsMissingPoints(t *testing.T) {
	cfg := Config{Seed: 3}
	u := testUnits()[0]
	rs, err := Run([]Unit{u}, RunOptions{Config: cfg, ShardIndex: 0, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if Complete(u, cfg, rs) {
		t.Fatal("half a grid reported complete")
	}
	rest, err := Run([]Unit{u}, RunOptions{Config: cfg, ShardIndex: 1, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rest.Records() {
		rs.Add(r)
	}
	if !Complete(u, cfg, rs) {
		t.Fatal("merged shards reported incomplete")
	}
}
