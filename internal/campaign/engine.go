package campaign

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/radio"
	"repro/internal/sweep"
)

// ErrInterrupted is returned (possibly wrapped) by Run when RunOptions.
// Interrupt fired: the in-flight point was finished and its record
// flushed, no further points were started, and the checkpoint is a clean
// resumable prefix. Callers distinguish it with errors.Is to exit with a
// distinct status instead of reporting a failure.
var ErrInterrupted = errors.New("campaign: run interrupted")

// Unit is a campaign with its identity — the ID records and point keys are
// scoped under (e.g. the experiment ID "E1").
type Unit struct {
	ID string
	C  Campaign
}

// RunOptions configures one engine invocation.
type RunOptions struct {
	Config Config
	// ShardIndex/ShardCount partition the global point list deterministically
	// across processes: point i (in enumeration order over all selected
	// units) runs on shard ShardIndex iff i % ShardCount == ShardIndex.
	// ShardCount <= 1 disables sharding.
	ShardIndex int
	ShardCount int
	// Checkpoint, when set, streams one JSONL record per completed point to
	// this path (append-only, crash-tolerant).
	Checkpoint string
	// Resume loads Checkpoint first and skips every point that already has a
	// record matching (campaign, point, seed, scale). Requires Checkpoint.
	Resume bool
	// Trials stamps the per-point repetition count into records (informational;
	// the campaigns themselves derive it from Config).
	Trials int
	// Progress, when non-nil, receives one line per point with timing and an
	// ETA over the remaining points of this run.
	Progress io.Writer
	// Interrupt, when non-nil and closed (or sent to), stops the run
	// cleanly between points: the in-flight point finishes and streams its
	// record, then Run returns ErrInterrupted with the partial result set.
	// This is the graceful-shutdown hook — a SIGINT/SIGTERM handler closes
	// the channel and the checkpoint stays a clean resumable prefix rather
	// than relying on torn-tail repair.
	Interrupt <-chan struct{}
}

// task is one scheduled point.
type task struct {
	unit  Unit
	point Point
}

// Run executes the selected campaigns' grids under the given options and
// returns the resulting record set (resumed records included). Execution is
// sequential over points — parallelism lives inside a point's trial fan-out
// (sweep.RunTrialsScratch) — so the checkpoint stream orders records by
// grid position and a killed run leaves a clean prefix.
func Run(units []Unit, opt RunOptions) (*ResultSet, error) {
	if opt.ShardCount > 1 && (opt.ShardIndex < 0 || opt.ShardIndex >= opt.ShardCount) {
		return nil, fmt.Errorf("campaign: shard index %d outside 0..%d", opt.ShardIndex, opt.ShardCount-1)
	}
	if opt.Resume && opt.Checkpoint == "" {
		return nil, fmt.Errorf("campaign: resume requires a checkpoint path")
	}
	if opt.Config.Parallelism == "" || opt.Config.Parallelism == "auto" {
		// Install the measured core count for the per-point arbiter
		// (sweep.PlanPoint). The probe runs once per process and kernel
		// choice never consults it, so records stay bit-identical whatever
		// it reports.
		sweep.SetEffectiveCores(radio.Calibrate().EffectiveCores)
	}

	// Enumerate the global point list and validate key uniqueness.
	var tasks []task
	seen := map[string]bool{}
	for _, u := range units {
		if u.ID == "" {
			return nil, fmt.Errorf("campaign: unit with empty ID")
		}
		for _, pt := range u.C.Points(opt.Config) {
			if pt.Key == "" {
				return nil, fmt.Errorf("campaign %s: point with empty key", u.ID)
			}
			k := setKey(u.ID, pt.Key)
			if seen[k] {
				return nil, fmt.Errorf("campaign %s: duplicate point key %q", u.ID, pt.Key)
			}
			seen[k] = true
			tasks = append(tasks, task{unit: u, point: pt})
		}
	}

	prior := NewResultSet()
	if !opt.Resume && opt.Checkpoint != "" {
		// Refuse to clobber prior work: a non-empty checkpoint holds computed
		// records, and overwriting it silently would throw hours away on a
		// mistyped re-run. The operator chooses explicitly: Resume to
		// continue, or remove the file for a fresh stream.
		if st, err := os.Stat(opt.Checkpoint); err == nil && st.Size() > 0 {
			return nil, fmt.Errorf("campaign: checkpoint %s already holds records; pass resume to continue it, or remove the file to start fresh", opt.Checkpoint)
		}
	}
	if opt.Resume {
		// RepairCheckpoint drops and truncates a torn tail in place so the
		// next append starts on a fresh line and a resumed stream stays
		// byte-identical to an uninterrupted one. Tolerated damage is
		// surfaced, not absorbed silently; a corrupt terminated line —
		// mid-file or final — is an error, never "repaired".
		var rep LoadReport
		var err error
		prior, rep, err = RepairCheckpoint(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		if opt.Progress != nil && rep.TornTailBytes > 0 {
			fmt.Fprintf(opt.Progress, "checkpoint %s: dropped torn %d-byte tail (killed mid-append; repairing in place)\n",
				opt.Checkpoint, rep.TornTailBytes)
		}
		if opt.Progress != nil && rep.BlankLines > 0 {
			fmt.Fprintf(opt.Progress, "checkpoint %s: tolerated %d blank line(s)\n", opt.Checkpoint, rep.BlankLines)
		}
	}

	var sink *Sink
	if opt.Checkpoint != "" {
		// Without resume the checkpoint is a fresh stream (guarded non-empty
		// above); with it, records accumulate after the loaded prefix.
		fresh := !opt.Resume
		var err error
		sink, err = OpenSink(opt.Checkpoint, fresh)
		if err != nil {
			return nil, err
		}
		defer sink.Close()
	}

	// Pre-scan so the ETA denominator counts only points this run executes.
	inShard := func(i int) bool {
		return opt.ShardCount <= 1 || i%opt.ShardCount == opt.ShardIndex
	}
	toRun := 0
	for i, t := range tasks {
		if !inShard(i) {
			continue
		}
		if r, ok := prior.Lookup(t.unit.ID, t.point.Key); ok && r.matches(t.unit.ID, t.point.Key, opt.Config, opt.Trials) {
			continue
		}
		toRun++
	}

	interrupted := func() bool {
		if opt.Interrupt == nil {
			return false
		}
		select {
		case <-opt.Interrupt:
			return true
		default:
			return false
		}
	}

	rs := NewResultSet()
	done := 0
	var spent time.Duration
	for i, t := range tasks {
		if !inShard(i) {
			continue
		}
		if interrupted() {
			// Between points by construction: the previous point's record is
			// already appended and synced, so the checkpoint is a clean
			// prefix and -resume continues exactly here.
			return rs, fmt.Errorf("%w after %d point(s)", ErrInterrupted, done)
		}
		if r, ok := prior.Lookup(t.unit.ID, t.point.Key); ok && r.matches(t.unit.ID, t.point.Key, opt.Config, opt.Trials) {
			rs.Add(r)
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "%s %s: resumed from checkpoint\n", t.unit.ID, t.point.Key)
			}
			continue
		}
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "%s %s ...", t.unit.ID, t.point.Key)
		}
		start := time.Now()
		seed := PointSeed(t.unit.C.SeedMode, opt.Config.Seed, t.point.Key)
		samples := t.unit.C.Run(opt.Config, t.point, seed)
		elapsed := time.Since(start)
		spent += elapsed
		done++
		rec := newRecord(t.unit.ID, t.point, opt.Config, opt.Trials, samples)
		rs.Add(rec)
		if sink != nil {
			if err := sink.Append(rec); err != nil {
				return nil, err
			}
		}
		if opt.Progress != nil {
			eta := time.Duration(float64(spent) / float64(done) * float64(toRun-done)).Round(time.Second)
			fmt.Fprintf(opt.Progress, " done in %v [%d/%d, ETA %v]\n",
				elapsed.Round(time.Millisecond), done, toRun, eta)
		}
	}
	return rs, nil
}

// Complete reports whether every point of the unit has a record in the set
// — the precondition for rendering its tables.
func Complete(u Unit, cfg Config, rs *ResultSet) bool {
	for _, pt := range u.C.Points(cfg) {
		if _, ok := rs.Lookup(u.ID, pt.Key); !ok {
			return false
		}
	}
	return true
}
