package campaign

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Unit is a campaign with its identity — the ID records and point keys are
// scoped under (e.g. the experiment ID "E1").
type Unit struct {
	ID string
	C  Campaign
}

// RunOptions configures one engine invocation.
type RunOptions struct {
	Config Config
	// ShardIndex/ShardCount partition the global point list deterministically
	// across processes: point i (in enumeration order over all selected
	// units) runs on shard ShardIndex iff i % ShardCount == ShardIndex.
	// ShardCount <= 1 disables sharding.
	ShardIndex int
	ShardCount int
	// Checkpoint, when set, streams one JSONL record per completed point to
	// this path (append-only, crash-tolerant).
	Checkpoint string
	// Resume loads Checkpoint first and skips every point that already has a
	// record matching (campaign, point, seed, scale). Requires Checkpoint.
	Resume bool
	// Trials stamps the per-point repetition count into records (informational;
	// the campaigns themselves derive it from Config).
	Trials int
	// Progress, when non-nil, receives one line per point with timing and an
	// ETA over the remaining points of this run.
	Progress io.Writer
}

// task is one scheduled point.
type task struct {
	unit  Unit
	point Point
}

// Run executes the selected campaigns' grids under the given options and
// returns the resulting record set (resumed records included). Execution is
// sequential over points — parallelism lives inside a point's trial fan-out
// (sweep.RunTrialsScratch) — so the checkpoint stream orders records by
// grid position and a killed run leaves a clean prefix.
func Run(units []Unit, opt RunOptions) (*ResultSet, error) {
	if opt.ShardCount > 1 && (opt.ShardIndex < 0 || opt.ShardIndex >= opt.ShardCount) {
		return nil, fmt.Errorf("campaign: shard index %d outside 0..%d", opt.ShardIndex, opt.ShardCount-1)
	}
	if opt.Resume && opt.Checkpoint == "" {
		return nil, fmt.Errorf("campaign: resume requires a checkpoint path")
	}

	// Enumerate the global point list and validate key uniqueness.
	var tasks []task
	seen := map[string]bool{}
	for _, u := range units {
		if u.ID == "" {
			return nil, fmt.Errorf("campaign: unit with empty ID")
		}
		for _, pt := range u.C.Points(opt.Config) {
			if pt.Key == "" {
				return nil, fmt.Errorf("campaign %s: point with empty key", u.ID)
			}
			k := setKey(u.ID, pt.Key)
			if seen[k] {
				return nil, fmt.Errorf("campaign %s: duplicate point key %q", u.ID, pt.Key)
			}
			seen[k] = true
			tasks = append(tasks, task{unit: u, point: pt})
		}
	}

	prior := NewResultSet()
	if !opt.Resume && opt.Checkpoint != "" {
		// Refuse to clobber prior work: a non-empty checkpoint holds computed
		// records, and overwriting it silently would throw hours away on a
		// mistyped re-run. The operator chooses explicitly: Resume to
		// continue, or remove the file for a fresh stream.
		if st, err := os.Stat(opt.Checkpoint); err == nil && st.Size() > 0 {
			return nil, fmt.Errorf("campaign: checkpoint %s already holds records; pass resume to continue it, or remove the file to start fresh", opt.Checkpoint)
		}
	}
	if opt.Resume {
		var cleanLen int64
		var err error
		prior, cleanLen, err = loadCheckpoint(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		// Repair a torn tail in place: drop the partial final line so the
		// next append starts on a fresh line and a resumed stream stays
		// byte-identical to an uninterrupted one. This must happen whenever
		// the file exists — even a tear at offset 0 (a run killed mid-append
		// of its very first record) would otherwise have the next record
		// appended onto the partial line, corrupting the stream for good.
		if _, statErr := os.Stat(opt.Checkpoint); statErr == nil {
			if err := os.Truncate(opt.Checkpoint, cleanLen); err != nil {
				return nil, fmt.Errorf("campaign: truncate torn checkpoint tail: %w", err)
			}
		}
	}

	var sink *Sink
	if opt.Checkpoint != "" {
		// Without resume the checkpoint is a fresh stream (guarded non-empty
		// above); with it, records accumulate after the loaded prefix.
		fresh := !opt.Resume
		var err error
		sink, err = OpenSink(opt.Checkpoint, fresh)
		if err != nil {
			return nil, err
		}
		defer sink.Close()
	}

	// Pre-scan so the ETA denominator counts only points this run executes.
	inShard := func(i int) bool {
		return opt.ShardCount <= 1 || i%opt.ShardCount == opt.ShardIndex
	}
	toRun := 0
	for i, t := range tasks {
		if !inShard(i) {
			continue
		}
		if r, ok := prior.Lookup(t.unit.ID, t.point.Key); ok && r.matches(t.unit.ID, t.point.Key, opt.Config, opt.Trials) {
			continue
		}
		toRun++
	}

	rs := NewResultSet()
	done := 0
	var spent time.Duration
	for i, t := range tasks {
		if !inShard(i) {
			continue
		}
		if r, ok := prior.Lookup(t.unit.ID, t.point.Key); ok && r.matches(t.unit.ID, t.point.Key, opt.Config, opt.Trials) {
			rs.Add(r)
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "%s %s: resumed from checkpoint\n", t.unit.ID, t.point.Key)
			}
			continue
		}
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "%s %s ...", t.unit.ID, t.point.Key)
		}
		start := time.Now()
		seed := PointSeed(t.unit.C.SeedMode, opt.Config.Seed, t.point.Key)
		samples := t.unit.C.Run(opt.Config, t.point, seed)
		elapsed := time.Since(start)
		spent += elapsed
		done++
		rec := newRecord(t.unit.ID, t.point, opt.Config, opt.Trials, samples)
		rs.Add(rec)
		if sink != nil {
			if err := sink.Append(rec); err != nil {
				return nil, err
			}
		}
		if opt.Progress != nil {
			eta := time.Duration(float64(spent) / float64(done) * float64(toRun-done)).Round(time.Second)
			fmt.Fprintf(opt.Progress, " done in %v [%d/%d, ETA %v]\n",
				elapsed.Round(time.Millisecond), done, toRun, eta)
		}
	}
	return rs, nil
}

// Complete reports whether every point of the unit has a record in the set
// — the precondition for rendering its tables.
func Complete(u Unit, cfg Config, rs *ResultSet) bool {
	for _, pt := range u.C.Points(cfg) {
		if _, ok := rs.Lookup(u.ID, pt.Key); !ok {
			return false
		}
	}
	return true
}
