package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Record is the unit of the result stream: one completed grid point. The
// engine appends exactly one JSON line per record to the checkpoint sink,
// and every output view (markdown, CSV, JSONL) renders from records alone —
// so a table can be rebuilt, merged across shards, or resumed from
// checkpoints without re-running a single trial.
//
// The engine deliberately stamps no wall-clock or host fields into records,
// so a record's bytes are a pure function of (campaign, point, seed, scale)
// for every campaign whose samples are themselves deterministic — which is
// what makes "shard union == uninterrupted run" and "resumed ==
// uninterrupted" exact, testable properties rather than aspirations. (A
// campaign that *measures* wall-clock, like X4's kernel-throughput samples,
// is the documented exception: its records resume fine but are not
// reproducible byte-for-byte across runs or hosts.)
type Record struct {
	Campaign string                 `json:"campaign"`
	Point    string                 `json:"point"`
	Params   map[string]string      `json:"params,omitempty"`
	Seed     uint64                 `json:"seed"`
	Full     bool                   `json:"full,omitempty"`
	Trials   int                    `json:"trials,omitempty"`
	Samples  map[string][]NullFloat `json:"samples"`
}

// NullFloat is a float64 whose JSON form maps non-finite values to null
// (JSON has no NaN/Inf literal). Unmarshalling null yields NaN.
type NullFloat float64

// MarshalJSON implements json.Marshaler.
func (f NullFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *NullFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = NullFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = NullFloat(v)
	return nil
}

// NewRecord packages one completed point into its stream form. It is the
// exported constructor for executors outside this package's engine — the
// jobqueue worker builds its completion reports with it — and uses exactly
// the engine's own encoding, so a record computed remotely is bit-identical
// to the one an in-process run would have streamed.
func NewRecord(campaignID string, pt Point, cfg Config, trials int, s Samples) *Record {
	return newRecord(campaignID, pt, cfg, trials, s)
}

// newRecord packages one completed point.
func newRecord(campaignID string, pt Point, cfg Config, trials int, s Samples) *Record {
	r := &Record{
		Campaign: campaignID,
		Point:    pt.Key,
		Params:   pt.Params,
		Seed:     cfg.Seed,
		Full:     cfg.Full,
		Trials:   trials,
		Samples:  make(map[string][]NullFloat, len(s)),
	}
	for k, xs := range s {
		vs := make([]NullFloat, len(xs))
		for i, x := range xs {
			vs[i] = NullFloat(x)
		}
		r.Samples[k] = vs
	}
	return r
}

// samples converts the record back to the Run-stage sample representation.
func (r *Record) samples() Samples {
	out := make(Samples, len(r.Samples))
	for k, vs := range r.Samples {
		xs := make([]float64, len(vs))
		for i, v := range vs {
			xs[i] = float64(v)
		}
		out[k] = xs
	}
	return out
}

// matches reports whether the record satisfies the given run configuration
// for the identified point — the resume criterion. The trial count is part
// of it: a checkpoint written before a repetition-count change must not be
// silently mixed with freshly-run points.
func (r *Record) matches(campaignID, pointKey string, cfg Config, trials int) bool {
	return r.Campaign == campaignID && r.Point == pointKey &&
		r.Seed == cfg.Seed && r.Full == cfg.Full && r.Trials == trials
}

// ResultSet holds the records of one run, in completion order, with
// (campaign, point) lookup. Adding a record for an existing (campaign,
// point) replaces it.
type ResultSet struct {
	byKey map[string]*Record
	recs  []*Record
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet {
	return &ResultSet{byKey: map[string]*Record{}}
}

func setKey(campaignID, pointKey string) string { return campaignID + "\x00" + pointKey }

// Add inserts or replaces a record.
func (rs *ResultSet) Add(r *Record) {
	k := setKey(r.Campaign, r.Point)
	if old, ok := rs.byKey[k]; ok {
		for i, x := range rs.recs {
			if x == old {
				rs.recs[i] = r
				break
			}
		}
	} else {
		rs.recs = append(rs.recs, r)
	}
	rs.byKey[k] = r
}

// Lookup finds the record for a (campaign, point) pair.
func (rs *ResultSet) Lookup(campaignID, pointKey string) (*Record, bool) {
	r, ok := rs.byKey[setKey(campaignID, pointKey)]
	return r, ok
}

// Records returns the records in completion order.
func (rs *ResultSet) Records() []*Record { return rs.recs }

// WriteJSONL streams every record as one JSON line each.
func (rs *ResultSet) WriteJSONL(w io.Writer) error {
	for _, r := range rs.recs {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// View is a campaign-scoped read handle on a result set, handed to the
// Render stage.
type View struct {
	rs *ResultSet
	id string
}

// NewView scopes a result set to one campaign.
func NewView(rs *ResultSet, campaignID string) View { return View{rs: rs, id: campaignID} }

// Samples returns the sample vectors recorded for the given point key. It
// panics with a descriptive message when the point is missing — Render only
// runs on complete result sets, so a miss is a programming error (points
// and render disagreeing on keys) or a truncated checkpoint.
func (v View) Samples(pointKey string) Samples {
	r, ok := v.rs.Lookup(v.id, pointKey)
	if !ok {
		panic(fmt.Sprintf("campaign: no record for %s point %q (points/render key mismatch, or incomplete record stream)", v.id, pointKey))
	}
	return r.samples()
}

// Has reports whether the point has a record.
func (v View) Has(pointKey string) bool {
	_, ok := v.rs.Lookup(v.id, pointKey)
	return ok
}

// --- checkpoint sink ---

// Sink is the append-only JSONL checkpoint stream. Every record is written
// as a single Write of one full line followed by a sync, so a crash can at
// worst leave one torn final line — which LoadRecords tolerates — and a
// record, once visible, is durable and complete.
type Sink struct {
	f *os.File
}

// OpenSink opens (creating if needed) the checkpoint file for appending;
// fresh truncates any existing content first (a new stream rather than a
// resumed one).
func OpenSink(path string, fresh bool) (*Sink, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	return &Sink{f: f}, nil
}

// Append durably writes one record.
func (s *Sink) Append(r *Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign: encode record: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: append record: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("campaign: sync checkpoint: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (s *Sink) Close() error { return s.f.Close() }

// LoadReport accounts for every byte of a loaded checkpoint that did NOT
// become a record, so tolerated damage is surfaced instead of silently
// absorbed. Only two shapes are ever tolerated: an unterminated final line
// (the torn tail of a killed append — the one malformation a prefix-only
// partial write can produce) and newline-terminated blank lines. Any
// terminated non-blank line that fails to parse was written whole and then
// corrupted, and loading errors wherever it sits — mid-file corruption
// must never be mistaken for a benign tear and silently mis-resumed over.
type LoadReport struct {
	// Records is the number of well-formed records loaded.
	Records int
	// TornTailBytes is the length of the dropped unterminated final line
	// (0 when the file ends cleanly).
	TornTailBytes int64
	// BlankLines counts tolerated newline-terminated blank lines.
	BlankLines int
}

// Warnings returns the count of tolerated anomalies (for callers that
// only want to know whether to warn).
func (r LoadReport) Warnings() int {
	n := r.BlankLines
	if r.TornTailBytes > 0 {
		n++
	}
	return n
}

// LoadRecords reads a JSONL checkpoint into a result set. A missing file
// yields an empty set. An unterminated final line — the torn tail of a
// killed append — is dropped; any line that ends in a newline was written
// whole, so failing to parse one is corruption and errors wherever it
// sits, mid-file or final. Use LoadRecordsReport to also learn what was
// tolerated.
func LoadRecords(path string) (*ResultSet, error) {
	rs, _, _, err := loadCheckpoint(path)
	return rs, err
}

// LoadRecordsReport is LoadRecords plus an explicit account of tolerated
// damage (torn tail, blank lines), so callers can warn instead of
// absorbing it silently.
func LoadRecordsReport(path string) (*ResultSet, LoadReport, error) {
	rs, _, rep, err := loadCheckpoint(path)
	return rs, rep, err
}

// RepairCheckpoint loads a checkpoint and truncates any torn tail in
// place, so the next append starts on a fresh line and a resumed stream
// stays byte-identical to an uninterrupted one. This must happen whenever
// the file exists — even a tear at offset 0 (a run killed mid-append of
// its very first record) would otherwise have the next record appended
// onto the partial line, corrupting the stream for good. The report tells
// the caller what was repaired.
func RepairCheckpoint(path string) (*ResultSet, LoadReport, error) {
	rs, cleanLen, rep, err := loadCheckpoint(path)
	if err != nil {
		return nil, rep, err
	}
	if _, statErr := os.Stat(path); statErr == nil {
		if err := os.Truncate(path, cleanLen); err != nil {
			return nil, rep, fmt.Errorf("campaign: truncate torn checkpoint tail: %w", err)
		}
	}
	return rs, rep, nil
}

// loadCheckpoint is LoadRecords plus the clean length — the byte offset
// just past the last well-formed line, the truncation target of
// RepairCheckpoint — and the damage report.
func loadCheckpoint(path string) (*ResultSet, int64, LoadReport, error) {
	rs := NewResultSet()
	cleanLen, rep, err := ScanJSONL(path, func(line []byte) error {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("corrupt record (not a torn tail — the line is newline-terminated): %w", err)
		}
		if r.Campaign == "" || r.Point == "" {
			return fmt.Errorf("record missing campaign/point")
		}
		rs.Add(&r)
		return nil
	})
	if err != nil {
		return nil, 0, rep, err
	}
	return rs, cleanLen, rep, nil
}

// ScanJSONL walks an append-only JSONL stream with the checkpoint sink's
// damage tolerance, handing every newline-terminated non-blank line to fn.
// An unterminated final line — the torn tail of a killed append, the one
// malformation a prefix-only partial write can produce — is excluded and
// reported; terminated blank lines are tolerated and counted. A fn error
// aborts the scan wrapped with the line number and byte offset: a
// terminated line that fails to parse was written whole and then
// corrupted, which callers must treat as real damage, never as a benign
// tear. Returns the clean length — the byte offset just past the last
// accepted line, the truncation target for in-place tail repair — and the
// damage report (fn successes counted in Records). A missing file scans
// as empty. The jobqueue write-ahead log shares this machinery with the
// record checkpoints.
func ScanJSONL(path string, fn func(line []byte) error) (int64, LoadReport, error) {
	var rep LoadReport
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, rep, nil
	}
	if err != nil {
		return 0, rep, fmt.Errorf("campaign: open %s: %w", path, err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<20)
	var offset, cleanLen int64
	line := 0
	for {
		chunk, readErr := br.ReadString('\n')
		if chunk != "" {
			line++
			offset += int64(len(chunk))
			terminated := strings.HasSuffix(chunk, "\n")
			text := strings.TrimSpace(chunk)
			switch {
			case text == "":
				if terminated {
					rep.BlankLines++
					cleanLen = offset
				} else {
					rep.TornTailBytes = int64(len(chunk))
				}
			case !terminated:
				// The torn tail of a killed append (necessarily the final
				// chunk), even if it happens to parse: every append ends
				// with a newline, so this line was cut mid-write. Excluded
				// from the scan and from cleanLen; tail repair truncates
				// it away.
				rep.TornTailBytes = int64(len(chunk))
			default:
				if err := fn([]byte(text)); err != nil {
					return 0, rep, fmt.Errorf("campaign: %s line %d (byte %d): %w", path, line, offset-int64(len(chunk)), err)
				}
				rep.Records++
				cleanLen = offset
			}
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return 0, rep, fmt.Errorf("campaign: read %s: %w", path, readErr)
		}
	}
	return cleanLen, rep, nil
}

// RepairJSONL scans a JSONL stream through fn and truncates any torn tail
// in place, so the next append starts on a fresh line — the generic form
// of RepairCheckpoint, used by the jobqueue write-ahead log. The scan's
// hard-error contract is unchanged: a corrupt terminated line refuses
// rather than truncates.
func RepairJSONL(path string, fn func(line []byte) error) (LoadReport, error) {
	cleanLen, rep, err := ScanJSONL(path, fn)
	if err != nil {
		return rep, err
	}
	if _, statErr := os.Stat(path); statErr == nil {
		if err := os.Truncate(path, cleanLen); err != nil {
			return rep, fmt.Errorf("campaign: truncate torn tail of %s: %w", path, err)
		}
	}
	return rep, nil
}
