// Package sweep is the experiment harness: it fans independent simulation
// trials out over a worker pool with deterministic per-trial seeding, and
// renders result tables as markdown or CSV.
//
// Determinism contract: a trial's seed depends only on (baseSeed, trial
// index), never on scheduling, so parallel sweeps are bit-identical to
// serial ones — the property the rng and radio packages are built around.
package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/rng"
)

// Trial identifies one independent repetition.
type Trial struct {
	Index int
	Seed  uint64
	// Scratch is the per-worker scratch value produced by the factory given
	// to RunTrialsScratch (nil under plain RunTrials). All trials executed
	// by one worker goroutine see the same value, so buffers stored in it
	// are reused across trials without any cross-trial data races.
	Scratch any
}

// Metrics maps metric names to values for one trial.
type Metrics map[string]float64

// RunTrials executes fn for `trials` independent repetitions on `workers`
// goroutines (0 = GOMAXPROCS) and gathers per-metric samples in trial order.
// fn must be safe for concurrent invocation (each call gets its own seed;
// share nothing mutable).
func RunTrials(trials int, baseSeed uint64, workers int, fn func(Trial) Metrics) map[string][]float64 {
	return RunTrialsScratch(trials, baseSeed, workers, nil, fn)
}

// RunTrialsScratch is RunTrials with per-worker scratch: newScratch (when
// non-nil) runs once per worker goroutine and its value is handed to every
// trial that worker executes via Trial.Scratch. Determinism is unaffected —
// trial seeds still depend only on (baseSeed, index) — because scratch must
// only carry reusable buffers, never results.
func RunTrialsScratch(trials int, baseSeed uint64, workers int, newScratch func() any, fn func(Trial) Metrics) map[string][]float64 {
	if trials <= 0 {
		panic("sweep: trials must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	results := make([]Metrics, trials)
	// Dispatch in chunked index ranges through a fully buffered channel: a
	// cheap trial then costs one channel receive per chunk of
	// trials/(8·workers) trials instead of a blocking unbuffered handoff
	// per trial (see BenchmarkRunTrialsDispatch). Eight chunks per worker
	// keeps the tail balanced when trial costs are uneven. Determinism is
	// untouched: seeds depend only on (baseSeed, index), whichever worker
	// executes a chunk.
	chunk := trials / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	spans := make(chan [2]int, (trials+chunk-1)/chunk)
	for lo := 0; lo < trials; lo += chunk {
		hi := lo + chunk
		if hi > trials {
			hi = trials
		}
		spans <- [2]int{lo, hi}
	}
	close(spans)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc any
			if newScratch != nil {
				sc = newScratch()
			}
			for span := range spans {
				for i := span[0]; i < span[1]; i++ {
					results[i] = fn(Trial{Index: i, Seed: rng.SubSeed(baseSeed, uint64(i)), Scratch: sc})
				}
			}
		}()
	}
	wg.Wait()

	out := make(map[string][]float64)
	for i, m := range results {
		for k, v := range m {
			if _, ok := out[k]; !ok {
				out[k] = make([]float64, trials)
				for j := 0; j < i; j++ {
					out[k][j] = math.NaN() // metric absent in earlier trials
				}
			}
			out[k][i] = v
		}
		for k := range out {
			if _, ok := m[k]; !ok {
				out[k][i] = math.NaN()
			}
		}
	}
	return out
}

// Table is a rendered experiment result: an ordered set of columns and rows.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("sweep: table needs columns")
	}
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("sweep: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as a GitHub-flavoured markdown table with a
// title heading and optional note. Column widths are measured in runes, not
// bytes, so cells holding multi-byte characters (α, ≤, ·) stay aligned.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, cell := range cells {
			// Pad by rune count ourselves: fmt's %-*s pads by bytes.
			b.WriteString(" ")
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCell := func(c string) {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		b.WriteString(c)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			writeCell(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells: integers without decimals,
// small magnitudes with 3 significant digits.
func F(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// FInt formats an integer cell.
func FInt(v int) string { return fmt.Sprintf("%d", v) }

// MeanOf returns the mean of the named metric, skipping NaNs. Panics if no
// valid samples exist.
func MeanOf(samples map[string][]float64, key string) float64 {
	xs, ok := samples[key]
	if !ok {
		panic("sweep: unknown metric " + key)
	}
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		panic("sweep: metric " + key + " has no valid samples")
	}
	return sum / float64(n)
}

// RateOf returns the fraction of trials where the named metric is non-zero
// (used for success rates recorded as 0/1).
func RateOf(samples map[string][]float64, key string) float64 {
	xs, ok := samples[key]
	if !ok {
		panic("sweep: unknown metric " + key)
	}
	hits, n := 0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		n++
		if x != 0 {
			hits++
		}
	}
	if n == 0 {
		panic("sweep: metric " + key + " has no valid samples")
	}
	return float64(hits) / float64(n)
}

// SortedKeys returns the metric names in sorted order (for stable output).
func SortedKeys(samples map[string][]float64) []string {
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
