package sweep

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"unicode/utf8"

	"repro/internal/rng"
)

func TestRunTrialsDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(tr Trial) Metrics {
		r := rng.New(tr.Seed)
		return Metrics{"x": r.Float64(), "idx": float64(tr.Index)}
	}
	serial := RunTrials(64, 7, 1, fn)
	parallel := RunTrials(64, 7, 8, fn)
	for i := range serial["x"] {
		if serial["x"][i] != parallel["x"][i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
		if serial["idx"][i] != float64(i) {
			t.Fatalf("trial order broken at %d", i)
		}
	}
}

func TestRunTrialsAllTrialsExecute(t *testing.T) {
	var count int64
	RunTrials(100, 1, 4, func(tr Trial) Metrics {
		atomic.AddInt64(&count, 1)
		return Metrics{"one": 1}
	})
	if count != 100 {
		t.Fatalf("ran %d trials", count)
	}
}

func TestRunTrialsSeedsDistinct(t *testing.T) {
	out := RunTrials(50, 3, 4, func(tr Trial) Metrics {
		return Metrics{"seed": float64(tr.Seed % (1 << 52))}
	})
	seen := map[float64]bool{}
	for _, s := range out["seed"] {
		if seen[s] {
			t.Fatal("duplicate trial seed")
		}
		seen[s] = true
	}
}

func TestRunTrialsMissingMetricBecomesNaN(t *testing.T) {
	out := RunTrials(4, 1, 2, func(tr Trial) Metrics {
		m := Metrics{"always": 1}
		if tr.Index == 2 {
			m["sometimes"] = 5
		}
		return m
	})
	if len(out["sometimes"]) != 4 {
		t.Fatal("length mismatch")
	}
	for i, v := range out["sometimes"] {
		if i == 2 && v != 5 {
			t.Fatalf("trial 2 value %v", v)
		}
		if i != 2 && !math.IsNaN(v) {
			t.Fatalf("trial %d should be NaN, got %v", i, v)
		}
	}
	if got := MeanOf(out, "sometimes"); got != 5 {
		t.Fatalf("MeanOf skipping NaN = %v", got)
	}
}

func TestRunTrialsPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunTrials(0, 1, 1, func(Trial) Metrics { return nil })
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "n", "rounds")
	tb.AddRow("1024", "17")
	tb.AddRow("2048", "19")
	tb.Note = "note line"
	md := tb.Markdown()
	for _, want := range []string{"### Demo", "| n ", "| rounds |", "| 1024 |", "note line"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Heading, blank, header, separator, 2 rows, blank, note.
	if len(lines) != 8 {
		t.Fatalf("markdown has %d lines:\n%s", len(lines), md)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow(`quo"te`, "2")
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y",plain`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"quo""te",2`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header: %s", csv)
	}
}

func TestTablePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no columns": func() { NewTable("x") },
		"bad row":    func() { NewTable("x", "a", "b").AddRow("1") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFormatF(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"}, {3.14159, "3.14"}, {0.000123456, "0.000123"},
		{1e6, "1000000"}, {math.NaN(), "NaN"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Fatalf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if FInt(42) != "42" {
		t.Fatal("FInt")
	}
}

func TestRateOf(t *testing.T) {
	out := map[string][]float64{"ok": {1, 0, 1, 1}}
	if got := RateOf(out, "ok"); got != 0.75 {
		t.Fatalf("RateOf = %v", got)
	}
}

func TestSortedKeys(t *testing.T) {
	out := map[string][]float64{"b": nil, "a": nil, "c": nil}
	keys := SortedKeys(out)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys %v", keys)
	}
}

func TestMeanOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown metric")
		}
	}()
	MeanOf(map[string][]float64{}, "missing")
}

func TestTableMarkdownRuneAlignment(t *testing.T) {
	// Multi-byte headers and cells (α, ≤, ·) must not skew column widths:
	// width is measured in runes, so every rendered row has the same rune
	// length and each column's pipes line up.
	tb := NewTable("Unicode", "α", "q ≤ 1/d", "n")
	tb.AddRow("0.5", "yes", "1024")
	tb.AddRow("0.25", "tx·p", "2")
	md := tb.Markdown()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	rows := lines[2:6] // header, separator, two data rows
	want := utf8.RuneCountInString(rows[0])
	for i, row := range rows {
		if got := utf8.RuneCountInString(row); got != want {
			t.Fatalf("row %d has rune width %d, header has %d:\n%s", i, got, want, md)
		}
	}
	// Column boundaries must agree rune-for-rune between header and rows.
	hdrPipes := runeIndexesOf(rows[0], '|')
	for i, row := range []string{rows[2], rows[3]} {
		if got := runeIndexesOf(row, '|'); !intSlicesEqual(got, hdrPipes) {
			t.Fatalf("data row %d pipes at %v, header at %v:\n%s", i, got, hdrPipes, md)
		}
	}
}

func runeIndexesOf(s string, c rune) []int {
	var out []int
	i := 0
	for _, r := range s {
		if r == c {
			out = append(out, i)
		}
		i++
	}
	return out
}

func intSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChunkedDispatchCoversAllTrialsAtAwkwardSizes guards the chunked
// dispatch arithmetic: trial counts that do not divide evenly into
// workers×8 chunks must still execute every index exactly once.
func TestChunkedDispatchCoversAllTrialsAtAwkwardSizes(t *testing.T) {
	for _, trials := range []int{1, 2, 7, 63, 64, 65, 1000} {
		for _, workers := range []int{1, 3, 8, 64} {
			var mu sync.Mutex
			seen := make(map[int]int)
			RunTrials(trials, 9, workers, func(tr Trial) Metrics {
				mu.Lock()
				seen[tr.Index]++
				mu.Unlock()
				return Metrics{"i": float64(tr.Index)}
			})
			if len(seen) != trials {
				t.Fatalf("trials=%d workers=%d: %d distinct indices executed", trials, workers, len(seen))
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("trials=%d workers=%d: index %d executed %d times", trials, workers, i, c)
				}
			}
		}
	}
}

// BenchmarkRunTrialsDispatch measures the per-trial dispatch overhead with
// a near-free trial body — the regime where the old one-index-per-
// unbuffered-send loop was dominated by channel handoffs. Chunked ranges
// amortise the channel operation over ~8 trials.
func BenchmarkRunTrialsDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunTrials(4096, 7, 4, func(tr Trial) Metrics { return nil })
	}
}
