package sweep

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestRunTrialsDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(tr Trial) Metrics {
		r := rng.New(tr.Seed)
		return Metrics{"x": r.Float64(), "idx": float64(tr.Index)}
	}
	serial := RunTrials(64, 7, 1, fn)
	parallel := RunTrials(64, 7, 8, fn)
	for i := range serial["x"] {
		if serial["x"][i] != parallel["x"][i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
		if serial["idx"][i] != float64(i) {
			t.Fatalf("trial order broken at %d", i)
		}
	}
}

func TestRunTrialsAllTrialsExecute(t *testing.T) {
	var count int64
	RunTrials(100, 1, 4, func(tr Trial) Metrics {
		atomic.AddInt64(&count, 1)
		return Metrics{"one": 1}
	})
	if count != 100 {
		t.Fatalf("ran %d trials", count)
	}
}

func TestRunTrialsSeedsDistinct(t *testing.T) {
	out := RunTrials(50, 3, 4, func(tr Trial) Metrics {
		return Metrics{"seed": float64(tr.Seed % (1 << 52))}
	})
	seen := map[float64]bool{}
	for _, s := range out["seed"] {
		if seen[s] {
			t.Fatal("duplicate trial seed")
		}
		seen[s] = true
	}
}

func TestRunTrialsMissingMetricBecomesNaN(t *testing.T) {
	out := RunTrials(4, 1, 2, func(tr Trial) Metrics {
		m := Metrics{"always": 1}
		if tr.Index == 2 {
			m["sometimes"] = 5
		}
		return m
	})
	if len(out["sometimes"]) != 4 {
		t.Fatal("length mismatch")
	}
	for i, v := range out["sometimes"] {
		if i == 2 && v != 5 {
			t.Fatalf("trial 2 value %v", v)
		}
		if i != 2 && !math.IsNaN(v) {
			t.Fatalf("trial %d should be NaN, got %v", i, v)
		}
	}
	if got := MeanOf(out, "sometimes"); got != 5 {
		t.Fatalf("MeanOf skipping NaN = %v", got)
	}
}

func TestRunTrialsPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunTrials(0, 1, 1, func(Trial) Metrics { return nil })
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "n", "rounds")
	tb.AddRow("1024", "17")
	tb.AddRow("2048", "19")
	tb.Note = "note line"
	md := tb.Markdown()
	for _, want := range []string{"### Demo", "| n ", "| rounds |", "| 1024 |", "note line"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Heading, blank, header, separator, 2 rows, blank, note.
	if len(lines) != 8 {
		t.Fatalf("markdown has %d lines:\n%s", len(lines), md)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow(`quo"te`, "2")
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y",plain`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"quo""te",2`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header: %s", csv)
	}
}

func TestTablePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no columns": func() { NewTable("x") },
		"bad row":    func() { NewTable("x", "a", "b").AddRow("1") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFormatF(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"}, {3.14159, "3.14"}, {0.000123456, "0.000123"},
		{1e6, "1000000"}, {math.NaN(), "NaN"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Fatalf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if FInt(42) != "42" {
		t.Fatal("FInt")
	}
}

func TestRateOf(t *testing.T) {
	out := map[string][]float64{"ok": {1, 0, 1, 1}}
	if got := RateOf(out, "ok"); got != 0.75 {
		t.Fatalf("RateOf = %v", got)
	}
}

func TestSortedKeys(t *testing.T) {
	out := map[string][]float64{"b": nil, "a": nil, "c": nil}
	keys := SortedKeys(out)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys %v", keys)
	}
}

func TestMeanOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown metric")
		}
	}()
	MeanOf(map[string][]float64{}, "missing")
}
