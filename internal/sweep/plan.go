package sweep

import (
	"runtime"
	"sync/atomic"
)

// Plan is the arbiter's split of the machine for one sweep point: how many
// trial workers the RunTrialsScratch pool gets, and how many rounds-parallel
// workers each trial's engine may use (0 = rounds-parallel off). The two
// axes multiply — TrialWorkers × max(RoundWorkers,1) goroutines compete for
// the same cores — so before this arbiter existed both defaulted on and
// oversubscribed every container they ran in.
type Plan struct {
	TrialWorkers int
	RoundWorkers int
}

// effectiveCoresMilli holds the measured usable parallelism ×1000 (atomic so
// campaign wiring and concurrent sweeps don't race). Zero means unmeasured:
// PlanPoint falls back to GOMAXPROCS, the pre-calibration behaviour.
var effectiveCoresMilli atomic.Int64

// SetEffectiveCores installs the calibration probe's measured core count
// (radio.Calibrate().EffectiveCores) as the budget PlanPoint divides.
// Values < 1 are clamped to 1.
func SetEffectiveCores(c float64) {
	if c < 1 {
		c = 1
	}
	effectiveCoresMilli.Store(int64(c * 1000))
}

// EffectiveCores returns the installed measurement, or float64(GOMAXPROCS)
// when no probe has been wired.
func EffectiveCores() float64 {
	if m := effectiveCoresMilli.Load(); m > 0 {
		return float64(m) / 1000
	}
	return float64(runtime.GOMAXPROCS(0))
}

// PlanPoint chooses the parallelism split for a point of `trials` independent
// repetitions. Trials-parallel always wins first claim on cores: independent
// trials share nothing, so they scale perfectly, while rounds-parallel pays
// shard merge barriers every round. Rounds-parallel only receives the cores
// trials cannot fill (few trials on a many-core machine), and never turns on
// with fewer than two whole spare cores per trial — on a measured single-core
// container the plan is always {1, 0}, serial everything.
func PlanPoint(trials int) Plan {
	cores := int(EffectiveCores() + 0.5)
	if cores < 1 {
		cores = 1
	}
	if trials < 1 {
		trials = 1
	}
	p := Plan{TrialWorkers: trials}
	if p.TrialWorkers > cores {
		p.TrialWorkers = cores
	}
	if spare := cores / p.TrialWorkers; spare >= 2 {
		p.RoundWorkers = spare
	}
	return p
}
