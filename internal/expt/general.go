package expt

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E7", Title: "Algorithm 3 vs Czumaj–Rytter vs Decay on general networks",
		PaperRef: "Theorem 4.1", Campaign: e7Campaign()})
	register(Experiment{ID: "E8", Title: "Time–energy trade-off (λ sweep)",
		PaperRef: "Theorem 4.2", Campaign: e8Campaign()})
	register(Experiment{ID: "X3", Title: "Ablation: activity-window β sweep for Algorithm 3",
		PaperRef: "Theorem 4.1 (window constant)", Campaign: x3Campaign()})
}

// e7Topology is one named general-network workload. n is the node count,
// known structurally (grid: w·h, path: length, layered: Σ sizes) so neither
// Run nor Render needs to build a graph just to read it.
type e7Topology struct {
	name string
	n    int
	D    int
	make func(seed uint64) (*graph.Digraph, graph.NodeID)
}

func e7Topologies(cfg Config) []e7Topology {
	gridSide := 16
	pathLen := 256
	if cfg.Full {
		gridSide = 24
		pathLen = 512
	}
	layers := []int{1, 64, 256, 64, 1, 64, 256, 64, 1}
	layeredN := 0
	for _, l := range layers {
		layeredN += l
	}
	return []e7Topology{
		{
			name: fmt.Sprintf("grid %dx%d", gridSide, gridSide),
			n:    gridSide * gridSide,
			D:    2 * (gridSide - 1),
			make: func(seed uint64) (*graph.Digraph, graph.NodeID) {
				return graph.Grid2D(gridSide, gridSide), 0
			},
		},
		{
			name: fmt.Sprintf("path %d", pathLen),
			n:    pathLen,
			D:    pathLen - 1,
			make: func(seed uint64) (*graph.Digraph, graph.NodeID) {
				return graph.Path(pathLen), 0
			},
		},
		{
			name: "layered 1-64-256-64-1 (x2)",
			n:    layeredN,
			D:    8,
			make: func(seed uint64) (*graph.Digraph, graph.NodeID) {
				return graph.LayeredRandom(layers, 0.1, rng.New(seed)), 0
			},
		},
	}
}

// e7Pair is one (topology, protocol) grid point.
type e7Pair struct {
	topo  e7Topology
	proto string
}

var e7Protos = []string{"algorithm3", "czumaj-rytter", "decay"}

func e7Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, topo := range e7Topologies(cfg) {
		for _, proto := range e7Protos {
			pts = append(pts, campaign.Pt(
				fmt.Sprintf("topo=%s/proto=%s", topo.name, proto), e7Pair{topo, proto},
				"topology", topo.name, "proto", proto))
		}
	}
	return pts
}

// e7MakeProto builds a protocol for a topology with n nodes and diameter D.
func e7MakeProto(proto string, n, D int) func() radio.Broadcaster {
	switch proto {
	case "algorithm3":
		return func() radio.Broadcaster { return core.NewAlgorithm3(n, D, 2) }
	case "czumaj-rytter":
		return func() radio.Broadcaster { return baseline.NewCzumajRytter(n, D, 2) }
	default:
		return func() radio.Broadcaster {
			// Decay needs ~(D + log n) phases of log n rounds to finish;
			// give it a proportional per-node budget.
			l2 := log2(float64(n))
			return baseline.NewDecay(2*D/int(math.Max(1, l2)) + 32)
		}
	}
}

func e7Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: e7Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			pr := pt.Data.(e7Pair)
			return runBroadcastTrials(cfg, seed, broadcastTrial{
				makeGraph: func(seed uint64, _ *graph.Scratch) (*graph.Digraph, graph.NodeID) {
					return pr.topo.make(seed)
				},
				makeProto: e7MakeProto(pr.proto, pr.topo.n, pr.topo.D),
				opts:      radio.Options{MaxRounds: 300000},
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			t := sweep.NewTable("E7: known-diameter broadcasting (Theorem 4.1)",
				"topology", "n", "D", "λ", "protocol", "success", "rounds",
				"tx/node", "max tx/node", "tx/node ÷ (log²n/λ)")
			sig := ""
			for _, topo := range e7Topologies(cfg) {
				n := topo.n
				lambda := dist.LambdaFor(n, topo.D)
				l2 := log2(float64(n))
				unit := l2 * l2 / float64(lambda)
				txSamples := map[string][]float64{}
				for _, proto := range e7Protos {
					out := v.Samples(fmt.Sprintf("topo=%s/proto=%s", topo.name, proto))
					txSamples[proto] = out[mTxPerNode]
					rounds := math.NaN()
					if sweep.RateOf(out, mSuccess) > 0 {
						rounds = sweep.MeanOf(out, mRounds)
					}
					txn := sweep.MeanOf(out, mTxPerNode)
					t.AddRow(topo.name, sweep.FInt(n), sweep.FInt(topo.D), sweep.FInt(lambda),
						proto, sweep.F(sweep.RateOf(out, mSuccess)), sweep.F(rounds),
						sweep.F(txn), sweep.F(sweep.MeanOf(out, mMaxNodeTx)), sweep.F(txn/unit))
				}
				// Statistical confirmation that CR's per-node energy exceeds
				// Algorithm 3's: one-sided permutation test over the trial samples.
				p := stats.PermutationTest(txSamples["algorithm3"], txSamples["czumaj-rytter"],
					5000, rng.New(rng.SubSeed(cfg.Seed, 0xe7)))
				sig += fmt.Sprintf(" %s: p=%s;", topo.name, sweep.F(p))
			}
			t.Note = "The headline §4 comparison: Algorithm 3 and Czumaj–Rytter broadcast in comparable " +
				"O(D log(n/D) + log² n) time, but CR's α′ needs a λ-times longer activity window, so " +
				"its energy is Θ(log² n) per node versus Algorithm 3's Θ(log² n / λ). Decay is the " +
				"classical baseline: competitive time, energy Θ(D + log n) per informing wavefront. " +
				"One-sided permutation tests of CR tx/node > Algorithm 3 tx/node:" + sig
			return []*sweep.Table{t}
		},
	}
}

// e8Scale returns the grid side for the configured scale.
func e8Scale(cfg Config) int {
	if cfg.Full {
		return 24
	}
	return 16
}

func e8Grid(cfg Config) []campaign.Point {
	gridSide := e8Scale(cfg)
	n := gridSide * gridSide
	D := 2 * (gridSide - 1)
	lamMin := dist.LambdaFor(n, D)
	L := int(log2(float64(n)))
	var pts []campaign.Point
	for lam := lamMin; lam <= L; lam++ {
		pts = append(pts, campaign.Pt(fmt.Sprintf("lambda=%d", lam), lam,
			"lambda", fmt.Sprint(lam)))
	}
	return pts
}

func e8Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: e8Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			gridSide := e8Scale(cfg)
			g := graph.Grid2D(gridSide, gridSide)
			n := g.N()
			lam := pt.Data.(int)
			return runBroadcastTrials(cfg, seed, broadcastTrial{
				makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) { return g, 0 },
				makeProto: func() radio.Broadcaster { return core.NewTradeoff(n, lam, 2) },
				opts:      radio.Options{MaxRounds: 300000},
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			gridSide := e8Scale(cfg)
			n := gridSide * gridSide
			D := 2 * (gridSide - 1)
			t := sweep.NewTable(
				fmt.Sprintf("E8: λ trade-off on the %dx%d grid (Theorem 4.2)", gridSide, gridSide),
				"λ", "success", "rounds", "rounds/(Dλ+log²n)", "tx/node", "tx/node · λ/log²n")
			l2sq := log2(float64(n)) * log2(float64(n))
			for _, pt := range e8Grid(cfg) {
				lam := pt.Data.(int)
				out := v.Samples(pt.Key)
				rounds := math.NaN()
				if sweep.RateOf(out, mSuccess) > 0 {
					rounds = sweep.MeanOf(out, mRounds)
				}
				txn := sweep.MeanOf(out, mTxPerNode)
				predictedT := float64(D*lam) + l2sq
				t.AddRow(sweep.FInt(lam), sweep.F(sweep.RateOf(out, mSuccess)),
					sweep.F(rounds), sweep.F(rounds/predictedT),
					sweep.F(txn), sweep.F(txn*float64(lam)/l2sq))
			}
			t.Note = "Theorem 4.2: time grows like O(Dλ + log² n) (column 4 near-constant) while energy " +
				"falls like O(log² n / λ) (column 6 near-constant) — the dial between latency and " +
				"battery life."
			return []*sweep.Table{t}
		},
	}
}

// x3Scale returns the grid side for the configured scale.
func x3Scale(cfg Config) int {
	if cfg.Full {
		return 20
	}
	return 14
}

var x3Betas = []float64{0.25, 0.5, 1, 2, 4}

func x3Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, beta := range x3Betas {
		pts = append(pts, campaign.Pt(fmt.Sprintf("beta=%s", sweep.F(beta)), beta,
			"beta", sweep.F(beta)))
	}
	return pts
}

func x3Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: x3Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			gridSide := x3Scale(cfg)
			g := graph.Grid2D(gridSide, gridSide)
			n := g.N()
			D := 2 * (gridSide - 1)
			beta := pt.Data.(float64)
			return runBroadcastTrials(cfg, seed, broadcastTrial{
				makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) { return g, 0 },
				makeProto: func() radio.Broadcaster { return core.NewAlgorithm3(n, D, beta) },
				opts:      radio.Options{MaxRounds: 300000},
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			gridSide := x3Scale(cfg)
			n := gridSide * gridSide
			t := sweep.NewTable(
				fmt.Sprintf("X3: Algorithm-3 window ablation on the %dx%d grid", gridSide, gridSide),
				"β (window = β·log²n)", "window rounds", "success", "informed fraction", "tx/node")
			for _, pt := range x3Grid(cfg) {
				beta := pt.Data.(float64)
				out := v.Samples(pt.Key)
				t.AddRow(sweep.F(beta), sweep.FInt(core.WindowRounds(n, beta)),
					sweep.F(sweep.RateOf(out, mSuccess)),
					sweep.F(sweep.MeanOf(out, mInformedF)),
					sweep.F(sweep.MeanOf(out, mTxPerNode)))
			}
			t.Note = "The β·log² n window is the completion-probability dial: too small and informed " +
				"nodes retire before relaying past slow layers (success collapses); energy grows " +
				"linearly in β. The paper's β is a w.h.p. constant; β ≈ 1–2 already suffices at " +
				"simulation scale."
			return []*sweep.Table{t}
		},
	}
}
