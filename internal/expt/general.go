package expt

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E7", Title: "Algorithm 3 vs Czumaj–Rytter vs Decay on general networks",
		PaperRef: "Theorem 4.1", Run: runE7})
	register(Experiment{ID: "E8", Title: "Time–energy trade-off (λ sweep)",
		PaperRef: "Theorem 4.2", Run: runE8})
	register(Experiment{ID: "X3", Title: "Ablation: activity-window β sweep for Algorithm 3",
		PaperRef: "Theorem 4.1 (window constant)", Run: runX3})
}

// e7Topology is one named general-network workload.
type e7Topology struct {
	name string
	D    int
	make func(seed uint64) (*graph.Digraph, graph.NodeID)
}

func e7Topologies(cfg Config) []e7Topology {
	gridSide := 16
	pathLen := 256
	if cfg.Full {
		gridSide = 24
		pathLen = 512
	}
	return []e7Topology{
		{
			name: fmt.Sprintf("grid %dx%d", gridSide, gridSide),
			D:    2 * (gridSide - 1),
			make: func(seed uint64) (*graph.Digraph, graph.NodeID) {
				return graph.Grid2D(gridSide, gridSide), 0
			},
		},
		{
			name: fmt.Sprintf("path %d", pathLen),
			D:    pathLen - 1,
			make: func(seed uint64) (*graph.Digraph, graph.NodeID) {
				return graph.Path(pathLen), 0
			},
		},
		{
			name: "layered 1-64-256-64-1 (x2)",
			D:    8,
			make: func(seed uint64) (*graph.Digraph, graph.NodeID) {
				return graph.LayeredRandom([]int{1, 64, 256, 64, 1, 64, 256, 64, 1}, 0.1, rng.New(seed)), 0
			},
		},
	}
}

func runE7(cfg Config) []*sweep.Table {
	t := sweep.NewTable("E7: known-diameter broadcasting (Theorem 4.1)",
		"topology", "n", "D", "λ", "protocol", "success", "rounds",
		"tx/node", "max tx/node", "tx/node ÷ (log²n/λ)")
	sig := ""
	for _, topo := range e7Topologies(cfg) {
		topo := topo
		g0, _ := topo.make(1)
		n := g0.N()
		lambda := dist.LambdaFor(n, topo.D)
		l2 := log2(float64(n))
		unit := l2 * l2 / float64(lambda)
		txSamples := map[string][]float64{}
		for _, proto := range []struct {
			name string
			make func() radio.Broadcaster
		}{
			{"algorithm3", func() radio.Broadcaster { return core.NewAlgorithm3(n, topo.D, 2) }},
			{"czumaj-rytter", func() radio.Broadcaster { return baseline.NewCzumajRytter(n, topo.D, 2) }},
			{"decay", func() radio.Broadcaster {
				// Decay needs ~(D + log n) phases of log n rounds to finish;
				// give it a proportional per-node budget.
				return baseline.NewDecay(2*topo.D/int(math.Max(1, l2)) + 32)
			}},
		} {
			proto := proto
			out := runBroadcastTrials(cfg, broadcastTrial{
				makeGraph: func(seed uint64, _ *graph.Scratch) (*graph.Digraph, graph.NodeID) {
					return topo.make(seed)
				},
				makeProto: proto.make,
				opts:      radio.Options{MaxRounds: 300000},
			})
			txSamples[proto.name] = out[mTxPerNode]
			rounds := math.NaN()
			if sweep.RateOf(out, mSuccess) > 0 {
				rounds = sweep.MeanOf(out, mRounds)
			}
			txn := sweep.MeanOf(out, mTxPerNode)
			t.AddRow(topo.name, sweep.FInt(n), sweep.FInt(topo.D), sweep.FInt(lambda),
				proto.name, sweep.F(sweep.RateOf(out, mSuccess)), sweep.F(rounds),
				sweep.F(txn), sweep.F(sweep.MeanOf(out, mMaxNodeTx)), sweep.F(txn/unit))
		}
		// Statistical confirmation that CR's per-node energy exceeds
		// Algorithm 3's: one-sided permutation test over the trial samples.
		p := stats.PermutationTest(txSamples["algorithm3"], txSamples["czumaj-rytter"],
			5000, rng.New(rng.SubSeed(cfg.Seed, 0xe7)))
		sig += fmt.Sprintf(" %s: p=%s;", topo.name, sweep.F(p))
	}
	t.Note = "The headline §4 comparison: Algorithm 3 and Czumaj–Rytter broadcast in comparable " +
		"O(D log(n/D) + log² n) time, but CR's α′ needs a λ-times longer activity window, so " +
		"its energy is Θ(log² n) per node versus Algorithm 3's Θ(log² n / λ). Decay is the " +
		"classical baseline: competitive time, energy Θ(D + log n) per informing wavefront. " +
		"One-sided permutation tests of CR tx/node > Algorithm 3 tx/node:" + sig
	return []*sweep.Table{t}
}

func runE8(cfg Config) []*sweep.Table {
	gridSide := 16
	if cfg.Full {
		gridSide = 24
	}
	g := graph.Grid2D(gridSide, gridSide)
	n := g.N()
	D := 2 * (gridSide - 1)
	lamMin := dist.LambdaFor(n, D)
	L := int(log2(float64(n)))
	t := sweep.NewTable(
		fmt.Sprintf("E8: λ trade-off on the %dx%d grid (Theorem 4.2)", gridSide, gridSide),
		"λ", "success", "rounds", "rounds/(Dλ+log²n)", "tx/node", "tx/node · λ/log²n")
	l2sq := log2(float64(n)) * log2(float64(n))
	for lam := lamMin; lam <= L; lam++ {
		lam := lam
		out := runBroadcastTrials(cfg, broadcastTrial{
			makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) { return g, 0 },
			makeProto: func() radio.Broadcaster { return core.NewTradeoff(n, lam, 2) },
			opts:      radio.Options{MaxRounds: 300000},
		})
		rounds := math.NaN()
		if sweep.RateOf(out, mSuccess) > 0 {
			rounds = sweep.MeanOf(out, mRounds)
		}
		txn := sweep.MeanOf(out, mTxPerNode)
		predictedT := float64(D*lam) + l2sq
		t.AddRow(sweep.FInt(lam), sweep.F(sweep.RateOf(out, mSuccess)),
			sweep.F(rounds), sweep.F(rounds/predictedT),
			sweep.F(txn), sweep.F(txn*float64(lam)/l2sq))
	}
	t.Note = "Theorem 4.2: time grows like O(Dλ + log² n) (column 4 near-constant) while energy " +
		"falls like O(log² n / λ) (column 6 near-constant) — the dial between latency and " +
		"battery life."
	return []*sweep.Table{t}
}

func runX3(cfg Config) []*sweep.Table {
	gridSide := 14
	if cfg.Full {
		gridSide = 20
	}
	g := graph.Grid2D(gridSide, gridSide)
	n := g.N()
	D := 2 * (gridSide - 1)
	t := sweep.NewTable(
		fmt.Sprintf("X3: Algorithm-3 window ablation on the %dx%d grid", gridSide, gridSide),
		"β (window = β·log²n)", "window rounds", "success", "informed fraction", "tx/node")
	for _, beta := range []float64{0.25, 0.5, 1, 2, 4} {
		beta := beta
		out := runBroadcastTrials(cfg, broadcastTrial{
			makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) { return g, 0 },
			makeProto: func() radio.Broadcaster { return core.NewAlgorithm3(n, D, beta) },
			opts:      radio.Options{MaxRounds: 300000},
		})
		t.AddRow(sweep.F(beta), sweep.FInt(core.WindowRounds(n, beta)),
			sweep.F(sweep.RateOf(out, mSuccess)),
			sweep.F(sweep.MeanOf(out, mInformedF)),
			sweep.F(sweep.MeanOf(out, mTxPerNode)))
	}
	t.Note = "The β·log² n window is the completion-probability dial: too small and informed " +
		"nodes retire before relaying past slow layers (success collapses); energy grows " +
		"linearly in β. The paper's β is a w.h.p. constant; β ≈ 1–2 already suffices at " +
		"simulation scale."
	return []*sweep.Table{t}
}
