package expt

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sweep"
)

var cfg = Config{Full: false, Seed: 12345, Workers: 0}

// cellF parses a numeric table cell.
func cellF(t *testing.T, tb *sweep.Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Columns) {
		t.Fatalf("cell (%d,%d) out of range %dx%d in %q", row, col, len(tb.Rows), len(tb.Columns), tb.Title)
	}
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %q is not numeric: %q", row, col, tb.Title, tb.Rows[row][col])
	}
	return v
}

// colIndex finds a column by (partial) name.
func colIndex(t *testing.T, tb *sweep.Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if strings.Contains(c, name) {
			return i
		}
	}
	t.Fatalf("table %q has no column containing %q (have %v)", tb.Title, name, tb.Columns)
	return -1
}

func runByID(t *testing.T, id string) []*sweep.Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables := e.Run(cfg)
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", id, tb.Title)
		}
		// Markdown rendering must not panic and must mention the title.
		if !strings.Contains(tb.Markdown(), tb.Title) {
			t.Fatalf("%s markdown broken", id)
		}
	}
	return tables
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"F1", "F2", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8",
		"G1", "G2", "G3", "G4", "G5", "G6", "N1", "N2", "N3", "N4", "N5", "S1",
		"C1", "C2", "C3", "C4", "C5"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %d experiments %v, want %d", len(all), ids, len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	// Ordering: figures, then theorems (numeric), then extensions, then the
	// geometric battery.
	if all[0].ID != "F1" || all[1].ID != "F2" || all[2].ID != "E1" {
		t.Fatalf("ordering wrong: %s %s %s", all[0].ID, all[1].ID, all[2].ID)
	}
	if all[len(all)-1].ID != "C5" {
		t.Fatalf("last should be C5, got %s", all[len(all)-1].ID)
	}
	for _, e := range all {
		if e.Title == "" || e.PaperRef == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
		if e.Campaign.Points == nil || e.Campaign.Run == nil || e.Campaign.Render == nil {
			t.Fatalf("experiment %s has an incomplete campaign", e.ID)
		}
	}
}

// TestGridEnumeration pins the campaign-spec layer without running trials:
// every experiment's grid must enumerate at both scales with non-empty,
// unique point keys (the identity the shard and resume machinery match on),
// and the full grid must be at least as large as the reduced one.
func TestGridEnumeration(t *testing.T) {
	for _, e := range All() {
		counts := map[bool]int{}
		for _, full := range []bool{false, true} {
			cfg := Config{Full: full, Seed: 2009}
			pts := e.Campaign.Points(cfg)
			if len(pts) == 0 {
				t.Errorf("%s: empty grid (full=%v)", e.ID, full)
			}
			seen := map[string]bool{}
			for _, pt := range pts {
				if pt.Key == "" {
					t.Errorf("%s: point with empty key (full=%v)", e.ID, full)
				}
				if seen[pt.Key] {
					t.Errorf("%s: duplicate point key %q (full=%v)", e.ID, pt.Key, full)
				}
				seen[pt.Key] = true
			}
			counts[full] = len(pts)
		}
		if counts[true] < counts[false] {
			t.Errorf("%s: full grid (%d points) smaller than reduced (%d)", e.ID, counts[true], counts[false])
		}
	}
}

func TestRegistryHardening(t *testing.T) {
	if _, ok := ByID(""); ok {
		t.Fatal("ByID must reject the empty ID")
	}
	if _, ok := ByID("E999"); ok {
		t.Fatal("ByID invented an experiment")
	}
	// idLess must not panic on empty or unknown IDs, and must stay a strict
	// weak ordering (irreflexive) so sort.Slice is safe.
	if idLess("", "") || idLess("E1", "E1") {
		t.Fatal("idLess not irreflexive")
	}
	if !idLess("E1", "") || idLess("", "F1") {
		t.Fatal("empty IDs must sort last")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty ID", func() { register(Experiment{Title: "nameless"}) })
	mustPanic("duplicate ID", func() { register(Experiment{ID: "E1", Campaign: e1Campaign()}) })
	mustPanic("incomplete campaign", func() { register(Experiment{ID: "ZZTest"}) })
}

func TestF1DistributionTable(t *testing.T) {
	tables := runByID(t, "F1")
	if !strings.Contains(tables[0].Note, "all paper inequalities hold") {
		t.Fatalf("F1 property check failed: %s", tables[0].Note)
	}
	// alpha advantage on deep stars must be large (the F1b table).
	tb := tables[1]
	adv := colIndex(t, tb, "advantage")
	last := len(tb.Rows) - 1
	if v := cellF(t, tb, last, adv); v < 4 {
		t.Fatalf("alpha deep-star advantage %v, want >= 4", v)
	}
}

func TestF2NetworkTable(t *testing.T) {
	tables := runByID(t, "F2")
	tb := tables[0]
	ecc := colIndex(t, tb, "source ecc")
	dcol := colIndex(t, tb, "D")
	for r := range tb.Rows {
		if cellF(t, tb, r, ecc) != cellF(t, tb, r, dcol) {
			t.Fatalf("row %d: eccentricity %v != D %v", r, tb.Rows[r][ecc], tb.Rows[r][dcol])
		}
	}
	// F2b: every distribution's star-cross sum <= ~1.44.
	tb2 := tables[1]
	sum := colIndex(t, tb2, "Σ_i")
	for r := range tb2.Rows {
		if v := cellF(t, tb2, r, sum); v > 1.6 {
			t.Fatalf("star-cross sum %v exceeds integral bound", v)
		}
	}
}

func TestE1Theorem21(t *testing.T) {
	tb := runByID(t, "E1")[0]
	succ := colIndex(t, tb, "success")
	maxTx := colIndex(t, tb, "max tx/node")
	perLog := colIndex(t, tb, "rounds/log2 n")
	for r := range tb.Rows {
		if v := cellF(t, tb, r, succ); v < 0.75 {
			t.Fatalf("row %d success %v", r, v)
		}
		if v := cellF(t, tb, r, maxTx); v > 1 {
			t.Fatalf("row %d max tx/node %v > 1", r, v)
		}
		if v := cellF(t, tb, r, perLog); v > 6 {
			t.Fatalf("row %d rounds/log2n = %v not logarithmic", r, v)
		}
	}
}

func TestE2GrowthNearD(t *testing.T) {
	tb := runByID(t, "E2")[0]
	ratio := colIndex(t, tb, "ratio/d")
	// First Phase-1 round must multiply the active set by ~d.
	if v := cellF(t, tb, 0, ratio); v < 0.25 || v > 2 {
		t.Fatalf("first-round growth ratio/d = %v", v)
	}
}

func TestE3Phase2Fraction(t *testing.T) {
	tb := runByID(t, "E3")[0]
	frac := colIndex(t, tb, "fraction")
	for r := range tb.Rows {
		if v := cellF(t, tb, r, frac); v < 0.1 || v > 1 {
			t.Fatalf("row %d phase-2 fraction %v outside [0.1, 1]", r, v)
		}
	}
}

func TestE4Phase3(t *testing.T) {
	tb := runByID(t, "E4")[0]
	succ := colIndex(t, tb, "success")
	for r := range tb.Rows {
		if v := cellF(t, tb, r, succ); v < 0.75 {
			t.Fatalf("row %d phase-3 success %v", r, v)
		}
	}
}

func TestE5DiameterFormula(t *testing.T) {
	tb := runByID(t, "E5")[0]
	pred := colIndex(t, tb, "predicted")
	meas := colIndex(t, tb, "measured")
	for r := range tb.Rows {
		p, m := cellF(t, tb, r, pred), cellF(t, tb, r, meas)
		if m < p-1 || m > p+1 {
			t.Fatalf("row %d: measured diameter %v vs predicted %v", r, m, p)
		}
	}
}

func TestE6GossipScaling(t *testing.T) {
	tables := runByID(t, "E6")
	tb := tables[0]
	succ := colIndex(t, tb, "success")
	txLog := colIndex(t, tb, "tx/node / log2 n")
	for r := range tb.Rows {
		if v := cellF(t, tb, r, succ); v < 0.75 {
			t.Fatalf("row %d gossip success %v", r, v)
		}
		if v := cellF(t, tb, r, txLog); v > 24 {
			t.Fatalf("row %d tx/node/log2n = %v not logarithmic", r, v)
		}
	}
	// E6b: Algorithm 2 must beat TDMA on rounds.
	tb2 := tables[1]
	rounds := colIndex(t, tb2, "rounds")
	if cellF(t, tb2, 0, rounds) >= cellF(t, tb2, 1, rounds) {
		t.Fatalf("algorithm2 rounds %v not below tdma %v",
			tb2.Rows[0][rounds], tb2.Rows[1][rounds])
	}
}

func TestE7HeadlineComparison(t *testing.T) {
	tb := runByID(t, "E7")[0]
	proto := colIndex(t, tb, "protocol")
	txn := colIndex(t, tb, "tx/node")
	succ := colIndex(t, tb, "success")
	topo := colIndex(t, tb, "topology")
	lam := colIndex(t, tb, "λ")
	// For every topology where lambda >= 2: CR energy must exceed
	// Algorithm 3 energy (the headline "who wins").
	byTopo := map[string]map[string]float64{}
	for r := range tb.Rows {
		if cellF(t, tb, r, succ) < 0.5 {
			t.Fatalf("row %d (%s/%s) mostly fails", r, tb.Rows[r][topo], tb.Rows[r][proto])
		}
		name := tb.Rows[r][topo]
		if byTopo[name] == nil {
			byTopo[name] = map[string]float64{}
		}
		byTopo[name][tb.Rows[r][proto]] = cellF(t, tb, r, txn)
		byTopo[name]["λ"] = cellF(t, tb, r, lam)
	}
	for name, m := range byTopo {
		if m["λ"] >= 2 && m["czumaj-rytter"] <= m["algorithm3"] {
			t.Fatalf("%s: CR tx/node %v not above algorithm3 %v (λ=%v)",
				name, m["czumaj-rytter"], m["algorithm3"], m["λ"])
		}
	}
}

func TestE8TradeoffMonotone(t *testing.T) {
	tb := runByID(t, "E8")[0]
	txn := colIndex(t, tb, "tx/node")
	first := cellF(t, tb, 0, txn)
	last := cellF(t, tb, len(tb.Rows)-1, txn)
	if last >= first {
		t.Fatalf("energy did not fall along λ sweep: first %v, last %v", first, last)
	}
}

func TestE9EnergyFloor(t *testing.T) {
	tb := runByID(t, "E9")[0]
	ratio := colIndex(t, tb, "energy/bound")
	for r := range tb.Rows {
		if v := cellF(t, tb, r, ratio); v < 0.8 {
			t.Fatalf("row %d: energy/bound %v below the Observation 4.3 floor", r, v)
		}
	}
}

func TestE10AlgorithmAtBound(t *testing.T) {
	tb := runByID(t, "E10")[0]
	proto := colIndex(t, tb, "protocol")
	ratio := colIndex(t, tb, "tx/bound")
	succ := colIndex(t, tb, "success")
	for r := range tb.Rows {
		if tb.Rows[r][proto] != "algorithm3" {
			continue
		}
		if v := cellF(t, tb, r, succ); v < 0.5 {
			t.Fatalf("algorithm3 row %d mostly fails on Fig.2 network", r)
		}
		if v := cellF(t, tb, r, ratio); v < 0.1 || v > 40 {
			t.Fatalf("algorithm3 tx/bound %v not within a constant of the bound", v)
		}
	}
}

func TestE11Corollary(t *testing.T) {
	tb := runByID(t, "E11")[0]
	norm := colIndex(t, tb, "÷ log²N")
	for r := range tb.Rows {
		if v := cellF(t, tb, r, norm); v < 0.05 || v > 40 {
			t.Fatalf("row %d: tx/node ÷ log²N = %v not Θ(1)", r, v)
		}
	}
}

func TestE12EnergyGap(t *testing.T) {
	tb := runByID(t, "E12")[0]
	proto := colIndex(t, tb, "protocol")
	maxTx := colIndex(t, tb, "max tx/node")
	total := colIndex(t, tb, "total tx")
	for r := 0; r+1 < len(tb.Rows); r += 2 {
		if tb.Rows[r][proto] != "algorithm1" || tb.Rows[r+1][proto] != "elsasser-gasieniec" {
			t.Fatalf("unexpected row layout at %d", r)
		}
		if v := cellF(t, tb, r, maxTx); v > 1 {
			t.Fatalf("algorithm1 max tx/node %v", v)
		}
		if cellF(t, tb, r+1, total) <= cellF(t, tb, r, total) {
			t.Fatalf("EG total tx %v not above algorithm1 %v",
				tb.Rows[r+1][total], tb.Rows[r][total])
		}
	}
}

func TestX1Geometric(t *testing.T) {
	tb := runByID(t, "X1")[0]
	proto := colIndex(t, tb, "protocol")
	frac := colIndex(t, tb, "informed fraction")
	var a1, a3 float64 = -1, -1
	for r := range tb.Rows {
		v := cellF(t, tb, r, frac)
		name := tb.Rows[r][proto]
		if strings.HasPrefix(name, "algorithm3") {
			if v < 0.9 {
				t.Fatalf("algorithm3 should stay robust on RGG, informed %v", v)
			}
			if a3 < 0 {
				a3 = v
			}
		}
		if strings.HasPrefix(name, "algorithm1") && a1 < 0 {
			a1 = v
		}
	}
	// The experiment's story: Algorithm 1's G(n,p) analysis does not carry
	// over to geometric graphs — its coverage must be visibly worse than the
	// diameter-aware Algorithm 3.
	if a1 < 0 || a3 < 0 {
		t.Fatal("missing protocol rows")
	}
	if a1 >= a3 {
		t.Fatalf("expected algorithm1 (%v) to underperform algorithm3 (%v) on RGG", a1, a3)
	}
}

func TestX2PhaseTwoMatters(t *testing.T) {
	tb := runByID(t, "X2")[0]
	variant := colIndex(t, tb, "variant")
	frac := colIndex(t, tb, "informed fraction")
	for r := 0; r+1 < len(tb.Rows); r += 2 {
		if tb.Rows[r][variant] != "full algorithm" {
			t.Fatalf("row layout")
		}
		full, ablated := cellF(t, tb, r, frac), cellF(t, tb, r+1, frac)
		if ablated >= full {
			t.Fatalf("removing phase 2 did not hurt: full %v vs ablated %v", full, ablated)
		}
	}
}

func TestX3WindowAblation(t *testing.T) {
	tb := runByID(t, "X3")[0]
	txn := colIndex(t, tb, "tx/node")
	succ := colIndex(t, tb, "success")
	// Energy grows with beta.
	if cellF(t, tb, len(tb.Rows)-1, txn) <= cellF(t, tb, 0, txn) {
		t.Fatal("tx/node did not grow with window")
	}
	// The largest window must succeed.
	if cellF(t, tb, len(tb.Rows)-1, succ) < 0.75 {
		t.Fatal("largest window fails")
	}
}

func TestX4KernelsAgree(t *testing.T) {
	tb := runByID(t, "X4")[0]
	if !strings.Contains(tb.Note, "identical results across kernels") {
		t.Fatalf("kernel mismatch: %s", tb.Note)
	}
	check := colIndex(t, tb, "checksum")
	first := tb.Rows[0][check]
	for r := range tb.Rows {
		if tb.Rows[r][check] != first {
			t.Fatal("checksum cells differ")
		}
	}
}

func TestX5Adversity(t *testing.T) {
	tables := runByID(t, "X5")
	// X5a: algorithm3 must stay robust at every loss level; algorithm1 must
	// degrade at high loss (its success at loss=0.5 below its loss=0 value).
	tb := tables[0]
	proto := colIndex(t, tb, "protocol")
	succ := colIndex(t, tb, "success")
	loss := colIndex(t, tb, "loss prob")
	var a1Clean, a1Lossy float64 = -1, -1
	for r := range tb.Rows {
		isA1 := strings.HasPrefix(tb.Rows[r][proto], "algorithm1")
		s := cellF(t, tb, r, succ)
		l := cellF(t, tb, r, loss)
		if !isA1 && s < 0.75 {
			t.Fatalf("algorithm3 not robust at loss=%v: success %v", l, s)
		}
		if isA1 && l == 0 {
			a1Clean = s
		}
		if isA1 && l == 0.5 {
			a1Lossy = s
		}
	}
	if a1Lossy >= a1Clean {
		t.Fatalf("algorithm1 should degrade under loss: clean %v vs lossy %v", a1Clean, a1Lossy)
	}
	// X5b: jamming stretches rounds monotonically-ish but success holds.
	tb2 := tables[1]
	succ2 := colIndex(t, tb2, "success")
	rounds2 := colIndex(t, tb2, "rounds")
	for r := range tb2.Rows {
		if v := cellF(t, tb2, r, succ2); v < 0.75 {
			t.Fatalf("jam row %d success %v", r, v)
		}
	}
	if cellF(t, tb2, len(tb2.Rows)-1, rounds2) <= cellF(t, tb2, 0, rounds2) {
		t.Fatal("heavy jamming did not slow the broadcast")
	}
}

func TestX6Mobility(t *testing.T) {
	tb := runByID(t, "X6")[0]
	scen := colIndex(t, tb, "scenario")
	frac := colIndex(t, tb, "informed fraction")
	succ := colIndex(t, tb, "success")
	var staticSub, mobileSub float64 = -1, -1
	for r := range tb.Rows {
		name := tb.Rows[r][scen]
		switch {
		case strings.HasPrefix(name, "static, subcritical"):
			staticSub = cellF(t, tb, r, frac)
		case strings.HasPrefix(name, "mobile"):
			mobileSub = cellF(t, tb, r, frac)
			if v := cellF(t, tb, r, succ); v < 0.75 {
				t.Fatalf("mobile scenario success %v", v)
			}
		}
	}
	if staticSub < 0 || mobileSub < 0 {
		t.Fatal("missing scenarios")
	}
	if mobileSub <= staticSub+0.3 {
		t.Fatalf("mobility should rescue coverage: static %v vs mobile %v", staticSub, mobileSub)
	}
}

func TestX7Battery(t *testing.T) {
	tables := runByID(t, "X7")
	if len(tables) != 3 {
		t.Fatalf("X7 tables: %d", len(tables))
	}
	// X7b: algorithm3 lifetime must exceed CR's.
	tb := tables[1]
	proto := colIndex(t, tb, "protocol")
	camp := colIndex(t, tb, "campaigns")
	var a3, cr float64 = -1, -1
	for r := range tb.Rows {
		switch tb.Rows[r][proto] {
		case "algorithm3":
			a3 = cellF(t, tb, r, camp)
		case "czumaj-rytter":
			cr = cellF(t, tb, r, camp)
		}
	}
	if a3 <= cr {
		t.Fatalf("algorithm3 lifetime %v not above CR %v", a3, cr)
	}
	// X7c: Algorithm 1 succeeds with unit batteries.
	tb3 := tables[2]
	succ := colIndex(t, tb3, "success")
	if v := cellF(t, tb3, 0, succ); v < 0.75 {
		t.Fatalf("Algorithm 1 with B=1 success %v", v)
	}
	maxSpent := colIndex(t, tb3, "max spent")
	if v := cellF(t, tb3, len(tb3.Rows)-1, maxSpent); v > 1 {
		t.Fatalf("Algorithm 1 spent %v > 1", v)
	}
}

func TestX8Heterogeneous(t *testing.T) {
	tb := runByID(t, "X8")[0]
	proto := colIndex(t, tb, "protocol")
	succ := colIndex(t, tb, "success")
	spread := colIndex(t, tb, "spread")
	// Algorithm 3 robust at every spread; Algorithm 1 weaker at the widest
	// spread than at spread 1.
	var a1Uniform, a1Wide float64 = -1, -1
	for r := range tb.Rows {
		isA1 := strings.HasPrefix(tb.Rows[r][proto], "algorithm1")
		s := cellF(t, tb, r, succ)
		if !isA1 && s < 0.75 {
			t.Fatalf("algorithm3 fragile at spread %s: %v", tb.Rows[r][spread], s)
		}
		if isA1 && tb.Rows[r][spread] == "1x" {
			a1Uniform = s
		}
		if isA1 && tb.Rows[r][spread] == "64x" {
			a1Wide = s
		}
	}
	if a1Wide > a1Uniform+0.15 { // tolerate one trial of noise at reduced scale
		t.Fatalf("algorithm1 should not improve under heterogeneity: 1x=%v 64x=%v", a1Uniform, a1Wide)
	}
}
