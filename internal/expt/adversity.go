package expt

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "X5", Title: "Channel adversity: fading loss and jamming",
		PaperRef: "model extension (§1.2 collisions; one-shot vs retrying protocols)", Campaign: x5Campaign()})
	register(Experiment{ID: "X6", Title: "Mobile broadcast: topology re-sampled mid-run",
		PaperRef: "§1 mobility motivation", Campaign: x6Campaign()})
}

// x5Scale returns the G(n,p) operating point of the adversity battery.
func x5Scale(cfg Config) (n int, p float64, diam int) {
	n = 1 << 11
	if cfg.Full {
		n = 1 << 13
	}
	p = sparseP(n)
	diam = int(math.Ceil(math.Log(float64(n)) / math.Log(p*float64(n))))
	return n, p, diam
}

var (
	x5Losses   = []float64{0, 0.1, 0.3, 0.5}
	x5Protos   = []string{"algorithm1 (1 shot/node)", "algorithm3 (window of retries)"}
	x5JamRates = []float64{0, 0.05, 0.2, 0.4}
)

// x5Grid enumerates the fading (a/...) and jamming (b/...) points.
func x5Grid(cfg Config) (fading, jamming []campaign.Point) {
	for _, loss := range x5Losses {
		for _, proto := range x5Protos {
			fading = append(fading, campaign.Pt(
				fmt.Sprintf("a/loss=%s/proto=%s", sweep.F(loss), proto),
				[2]any{loss, proto}, "loss", sweep.F(loss), "proto", proto))
		}
	}
	for _, rate := range x5JamRates {
		jamming = append(jamming, campaign.Pt(
			fmt.Sprintf("b/jam=%s", sweep.F(rate)), rate, "jam", sweep.F(rate)))
	}
	return fading, jamming
}

func x5Campaign() campaign.Campaign {
	points := func(cfg Config) []campaign.Point {
		a, b := x5Grid(cfg)
		return append(a, b...)
	}
	return campaign.Campaign{
		Points: points,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n, p, diam := x5Scale(cfg)
			if pt.Key[0] == 'a' {
				d := pt.Data.([2]any)
				loss := d[0].(float64)
				makeProto := func() radio.Broadcaster { return core.NewAlgorithm1(p) }
				if d[1].(string) == x5Protos[1] {
					makeProto = func() radio.Broadcaster { return core.NewAlgorithm3(n, diam, 2) }
				}
				return runBroadcastTrials(cfg, seed, broadcastTrial{
					makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) {
						return sc.GNPDirected(n, p, rng.New(seed)), 0
					},
					makeProto: makeProto,
					opts:      radio.Options{MaxRounds: 100000, LossProb: loss},
				})
			}
			rate := pt.Data.(float64)
			return runBroadcastTrials(cfg, seed, broadcastTrial{
				makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) {
					return sc.GNPDirected(n, p, rng.New(seed)), 0
				},
				makeProto: func() radio.Broadcaster { return core.NewAlgorithm3(n, diam, 2) },
				// Jam each node independently with the given rate per round; the
				// schedule draws from a per-trial stream so protocol randomness
				// is untouched and trials stay deterministic.
				makeOpts: func(seed uint64) radio.Options {
					jr := rng.New(rng.SubSeed(seed, 7))
					return radio.Options{
						MaxRounds: 100000,
						Jammed: func(round int) []graph.NodeID {
							var out []graph.NodeID
							k := jr.Binomial(n, rate)
							for _, idx := range jr.SampleWithoutReplacement(n, k) {
								out = append(out, graph.NodeID(idx))
							}
							return out
						},
					}
				},
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n, _, _ := x5Scale(cfg)
			fading, jamming := x5Grid(cfg)
			t := sweep.NewTable(
				fmt.Sprintf("X5a: per-edge fading on G(n=%d,p) — one-shot vs retrying protocols", n),
				"loss prob", "protocol", "success", "informed fraction", "tx/node")
			for _, pt := range fading {
				d := pt.Data.([2]any)
				out := v.Samples(pt.Key)
				t.AddRow(sweep.F(d[0].(float64)), d[1].(string),
					sweep.F(sweep.RateOf(out, mSuccess)),
					sweep.F(sweep.MeanOf(out, mInformedF)),
					sweep.F(sweep.MeanOf(out, mTxPerNode)))
			}
			t.Note = "Fading drops each (sender, receiver) delivery independently. Algorithm 1's " +
				"energy optimality comes from single-shot transmissions, which makes it brittle " +
				"under loss (its w.h.p. analysis assumes a perfect channel); Algorithm 3 retries " +
				"throughout its Θ(log² n) window and degrades gracefully. Fading can even help " +
				"against collisions (it thins simultaneous transmitters), but the lost capacity " +
				"dominates for the one-shot protocol."

			t2 := sweep.NewTable(
				fmt.Sprintf("X5b: random receiver jamming on G(n=%d,p) — Algorithm 3", n),
				"jam rate", "success", "informed fraction", "rounds", "tx/node")
			for _, pt := range jamming {
				rate := pt.Data.(float64)
				out := v.Samples(pt.Key)
				rounds := math.NaN()
				if sweep.RateOf(out, mSuccess) > 0 {
					rounds = sweep.MeanOf(out, mRounds)
				}
				t2.AddRow(sweep.F(rate), sweep.F(sweep.RateOf(out, mSuccess)),
					sweep.F(sweep.MeanOf(out, mInformedF)), sweep.F(rounds),
					sweep.F(sweep.MeanOf(out, mTxPerNode)))
			}
			t2.Note = "A jammed receiver hears only noise that round. Random jamming at rate ρ scales " +
				"every per-round informing probability by (1-ρ), so completion time stretches by " +
				"≈ 1/(1-ρ) while success stays high — the protocol's randomised retries absorb " +
				"interference without any coordination."
			return []*sweep.Table{t, t2}
		},
	}
}

// x6Scenario is one mobility scenario of X6.
type x6Scenario struct {
	name    string
	dynamic bool
	radius  float64 // multiple of r_c, resolved in Run/Render
}

// x6Scale returns the X6 parameters for the configured scale.
func x6Scale(cfg Config) (n int, rc float64) {
	n = 400
	if cfg.Full {
		n = 900
	}
	return n, math.Sqrt(math.Log(float64(n)) / (math.Pi * float64(n)))
}

func x6Scenarios(rc float64) []x6Scenario {
	sub := 0.7 * rc // below the connectivity threshold: isolated pockets
	super := 2 * rc // comfortably connected
	return []x6Scenario{
		{"static, subcritical radius 0.7·r_c", false, sub},
		{"mobile, subcritical radius 0.7·r_c", true, sub},
		{"static, radius 2·r_c (reference)", false, super},
	}
}

func x6Campaign() campaign.Campaign {
	points := func(cfg Config) []campaign.Point {
		_, rc := x6Scale(cfg)
		var pts []campaign.Point
		for _, sc := range x6Scenarios(rc) {
			pts = append(pts, campaign.Pt("scenario="+sc.name, sc, "scenario", sc.name))
		}
		return pts
	}
	return campaign.Campaign{
		Points: points,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n, rc := x6Scale(cfg)
			sub := 0.7 * rc
			epochs := 24
			epochLen := 40
			dGuess := int(2 / sub) // generous diameter bound for the protocol
			sc := pt.Data.(x6Scenario)
			return sweep.RunTrials(trials(cfg), seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
				protoRNG := rng.New(rng.SubSeed(tr.Seed, 1))
				proto := core.NewAlgorithm3(n, dGuess, 8) // wide window: survives epochs
				sess := radio.NewBroadcastSession(n, 0, proto, protoRNG)
				var res *radio.Result
				for e := 0; e < epochs; e++ {
					gseed := tr.Seed
					if sc.dynamic {
						gseed = rng.SubSeed(tr.Seed, uint64(100+e)) // nodes moved
					}
					g, _ := graph.RandomGeometric(n, sc.radius, sc.radius, rng.New(gseed))
					res = sess.Run(g, radio.Options{MaxRounds: epochLen, StopWhenInformed: true})
					if res.Completed() {
						break
					}
				}
				m := sweep.Metrics{
					"success":      0,
					"informedFrac": float64(res.Informed) / float64(n),
					"rounds":       math.NaN(),
				}
				if res.Completed() {
					m["success"] = 1
					m["rounds"] = float64(res.InformedRound)
				}
				return m
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n, _ := x6Scale(cfg)
			epochs, epochLen := 24, 40
			t := sweep.NewTable(
				fmt.Sprintf("X6: broadcast on a mobile geometric network (n=%d, %d epochs × %d rounds)", n, epochs, epochLen),
				"scenario", "success", "informed fraction", "rounds to complete")
			for _, pt := range points(cfg) {
				sc := pt.Data.(x6Scenario)
				out := v.Samples(pt.Key)
				rounds := math.NaN()
				if sweep.RateOf(out, "success") > 0 {
					rounds = sweep.MeanOf(out, "rounds")
				}
				t.AddRow(sc.name, sweep.F(sweep.RateOf(out, "success")),
					sweep.F(sweep.MeanOf(out, "informedFrac")), sweep.F(rounds))
			}
			t.Note = "The §1 mobility story, quantified: below the connectivity radius a STATIC " +
				"geometric network strands the broadcast in the source's pocket, but when nodes " +
				"move (fresh positions each epoch, knowledge carried by radio.BroadcastSession) " +
				"the union of topologies connects and the oblivious protocol completes — mobility " +
				"substitutes for density. The protocol never learns the topology; it just keeps " +
				"following its schedule."
			return []*sweep.Table{t}
		},
	}
}
