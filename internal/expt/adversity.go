package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "X5", Title: "Channel adversity: fading loss and jamming",
		PaperRef: "model extension (§1.2 collisions; one-shot vs retrying protocols)", Run: runX5})
	register(Experiment{ID: "X6", Title: "Mobile broadcast: topology re-sampled mid-run",
		PaperRef: "§1 mobility motivation", Run: runX6})
}

func runX5(cfg Config) []*sweep.Table {
	n := 1 << 11
	if cfg.Full {
		n = 1 << 13
	}
	p := sparseP(n)
	diam := int(math.Ceil(math.Log(float64(n)) / math.Log(p*float64(n))))
	t := sweep.NewTable(
		fmt.Sprintf("X5a: per-edge fading on G(n=%d,p) — one-shot vs retrying protocols", n),
		"loss prob", "protocol", "success", "informed fraction", "tx/node")
	for _, loss := range []float64{0, 0.1, 0.3, 0.5} {
		loss := loss
		for _, proto := range []struct {
			name string
			make func() radio.Broadcaster
		}{
			{"algorithm1 (1 shot/node)", func() radio.Broadcaster { return core.NewAlgorithm1(p) }},
			{"algorithm3 (window of retries)", func() radio.Broadcaster { return core.NewAlgorithm3(n, diam, 2) }},
		} {
			proto := proto
			out := runBroadcastTrials(cfg, broadcastTrial{
				makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) {
					return sc.GNPDirected(n, p, rng.New(seed)), 0
				},
				makeProto: proto.make,
				opts:      radio.Options{MaxRounds: 100000, LossProb: loss},
			})
			t.AddRow(sweep.F(loss), proto.name,
				sweep.F(sweep.RateOf(out, mSuccess)),
				sweep.F(sweep.MeanOf(out, mInformedF)),
				sweep.F(sweep.MeanOf(out, mTxPerNode)))
		}
	}
	t.Note = "Fading drops each (sender, receiver) delivery independently. Algorithm 1's " +
		"energy optimality comes from single-shot transmissions, which makes it brittle " +
		"under loss (its w.h.p. analysis assumes a perfect channel); Algorithm 3 retries " +
		"throughout its Θ(log² n) window and degrades gracefully. Fading can even help " +
		"against collisions (it thins simultaneous transmitters), but the lost capacity " +
		"dominates for the one-shot protocol."

	// X5b: random jamming of receivers.
	t2 := sweep.NewTable(
		fmt.Sprintf("X5b: random receiver jamming on G(n=%d,p) — Algorithm 3", n),
		"jam rate", "success", "informed fraction", "rounds", "tx/node")
	for _, rate := range []float64{0, 0.05, 0.2, 0.4} {
		rate := rate
		out := runBroadcastTrials(cfg, broadcastTrial{
			makeGraph: func(seed uint64, sc *graph.Scratch) (*graph.Digraph, graph.NodeID) {
				return sc.GNPDirected(n, p, rng.New(seed)), 0
			},
			makeProto: func() radio.Broadcaster { return core.NewAlgorithm3(n, diam, 2) },
			// Jam each node independently with the given rate per round; the
			// schedule draws from a per-trial stream so protocol randomness
			// is untouched and trials stay deterministic.
			makeOpts: func(seed uint64) radio.Options {
				jr := rng.New(rng.SubSeed(seed, 7))
				return radio.Options{
					MaxRounds: 100000,
					Jammed: func(round int) []graph.NodeID {
						var out []graph.NodeID
						k := jr.Binomial(n, rate)
						for _, idx := range jr.SampleWithoutReplacement(n, k) {
							out = append(out, graph.NodeID(idx))
						}
						return out
					},
				}
			},
		})
		rounds := math.NaN()
		if sweep.RateOf(out, mSuccess) > 0 {
			rounds = sweep.MeanOf(out, mRounds)
		}
		t2.AddRow(sweep.F(rate), sweep.F(sweep.RateOf(out, mSuccess)),
			sweep.F(sweep.MeanOf(out, mInformedF)), sweep.F(rounds),
			sweep.F(sweep.MeanOf(out, mTxPerNode)))
	}
	t2.Note = "A jammed receiver hears only noise that round. Random jamming at rate ρ scales " +
		"every per-round informing probability by (1-ρ), so completion time stretches by " +
		"≈ 1/(1-ρ) while success stays high — the protocol's randomised retries absorb " +
		"interference without any coordination."
	return []*sweep.Table{t, t2}
}

func runX6(cfg Config) []*sweep.Table {
	n := 400
	if cfg.Full {
		n = 900
	}
	rc := math.Sqrt(math.Log(float64(n)) / (math.Pi * float64(n)))
	sub := 0.7 * rc // below the connectivity threshold: isolated pockets
	super := 2 * rc // comfortably connected
	epochs := 24
	epochLen := 40
	dGuess := int(2 / sub) // generous diameter bound for the protocol

	t := sweep.NewTable(
		fmt.Sprintf("X6: broadcast on a mobile geometric network (n=%d, %d epochs × %d rounds)", n, epochs, epochLen),
		"scenario", "success", "informed fraction", "rounds to complete")
	type scenario struct {
		name    string
		dynamic bool
		radius  float64
	}
	for _, sc := range []scenario{
		{"static, subcritical radius 0.7·r_c", false, sub},
		{"mobile, subcritical radius 0.7·r_c", true, sub},
		{"static, radius 2·r_c (reference)", false, super},
	} {
		sc := sc
		out := sweep.RunTrials(cfg.trials(), cfg.Seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
			protoRNG := rng.New(rng.SubSeed(tr.Seed, 1))
			proto := core.NewAlgorithm3(n, dGuess, 8) // wide window: survives epochs
			sess := radio.NewBroadcastSession(n, 0, proto, protoRNG)
			var res *radio.Result
			for e := 0; e < epochs; e++ {
				seed := tr.Seed
				if sc.dynamic {
					seed = rng.SubSeed(tr.Seed, uint64(100+e)) // nodes moved
				}
				g, _ := graph.RandomGeometric(n, sc.radius, sc.radius, rng.New(seed))
				res = sess.Run(g, radio.Options{MaxRounds: epochLen, StopWhenInformed: true})
				if res.Completed() {
					break
				}
			}
			m := sweep.Metrics{
				"success":      0,
				"informedFrac": float64(res.Informed) / float64(n),
				"rounds":       math.NaN(),
			}
			if res.Completed() {
				m["success"] = 1
				m["rounds"] = float64(res.InformedRound)
			}
			return m
		})
		rounds := math.NaN()
		if sweep.RateOf(out, "success") > 0 {
			rounds = sweep.MeanOf(out, "rounds")
		}
		t.AddRow(sc.name, sweep.F(sweep.RateOf(out, "success")),
			sweep.F(sweep.MeanOf(out, "informedFrac")), sweep.F(rounds))
	}
	t.Note = "The §1 mobility story, quantified: below the connectivity radius a STATIC " +
		"geometric network strands the broadcast in the source's pocket, but when nodes " +
		"move (fresh positions each epoch, knowledge carried by radio.BroadcastSession) " +
		"the union of topologies connects and the oblivious protocol completes — mobility " +
		"substitutes for density. The protocol never learns the topology; it just keeps " +
		"following its schedule."
	return []*sweep.Table{t}
}
