package expt

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E6", Title: "Algorithm 2 gossip on G(n,p)",
		PaperRef: "Theorem 3.2", Campaign: e6Campaign()})
}

// e6Point is one (n, d=np) gossip instance.
type e6Point struct {
	n int
	d float64
}

// e6Grid enumerates the three point families of E6's tables: the (n, d)
// scaling grid (a/...), the TDMA contrast (b/...), and the sequential-
// broadcast contrast (c/...).
func e6Grid(cfg Config) (scaling, tdma, seq []campaign.Point) {
	pts := []e6Point{{128, 24}, {256, 24}, {512, 32}}
	if cfg.Full {
		pts = append(pts, e6Point{1024, 32}, e6Point{1024, 64})
	}
	for _, p := range pts {
		scaling = append(scaling, campaign.Pt(
			fmt.Sprintf("a/n=%d/d=%s", p.n, sweep.F(p.d)), p,
			"n", fmt.Sprint(p.n), "d", sweep.F(p.d)))
	}
	for _, proto := range []string{"algorithm2", "tdma"} {
		tdma = append(tdma, campaign.Pt("b/proto="+proto, proto, "proto", proto))
	}
	for _, proto := range []string{"sequential", "algorithm2"} {
		seq = append(seq, campaign.Pt("c/proto="+proto, proto, "proto", proto))
	}
	return scaling, tdma, seq
}

// gossipMetrics extracts the standard gossip metric set from one run.
func gossipMetrics(res *radio.GossipResult) sweep.Metrics {
	m := sweep.Metrics{"success": 0, "rounds": math.NaN(),
		"txPerNode": res.TxPerNode(), "maxNodeTx": float64(res.MaxNodeTx)}
	if res.Completed() {
		m["success"] = 1
		m["rounds"] = float64(res.CompleteRound)
	}
	return m
}

func e6Campaign() campaign.Campaign {
	points := func(cfg Config) []campaign.Point {
		a, b, c := e6Grid(cfg)
		return append(append(a, b...), c...)
	}
	return campaign.Campaign{
		Points: points,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			switch {
			case pt.Key[0] == 'a':
				p0 := pt.Data.(e6Point)
				p := p0.d / float64(p0.n)
				return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
					ts := scratchOf(tr)
					g := graph.GNPDirected(p0.n, p, rng.New(tr.Seed))
					a := core.NewAlgorithm2(p)
					res := radio.RunGossipWith(ts.gossip, g, a, rng.New(rng.SubSeed(tr.Seed, 1)), radio.GossipOptions{
						MaxRounds: a.RoundBudget(p0.n), StopWhenComplete: true,
					})
					return gossipMetrics(res)
				})
			case pt.Key[0] == 'b':
				// Contrast with the deterministic TDMA schedule: collision-free
				// but needs Θ(n·D) rounds and Θ(D) transmissions per node.
				n := 256
				d := 24.0
				p := d / float64(n)
				makeProto := func() radio.Gossiper { return core.NewAlgorithm2(p) }
				caps := core.NewAlgorithm2(p).RoundBudget(n)
				if pt.Data.(string) == "tdma" {
					makeProto = func() radio.Gossiper { return &baseline.TDMAGossip{} }
					caps = n * 64
				}
				return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
					ts := scratchOf(tr)
					g := graph.GNPDirected(n, p, rng.New(tr.Seed))
					res := radio.RunGossipWith(ts.gossip, g, makeProto(), rng.New(rng.SubSeed(tr.Seed, 1)),
						radio.GossipOptions{MaxRounds: caps, StopWhenComplete: true})
					return gossipMetrics(res)
				})
			default:
				// E6c: the §3 motivation — gossip by sequentially broadcasting
				// every rumor with Algorithm 1 costs O(n·log n) rounds;
				// Algorithm 2 exploits the random topology for O(d·log n).
				nc := 128
				pc := 0.4 // np² = 20: every component broadcast has safe Phase-3 capacity
				if pt.Data.(string) == "sequential" {
					return sweep.RunTrials(trials(cfg), seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
						g := graph.GNPDirected(nc, pc, rng.New(tr.Seed))
						res := core.RunSequentialGossip(g, pc, rng.New(rng.SubSeed(tr.Seed, 1)), 10000)
						m := sweep.Metrics{"success": 0, "rounds": float64(res.Rounds), "tx": float64(res.TotalTx)}
						if res.Success() {
							m["success"] = 1
						}
						return m
					})
				}
				return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
					ts := scratchOf(tr)
					g := graph.GNPDirected(nc, pc, rng.New(tr.Seed))
					a := core.NewAlgorithm2(pc)
					res := radio.RunGossipWith(ts.gossip, g, a, rng.New(rng.SubSeed(tr.Seed, 1)), radio.GossipOptions{
						MaxRounds: a.RoundBudget(nc), StopWhenComplete: true,
					})
					m := sweep.Metrics{"success": 0, "rounds": math.NaN(), "tx": float64(res.TotalTx)}
					if res.Completed() {
						m["success"] = 1
						m["rounds"] = float64(res.CompleteRound)
					}
					return m
				})
			}
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			scaling, tdma, seq := e6Grid(cfg)
			t := sweep.NewTable("E6: Algorithm 2 gossip on G(n,p) (Theorem 3.2)",
				"n", "d=np", "success", "rounds", "rounds/(d·log2 n)",
				"tx/node", "tx/node / log2 n", "max tx/node")
			for _, pt := range scaling {
				p0 := pt.Data.(e6Point)
				out := v.Samples(pt.Key)
				rounds := sweep.MeanOf(out, "rounds")
				txn := sweep.MeanOf(out, "txPerNode")
				l2 := log2(float64(p0.n))
				t.AddRow(sweep.FInt(p0.n), sweep.F(p0.d),
					sweep.F(sweep.RateOf(out, "success")),
					sweep.F(rounds), sweep.F(rounds/(p0.d*l2)),
					sweep.F(txn), sweep.F(txn/l2),
					sweep.F(sweep.MeanOf(out, "maxNodeTx")))
			}
			t.Note = "Theorem 3.2: gossip completes in O(d·log n) rounds (column 5 near-constant) with " +
				"O(log n) transmissions per node (column 7 near-constant). Runs stop at completion, " +
				"so tx/node reflects the energy actually needed."

			t2 := sweep.NewTable("E6b: Algorithm 2 vs TDMA round-robin (n=256, d=24)",
				"protocol", "success", "rounds", "tx/node (mean)", "max tx/node")
			for _, pt := range tdma {
				out := v.Samples(pt.Key)
				t2.AddRow(pt.Data.(string), sweep.F(sweep.RateOf(out, "success")),
					sweep.F(sweep.MeanOf(out, "rounds")),
					sweep.F(sweep.MeanOf(out, "txPerNode")),
					sweep.F(sweep.MeanOf(out, "maxNodeTx")))
			}
			t2.Note = "TDMA is collision-free and spends only Θ(D) transmissions per node (cheap on " +
				"this diameter-2 graph), but it pays Θ(n) rounds per sweep — already 2× slower at " +
				"n=256, with the gap growing linearly in n. Algorithm 2 finishes in O(d·log n) " +
				"rounds at O(log n) transmissions per node regardless of n."

			t3 := sweep.NewTable("E6c: Algorithm 2 vs sequential Algorithm-1 broadcasts (n=128, §3 intro)",
				"protocol", "success", "rounds", "total tx")
			outSeq := v.Samples(seq[0].Key)
			outA2 := v.Samples(seq[1].Key)
			t3.AddRow("algorithm2", sweep.F(sweep.RateOf(outA2, "success")),
				sweep.F(sweep.MeanOf(outA2, "rounds")), sweep.F(sweep.MeanOf(outA2, "tx")))
			t3.AddRow("sequential algorithm-1 broadcasts", sweep.F(sweep.RateOf(outSeq, "success")),
				sweep.F(sweep.MeanOf(outSeq, "rounds")), sweep.F(sweep.MeanOf(outSeq, "tx")))
			t3.Note = "The composition the paper mentions before Algorithm 2 (framework of [8] + the " +
				"§2 broadcast): correct but Θ(n·log n) rounds. Algorithm 2's point is that random " +
				"networks admit O(d·log n), a factor ≈ n/d faster."
			return []*sweep.Table{t, t2, t3}
		},
	}
}
