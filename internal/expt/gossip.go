package expt

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E6", Title: "Algorithm 2 gossip on G(n,p)",
		PaperRef: "Theorem 3.2", Run: runE6})
}

func runE6(cfg Config) []*sweep.Table {
	type pt struct {
		n int
		d float64
	}
	pts := []pt{{128, 24}, {256, 24}, {512, 32}}
	if cfg.Full {
		pts = append(pts, pt{1024, 32}, pt{1024, 64})
	}
	t := sweep.NewTable("E6: Algorithm 2 gossip on G(n,p) (Theorem 3.2)",
		"n", "d=np", "success", "rounds", "rounds/(d·log2 n)",
		"tx/node", "tx/node / log2 n", "max tx/node")
	for _, p0 := range pts {
		p0 := p0
		p := p0.d / float64(p0.n)
		out := sweep.RunTrials(cfg.trials(), cfg.Seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
			g := graph.GNPDirected(p0.n, p, rng.New(tr.Seed))
			a := core.NewAlgorithm2(p)
			res := radio.RunGossip(g, a, rng.New(rng.SubSeed(tr.Seed, 1)), radio.GossipOptions{
				MaxRounds: a.RoundBudget(p0.n), StopWhenComplete: true,
			})
			m := sweep.Metrics{
				"success": 0, "rounds": math.NaN(),
				"txPerNode": res.TxPerNode(), "maxNodeTx": float64(res.MaxNodeTx),
			}
			if res.Completed() {
				m["success"] = 1
				m["rounds"] = float64(res.CompleteRound)
			}
			return m
		})
		rounds := sweep.MeanOf(out, "rounds")
		txn := sweep.MeanOf(out, "txPerNode")
		l2 := log2(float64(p0.n))
		t.AddRow(sweep.FInt(p0.n), sweep.F(p0.d),
			sweep.F(sweep.RateOf(out, "success")),
			sweep.F(rounds), sweep.F(rounds/(p0.d*l2)),
			sweep.F(txn), sweep.F(txn/l2),
			sweep.F(sweep.MeanOf(out, "maxNodeTx")))
	}
	t.Note = "Theorem 3.2: gossip completes in O(d·log n) rounds (column 5 near-constant) with " +
		"O(log n) transmissions per node (column 7 near-constant). Runs stop at completion, " +
		"so tx/node reflects the energy actually needed."

	// Contrast with the deterministic TDMA schedule: collision-free but
	// needs Θ(n·D) rounds and Θ(D) transmissions per node.
	n := 256
	d := 24.0
	p := d / float64(n)
	t2 := sweep.NewTable("E6b: Algorithm 2 vs TDMA round-robin (n=256, d=24)",
		"protocol", "success", "rounds", "tx/node (mean)", "max tx/node")
	type gossipProto struct {
		name string
		make func() radio.Gossiper
		caps int
	}
	a2budget := core.NewAlgorithm2(p).RoundBudget(n)
	for _, gp := range []gossipProto{
		{"algorithm2", func() radio.Gossiper { return core.NewAlgorithm2(p) }, a2budget},
		{"tdma", func() radio.Gossiper { return &baseline.TDMAGossip{} }, n * 64},
	} {
		gp := gp
		out := sweep.RunTrials(cfg.trials(), cfg.Seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
			g := graph.GNPDirected(n, p, rng.New(tr.Seed))
			res := radio.RunGossip(g, gp.make(), rng.New(rng.SubSeed(tr.Seed, 1)),
				radio.GossipOptions{MaxRounds: gp.caps, StopWhenComplete: true})
			m := sweep.Metrics{"success": 0, "rounds": math.NaN(),
				"txPerNode": res.TxPerNode(), "maxNodeTx": float64(res.MaxNodeTx)}
			if res.Completed() {
				m["success"] = 1
				m["rounds"] = float64(res.CompleteRound)
			}
			return m
		})
		t2.AddRow(gp.name, sweep.F(sweep.RateOf(out, "success")),
			sweep.F(sweep.MeanOf(out, "rounds")),
			sweep.F(sweep.MeanOf(out, "txPerNode")),
			sweep.F(sweep.MeanOf(out, "maxNodeTx")))
	}
	t2.Note = "TDMA is collision-free and spends only Θ(D) transmissions per node (cheap on " +
		"this diameter-2 graph), but it pays Θ(n) rounds per sweep — already 2× slower at " +
		"n=256, with the gap growing linearly in n. Algorithm 2 finishes in O(d·log n) " +
		"rounds at O(log n) transmissions per node regardless of n."

	// E6c: the §3 motivation — gossip by sequentially broadcasting every
	// rumor with Algorithm 1 costs O(n·log n) rounds; Algorithm 2 exploits
	// the random topology for O(d·log n).
	nc := 128
	pc := 0.4 // np² = 20: every component broadcast has safe Phase-3 capacity
	t3 := sweep.NewTable("E6c: Algorithm 2 vs sequential Algorithm-1 broadcasts (n=128, §3 intro)",
		"protocol", "success", "rounds", "total tx")
	outSeq := sweep.RunTrials(cfg.trials(), cfg.Seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
		g := graph.GNPDirected(nc, pc, rng.New(tr.Seed))
		res := core.RunSequentialGossip(g, pc, rng.New(rng.SubSeed(tr.Seed, 1)), 10000)
		m := sweep.Metrics{"success": 0, "rounds": float64(res.Rounds), "tx": float64(res.TotalTx)}
		if res.Success() {
			m["success"] = 1
		}
		return m
	})
	outA2 := sweep.RunTrials(cfg.trials(), cfg.Seed, cfg.Workers, func(tr sweep.Trial) sweep.Metrics {
		g := graph.GNPDirected(nc, pc, rng.New(tr.Seed))
		a := core.NewAlgorithm2(pc)
		res := radio.RunGossip(g, a, rng.New(rng.SubSeed(tr.Seed, 1)), radio.GossipOptions{
			MaxRounds: a.RoundBudget(nc), StopWhenComplete: true,
		})
		m := sweep.Metrics{"success": 0, "rounds": math.NaN(), "tx": float64(res.TotalTx)}
		if res.Completed() {
			m["success"] = 1
			m["rounds"] = float64(res.CompleteRound)
		}
		return m
	})
	t3.AddRow("algorithm2", sweep.F(sweep.RateOf(outA2, "success")),
		sweep.F(sweep.MeanOf(outA2, "rounds")), sweep.F(sweep.MeanOf(outA2, "tx")))
	t3.AddRow("sequential algorithm-1 broadcasts", sweep.F(sweep.RateOf(outSeq, "success")),
		sweep.F(sweep.MeanOf(outSeq, "rounds")), sweep.F(sweep.MeanOf(outSeq, "tx")))
	t3.Note = "The composition the paper mentions before Algorithm 2 (framework of [8] + the " +
		"§2 broadcast): correct but Θ(n·log n) rounds. Algorithm 2's point is that random " +
		"networks admit O(d·log n), a factor ≈ n/d faster."
	return []*sweep.Table{t, t2, t3}
}
