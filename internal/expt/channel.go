package expt

// The C battery: channel realism. The paper's reception rule — collision iff
// two or more in-neighbours transmit — is the cleanest point in a family of
// channel models; these experiments re-measure its claims under the rest of
// the family (radio.ReceptionModel: per-receiver fading, per-edge loss, SINR
// capture) and under duty-cycled listeners (energy.DutyCycle), asking which
// conclusions survive a real channel and which were artifacts of the binary
// rule.
//
// The channel axis of the comparison grid (C5) is the one Config.Channel
// filters: point keys embed it ("chan=binary" / "chan=fade" / "chan=duty"),
// so records from different restrictions never collide and a worker can run
// one channel leg of the grid — the same contract Config.GraphMode gives the
// scale battery's representation axis.

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "C1", Title: "Fading sweep: graceful degradation, and what fade cannot fix",
		PaperRef: "§1.2 reception rule under receiver fading", Campaign: c1Campaign()})
	register(Experiment{ID: "C2", Title: "Per-edge loss vs per-receiver fade at matched probability",
		PaperRef: "§1.2 reception rule, loss-model sensitivity", Campaign: c2Campaign()})
	register(Experiment{ID: "C3", Title: "SINR capture: how much interference tolerance buys",
		PaperRef: "§1.2 collision rule vs capture thresholds", Campaign: c3Campaign()})
	register(Experiment{ID: "C4", Title: "Duty-cycled listeners: latency bought, listen energy sold",
		PaperRef: "§4 energy bounds under duty cycling", Campaign: c4Campaign()})
	register(Experiment{ID: "C5", Title: "Energy hierarchy across channel models",
		PaperRef: "§4 protocol hierarchy, channel-model robustness", Campaign: c5Campaign()})
}

// cScale is the shared topology size of the battery's G(n,p) workloads.
func cScale(cfg Config) int {
	if cfg.Full {
		return 512
	}
	return 192
}

// cRounds is the shared round cap: generous against duty-cycle and fading
// slowdowns, tight enough that a livelocked flood trial stays cheap.
const cRounds = 4000

// cDuty is the battery's reference listener schedule: awake one round in
// four, staggered so every round has ~n/4 awake listeners.
func cDuty() *energy.DutyCycle {
	return &energy.DutyCycle{Period: 4, On: 1, Stagger: true}
}

// cBroadcast runs one trial of the battery's standard workload — a protocol
// on sparse G(n,p) under a reception model and optional schedule, CC2420
// metering (unlimited budget) — and returns the standard metric set plus the
// energy split.
func cBroadcast(tr sweep.Trial, ts *trialScratch, n int, mk func(p float64) radio.Broadcaster,
	model radio.ReceptionModel, sched *energy.DutyCycle) sweep.Metrics {
	p := sparseP(n)
	g := ts.graph.GNPDirected(n, p, rng.New(tr.Seed))
	espec := &energy.Spec{Model: energy.CC2420(), Schedule: sched}
	res := radio.RunBroadcastWith(ts.radio, g, 0, mk(p), rng.New(rng.SubSeed(tr.Seed, 1)),
		radio.Options{MaxRounds: cRounds, StopWhenInformed: true, Reception: model, Energy: espec})
	m := sweep.Metrics{
		mSuccess: 0, mRounds: math.NaN(),
		mTxPerNode: res.TxPerNode(),
		mInformedF: float64(res.Informed) / float64(n),
		"listE":    res.Energy.ListenEnergy / float64(n),
		"totalE":   res.Energy.EnergyPerNode(),
	}
	if res.Completed() {
		m[mSuccess] = 1
		m[mRounds] = float64(res.InformedRound)
	}
	return m
}

// cRoundsCell renders the mean completion round, dashed when no trial
// completed.
func cRoundsCell(out map[string][]float64) string {
	if sweep.RateOf(out, mSuccess) == 0 {
		return "—"
	}
	return sweep.F(sweep.MeanOf(out, mRounds))
}

// --- C1: fading sweep ---

var (
	c1Fades  = []float64{0, 0.1, 0.2, 0.4}
	c1Protos = []string{"algorithm1", "flood"}
)

// c1MakeProto builds a C1 protocol (p is the topology's edge probability,
// which Algorithm 1 is parameterised by).
func c1MakeProto(name string) func(p float64) radio.Broadcaster {
	if name == "flood" {
		return func(float64) radio.Broadcaster { return baseline.Flood{} }
	}
	return func(p float64) radio.Broadcaster { return core.NewAlgorithm1(p) }
}

func c1Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, proto := range c1Protos {
		for _, f := range c1Fades {
			pts = append(pts, campaign.Pt(
				fmt.Sprintf("proto=%s/fade=%s", proto, sweep.F(f)), [2]any{proto, f},
				"proto", proto, "fade", sweep.F(f)))
		}
	}
	return pts
}

func c1Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: c1Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n := cScale(cfg)
			d := pt.Data.([2]any)
			mk := c1MakeProto(d[0].(string))
			model := radio.Binary()
			if f := d[1].(float64); f > 0 {
				model = radio.Fade(f)
			}
			return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
				return cBroadcast(tr, scratchOf(tr), n, mk, model, nil)
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n := cScale(cfg)
			t := sweep.NewTable(
				fmt.Sprintf("C1: receiver fading on sparse G(n=%d, 8·ln n/n)", n),
				"protocol", "fade p", "success", "rounds", "informed fraction", "tx/node")
			for _, pt := range c1Grid(cfg) {
				d := pt.Data.([2]any)
				out := v.Samples(pt.Key)
				t.AddRow(d[0].(string), sweep.F(d[1].(float64)),
					sweep.F(sweep.RateOf(out, mSuccess)), cRoundsCell(out),
					sweep.F(sweep.MeanOf(out, mInformedF)), sweep.F(sweep.MeanOf(out, mTxPerNode)))
			}
			t.Note = "Receiver fading only ever removes receptions: a faded node hears NOTHING that " +
				"round, but a clear node still hears every collision — fade never thins the " +
				"interference (per-edge loss does; see C2). So Algorithm 1 degrades gracefully " +
				"in coverage (each fade is a retried coin flip, informed fraction stays near 1) " +
				"while its finite round schedule pays the price: stretched latency runs the " +
				"schedule out before the last stragglers, and full-completion success falls. " +
				"Flood, livelocked by deterministic collisions (every informed neighbour always " +
				"transmits), gets no relief at all — fade just blanks some of the few receivers " +
				"with in-degree 1, and coverage falls monotonically with p."
			return []*sweep.Table{t}
		},
	}
}

// --- C2: loss-model sensitivity ---

var (
	c2Models = []string{"lossy", "fade"}
	c2Probs  = []float64{0.1, 0.3}
)

func c2Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, m := range c2Models {
		for _, p := range c2Probs {
			pts = append(pts, campaign.Pt(
				fmt.Sprintf("model=%s/p=%s", m, sweep.F(p)), [2]any{m, p},
				"model", m, "p", sweep.F(p)))
		}
	}
	return pts
}

func c2Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: c2Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n := cScale(cfg)
			d := pt.Data.([2]any)
			model := radio.LossyChannel(d[1].(float64))
			if d[0].(string) == "fade" {
				model = radio.Fade(d[1].(float64))
			}
			mk := func(p float64) radio.Broadcaster { return core.NewAlgorithm1(p) }
			return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
				return cBroadcast(tr, scratchOf(tr), n, mk, model, nil)
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n := cScale(cfg)
			t := sweep.NewTable(
				fmt.Sprintf("C2: per-edge loss vs per-receiver fade, algorithm1 on G(n=%d, 8·ln n/n)", n),
				"model", "p", "success", "rounds", "tx/node", "totalE/node")
			for _, pt := range c2Grid(cfg) {
				d := pt.Data.([2]any)
				out := v.Samples(pt.Key)
				t.AddRow(d[0].(string), sweep.F(d[1].(float64)),
					sweep.F(sweep.RateOf(out, mSuccess)), cRoundsCell(out),
					sweep.F(sweep.MeanOf(out, mTxPerNode)), sweep.F(sweep.MeanOf(out, "totalE")))
			}
			t.Note = "Matched loss probability, different failure anatomy. Per-edge loss erases single " +
				"signals AND thins collisions (a lost signal no longer interferes, so a 2-collision " +
				"sometimes decays into a clean reception — loss can help); per-receiver fade blanks " +
				"the whole coherence interval, so it only ever removes receptions. The gap between " +
				"the rows is the cost of modelling the channel at the wrong granularity."
			return []*sweep.Table{t}
		},
	}
}

// --- C3: SINR capture ---

// c3Betas are the capture thresholds; with noise 0.1 they decode through
// K = 1 (the paper's binary rule), 2 and 4 concurrent signals.
var c3Betas = []float64{1, 0.5, 0.25}

const c3Noise = 0.1

func c3Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, b := range c3Betas {
		pts = append(pts, campaign.Pt(fmt.Sprintf("beta=%s", sweep.F(b)), b, "beta", sweep.F(b)))
	}
	return pts
}

func c3Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: c3Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n := cScale(cfg)
			model := radio.SINRThreshold(pt.Data.(float64), c3Noise)
			// A deliberately chatty schedule on the sparse topology: q well
			// above the collision-free operating point, so the binary rule
			// loses most rounds to collisions and capture has headroom to
			// show what interference tolerance buys.
			mk := func(float64) radio.Broadcaster { return &baseline.FixedProb{Q: 0.2} }
			return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
				return cBroadcast(tr, scratchOf(tr), n, mk, model, nil)
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n := cScale(cfg)
			t := sweep.NewTable(
				fmt.Sprintf("C3: SINR capture under fixed(q=0.2) on G(n=%d, 8·ln n/n), noise %.1f", n, c3Noise),
				"beta", "capture K", "success", "rounds", "informed fraction", "tx/node")
			for _, pt := range c3Grid(cfg) {
				b := pt.Data.(float64)
				k := int(math.Floor(1 + 1/b - c3Noise + 1e-9))
				out := v.Samples(pt.Key)
				t.AddRow(sweep.F(b), fmt.Sprintf("%d", k),
					sweep.F(sweep.RateOf(out, mSuccess)), cRoundsCell(out),
					sweep.F(sweep.MeanOf(out, mInformedF)), sweep.F(sweep.MeanOf(out, mTxPerNode)))
			}
			t.Note = "beta=1 is the paper's binary rule (K=1): at q=0.2 a typical Θ(ln n)-degree " +
				"neighbourhood hears ~2+ transmitters per round and most rounds collide. Each " +
				"halving of beta doubles the capture budget K, converting those near-miss rounds " +
				"into receptions — the binary rule is the worst case of the family, so the paper's " +
				"upper bounds transfer to capture channels while its collision-driven lower-bound " +
				"instances do not."
			return []*sweep.Table{t}
		},
	}
}

// --- C4: duty-cycled listeners ---

// c4Periods sweeps the cycle length at one awake round per cycle; Period 1
// is the always-awake baseline.
var c4Periods = []int{1, 2, 4, 8}

func c4Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, per := range c4Periods {
		pts = append(pts, campaign.Pt(fmt.Sprintf("period=%d", per), per,
			"period", fmt.Sprintf("%d", per)))
	}
	return pts
}

func c4Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: c4Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n := cScale(cfg)
			sched := &energy.DutyCycle{Period: pt.Data.(int), On: 1, Stagger: true}
			// A persistent schedule: fixed(q) transmits until everyone is
			// informed, so completion stays measurable at every period
			// (Algorithm 1's finite schedule would simply run out; see C5).
			mk := func(float64) radio.Broadcaster { return &baseline.FixedProb{Q: 0.1} }
			return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
				return cBroadcast(tr, scratchOf(tr), n, mk, radio.Binary(), sched)
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n := cScale(cfg)
			t := sweep.NewTable(
				fmt.Sprintf("C4: staggered 1-in-P duty cycling, fixed(q=0.1) on G(n=%d, 8·ln n/n), CC2420", n),
				"period", "success", "rounds", "listenE/node", "totalE/node")
			for _, pt := range c4Grid(cfg) {
				out := v.Samples(pt.Key)
				t.AddRow(fmt.Sprintf("%d", pt.Data.(int)),
					sweep.F(sweep.RateOf(out, mSuccess)), cRoundsCell(out),
					sweep.F(sweep.MeanOf(out, "listE")), sweep.F(sweep.MeanOf(out, "totalE")))
			}
			t.Note = "The duty-cycle exchange rate, and it is unfavourable on its own. A 1-in-P " +
				"schedule cuts the listen rate by P but a delivery lands only if its receiver is " +
				"awake, so rounds stretch ≈ linearly in P: per-node listen energy falls only " +
				"slowly (rate ÷ P, window × P), while the latency-OBLIVIOUS transmit schedule " +
				"keeps chatting through the stretched window — transmit and informed-sleep cost " +
				"grow with P and total energy rises monotonically. Duty-cycling the receivers " +
				"only pays when the transmit side is slowed to match; gating listeners under an " +
				"unchanged protocol converts cheap idle rounds into expensive extra rounds."
			return []*sweep.Table{t}
		},
	}
}

// --- C5: energy hierarchy across channels ---

var (
	// c5Channels is the axis Config.Channel filters.
	c5Channels = []string{"binary", "fade", "duty"}
	c5Protos   = []string{"algorithm1", "fixed(0.1)", "decay"}
)

const c5FadeP = 0.2

// c5ChannelLegs resolves the channel axis after the Config.Channel filter.
func c5ChannelLegs(cfg Config) []string {
	for _, c := range c5Channels {
		if cfg.Channel == c {
			return []string{c}
		}
	}
	return c5Channels
}

// c5Setup maps a channel-leg name to its reception model and schedule.
func c5Setup(channel string) (radio.ReceptionModel, *energy.DutyCycle) {
	switch channel {
	case "fade":
		return radio.Fade(c5FadeP), nil
	case "duty":
		return radio.Binary(), cDuty()
	default:
		return radio.Binary(), nil
	}
}

// c5MakeProto builds a C5 protocol. Decay's phase budget is sized for the
// O(log n) diameter of the sparse supercritical G(n,p).
func c5MakeProto(name string, n int) func(p float64) radio.Broadcaster {
	switch name {
	case c5Protos[1]:
		return func(float64) radio.Broadcaster { return &baseline.FixedProb{Q: 0.1} }
	case c5Protos[2]:
		phases := 2*int(math.Ceil(math.Log2(float64(n)))) + 16
		return func(float64) radio.Broadcaster { return baseline.NewDecay(phases) }
	default:
		return func(p float64) radio.Broadcaster { return core.NewAlgorithm1(p) }
	}
}

func c5Grid(cfg Config) []campaign.Point {
	var pts []campaign.Point
	for _, ch := range c5ChannelLegs(cfg) {
		for _, proto := range c5Protos {
			pts = append(pts, campaign.Pt(
				fmt.Sprintf("chan=%s/proto=%s", ch, proto), [2]any{ch, proto},
				"chan", ch, "proto", proto))
		}
	}
	return pts
}

func c5Campaign() campaign.Campaign {
	return campaign.Campaign{
		Points: c5Grid,
		Run: func(cfg Config, pt campaign.Point, seed uint64) campaign.Samples {
			n := cScale(cfg)
			d := pt.Data.([2]any)
			model, sched := c5Setup(d[0].(string))
			mk := c5MakeProto(d[1].(string), n)
			return runSweep(cfg, seed, func(tr sweep.Trial) sweep.Metrics {
				return cBroadcast(tr, scratchOf(tr), n, mk, model, sched)
			})
		},
		Render: func(cfg Config, v campaign.View) []*sweep.Table {
			n := cScale(cfg)
			t := sweep.NewTable(
				fmt.Sprintf("C5: protocol energy hierarchy per channel model on G(n=%d, 8·ln n/n), CC2420 "+
					"(fade p=%.1f; duty 1-in-%d staggered)", n, c5FadeP, cDuty().Period),
				"channel", "protocol", "success", "rounds", "tx/node", "totalE/node")
			for _, pt := range c5Grid(cfg) {
				d := pt.Data.([2]any)
				out := v.Samples(pt.Key)
				t.AddRow(d[0].(string), d[1].(string),
					sweep.F(sweep.RateOf(out, mSuccess)), cRoundsCell(out),
					sweep.F(sweep.MeanOf(out, mTxPerNode)), sweep.F(sweep.MeanOf(out, "totalE")))
			}
			t.Note = "Does the paper's energy ranking survive the channel? Among the persistent " +
				"protocols, yes: fixed(q) undercuts decay in every channel block, because the " +
				"ordering is driven by transmission discipline, which no reception model touches. " +
				"The instructive failure is Algorithm 1: cheapest everywhere by total energy, but " +
				"only because its finite schedule — provably sufficient on the BINARY channel — " +
				"runs out and gives up under fade and duty cycling (success 0). The hierarchy is " +
				"robust exactly for protocols that keep transmitting until the message lands; " +
				"schedule-length optimality is the one paper conclusion the channel breaks. Run " +
				"one leg with -channel to shard the grid."
			return []*sweep.Table{t}
		},
	}
}
