package expt

// The N battery: network-lifetime experiments on the internal/energy model.
// Where the paper (and the E/X batteries) measure energy as a transmission
// count, these experiments charge every radio state — transmit, receive,
// idle-listen, sleep — against per-node battery budgets, and measure what a
// sensor deployment actually cares about: how many broadcast campaigns a
// charge survives, when the first node dies, and when the network ceases to
// be one network. All trial loops reuse the per-worker scratch bundle
// (graph storage, session buffers, and the battery bank's own arrays), so
// the sweeps stay allocation-free in steady state.

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "N1", Title: "Network lifetime vs protocol on UDG: unit-cost vs sensor-radio energy",
		PaperRef: "§4 energy bounds as battery life; arXiv:2004.06380", Run: runN1})
	register(Experiment{ID: "N2", Title: "Energy-latency Pareto front over the transmit probability",
		PaperRef: "Thm 4.2 tradeoff, with idle-listen cost", Run: runN2})
	register(Experiment{ID: "N3", Title: "Listen-cost sensitivity of network lifetime",
		PaperRef: "idle-listening dominance (arXiv:1501.06647)", Run: runN3})
	register(Experiment{ID: "N4", Title: "Battery-heterogeneous networks: first death and partition",
		PaperRef: "per-node energy bounds under unequal budgets", Run: runN4})
	register(Experiment{ID: "N5", Title: "Mobile-epoch lifetime at subcritical radius",
		PaperRef: "§1 mobility motivation + battery depletion", Run: runN5})
}

// fRound renders a lifetime round, or a dash when the mark was not reached.
func fRound(v float64) string {
	if math.IsNaN(v) || v < 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", v)
}

// meanOr is sweep.MeanOf tolerating metrics with no valid samples (a
// lifetime mark no trial reached): it reports NaN, which fRound renders as
// a dash.
func meanOr(samples map[string][]float64, key string) float64 {
	valid := 0
	for _, x := range samples[key] {
		if !math.IsNaN(x) {
			valid++
		}
	}
	if valid == 0 {
		return math.NaN()
	}
	return sweep.MeanOf(samples, key)
}

// lifetimeTrial runs repeated broadcast campaigns (fresh protocol and
// source per campaign, one persistent battery bank) on a static topology.
// It stops at the first campaign that fails to inform everyone — or, with
// untilDepleted, keeps draining past failures until every node is dead (the
// partition-hunting mode) — and always stops at maxCampaigns attempts. It
// returns the completed-campaign count and the final (cumulative) result.
func lifetimeTrial(ts *trialScratch, g *graph.Digraph, makeProto func() radio.Broadcaster,
	spec *energy.Spec, r *rng.RNG, maxCampaigns, maxRounds int, untilDepleted bool) (campaigns int, last *radio.Result) {
	n := g.N()
	var bank *energy.State
	for attempt := 0; attempt < maxCampaigns; attempt++ {
		src := graph.NodeID(r.Intn(n))
		opt := radio.Options{MaxRounds: maxRounds, Energy: spec}
		if bank != nil {
			if bank.AliveCount() == 0 {
				break
			}
			for !bank.Alive(src) {
				src = graph.NodeID(r.Intn(n))
			}
			opt.Energy = &energy.Spec{Resume: bank}
		}
		sess := radio.NewBroadcastSessionWith(ts.radio, n, src, makeProto(), r.Split(uint64(attempt)))
		last = sess.Run(g, opt)
		bank = sess.EnergyState()
		if last.Completed() {
			campaigns++
		} else if !untilDepleted {
			break
		}
	}
	return campaigns, last
}

// lifetimeMetrics extracts the standard lifetime metric set from a trial.
func lifetimeMetrics(campaigns int, last *radio.Result) sweep.Metrics {
	m := sweep.Metrics{
		"campaigns":  float64(campaigns),
		"firstDeath": math.NaN(),
		"halfDeath":  math.NaN(),
		"deadFrac":   0,
		"energyNode": 0,
	}
	if last != nil && last.Energy != nil {
		e := last.Energy
		if e.FirstDeathRound >= 0 {
			m["firstDeath"] = float64(e.FirstDeathRound)
		}
		if e.HalfDeathRound >= 0 {
			m["halfDeath"] = float64(e.HalfDeathRound)
		}
		m["deadFrac"] = float64(e.DeadCount) / float64(len(e.Spent))
		m["energyNode"] = e.EnergyPerNode()
	}
	return m
}

// lifetimeRow aggregates trial samples into the standard table cells.
func lifetimeRow(out map[string][]float64) []string {
	return []string{
		sweep.F(sweep.MeanOf(out, "campaigns")),
		fRound(meanOr(out, "firstDeath")),
		fRound(meanOr(out, "halfDeath")),
		sweep.F(sweep.MeanOf(out, "deadFrac")),
		sweep.F(sweep.MeanOf(out, "energyNode")),
	}
}

func runN1(cfg Config) []*sweep.Table {
	n := 256
	maxCampaigns := 60
	if cfg.Full {
		n = 512
		maxCampaigns = 120
	}
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{N: n, Radius: 2 * rc, Torus: true}
	_, Dest := geomProbe(spec, cfg.Seed^0x61)

	protos := []struct {
		name string
		make func() radio.Broadcaster
	}{
		{"algorithm3 (λ=log n)", func() radio.Broadcaster { return core.NewAlgorithm3(n, Dest, 2) }},
		{"czumaj-rytter", func() radio.Broadcaster { return baseline.NewCzumajRytter(n, Dest, 2) }},
		{"decay", func() radio.Broadcaster { return baseline.NewDecay(2*Dest + 16) }},
	}
	models := []struct {
		name   string
		model  energy.Model
		budget float64
	}{
		// Budgets sized so every protocol dies within the campaign cap at
		// reduced scale but the rankings stay resolved: the unit model only
		// pays for transmissions; the CC2420 model burns ≈1.08/round while
		// uninformed, so its budget is round-denominated.
		{"unit-tx", energy.UnitTx(), 120},
		{"cc2420", energy.CC2420(), 1200},
	}

	t := sweep.NewTable(
		fmt.Sprintf("N1: broadcast campaigns before first failure on UDG(n=%d, 2·r_c), per energy model", n),
		"model", "protocol", "campaigns", "first-death round", "half-death round", "dead fraction", "energy/node")
	for _, mv := range models {
		espec := &energy.Spec{Model: mv.model, Budget: mv.budget}
		for _, pr := range protos {
			pr := pr
			out := sweep.RunTrialsScratch(cfg.trials(), cfg.Seed, cfg.Workers, newTrialScratch, func(tr sweep.Trial) sweep.Metrics {
				ts := scratchOf(tr)
				g, _ := ts.graph.Geometric(spec, rng.New(tr.Seed))
				c, last := lifetimeTrial(ts, g, pr.make, espec, rng.New(rng.SubSeed(tr.Seed, 1)), maxCampaigns, 100000, false)
				return lifetimeMetrics(c, last)
			})
			t.AddRow(append([]string{mv.name, pr.name}, lifetimeRow(out)...)...)
		}
	}
	t.Note = "The paper's energy hierarchy, re-measured in what a battery buys. Under the unit-cost " +
		"model (transmissions only) lifetime is B ÷ (tx/node per campaign) and the low-energy " +
		"protocols dominate. Under the CC2420 model idle listening costs as much per round as " +
		"transmitting, so a slow frugal schedule can lose to a fast chatty one — energy " +
		"efficiency becomes completion TIME efficiency for the uninformed, which is the " +
		"regime real sensor radios live in."
	return []*sweep.Table{t}
}

func runN2(cfg Config) []*sweep.Table {
	n := 256
	if cfg.Full {
		n = 512
	}
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{N: n, Radius: 2 * rc, Torus: true}
	qs := []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}

	t := sweep.NewTable(
		fmt.Sprintf("N2: energy-latency Pareto front of fixed(q) on UDG(n=%d, 2·r_c), CC2420 model", n),
		"q", "success", "rounds", "tx/node", "txE/node", "listenE/node", "totalE/node")
	espec := &energy.Spec{Model: energy.CC2420()} // unlimited: pure metering
	for _, q := range qs {
		q := q
		out := sweep.RunTrialsScratch(cfg.trials(), cfg.Seed, cfg.Workers, newTrialScratch, func(tr sweep.Trial) sweep.Metrics {
			ts := scratchOf(tr)
			g, _ := ts.graph.Geometric(spec, rng.New(tr.Seed))
			res := radio.RunBroadcastWith(ts.radio, g, 0, &baseline.FixedProb{Q: q},
				rng.New(rng.SubSeed(tr.Seed, 1)),
				radio.Options{MaxRounds: 60000, StopWhenInformed: true, Energy: espec})
			m := sweep.Metrics{
				mSuccess: 0, mRounds: math.NaN(), mTxPerNode: res.TxPerNode(),
				"txE":    res.Energy.TxEnergy / float64(n),
				"listE":  res.Energy.ListenEnergy / float64(n),
				"totalE": res.Energy.EnergyPerNode(),
			}
			if res.Completed() {
				m[mSuccess] = 1
				m[mRounds] = float64(res.InformedRound)
			}
			return m
		})
		rounds := math.NaN()
		if sweep.RateOf(out, mSuccess) > 0 {
			rounds = sweep.MeanOf(out, mRounds)
		}
		t.AddRow(sweep.F(q), sweep.F(sweep.RateOf(out, mSuccess)), sweep.F(rounds),
			sweep.F(sweep.MeanOf(out, mTxPerNode)),
			sweep.F(sweep.MeanOf(out, "txE")), sweep.F(sweep.MeanOf(out, "listE")),
			sweep.F(sweep.MeanOf(out, "totalE")))
	}
	t.Note = "The two-sided energy-latency tradeoff the unit-cost measure cannot see. Under " +
		"transmission counting alone, the cheapest q is the smallest that completes; with the " +
		"receiver chain metered, a slow broadcast bleeds listen energy in every uninformed " +
		"node, so total energy is U-shaped in q: collisions burn the top end, idle listening " +
		"the bottom, and the minimum sits at an interior q — the operating point an " +
		"energy-aware deployment should choose."
	return []*sweep.Table{t}
}

func runN3(cfg Config) []*sweep.Table {
	n := 256
	maxCampaigns := 80
	if cfg.Full {
		n = 512
		maxCampaigns = 160
	}
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{N: n, Radius: 2 * rc, Torus: true}
	_, Dest := geomProbe(spec, cfg.Seed^0x62)
	B := 600.0

	t := sweep.NewTable(
		fmt.Sprintf("N3: lifetime of algorithm3 on UDG(n=%d) vs listen cost (budget %.0f, tx cost 1)", n, B),
		"listen/tx", "campaigns", "first-death round", "half-death round", "dead fraction", "energy/node")
	for _, lc := range []float64{0, 0.01, 0.1, 0.5, 1.0} {
		lc := lc
		espec := &energy.Spec{Model: energy.Model{Tx: 1, Rx: lc, Listen: lc}, Budget: B}
		out := sweep.RunTrialsScratch(cfg.trials(), cfg.Seed, cfg.Workers, newTrialScratch, func(tr sweep.Trial) sweep.Metrics {
			ts := scratchOf(tr)
			g, _ := ts.graph.Geometric(spec, rng.New(tr.Seed))
			c, last := lifetimeTrial(ts, g,
				func() radio.Broadcaster { return core.NewAlgorithm3(n, Dest, 2) },
				espec, rng.New(rng.SubSeed(tr.Seed, 1)), maxCampaigns, 100000, false)
			return lifetimeMetrics(c, last)
		})
		t.AddRow(append([]string{sweep.F(lc)}, lifetimeRow(out)...)...)
	}
	t.Note = "A campaign drains ≈ tx/node + listen·(rounds spent uninformed) per node, so lifetime " +
		"collapses like 1/listen once idle cost passes the transmit budget per campaign — the " +
		"quantitative version of the ad hoc folklore that the receiver, not the transmitter, " +
		"empties sensor batteries. The listen/tx = 0 row is the paper's unit-cost measure."
	return []*sweep.Table{t}
}

func runN4(cfg Config) []*sweep.Table {
	n := 256
	maxCampaigns := 60
	if cfg.Full {
		n = 512
		maxCampaigns = 120
	}
	rc := graph.ConnectivityRadius(n)
	spec := graph.GeomSpec{N: n, Radius: 2 * rc, Torus: true}
	_, Dest := geomProbe(spec, cfg.Seed^0x63)
	B := 1200.0

	// Deterministic budget layouts with equal network totals.
	uniform := make([]float64, n)
	bimodal := make([]float64, n)
	spread4 := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = B
		if i%2 == 0 {
			bimodal[i], spread4[i] = 0.5*B, 0.4*B
		} else {
			bimodal[i], spread4[i] = 1.5*B, 1.6*B
		}
	}

	t := sweep.NewTable(
		fmt.Sprintf("N4: heterogeneous batteries on UDG(n=%d), equal total charge (CC2420, mean budget %.0f)", n, B),
		"battery layout", "campaigns", "first-death round", "half-death round", "partition round", "dead fraction")
	for _, v := range []struct {
		name    string
		budgets []float64
	}{
		{"uniform B", uniform},
		{"bimodal B/2 | 3B/2", bimodal},
		{"bimodal 2B/5 | 8B/5", spread4},
	} {
		v := v
		espec := &energy.Spec{Model: energy.CC2420(), Budgets: v.budgets, TrackPartition: true}
		out := sweep.RunTrialsScratch(cfg.trials(), cfg.Seed, cfg.Workers, newTrialScratch, func(tr sweep.Trial) sweep.Metrics {
			ts := scratchOf(tr)
			g, _ := ts.graph.Geometric(spec, rng.New(tr.Seed))
			c, last := lifetimeTrial(ts, g,
				func() radio.Broadcaster { return core.NewAlgorithm3(n, Dest, 2) },
				espec, rng.New(rng.SubSeed(tr.Seed, 1)), maxCampaigns, 100000, true)
			m := lifetimeMetrics(c, last)
			m["partition"] = math.NaN()
			if last != nil && last.Energy != nil && last.Energy.PartitionRound >= 0 {
				m["partition"] = float64(last.Energy.PartitionRound)
			}
			return m
		})
		t.AddRow(v.name, sweep.F(sweep.MeanOf(out, "campaigns")),
			fRound(meanOr(out, "firstDeath")), fRound(meanOr(out, "halfDeath")),
			fRound(meanOr(out, "partition")), sweep.F(sweep.MeanOf(out, "deadFrac")))
	}
	t.Note = "Same total charge, different distribution. Heterogeneity pulls first-death and " +
		"half-death to roughly half the uniform rounds (the weak half browns out early), but " +
		"the first PARTITION of the alive subgraph comes later than uniform's: a uniform bank " +
		"depletes near-simultaneously (partition arrives with the mass die-off), while the " +
		"strong half of a bimodal bank holds a connected core long after the weak half is " +
		"gone — the oblivious protocols never depended on which nodes relay."
	return []*sweep.Table{t}
}

func runN5(cfg Config) []*sweep.Table {
	n := 256
	if cfg.Full {
		n = 512
	}
	rc := graph.ConnectivityRadius(n)
	sub := 0.8 * rc // below the connectivity threshold, as in G5
	epochs := 40
	epochLen := 25
	spec := graph.GeomSpec{N: n, Radius: sub, Torus: true}
	B := 700.0

	t := sweep.NewTable(
		fmt.Sprintf("N5: mobile-epoch broadcast at 0.8·r_c under CC2420 batteries (n=%d, budget %.0f, %d epochs × %d rounds)",
			n, B, epochs, epochLen),
		"mobility", "success", "informed fraction", "rounds to complete", "first-death round", "dead fraction")
	type scenario struct {
		name  string
		build func(seed uint64) *graph.MobileNetwork
	}
	for _, sc := range []scenario{
		{"static (no movement)", nil},
		{"waypoint, slow (v ≈ 0.5·r per epoch)", func(seed uint64) *graph.MobileNetwork {
			return graph.NewMobileNetwork(spec, graph.MobilityWaypoint, 0.3*sub, 0.7*sub, rng.New(seed))
		}},
		{"waypoint, fast (v ≈ 2·r per epoch)", func(seed uint64) *graph.MobileNetwork {
			return graph.NewMobileNetwork(spec, graph.MobilityWaypoint, 1.5*sub, 2.5*sub, rng.New(seed))
		}},
		{"resample every epoch", func(seed uint64) *graph.MobileNetwork {
			return graph.NewMobileNetwork(spec, graph.MobilityResample, 0, 0, rng.New(seed))
		}},
	} {
		sc := sc
		espec := &energy.Spec{Model: energy.CC2420(), Budget: B}
		out := sweep.RunTrialsScratch(cfg.trials(), cfg.Seed, cfg.Workers, newTrialScratch, func(tr sweep.Trial) sweep.Metrics {
			ts := scratchOf(tr)
			// A never-retiring protocol: informed radios keep relaying across
			// every epoch, and stranded listeners keep listening — so the
			// simulated clock runs the full deployment window and the energy
			// account reflects what the radios actually burn.
			proto := &baseline.FixedProb{Q: 0.05}
			sess := radio.NewBroadcastSessionWith(ts.radio, n, 0, proto, rng.New(rng.SubSeed(tr.Seed, 1)))
			var mob *graph.MobileNetwork
			var static *graph.Digraph
			if sc.build != nil {
				mob = sc.build(tr.Seed)
			} else {
				static, _ = ts.graph.Geometric(spec, rng.New(tr.Seed))
			}
			var res *radio.Result
			for e := 0; e < epochs; e++ {
				g := static
				if mob != nil {
					g = mob.Snapshot(ts.graph)
				}
				res = sess.Run(g, radio.Options{MaxRounds: epochLen, StopWhenInformed: true, Energy: espec})
				if res.Completed() || sess.EnergyState().AliveCount() == 0 {
					break
				}
				if mob != nil {
					mob.Advance()
				}
			}
			m := sweep.Metrics{"success": 0,
				"informedFrac": float64(res.Informed) / float64(n),
				"rounds":       math.NaN(),
				"firstDeath":   math.NaN(),
				"deadFrac":     float64(res.Energy.DeadCount) / float64(n)}
			if res.Energy.FirstDeathRound >= 0 {
				m["firstDeath"] = float64(res.Energy.FirstDeathRound)
			}
			if res.Completed() {
				m["success"] = 1
				m["rounds"] = float64(res.InformedRound)
			}
			return m
		})
		rounds := math.NaN()
		if sweep.RateOf(out, "success") > 0 {
			rounds = sweep.MeanOf(out, "rounds")
		}
		t.AddRow(sc.name, sweep.F(sweep.RateOf(out, "success")),
			sweep.F(sweep.MeanOf(out, "informedFrac")), sweep.F(rounds),
			fRound(meanOr(out, "firstDeath")), sweep.F(sweep.MeanOf(out, "deadFrac")))
	}
	t.Note = "Mobility as an energy resource: below the connectivity threshold a static network " +
		"strands the broadcast in the source's pocket, where the uninformed majority burns " +
		"its battery listening for a message that cannot arrive. Movement lets the informed " +
		"set leak between pockets, completing the broadcast while charge remains; the session " +
		"carries one battery bank across every topology snapshot."
	return []*sweep.Table{t}
}
